// Package repro's top-level benchmarks regenerate every table and figure
// of the P4DB paper's evaluation (one benchmark per figure; the appendix
// figures 19-21 are the raw-throughput columns of figures 11/13/14).
//
// Each benchmark performs one full parameter sweep per iteration at a
// reduced scale and reports the headline comparison as custom metrics:
// P4DB's throughput in simulated transactions per simulated second and its
// speedup over the No-Switch baseline. Run the cmd/p4db-bench binary for
// paper-scale sweeps and full tables.
package repro_test

import (
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// benchOpts returns a small but meaningful sweep so every figure benchmark
// completes in seconds.
func benchOpts() bench.Options {
	o := bench.Quick()
	o.Threads = []int{8}
	o.DistPcts = []int{50}
	o.Samples = 10000
	o.Warmup = 300 * sim.Microsecond
	o.Measure = 1 * sim.Millisecond
	return o
}

// report extracts the best P4DB point and publishes it as metrics,
// alongside the harness's own wall-clock event throughput (the perf metric
// BENCH_sim.json tracks).
func report(b *testing.B, rows []bench.Row) {
	b.Helper()
	if len(rows) == 0 {
		b.Fatal("figure produced no rows")
	}
	var bestThr, bestSpeed, bestEv float64
	for _, r := range rows {
		if r.Throughput > bestThr {
			bestThr = r.Throughput
		}
		if r.Speedup > bestSpeed {
			bestSpeed = r.Speedup
		}
		if r.EventsPerSec > bestEv {
			bestEv = r.EventsPerSec
		}
	}
	b.ReportMetric(bestThr, "txn/s")
	b.ReportMetric(bestSpeed, "max-speedup-x")
	b.ReportMetric(bestEv/1e6, "Mev/s")
	b.ReportMetric(float64(len(rows)), "points")
}

func benchFigure(b *testing.B, fn func(bench.Options) []bench.Row) {
	b.Helper()
	o := benchOpts()
	var rows []bench.Row
	for i := 0; i < b.N; i++ {
		rows = fn(o)
	}
	report(b, rows)
}

// BenchmarkFig01_Headline regenerates Figure 1 (headline throughput and
// speedup for YCSB, SmallBank, TPC-C).
func BenchmarkFig01_Headline(b *testing.B) { benchFigure(b, bench.Fig01) }

// BenchmarkFig11_YCSBThreads regenerates Figure 11 upper row / Figure 19
// upper (YCSB speedups over thread counts).
func BenchmarkFig11_YCSBThreads(b *testing.B) { benchFigure(b, bench.Fig11Contention) }

// BenchmarkFig11_YCSBDistributed regenerates Figure 11 lower row /
// Figure 19 lower (YCSB speedups over distributed-transaction ratios).
func BenchmarkFig11_YCSBDistributed(b *testing.B) { benchFigure(b, bench.Fig11Distributed) }

// BenchmarkFig12_HotColdBreakdown regenerates Figure 12 (committed
// hot/cold transaction fractions).
func BenchmarkFig12_HotColdBreakdown(b *testing.B) {
	o := benchOpts()
	var rows []bench.Row
	for i := 0; i < b.N; i++ {
		rows = bench.Fig12(o)
	}
	// Report the P4DB hot-commit fraction, the figure's headline number.
	for _, r := range rows {
		if r.Workload == "YCSB-A" && r.Series == "P4DB (NO_WAIT)" {
			b.ReportMetric(100*r.HotFrac, "hot-commit-%")
		}
	}
	report(b, rows)
}

// BenchmarkFig13_SmallBankThreads regenerates Figure 13 upper / Figure 20
// upper (SmallBank speedups over thread counts, hot-sets 8x5/8x10/8x15).
func BenchmarkFig13_SmallBankThreads(b *testing.B) { benchFigure(b, bench.Fig13Contention) }

// BenchmarkFig13_SmallBankDistributed regenerates Figure 13 lower /
// Figure 20 lower.
func BenchmarkFig13_SmallBankDistributed(b *testing.B) { benchFigure(b, bench.Fig13Distributed) }

// BenchmarkFig14_TPCCThreads regenerates Figure 14 upper / Figure 21 upper
// (TPC-C speedups over thread counts, 8/16/32 warehouses scaled to nodes).
func BenchmarkFig14_TPCCThreads(b *testing.B) { benchFigure(b, bench.Fig14Contention) }

// BenchmarkFig14_TPCCDistributed regenerates Figure 14 lower / Figure 21
// lower.
func BenchmarkFig14_TPCCDistributed(b *testing.B) { benchFigure(b, bench.Fig14Distributed) }

// BenchmarkFig15ab_HotRatio regenerates Figure 15a/b (throughput and
// speedup as the hot-transaction fraction grows 0..100%).
func BenchmarkFig15ab_HotRatio(b *testing.B) { benchFigure(b, bench.Fig15ab) }

// BenchmarkFig15c_Optimizations regenerates Figure 15c (the multi-pass
// optimization ablation: fast recirculation, fine-grained locking,
// declustered layout).
func BenchmarkFig15c_Optimizations(b *testing.B) { benchFigure(b, bench.Fig15c) }

// BenchmarkFig16_LayoutImpact regenerates Figure 16 (optimal vs worst data
// layout: throughput and latency for all three workloads).
func BenchmarkFig16_LayoutImpact(b *testing.B) { benchFigure(b, bench.Fig16) }

// BenchmarkFig17_Capacity regenerates Figure 17 (hot-set growing past the
// switch capacity; graceful degradation).
func BenchmarkFig17_Capacity(b *testing.B) { benchFigure(b, bench.Fig17) }

// BenchmarkFig18a_LatencyBreakdown regenerates Figure 18a (per-component
// latency breakdown for TPC-C).
func BenchmarkFig18a_LatencyBreakdown(b *testing.B) {
	o := benchOpts()
	var rows []bench.Row
	for i := 0; i < b.N; i++ {
		rows = bench.Fig18a(o)
	}
	for _, r := range rows {
		if r.Series == "P4DB" && r.X == "Switch Txn" {
			b.ReportMetric(r.Value, "switch-µs/txn")
		}
		if r.Series == "No-Switch" && r.X == "Lock Acquisition" {
			b.ReportMetric(r.Value, "baseline-lock-µs/txn")
		}
	}
	b.ReportMetric(float64(len(rows)), "points")
}

// BenchmarkFig18b_ExistingOptimizations regenerates Figure 18b (plain 2PL
// -> optimal partitioning -> Chiller -> P4DB).
func BenchmarkFig18b_ExistingOptimizations(b *testing.B) { benchFigure(b, bench.Fig18b) }

// BenchmarkFigCalvin_Deterministic regenerates the deterministic-execution
// comparison (No-Switch vs Calvin at three sequencer batch sizes vs P4DB).
// Its calvin points double as the CI smoke for the sequencer, the TPC-C
// reconnaissance pass and the vote-free single-round commit (the 1x
// benchmark step runs every benchmark once).
func BenchmarkFigCalvin_Deterministic(b *testing.B) { benchFigure(b, bench.FigCalvin) }

// BenchmarkScaleN128 is one large-cluster cell of the "scale" figure run
// standalone: 128 nodes under Zipf(0.9) YCSB-A on the P4DB engine. Its
// Mev/s metric is the large-N regression guard's measurement (see
// events_per_sec_floor_n128 in BENCH_sim.json): a reintroduced
// O(N)-per-event loop — say, a switch commit delivering at every idle
// node again — tanks this number long before it shows in the N=4 figures.
func BenchmarkScaleN128(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.Nodes = 128
	cfg.WorkersPerNode = 4
	cfg.SampleTxns = 4000
	w := workload.YCSBWorkloadA(cfg.Nodes)
	w.DistPct = 20
	w.Zipfian = true
	w.Theta = 0.9
	var res *core.Result
	for i := 0; i < b.N; i++ {
		c := core.NewCluster(cfg, workload.NewYCSB(w))
		res = c.Run(100*sim.Microsecond, 400*sim.Microsecond)
	}
	b.ReportMetric(res.Throughput(), "txn/s")
	b.ReportMetric(res.EventsPerSec()/1e6, "Mev/s")
	b.ReportMetric(100*res.Counters.AbortRate(), "abort-%")
}

// BenchmarkAdaptiveOverhead prices the online adaptive layout on a
// workload that does not need it: the stationary hot/cold YCSB-A cell
// with the controller off and on. Online detection agrees with the
// offline layout here, so the sticky placement policy converges to
// moveless re-detections (the migrations metric must read 0) and both
// runs execute the identical event mix — the gap isolates the standing
// machinery cost: sliding-window recording, the running-attempt registry
// and the fold-and-rank tick, all of which the zero-alloc window
// (TestAdaptiveRecordZeroAlloc), the dense-bucket repeated-key fold and
// the moveless-tick fast path keep in the host-noise band. Simulated
// throughput must not move at all. The overhead-%% metric is
// informational: events/sec wobbles more than the overhead itself on a
// busy or single-core host (static-vs-static control pairs swing several
// percent either way there), which is why the CI regression guard checks
// adaptive-Mev/s against the absolute floor recorded as
// events_per_sec_floor_adaptive in BENCH_sim.json rather than the
// percentage, and skips the floor on single-core runners.
func BenchmarkAdaptiveOverhead(b *testing.B) {
	run := func(adaptive bool) *core.Result {
		cfg := core.DefaultConfig()
		cfg.Nodes = 4
		cfg.WorkersPerNode = 8
		cfg.SampleTxns = 12000
		cfg.Adaptive = adaptive
		w := workload.YCSBWorkloadA(cfg.Nodes)
		c := core.NewCluster(cfg, workload.NewYCSB(w))
		// Pay cluster construction's GC debt before the measured window:
		// a collection triggered by construction garbage landing inside
		// one mode's run but not the other's would swamp the comparison.
		runtime.GC()
		return c.Run(200*sim.Microsecond, 2*sim.Millisecond)
	}
	// Sum events and wall time over all iterations: a single run pair's
	// events/sec wobbles more on a busy host than the few percent being
	// measured here.
	var off, on *core.Result
	var offEv, onEv int64
	var offWall, onWall float64
	for i := 0; i < b.N; i++ {
		off = run(false)
		on = run(true)
		offEv, onEv = offEv+off.Events, onEv+on.Events
		offWall, onWall = offWall+off.WallSeconds, onWall+on.WallSeconds
	}
	if off.Throughput() != on.Throughput() {
		b.Fatalf("adaptive controller changed simulated results on a stationary workload: %.0f vs %.0f txn/s",
			off.Throughput(), on.Throughput())
	}
	offRate, onRate := float64(offEv)/offWall, float64(onEv)/onWall
	b.ReportMetric(offRate/1e6, "static-Mev/s")
	b.ReportMetric(onRate/1e6, "adaptive-Mev/s")
	b.ReportMetric(100*(1-onRate/offRate), "overhead-%")
	b.ReportMetric(float64(on.Migrations), "migrations")
}

// BenchmarkAblation_WarmCommit quantifies the combined Decision&Switch
// phase (Figure 10) against running classic 2PC and a separate switch
// round trip, an ablation DESIGN.md calls out: it compares TPC-C under
// P4DB with the multicast commit against the same system where the switch
// trip costs a dedicated round (modelled by doubling the switch latency).
func BenchmarkAblation_WarmCommit(b *testing.B) {
	o := benchOpts()
	var combined, naive float64
	for i := 0; i < b.N; i++ {
		// Combined phase (the default implementation).
		combined = runTPCC(o, 1)
		// Naive: decision round modelled as an extra switch round trip.
		naive = runTPCC(o, 2)
	}
	b.ReportMetric(combined, "combined-txn/s")
	b.ReportMetric(naive, "naive-txn/s")
	if naive > 0 {
		b.ReportMetric(combined/naive, "benefit-x")
	}
}

// runTPCC measures P4DB TPC-C throughput with the switch latency scaled by
// mult (mult=2 approximates a separate decision round after the switch
// transaction).
func runTPCC(o bench.Options, mult int) float64 {
	cfg := core.DefaultConfig()
	cfg.Nodes = o.Nodes
	cfg.WorkersPerNode = o.Threads[len(o.Threads)-1]
	cfg.SampleTxns = o.Samples
	cfg.Latency.NodeToSwitch *= sim.Time(mult)
	gen := workload.NewTPCC(workload.DefaultTPCC(o.Nodes, o.Nodes))
	c := core.NewCluster(cfg, gen)
	return c.Run(o.Warmup, o.Measure).Throughput()
}

// BenchmarkAblation_CCScheme compares the three host-DBMS concurrency
// control families — pessimistic 2PL, optimistic OCC (Appendix A.4) and
// snapshot MVCC — under P4DB on the contended YCSB-A workload. Its MVCC
// point doubles as the CI smoke for the scheme layer (the 1x benchmark
// step runs every benchmark once).
func BenchmarkAblation_CCScheme(b *testing.B) {
	o := benchOpts()
	run := func(scheme string) float64 {
		cfg := core.DefaultConfig()
		cfg.Nodes = o.Nodes
		cfg.WorkersPerNode = o.Threads[len(o.Threads)-1]
		cfg.SampleTxns = o.Samples
		cfg.Scheme = scheme
		w := workload.YCSBWorkloadA(cfg.Nodes)
		c := core.NewCluster(cfg, workload.NewYCSB(w))
		return c.Run(o.Warmup, o.Measure).Throughput()
	}
	var pess, opt, snap float64
	for i := 0; i < b.N; i++ {
		pess = run("2pl")
		opt = run("occ")
		snap = run("mvcc")
	}
	b.ReportMetric(pess, "2pl-txn/s")
	b.ReportMetric(opt, "occ-txn/s")
	b.ReportMetric(snap, "mvcc-txn/s")
}
