// SmallBank example: a banking workload with read-dependent writes and
// balance constraints. It shows (1) how the declustered layout turns the
// dependent transactions (Amalgamate, SendPayment) into single-pass switch
// transactions, and (2) that the money-safety invariant — no account ever
// goes negative, because every debit is a constrained write — holds on the
// switch just as it does under two-phase locking.
//
//	go run ./examples/smallbank
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/workload"
)

func main() {
	const nodes = 4
	sbc := workload.DefaultSmallBank(nodes, 5) // 5 hot customers per node
	sbc.AccountsPerNode = 2000
	gen := workload.NewSmallBank(sbc)

	cfg := core.DefaultConfig()
	cfg.Engine = "p4db" // resolved in the engine registry
	cfg.Nodes = nodes
	cfg.WorkersPerNode = 12
	cfg.SampleTxns = 15000
	cluster := core.NewCluster(cfg, gen)

	fmt.Printf("offloaded %d hot tuples to the switch\n", cluster.HotIndex().OnSwitchCount())

	res := cluster.Run(1*sim.Millisecond, 5*sim.Millisecond)
	fmt.Printf("throughput:        %.0f txn/s\n", res.Throughput())
	fmt.Printf("hot (switch) txns: %d\n", res.Counters.CommittedHot)
	fmt.Printf("cold txns:         %d\n", res.Counters.CommittedCold)
	fmt.Printf("aborts:            %d (switch transactions never abort)\n", res.Counters.Aborts)
	fmt.Printf("single-pass:       %d, multi-pass: %d\n", res.Counters.SinglePass, res.Counters.MultiPass)

	// Verify the balance invariant across node stores and switch registers.
	negative := 0
	for i := 0; i < nodes; i++ {
		st := cluster.Node(i).Store()
		for _, tb := range []store.TableID{workload.SBChecking, workload.SBSavings} {
			for _, k := range st.Table(tb).Keys() {
				if cluster.HotIndex().OnSwitch(store.GlobalField(tb, 0, k)) {
					continue // lives on the switch; node copy is stale
				}
				if st.Table(tb).Get(k, 0) < 0 {
					negative++
				}
			}
		}
	}
	for _, tid := range cluster.Layout().Tuples() {
		s, _ := cluster.Layout().SlotOf(tid)
		if cluster.Switch().ReadRegister(s.Stage, s.Array, s.Index) < 0 {
			negative++
		}
	}
	if negative == 0 {
		fmt.Println("invariant holds: no negative balances anywhere")
	} else {
		fmt.Printf("INVARIANT VIOLATED: %d negative balances\n", negative)
	}
}
