// TPC-C example: warm transactions. The NewOrder/Payment mix touches both
// hot tuples (warehouse/district YTD counters, popular stock) and cold
// tuples (customers, order inserts), so every transaction spans the switch
// AND the database nodes. The example shows the combined Decision&Switch
// commit (Figure 10) at work and prints the per-component latency
// breakdown of Figure 18a.
//
//	go run ./examples/tpcc
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	const nodes = 4
	gen := workload.NewTPCC(workload.DefaultTPCC(nodes, nodes)) // 1 warehouse per node: maximum contention

	for _, sys := range []string{"noswitch", "p4db"} {
		cfg := core.DefaultConfig()
		cfg.Engine = sys
		cfg.Nodes = nodes
		cfg.WorkersPerNode = 16
		cfg.SampleTxns = 15000
		cluster := core.NewCluster(cfg, workload.NewTPCC(workload.DefaultTPCC(nodes, nodes)))
		res := cluster.Run(1*sim.Millisecond, 5*sim.Millisecond)

		fmt.Printf("\n=== %s ===\n", res.EngineLabel)
		fmt.Printf("throughput:  %.0f txn/s   aborts: %d\n", res.Throughput(), res.Counters.Aborts)
		fmt.Printf("warm txns:   %d (cold part on nodes + hot part on switch)\n", res.Counters.CommittedWarm)
		fmt.Printf("latency:     mean %v, p99 %v\n", res.Latency.Mean(), res.Latency.Percentile(99))
		fmt.Println("breakdown (µs per committed txn):")
		for _, comp := range metrics.Components() {
			fmt.Printf("  %-18s %8.2f\n", comp, float64(res.Breakdown.PerTxn(comp))/float64(sim.Microsecond))
		}
	}
	_ = gen
}
