// Quickstart: build a 4-node cluster with a simulated Tofino switch, run
// a skewed YCSB workload under a selectable execution engine, and compare
// against the traditional distributed DBMS without switch support.
//
//	go run ./examples/quickstart [-system p4db|lmswitch|chiller|occ|...]
//	                             [-scheme 2pl|occ|mvcc]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	system := flag.String("system", "p4db", "execution engine to compare against the No-Switch baseline")
	scheme := flag.String("scheme", "", "host CC scheme (2pl, occ, mvcc; default 2pl)")
	flag.Parse()
	if _, err := engine.Lookup(*system); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *scheme != "" {
		if _, err := engine.LookupScheme(*scheme); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	// The workload: YCSB-A (50% writes), 8 operations per transaction,
	// 75% of transactions on 50 hot keys per node, 20% distributed.
	newGen := func(nodes int) *workload.YCSB {
		cfg := workload.YCSBWorkloadA(nodes)
		cfg.RowsPerNode = 1 << 20
		return workload.NewYCSB(cfg)
	}

	run := func(sys string) *core.Result {
		cfg := core.DefaultConfig()
		cfg.Engine = sys
		if *scheme != "" {
			cfg.Scheme = *scheme
		}
		cfg.Nodes = 4
		cfg.WorkersPerNode = 12
		cfg.SampleTxns = 12000
		cluster := core.NewCluster(cfg, newGen(cfg.Nodes))
		// One virtual millisecond of warmup, five of measurement.
		return cluster.Run(1*sim.Millisecond, 5*sim.Millisecond)
	}

	fmt.Println("running the No-Switch baseline...")
	base := run("noswitch")
	chosen := base
	if *system != "noswitch" {
		fmt.Printf("running %s...\n", *system)
		chosen = run(*system)
	}

	fmt.Printf("\n%-22s %14s %9s %8s %12s\n", "system (cc)", "txn/s", "abort%", "hot%", "mean latency")
	for _, r := range []*core.Result{base, chosen} {
		hotPct := 0.0
		if c := r.Counters.Committed(); c > 0 {
			hotPct = 100 * float64(r.Counters.CommittedHot) / float64(c)
		}
		fmt.Printf("%-22s %14.0f %8.1f%% %7.1f%% %12v\n",
			fmt.Sprintf("%s (%s)", r.EngineLabel, r.Scheme), r.Throughput(),
			100*r.Counters.AbortRate(), hotPct, r.Latency.Mean())
	}
	fmt.Printf("\nspeedup: %.2fx (paper reports up to 5x for YCSB under high contention)\n",
		chosen.Throughput()/base.Throughput())
}
