// Recovery example: the exact Figure 9 scenario from the paper, driven
// through the public packages. Two warm transactions T1 and T2 both
// increment a hot tuple x on the switch; Node1 crashes before receiving
// T1's response, then the switch crashes too. Recovery reconstructs the
// serial order (T1 before T2) from T2's logged read x=6 and restores the
// switch to exactly x=6.
//
//	go run ./examples/recovery
package main

import (
	"fmt"
	"os"

	"repro/internal/pisa"
	"repro/internal/sim"
	"repro/internal/txnwire"
	"repro/internal/wal"
)

func main() {
	env := sim.NewEnv(1)
	cfg := pisa.DefaultConfig()
	cfg.SlotsPerArray = 16
	sw := pisa.New(env, cfg)

	// Offload: x starts at 1 (as in Figure 9).
	sw.WriteRegister(0, 0, 0, 1)
	baseline := sw.Snapshot()
	fmt.Println("offloaded x=1 to switch register s0/a0[0]")

	log1, log2 := wal.NewLog(1), wal.NewLog(2)
	add := func(delta int64) []txnwire.Instr {
		return []txnwire.Instr{{Op: txnwire.OpAdd, Stage: 0, Array: 0, Index: 0, Operand: delta}}
	}

	// T1 (Node1): x += 2. The intent is logged BEFORE sending — switch
	// transactions count as committed at that point. Node1 then crashes
	// before the response arrives, so its record keeps GID "?".
	env.Spawn("node1", func(p *sim.Proc) {
		log1.AppendSwitchIntent(1, add(2))
		if _, err := sw.Exec(p, &txnwire.Packet{Header: txnwire.Header{TxnID: 1}, Instrs: add(2)}); err != nil {
			panic(err)
		}
	})
	env.Run()
	fmt.Println("T1 executed x+=2 on the switch; Node1 crashed before the response (log entry: GID=?)")

	// T2 (Node2): x += 3, completes normally and logs GID + result x=6.
	env2 := sim.NewEnv(2)
	env2.Spawn("node2", func(p *sim.Proc) {
		rec := log2.AppendSwitchIntent(2, add(3))
		resp, err := sw.Exec(p, &txnwire.Packet{Header: txnwire.Header{TxnID: 2}, Instrs: add(3)})
		if err != nil {
			panic(err)
		}
		rec.Complete(resp)
		fmt.Printf("T2 executed x+=3 and logged {GID=%d, x=%d}\n", resp.GID, resp.Results[0].Value)
	})
	env2.Run()

	fmt.Printf("pre-crash switch state: x=%d\n", sw.ReadRegister(0, 0, 0))

	// The switch crashes: all registers and the GID counter are lost.
	sw.Reset()
	sw.Restore(baseline)
	fmt.Println("switch crashed and was restored to the offload baseline (x=1)")

	fresh := func() wal.Replayer {
		scratch := pisa.New(sim.NewEnv(0), cfg)
		scratch.Restore(baseline)
		return scratch
	}
	n, nextGID, err := wal.RecoverSwitch([]*wal.Log{log1, log2}, fresh, sw)
	if err != nil {
		fmt.Fprintf(os.Stderr, "recovery failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("recovery replayed %d transactions (next GID %d)\n", n, nextGID)
	fmt.Printf("recovered switch state: x=%d\n", sw.ReadRegister(0, 0, 0))
	if got := sw.ReadRegister(0, 0, 0); got != 6 {
		fmt.Fprintf(os.Stderr, "expected x=6 (T1 before T2, pinned by T2's logged read)\n")
		os.Exit(1)
	}
	fmt.Println("order T1 -> T2 was reconstructed from the read/write-set dependency, as in Figure 9")
}
