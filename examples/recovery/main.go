// Recovery example: the engine-level durability story end to end.
//
// core.Config.Durable arms write-ahead logging on every commit path: warm
// transactions retain their switch intent BEFORE the packet leaves the
// node (the response's GID is back-filled when it arrives — a record
// without one marks a response lost in flight, exactly Figure 9's "GID=?"
// case), and cold transactions retain their redo record at the 2PC
// decision point. core.FaultPlan then crashes the switch mid-run: its
// register file, lock table and GID counter are wiped, and recovery
// rebuilds them in-simulation by replaying every node's logged intents in
// GID order — GID-less records are fitted into their GID gaps and the
// whole sequence is verified against the logged read/write results
// (Figure 9's analysis) before it is accepted.
//
// The correctness oracle is digest equality: the crash handler perturbs
// nothing (no RNG draws, no scheduled events), so the recovered run must
// finish in exactly the state of an identical run with no fault. Any byte
// recovery loses or invents shows up in the final state digest.
//
//	go run ./examples/recovery
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.Engine = "p4db" // the switch-crash story needs offloaded tuples
	cfg.Nodes = 4
	cfg.WorkersPerNode = 6
	cfg.SampleTxns = 12000
	cfg.Switch.SlotsPerArray = 256
	cfg.Durable = true      // retain WAL records on every commit path
	cfg.CaptureState = true // fill Result.StateDigest — the oracle

	gen := func() *workload.SmallBank {
		sbc := workload.DefaultSmallBank(cfg.Nodes, 5)
		sbc.AccountsPerNode = 500
		return workload.NewSmallBank(sbc)
	}
	warmup, measure := 500*sim.Microsecond, 2*sim.Millisecond

	// First, the golden run: same seed, same workload, no fault.
	golden := core.NewCluster(cfg, gen()).Run(warmup, measure)
	fmt.Printf("golden run:    %d committed (%d on the switch), digest %s\n",
		golden.Counters.Committed(), golden.SwitchTxns, golden.StateDigest[:16])

	// Now the same run with the switch crashing mid-measurement.
	cfg.Fault = &core.FaultPlan{Kind: core.SwitchCrash, At: 1200 * sim.Microsecond}
	res := core.NewCluster(cfg, gen()).Run(warmup, measure)
	st := res.Recovery
	fmt.Printf("switch crashed at %v: scanned %d intents, replayed %d in GID order\n",
		st.At, st.LogRecords, st.SwitchReplayed)
	fmt.Printf("  %d responses lost in the crash were gap-fitted; %d packets still in the fabric were excluded\n",
		st.ResponsesLost, st.InFabric)
	fmt.Printf("  modeled recovery latency: %v\n", st.RecoveryTime)
	fmt.Printf("recovered run: %d committed (%d on the switch), digest %s\n",
		res.Counters.Committed(), res.SwitchTxns, res.StateDigest[:16])

	if res.StateDigest != golden.StateDigest {
		fmt.Fprintln(os.Stderr, "recovered state diverged from the golden run")
		os.Exit(1)
	}
	fmt.Println("recovered state equals the no-fault golden state bit for bit")
}
