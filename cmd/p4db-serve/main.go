// Command p4db-serve hosts a simulated P4DB cluster behind a real TCP
// listener speaking the txnwire framing. Every engine and scheme from
// the registries is servable; transactions arrive as length-prefixed
// TxnRequest frames (see internal/txnwire), execute through the same
// code the simulator runs, and are answered with framed TxnReplys.
// cmd/p4db-load is the matching load generator.
//
// The process shuts down gracefully on SIGINT/SIGTERM: in-flight
// transactions commit, replies flush, then the counters print.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lock"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7400", "TCP listen address")
	engineName := flag.String("engine", "p4db", fmt.Sprintf("execution engine %v", engine.Names()))
	scheme := flag.String("scheme", "", fmt.Sprintf("host CC scheme %v (empty = 2pl)", engine.SchemeNames()))
	workloadName := flag.String("workload", "smallbank", fmt.Sprintf("workload schema/partitioning %v", workload.Names()))
	nodes := flag.Int("nodes", 4, "database nodes in the cluster")
	theta := flag.Float64("theta", 0, "Zipf skew exponent for YCSB workloads (0 = hot/cold split; clients must match)")
	policy := flag.String("policy", "NO_WAIT", "2PL deadlock policy: NO_WAIT or WAIT_DIE")
	seed := flag.Uint64("seed", 42, "simulation seed")
	samples := flag.Int("samples", 12000, "workload samples for hot-set detection")
	slots := flag.Int("slots", 256, "switch register slots per array")
	adaptive := flag.Bool("adaptive", false, "online adaptive layout: sliding-window re-detection + live tuple migration")
	adaptIntervalUs := flag.Float64("adapt-interval", 0, "adaptive re-detection period in virtual µs (0 = core default)")
	flag.Parse()

	pol, err := lock.ParsePolicy(*policy)
	if err != nil {
		fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Engine = *engineName
	cfg.Scheme = *scheme
	cfg.Nodes = *nodes
	cfg.WorkersPerNode = 1
	cfg.Policy = pol
	cfg.Seed = *seed
	cfg.SampleTxns = *samples
	cfg.Switch.SlotsPerArray = *slots
	if *adaptIntervalUs < 0 {
		fatal(fmt.Errorf("bad -adapt-interval value %g (must be >= 0)", *adaptIntervalUs))
	}
	cfg.Adaptive = *adaptive
	cfg.AdaptInterval = sim.Time(*adaptIntervalUs * float64(sim.Microsecond))

	s, err := server.New(server.Config{Core: cfg, Workload: *workloadName, Theta: *theta})
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("p4db-serve: %s/%s serving %s on %s (%d nodes)\n",
		*engineName, s.Cluster().EngineContext().Scheme.Name(), *workloadName, ln.Addr(), *nodes)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()

	select {
	case sig := <-sigCh:
		fmt.Printf("p4db-serve: %v, draining\n", sig)
		s.Shutdown()
		if err := <-serveErr; err != nil {
			fatal(err)
		}
	case err := <-serveErr:
		if err != nil {
			fatal(err)
		}
	}

	st := s.Stats()
	res := s.Result()
	fmt.Printf("p4db-serve: %d conns, %d requests, %d commits, %d rejected, %d retries\n",
		st.Conns, st.Requests, st.Commits, st.Rejected, st.Retries)
	if res.Migrations > 0 {
		fmt.Printf("p4db-serve: adaptive layout: %d migrations, %d promoted, %d demoted, %d fence waits\n",
			res.Migrations, res.Promoted, res.Demoted, res.FenceWaits)
	}
	if res.Latency.Count() > 0 {
		fmt.Printf("p4db-serve: virtual latency µs p50=%.1f p99=%.1f mean=%.1f\n",
			float64(res.Latency.Percentile(50))/1e3,
			float64(res.Latency.Percentile(99))/1e3,
			float64(res.Latency.Mean())/1e3)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "p4db-serve:", err)
	os.Exit(1)
}
