// Command p4db-bench regenerates the paper's evaluation figures on the
// simulated cluster.
//
// Usage:
//
//	p4db-bench [-fig id | -matrix | -golden] [-system names] [-scheme name]
//	           [-quick] [-parallel n] [-measure ms] [-seed n]
//	           [-durable] [-faults]
//	           [-cpuprofile out.prof] [-memprofile out.prof] [-trace out.trace]
//	           [-digest] [-v]
//
// Figure ids: 1, 11t, 11d, 12, 13t, 13d, 14t, 14d, 15ab, 15c, 16, 17,
// 18a, 18b, calvin, scale, drift, recover, or "all" (default; "scale",
// "drift" and "recover" are extensions, not in "all"). The appendix
// raw-throughput figures 19-21 are the txn/s columns of figures 11/13/14;
// "calvin" is the deterministic-execution comparison (No-Switch vs Calvin
// at three sequencer batch sizes vs P4DB); "drift" compares the static
// offline layout, the online adaptive layout and a per-phase oracle on
// hot-set-shifting workloads; "recover" plots modeled crash-recovery
// latency against WAL length for all three recovery stories (switch
// crash, 2PC-coordinator crash, sequencer failover) at increasing crash
// depths.
//
// -matrix replaces the figure sweeps with the scenario-matrix runner: the
// full engines × workloads × schemes grid (every registered engine on
// YCSB-A/B/C, SmallBank and TPC-C under every registered CC scheme, with
// hardwired-scheme engines contributing one cell), one row per cell with
// speedups against the (noswitch, 2pl) cell of the same workload. -system
// and -scheme restrict the grid's engine and scheme axes.
//
// -faults (requires -matrix) appends the crash-recovery dimension to the
// matrix: for YCSB-A, SmallBank and TPC-C, a no-fault golden cell plus a
// fault-injected cell for each recovery story — switch-crash (P4DB),
// coord-crash (No-Switch 2PC) and sequencer-failover (Calvin) — all
// durable, all crashed mid-measurement. Every fault cell hard-asserts
// that its recovered final state digest equals its golden cell's; a
// recovery that loses or invents a single byte aborts the run instead of
// printing a plausible row.
//
// -durable turns on write-ahead logging (core.Config.Durable) in every
// run. Durability gates record retention only — every commit path waits
// out its log-append delays unconditionally — so tables and digests are
// bit-identical with or without the flag; it exists to measure the
// harness's own logging overhead (wall-clock, allocations) and to drive
// recovery tooling from figure-scale runs.
//
// -parallel bounds the worker pool sweep points execute on (all modes;
// 0 = GOMAXPROCS, 1 = serial). Every point is an independent seeded
// simulation and rows are reassembled in declared order, so the tables
// and the digest are bit-identical at any parallelism — only wall-clock
// changes.
//
// -cpuprofile writes a pprof CPU profile of the sweep for harness
// optimization work (see the "Profiling the harness" section of the
// README). -memprofile writes an allocation profile captured at sweep
// exit (after a final GC), and -trace writes a runtime execution trace —
// the tool for inspecting the worker pool's scheduling and any residual
// goroutine churn on the hot path. -digest prints the SHA-256 digest of the deterministic row
// fields after the tables — two runs with the same seed and figure set
// must print the same digest, which makes scheduler refactors checkable
// end to end.
//
// -golden runs the pinned golden sweep (bench.GoldenSweep) serially and
// on a 4-worker pool and verifies both digests against the committed
// internal/bench/testdata/golden.digest — the same pin
// TestQuickSweepDeterministic enforces. It exits non-zero on any
// mismatch, which makes it the CI golden-digest gate; all sizing flags
// are ignored (the sweep is pinned by definition).
//
// -system selects execution engines by registry name (comma-separated,
// e.g. -system=p4db,lmswitch,chiller) and replaces the engines the sweep
// figures compare against the No-Switch baseline; any engine registered
// in internal/engine is selectable without touching this command.
// Figures with a fixed engine set (1, 12, 15ab, 15c, 16, 17, 18a, 18b,
// calvin) reject -system instead of silently ignoring it; with -fig all
// the override applies to the figures that sweep an engine axis.
//
// -scheme selects the host DBMS concurrency-control family by scheme
// registry name (2pl, occ, mvcc) for every run of the sweep; engines that
// hardwire their scheme (lmswitch, chiller, occ, calvin) are unaffected, and the
// per-row cc column reports what actually ran.
//
// -theta switches every YCSB generator to Zipfian key selection at that
// skew exponent instead of the paper's two-level hot/cold split. The
// "scale" figure sweeps its own θ axis and ignores the flag.
//
// -adaptive turns on the online adaptive layout (sliding-window hot-set
// re-detection plus live switch↔node tuple migration) in every run;
// -adapt-interval overrides the re-detection period in virtual µs. The
// "drift" figure pins adaptivity per series and ignores both.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sim"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate (or 'all')")
	matrix := flag.Bool("matrix", false, "run the engines × workloads × schemes scenario matrix instead of the figures")
	golden := flag.Bool("golden", false, "run the pinned golden sweep and verify its digest against internal/bench/testdata/golden.digest (CI gate)")
	parallel := flag.Int("parallel", 0, "worker pool size for sweep points (0 = GOMAXPROCS, 1 = serial)")
	system := flag.String("system", "", "engine(s) for the sweep figures, e.g. p4db,lmswitch (default: each figure's paper set)")
	scheme := flag.String("scheme", "", "host CC scheme for every run, e.g. 2pl, occ, mvcc (default: 2pl; scheme-pinned engines are unaffected)")
	quick := flag.Bool("quick", false, "reduced scale for a fast smoke run")
	measureMs := flag.Float64("measure", 0, "override measurement window in virtual ms")
	samples := flag.Int("samples", 0, "override detection sample size")
	threads := flag.String("threads", "", "override thread sweep, e.g. 8,14,20")
	theta := flag.Float64("theta", 0, "Zipf skew exponent for the YCSB figures (0 = paper's hot/cold split)")
	adaptive := flag.Bool("adaptive", false, "turn on the online adaptive layout in every run (the 'drift' figure pins adaptivity per series and ignores this)")
	adaptIntervalUs := flag.Float64("adapt-interval", 0, "adaptive re-detection period in virtual µs (0 = core default; implies nothing without -adaptive)")
	durable := flag.Bool("durable", false, "turn on write-ahead logging in every run (digest-invariant; the fault cells force it on regardless)")
	faults := flag.Bool("faults", false, "append the crash-recovery dimension to the scenario matrix (requires -matrix)")
	seed := flag.Uint64("seed", 42, "simulation seed")
	verbose := flag.Bool("v", false, "print per-run progress")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
	memprofile := flag.String("memprofile", "", "write a pprof allocation profile at sweep exit to this file")
	traceOut := flag.String("trace", "", "write a runtime execution trace of the sweep to this file")
	digest := flag.Bool("digest", false, "print the deterministic row digest after the tables")
	flag.Parse()

	opts := bench.Default()
	if *quick {
		opts = bench.Quick()
	}
	if *measureMs > 0 {
		opts.Measure = sim.Time(*measureMs * float64(sim.Millisecond))
	}
	if *samples > 0 {
		opts.Samples = *samples
	}
	if *threads != "" {
		var ts []int
		for _, part := range strings.Split(*threads, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || v <= 0 {
				fmt.Fprintf(os.Stderr, "bad -threads value %q\n", part)
				os.Exit(2)
			}
			ts = append(ts, v)
		}
		opts.Threads = ts
	}
	if *system != "" {
		var systems []string
		for _, part := range strings.Split(*system, ",") {
			name := strings.TrimSpace(part)
			if _, err := engine.Lookup(name); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			systems = append(systems, name)
		}
		opts.Systems = systems
	}
	if *scheme != "" {
		if _, err := engine.LookupScheme(*scheme); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		opts.Scheme = *scheme
	}
	if *theta < 0 {
		fmt.Fprintf(os.Stderr, "bad -theta value %g (must be >= 0)\n", *theta)
		os.Exit(2)
	}
	opts.Theta = *theta
	if *adaptIntervalUs < 0 {
		fmt.Fprintf(os.Stderr, "bad -adapt-interval value %g (must be >= 0)\n", *adaptIntervalUs)
		os.Exit(2)
	}
	opts.Adaptive = *adaptive
	opts.AdaptInterval = sim.Time(*adaptIntervalUs * float64(sim.Microsecond))
	if *faults && !*matrix {
		fmt.Fprintln(os.Stderr, "-faults is a scenario-matrix dimension; it requires -matrix")
		os.Exit(2)
	}
	opts.Durable = *durable
	opts.Faults = *faults
	opts.Seed = *seed
	if *parallel < 0 {
		fmt.Fprintf(os.Stderr, "bad -parallel value %d\n", *parallel)
		os.Exit(2)
	}
	opts.Parallel = *parallel
	if *verbose {
		opts.Progress = os.Stderr
	}

	if *golden {
		// The golden sweep is pinned by definition: only sizing flags may
		// be silently ignored. Flags that would change WHAT runs must
		// hard-error instead of producing a misleading "OK" for a sweep
		// the user did not select. -durable is in the list even though the
		// digest is durability-invariant by design: the gate re-asserts the
		// exact configuration the pin was recorded under (Durable=false),
		// and the invariance itself has its own pins
		// (core.TestDurableDigestInvariance, bench's recover tests).
		conflict := *fig != "all" || *matrix
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "system", "scheme", "seed", "theta", "adaptive", "adapt-interval", "durable", "faults":
				conflict = true
			}
		})
		if conflict {
			fmt.Fprintln(os.Stderr, "-golden runs the pinned sweep; it is mutually exclusive with -fig, -matrix, -system, -scheme, -seed, -theta, -adaptive, -adapt-interval, -durable and -faults")
			os.Exit(2)
		}
		runGoldenGate()
		return
	}

	runner := bench.All
	switch {
	case *matrix:
		if *fig != "all" {
			fmt.Fprintln(os.Stderr, "-matrix and -fig are mutually exclusive")
			os.Exit(2)
		}
		runner = bench.Matrix
	case *fig != "all":
		r, ok := bench.Figures[*fig]
		if !ok {
			ids := make([]string, 0, len(bench.Figures))
			for id := range bench.Figures {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			fmt.Fprintf(os.Stderr, "unknown figure %q; available: %v or all\n", *fig, ids)
			os.Exit(2)
		}
		if len(opts.Systems) > 0 && !bench.SystemsAware[*fig] {
			aware := make([]string, 0, len(bench.SystemsAware))
			for id := range bench.SystemsAware {
				aware = append(aware, id)
			}
			sort.Strings(aware)
			fmt.Fprintf(os.Stderr, "figure %q compares a fixed engine set and ignores -system; figures honoring -system: %v (or use -matrix / -fig all)\n", *fig, aware)
			os.Exit(2)
		}
		runner = r
	}

	// Start profiling only after every flag is validated: the os.Exit(2)
	// error paths above would bypass the deferred StopCPUProfile and leave
	// a corrupt profile behind.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(2)
		}
		defer trace.Stop()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(2)
		}
		defer func() {
			// GC first so the profile shows live retention, not garbage.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
			f.Close()
		}()
	}

	rows := runner(opts)
	bench.Print(os.Stdout, rows)
	if *verbose {
		fmt.Fprintf(os.Stderr, "detect cache: %s\n", core.DetectCacheStats())
	}
	if *digest {
		fmt.Printf("\ndigest: %s\n", bench.Digest(rows))
	}
}

// runGoldenGate is the -golden mode: run the pinned golden sweep twice
// (serial and on a 4-worker pool) and verify both digests against the
// committed golden.digest file. Exit status is the CI contract: 0 only
// when both runs reproduce the pin bit-for-bit.
func runGoldenGate() {
	pinned := bench.GoldenDigest()
	fmt.Printf("golden (pinned):     %s\n", pinned)
	serial := bench.Digest(bench.GoldenSweep(1))
	fmt.Printf("golden (serial):     %s\n", serial)
	parallel := bench.Digest(bench.GoldenSweep(4))
	fmt.Printf("golden (parallel=4): %s\n", parallel)
	if serial != parallel {
		fmt.Fprintln(os.Stderr, "FAIL: serial and parallel golden sweeps diverge")
		os.Exit(1)
	}
	if serial != pinned {
		fmt.Fprintln(os.Stderr, "FAIL: golden sweep digest moved off internal/bench/testdata/golden.digest; deliberate change? update the file and record why in BENCH_sim.json")
		os.Exit(1)
	}
	fmt.Println("OK: golden sweep reproduces the pinned digest (serial == parallel=4)")
}
