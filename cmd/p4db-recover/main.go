// Command p4db-recover drives the engine-level crash-recovery path end to
// end (Section 6.1 / Figure 9): it runs a durable cluster
// (core.Config.Durable — every commit path retains its write-ahead record
// before the outcome is externalized), crashes the chosen component
// mid-run via core.FaultPlan, lets in-simulation recovery rebuild the
// lost state from the per-node logs, and verifies the oracle: the
// recovered run's final state digest must equal the digest of an
// identical run with no fault injected. The crash handler is
// zero-perturbation (no RNG draws, no scheduled events), so any byte
// recovery fails to reconstruct shows up as a digest mismatch.
//
// Usage:
//
//	p4db-recover [-fault switch|node|coord|sequencer] [-at us] [-node id]
//	             [-nodes n] [-seed n]
//
// Fault kinds and the engine each one exercises:
//
//	switch     P4DB: the switch register file, locks and GID counter are
//	           wiped; recovery replays every node's switch intents in GID
//	           order, gap-fitting records whose response was in flight.
//	node       No-Switch 2PL/2PC: one node's partition is redone from the
//	           committed cold records of all node logs, merged in LSN
//	           (decision-time) order onto the load-time image.
//	coord      the same redo with the crashed node in its 2PC-coordinator
//	           role: presumed abort resolves its in-doubt transactions.
//	sequencer  Calvin: a standby sequencer replays the epoch log against
//	           the logged initial RNG state, reproducing the exact
//	           permutation stream before adopting the role.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	kind := flag.String("fault", "switch", "component to crash: switch, node, coord or sequencer")
	atUs := flag.Float64("at", 800, "crash instant in virtual µs (must fall inside the run)")
	node := flag.Int("node", 0, "crashed node for -fault node/coord")
	nodes := flag.Int("nodes", 4, "database nodes")
	seed := flag.Uint64("seed", 42, "simulation seed")
	flag.Parse()

	var plan core.FaultPlan
	var engineName string
	switch *kind {
	case "switch":
		plan.Kind, engineName = core.SwitchCrash, "p4db"
	case "node":
		plan.Kind, engineName = core.NodeCrash, "noswitch"
	case "coord":
		plan.Kind, engineName = core.CoordCrash, "noswitch"
	case "sequencer":
		plan.Kind, engineName = core.SequencerCrash, "calvin"
	default:
		fmt.Fprintf(os.Stderr, "unknown -fault %q (want switch, node, coord or sequencer)\n", *kind)
		os.Exit(2)
	}
	plan.At = sim.Time(*atUs * float64(sim.Microsecond))
	plan.Node = *node

	cfg := core.DefaultConfig()
	cfg.Engine = engineName
	cfg.Nodes = *nodes
	cfg.WorkersPerNode = 6
	cfg.Seed = *seed
	cfg.SampleTxns = 12000
	cfg.Switch.SlotsPerArray = 256
	cfg.Durable = true
	cfg.CaptureState = true

	gen := func() *workload.YCSB {
		wc := workload.YCSBWorkloadA(*nodes)
		wc.DistPct = 50
		return workload.NewYCSB(wc)
	}
	warmup, measure := 500*sim.Microsecond, 2*sim.Millisecond

	// The oracle: the same seeded run with no fault. Durability gates
	// record retention only, so this is exactly the state the recovered
	// run must land on.
	golden := core.NewCluster(cfg, gen()).Run(warmup, measure)
	fmt.Printf("golden run: %d committed, state digest %s\n",
		golden.Counters.Committed(), golden.StateDigest[:16])

	cfg.Fault = &plan
	res := core.NewCluster(cfg, gen()).Run(warmup, measure)
	st := res.Recovery
	fmt.Printf("crashed %s at %v on engine %s\n", st.Kind, st.At, engineName)
	fmt.Printf("recovery scanned %d log records", st.LogRecords)
	switch plan.Kind {
	case core.SwitchCrash:
		fmt.Printf("; replayed %d switch txns (%d gap-fitted, %d left in fabric)", st.SwitchReplayed, st.ResponsesLost, st.InFabric)
	case core.NodeCrash, core.CoordCrash:
		fmt.Printf("; redid %d cold records (%d writes, %d rows in doubt)", st.ColdRedone, st.WritesRedone, st.InDoubt)
	case core.SequencerCrash:
		fmt.Printf("; standby replayed %d epochs", st.EpochsReplayed)
	}
	fmt.Printf("\nmodeled recovery latency: %v\n", st.RecoveryTime)
	fmt.Printf("recovered run: %d committed, state digest %s\n",
		res.Counters.Committed(), res.StateDigest[:16])

	if res.StateDigest != golden.StateDigest {
		fmt.Fprintln(os.Stderr, "MISMATCH: recovered state diverged from the no-fault golden state")
		os.Exit(1)
	}
	fmt.Println("recovered state matches the no-fault golden state bit for bit")
}
