// Command p4db-recover demonstrates switch-state durability and recovery
// (Section 6.1 / Figure 9): it runs hot SmallBank transactions on the
// switch, "loses" the responses of a few in-flight transactions, crashes
// the switch, and reconstructs the exact pre-crash register state from the
// per-node write-ahead logs.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/pisa"
	"repro/internal/sim"
	"repro/internal/txnwire"
	"repro/internal/wal"
	"repro/internal/workload"
)

func main() {
	nodes := flag.Int("nodes", 4, "database nodes")
	lose := flag.Int("lose", 2, "in-flight responses to lose before the crash")
	seed := flag.Uint64("seed", 42, "simulation seed")
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Engine = "p4db" // recovery needs the switch, so the engine is fixed
	cfg.Nodes = *nodes
	cfg.WorkersPerNode = 4
	cfg.Seed = *seed
	cfg.SampleTxns = 12000
	cfg.Switch.SlotsPerArray = 256

	sbc := workload.DefaultSmallBank(*nodes, 5)
	sbc.AccountsPerNode = 500
	sbc.HotTxnPct = 100
	gen := workload.NewSmallBank(sbc)
	c := core.NewCluster(cfg, gen)

	res := c.Run(500*sim.Microsecond, 2*sim.Millisecond)
	fmt.Printf("ran %d transactions (%d on the switch)\n", res.Counters.Committed(), res.SwitchTxns)

	logs := make([]*wal.Log, *nodes)
	total := 0
	for i := range logs {
		logs[i] = c.Node(i).Log()
		total += len(logs[i].SwitchRecords())
	}
	fmt.Printf("write-ahead logs hold %d switch records across %d nodes\n", total, *nodes)

	// Lose responses of purely-additive records (in-flight at the crash):
	// their GIDs become unknown and recovery must fit them into the serial
	// order via the read/write-set analysis of Figure 9.
	lost := 0
	for _, l := range logs {
		for _, rec := range l.SwitchRecords() {
			if lost >= *lose || !rec.HasGID {
				continue
			}
			additive := len(rec.Instrs) > 0
			for _, in := range rec.Instrs {
				if in.Op != txnwire.OpAdd {
					additive = false
					break
				}
			}
			if additive {
				rec.HasGID = false
				rec.GID = 0
				rec.Results = nil
				lost++
			}
		}
	}
	fmt.Printf("simulated crash with %d in-flight (GID-less) records\n", lost)

	want := c.Switch().Snapshot()
	c.Switch().Reset()
	c.Switch().Restore(c.Baseline())
	fresh := func() wal.Replayer {
		scratch := pisa.New(sim.NewEnv(0), cfg.Switch)
		scratch.Restore(c.Baseline())
		return scratch
	}
	replayed, nextGID, err := wal.RecoverSwitch(logs, fresh, c.Switch())
	if err != nil {
		fmt.Fprintf(os.Stderr, "recovery failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("replayed %d switch transactions; next GID %d\n", replayed, nextGID)

	got := c.Switch().Snapshot()
	for i := range got {
		if got[i] != want[i] {
			fmt.Fprintf(os.Stderr, "MISMATCH at register %d: recovered %d, pre-crash %d\n", i, got[i], want[i])
			os.Exit(1)
		}
	}
	fmt.Println("recovered switch state matches the pre-crash state exactly")
}
