// Command p4db-load is the open-loop load generator for p4db-serve. It
// opens pipelined txnwire connections, submits a registered workload at
// a target rate (or closed-loop), and reports wall-clock commits/s with
// latency percentiles from a mergeable fixed-bucket histogram.
//
// Two modes:
//
//   - Direct: -addr points at running server(s); one report prints.
//   - Scaling: -scale "1,2,4" spawns that many p4db-serve processes per
//     point (independent shared-nothing shards), drives them together,
//     and prints a scaling table. Requires -serve-bin.
//
// -json emits the report(s) as JSON for benchmark baselines.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"repro/internal/loadgen"
	"repro/internal/workload"
)

func main() {
	addrs := flag.String("addr", "127.0.0.1:7400", "comma-separated server addresses")
	workloadName := flag.String("workload", "smallbank", fmt.Sprintf("workload %v", workload.Names()))
	nodes := flag.Int("nodes", 4, "node count of each target server")
	theta := flag.Float64("theta", 0, "Zipf skew exponent for YCSB workloads (0 = hot/cold split; must match the servers)")
	conns := flag.Int("conns", 4, "total client connections")
	rate := flag.Float64("rate", 0, "total target rate in txn/s (0 = closed loop)")
	window := flag.Int("window", 256, "max outstanding transactions per connection")
	duration := flag.Duration("duration", 2*time.Second, "load duration")
	seed := flag.Uint64("seed", 42, "workload stream seed")
	asJSON := flag.Bool("json", false, "emit JSON instead of text")
	scale := flag.String("scale", "", "comma-separated server counts to sweep (spawns p4db-serve per point)")
	serveBin := flag.String("serve-bin", "", "path to the p4db-serve binary (scaling mode)")
	serveArgs := flag.String("serve-args", "", "extra args for spawned servers, space-separated (e.g. \"-engine p4db -slots 256\")")
	basePort := flag.Int("base-port", 7410, "first port for spawned servers")
	adaptive := flag.Bool("adaptive", false, "scaling mode: spawn servers with the online adaptive layout (-adaptive)")
	adaptIntervalUs := flag.Float64("adapt-interval", 0, "scaling mode: spawned servers' re-detection period in virtual µs (0 = core default)")
	flag.Parse()

	if *scale != "" {
		runScale(*scale, *serveBin, *serveArgs, *basePort, *workloadName, *nodes, *theta, *adaptive, *adaptIntervalUs, *conns, *rate, *window, *duration, *seed, *asJSON)
		return
	}
	if *adaptive || *adaptIntervalUs != 0 {
		// Direct mode drives servers someone else started: the layout knobs
		// belong on their p4db-serve command lines, not here.
		fatal(fmt.Errorf("-adaptive/-adapt-interval only apply in -scale mode (pass them to p4db-serve directly)"))
	}

	rep, err := loadgen.Run(loadgen.Config{
		Addrs:    strings.Split(*addrs, ","),
		Workload: *workloadName,
		Nodes:    *nodes,
		Theta:    *theta,
		Conns:    *conns,
		Rate:     *rate,
		Window:   *window,
		Duration: *duration,
		Seed:     *seed,
	})
	if err != nil {
		fatal(err)
	}
	emit([]*loadgen.Report{rep}, *asJSON)
}

// runScale sweeps server counts: per point it spawns that many
// p4db-serve processes, waits for their listeners, drives them together,
// and tears them down.
func runScale(scale, serveBin, serveArgs string, basePort int, workloadName string, nodes int, theta float64, adaptive bool, adaptIntervalUs float64, conns int, rate float64, window int, duration time.Duration, seed uint64, asJSON bool) {
	if serveBin == "" {
		fatal(fmt.Errorf("scaling mode needs -serve-bin"))
	}
	var counts []int
	for _, s := range strings.Split(scale, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			fatal(fmt.Errorf("bad -scale entry %q", s))
		}
		counts = append(counts, n)
	}
	var extra []string
	if adaptive {
		extra = append(extra, "-adaptive")
	}
	if adaptIntervalUs != 0 {
		extra = append(extra, "-adapt-interval", strconv.FormatFloat(adaptIntervalUs, 'g', -1, 64))
	}
	if serveArgs != "" {
		extra = append(extra, strings.Fields(serveArgs)...)
	}

	var reports []*loadgen.Report
	port := basePort
	for _, n := range counts {
		addrs := make([]string, n)
		procs := make([]*exec.Cmd, n)
		for i := 0; i < n; i++ {
			addrs[i] = fmt.Sprintf("127.0.0.1:%d", port)
			port++
			args := append([]string{
				"-addr", addrs[i],
				"-workload", workloadName,
				"-nodes", strconv.Itoa(nodes),
				"-theta", strconv.FormatFloat(theta, 'g', -1, 64),
				"-seed", strconv.FormatUint(seed+uint64(i), 10),
			}, extra...)
			cmd := exec.Command(serveBin, args...)
			cmd.Stdout = os.Stderr
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				fatal(err)
			}
			procs[i] = cmd
		}
		for _, a := range addrs {
			if err := waitReady(a, 30*time.Second); err != nil {
				killAll(procs)
				fatal(err)
			}
		}

		c := conns
		if c < n {
			c = n // at least one connection per server
		}
		rep, err := loadgen.Run(loadgen.Config{
			Addrs:    addrs,
			Workload: workloadName,
			Nodes:    nodes,
			Theta:    theta,
			Conns:    c,
			Rate:     rate,
			Window:   window,
			Duration: duration,
			Seed:     seed,
		})
		killAll(procs)
		if err != nil {
			fatal(err)
		}
		reports = append(reports, rep)
	}
	emit(reports, asJSON)
}

// waitReady polls until the server accepts a connection.
func waitReady(addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			c.Close()
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not ready after %v: %w", addr, timeout, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// killAll interrupts the spawned servers and waits for them; they drain
// and print their own stats to stderr.
func killAll(procs []*exec.Cmd) {
	for _, p := range procs {
		if p.Process != nil {
			p.Process.Signal(os.Interrupt)
		}
	}
	for _, p := range procs {
		p.Wait()
	}
}

// emit prints the reports: a scaling table (plus per-point lines) as
// text, or a JSON array.
func emit(reports []*loadgen.Report, asJSON bool) {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("%-10s %8s %12s %10s %10s %10s %10s\n",
		"workload", "servers", "commits/s", "p50(µs)", "p95(µs)", "p99(µs)", "max(µs)")
	for _, r := range reports {
		fmt.Printf("%-10s %8d %12.0f %10.0f %10.0f %10.0f %10.0f\n",
			r.Workload, r.Servers, r.Throughput, r.P50LatUs, r.P95LatUs, r.P99LatUs, r.MaxLatUs)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "p4db-load:", err)
	os.Exit(1)
}
