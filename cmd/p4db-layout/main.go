// Command p4db-layout runs the offline preparation step in isolation:
// build a cluster for the selected engine (which performs sampling,
// hot-set detection, the declustered layout computation and — for P4DB —
// the register offload), then replay a fresh workload sample and report
// how many of the hot transactions would execute in a single pipeline
// pass — the metric Section 4's data layout optimizes.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/layout"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	wl := flag.String("workload", "smallbank", "ycsb-a | ycsb-b | ycsb-c | smallbank | tpcc")
	system := flag.String("system", "p4db", "execution engine (registry name) whose offline prep to run")
	nodes := flag.Int("nodes", 8, "database nodes")
	samples := flag.Int("samples", 60000, "sampled transactions for detection")
	random := flag.Bool("random", false, "use the random (worst-case) layout instead of the declustered one")
	seed := flag.Uint64("seed", 42, "sampling seed")
	flag.Parse()

	eng, err := engine.Lookup(*system)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var gen workload.Generator
	switch *wl {
	case "ycsb-a":
		gen = workload.NewYCSB(workload.YCSBWorkloadA(*nodes))
	case "ycsb-b":
		gen = workload.NewYCSB(workload.YCSBWorkloadB(*nodes))
	case "ycsb-c":
		gen = workload.NewYCSB(workload.YCSBWorkloadC(*nodes))
	case "smallbank":
		gen = workload.NewSmallBank(workload.DefaultSmallBank(*nodes, 10))
	case "tpcc":
		gen = workload.NewTPCC(workload.DefaultTPCC(*nodes, *nodes))
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		os.Exit(2)
	}

	// The cluster constructor performs the whole offline pipeline of
	// Figure 3 — sampling, detection, (profile-refined) layout and the
	// engine's Prepare step — exactly as the benchmarks run it.
	cfg := core.DefaultConfig()
	cfg.Engine = *system
	cfg.Nodes = *nodes
	cfg.SampleTxns = *samples
	cfg.RandomLayout = *random
	cfg.Seed = *seed
	c := core.NewCluster(cfg, gen)
	defer c.Env().Shutdown()

	l := c.Layout()
	ix := c.HotIndex()
	spec := layout.Spec{Stages: cfg.Switch.Stages, ArraysPerStage: cfg.Switch.ArraysPerStage, SlotsPerArray: cfg.Switch.SlotsPerArray}

	fmt.Printf("engine:         %s (%s)\n", eng.Label(), eng.Name())
	fmt.Printf("workload:       %s (%d nodes, %d sampled txns)\n", gen.Name(), *nodes, *samples)
	fmt.Printf("hot tuples:     %d on the switch layout\n", ix.OnSwitchCount())
	fmt.Printf("layout:         %d tuples over %d stages x %d arrays\n",
		l.NumTuples(), spec.Stages, spec.ArraysPerStage)

	// Replay a fresh sample against the computed layout.
	rng := sim.NewRNG(*seed)
	single, multi, hot := 0, 0, 0
	for i := 0; i < *samples; i++ {
		txn := gen.Next(rng, netsim.NodeID(i%*nodes))
		allHot := len(txn.Ops) > 0
		ops := make([]layout.HotOp, 0, len(txn.Ops))
		for _, op := range txn.Ops {
			if !ix.OnSwitch(op.TupleKey()) {
				allHot = false
				break
			}
			ops = append(ops, layout.HotOp{
				Tuple: layout.TupleID(op.TupleKey()), Op: op.Kind.WireOp(),
				Operand: op.Value, DependsOn: op.DependsOn,
			})
		}
		if !allHot {
			continue
		}
		hot++
		if _, _, passes, err := layout.Compile(ops, l); err == nil && passes == 1 {
			single++
		} else {
			multi++
		}
	}
	fmt.Printf("hot txns:       %d of %d sampled\n", hot, *samples)
	if hot > 0 {
		fmt.Printf("single-pass:    %d (%.2f%%)\n", single, 100*float64(single)/float64(hot))
		fmt.Printf("multi-pass:     %d (%.2f%%)\n", multi, 100*float64(multi)/float64(hot))
	}

	// Stage occupancy summary.
	occ := make(map[uint8]int)
	for _, tid := range l.Tuples() {
		s, _ := l.SlotOf(tid)
		occ[s.Stage]++
	}
	fmt.Println("stage occupancy:")
	for st := 0; st < spec.Stages; st++ {
		fmt.Printf("  stage %2d: %d tuples\n", st, occ[uint8(st)])
	}
}
