// Command p4db-layout runs the offline preparation step in isolation:
// build a cluster for the selected engine (which performs sampling,
// hot-set detection, the declustered layout computation and — for P4DB —
// the register offload), then replay a fresh workload sample and report
// how many of the hot transactions would execute in a single pipeline
// pass — the metric Section 4's data layout optimizes.
//
// -workload all reports every workload (ycsb-a/b/c, smallbank, tpcc) in
// one invocation; the preparations run concurrently on a worker pool
// (-parallel, 0 = GOMAXPROCS), with each workload's report buffered and
// printed in declared order so the output is deterministic. -cachestats
// appends the process-wide detection-cache counters.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hotset"
	"repro/internal/layout"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/workload"
)

// allWorkloads lists the -workload all set in report order.
var allWorkloads = []string{"ycsb-a", "ycsb-b", "ycsb-c", "smallbank", "tpcc"}

func makeGen(wl string, nodes int) (workload.Generator, error) {
	switch wl {
	case "ycsb-a":
		return workload.NewYCSB(workload.YCSBWorkloadA(nodes)), nil
	case "ycsb-b":
		return workload.NewYCSB(workload.YCSBWorkloadB(nodes)), nil
	case "ycsb-c":
		return workload.NewYCSB(workload.YCSBWorkloadC(nodes)), nil
	case "smallbank":
		return workload.NewSmallBank(workload.DefaultSmallBank(nodes, 10)), nil
	case "tpcc":
		return workload.NewTPCC(workload.DefaultTPCC(nodes, nodes)), nil
	}
	return nil, fmt.Errorf("unknown workload %q", wl)
}

func main() {
	wl := flag.String("workload", "smallbank", "ycsb-a | ycsb-b | ycsb-c | smallbank | tpcc | all")
	system := flag.String("system", "p4db", "execution engine (registry name) whose offline prep to run")
	nodes := flag.Int("nodes", 8, "database nodes")
	samples := flag.Int("samples", 60000, "sampled transactions for detection")
	random := flag.Bool("random", false, "use the random (worst-case) layout instead of the declustered one")
	seed := flag.Uint64("seed", 42, "sampling seed")
	parallel := flag.Int("parallel", 0, "concurrent preparations with -workload all (0 = GOMAXPROCS)")
	cachestats := flag.Bool("cachestats", false, "print detection-cache hit/miss counters after the reports")
	window := flag.Int("window", 0, "also replay the first N txns of the recorded stream through the online (sliding-window) selection and report its overlap with the offline hot set")
	flag.Parse()

	if *window < 0 {
		fmt.Fprintf(os.Stderr, "bad -window value %d\n", *window)
		os.Exit(2)
	}

	eng, err := engine.Lookup(*system)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	workloads := []string{*wl}
	if *wl == "all" {
		workloads = allWorkloads
	}
	for _, w := range workloads {
		if _, err := makeGen(w, *nodes); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	// Run every selected preparation on a bounded pool; reports are
	// buffered per workload and printed in declared order, so -workload
	// all output is deterministic at any parallelism.
	if *parallel < 0 {
		fmt.Fprintf(os.Stderr, "bad -parallel value %d\n", *parallel)
		os.Exit(2)
	}
	workers := *parallel
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, workers)
	outputs := make([]bytes.Buffer, len(workloads))
	var wg sync.WaitGroup
	for i := range workloads {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			report(&outputs[i], eng, workloads[i], *nodes, *samples, *window, *random, *seed)
		}(i)
	}
	wg.Wait()

	for i := range outputs {
		if i > 0 {
			fmt.Println()
		}
		os.Stdout.Write(outputs[i].Bytes())
	}
	if *cachestats {
		fmt.Printf("detect cache:   %s\n", core.DetectCacheStats())
	}
}

// report runs the offline pipeline for one workload and writes its
// summary to w.
func report(w io.Writer, eng engine.Engine, wl string, nodes, samples, window int, random bool, seed uint64) {
	gen, err := makeGen(wl, nodes)
	if err != nil {
		panic(err) // validated in main
	}

	// The cluster constructor performs the whole offline pipeline of
	// Figure 3 — sampling, detection, (profile-refined) layout and the
	// engine's Prepare step — exactly as the benchmarks run it.
	cfg := core.DefaultConfig()
	cfg.Engine = eng.Name()
	cfg.Nodes = nodes
	cfg.SampleTxns = samples
	cfg.RandomLayout = random
	cfg.Seed = seed
	c := core.NewCluster(cfg, gen)
	defer c.Env().Shutdown()

	l := c.Layout()
	ix := c.HotIndex()
	spec := layout.Spec{Stages: cfg.Switch.Stages, ArraysPerStage: cfg.Switch.ArraysPerStage, SlotsPerArray: cfg.Switch.SlotsPerArray}

	fmt.Fprintf(w, "engine:         %s (%s)\n", eng.Label(), eng.Name())
	fmt.Fprintf(w, "workload:       %s (%d nodes, %d sampled txns)\n", gen.Name(), nodes, samples)
	fmt.Fprintf(w, "hot tuples:     %d on the switch layout\n", ix.OnSwitchCount())
	fmt.Fprintf(w, "layout:         %d tuples over %d stages x %d arrays\n",
		l.NumTuples(), spec.Stages, spec.ArraysPerStage)

	// Replay a fresh sample against the computed layout.
	rng := sim.NewRNG(seed)
	single, multi, hot := 0, 0, 0
	for i := 0; i < samples; i++ {
		txn := gen.Next(rng, netsim.NodeID(i%nodes))
		allHot := len(txn.Ops) > 0
		ops := make([]layout.HotOp, 0, len(txn.Ops))
		for _, op := range txn.Ops {
			if !ix.OnSwitch(op.TupleKey()) {
				allHot = false
				break
			}
			ops = append(ops, layout.HotOp{
				Tuple: layout.TupleID(op.TupleKey()), Op: op.Kind.WireOp(),
				Operand: op.Value, DependsOn: op.DependsOn,
			})
		}
		if !allHot {
			continue
		}
		hot++
		if _, _, passes, err := layout.Compile(ops, l); err == nil && passes == 1 {
			single++
		} else {
			multi++
		}
	}
	fmt.Fprintf(w, "hot txns:       %d of %d sampled\n", hot, samples)
	if hot > 0 {
		fmt.Fprintf(w, "single-pass:    %d (%.2f%%)\n", single, 100*float64(single)/float64(hot))
		fmt.Fprintf(w, "multi-pass:     %d (%.2f%%)\n", multi, 100*float64(multi)/float64(hot))
	}

	// Stage occupancy summary.
	occ := make(map[uint8]int)
	for _, tid := range l.Tuples() {
		s, _ := l.SlotOf(tid)
		occ[s.Stage]++
	}
	fmt.Fprintln(w, "stage occupancy:")
	for st := 0; st < spec.Stages; st++ {
		fmt.Fprintf(w, "  stage %2d: %d tuples\n", st, occ[uint8(st)])
	}

	// -window: replay the first N transactions of the same recorded stream
	// through the online controller's selection (rank by window frequency,
	// no plateau cut, capped at switch capacity) and report how much of
	// the offline hot set a window that size would rediscover — the
	// offline/online detector comparison on one sample.
	if window > 0 {
		wgen, err := makeGen(wl, nodes)
		if err != nil {
			panic(err) // validated in main
		}
		wrng := sim.NewRNG(seed)
		freq := make(map[store.GlobalKey]int64)
		n := window
		if n > samples {
			n = samples
		}
		for i := 0; i < n; i++ {
			txn := wgen.Next(wrng, netsim.NodeID(i%nodes))
			for _, op := range txn.Ops {
				freq[op.TupleKey()]++
			}
		}
		selected := hotset.SelectTop(freq, spec.Capacity())
		overlap := 0
		for _, k := range selected {
			if ix.OnSwitch(k) {
				overlap++
			}
		}
		fmt.Fprintf(w, "window replay:  first %d txns, %d distinct keys\n", n, len(freq))
		fmt.Fprintf(w, "window select:  %d keys, %d on the offline hot set", len(selected), overlap)
		if cnt := ix.OnSwitchCount(); cnt > 0 {
			fmt.Fprintf(w, " (%.1f%% coverage)", 100*float64(overlap)/float64(cnt))
		}
		fmt.Fprintln(w)
	}
}
