// Command p4db-layout runs the offline preparation step in isolation:
// sample a workload, detect the hot-set, compute the declustered layout
// and report how many of the sampled hot transactions would execute in a
// single pipeline pass — the metric Section 4's data layout optimizes.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/hotset"
	"repro/internal/layout"
	"repro/internal/netsim"
	"repro/internal/pisa"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	wl := flag.String("workload", "smallbank", "ycsb-a | ycsb-b | ycsb-c | smallbank | tpcc")
	nodes := flag.Int("nodes", 8, "database nodes")
	samples := flag.Int("samples", 60000, "sampled transactions for detection")
	random := flag.Bool("random", false, "use the random (worst-case) layout instead of the declustered one")
	seed := flag.Uint64("seed", 42, "sampling seed")
	flag.Parse()

	var gen workload.Generator
	switch *wl {
	case "ycsb-a":
		gen = workload.NewYCSB(workload.YCSBWorkloadA(*nodes))
	case "ycsb-b":
		gen = workload.NewYCSB(workload.YCSBWorkloadB(*nodes))
	case "ycsb-c":
		gen = workload.NewYCSB(workload.YCSBWorkloadC(*nodes))
	case "smallbank":
		gen = workload.NewSmallBank(workload.DefaultSmallBank(*nodes, 10))
	case "tpcc":
		gen = workload.NewTPCC(workload.DefaultTPCC(*nodes, *nodes))
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		os.Exit(2)
	}

	rng := sim.NewRNG(*seed)
	txns := make([][]hotset.Access, 0, *samples)
	raw := make([]*workload.Txn, 0, *samples)
	for i := 0; i < *samples; i++ {
		txn := gen.Next(rng, netsim.NodeID(i%*nodes))
		accs := make([]hotset.Access, len(txn.Ops))
		for j, op := range txn.Ops {
			accs[j] = hotset.Access{Key: op.TupleKey(), DependsOn: op.DependsOn}
		}
		txns = append(txns, accs)
		raw = append(raw, txn)
	}

	swCfg := pisa.DefaultConfig()
	hs := hotset.DetectAuto(txns, swCfg.Capacity())
	spec := layout.Spec{Stages: swCfg.Stages, ArraysPerStage: swCfg.ArraysPerStage, SlotsPerArray: swCfg.SlotsPerArray}
	var l *layout.Layout
	if *random {
		l = layout.Random(hs.Graph(), spec, sim.NewRNG(*seed^0xBAD))
	} else {
		l = layout.Optimal(hs.Graph(), spec)
	}

	fmt.Printf("workload:       %s (%d nodes, %d sampled txns)\n", gen.Name(), *nodes, *samples)
	fmt.Printf("hot tuples:     %d (graph: %v)\n", hs.Size(), hs.Graph())
	fmt.Printf("layout:         %d tuples over %d stages x %d arrays\n",
		l.NumTuples(), spec.Stages, spec.ArraysPerStage)

	ix := hotset.BuildIndex(hs, l)
	single, multi, hot := 0, 0, 0
	for _, txn := range raw {
		allHot := len(txn.Ops) > 0
		ops := make([]layout.HotOp, 0, len(txn.Ops))
		for _, op := range txn.Ops {
			if !ix.OnSwitch(op.TupleKey()) {
				allHot = false
				break
			}
			ops = append(ops, layout.HotOp{
				Tuple: layout.TupleID(op.TupleKey()), Op: op.Kind.WireOp(),
				Operand: op.Value, DependsOn: op.DependsOn,
			})
		}
		if !allHot {
			continue
		}
		hot++
		if _, _, passes, err := layout.Compile(ops, l); err == nil && passes == 1 {
			single++
		} else {
			multi++
		}
	}
	fmt.Printf("hot txns:       %d of %d sampled\n", hot, len(raw))
	if hot > 0 {
		fmt.Printf("single-pass:    %d (%.2f%%)\n", single, 100*float64(single)/float64(hot))
		fmt.Printf("multi-pass:     %d (%.2f%%)\n", multi, 100*float64(multi)/float64(hot))
	}

	// Stage occupancy summary.
	occ := make(map[uint8]int)
	for _, tid := range l.Tuples() {
		s, _ := l.SlotOf(tid)
		occ[s.Stage]++
	}
	fmt.Println("stage occupancy:")
	for st := 0; st < spec.Stages; st++ {
		fmt.Printf("  stage %2d: %d tuples\n", st, occ[uint8(st)])
	}
}
