package wal

import (
	"encoding/binary"
	"fmt"

	"repro/internal/store"
	"repro/internal/txnwire"
)

// On-disk record framing. Every record is a length-prefixed frame:
//
//	u32  payload length (big-endian, like the txnwire packet codec)
//	u8   kind (kindSwitch | kindCold)
//	...  kind-specific payload
//
// A crash can tear the final frame mid-write; UnmarshalLog drops a
// truncated tail silently (that record never committed — for switch
// records the intent must be fully durable BEFORE the packet is sent, so
// a torn intent means the packet was never sent either). Corruption
// inside a complete frame is a hard error: the length prefix made it to
// disk intact, so the payload should have too.
const (
	kindSwitch = 1
	kindCold   = 2

	// maxCount bounds per-record element counts so a corrupt length field
	// cannot drive a multi-gigabyte allocation during decode.
	maxCount = 1 << 16
)

// Marshal serializes the log — switch records first, then cold records,
// each in append order — into the framed byte format UnmarshalLog reads.
func (l *Log) Marshal() []byte {
	var buf []byte
	for _, r := range l.switchRecs {
		buf = appendSwitchRecord(buf, r)
	}
	for _, r := range l.coldRecs {
		buf = appendColdRecord(buf, r)
	}
	return buf
}

func appendSwitchRecord(buf []byte, r *SwitchRecord) []byte {
	n := 1 + 8 + 1 + 8 + 2 + 15*len(r.Instrs) + 2 + 9*len(r.Results)
	buf = binary.BigEndian.AppendUint32(buf, uint32(n))
	buf = append(buf, kindSwitch)
	buf = binary.BigEndian.AppendUint64(buf, r.TxnID)
	var flags byte
	if r.HasGID {
		flags = 1
	}
	buf = append(buf, flags)
	buf = binary.BigEndian.AppendUint64(buf, r.GID)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(r.Instrs)))
	for _, in := range r.Instrs {
		buf = append(buf, byte(in.Op), in.Stage, in.Array)
		buf = binary.BigEndian.AppendUint32(buf, in.Index)
		buf = binary.BigEndian.AppendUint64(buf, uint64(in.Operand))
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(r.Results)))
	for _, res := range r.Results {
		buf = binary.BigEndian.AppendUint64(buf, uint64(res.Value))
		if res.OK {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

func appendColdRecord(buf []byte, r *ColdRecord) []byte {
	n := 1 + 8 + 8 + 1 + 2 + 18*len(r.Writes)
	buf = binary.BigEndian.AppendUint32(buf, uint32(n))
	buf = append(buf, kindCold)
	buf = binary.BigEndian.AppendUint64(buf, r.TxnID)
	buf = binary.BigEndian.AppendUint64(buf, r.LSN)
	if r.Committed {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(r.Writes)))
	for _, w := range r.Writes {
		buf = append(buf, byte(w.Table))
		buf = binary.BigEndian.AppendUint64(buf, uint64(w.Key))
		buf = append(buf, byte(w.Field))
		buf = binary.BigEndian.AppendUint64(buf, uint64(w.Value))
	}
	return buf
}

// UnmarshalLog parses a framed log image back into a Log for nodeID. A
// truncated final frame (torn write at the crash) is dropped and reported
// via torn; malformed bytes inside a complete frame are an error.
func UnmarshalLog(nodeID int, data []byte) (l *Log, torn bool, err error) {
	l = NewLog(nodeID)
	for i := 0; len(data) > 0; i++ {
		if len(data) < 4 {
			return l, true, nil
		}
		n := binary.BigEndian.Uint32(data)
		if uint64(len(data)-4) < uint64(n) {
			return l, true, nil
		}
		payload := data[4 : 4+n]
		data = data[4+n:]
		if err := l.decodeRecord(payload); err != nil {
			return nil, false, fmt.Errorf("wal: record %d: %w", i, err)
		}
	}
	return l, false, nil
}

func (l *Log) decodeRecord(p []byte) error {
	if len(p) < 1 {
		return fmt.Errorf("empty payload")
	}
	kind := p[0]
	p = p[1:]
	switch kind {
	case kindSwitch:
		rec := new(SwitchRecord)
		if len(p) < 8+1+8+2 {
			return fmt.Errorf("switch record header truncated")
		}
		rec.TxnID = binary.BigEndian.Uint64(p)
		rec.HasGID = p[8]&1 != 0
		rec.GID = binary.BigEndian.Uint64(p[9:])
		nInstr := int(binary.BigEndian.Uint16(p[17:]))
		p = p[19:]
		if nInstr > maxCount || len(p) < 15*nInstr {
			return fmt.Errorf("instruction list truncated")
		}
		if nInstr > 0 {
			rec.Instrs = make([]txnwire.Instr, nInstr)
		}
		for i := range rec.Instrs {
			in := &rec.Instrs[i]
			in.Op = txnwire.Op(p[0])
			if !in.Op.Valid() {
				return fmt.Errorf("invalid opcode %d", p[0])
			}
			in.Stage, in.Array = p[1], p[2]
			in.Index = binary.BigEndian.Uint32(p[3:])
			in.Operand = int64(binary.BigEndian.Uint64(p[7:]))
			p = p[15:]
		}
		if len(p) < 2 {
			return fmt.Errorf("result count truncated")
		}
		nRes := int(binary.BigEndian.Uint16(p))
		p = p[2:]
		if nRes > maxCount || len(p) != 9*nRes {
			return fmt.Errorf("result list length mismatch")
		}
		if nRes > 0 {
			rec.Results = make([]txnwire.Result, nRes)
			for i := range rec.Results {
				rec.Results[i].Value = int64(binary.BigEndian.Uint64(p))
				rec.Results[i].OK = p[8] != 0
				p = p[9:]
			}
		}
		l.switchRecs = append(l.switchRecs, rec)
	case kindCold:
		rec := new(ColdRecord)
		if len(p) < 8+8+1+2 {
			return fmt.Errorf("cold record header truncated")
		}
		rec.TxnID = binary.BigEndian.Uint64(p)
		rec.LSN = binary.BigEndian.Uint64(p[8:])
		rec.Committed = p[16] != 0
		nW := int(binary.BigEndian.Uint16(p[17:]))
		p = p[19:]
		if nW > maxCount || len(p) != 18*nW {
			return fmt.Errorf("write list length mismatch")
		}
		if nW > 0 {
			rec.Writes = make([]ColdWrite, nW)
		}
		for i := range rec.Writes {
			w := &rec.Writes[i]
			w.Table = store.TableID(p[0])
			w.Key = store.Key(binary.BigEndian.Uint64(p[1:]))
			w.Field = int(p[9])
			w.Value = int64(binary.BigEndian.Uint64(p[10:]))
			p = p[18:]
		}
		l.coldRecs = append(l.coldRecs, rec)
	default:
		return fmt.Errorf("unknown record kind %d", kind)
	}
	return nil
}
