package wal

import (
	"errors"
	"testing"

	"repro/internal/pisa"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/txnwire"
)

func swConfig() pisa.Config {
	cfg := pisa.DefaultConfig()
	cfg.SlotsPerArray = 16
	return cfg
}

func freshSwitch(baseline []int64) func() Replayer {
	return func() Replayer {
		sw := pisa.New(sim.NewEnv(0), swConfig())
		if baseline != nil {
			sw.Restore(baseline)
		}
		return sw
	}
}

func addInstr(idx uint32, delta int64) txnwire.Instr {
	return txnwire.Instr{Op: txnwire.OpAdd, Stage: 0, Array: 0, Index: idx, Operand: delta}
}

// runSwitchTxns executes packets against a live switch, logging intents
// before send and completing records from responses, like a node would.
func runSwitchTxns(t *testing.T, sw *pisa.Switch, env *sim.Env, l *Log, pkts []*txnwire.Packet) []*SwitchRecord {
	t.Helper()
	recs := make([]*SwitchRecord, len(pkts))
	env.Spawn("node", func(p *sim.Proc) {
		for i, pkt := range pkts {
			recs[i] = l.AppendSwitchIntent(pkt.Header.TxnID, pkt.Instrs)
			resp, err := sw.Exec(p, pkt)
			if err != nil {
				t.Errorf("Exec: %v", err)
				return
			}
			recs[i].Complete(resp)
		}
	})
	env.Run()
	return recs
}

func TestRecoverySimpleReplay(t *testing.T) {
	env := sim.NewEnv(1)
	sw := pisa.New(env, swConfig())
	sw.WriteRegister(0, 0, 0, 1) // offloaded baseline: x=1
	baseline := sw.Snapshot()

	l := NewLog(0)
	runSwitchTxns(t, sw, env, l, []*txnwire.Packet{
		{Header: txnwire.Header{TxnID: 1}, Instrs: []txnwire.Instr{addInstr(0, 2)}},
		{Header: txnwire.Header{TxnID: 2}, Instrs: []txnwire.Instr{addInstr(0, 3)}},
	})
	want := sw.Snapshot()

	// Crash and recover.
	sw.Reset()
	sw.Restore(baseline)
	n, next, err := RecoverSwitch([]*Log{l}, freshSwitch(baseline), sw)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || next != 2 {
		t.Fatalf("replayed=%d next=%d", n, next)
	}
	got := sw.Snapshot()
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("register %d differs after recovery: %d vs %d", i, got[i], want[i])
		}
	}
}

// TestRecoveryFigure9 reproduces the paper's Figure 9 scenario: two warm
// transactions T1 (Node1, result lost) and T2 (Node2, result logged) both
// increment x. T2's logged read x=6 implies T1 ran first; recovery must
// reconstruct x=6, not x=4 or any other value.
func TestRecoveryFigure9(t *testing.T) {
	env := sim.NewEnv(1)
	sw := pisa.New(env, swConfig())
	sw.WriteRegister(0, 0, 0, 1) // x = 1
	baseline := sw.Snapshot()

	log1, log2 := NewLog(1), NewLog(2)

	// T1 executes x+=2 on the switch; Node1 logs the intent but crashes
	// before the response arrives (no Complete call).
	env.Spawn("node1", func(p *sim.Proc) {
		pkt := &txnwire.Packet{Header: txnwire.Header{TxnID: 1}, Instrs: []txnwire.Instr{addInstr(0, 2)}}
		log1.AppendSwitchIntent(1, pkt.Instrs)
		if _, err := sw.Exec(p, pkt); err != nil {
			t.Errorf("%v", err)
		}
	})
	env.Run()

	// T2 executes x+=3 and receives its result (x=6, GID=1).
	env2 := sim.NewEnv(2)
	runSwitchTxns(t, sw, env2, log2, []*txnwire.Packet{
		{Header: txnwire.Header{TxnID: 2}, Instrs: []txnwire.Instr{addInstr(0, 3)}},
	})
	if got := sw.ReadRegister(0, 0, 0); got != 6 {
		t.Fatalf("pre-crash x = %d, want 6", got)
	}

	// Switch crashes; recover from both logs.
	sw.Reset()
	sw.Restore(baseline)
	n, _, err := RecoverSwitch([]*Log{log1, log2}, freshSwitch(baseline), sw)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("replayed %d, want 2", n)
	}
	if got := sw.ReadRegister(0, 0, 0); got != 6 {
		t.Fatalf("recovered x = %d, want 6", got)
	}
}

// TestRecoveryDependencyOrdersInFlight: the in-flight record must be
// placed in the right gap when a later record's logged read depends on it.
func TestRecoveryDependencyOrdersInFlight(t *testing.T) {
	env := sim.NewEnv(3)
	sw := pisa.New(env, swConfig())
	baseline := sw.Snapshot() // x = 0

	logA, logB := NewLog(0), NewLog(1)

	// GID 0: in-flight write x=5 (logged, no result).
	env.Spawn("a", func(p *sim.Proc) {
		pkt := &txnwire.Packet{Instrs: []txnwire.Instr{{Op: txnwire.OpWrite, Index: 0, Operand: 5}}}
		logA.AppendSwitchIntent(10, pkt.Instrs)
		if _, err := sw.Exec(p, pkt); err != nil {
			t.Errorf("%v", err)
		}
	})
	env.Run()
	// GID 1: completed add observing x=5 -> 12.
	env2 := sim.NewEnv(4)
	runSwitchTxns(t, sw, env2, logB, []*txnwire.Packet{
		{Instrs: []txnwire.Instr{addInstr(0, 7)}},
	})
	// GID 2: in-flight write x=100 from log A (after B's add).
	env3 := sim.NewEnv(5)
	env3.Spawn("a2", func(p *sim.Proc) {
		pkt := &txnwire.Packet{Instrs: []txnwire.Instr{{Op: txnwire.OpWrite, Index: 0, Operand: 100}}}
		logA.AppendSwitchIntent(11, pkt.Instrs)
		if _, err := sw.Exec(p, pkt); err != nil {
			t.Errorf("%v", err)
		}
	})
	env3.Run()

	want := sw.Snapshot()
	sw.Reset()
	sw.Restore(baseline)
	if _, _, err := RecoverSwitch([]*Log{logA, logB}, freshSwitch(baseline), sw); err != nil {
		t.Fatal(err)
	}
	got := sw.Snapshot()
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("register %d differs: got %d want %d", i, got[i], want[i])
		}
	}
}

func TestRecoveryNoDependencyAnyOrder(t *testing.T) {
	// Two in-flight commutative adds with no completed reader: any order
	// is consistent; recovery must still produce the correct final sum.
	baseline := pisa.New(sim.NewEnv(0), swConfig()).Snapshot()
	l := NewLog(0)
	l.AppendSwitchIntent(1, []txnwire.Instr{addInstr(0, 2)})
	l.AppendSwitchIntent(2, []txnwire.Instr{addInstr(0, 3)})
	sw := pisa.New(sim.NewEnv(0), swConfig())
	n, _, err := RecoverSwitch([]*Log{l}, freshSwitch(baseline), sw)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || sw.ReadRegister(0, 0, 0) != 5 {
		t.Fatalf("n=%d x=%d, want 2/5", n, sw.ReadRegister(0, 0, 0))
	}
}

func TestRecoveryDetectsInconsistentLogs(t *testing.T) {
	baseline := pisa.New(sim.NewEnv(0), swConfig()).Snapshot()
	l := NewLog(0)
	rec := l.AppendSwitchIntent(1, []txnwire.Instr{addInstr(0, 2)})
	// Forge an impossible result: x was 0, +2 cannot read 99.
	rec.Complete(&txnwire.Response{GID: 0, Results: []txnwire.Result{{Value: 99, OK: true}}})
	sw := pisa.New(sim.NewEnv(0), swConfig())
	_, _, err := RecoverSwitch([]*Log{l}, freshSwitch(baseline), sw)
	if !errors.Is(err, ErrInconsistentLogs) {
		t.Fatalf("err = %v, want ErrInconsistentLogs", err)
	}
}

func TestRecoveryDuplicateGID(t *testing.T) {
	baseline := pisa.New(sim.NewEnv(0), swConfig()).Snapshot()
	l := NewLog(0)
	r1 := l.AppendSwitchIntent(1, []txnwire.Instr{addInstr(0, 1)})
	r2 := l.AppendSwitchIntent(2, []txnwire.Instr{addInstr(0, 1)})
	r1.Complete(&txnwire.Response{GID: 0, Results: []txnwire.Result{{Value: 1, OK: true}}})
	r2.Complete(&txnwire.Response{GID: 0, Results: []txnwire.Result{{Value: 2, OK: true}}})
	if _, err := OrderSwitchRecords([]*Log{l}, freshSwitch(baseline)); err == nil {
		t.Fatal("duplicate GID accepted")
	}
}

// TestRecoveryRandomizedCrashPoints: run a batch of random switch txns,
// "lose" a random subset of responses, crash, recover, and require the
// exact pre-crash state. All operations are adds: commutative, so every
// result-consistent order recovery may pick yields the same state (lost
// blind writes are genuinely order-ambiguous — the paper's "any order"
// case — and are covered by the directed tests instead).
func TestRecoveryRandomizedCrashPoints(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		seed := uint64(trial + 1)
		env := sim.NewEnv(seed)
		rng := sim.NewRNG(seed * 77)
		sw := pisa.New(env, swConfig())
		for i := uint32(0); i < 4; i++ {
			sw.WriteRegister(0, 0, i, int64(rng.Intn(10)))
		}
		baseline := sw.Snapshot()

		logs := []*Log{NewLog(0), NewLog(1), NewLog(2)}
		var recs []*SwitchRecord
		var resps []*txnwire.Response
		env.Spawn("driver", func(p *sim.Proc) {
			for i := 0; i < 12; i++ {
				nops := rng.Intn(2) + 1
				instrs := make([]txnwire.Instr, nops)
				for j := range instrs {
					instrs[j] = txnwire.Instr{
						Op: txnwire.OpAdd, Stage: uint8(j), Array: 0,
						Index: uint32(rng.Intn(4)), Operand: int64(rng.Intn(20) - 5),
					}
				}
				l := logs[rng.Intn(len(logs))]
				rec := l.AppendSwitchIntent(uint64(i), instrs)
				resp, err := sw.Exec(p, &txnwire.Packet{Instrs: instrs})
				if err != nil {
					t.Errorf("%v", err)
					return
				}
				recs = append(recs, rec)
				resps = append(resps, resp)
			}
		})
		env.Run()

		// Lose up to 3 responses (in-flight at crash).
		lost := 0
		for i := range recs {
			if lost < 3 && rng.Bool(25) {
				lost++
				continue // never Complete()d
			}
			recs[i].Complete(resps[i])
		}

		want := sw.Snapshot()
		sw.Reset()
		sw.Restore(baseline)
		if _, _, err := RecoverSwitch(logs, freshSwitch(baseline), sw); err != nil {
			t.Fatalf("trial %d (lost %d): %v", trial, lost, err)
		}
		got := sw.Snapshot()
		for i := range got {
			if got[i] != want[i] {
				// Orders may legitimately differ only when the final
				// states coincide; a state mismatch means recovery chose
				// an inconsistent order.
				t.Fatalf("trial %d (lost %d): register %d = %d, want %d", trial, lost, i, got[i], want[i])
			}
		}
	}
}

func TestRecoverNodeRedo(t *testing.T) {
	l := NewLog(0)
	l.AppendCold(1, []ColdWrite{{Table: 1, Key: 5, Field: 0, Value: 42}})
	l.AppendCold(2, []ColdWrite{{Table: 1, Key: 5, Field: 0, Value: 43}, {Table: 1, Key: 6, Field: 0, Value: 7}})
	st := store.New()
	st.CreateTable(1, "t", 1)
	if n := RecoverNode(l, st); n != 2 {
		t.Fatalf("recovered %d records, want 2", n)
	}
	if st.Table(1).Get(5, 0) != 43 || st.Table(1).Get(6, 0) != 7 {
		t.Fatal("redo did not reproduce committed state")
	}
}
