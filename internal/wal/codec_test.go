package wal

import (
	"reflect"
	"testing"

	"repro/internal/pisa"
	"repro/internal/sim"
	"repro/internal/txnwire"
)

func sampleLog() *Log {
	l := NewLog(3)
	l.SetClock(func() uint64 { return 12345 }) // nonzero LSNs round-trip too
	r1 := l.AppendSwitchIntent(7, []txnwire.Instr{
		addInstr(0, 2),
		{Op: txnwire.OpCondAddGE0, Stage: 1, Array: 2, Index: 9, Operand: -5},
	})
	r1.Complete(&txnwire.Response{GID: 0, Results: []txnwire.Result{{Value: 2, OK: true}, {Value: 0, OK: false}}})
	l.AppendSwitchIntent(8, []txnwire.Instr{addInstr(1, 3)}) // in-flight: no GID
	l.AppendCold(9, []ColdWrite{{Table: 1, Key: 5, Field: 0, Value: 42}, {Table: 2, Key: 1, Field: 3, Value: -7}})
	return l
}

func TestCodecRoundTrip(t *testing.T) {
	l := sampleLog()
	got, torn, err := UnmarshalLog(l.NodeID(), l.Marshal())
	if err != nil || torn {
		t.Fatalf("UnmarshalLog: torn=%v err=%v", torn, err)
	}
	if !reflect.DeepEqual(got.SwitchRecords(), l.SwitchRecords()) {
		t.Fatalf("switch records differ:\n got %+v\nwant %+v", got.SwitchRecords(), l.SwitchRecords())
	}
	if !reflect.DeepEqual(got.ColdRecords(), l.ColdRecords()) {
		t.Fatalf("cold records differ:\n got %+v\nwant %+v", got.ColdRecords(), l.ColdRecords())
	}
}

func TestCodecEmptyLog(t *testing.T) {
	l := NewLog(0)
	buf := l.Marshal()
	if len(buf) != 0 {
		t.Fatalf("empty log marshaled to %d bytes", len(buf))
	}
	got, torn, err := UnmarshalLog(0, buf)
	if err != nil || torn {
		t.Fatalf("torn=%v err=%v", torn, err)
	}
	if len(got.SwitchRecords()) != 0 || len(got.ColdRecords()) != 0 {
		t.Fatal("empty image decoded records")
	}
	// An empty log must also recover cleanly: nothing to replay.
	baseline := pisa.New(sim.NewEnv(0), swConfig()).Snapshot()
	sw := pisa.New(sim.NewEnv(0), swConfig())
	n, next, rerr := RecoverSwitch([]*Log{got}, freshSwitch(baseline), sw)
	if rerr != nil || n != 0 || next != 0 {
		t.Fatalf("empty-log recovery: n=%d next=%d err=%v", n, next, rerr)
	}
}

// TestCodecTornFinalRecord truncates the image at every possible byte
// boundary inside the last frame: the tail must be dropped silently (the
// torn record never committed) and the intact prefix must replay.
func TestCodecTornFinalRecord(t *testing.T) {
	l := sampleLog()
	full := l.Marshal()
	// Find where the final frame starts by re-marshaling without it.
	prefix := NewLog(3)
	prefix.switchRecs = l.switchRecs
	prefixLen := len(prefix.Marshal())
	for cut := prefixLen + 1; cut < len(full); cut++ {
		got, torn, err := UnmarshalLog(3, full[:cut])
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if !torn {
			t.Fatalf("cut at %d not reported torn", cut)
		}
		if len(got.ColdRecords()) != 0 {
			t.Fatalf("cut at %d decoded the torn cold record", cut)
		}
		if !reflect.DeepEqual(got.SwitchRecords(), l.SwitchRecords()) {
			t.Fatalf("cut at %d lost intact records", cut)
		}
	}
}

func TestCodecRejectsCorruptFrame(t *testing.T) {
	l := NewLog(0)
	l.AppendSwitchIntent(1, []txnwire.Instr{addInstr(0, 1)})
	buf := l.Marshal()
	buf[4] = 99 // complete frame, unknown kind byte
	if _, _, err := UnmarshalLog(0, buf); err == nil {
		t.Fatal("corrupt kind byte accepted")
	}
	buf[4] = kindSwitch
	buf[len(buf)-17] = 200 // invalid opcode inside a complete frame (15B instr + u16 result count follow)
	if _, _, err := UnmarshalLog(0, buf); err == nil {
		t.Fatal("invalid opcode accepted")
	}
}

// TestRecoveryAllResponsesLostWideWindow loses every response of a batch
// wider than the 2-record windows the directed tests use: five GID-less
// commutative adds must gap-fit (here: fill an entirely empty GID space)
// and reproduce the exact sums.
func TestRecoveryAllResponsesLostWideWindow(t *testing.T) {
	baseline := pisa.New(sim.NewEnv(0), swConfig()).Snapshot()
	logs := []*Log{NewLog(0), NewLog(1)}
	deltas := []int64{2, 3, 5, 7, 11}
	for i, d := range deltas {
		logs[i%2].AppendSwitchIntent(uint64(i), []txnwire.Instr{addInstr(uint32(i%2), d)})
	}
	sw := pisa.New(sim.NewEnv(0), swConfig())
	n, next, err := RecoverSwitch(logs, freshSwitch(baseline), sw)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(deltas) || next != uint64(len(deltas)) {
		t.Fatalf("replayed=%d next=%d, want %d", n, next, len(deltas))
	}
	if x, y := sw.ReadRegister(0, 0, 0), sw.ReadRegister(0, 0, 1); x != 2+5+11 || y != 3+7 {
		t.Fatalf("recovered sums %d/%d, want 18/10", x, y)
	}
}

// FuzzLogCodec exercises the record codec on arbitrary bytes: decoding
// must never panic, and anything that decodes cleanly must survive a
// marshal/unmarshal round trip unchanged.
func FuzzLogCodec(f *testing.F) {
	f.Add(sampleLog().Marshal())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, kindCold})
	f.Add(sampleLog().Marshal()[:7])
	f.Fuzz(func(t *testing.T, data []byte) {
		l, torn, err := UnmarshalLog(0, data)
		if err != nil || torn {
			return
		}
		again, torn2, err2 := UnmarshalLog(0, l.Marshal())
		if err2 != nil || torn2 {
			t.Fatalf("re-decode failed: torn=%v err=%v", torn2, err2)
		}
		if !reflect.DeepEqual(again.SwitchRecords(), l.SwitchRecords()) ||
			!reflect.DeepEqual(again.ColdRecords(), l.ColdRecords()) {
			t.Fatal("round trip not stable")
		}
	})
}
