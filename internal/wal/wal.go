// Package wal implements per-node write-ahead logging and the recovery
// protocol of Section 6.1 / Appendix A.3 of the paper.
//
// Durability of switch transactions works as follows: a database node
// appends the full intent (the instruction list) of every switch
// transaction to its local log BEFORE sending the packet — switch
// transactions count as committed at that point because the switch cannot
// abort them. When the response arrives, the node back-fills the record
// with the globally-unique transaction id (GID) the switch assigned in
// serial execution order, plus the read/write results.
//
// If the switch crashes, its register state is reconstructed by replaying
// all nodes' switch records in GID order. Records whose response was lost
// (in-flight at the crash) have no GID; they are fitted into the gaps of
// the GID sequence by searching for an order whose replay reproduces every
// logged result (Figure 9's read/write-set dependency analysis). When no
// dependency constrains them, any gap assignment is consistent and the
// deterministic first one is used — exactly the paper's "any order can be
// used during recovery".
package wal

import (
	"errors"
	"fmt"

	"repro/internal/store"
	"repro/internal/txnwire"
)

// SwitchRecord is one switch transaction in a node's log.
type SwitchRecord struct {
	TxnID  uint64          // node-local transaction id
	Instrs []txnwire.Instr // intent: logged before the packet is sent
	HasGID bool
	GID    uint64
	// Results mirror the switch response (one per instruction); present
	// only when HasGID.
	Results []txnwire.Result
}

// ColdWrite is one redo entry of a cold sub-transaction.
type ColdWrite struct {
	Table store.TableID
	Key   store.Key
	Field int
	Value int64
}

// ColdRecord is the commit record of a transaction's cold part.
type ColdRecord struct {
	TxnID uint64
	// LSN orders commit records across node logs: it is stamped from the
	// node's clock at append time (see Log.SetClock), and conflicting
	// writers of a row always append in their serialization order (the
	// second writer acquires the row lock only after the first released
	// it, which happens after its append). Zero when no clock is set.
	LSN       uint64
	Writes    []ColdWrite
	Committed bool
}

// Log is one node's write-ahead log.
type Log struct {
	nodeID     int
	now        func() uint64
	switchRecs []*SwitchRecord
	coldRecs   []*ColdRecord
}

// NewLog creates an empty log for the given node.
func NewLog(nodeID int) *Log { return &Log{nodeID: nodeID} }

// NodeID returns the owning node.
func (l *Log) NodeID() int { return l.nodeID }

// SetClock installs the LSN source for cold commit records (the owning
// node's virtual clock). Without a clock all LSNs are zero and cold
// records are ordered only within one log.
func (l *Log) SetClock(now func() uint64) { l.now = now }

// AppendSwitchIntent logs the intent of a switch transaction before it is
// sent and returns the record so the caller can back-fill the response.
func (l *Log) AppendSwitchIntent(txnID uint64, instrs []txnwire.Instr) *SwitchRecord {
	rec := &SwitchRecord{TxnID: txnID, Instrs: append([]txnwire.Instr(nil), instrs...)}
	l.switchRecs = append(l.switchRecs, rec)
	return rec
}

// Complete back-fills the switch response into the record.
func (r *SwitchRecord) Complete(resp *txnwire.Response) {
	r.HasGID = true
	r.GID = resp.GID
	r.Results = append([]txnwire.Result(nil), resp.Results...)
}

// AppendCold logs a cold commit record. Read-only commits (no writes)
// leave no record: there is nothing to redo, and skipping them keeps the
// serving-mode read path allocation-free.
func (l *Log) AppendCold(txnID uint64, writes []ColdWrite) {
	if len(writes) == 0 {
		return
	}
	var lsn uint64
	if l.now != nil {
		lsn = l.now()
	}
	l.coldRecs = append(l.coldRecs, &ColdRecord{TxnID: txnID, LSN: lsn, Writes: writes, Committed: true})
}

// SwitchRecords returns the log's switch records in append order.
func (l *Log) SwitchRecords() []*SwitchRecord { return l.switchRecs }

// ColdRecords returns the log's cold records in append order.
func (l *Log) ColdRecords() []*ColdRecord { return l.coldRecs }

// Replayer re-executes one whole switch transaction during recovery with
// the exact data-plane semantics (including the per-packet metadata that
// chains read-dependent and conditional writes). *pisa.Switch satisfies it
// via its ApplyTxn method.
type Replayer interface {
	ApplyTxn(instrs []txnwire.Instr) []txnwire.Result
}

// ErrInconsistentLogs reports that no ordering of the GID-less records
// reproduces the logged results — the logs contradict each other.
var ErrInconsistentLogs = errors.New("wal: no consistent order for in-flight switch transactions")

// OrderSwitchRecords merges the switch records of all logs into the serial
// order the switch executed them in. See OrderRecords for the protocol.
func OrderSwitchRecords(logs []*Log, fresh func() Replayer) ([]*SwitchRecord, error) {
	var recs []*SwitchRecord
	for _, l := range logs {
		recs = append(recs, l.switchRecs...)
	}
	return OrderRecords(recs, fresh)
}

// OrderRecords reconstructs the serial order the switch executed recs in.
// Records with GIDs take their logged position; GID-less (in-flight)
// records are fitted into the remaining positions by backtracking search,
// validated by replaying on fresh state: an order is consistent when every
// record with logged results reproduces them exactly.
//
// fresh must return a Replayer initialized to the switch state at the time
// of the offload (the recovery baseline). The caller chooses which records
// participate — whole logs (OrderSwitchRecords) or, when some in-flight
// packets are known to have never reached the switch, a filtered subset.
func OrderRecords(recs []*SwitchRecord, fresh func() Replayer) ([]*SwitchRecord, error) {
	var known []*SwitchRecord
	var unknown []*SwitchRecord
	for _, r := range recs {
		if r.HasGID {
			known = append(known, r)
		} else {
			unknown = append(unknown, r)
		}
	}
	total := len(known) + len(unknown)
	seq := make([]*SwitchRecord, total)
	for _, r := range known {
		if r.GID >= uint64(total) {
			return nil, fmt.Errorf("wal: GID %d out of range (total %d records)", r.GID, total)
		}
		if seq[r.GID] != nil {
			return nil, fmt.Errorf("wal: duplicate GID %d in logs", r.GID)
		}
		seq[r.GID] = r
	}
	var gaps []int
	for i, r := range seq {
		if r == nil {
			gaps = append(gaps, i)
		}
	}
	if len(gaps) != len(unknown) {
		return nil, fmt.Errorf("wal: %d gaps for %d in-flight records", len(gaps), len(unknown))
	}
	if len(unknown) == 0 {
		if !consistent(seq, fresh()) {
			return nil, ErrInconsistentLogs
		}
		return seq, nil
	}

	used := make([]bool, len(unknown))
	var place func(gi int) bool
	place = func(gi int) bool {
		if gi == len(gaps) {
			return consistent(seq, fresh())
		}
		for ui := range unknown {
			if used[ui] {
				continue
			}
			used[ui] = true
			seq[gaps[gi]] = unknown[ui]
			if place(gi + 1) {
				return true
			}
			seq[gaps[gi]] = nil
			used[ui] = false
		}
		return false
	}
	if !place(0) {
		return nil, ErrInconsistentLogs
	}
	return seq, nil
}

// consistent replays seq on r and checks every logged result.
func consistent(seq []*SwitchRecord, r Replayer) bool {
	for _, rec := range seq {
		got := r.ApplyTxn(rec.Instrs)
		if !rec.HasGID {
			continue
		}
		for i := range rec.Results {
			if i >= len(got) {
				return false
			}
			if got[i].Value != rec.Results[i].Value || got[i].OK != rec.Results[i].OK {
				return false
			}
		}
	}
	return true
}

// RecoverSwitch reconstructs the switch state after a crash: it orders all
// logged switch transactions (see OrderSwitchRecords) and replays them on
// target, which the caller must first restore to the offload baseline. It
// returns the number of transactions replayed and the next GID the
// recovered switch should assign.
func RecoverSwitch(logs []*Log, fresh func() Replayer, target Replayer) (replayed int, nextGID uint64, err error) {
	seq, err := OrderSwitchRecords(logs, fresh)
	if err != nil {
		return 0, 0, err
	}
	for _, rec := range seq {
		target.ApplyTxn(rec.Instrs)
	}
	return len(seq), uint64(len(seq)), nil
}

// RecoverNode redoes all committed cold writes of a node's log against a
// store, in log order. (The model logs after-images at commit, so redo is
// idempotent and needs no undo phase.)
func RecoverNode(l *Log, st *store.Store) int {
	n := 0
	for _, rec := range l.coldRecs {
		if !rec.Committed {
			continue
		}
		for _, w := range rec.Writes {
			st.Table(w.Table).Set(w.Key, w.Field, w.Value)
		}
		n++
	}
	return n
}
