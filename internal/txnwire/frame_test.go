package txnwire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/iotest"
)

func sampleTxnRequest() *TxnRequest {
	return &TxnRequest{
		Origin: 3,
		Pkt: Packet{
			Header: Header{TxnID: 77},
			Instrs: []Instr{
				{Op: OpRead, Stage: 1, Array: 0, Index: 0xCAFE, Operand: 0},
				{Op: OpAdd, Stage: 1, Array: 2, Index: 7, Operand: -12},
				{Op: OpAddIfOK, Stage: 4, Array: 1, Index: 1 << 30, Operand: 99},
			},
		},
		Ext: []OpExt{
			{KeyHi: 0x000F0000, Home: 2, Dep: DepNone},
			{KeyHi: 0, Home: 0, Dep: 0},
			{KeyHi: 1, Home: 7, Dep: 1},
		},
	}
}

func sampleTxnReply() *TxnReply {
	return &TxnReply{
		Status: StatusCommitted,
		Class:  1,
		Resp:   Response{TxnID: 77, GID: 1234, Recircs: 2},
	}
}

func TestTxnRequestRoundTrip(t *testing.T) {
	q := sampleTxnRequest()
	buf, err := AppendTxnRequest(nil, q)
	if err != nil {
		t.Fatal(err)
	}
	var got TxnRequest
	if err := DecodeTxnRequestInto(&got, buf); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(q, &got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", q, &got)
	}
	// Strictness: one trailing byte must be rejected.
	if err := DecodeTxnRequestInto(&got, append(buf, 0)); !errors.Is(err, ErrTrailing) {
		t.Fatalf("trailing byte: err = %v, want ErrTrailing", err)
	}
	// Truncation anywhere must error, never panic.
	for cut := 0; cut < len(buf); cut++ {
		if err := DecodeTxnRequestInto(&got, buf[:cut]); err == nil {
			t.Fatalf("accepted truncated request of %d/%d bytes", cut, len(buf))
		}
	}
}

func TestTxnRequestExtMismatch(t *testing.T) {
	q := sampleTxnRequest()
	q.Ext = q.Ext[:2]
	if _, err := AppendTxnRequest(nil, q); !errors.Is(err, ErrExtMismatch) {
		t.Fatalf("err = %v, want ErrExtMismatch", err)
	}
}

func TestTxnReplyRoundTrip(t *testing.T) {
	r := sampleTxnReply()
	buf, err := AppendTxnReply(nil, r)
	if err != nil {
		t.Fatal(err)
	}
	var got TxnReply
	if err := DecodeTxnReplyInto(&got, buf); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, &got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", r, &got)
	}
	if err := DecodeTxnReplyInto(&got, append(buf, 0)); !errors.Is(err, ErrTrailing) {
		t.Fatalf("trailing byte: err = %v, want ErrTrailing", err)
	}
}

// TestFrameRoundTrip writes a mixed batch of frames through a FrameWriter
// and reads them back.
func TestFrameRoundTrip(t *testing.T) {
	var net bytes.Buffer
	fw := NewFrameWriter(&net)
	q := sampleTxnRequest()
	rep := sampleTxnReply()
	p := &Packet{Header: Header{TxnID: 5}, Instrs: []Instr{{Op: OpWrite, Operand: 8}}}
	if err := fw.WriteTxnRequest(q); err != nil {
		t.Fatal(err)
	}
	if err := fw.WritePacket(p); err != nil {
		t.Fatal(err)
	}
	if err := fw.WriteTxnReply(rep); err != nil {
		t.Fatal(err)
	}
	if err := fw.WriteResponse(&rep.Resp); err != nil {
		t.Fatal(err)
	}
	if net.Len() != 0 {
		t.Fatal("frames written before Flush")
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}

	fr := NewFrameReader(&net)
	ft, payload, err := fr.Next()
	if err != nil || ft != FrameTxnReq {
		t.Fatalf("frame 1: type %d err %v", ft, err)
	}
	var gotReq TxnRequest
	if err := DecodeTxnRequestInto(&gotReq, payload); err != nil || !reflect.DeepEqual(q, &gotReq) {
		t.Fatalf("request mismatch (err %v)", err)
	}
	ft, payload, err = fr.Next()
	if err != nil || ft != FramePacket {
		t.Fatalf("frame 2: type %d err %v", ft, err)
	}
	var gotPkt Packet
	if _, err := DecodePacketInto(&gotPkt, payload); err != nil || !reflect.DeepEqual(p, &gotPkt) {
		t.Fatalf("packet mismatch (err %v)", err)
	}
	ft, payload, err = fr.Next()
	if err != nil || ft != FrameTxnReply {
		t.Fatalf("frame 3: type %d err %v", ft, err)
	}
	var gotRep TxnReply
	if err := DecodeTxnReplyInto(&gotRep, payload); err != nil || !reflect.DeepEqual(rep, &gotRep) {
		t.Fatalf("reply mismatch (err %v)", err)
	}
	if ft, _, err = fr.Next(); err != nil || ft != FrameResponse {
		t.Fatalf("frame 4: type %d err %v", ft, err)
	}
	if _, _, err = fr.Next(); err != io.EOF {
		t.Fatalf("end of stream: err = %v, want io.EOF", err)
	}
}

// TestFrameTornReads drives the reader one byte at a time and through
// random chunk splits — frames arriving across many TCP reads must
// reassemble exactly.
func TestFrameTornReads(t *testing.T) {
	var net bytes.Buffer
	fw := NewFrameWriter(&net)
	want := make([]*TxnRequest, 50)
	for i := range want {
		q := sampleTxnRequest()
		q.Pkt.Header.TxnID = uint64(i)
		q.Ext[0].KeyHi = uint32(i * 7)
		want[i] = q
		if err := fw.WriteTxnRequest(q); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	stream := net.Bytes()

	readers := map[string]io.Reader{
		"one-byte": iotest.OneByteReader(bytes.NewReader(stream)),
		"random-chunks": io.MultiReader(func() []io.Reader {
			rng := rand.New(rand.NewSource(11))
			var parts []io.Reader
			for off := 0; off < len(stream); {
				n := 1 + rng.Intn(23)
				if off+n > len(stream) {
					n = len(stream) - off
				}
				parts = append(parts, bytes.NewReader(stream[off:off+n]))
				off += n
			}
			return parts
		}()...),
	}
	for name, r := range readers {
		fr := NewFrameReader(r)
		var got TxnRequest
		for i := range want {
			ft, payload, err := fr.Next()
			if err != nil || ft != FrameTxnReq {
				t.Fatalf("%s frame %d: type %d err %v", name, i, ft, err)
			}
			if err := DecodeTxnRequestInto(&got, payload); err != nil {
				t.Fatalf("%s frame %d: %v", name, i, err)
			}
			if !reflect.DeepEqual(want[i], &got) {
				t.Fatalf("%s frame %d mismatch", name, i)
			}
		}
		if _, _, err := fr.Next(); err != io.EOF {
			t.Fatalf("%s: end err = %v, want io.EOF", name, err)
		}
	}
}

// TestFrameMidFrameEOF: a stream cut inside a frame is a hard
// ErrUnexpectedEOF, not a silent success.
func TestFrameMidFrameEOF(t *testing.T) {
	var net bytes.Buffer
	fw := NewFrameWriter(&net)
	if err := fw.WriteTxnRequest(sampleTxnRequest()); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	stream := net.Bytes()
	for cut := 1; cut < len(stream); cut++ {
		fr := NewFrameReader(bytes.NewReader(stream[:cut]))
		if _, _, err := fr.Next(); err != io.ErrUnexpectedEOF {
			t.Fatalf("cut at %d: err = %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

// TestFrameOversizeRejected: a frame above the limit is rejected before
// any payload buffering, with an error naming the configured limit.
func TestFrameOversizeRejected(t *testing.T) {
	hdr := make([]byte, 5)
	binary.BigEndian.PutUint32(hdr, 1<<24)
	fr := NewFrameReader(bytes.NewReader(hdr))
	_, _, err := fr.Next()
	if !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("err = %v, want ErrFrameTooBig", err)
	}
	if !strings.Contains(err.Error(), "1048576-byte limit") {
		t.Fatalf("error must name the limit: %v", err)
	}
	if len(fr.buf) >= 1<<24 {
		t.Fatal("reader buffered the hostile length before rejecting it")
	}

	// A custom limit is enforced and named too.
	small := NewFrameReader(bytes.NewReader(hdr))
	small.SetLimit(64)
	if _, _, err := small.Next(); err == nil || !strings.Contains(err.Error(), "64-byte limit") {
		t.Fatalf("custom limit: err = %v", err)
	}

	// Zero-length frames are invalid framing.
	zero := make([]byte, 4)
	fr = NewFrameReader(bytes.NewReader(zero))
	if _, _, err := fr.Next(); !errors.Is(err, ErrFrameHeader) {
		t.Fatalf("zero length: err = %v, want ErrFrameHeader", err)
	}
}

// TestFrameWriterLimit: the writer refuses to produce frames above its
// limit and rolls the buffer back cleanly.
func TestFrameWriterLimit(t *testing.T) {
	var net bytes.Buffer
	fw := NewFrameWriter(&net)
	fw.SetLimit(8)
	q := sampleTxnRequest()
	if err := fw.WriteTxnRequest(q); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("err = %v, want ErrFrameTooBig", err)
	}
	if fw.Buffered() != 0 {
		t.Fatalf("failed frame left %d bytes buffered", fw.Buffered())
	}
}

// TestFrameWriterAutoFlush: crossing the threshold flushes without an
// explicit Flush call.
func TestFrameWriterAutoFlush(t *testing.T) {
	var net bytes.Buffer
	fw := NewFrameWriter(&net)
	fw.SetAutoFlush(1)
	if err := fw.WriteTxnReply(sampleTxnReply()); err != nil {
		t.Fatal(err)
	}
	if net.Len() == 0 {
		t.Fatal("auto-flush did not write")
	}
	if fw.Buffered() != 0 {
		t.Fatal("buffer not drained by auto-flush")
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	return 0, errors.New("boom")
}

// TestFrameWriterStickyError: a transport error persists and suppresses
// further writes.
func TestFrameWriterStickyError(t *testing.T) {
	w := &failWriter{}
	fw := NewFrameWriter(w)
	if err := fw.WriteTxnReply(sampleTxnReply()); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err == nil {
		t.Fatal("flush must surface the transport error")
	}
	if err := fw.Flush(); err == nil {
		t.Fatal("error must be sticky")
	}
	if w.n != 1 {
		t.Fatalf("underlying writer called %d times, want 1", w.n)
	}
}

// TestAppendTxnReplyFrame: the slice-level framing helper matches the
// FrameWriter encoding byte for byte.
func TestAppendTxnReplyFrame(t *testing.T) {
	rep := sampleTxnReply()
	var net bytes.Buffer
	fw := NewFrameWriter(&net)
	if err := fw.WriteTxnReply(rep); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := AppendTxnReplyFrame(nil, rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, net.Bytes()) {
		t.Fatalf("helper framing diverges from FrameWriter:\n%x\n%x", got, net.Bytes())
	}
}

// loopReader endlessly repeats one byte sequence (steady-state read
// source for the allocation pins).
type loopReader struct {
	b   []byte
	off int
}

func (l *loopReader) Read(p []byte) (int, error) {
	n := copy(p, l.b[l.off:])
	l.off = (l.off + n) % len(l.b)
	return n, nil
}

// TestSteadyStateCodecZeroAlloc pins the serving-path codec at zero
// allocations per round trip: framed encode (write side) and framed
// decode into reused structs (read side).
func TestSteadyStateCodecZeroAlloc(t *testing.T) {
	q := sampleTxnRequest()
	rep := sampleTxnReply()

	fw := NewFrameWriter(io.Discard)
	// Prime buffer growth.
	for i := 0; i < 4; i++ {
		if err := fw.WriteTxnRequest(q); err != nil {
			t.Fatal(err)
		}
		if err := fw.WriteTxnReply(rep); err != nil {
			t.Fatal(err)
		}
		if err := fw.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(1000, func() {
		if err := fw.WriteTxnRequest(q); err != nil {
			t.Fatal(err)
		}
		if err := fw.WriteTxnReply(rep); err != nil {
			t.Fatal(err)
		}
		if err := fw.Flush(); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("framed encode allocates %v times per round, want 0", n)
	}

	var one bytes.Buffer
	ofw := NewFrameWriter(&one)
	if err := ofw.WriteTxnRequest(q); err != nil {
		t.Fatal(err)
	}
	if err := ofw.WriteTxnReply(rep); err != nil {
		t.Fatal(err)
	}
	if err := ofw.Flush(); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(&loopReader{b: one.Bytes()})
	var gotReq TxnRequest
	var gotRep TxnReply
	decodePair := func() {
		ft, payload, err := fr.Next()
		if err != nil || ft != FrameTxnReq {
			t.Fatalf("type %d err %v", ft, err)
		}
		if err := DecodeTxnRequestInto(&gotReq, payload); err != nil {
			t.Fatal(err)
		}
		ft, payload, err = fr.Next()
		if err != nil || ft != FrameTxnReply {
			t.Fatalf("type %d err %v", ft, err)
		}
		if err := DecodeTxnReplyInto(&gotRep, payload); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		decodePair() // prime slice growth
	}
	if n := testing.AllocsPerRun(1000, decodePair); n != 0 {
		t.Fatalf("framed decode allocates %v times per round, want 0", n)
	}
}
