package txnwire

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func samplePacket() *Packet {
	return &Packet{
		Header: Header{IsMultipass: true, LockLeft: true, NbRecircs: 3, TxnID: 0xDEADBEEF},
		Instrs: []Instr{
			{Op: OpRead, Stage: 0, Array: 1, Index: 7},
			{Op: OpAdd, Stage: 2, Array: 0, Index: 42, Operand: -5},
			{Op: OpCondAddGE0, Stage: 5, Array: 3, Index: 1 << 20, Operand: math.MaxInt64},
		},
	}
}

func TestPacketRoundTrip(t *testing.T) {
	p := samplePacket()
	buf, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", p, q)
	}
}

func TestEmptyPacketRoundTrip(t *testing.T) {
	p := &Packet{Header: Header{TxnID: 1}}
	buf, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Header.TxnID != 1 || len(q.Instrs) != 0 {
		t.Fatalf("got %+v", q)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	r := &Response{
		TxnID:   9,
		GID:     123456789,
		Recircs: 7,
		Results: []Result{{Value: -1, OK: true}, {Value: math.MinInt64, OK: false}},
	}
	buf, err := EncodeResponse(r)
	if err != nil {
		t.Fatal(err)
	}
	q, err := DecodeResponse(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, q) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", r, q)
	}
}

func TestTooManyInstrs(t *testing.T) {
	p := &Packet{Instrs: make([]Instr, 256)}
	if _, err := Encode(p); err != ErrTooManyInstrs {
		t.Fatalf("err = %v, want ErrTooManyInstrs", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	p := samplePacket()
	buf, _ := Encode(p)
	for cut := 0; cut < len(buf); cut++ {
		if _, err := Decode(buf[:cut]); err == nil {
			// A truncation that still parses must decode fewer
			// instructions than the original declared; declared count
			// check makes this impossible, so any success is a bug.
			t.Fatalf("Decode accepted truncated packet of %d/%d bytes", cut, len(buf))
		}
	}
}

func TestDecodeBadOpcode(t *testing.T) {
	p := &Packet{Instrs: []Instr{{Op: OpRead}}}
	buf, _ := Encode(p)
	buf[11] = 0xFF // first instruction's opcode byte
	if _, err := Decode(buf); err != ErrBadOpcode {
		t.Fatalf("err = %v, want ErrBadOpcode", err)
	}
}

func TestEncodeBadOpcode(t *testing.T) {
	p := &Packet{Instrs: []Instr{{Op: Op(200)}}}
	if _, err := Encode(p); err != ErrBadOpcode {
		t.Fatalf("err = %v, want ErrBadOpcode", err)
	}
}

func TestOpStrings(t *testing.T) {
	for op := Op(0); op.Valid(); op++ {
		if op.String() == "" {
			t.Fatalf("op %d has empty mnemonic", op)
		}
	}
}

// TestRoundTripProperty fuzzes packets through the codec.
func TestRoundTripProperty(t *testing.T) {
	f := func(multi, ll, lr bool, rec uint8, id uint64, ops []uint8, idxs []uint32, operands []int64) bool {
		n := len(ops)
		if n > 40 {
			n = 40
		}
		p := &Packet{Header: Header{IsMultipass: multi, LockLeft: ll, LockRight: lr, NbRecircs: rec, TxnID: id}}
		for i := 0; i < n; i++ {
			var idx uint32
			if i < len(idxs) {
				idx = idxs[i]
			}
			var opr int64
			if i < len(operands) {
				opr = operands[i]
			}
			p.Instrs = append(p.Instrs, Instr{
				Op:      Op(ops[i] % uint8(numOps)),
				Stage:   ops[i] % 12,
				Array:   ops[i] % 4,
				Index:   idx,
				Operand: opr,
			})
		}
		buf, err := Encode(p)
		if err != nil {
			return false
		}
		q, err := Decode(buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(p, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestInstrString(t *testing.T) {
	in := Instr{Op: OpAdd, Stage: 2, Array: 1, Index: 9, Operand: -3}
	if got := in.String(); got != "ADD s2/a1[9] -3" {
		t.Fatalf("String = %q", got)
	}
}
