package txnwire

import (
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"testing"
)

// Fuzz targets for the wire codec. The decoders consume attacker-supplied
// bytes on the serving path, so every declared count and length field must
// be validated before use — these targets assert no decode panics, and
// that anything a decoder accepts re-encodes to a value-identical packet
// (no silent truncation or desynchronization).

// fuzzSeeds returns valid encodings to seed every byte-level corpus.
func fuzzSeeds(t testing.TB) [][]byte {
	t.Helper()
	pkt, err := Encode(samplePacket())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := EncodeResponse(&Response{TxnID: 9, GID: 3, Recircs: 1,
		Results: []Result{{Value: -7, OK: true}}})
	if err != nil {
		t.Fatal(err)
	}
	req, err := AppendTxnRequest(nil, sampleTxnRequest())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AppendTxnReply(nil, sampleTxnReply())
	if err != nil {
		t.Fatal(err)
	}
	// A header that declares 255 instructions but carries none: the
	// length-validation case the decoder must not trust.
	lying := make([]byte, headerSize)
	lying[10] = 255
	return [][]byte{pkt, resp, req, rep, lying, {}, {0}, bytes.Repeat([]byte{0xFF}, 64)}
}

// FuzzDecode throws raw bytes at every payload decoder.
func FuzzDecode(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if p, err := Decode(data); err == nil {
			buf, err := Encode(p)
			if err != nil {
				t.Fatalf("re-encode of accepted packet failed: %v", err)
			}
			q, err := Decode(buf)
			if err != nil || !reflect.DeepEqual(p, q) {
				t.Fatalf("re-decode mismatch (err %v)", err)
			}
		}
		if r, err := DecodeResponse(data); err == nil {
			if _, err := EncodeResponse(r); err != nil {
				t.Fatalf("re-encode of accepted response failed: %v", err)
			}
		}
		var req TxnRequest
		if err := DecodeTxnRequestInto(&req, data); err == nil {
			buf, err := AppendTxnRequest(nil, &req)
			if err != nil {
				t.Fatalf("re-encode of accepted request failed: %v", err)
			}
			var q TxnRequest
			if err := DecodeTxnRequestInto(&q, buf); err != nil || !reflect.DeepEqual(&req, &q) {
				t.Fatalf("request re-decode mismatch (err %v)", err)
			}
		}
		var rep TxnReply
		if err := DecodeTxnReplyInto(&rep, data); err == nil {
			if _, err := AppendTxnReply(nil, &rep); err != nil {
				t.Fatalf("re-encode of accepted reply failed: %v", err)
			}
		}
	})
}

// FuzzRoundTrip builds a structurally valid packet from fuzzer-chosen
// fields and asserts the codec is lossless.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint8(7), uint8(3), uint64(42), []byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add(uint8(0), uint8(0), uint64(0), []byte{})
	f.Add(uint8(255), uint8(255), uint64(1)<<63, bytes.Repeat([]byte{9}, 300))
	f.Fuzz(func(t *testing.T, flags, rec uint8, id uint64, raw []byte) {
		p := &Packet{Header: Header{
			IsMultipass: flags&1 != 0,
			LockLeft:    flags&2 != 0,
			LockRight:   flags&4 != 0,
			NbRecircs:   rec,
			TxnID:       id,
		}}
		q := &TxnRequest{Origin: flags, Flags: rec}
		for i := 0; i+7 <= len(raw) && len(p.Instrs) < maxInstrs; i += 7 {
			p.Instrs = append(p.Instrs, Instr{
				Op:      Op(raw[i] % uint8(numOps)),
				Stage:   raw[i+1],
				Array:   raw[i+2],
				Index:   binary.BigEndian.Uint32(raw[i+3 : i+7]),
				Operand: int64(id) - int64(raw[i]),
			})
			q.Ext = append(q.Ext, OpExt{
				KeyHi: binary.BigEndian.Uint32(raw[i+3 : i+7]),
				Home:  raw[i+1],
				Dep:   raw[i+2],
			})
		}
		q.Pkt = *p

		buf, err := Encode(p)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		back, err := Decode(buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(p, back) {
			t.Fatal("packet round trip mismatch")
		}

		env, err := AppendTxnRequest(nil, q)
		if err != nil {
			t.Fatalf("append request: %v", err)
		}
		var qBack TxnRequest
		if err := DecodeTxnRequestInto(&qBack, env); err != nil {
			t.Fatalf("decode request: %v", err)
		}
		if !reflect.DeepEqual(q, &qBack) {
			t.Fatal("request round trip mismatch")
		}
	})
}

// FuzzFrameReader feeds raw bytes to the stream framer: no panic, no
// unbounded buffering, and every accepted frame must lie within limits.
func FuzzFrameReader(f *testing.F) {
	var net bytes.Buffer
	fw := NewFrameWriter(&net)
	_ = fw.WriteTxnRequest(sampleTxnRequest())
	_ = fw.WriteTxnReply(sampleTxnReply())
	_ = fw.Flush()
	f.Add(net.Bytes())
	hostile := make([]byte, 8)
	binary.BigEndian.PutUint32(hostile, 0xFFFFFFFF)
	f.Add(hostile)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data))
		fr.SetLimit(1 << 16)
		for i := 0; i < len(data)+1; i++ {
			_, payload, err := fr.Next()
			if err != nil {
				if err == io.EOF || err == io.ErrUnexpectedEOF {
					return
				}
				return // framing errors are terminal by contract
			}
			if len(payload) > 1<<16 {
				t.Fatalf("accepted %d-byte payload above the limit", len(payload))
			}
		}
		t.Fatal("reader yielded more frames than input bytes")
	})
}
