package txnwire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Stream framing for serving txnwire over a byte stream (TCP). Every frame
// is a 4-byte big-endian length n (counting the type byte plus payload,
// so n >= 1), a 1-byte frame type, and the payload:
//
//	[u32 n][u8 type][payload: n-1 bytes]
//
// FrameReader and FrameWriter are the streaming halves: the reader refills
// one reused buffer and hands out payload slices into it (no per-frame
// allocation); the writer encodes frames directly into its buffer and
// flushes coalesced batches to the underlying connection.

// FrameType tags what the payload encodes.
type FrameType uint8

// Frame types.
const (
	// FramePacket carries a raw switch-transaction Packet (Figure 6).
	FramePacket FrameType = 1
	// FrameResponse carries a raw switch Response.
	FrameResponse FrameType = 2
	// FrameTxnReq carries a TxnRequest envelope (a full workload
	// transaction routed through the engine registry).
	FrameTxnReq FrameType = 3
	// FrameTxnReply carries a TxnReply envelope.
	FrameTxnReply FrameType = 4
)

// DefaultMaxFrame bounds a frame's length field (type byte + payload).
// The largest legitimate envelope is ~5.4KB (255 instructions), so 1MiB
// leaves headroom for future frame types while rejecting hostile lengths
// before any buffering happens.
const DefaultMaxFrame = 1 << 20

const frameHdrSize = 4

// Framing errors.
var (
	// ErrFrameTooBig wraps oversized-frame rejections; the returned error
	// names both the offending size and the configured limit.
	ErrFrameTooBig = errors.New("txnwire: frame too big")
	// ErrFrameHeader marks a length field no frame can have (zero).
	ErrFrameHeader = errors.New("txnwire: invalid frame length 0")
)

// FrameReader decodes frames from an io.Reader. It refills a single
// internal buffer (compacting and growing it as needed, up to the frame
// limit) and returns payload slices aliasing that buffer, so the
// steady-state read path performs no allocation. Torn reads are handled by
// construction: Next blocks refilling until the whole frame has arrived.
type FrameReader struct {
	r          io.Reader
	buf        []byte
	start, end int
	limit      int
}

// NewFrameReader returns a FrameReader with the DefaultMaxFrame limit.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r, limit: DefaultMaxFrame}
}

// SetLimit overrides the maximum accepted frame length (type byte +
// payload). Values < 1 are ignored.
func (fr *FrameReader) SetLimit(n int) {
	if n >= 1 {
		fr.limit = n
	}
}

// Next returns the next frame's type and payload. The payload slice is
// valid only until the following Next call. A clean end of stream at a
// frame boundary returns io.EOF; mid-frame truncation returns
// io.ErrUnexpectedEOF.
func (fr *FrameReader) Next() (FrameType, []byte, error) {
	if err := fr.ensure(frameHdrSize); err != nil {
		return 0, nil, err
	}
	n := int(binary.BigEndian.Uint32(fr.buf[fr.start:]))
	if n < 1 {
		return 0, nil, ErrFrameHeader
	}
	if n > fr.limit {
		return 0, nil, fmt.Errorf("%w: %d bytes exceeds the %d-byte limit", ErrFrameTooBig, n, fr.limit)
	}
	if err := fr.ensure(frameHdrSize + n); err != nil {
		return 0, nil, err
	}
	ft := FrameType(fr.buf[fr.start+frameHdrSize])
	payload := fr.buf[fr.start+frameHdrSize+1 : fr.start+frameHdrSize+n]
	fr.start += frameHdrSize + n
	return ft, payload, nil
}

// ensure refills until n bytes are buffered from start, compacting and
// growing the buffer as required.
func (fr *FrameReader) ensure(n int) error {
	for fr.end-fr.start < n {
		if len(fr.buf)-fr.start < n || fr.end == len(fr.buf) {
			copy(fr.buf, fr.buf[fr.start:fr.end])
			fr.end -= fr.start
			fr.start = 0
			if len(fr.buf) < n {
				size := 2 * len(fr.buf)
				if size < 4096 {
					size = 4096
				}
				if size < n {
					size = n
				}
				nb := make([]byte, size)
				copy(nb, fr.buf[:fr.end])
				fr.buf = nb
			}
		}
		m, err := fr.r.Read(fr.buf[fr.end:])
		fr.end += m
		if err != nil {
			if fr.end-fr.start >= n {
				return nil
			}
			if err == io.EOF {
				if fr.end == fr.start {
					return io.EOF
				}
				return io.ErrUnexpectedEOF
			}
			return err
		}
	}
	return nil
}

// FrameWriter encodes frames into an internal buffer and writes them to
// the underlying writer in coalesced batches: explicitly via Flush (batch
// boundary), or automatically when the buffer crosses the auto-flush
// threshold. Encoding appends directly into the buffer — no intermediate
// per-frame slice — so the steady-state write path is allocation-free.
type FrameWriter struct {
	w         io.Writer
	buf       []byte
	limit     int
	autoFlush int
	err       error // sticky transport error
}

// NewFrameWriter returns a FrameWriter with the DefaultMaxFrame limit and
// no auto-flush threshold (callers flush at batch boundaries).
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{w: w, limit: DefaultMaxFrame}
}

// SetLimit overrides the maximum frame length this writer will produce.
func (fw *FrameWriter) SetLimit(n int) {
	if n >= 1 {
		fw.limit = n
	}
}

// SetAutoFlush makes the writer flush whenever the buffered bytes reach n
// (0 disables; flushing then happens only at explicit Flush calls).
func (fw *FrameWriter) SetAutoFlush(n int) { fw.autoFlush = n }

// Buffered returns the number of bytes waiting for the next flush.
func (fw *FrameWriter) Buffered() int { return len(fw.buf) }

// begin reserves a frame header and returns the frame's buffer offset.
func (fw *FrameWriter) begin(ft FrameType) int {
	start := len(fw.buf)
	fw.buf = append(fw.buf, 0, 0, 0, 0, byte(ft))
	return start
}

// finish patches the length field (rolling the frame back on error) and
// applies the auto-flush policy.
func (fw *FrameWriter) finish(start int, err error) error {
	if err != nil {
		fw.buf = fw.buf[:start]
		return err
	}
	n := len(fw.buf) - start - frameHdrSize
	if n > fw.limit {
		fw.buf = fw.buf[:start]
		return fmt.Errorf("%w: %d bytes exceeds the %d-byte limit", ErrFrameTooBig, n, fw.limit)
	}
	binary.BigEndian.PutUint32(fw.buf[start:], uint32(n))
	if fw.autoFlush > 0 && len(fw.buf) >= fw.autoFlush {
		return fw.Flush()
	}
	return nil
}

// WritePacket frames a switch-transaction packet.
func (fw *FrameWriter) WritePacket(p *Packet) error {
	start := fw.begin(FramePacket)
	var err error
	fw.buf, err = AppendPacket(fw.buf, p)
	return fw.finish(start, err)
}

// WriteResponse frames a switch response.
func (fw *FrameWriter) WriteResponse(r *Response) error {
	start := fw.begin(FrameResponse)
	var err error
	fw.buf, err = AppendResponse(fw.buf, r)
	return fw.finish(start, err)
}

// WriteTxnRequest frames a workload-transaction request envelope.
func (fw *FrameWriter) WriteTxnRequest(q *TxnRequest) error {
	start := fw.begin(FrameTxnReq)
	var err error
	fw.buf, err = AppendTxnRequest(fw.buf, q)
	return fw.finish(start, err)
}

// WriteTxnReply frames a transaction reply envelope.
func (fw *FrameWriter) WriteTxnReply(r *TxnReply) error {
	start := fw.begin(FrameTxnReply)
	var err error
	fw.buf, err = AppendTxnReply(fw.buf, r)
	return fw.finish(start, err)
}

// Flush writes the buffered frames to the underlying writer. Transport
// errors are sticky: once a write fails, every later call reports it.
func (fw *FrameWriter) Flush() error {
	if fw.err != nil {
		return fw.err
	}
	if len(fw.buf) == 0 {
		return nil
	}
	_, err := fw.w.Write(fw.buf)
	fw.buf = fw.buf[:0]
	if err != nil {
		fw.err = err
	}
	return err
}

// AppendTxnReplyFrame appends a framed TxnReply to dst: the server's
// engine loop encodes replies straight into each connection's output
// buffer with this, no FrameWriter needed. On error dst is unchanged.
func AppendTxnReplyFrame(dst []byte, r *TxnReply) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, byte(FrameTxnReply))
	out, err := AppendTxnReply(dst, r)
	if err != nil {
		return out[:start], err
	}
	binary.BigEndian.PutUint32(out[start:], uint32(len(out)-start-frameHdrSize))
	return out, nil
}
