package txnwire

import "encoding/binary"

// Append/DecodeInto variants of the Packet and Response codecs. These are
// the serving-path forms: they write into caller-owned buffers and reuse
// caller-owned instruction/result slices, so steady-state encode/decode is
// allocation-free (pinned by alloc_test.go). Encode/Decode delegate here.

// AppendPacket appends the encoded packet to dst and returns the extended
// slice. On error dst is returned unchanged.
func AppendPacket(dst []byte, p *Packet) ([]byte, error) {
	if len(p.Instrs) > maxInstrs {
		return dst, ErrTooManyInstrs
	}
	start := len(dst)
	var flags byte
	if p.Header.IsMultipass {
		flags |= flagMulti
	}
	if p.Header.LockLeft {
		flags |= flagLockL
	}
	if p.Header.LockRight {
		flags |= flagLockR
	}
	dst = append(dst, flags, p.Header.NbRecircs)
	dst = binary.BigEndian.AppendUint64(dst, p.Header.TxnID)
	dst = append(dst, uint8(len(p.Instrs)))
	for _, in := range p.Instrs {
		if !in.Op.Valid() {
			return dst[:start], ErrBadOpcode
		}
		dst = append(dst, byte(in.Op), in.Stage, in.Array)
		dst = binary.BigEndian.AppendUint32(dst, in.Index)
		dst = binary.BigEndian.AppendUint64(dst, uint64(in.Operand))
	}
	return dst, nil
}

// DecodePacketInto parses a packet from the front of buf into p, reusing
// p.Instrs capacity, and returns the unconsumed remainder of buf.
func DecodePacketInto(p *Packet, buf []byte) (rest []byte, err error) {
	if len(buf) < headerSize {
		return buf, ErrShortPacket
	}
	flags := buf[0]
	p.Header = Header{
		IsMultipass: flags&flagMulti != 0,
		LockLeft:    flags&flagLockL != 0,
		LockRight:   flags&flagLockR != 0,
		NbRecircs:   buf[1],
		TxnID:       binary.BigEndian.Uint64(buf[2:]),
	}
	n := int(buf[10])
	if len(buf) < headerSize+n*instrSize {
		return buf, ErrShortPacket
	}
	p.Instrs = p.Instrs[:0]
	off := headerSize
	for i := 0; i < n; i++ {
		op := Op(buf[off])
		if !op.Valid() {
			return buf, ErrBadOpcode
		}
		p.Instrs = append(p.Instrs, Instr{
			Op:      op,
			Stage:   buf[off+1],
			Array:   buf[off+2],
			Index:   binary.BigEndian.Uint32(buf[off+3:]),
			Operand: int64(binary.BigEndian.Uint64(buf[off+7:])),
		})
		off += instrSize
	}
	return buf[off:], nil
}

// AppendResponse appends the encoded response to dst and returns the
// extended slice. On error dst is returned unchanged.
func AppendResponse(dst []byte, r *Response) ([]byte, error) {
	if len(r.Results) > maxInstrs {
		return dst, ErrTooManyInstrs
	}
	dst = binary.BigEndian.AppendUint64(dst, r.TxnID)
	dst = binary.BigEndian.AppendUint64(dst, r.GID)
	dst = append(dst, r.Recircs, uint8(len(r.Results)))
	for _, res := range r.Results {
		dst = binary.BigEndian.AppendUint64(dst, uint64(res.Value))
		var ok byte
		if res.OK {
			ok = flagResultOK
		}
		dst = append(dst, ok)
	}
	return dst, nil
}

// DecodeResponseInto parses a response from the front of buf into r,
// reusing r.Results capacity, and returns the unconsumed remainder.
func DecodeResponseInto(r *Response, buf []byte) (rest []byte, err error) {
	if len(buf) < respHdrSize {
		return buf, ErrShortPacket
	}
	r.TxnID = binary.BigEndian.Uint64(buf[0:])
	r.GID = binary.BigEndian.Uint64(buf[8:])
	r.Recircs = buf[16]
	n := int(buf[17])
	if len(buf) < respHdrSize+n*resultSize {
		return buf, ErrShortPacket
	}
	r.Results = r.Results[:0]
	off := respHdrSize
	for i := 0; i < n; i++ {
		r.Results = append(r.Results, Result{
			Value: int64(binary.BigEndian.Uint64(buf[off:])),
			OK:    buf[off+8]&flagResultOK != 0,
		})
		off += resultSize
	}
	return buf[off:], nil
}
