package txnwire

import (
	"encoding/binary"
	"errors"
)

// Request/reply envelopes for serving whole workload transactions over the
// wire. The paper's Packet addresses switch register slots (Stage, Array,
// Index u32); a workload operation addresses (table, 52-bit global key,
// field, home node). The envelope keeps the Packet codec as its core —
// Stage carries the table id, Array the field, Index the key's low 32 bits
// — and adds one fixed-width extension per operation for the bits the
// switch format has no room for:
//
//	TxnRequest  = [u8 origin][u8 flags][Packet][len(Instrs) × OpExt]
//	OpExt       = [u32 keyHi][u8 home][u8 dependsOn]   (0xFF = none)
//	TxnReply    = [u8 status][u8 class][Response]
//
// Both decoders are strict about total length: a payload with missing or
// trailing bytes is rejected, so a corrupted stream fails at the frame it
// corrupts instead of desynchronizing silently.

// Envelope sizes and sentinels.
const (
	reqHdrSize   = 2 // origin, flags
	opExtSize    = 6 // keyHi u32, home u8, dependsOn u8
	replyHdrSize = 2 // status, class

	// DepNone marks an operation with no read dependency.
	DepNone = 0xFF
)

// Reply status codes.
const (
	StatusCommitted = 0
	StatusAborted   = 1
	StatusRejected  = 2 // request failed validation; txn never executed
)

// Envelope errors.
var (
	ErrExtMismatch = errors.New("txnwire: op extension count does not match instruction count")
	ErrTrailing    = errors.New("txnwire: trailing bytes after envelope")
)

// OpExt is the per-operation extension carrying what Instr cannot: the
// key's high 32 bits, the home node, and the intra-transaction read
// dependency index.
type OpExt struct {
	KeyHi uint32
	Home  uint8
	Dep   uint8
}

// TxnRequest asks a server to execute one workload transaction through
// its engine. Ext must have exactly one entry per Pkt instruction.
type TxnRequest struct {
	Origin uint8 // node whose worker context executes the transaction
	Flags  uint8 // reserved, encoded as-is
	Pkt    Packet
	Ext    []OpExt
}

// TxnReply reports the transaction outcome. Resp.TxnID echoes the request
// id, Resp.GID is the server-assigned commit sequence number, and
// Resp.Recircs carries the abort/retry count (saturating at 255).
type TxnReply struct {
	Status uint8
	Class  uint8 // engine.Class the commit took (hot/cold/warm)
	Resp   Response
}

// AppendTxnRequest appends the encoded request envelope to dst. On error
// dst is returned unchanged.
func AppendTxnRequest(dst []byte, q *TxnRequest) ([]byte, error) {
	if len(q.Ext) != len(q.Pkt.Instrs) {
		return dst, ErrExtMismatch
	}
	start := len(dst)
	dst = append(dst, q.Origin, q.Flags)
	out, err := AppendPacket(dst, &q.Pkt)
	if err != nil {
		return out[:start], err
	}
	for _, e := range q.Ext {
		out = binary.BigEndian.AppendUint32(out, e.KeyHi)
		out = append(out, e.Home, e.Dep)
	}
	return out, nil
}

// DecodeTxnRequestInto parses a request envelope into q, reusing the
// instruction and extension slices. The whole payload must be consumed.
func DecodeTxnRequestInto(q *TxnRequest, payload []byte) error {
	if len(payload) < reqHdrSize {
		return ErrShortPacket
	}
	q.Origin = payload[0]
	q.Flags = payload[1]
	rest, err := DecodePacketInto(&q.Pkt, payload[reqHdrSize:])
	if err != nil {
		return err
	}
	n := len(q.Pkt.Instrs)
	if len(rest) < n*opExtSize {
		return ErrShortPacket
	}
	if len(rest) > n*opExtSize {
		return ErrTrailing
	}
	q.Ext = q.Ext[:0]
	for i := 0; i < n; i++ {
		off := i * opExtSize
		q.Ext = append(q.Ext, OpExt{
			KeyHi: binary.BigEndian.Uint32(rest[off:]),
			Home:  rest[off+4],
			Dep:   rest[off+5],
		})
	}
	return nil
}

// AppendTxnReply appends the encoded reply envelope to dst. On error dst
// is returned unchanged.
func AppendTxnReply(dst []byte, r *TxnReply) ([]byte, error) {
	start := len(dst)
	dst = append(dst, r.Status, r.Class)
	out, err := AppendResponse(dst, &r.Resp)
	if err != nil {
		return out[:start], err
	}
	return out, nil
}

// DecodeTxnReplyInto parses a reply envelope into r, reusing the result
// slice. The whole payload must be consumed.
func DecodeTxnReplyInto(r *TxnReply, payload []byte) error {
	if len(payload) < replyHdrSize {
		return ErrShortPacket
	}
	r.Status = payload[0]
	r.Class = payload[1]
	rest, err := DecodeResponseInto(&r.Resp, payload[replyHdrSize:])
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return ErrTrailing
	}
	return nil
}
