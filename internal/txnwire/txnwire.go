// Package txnwire defines the binary packet format for switch transactions
// (Figure 6 of the paper): a fixed header carrying processing information
// (is_multipass flag, required pipeline locks, recirculation counter)
// followed by a variable number of instructions, each describing one
// operation on a switch register array.
//
// P4DB maps one transaction to one network packet; database nodes encode a
// packet from the hot transaction's operations and the switch decodes and
// executes it in the data plane. This package implements the codec both
// sides share, using fixed-width big-endian fields as a P4 parser would.
package txnwire

import (
	"errors"
	"fmt"
)

// Op is a switch instruction opcode. The set mirrors what a Tofino
// RegisterAction can express in a single stateful ALU invocation: trivial
// reads/writes, fixed-point add, and the constrained write used for simple
// consistency checks (Section 5.1).
type Op uint8

// Opcodes.
const (
	// OpRead loads the register value; the operand is ignored.
	OpRead Op = iota
	// OpWrite stores the operand into the register.
	OpWrite
	// OpAdd adds the operand (fixed-point) and stores the sum; the result
	// carries the new value. Reads-dependent-writes compile to OpAdd.
	OpAdd
	// OpCondAddGE0 is a constrained write: add the operand only if the sum
	// stays >= 0, otherwise leave the register unchanged and clear OK.
	// This implements SmallBank-style "balance must not go negative"
	// checks without aborts.
	OpCondAddGE0
	// OpMax stores max(current, operand); used for monotonic counters.
	OpMax
	// OpReadClear atomically reads the register into the result, adds it
	// to the packet's accumulator metadata, and zeroes the register — the
	// "read-and-clear" RegisterAction SmallBank's Amalgamate uses.
	OpReadClear
	// OpAddAcc adds the packet's accumulator (the sum of all prior
	// OpReadClear values in this transaction) plus the operand to the
	// register. Read-dependent writes across tuples compile to
	// OpReadClear followed by OpAddAcc in a later stage, with the value
	// carried in packet metadata exactly as a P4 program would.
	OpAddAcc
	// OpAddIfOK adds the operand only if the packet's ok-flag is still
	// set; OpCondAddGE0 clears the flag when its predicate fails. This
	// chains a conditional transfer (SendPayment): the credit leg applies
	// only if the debit leg succeeded.
	OpAddIfOK
	numOps
)

// Valid reports whether the opcode is defined.
func (o Op) Valid() bool { return o < numOps }

// String returns the opcode mnemonic.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "READ"
	case OpWrite:
		return "WRITE"
	case OpAdd:
		return "ADD"
	case OpCondAddGE0:
		return "CADD>=0"
	case OpMax:
		return "MAX"
	case OpReadClear:
		return "RDCLR"
	case OpAddAcc:
		return "ADDACC"
	case OpAddIfOK:
		return "ADDIFOK"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Instr is one operation of a switch transaction: an opcode applied to one
// slot (Index) of one register array (Stage, Array).
type Instr struct {
	Op      Op
	Stage   uint8
	Array   uint8
	Index   uint32
	Operand int64
}

func (i Instr) String() string {
	return fmt.Sprintf("%s s%d/a%d[%d] %d", i.Op, i.Stage, i.Array, i.Index, i.Operand)
}

// Header carries the processing information of Figure 6. For multi-pass
// transactions LockLeft/LockRight name the pipeline locks to acquire on the
// first pass and free on the last; for single-pass transactions they name
// the locks that must be free for admission.
type Header struct {
	IsMultipass bool
	LockLeft    bool
	LockRight   bool
	NbRecircs   uint8
	TxnID       uint64 // caller-side id, echoed in the response
}

// Packet is one switch transaction on the wire.
type Packet struct {
	Header Header
	Instrs []Instr
}

// Result is the per-instruction outcome returned by the switch: the value
// read (or the post-write value) and whether a constrained write applied.
type Result struct {
	Value int64
	OK    bool
}

// Response is the switch's reply packet: the globally-unique transaction id
// (GID) assigned by the switch in serial execution order, the recirculation
// count the packet accumulated, and one result per instruction.
type Response struct {
	TxnID   uint64
	GID     uint64
	Recircs uint8
	Results []Result
}

// Wire layout sizes.
const (
	headerSize   = 1 + 1 + 8 + 1 // flags, nbRecircs, txnID, nInstr
	instrSize    = 1 + 1 + 1 + 4 + 8
	respHdrSize  = 8 + 8 + 1 + 1 // txnID, gid, recircs, nResults
	resultSize   = 8 + 1
	maxInstrs    = 255
	flagMulti    = 1 << 0
	flagLockL    = 1 << 1
	flagLockR    = 1 << 2
	flagResultOK = 1 << 0
)

// Codec errors.
var (
	ErrTooManyInstrs = errors.New("txnwire: more than 255 instructions")
	ErrShortPacket   = errors.New("txnwire: packet truncated")
	ErrBadOpcode     = errors.New("txnwire: invalid opcode")
)

// Encode serializes the packet into a fresh buffer. The serving path uses
// AppendPacket (codec.go) to reuse buffers instead.
func Encode(p *Packet) ([]byte, error) {
	buf, err := AppendPacket(make([]byte, 0, headerSize+instrSize*len(p.Instrs)), p)
	if err != nil {
		return nil, err
	}
	return buf, nil
}

// Decode parses a packet previously produced by Encode. Trailing bytes
// after the declared instruction count are ignored; the framed serving
// path uses DecodePacketInto, which reports the remainder to its caller.
func Decode(buf []byte) (*Packet, error) {
	p := new(Packet)
	if _, err := DecodePacketInto(p, buf); err != nil {
		return nil, err
	}
	return p, nil
}

// EncodeResponse serializes a response packet into a fresh buffer.
func EncodeResponse(r *Response) ([]byte, error) {
	buf, err := AppendResponse(make([]byte, 0, respHdrSize+resultSize*len(r.Results)), r)
	if err != nil {
		return nil, err
	}
	return buf, nil
}

// DecodeResponse parses a response packet. Trailing bytes are ignored.
func DecodeResponse(buf []byte) (*Response, error) {
	r := new(Response)
	if _, err := DecodeResponseInto(r, buf); err != nil {
		return nil, err
	}
	return r, nil
}
