// Package txnwire defines the binary packet format for switch transactions
// (Figure 6 of the paper): a fixed header carrying processing information
// (is_multipass flag, required pipeline locks, recirculation counter)
// followed by a variable number of instructions, each describing one
// operation on a switch register array.
//
// P4DB maps one transaction to one network packet; database nodes encode a
// packet from the hot transaction's operations and the switch decodes and
// executes it in the data plane. This package implements the codec both
// sides share, using fixed-width big-endian fields as a P4 parser would.
package txnwire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Op is a switch instruction opcode. The set mirrors what a Tofino
// RegisterAction can express in a single stateful ALU invocation: trivial
// reads/writes, fixed-point add, and the constrained write used for simple
// consistency checks (Section 5.1).
type Op uint8

// Opcodes.
const (
	// OpRead loads the register value; the operand is ignored.
	OpRead Op = iota
	// OpWrite stores the operand into the register.
	OpWrite
	// OpAdd adds the operand (fixed-point) and stores the sum; the result
	// carries the new value. Reads-dependent-writes compile to OpAdd.
	OpAdd
	// OpCondAddGE0 is a constrained write: add the operand only if the sum
	// stays >= 0, otherwise leave the register unchanged and clear OK.
	// This implements SmallBank-style "balance must not go negative"
	// checks without aborts.
	OpCondAddGE0
	// OpMax stores max(current, operand); used for monotonic counters.
	OpMax
	// OpReadClear atomically reads the register into the result, adds it
	// to the packet's accumulator metadata, and zeroes the register — the
	// "read-and-clear" RegisterAction SmallBank's Amalgamate uses.
	OpReadClear
	// OpAddAcc adds the packet's accumulator (the sum of all prior
	// OpReadClear values in this transaction) plus the operand to the
	// register. Read-dependent writes across tuples compile to
	// OpReadClear followed by OpAddAcc in a later stage, with the value
	// carried in packet metadata exactly as a P4 program would.
	OpAddAcc
	// OpAddIfOK adds the operand only if the packet's ok-flag is still
	// set; OpCondAddGE0 clears the flag when its predicate fails. This
	// chains a conditional transfer (SendPayment): the credit leg applies
	// only if the debit leg succeeded.
	OpAddIfOK
	numOps
)

// Valid reports whether the opcode is defined.
func (o Op) Valid() bool { return o < numOps }

// String returns the opcode mnemonic.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "READ"
	case OpWrite:
		return "WRITE"
	case OpAdd:
		return "ADD"
	case OpCondAddGE0:
		return "CADD>=0"
	case OpMax:
		return "MAX"
	case OpReadClear:
		return "RDCLR"
	case OpAddAcc:
		return "ADDACC"
	case OpAddIfOK:
		return "ADDIFOK"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Instr is one operation of a switch transaction: an opcode applied to one
// slot (Index) of one register array (Stage, Array).
type Instr struct {
	Op      Op
	Stage   uint8
	Array   uint8
	Index   uint32
	Operand int64
}

func (i Instr) String() string {
	return fmt.Sprintf("%s s%d/a%d[%d] %d", i.Op, i.Stage, i.Array, i.Index, i.Operand)
}

// Header carries the processing information of Figure 6. For multi-pass
// transactions LockLeft/LockRight name the pipeline locks to acquire on the
// first pass and free on the last; for single-pass transactions they name
// the locks that must be free for admission.
type Header struct {
	IsMultipass bool
	LockLeft    bool
	LockRight   bool
	NbRecircs   uint8
	TxnID       uint64 // caller-side id, echoed in the response
}

// Packet is one switch transaction on the wire.
type Packet struct {
	Header Header
	Instrs []Instr
}

// Result is the per-instruction outcome returned by the switch: the value
// read (or the post-write value) and whether a constrained write applied.
type Result struct {
	Value int64
	OK    bool
}

// Response is the switch's reply packet: the globally-unique transaction id
// (GID) assigned by the switch in serial execution order, the recirculation
// count the packet accumulated, and one result per instruction.
type Response struct {
	TxnID   uint64
	GID     uint64
	Recircs uint8
	Results []Result
}

// Wire layout sizes.
const (
	headerSize   = 1 + 1 + 8 + 1 // flags, nbRecircs, txnID, nInstr
	instrSize    = 1 + 1 + 1 + 4 + 8
	respHdrSize  = 8 + 8 + 1 + 1 // txnID, gid, recircs, nResults
	resultSize   = 8 + 1
	maxInstrs    = 255
	flagMulti    = 1 << 0
	flagLockL    = 1 << 1
	flagLockR    = 1 << 2
	flagResultOK = 1 << 0
)

// Codec errors.
var (
	ErrTooManyInstrs = errors.New("txnwire: more than 255 instructions")
	ErrShortPacket   = errors.New("txnwire: packet truncated")
	ErrBadOpcode     = errors.New("txnwire: invalid opcode")
)

// Encode serializes the packet.
func Encode(p *Packet) ([]byte, error) {
	if len(p.Instrs) > maxInstrs {
		return nil, ErrTooManyInstrs
	}
	buf := make([]byte, headerSize+instrSize*len(p.Instrs))
	var flags byte
	if p.Header.IsMultipass {
		flags |= flagMulti
	}
	if p.Header.LockLeft {
		flags |= flagLockL
	}
	if p.Header.LockRight {
		flags |= flagLockR
	}
	buf[0] = flags
	buf[1] = p.Header.NbRecircs
	binary.BigEndian.PutUint64(buf[2:], p.Header.TxnID)
	buf[10] = uint8(len(p.Instrs))
	off := headerSize
	for _, in := range p.Instrs {
		if !in.Op.Valid() {
			return nil, ErrBadOpcode
		}
		buf[off] = byte(in.Op)
		buf[off+1] = in.Stage
		buf[off+2] = in.Array
		binary.BigEndian.PutUint32(buf[off+3:], in.Index)
		binary.BigEndian.PutUint64(buf[off+7:], uint64(in.Operand))
		off += instrSize
	}
	return buf, nil
}

// Decode parses a packet previously produced by Encode.
func Decode(buf []byte) (*Packet, error) {
	if len(buf) < headerSize {
		return nil, ErrShortPacket
	}
	flags := buf[0]
	p := &Packet{Header: Header{
		IsMultipass: flags&flagMulti != 0,
		LockLeft:    flags&flagLockL != 0,
		LockRight:   flags&flagLockR != 0,
		NbRecircs:   buf[1],
		TxnID:       binary.BigEndian.Uint64(buf[2:]),
	}}
	n := int(buf[10])
	if len(buf) < headerSize+n*instrSize {
		return nil, ErrShortPacket
	}
	if n == 0 {
		return p, nil
	}
	p.Instrs = make([]Instr, n)
	off := headerSize
	for i := 0; i < n; i++ {
		op := Op(buf[off])
		if !op.Valid() {
			return nil, ErrBadOpcode
		}
		p.Instrs[i] = Instr{
			Op:      op,
			Stage:   buf[off+1],
			Array:   buf[off+2],
			Index:   binary.BigEndian.Uint32(buf[off+3:]),
			Operand: int64(binary.BigEndian.Uint64(buf[off+7:])),
		}
		off += instrSize
	}
	return p, nil
}

// EncodeResponse serializes a response packet.
func EncodeResponse(r *Response) ([]byte, error) {
	if len(r.Results) > maxInstrs {
		return nil, ErrTooManyInstrs
	}
	buf := make([]byte, respHdrSize+resultSize*len(r.Results))
	binary.BigEndian.PutUint64(buf[0:], r.TxnID)
	binary.BigEndian.PutUint64(buf[8:], r.GID)
	buf[16] = r.Recircs
	buf[17] = uint8(len(r.Results))
	off := respHdrSize
	for _, res := range r.Results {
		binary.BigEndian.PutUint64(buf[off:], uint64(res.Value))
		if res.OK {
			buf[off+8] = flagResultOK
		}
		off += resultSize
	}
	return buf, nil
}

// DecodeResponse parses a response packet.
func DecodeResponse(buf []byte) (*Response, error) {
	if len(buf) < respHdrSize {
		return nil, ErrShortPacket
	}
	r := &Response{
		TxnID:   binary.BigEndian.Uint64(buf[0:]),
		GID:     binary.BigEndian.Uint64(buf[8:]),
		Recircs: buf[16],
	}
	n := int(buf[17])
	if len(buf) < respHdrSize+n*resultSize {
		return nil, ErrShortPacket
	}
	if n == 0 {
		return r, nil
	}
	r.Results = make([]Result, n)
	off := respHdrSize
	for i := 0; i < n; i++ {
		r.Results[i] = Result{
			Value: int64(binary.BigEndian.Uint64(buf[off:])),
			OK:    buf[off+8]&flagResultOK != 0,
		}
		off += resultSize
	}
	return r, nil
}
