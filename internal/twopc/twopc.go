// Package twopc implements the two-phase commit protocol of P4DB's host
// DBMS, including the paper's extension for warm transactions (Figure 10):
// after a successful voting phase, the coordinator sends the switch
// sub-transaction to the switch, which executes it and multicasts the
// commit decision (with the switch results) to all participants in the
// data plane — saving the dedicated decision round trip of classic 2PC.
package twopc

import (
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Participant is one node's involvement in a distributed transaction. The
// handlers run "at" the participant on the simulated timeline. Prepare may
// block (e.g. while flushing a log record) and therefore runs in a
// process; Commit and Abort apply already-validated state (release locks,
// install buffered writes) and run as callback events — they must not
// block, which lets the decision round and the switch multicast deliver
// them without any goroutine switches.
type Participant struct {
	Node netsim.NodeID
	// Prepare validates and persists the participant's sub-transaction;
	// it returns the participant's vote. It may block.
	Prepare func(p *sim.Proc) bool
	// PrepareK is the continuation form of Prepare: it must eventually call
	// done with the vote (possibly after scheduled waits such as a log
	// flush). The coordinator's continuation-form methods use PrepareK; the
	// process-form methods use Prepare. Builders set both so either driver
	// works.
	PrepareK func(done func(bool))
	// Commit applies and releases the sub-transaction. It must not block.
	Commit func()
	// Abort rolls the sub-transaction back and releases it. It must not
	// block.
	Abort func()
}

// Stats counts protocol outcomes.
type Stats struct {
	Commits int64
	Aborts  int64
}

// Coordinator drives commits for one node.
type Coordinator struct {
	net  *netsim.Network
	self netsim.NodeID

	// mcastFree recycles multicast frames so the warm commit path stays
	// allocation-free at steady state regardless of cluster size.
	mcastFree []*mcastFrame

	// Stats is exported for benchmarks.
	Stats Stats
}

// mcastFrame is the in-flight state of one switch multicast: the
// participants to commit, the sorted distinct multicast group, and a
// countdown of pending deliveries. The deliver method value is cached at
// frame creation so the whole fan-out — group build, scheduling through
// the per-node batchers, delivery, recycling — allocates nothing once the
// coordinator's free list is warm.
type mcastFrame struct {
	c         *Coordinator
	parts     []Participant
	nodes     []netsim.NodeID
	remaining int
	deliverFn func(int)
}

// addNode inserts id into the sorted group, skipping duplicates.
// Participant lists hold one entry per involved node (a handful at most),
// so an insertion scan beats sorting machinery and allocates nothing.
func (f *mcastFrame) addNode(id netsim.NodeID) {
	i := 0
	for i < len(f.nodes) && f.nodes[i] < id {
		i++
	}
	if i < len(f.nodes) && f.nodes[i] == id {
		return
	}
	f.nodes = append(f.nodes, 0)
	copy(f.nodes[i+1:], f.nodes[i:])
	f.nodes[i] = id
}

// deliver runs at one multicast target: every participant hosted on that
// node commits as a callback event, preserving the participants' declared
// order within the node. The frame recycles itself when the last target
// has been delivered.
func (f *mcastFrame) deliver(id int) {
	env := f.c.net.Env()
	node := netsim.NodeID(id)
	for _, part := range f.parts {
		if part.Node == node {
			// Commit handlers are non-blocking by contract, so the
			// multicast arrival delivers them as callback events.
			env.After(0, part.Commit)
		}
	}
	if f.remaining--; f.remaining == 0 {
		f.c.putFrame(f)
	}
}

// takeFrame returns a reset frame from the free list, or a fresh one with
// its deliver method value pre-bound.
func (c *Coordinator) takeFrame() *mcastFrame {
	if n := len(c.mcastFree); n > 0 {
		f := c.mcastFree[n-1]
		c.mcastFree = c.mcastFree[:n-1]
		return f
	}
	f := &mcastFrame{c: c}
	f.deliverFn = f.deliver
	return f
}

// putFrame clears a frame's references and recycles it.
func (c *Coordinator) putFrame(f *mcastFrame) {
	for i := range f.parts {
		f.parts[i] = Participant{}
	}
	f.parts = f.parts[:0]
	f.nodes = f.nodes[:0]
	c.mcastFree = append(c.mcastFree, f)
}

// multicastCommit delivers every participant's Commit through the switch's
// targeted multicast: one delivery per distinct participant node (ascending
// node order, matching the data-plane replication order), nothing at idle
// nodes. The frame stays live until its last delivery lands, so multiple
// multicasts from one coordinator may be in flight concurrently.
func (c *Coordinator) multicastCommit(parts []Participant) {
	if len(parts) == 0 {
		return
	}
	f := c.takeFrame()
	f.parts = append(f.parts, parts...)
	for _, part := range parts {
		f.addNode(part.Node)
	}
	f.remaining = len(f.nodes)
	c.net.SwitchMulticastTo(f.nodes, f.deliverFn)
}

// NewCoordinator creates a coordinator running on node self.
func NewCoordinator(net *netsim.Network, self netsim.NodeID) *Coordinator {
	return &Coordinator{net: net, self: self}
}

// Commit runs classic 2PC over the participants: a parallel prepare round
// collecting votes, then a parallel commit (or abort) round. It returns
// whether the transaction committed. A participant co-located with the
// coordinator is handled without network hops by netsim.
func (c *Coordinator) Commit(p *sim.Proc, parts []Participant) bool {
	votes := c.vote(p, parts)
	if votes {
		c.finish(p, parts, true)
		c.Stats.Commits++
		return true
	}
	c.finish(p, parts, false)
	c.Stats.Aborts++
	return false
}

// CommitWithSwitch runs the combined Decision&Switch phase for warm
// transactions. After all participants vote yes, the coordinator sends the
// switch sub-transaction (half an RTT away); switchTxn executes it at the
// switch and returns an opaque result. The switch then multicasts the
// decision: every participant's Commit handler runs when the multicast
// arrives, without further round trips, and the coordinator resumes at the
// same instant (it is one of the multicast targets). On a no vote the
// switch transaction is never sent and a classic abort round runs instead.
//
// When the warm transaction has no remote participants, the voting phase
// is skipped entirely (Section 6.2).
func (c *Coordinator) CommitWithSwitch(p *sim.Proc, parts []Participant, switchTxn func(sub *sim.Proc)) bool {
	remote := remoteParts(parts, c.self)
	if len(remote) > 0 {
		if !c.voteSubset(p, remote) {
			c.finish(p, parts, false)
			c.Stats.Aborts++
			return false
		}
	}
	c.SwitchPhase(p, parts, switchTxn)
	return true
}

// SwitchPhase is the post-vote half of the combined protocol: travel to
// the switch, execute the hot sub-transaction, and multicast the commit
// decision to all participants. Callers that need work between the vote
// and the send (e.g. appending the switch intent to the WAL only once the
// outcome is decided) run Prepare themselves and then call SwitchPhase.
func (c *Coordinator) SwitchPhase(p *sim.Proc, parts []Participant, switchTxn func(sub *sim.Proc)) {
	// Travel to the switch and execute the hot sub-transaction there.
	p.Sleep(c.net.Latency().NodeToSwitch)
	switchTxn(p)
	// The switch multicasts results + decision to the participant nodes;
	// commit handlers run on arrival. The coordinator's own copy arrives
	// after the same switch-to-node latency, at which point all
	// (same-distance) participants have committed as well.
	c.multicastCommit(parts)
	p.Sleep(c.net.Latency().NodeToSwitch)
	c.Stats.Commits++
}

// Prepare runs only the voting round and reports whether every
// participant voted yes. Callers that interleave extra work between
// voting and the decision (e.g. Chiller's inner region) use this together
// with Finish.
func (c *Coordinator) Prepare(p *sim.Proc, parts []Participant) bool {
	return c.vote(p, parts)
}

// Finish runs only the decision round, committing or aborting every
// participant.
func (c *Coordinator) Finish(p *sim.Proc, parts []Participant, commit bool) {
	c.finish(p, parts, commit)
	if commit {
		c.Stats.Commits++
	} else {
		c.Stats.Aborts++
	}
}

// vote runs the prepare round over all participants in parallel.
func (c *Coordinator) vote(p *sim.Proc, parts []Participant) bool {
	ok := true
	c.fanout(p, parts, func(sub *sim.Proc, part Participant) {
		if !part.Prepare(sub) {
			ok = false
		}
	})
	return ok
}

// voteSubset is vote over a subset (used by the warm-transaction path).
func (c *Coordinator) voteSubset(p *sim.Proc, parts []Participant) bool {
	return c.vote(p, parts)
}

// finish runs the decision round (commit or abort) over all participants.
// Commit/Abort handlers are non-blocking by contract, so the whole round
// travels as callback events: the only goroutine wake-up is the
// coordinator resuming when the last acknowledgement lands.
func (c *Coordinator) finish(p *sim.Proc, parts []Participant, commit bool) {
	act := func(part Participant) func() {
		if commit {
			return part.Commit
		}
		return part.Abort
	}
	if len(parts) == 0 {
		return
	}
	if len(parts) == 1 {
		c.net.RPCEvent(p, c.self, parts[0].Node, act(parts[0]))
		return
	}
	env := p.Env()
	wg := env.NewWaitGroup(len(parts))
	for _, part := range parts {
		c.net.AsyncRPCEvent(c.self, part.Node, act(part), wg.Done)
	}
	p.Wait(wg)
}

// fanout dispatches the (possibly blocking) handler at every participant
// in parallel and waits. Request and reply legs travel as callback events;
// only the handler itself occupies a process at the participant.
func (c *Coordinator) fanout(p *sim.Proc, parts []Participant, handler func(*sim.Proc, Participant)) {
	if len(parts) == 0 {
		return
	}
	if len(parts) == 1 {
		part := parts[0]
		c.net.RPC(p, c.self, part.Node, func() { handler(p, part) })
		return
	}
	env := p.Env()
	wg := env.NewWaitGroup(len(parts))
	for _, part := range parts {
		part := part
		c.net.AsyncRPC("2pc-rpc", c.self, part.Node,
			func(sub *sim.Proc) { handler(sub, part) }, wg.Done)
	}
	p.Wait(wg)
}

// Continuation (CPS) forms of the coordinator entry points. They schedule
// the exact same events, at the same points of a run, as their process-form
// counterparts (the fan-out/finish rounds mirror fanout and finish case by
// case), so seeded schedules are identical whichever style drives a commit.

// CommitK is the continuation form of Commit: classic 2PC, with k receiving
// whether the transaction committed.
func (c *Coordinator) CommitK(parts []Participant, k func(bool)) {
	c.voteK(parts, func(votes bool) {
		c.finishK(parts, votes, func() {
			if votes {
				c.Stats.Commits++
			} else {
				c.Stats.Aborts++
			}
			k(votes)
		})
	})
}

// CommitDecidedK is CommitK with a durability hook: onDecide runs
// synchronously at the moment the outcome is known — after the last vote
// lands at the coordinator, before the decision round is scheduled. This
// is where presumed-abort logging writes the commit record: a coordinator
// crash before this point aborts the transaction (no record, participants
// time out and abort), a crash after it redoes from the record. onDecide
// must not block or schedule events; under that contract CommitDecidedK
// produces the exact event sequence of CommitK, so turning durability on
// cannot perturb a seeded run.
func (c *Coordinator) CommitDecidedK(parts []Participant, onDecide func(bool), k func(bool)) {
	c.voteK(parts, func(votes bool) {
		onDecide(votes)
		c.finishK(parts, votes, func() {
			if votes {
				c.Stats.Commits++
			} else {
				c.Stats.Aborts++
			}
			k(votes)
		})
	})
}

// CommitWithSwitchK is the continuation form of CommitWithSwitch. switchTxn
// runs "at" the switch and must call its done callback when the in-switch
// execution completes; k receives the commit outcome.
func (c *Coordinator) CommitWithSwitchK(parts []Participant, switchTxn func(done func()), k func(bool)) {
	remote := remoteParts(parts, c.self)
	if len(remote) > 0 {
		c.voteK(remote, func(votes bool) {
			if !votes {
				c.finishK(parts, false, func() {
					c.Stats.Aborts++
					k(false)
				})
				return
			}
			c.SwitchPhaseK(parts, switchTxn, func() { k(true) })
		})
		return
	}
	c.SwitchPhaseK(parts, switchTxn, func() { k(true) })
}

// SwitchPhaseK is the continuation form of SwitchPhase: travel to the
// switch, run the hot sub-transaction there (switchTxn completes via done),
// multicast the decision, and run k when the coordinator's own multicast
// copy arrives.
func (c *Coordinator) SwitchPhaseK(parts []Participant, switchTxn func(done func()), k func()) {
	env := c.net.Env()
	s := c.net.Latency().NodeToSwitch
	env.After(s, func() {
		switchTxn(func() {
			c.multicastCommit(parts)
			env.After(s, func() {
				c.Stats.Commits++
				k()
			})
		})
	})
}

// PrepareK is the continuation form of Prepare: it runs only the voting
// round and hands k whether every participant voted yes.
func (c *Coordinator) PrepareK(parts []Participant, k func(bool)) {
	c.voteK(parts, k)
}

// FinishK is the continuation form of Finish: it runs only the decision
// round.
func (c *Coordinator) FinishK(parts []Participant, commit bool, k func()) {
	c.finishK(parts, commit, func() {
		if commit {
			c.Stats.Commits++
		} else {
			c.Stats.Aborts++
		}
		k()
	})
}

// voteK runs the prepare round over all participants in parallel, mirroring
// fanout's single-participant RPC / multi-participant async fan-out split.
func (c *Coordinator) voteK(parts []Participant, k func(bool)) {
	if len(parts) == 0 {
		k(true)
		return
	}
	ok := true
	if len(parts) == 1 {
		part := parts[0]
		c.net.RPCK(c.self, part.Node, func(done func()) {
			part.PrepareK(func(vote bool) {
				if !vote {
					ok = false
				}
				done()
			})
		}, func() { k(ok) })
		return
	}
	env := c.net.Env()
	wg := env.NewWaitGroup(len(parts))
	for _, part := range parts {
		part := part
		c.net.AsyncRPCK(c.self, part.Node, func(done func()) {
			part.PrepareK(func(vote bool) {
				if !vote {
					ok = false
				}
				done()
			})
		}, wg.Done)
	}
	wg.Subscribe(func() { k(ok) })
}

// finishK runs the decision round as callback events, mirroring finish.
func (c *Coordinator) finishK(parts []Participant, commit bool, k func()) {
	act := func(part Participant) func() {
		if commit {
			return part.Commit
		}
		return part.Abort
	}
	if len(parts) == 0 {
		k()
		return
	}
	if len(parts) == 1 {
		c.net.RPCEventK(c.self, parts[0].Node, act(parts[0]), k)
		return
	}
	env := c.net.Env()
	wg := env.NewWaitGroup(len(parts))
	for _, part := range parts {
		c.net.AsyncRPCEvent(c.self, part.Node, act(part), wg.Done)
	}
	wg.Subscribe(k)
}

// remoteParts filters out participants co-located with the coordinator.
func remoteParts(parts []Participant, self netsim.NodeID) []Participant {
	out := make([]Participant, 0, len(parts))
	for _, p := range parts {
		if p.Node != self {
			out = append(out, p)
		}
	}
	return out
}
