package twopc

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

func testNet(e *sim.Env, n int) *netsim.Network {
	return netsim.New(e, n, netsim.Latency{
		NodeToSwitch: 1 * sim.Microsecond,
		NodeToNode:   2 * sim.Microsecond,
	})
}

type trace struct {
	prepares, commits, aborts int
}

func part(e *sim.Env, node netsim.NodeID, vote bool, tr *trace) Participant {
	return Participant{
		Node: node,
		Prepare: func(p *sim.Proc) bool {
			tr.prepares++
			return vote
		},
		Commit: func() { tr.commits++ },
		Abort:  func() { tr.aborts++ },
	}
}

func TestClassic2PCCommits(t *testing.T) {
	e := sim.NewEnv(1)
	net := testNet(e, 4)
	c := NewCoordinator(net, 0)
	var tr trace
	var ok bool
	e.Spawn("coord", func(p *sim.Proc) {
		ok = c.Commit(p, []Participant{
			part(e, 1, true, &tr), part(e, 2, true, &tr), part(e, 3, true, &tr),
		})
	})
	e.Run()
	if !ok || tr.prepares != 3 || tr.commits != 3 || tr.aborts != 0 {
		t.Fatalf("ok=%v trace=%+v", ok, tr)
	}
	if c.Stats.Commits != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestClassic2PCAbortsOnNoVote(t *testing.T) {
	e := sim.NewEnv(1)
	net := testNet(e, 4)
	c := NewCoordinator(net, 0)
	var tr trace
	var ok bool
	e.Spawn("coord", func(p *sim.Proc) {
		ok = c.Commit(p, []Participant{
			part(e, 1, true, &tr), part(e, 2, false, &tr),
		})
	})
	e.Run()
	if ok || tr.aborts != 2 || tr.commits != 0 {
		t.Fatalf("ok=%v trace=%+v", ok, tr)
	}
}

func TestClassic2PCTakesTwoRounds(t *testing.T) {
	e := sim.NewEnv(1)
	net := testNet(e, 3)
	c := NewCoordinator(net, 0)
	var tr trace
	var done sim.Time
	e.Spawn("coord", func(p *sim.Proc) {
		c.Commit(p, []Participant{part(e, 1, true, &tr), part(e, 2, true, &tr)})
		done = p.Now()
	})
	e.Run()
	// Two parallel rounds of one RTT (4µs) each.
	if done != 8*sim.Microsecond {
		t.Fatalf("2PC finished at %v, want 8µs (two RTTs)", done)
	}
}

func TestCommitWithSwitchSavesARound(t *testing.T) {
	e := sim.NewEnv(1)
	net := testNet(e, 3)
	c := NewCoordinator(net, 0)
	var tr trace
	var done sim.Time
	switchRan := false
	e.Spawn("coord", func(p *sim.Proc) {
		c.CommitWithSwitch(p, []Participant{part(e, 1, true, &tr), part(e, 2, true, &tr)},
			func(sub *sim.Proc) { switchRan = true })
		done = p.Now()
	})
	e.Run()
	if !switchRan || tr.commits != 2 {
		t.Fatalf("switchRan=%v trace=%+v", switchRan, tr)
	}
	// Voting RTT (4µs) + to switch (1µs) + multicast back (1µs) = 6µs,
	// strictly better than classic 2PC + a separate switch trip.
	if done != 6*sim.Microsecond {
		t.Fatalf("combined phase finished at %v, want 6µs", done)
	}
}

func TestCommitWithSwitchSingleNodeSkipsVoting(t *testing.T) {
	e := sim.NewEnv(1)
	net := testNet(e, 2)
	c := NewCoordinator(net, 0)
	var tr trace
	var done sim.Time
	e.Spawn("coord", func(p *sim.Proc) {
		// Only a local participant: Section 6.2 says no voting phase.
		c.CommitWithSwitch(p, []Participant{part(e, 0, true, &tr)},
			func(sub *sim.Proc) {})
		done = p.Now()
	})
	e.Run()
	if tr.prepares != 0 {
		t.Fatalf("voting phase ran for single-node warm txn: %+v", tr)
	}
	// Straight to the switch and back: 2µs.
	if done != 2*sim.Microsecond {
		t.Fatalf("finished at %v, want 2µs", done)
	}
	if tr.commits != 1 {
		t.Fatalf("local participant not committed: %+v", tr)
	}
}

func TestCommitWithSwitchAbortsBeforeSwitch(t *testing.T) {
	e := sim.NewEnv(1)
	net := testNet(e, 3)
	c := NewCoordinator(net, 0)
	var tr trace
	switchRan := false
	var ok bool
	e.Spawn("coord", func(p *sim.Proc) {
		ok = c.CommitWithSwitch(p, []Participant{part(e, 1, false, &tr)},
			func(sub *sim.Proc) { switchRan = true })
	})
	e.Run()
	if ok || switchRan {
		t.Fatal("switch transaction sent despite failed vote — hot sub-txn must never run for aborted warm txns")
	}
	if tr.aborts != 1 {
		t.Fatalf("trace = %+v", tr)
	}
}

func TestCommitWithSwitchParticipantsCommitViaMulticast(t *testing.T) {
	e := sim.NewEnv(1)
	net := testNet(e, 3)
	c := NewCoordinator(net, 0)
	var commitAt []sim.Time
	mk := func(node netsim.NodeID) Participant {
		return Participant{
			Node:    node,
			Prepare: func(p *sim.Proc) bool { return true },
			Commit:  func() { commitAt = append(commitAt, e.Now()) },
			Abort:   func() {},
		}
	}
	e.Spawn("coord", func(p *sim.Proc) {
		c.CommitWithSwitch(p, []Participant{mk(1), mk(2)}, func(sub *sim.Proc) {})
	})
	e.Run()
	if len(commitAt) != 2 {
		t.Fatalf("commits = %d", len(commitAt))
	}
	// Both participants get the decision from the switch multicast at the
	// same instant: vote RTT (4µs) + to-switch (1µs) + multicast (1µs).
	for _, at := range commitAt {
		if at != 6*sim.Microsecond {
			t.Fatalf("commitAt = %v, want both at 6µs", commitAt)
		}
	}
}

func TestEmptyParticipants(t *testing.T) {
	e := sim.NewEnv(1)
	net := testNet(e, 2)
	c := NewCoordinator(net, 0)
	var ok bool
	e.Spawn("coord", func(p *sim.Proc) {
		ok = c.Commit(p, nil)
	})
	e.Run()
	if !ok {
		t.Fatal("empty 2PC should trivially commit")
	}
}

func TestSwitchPhaseAfterManualPrepare(t *testing.T) {
	e := sim.NewEnv(1)
	net := testNet(e, 3)
	c := NewCoordinator(net, 0)
	var tr trace
	parts := []Participant{part(e, 1, true, &tr), part(e, 2, true, &tr)}
	ran := false
	var done sim.Time
	e.Spawn("coord", func(p *sim.Proc) {
		if !c.Prepare(p, parts) {
			t.Error("prepare failed")
		}
		// Caller work between vote and send (e.g. WAL append) is allowed.
		p.Sleep(100)
		c.SwitchPhase(p, parts, func(sub *sim.Proc) { ran = true })
		done = p.Now()
	})
	e.Run()
	if !ran || tr.commits != 2 {
		t.Fatalf("ran=%v commits=%d", ran, tr.commits)
	}
	// Vote RTT 4µs + 100ns + to-switch 1µs + multicast 1µs.
	if want := 4*sim.Microsecond + 100 + 2*sim.Microsecond; done != want {
		t.Fatalf("done at %v, want %v", done, want)
	}
}

func TestPrepareThenFinishAbort(t *testing.T) {
	e := sim.NewEnv(1)
	net := testNet(e, 3)
	c := NewCoordinator(net, 0)
	var tr trace
	parts := []Participant{part(e, 1, true, &tr), part(e, 2, false, &tr)}
	e.Spawn("coord", func(p *sim.Proc) {
		if c.Prepare(p, parts) {
			t.Error("prepare should fail")
		}
		c.Finish(p, parts, false)
	})
	e.Run()
	if tr.aborts != 2 || tr.commits != 0 {
		t.Fatalf("trace = %+v", tr)
	}
	if c.Stats.Aborts != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

// TestMulticastFrameSteadyStateZeroAlloc pins the pooled multicast frame
// at zero heap allocations on a 256-node cluster: once the coordinator's
// free list and the frame's parts/nodes scratch are warm, a switch-commit
// multicast — group build, per-node batcher scheduling, delivery of every
// participant's Commit, frame recycling — must not allocate. A capturing
// literal or a rebuilt per-node map anywhere on the path would fail this.
func TestMulticastFrameSteadyStateZeroAlloc(t *testing.T) {
	e := sim.NewEnv(1)
	net := testNet(e, 256)
	c := NewCoordinator(net, 0)
	commits := 0
	commit := func() { commits++ }
	parts := make([]Participant, 0, 8)
	for _, n := range []netsim.NodeID{7, 42, 42, 128, 200, 255} {
		parts = append(parts, Participant{Node: n, Commit: commit})
	}
	// Warm the frame pool, the batchers and the event heap past growth.
	for i := 0; i < 1024; i++ {
		c.multicastCommit(parts)
		e.Run()
	}
	if avg := testing.AllocsPerRun(1000, func() {
		c.multicastCommit(parts)
		c.multicastCommit(parts) // a second in-flight frame from the pool
		e.Run()
	}); avg != 0 {
		t.Fatalf("switch multicast allocates %.2f objects/op, want 0", avg)
	}
	if commits == 0 {
		t.Fatal("no commits delivered")
	}
	if len(c.mcastFree) == 0 {
		t.Fatal("frames were not recycled to the free list")
	}
}
