package engine

import (
	"repro/internal/sim"
	"repro/internal/workload"
)

func init() { Register(noSwitchEngine{}) }

// noSwitchEngine is the traditional distributed DBMS baseline: the switch
// only forwards packets, every transaction is cold. The host CC scheme
// (2PL or OCC) follows the configured Scheme, matching the paper's main
// setup and the Appendix A.4 ablation.
type noSwitchEngine struct{}

func (noSwitchEngine) Name() string  { return "noswitch" }
func (noSwitchEngine) Label() string { return "No-Switch" }

func (noSwitchEngine) Prepare(ctx *Context) error { return nil }

func (noSwitchEngine) Execute(ctx *Context, p *sim.Proc, n *Node, txn *workload.Txn) (Class, error) {
	if ctx.Scheme == CCOCC {
		return ClassCold, ctx.execOCCTxn(p, n, txn)
	}
	return ClassCold, ctx.execCold(p, n, txn)
}
