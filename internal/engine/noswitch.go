package engine

import (
	"repro/internal/workload"
)

func init() { Register(noSwitchEngine{}) }

// noSwitchEngine is the traditional distributed DBMS baseline: the switch
// only forwards packets, every transaction is cold. The host CC scheme
// (2PL, OCC or MVCC) follows the configuration, matching the paper's main
// setup and the Appendix A.4 ablation.
type noSwitchEngine struct{}

func (noSwitchEngine) Name() string  { return "noswitch" }
func (noSwitchEngine) Label() string { return "No-Switch" }

func (noSwitchEngine) Prepare(ctx *Context) error { return nil }

func (noSwitchEngine) Execute(ctx *Context, n *Node, txn *workload.Txn, k func(Class, error)) {
	ctx.Scheme.ExecCold(ctx, n, txn, ctx.wrapClass(ClassCold, k))
}
