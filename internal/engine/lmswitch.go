package engine

import (
	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func init() { Register(lmSwitchEngine{}) }

// lmSwitchEngine is the LM-Switch baseline (the NetLock-style system of
// Section 7.1): locks for hot tuples are acquired at the switch's central
// lock manager (half an RTT away), while the data accesses still go to the
// tuples' home nodes. Lock hold times barely shrink, which is why the
// paper finds little benefit under skew.
type lmSwitchEngine struct{}

func (lmSwitchEngine) Name() string  { return "lmswitch" }
func (lmSwitchEngine) Label() string { return "LM-Switch" }

// ForcedScheme pins 2PL: centralized lock management is inherently
// lock-based, so the configured scheme does not apply.
func (lmSwitchEngine) ForcedScheme() string { return Scheme2PL }

// Prepare installs the central lock table "in the switch" — a lock table
// reachable at half a round trip.
func (lmSwitchEngine) Prepare(ctx *Context) error {
	ctx.LMLocks = lock.NewTable(ctx.Env, ctx.Policy)
	return nil
}

func (lmSwitchEngine) Execute(ctx *Context, n *Node, txn *workload.Txn, k func(Class, error)) {
	ctx.execLMK(n, txn, func(err error) { k(ClassCold, err) })
}

// execLMK runs one transaction with central locking for hot tuples, as a
// continuation chain over the operations.
func (c *Context) execLMK(n *Node, txn *workload.Txn, k func(error)) {
	at := c.newAttempt()
	at.lm = lock.NewTxn(at.ts)
	t0 := c.Env.Now()
	var step func()
	i := 0
	commit := func() {
		c.commitColdK(n, at, func() {
			lm := at.lm
			c.Net.SendToSwitch(n.id, func() { c.LMLocks.ReleaseAll(lm) })
			k(nil)
		})
	}
	step = func() {
		if i >= len(txn.Ops) {
			commit()
			return
		}
		op := txn.Ops[i]
		i++
		if !c.IsHotTuple(op) {
			c.execOpsK(n, at, txn.Ops[i-1:i], func(err error) {
				if err != nil {
					k(err)
					return
				}
				step()
			})
			return
		}
		if op.Home == n.id {
			// Local data, central lock: the lock request costs a
			// dedicated switch round trip on top of the (otherwise
			// free) local access — the price of centralized locking.
			tl := c.Env.Now()
			var lerr error
			c.Net.RPCToSwitchK(n.id, func(done func()) {
				c.LMLocks.AcquireK(at.lm, lock.Key(op.LockKey()), lockMode(op), func(err error) {
					lerr = err
					done()
				})
			}, func() {
				c.charge(n, metrics.LockAcquisition, tl)
				if lerr != nil {
					c.abort(n, at)
					k(lerr)
					return
				}
				ta := c.Env.Now()
				c.Env.After(c.Costs.LocalAccess, func() {
					c.applyOp(at, n.id, op)
					c.charge(n, metrics.LocalAccess, ta)
					step()
				})
			})
			return
		}
		// Remote data: the request passes through the switch anyway, so
		// the lock is acquired ON PATH (NetLock's key idea) — the journey
		// costs the same full round trip the baseline pays, with the lock
		// taken at the midpoint.
		tl := c.Env.Now()
		c.Env.After(c.Net.Latency().NodeToSwitch, func() {
			c.LMLocks.AcquireK(at.lm, lock.Key(op.LockKey()), lockMode(op), func(lerr error) {
				c.charge(n, metrics.LockAcquisition, tl)
				if lerr != nil {
					// The denial still has to travel back to the caller.
					c.Env.After(c.Net.Latency().NodeToSwitch, func() {
						c.abort(n, at)
						k(lerr)
					})
					return
				}
				ta := c.Env.Now()
				c.Env.After(c.Net.Latency().NodeToSwitch, func() { // switch -> home node
					c.Env.After(c.Costs.LocalAccess, func() {
						c.applyOp(at, op.Home, op)
						c.Env.After(c.Net.Latency().NodeToNode, func() { // home node -> caller
							c.charge(n, metrics.RemoteAccess, ta)
							at.lockTxn(op.Home) // 2PC participant (holds writes)
							step()
						})
					})
				})
			})
		})
	}
	c.Env.After(c.Costs.TxnOverhead, func() {
		c.charge(n, metrics.TxnEngine, t0)
		step()
	})
}
