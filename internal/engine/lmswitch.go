package engine

import (
	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

func init() { Register(lmSwitchEngine{}) }

// lmSwitchEngine is the LM-Switch baseline (the NetLock-style system of
// Section 7.1): locks for hot tuples are acquired at the switch's central
// lock manager (half an RTT away), while the data accesses still go to the
// tuples' home nodes. Lock hold times barely shrink, which is why the
// paper finds little benefit under skew.
type lmSwitchEngine struct{}

func (lmSwitchEngine) Name() string  { return "lmswitch" }
func (lmSwitchEngine) Label() string { return "LM-Switch" }

// ForcedScheme pins 2PL: centralized lock management is inherently
// lock-based, so the configured scheme does not apply.
func (lmSwitchEngine) ForcedScheme() string { return Scheme2PL }

// Prepare installs the central lock table "in the switch" — a lock table
// reachable at half a round trip.
func (lmSwitchEngine) Prepare(ctx *Context) error {
	ctx.LMLocks = lock.NewTable(ctx.Env, ctx.Policy)
	return nil
}

func (lmSwitchEngine) Execute(ctx *Context, p *sim.Proc, n *Node, txn *workload.Txn) (Class, error) {
	return ClassCold, ctx.execLM(p, n, txn)
}

// execLM runs one transaction with central locking for hot tuples.
func (c *Context) execLM(p *sim.Proc, n *Node, txn *workload.Txn) error {
	at := c.newAttempt()
	at.lm = lock.NewTxn(at.ts)
	t0 := p.Now()
	p.Sleep(c.Costs.TxnOverhead)
	c.charge(n, metrics.TxnEngine, t0)
	for _, op := range txn.Ops {
		if c.IsHotTuple(op) {
			op := op
			var lerr error
			if op.Home == n.id {
				// Local data, central lock: the lock request costs a
				// dedicated switch round trip on top of the (otherwise
				// free) local access — the price of centralized locking.
				tl := p.Now()
				c.Net.RPCToSwitch(p, n.id, func() {
					lerr = c.LMLocks.Acquire(p, at.lm, lock.Key(op.LockKey()), lockMode(op))
				})
				c.charge(n, metrics.LockAcquisition, tl)
				if lerr != nil {
					c.abort(p, n, at)
					return lerr
				}
				ta := p.Now()
				p.Sleep(c.Costs.LocalAccess)
				c.applyOp(at, n.id, op)
				c.charge(n, metrics.LocalAccess, ta)
			} else {
				// Remote data: the request passes through the switch
				// anyway, so the lock is acquired ON PATH (NetLock's key
				// idea) — the journey costs the same full round trip the
				// baseline pays, with the lock taken at the midpoint.
				tl := p.Now()
				p.Sleep(c.Net.Latency().NodeToSwitch)
				lerr = c.LMLocks.Acquire(p, at.lm, lock.Key(op.LockKey()), lockMode(op))
				c.charge(n, metrics.LockAcquisition, tl)
				if lerr != nil {
					// The denial still has to travel back to the caller.
					p.Sleep(c.Net.Latency().NodeToSwitch)
					c.abort(p, n, at)
					return lerr
				}
				ta := p.Now()
				p.Sleep(c.Net.Latency().NodeToSwitch) // switch -> home node
				p.Sleep(c.Costs.LocalAccess)
				c.applyOp(at, op.Home, op)
				p.Sleep(c.Net.Latency().NodeToNode) // home node -> caller
				c.charge(n, metrics.RemoteAccess, ta)
				at.lockTxn(op.Home) // 2PC participant (holds writes)
			}
			continue
		}
		if err := c.execOps(p, n, at, []workload.Op{op}); err != nil {
			return err
		}
	}
	c.commitCold(p, n, at)
	lm := at.lm
	c.Net.SendToSwitch(n.id, func() { c.LMLocks.ReleaseAll(lm) })
	return nil
}
