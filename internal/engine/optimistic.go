package engine

import (
	"fmt"

	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/twopc"
	"repro/internal/txnwire"
	"repro/internal/wal"
	"repro/internal/workload"
)

// This file holds the shared transaction drivers of the validating CC
// families (OCC and MVCC). Both execute against a private view without
// locks, then validate and pin at commit, so their cold 2PC round and
// their vote-first warm path (Appendix A.4: the cold part must be certain
// to commit before the switch sub-transaction runs) are the same
// choreography; only the attempt's state machine — what a read observes,
// what validation checks, how writes install — differs per scheme. The
// voteFirst interface captures exactly that difference, so a new
// validating scheme implements an attempt type and reuses these drivers.

// voteFirst is one optimistic execution attempt as the shared drivers see
// it: private-view execution, validate-and-pin commit, asynchronous abort.
type voteFirst interface {
	// txnTS is the attempt's begin timestamp (WAL transaction id).
	txnTS() uint64
	// applyOp executes one operation against the attempt's private view
	// at node n, mirroring the Executor/switch semantics exactly.
	applyOp(n *Node, op workload.Op)
	// validateAndPin checks the attempt at node n and pins its conflict
	// set there; it must run without intervening virtual time (it models
	// a short latch-protected critical section).
	validateAndPin(n *Node) bool
	// unpin releases the attempt's pins at node n.
	unpin(n *Node)
	// install applies the buffered writes at node n and releases the pins.
	install(c *Context, n *Node)
	// readDone runs once the operation phase is over (MVCC retires its
	// snapshot so the GC watermark can advance); no virtual time.
	readDone(c *Context)
	// sealed runs once local validation passed (MVCC draws its commit
	// stamp); no virtual time.
	sealed(c *Context)
	// pinnedNodes lists the nodes where the attempt holds pins.
	pinnedNodes() []netsim.NodeID
	// clearPinned resets the pin bookkeeping after an abort broadcast.
	clearPinned()
	// coldWrites is the redo log record of the buffered writes.
	coldWrites() []wal.ColdWrite
	// remoteNodes lists the 2PC participants other than self.
	remoteNodes(self netsim.NodeID) []netsim.NodeID
	// abortErr is the scheme's abort reason (satisfies lock.ErrAbort).
	abortErr() error
}

// bufferedAttempt is the storage every validating scheme's attempt
// shares: the begin timestamp, the transaction's Executor state, the
// buffered write set with its per-node bookkeeping, and the pin trail.
// Scheme attempts embed it and add their own read-tracking state.
type bufferedAttempt struct {
	ts      uint64
	exec    workload.Executor
	overlay map[netsim.NodeID]map[store.GlobalKey]int64 // buffered writes (field-qualified)
	wrote   map[netsim.NodeID]map[lock.Key]struct{}     // rows with buffered writes
	writes  []wal.ColdWrite
	pinned  []netsim.NodeID // nodes where the attempt holds pins
	durable bool            // retain redo images for the WAL (Context.Durable)
}

func newBufferedAttempt(c *Context) bufferedAttempt {
	return bufferedAttempt{
		ts:      c.issueTS(),
		exec:    workload.NewExecutor(),
		overlay: make(map[netsim.NodeID]map[store.GlobalKey]int64, 2),
		wrote:   make(map[netsim.NodeID]map[lock.Key]struct{}, 2),
		durable: c.Durable,
	}
}

func (at *bufferedAttempt) txnTS() uint64                { return at.ts }
func (at *bufferedAttempt) executor() *workload.Executor { return &at.exec }
func (at *bufferedAttempt) pinnedNodes() []netsim.NodeID { return at.pinned }
func (at *bufferedAttempt) clearPinned()                 { at.pinned = nil }
func (at *bufferedAttempt) coldWrites() []wal.ColdWrite  { return at.writes }

// buffer stages a write in the overlay.
func (at *bufferedAttempt) buffer(n *Node, op workload.Op, v int64) {
	ov := at.overlay[n.id]
	if ov == nil {
		ov = make(map[store.GlobalKey]int64, 4)
		at.overlay[n.id] = ov
	}
	ov[op.TupleKey()] = v
	w := at.wrote[n.id]
	if w == nil {
		w = make(map[lock.Key]struct{}, 4)
		at.wrote[n.id] = w
	}
	w[lock.Key(op.LockKey())] = struct{}{}
	if at.durable {
		at.writes = append(at.writes, wal.ColdWrite{Table: op.Table, Key: op.Key, Field: op.Field, Value: v})
	}
}

// bufferedView is a private read/write view over buffered writes — the
// part of an attempt the shared op interpreter needs.
type bufferedView interface {
	// view reads a field through the attempt's overlay, falling back to
	// the scheme's read rule (store, snapshot, ...).
	view(n *Node, op workload.Op) int64
	// buffer stages a write in the overlay.
	buffer(n *Node, op workload.Op, v int64)
	// executor is the transaction's accumulator/ok-flag state.
	executor() *workload.Executor
}

// applyBufferedOp executes one operation against a buffered private view,
// mirroring the Executor/switch semantics exactly. It is the single copy
// of the op-kind interpretation the validating schemes share.
func applyBufferedOp(at bufferedView, n *Node, op workload.Op) {
	cur := at.view(n, op)
	ex := at.executor()
	switch op.Kind {
	case workload.Read:
		// value observed via view; nothing to write
	case workload.Write:
		at.buffer(n, op, op.Value)
	case workload.Add:
		at.buffer(n, op, cur+op.Value)
	case workload.CondAddGE0:
		if cur+op.Value >= 0 {
			at.buffer(n, op, cur+op.Value)
		} else {
			ex.OK = false
		}
	case workload.ReadClear:
		ex.Acc += cur
		at.buffer(n, op, 0)
	case workload.AddAcc:
		at.buffer(n, op, cur+ex.Acc+op.Value)
	case workload.AddIfOK:
		if ex.OK {
			at.buffer(n, op, cur+op.Value)
		}
	default:
		panic(fmt.Sprintf("engine: unknown op kind %d", op.Kind))
	}
}

// execOptimisticOpsK runs the operations against the attempt's private
// view, visiting remote nodes over the network for their reads (the
// buffered writes travel with the transaction and are shipped at commit).
// One operation completes before the next is dispatched, exactly like the
// retired process loop.
func (c *Context) execOptimisticOpsK(n *Node, at voteFirst, ops []workload.Op, k func()) {
	i := 0
	var t0 sim.Time
	var step func()
	step = func() {
		if i >= len(ops) {
			k()
			return
		}
		op := ops[i]
		t0 = c.Env.Now()
		if op.Home == n.id {
			c.Env.After(c.Costs.LocalAccess, func() {
				at.applyOp(n, op)
				c.charge(n, metrics.LocalAccess, t0)
				i++
				step()
			})
			return
		}
		c.Net.RPCK(n.id, op.Home, func(done func()) {
			c.Env.After(c.Costs.LocalAccess, func() {
				at.applyOp(c.Nodes[op.Home], op)
				done()
			})
		}, func() {
			c.charge(n, metrics.RemoteAccess, t0)
			i++
			step()
		})
	}
	step()
}

// execOptimisticOps is the process-form face of execOptimisticOpsK
// (white-box tests drive partial attempts with it).
func (c *Context) execOptimisticOps(p *sim.Proc, n *Node, at voteFirst, ops []workload.Op) {
	runK(p, func(fin func()) { c.execOptimisticOpsK(n, at, ops, fin) })
}

// abortOptimistic releases all pins (nothing was applied yet). Remote
// nodes are notified asynchronously, like the 2PL abort path.
func (c *Context) abortOptimistic(n *Node, at voteFirst) {
	for _, id := range at.pinnedNodes() {
		if id == n.id {
			at.unpin(c.Nodes[id])
			continue
		}
		id := id
		c.Net.Send(n.id, id, func() { at.unpin(c.Nodes[id]) })
	}
	at.clearPinned()
}

// optimisticParticipants builds the 2PC participants for the attempt's
// remote nodes: prepare = validate + pin (+ log), commit = install,
// abort = unpin.
func (c *Context) optimisticParticipants(at voteFirst, remotes []netsim.NodeID) []twopc.Participant {
	parts := make([]twopc.Participant, 0, len(remotes))
	for _, id := range remotes {
		rn := c.Nodes[id]
		parts = append(parts, twopc.Participant{
			Node: id,
			Prepare: func(sp *sim.Proc) bool {
				sp.Sleep(c.Costs.LogAppend)
				return at.validateAndPin(rn)
			},
			PrepareK: func(done func(bool)) {
				c.Env.After(c.Costs.LogAppend, func() { done(at.validateAndPin(rn)) })
			},
			Commit: func() { at.install(c, rn) },
			Abort:  func() { at.unpin(rn) },
		})
	}
	return parts
}

// execOptimisticTxnK executes an entire cold transaction under a
// validating scheme. The retired process form charged TxnEngine through a
// defer on every exit; here each exit charges explicitly before handing
// the outcome to k.
func (c *Context) execOptimisticTxnK(n *Node, txn *workload.Txn, at voteFirst, k func(error)) {
	t0 := c.Env.Now()
	c.Env.After(c.Costs.TxnOverhead, func() {
		c.charge(n, metrics.TxnEngine, t0)
		c.execOptimisticOpsK(n, at, txn.Ops, func() {
			at.readDone(c)
			t1 := c.Env.Now()
			// Local validation first: a cheap early abort.
			if !at.validateAndPin(n) {
				c.abortOptimistic(n, at)
				c.charge(n, metrics.TxnEngine, t1)
				k(at.abortErr())
				return
			}
			at.sealed(c)
			commit := func() {
				c.Env.After(c.Costs.LogAppend, func() {
					n.log.AppendCold(at.txnTS(), at.coldWrites())
					at.install(c, n)
					c.charge(n, metrics.TxnEngine, t1)
					k(nil)
				})
			}
			remotes := at.remoteNodes(n.id)
			if len(remotes) == 0 {
				commit()
				return
			}
			c.coordOf(n).CommitK(c.optimisticParticipants(at, remotes), func(ok bool) {
				if !ok {
					c.abortOptimistic(n, at)
					c.charge(n, metrics.TxnEngine, t1)
					k(at.abortErr())
					return
				}
				commit()
			})
		})
	})
}

// execOptimisticTxn is the process-form face of execOptimisticTxnK
// (white-box tests).
func (c *Context) execOptimisticTxn(p *sim.Proc, n *Node, txn *workload.Txn, at voteFirst) error {
	var err error
	runK(p, func(fin func()) {
		c.execOptimisticTxnK(n, txn, at, func(e error) {
			err = e
			fin()
		})
	})
	return err
}

// execOptimisticWarmK executes a warm transaction per Appendix A.4: the
// cold part validates first (so it cannot abort anymore), then the switch
// sub-transaction runs inside the combined Decision&Switch phase, and the
// buffered writes apply when the multicast decision arrives.
func (c *Context) execOptimisticWarmK(n *Node, txn *workload.Txn, newAt func() voteFirst, k func(error)) {
	// The warm scheme runs all cold operations strictly before the switch
	// sub-transaction, so a dependency crossing the temperature split
	// cannot be honoured — fall back to the fully cold path (see
	// execWarmK).
	if crossTemperatureDeps(txn, func(op workload.Op) bool { return c.OnSwitch(op) }) {
		c.execOptimisticTxnK(n, txn, newAt(), k)
		return
	}
	at := newAt()
	t0 := c.Env.Now()
	c.Env.After(c.Costs.TxnOverhead, func() {
		c.charge(n, metrics.TxnEngine, t0)

		var coldOps, hotOps []workload.Op
		for _, op := range txn.Ops {
			if c.OnSwitch(op) {
				hotOps = append(hotOps, op)
			} else {
				coldOps = append(coldOps, op)
			}
		}
		c.execOptimisticOpsK(n, at, coldOps, func() {
			at.readDone(c)
			if !at.validateAndPin(n) {
				c.abortOptimistic(n, at)
				k(at.abortErr())
				return
			}
			at.sealed(c)

			// Vote first: unlike the 2PL warm path, participants can refuse
			// (their validation may fail), and the switch intent must only
			// be logged — i.e. the transaction only counts as committed —
			// once the cold part is certain to commit.
			t1 := c.Env.Now()
			remotes := at.remoteNodes(n.id)
			coord := c.coordOf(n)
			parts := c.optimisticParticipants(at, remotes)
			proceed := func() {
				pkt, passes := c.compileHot(hotOps, at.txnTS())
				c.Env.After(c.Costs.LogAppend, func() {
					var rec *wal.SwitchRecord
					if c.Durable {
						rec = n.log.AppendSwitchIntent(at.txnTS(), pkt.Instrs)
					}
					coord.SwitchPhaseK(parts, func(done func()) {
						c.Sw.ExecK(pkt, func(resp *txnwire.Response, xerr error) {
							if xerr != nil {
								panic(fmt.Sprintf("engine: switch rejected warm optimistic packet: %v", xerr))
							}
							if rec != nil {
								rec.Complete(resp)
							}
							done()
						})
					}, func() {
						c.charge(n, metrics.SwitchTxn, t1)
						t2 := c.Env.Now()
						c.Env.After(c.Costs.LogAppend, func() {
							n.log.AppendCold(at.txnTS(), at.coldWrites())
							at.install(c, n)
							c.charge(n, metrics.TxnEngine, t2)
							if c.measuring {
								if passes > 1 {
									n.counters.MultiPass++
								} else {
									n.counters.SinglePass++
								}
							}
							k(nil)
						})
					})
				})
			}
			if len(remotes) == 0 {
				proceed()
				return
			}
			coord.PrepareK(parts, func(ok bool) {
				if !ok {
					coord.FinishK(parts, false, func() {
						c.abortOptimistic(n, at)
						c.charge(n, metrics.TxnEngine, t1)
						k(at.abortErr())
					})
					return
				}
				proceed()
			})
		})
	})
}
