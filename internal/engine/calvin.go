package engine

import (
	"fmt"
	"sort"

	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/wal"
	"repro/internal/workload"
)

func init() { Register(calvinEngine{}) }

// This file implements a Calvin-style deterministic execution engine
// (Thomson et al., SIGMOD'12) — the classic contrast to both the paper's
// switch offload and the validating (OCC/MVCC) families. The design point
// it opens: agree on a global transaction order FIRST, then make every
// node execute that order faithfully, and distributed commit needs no
// agreement protocol at all.
//
//   - Sequencing. Workers submit transactions to a cluster-wide sequencer
//     that collects them into epoch batches (closed when Config.BatchSize
//     transactions accumulated or the epoch timer fires) and fixes each
//     batch's order with a seeded-RNG shuffle — an arbitrary but
//     reproducible global order, the stand-in for Calvin's replicated
//     Paxos input log. Equal seeds replay the same order.
//   - Deterministic locking. A transaction's read/write set must be
//     declared before it executes (workload.Txn.LockSet); generators that
//     cannot promise exact sets (TPC-C, SetDeclarer) get a reconnaissance
//     pass first — Calvin's optimistic lock location prediction. All locks
//     are then acquired in ascending global key order with waiting grants
//     (lock.Table.AcquireWait): ordered acquisition keeps every waits-for
//     chain acyclic, so there is no deadlock detection, no waits-for
//     graph, and — unlike NO_WAIT/WAIT_DIE — no aborts, ever.
//   - Single-round commit. Execution applies in place (nothing can force
//     a rollback once the locks are held), and commit is one log append
//     plus one-way apply/release messages to the remote participants.
//     Classic 2PC's prepare/vote round exists to discover whether every
//     participant CAN commit; determinism replaces that agreement — every
//     node independently reaches the same decision — so the vote round
//     (and its blocking window) disappears.
//
// The engine pins 2PL the way the other inherently lock-based baselines
// do (SchemeForcer): deterministic locking is defined in terms of lock
// hold order, so the configured validating schemes do not apply.

// calvinDefaultBatch is the sequencer's epoch batch bound when
// core.Config.BatchSize is zero.
const calvinDefaultBatch = 16

// calvinEpoch bounds how long the sequencer holds an underfull batch: an
// epoch timer dispatches whatever is pending, so a closed batch never
// waits on future arrivals (Calvin's 10 ms epochs, scaled to the
// simulation's µs latencies).
const calvinEpoch = 10 * sim.Microsecond

type calvinEngine struct{}

func (calvinEngine) Name() string  { return "calvin" }
func (calvinEngine) Label() string { return "Calvin" }

// ForcedScheme pins 2PL: deterministic execution is defined over lock
// acquisition order, so the configured validating schemes do not apply.
func (calvinEngine) ForcedScheme() string { return Scheme2PL }

// Prepare installs the cluster-wide sequencer. Node 0 hosts it — the
// stand-in for Calvin's replicated sequencing layer; submissions and
// dispatch grants pay the fabric latency to and from that node.
func (calvinEngine) Prepare(ctx *Context) error {
	batch := ctx.BatchSize
	if batch < 0 {
		return fmt.Errorf("calvin: negative batch size %d", batch)
	}
	if batch == 0 {
		batch = calvinDefaultBatch
	}
	rng := ctx.Env.Rand().Fork(0xCA1711)
	ctx.EngineData = &calvinSequencer{
		node:  0,
		batch: batch,
		rng:   rng,
		rng0:  *rng, // standby baseline: the freshly forked state, pre-epoch
	}
	return nil
}

func (calvinEngine) Execute(ctx *Context, n *Node, txn *workload.Txn, k func(Class, error)) {
	ctx.execCalvinK(n, txn, func() { k(ClassCold, nil) })
}

// calvinSequencerOf returns the cluster's sequencer, failing fast when the
// cluster was prepared for another engine (an assembly bug).
func calvinSequencerOf(c *Context) *calvinSequencer {
	s, ok := c.EngineData.(*calvinSequencer)
	if !ok {
		panic("engine: calvin execution on a cluster prepared for another engine")
	}
	return s
}

// calvinSubmission is one transaction parked in the sequencer: the signal
// that releases its worker and the node the grant travels back to.
type calvinSubmission struct {
	turn *sim.Signal
	node netsim.NodeID
}

// calvinSequencer is the cluster-wide epoch sequencer. All state mutation
// happens in scheduler-callback context (one event at a time), so it needs
// no locks and stays deterministic for a seed.
type calvinSequencer struct {
	node    netsim.NodeID // hosting node; submissions travel here
	batch   int           // dispatch when this many transactions pend
	rng     *sim.RNG      // per-batch order; forked from the cluster seed
	pending []calvinSubmission
	gen     uint64 // dispatch generation; invalidates the epoch's timer

	// rng0 is the shuffle RNG's state as forked at Prepare, before any
	// epoch was dispatched. A standby sequencer reconstructs the live
	// shuffle state by replaying Perm draws from this baseline — Calvin's
	// replicated input log reduced to its essence: the batch sizes.
	rng0 sim.RNG
	// epochs records the size of every dispatched batch when the cluster
	// is durable; it is the epoch log the standby replays at failover.
	epochs []int
}

// enqueue runs at the sequencer node (inside a delivery callback): park
// the submission and dispatch when the batch bound is reached. Each
// epoch's FIRST submission arms that epoch's timer, carrying the current
// dispatch generation — so a batch that fills and dispatches by count
// invalidates its timer, and the next epoch starts its full calvinEpoch
// window from its own first arrival (a leftover timer must not flush a
// successor batch early).
func (s *calvinSequencer) enqueue(c *Context, sub calvinSubmission) {
	s.pending = append(s.pending, sub)
	if len(s.pending) >= s.batch {
		s.dispatch(c)
		return
	}
	if len(s.pending) == 1 {
		gen := s.gen
		c.Env.After(calvinEpoch, func() {
			if s.gen == gen && len(s.pending) > 0 {
				s.dispatch(c)
			}
		})
	}
}

// dispatch closes the current epoch: fix the batch's global order with a
// seeded shuffle and release every worker in that order. Grants are
// delivered like any other message, so workers co-located with the
// sequencer learn their turn a fabric latency earlier than remote ones —
// the epoch order decides start order among same-node submitters, while
// correctness never depends on start order at all: isolation comes from
// the ordered lock acquisition, and the seeded shuffle plus deterministic
// delivery make the whole schedule reproducible per seed.
func (s *calvinSequencer) dispatch(c *Context) {
	batch := s.pending
	s.pending = nil
	s.gen++
	if c.Durable {
		s.epochs = append(s.epochs, len(batch))
	}
	for _, i := range s.rng.Perm(len(batch)) {
		sub := batch[i]
		if sub.node == s.node {
			sub.turn.Fire(nil)
			continue
		}
		c.Net.Send(s.node, sub.node, func() { sub.turn.Fire(nil) })
	}
}

// execCalvinK runs one transaction to commit as a continuation chain. It
// never reports an abort: conflicts resolve by waiting in pre-declared
// lock order, and the commit round has no vote to lose.
func (c *Context) execCalvinK(n *Node, txn *workload.Txn, k func()) {
	seq := calvinSequencerOf(c)
	t0 := c.Env.Now()
	c.Env.After(c.Costs.TxnOverhead, func() {
		c.charge(n, metrics.TxnEngine, t0)

		refs := txn.LockSet()
		sequenced := func() {
			// Sequencing: submit, then wait until the epoch batch this
			// transaction lands in is ordered and our turn is granted. A
			// co-located sequencer may grant the turn inline, in which
			// case Subscribe continues immediately.
			t1 := c.Env.Now()
			turn := c.Env.NewSignal()
			sub := calvinSubmission{turn: turn, node: n.id}
			if n.id == seq.node {
				seq.enqueue(c, sub)
			} else {
				c.Net.Send(n.id, seq.node, func() { seq.enqueue(c, sub) })
			}
			turn.Subscribe(func() {
				c.charge(n, metrics.TxnEngine, t1)
				c.calvinLockedExecK(n, txn, refs, k)
			})
		}
		if d, ok := c.Gen.(workload.SetDeclarer); !ok || !d.DeclaresKeySets() {
			c.calvinReconK(n, refs, sequenced)
		} else {
			sequenced()
		}
	})
}

// calvinLockedExecK is the post-sequencing half of a Calvin transaction:
// deterministic locking, in-place execution, single-round commit.
func (c *Context) calvinLockedExecK(n *Node, txn *workload.Txn, refs []workload.LockRef, k func()) {
	// Deterministic locking: the whole declared set, ascending global key
	// order, waiting grants. Consecutive same-node runs share one round
	// trip; acquisition within the trip stays in key order, so the global
	// order is preserved exactly.
	ts := c.issueTS()
	locks := make(map[netsim.NodeID]*lock.Txn, 2)
	lockTxn := func(id netsim.NodeID) *lock.Txn {
		t, ok := locks[id]
		if !ok {
			t = lock.NewTxn(ts)
			locks[id] = t
		}
		return t
	}

	// Execution: every lock is held, so operations apply in place with no
	// undo images — nothing can force a rollback anymore.
	execPhase := func() {
		exec := workload.NewExecutor()
		var writes []wal.ColdWrite
		apply := func(id netsim.NodeID, op workload.Op) {
			tb := c.Nodes[id].store.Table(op.Table)
			exec.Apply(tb, op)
			if op.Kind.IsWrite() && c.Durable {
				writes = append(writes, wal.ColdWrite{
					Table: op.Table, Key: op.Key, Field: op.Field,
					Value: tb.Get(op.Key, op.Field),
				})
			}
		}
		commit := func() {
			// Single-round commit: no prepare, no votes — every
			// participant is certain to commit, so the coordinator logs
			// and releases locally and the remote participants release on
			// a one-way message.
			t3 := c.Env.Now()
			c.Env.After(c.Costs.LogAppend, func() {
				n.log.AppendCold(ts, writes)
				held := make([]netsim.NodeID, 0, len(locks))
				for id := range locks {
					held = append(held, id)
				}
				// Release in node order: map iteration order would reorder
				// the release messages run to run and break seeded
				// reproducibility.
				sort.Slice(held, func(i, j int) bool { return held[i] < held[j] })
				for _, id := range held {
					if id == n.id {
						n.locks.ReleaseAllOrdered(locks[id])
						continue
					}
					id, lt := id, locks[id]
					c.Net.Send(n.id, id, func() { c.Nodes[id].locks.ReleaseAllOrdered(lt) })
				}
				c.charge(n, metrics.TxnEngine, t3)
				k()
			})
		}
		oi := 0
		var t2 sim.Time
		var opStep func()
		opStep = func() {
			if oi >= len(txn.Ops) {
				commit()
				return
			}
			op := txn.Ops[oi]
			t2 = c.Env.Now()
			if op.Home == n.id {
				c.Env.After(c.Costs.LocalAccess, func() {
					apply(n.id, op)
					c.charge(n, metrics.LocalAccess, t2)
					oi++
					opStep()
				})
				return
			}
			c.Net.RPCK(n.id, op.Home, func(done func()) {
				c.Env.After(c.Costs.LocalAccess, func() {
					apply(op.Home, op)
					done()
				})
			}, func() {
				c.charge(n, metrics.RemoteAccess, t2)
				oi++
				opStep()
			})
		}
		opStep()
	}

	var lockRuns func(i int)
	lockRuns = func(i int) {
		if i >= len(refs) {
			execPhase()
			return
		}
		home := refs[i].Home
		j := i
		for j < len(refs) && refs[j].Home == home {
			j++
		}
		run := refs[i:j]
		tl := c.Env.Now()
		if home == n.id {
			ri := 0
			var next func()
			next = func() {
				if ri >= len(run) {
					c.charge(n, metrics.LockAcquisition, tl)
					lockRuns(j)
					return
				}
				ref := run[ri]
				ri++
				c.Env.After(c.Costs.LockOp, func() {
					n.locks.AcquireWaitK(lockTxn(home), lock.Key(ref.Key), calvinMode(ref), next)
				})
			}
			next()
			return
		}
		c.Net.RPCK(n.id, home, func(done func()) {
			rn := c.Nodes[home]
			ri := 0
			var next func()
			next = func() {
				if ri >= len(run) {
					done()
					return
				}
				ref := run[ri]
				ri++
				c.Env.After(c.Costs.LockOp, func() {
					rn.locks.AcquireWaitK(lockTxn(home), lock.Key(ref.Key), calvinMode(ref), next)
				})
			}
			next()
		}, func() {
			c.charge(n, metrics.RemoteAccess, tl)
			lockRuns(j)
		})
	}
	lockRuns(0)
}

// FailoverCalvinSequencer replaces the crashed sequencer with a standby
// and returns the number of epochs the standby replayed. The standby
// starts from the shuffle RNG's forked baseline state and replays one
// Perm draw per logged epoch — reconstructing the exact generator state
// the live sequencer died with, which it verifies against the live state
// (the simulation keeps it around precisely to make this check possible;
// a real standby would have nothing to compare against and simply trust
// the log). The sequencer struct is adopted in place, the simulation's
// "virtual IP takeover": parked submissions survive, and an in-flight
// epoch timer's generation guard remains valid. The cluster must be
// durable — without the epoch log there is nothing to replay.
func FailoverCalvinSequencer(c *Context) int {
	if !c.Durable {
		panic("engine: calvin sequencer failover without Durable: no epoch log to replay")
	}
	s := calvinSequencerOf(c)
	standby := s.rng0
	for _, sz := range s.epochs {
		standby.Perm(sz)
	}
	if standby != *s.rng {
		panic("engine: calvin standby diverges from live sequencer after epoch replay")
	}
	if uint64(len(s.epochs)) != s.gen {
		panic(fmt.Sprintf("engine: calvin epoch log has %d entries but %d epochs dispatched", len(s.epochs), s.gen))
	}
	// Adoption: install the replayed state (bit-identical to the live one,
	// as just verified) and continue sequencing from it.
	*s.rng = standby
	return len(s.epochs)
}

// calvinMode maps a declared lock reference to its table mode.
func calvinMode(ref workload.LockRef) lock.Mode {
	if ref.Write {
		return lock.Exclusive
	}
	return lock.Shared
}

// calvinReconK models the reconnaissance pass for workloads whose
// read/write sets depend on data (TPC-C): a lock-free read-only pass over
// the transaction's partitions discovers the set before sequencing. The
// simulation's keys are static, so the pass always confirms — what it
// charges is the cost: one local access per row plus one round trip to
// every remote partition, visited in node order.
func (c *Context) calvinReconK(n *Node, refs []workload.LockRef, k func()) {
	perNode := make(map[netsim.NodeID]int, 2)
	for _, ref := range refs {
		perNode[ref.Home]++
	}
	remotes := make([]netsim.NodeID, 0, len(perNode))
	for id := range perNode {
		if id != n.id {
			remotes = append(remotes, id)
		}
	}
	sort.Slice(remotes, func(i, j int) bool { return remotes[i] < remotes[j] })
	i := 0
	var t0 sim.Time
	var step func()
	step = func() {
		if i >= len(remotes) {
			k()
			return
		}
		id := remotes[i]
		rows := perNode[id]
		t0 = c.Env.Now()
		c.Net.RPCK(n.id, id, func(done func()) {
			c.Env.After(c.Costs.LocalAccess*sim.Time(rows), done)
		}, func() {
			c.charge(n, metrics.RemoteAccess, t0)
			i++
			step()
		})
	}
	if local := perNode[n.id]; local > 0 {
		lt := c.Env.Now()
		c.Env.After(c.Costs.LocalAccess*sim.Time(local), func() {
			c.charge(n, metrics.LocalAccess, lt)
			step()
		})
		return
	}
	step()
}
