package engine

import (
	"repro/internal/sim"
	"repro/internal/workload"
)

// Serving-mode submission: Submit injects one externally arrived
// transaction (a TCP request, not a closed-loop worker's draw) into the
// engine and fires a completion callback once it commits. The retry
// discipline — randomized backoff growing with consecutive aborts,
// NO_WAIT damping capped at 8x — is the workerSM's, so a served
// transaction behaves exactly like a simulated one; the only difference
// is what happens after commit: the worker chains to its next draw, the
// submission reports back to the connection that carried it.

// submitSM drives one submitted transaction to commit. Pooled on the
// Context (freeSubmits): the serving steady state recycles machines
// instead of allocating one per request.
type submitSM struct {
	c        *Context
	eng      Engine
	n        *Node
	rng      *sim.RNG
	txn      *workload.Txn
	start    sim.Time
	attempts int // backoff damping, capped at 8
	retries  int // total aborted attempts, reported to k
	k        func(Class, int)

	retryFn func()
	doneFn  func(Class, error)
}

// Submit starts executing txn on node n and calls k(class, retries) when
// it commits. Must be called from the environment's owning goroutine; the
// callback fires during a later Step. rng seeds the retry backoff draws —
// callers keep one per submission stream for determinism.
func (c *Context) Submit(eng Engine, n *Node, txn *workload.Txn, rng *sim.RNG, k func(cls Class, retries int)) {
	var sm *submitSM
	if len(c.freeSubmits) > 0 {
		sm = c.freeSubmits[len(c.freeSubmits)-1]
		c.freeSubmits = c.freeSubmits[:len(c.freeSubmits)-1]
	} else {
		sm = &submitSM{}
		sm.retryFn = sm.retry
		sm.doneFn = sm.done
	}
	sm.c, sm.eng, sm.n, sm.rng, sm.txn, sm.k = c, eng, n, rng, txn, k
	sm.start = c.Env.Now()
	sm.attempts, sm.retries = 0, 0
	c.submitsInflight++
	if ad := c.ad; ad != nil {
		ad.record(n, txn)
		ad.exec(eng, n, txn, sm.doneFn)
		return
	}
	eng.Execute(c, n, txn, sm.doneFn)
}

// classAdapter bridges a scheme's k(error) continuation to the engine
// API's k(Class, error) with a fixed class. Pooled on the Context so
// engines whose Execute is a straight scheme call (noswitch cold path)
// stay allocation-free per attempt.
type classAdapter struct {
	c   *Context
	cls Class
	k   func(Class, error)
	fn  func(error)
}

// wrapClass returns a pooled k(error) continuation that forwards to
// k(cls, error). The adapter recycles itself when it fires, so each
// wrapped continuation must be invoked exactly once.
func (c *Context) wrapClass(cls Class, k func(Class, error)) func(error) {
	var a *classAdapter
	if n := len(c.freeClassAdapters); n > 0 {
		a = c.freeClassAdapters[n-1]
		c.freeClassAdapters = c.freeClassAdapters[:n-1]
	} else {
		a = &classAdapter{c: c}
		a.fn = a.call
	}
	a.cls, a.k = cls, k
	return a.fn
}

func (a *classAdapter) call(err error) {
	c, k, cls := a.c, a.k, a.cls
	a.k = nil
	c.freeClassAdapters = append(c.freeClassAdapters, a)
	k(cls, err)
}

// SubmitsInflight returns the number of submitted transactions that have
// not yet committed.
func (c *Context) SubmitsInflight() int { return c.submitsInflight }

// SubmitsDone returns the number of submitted transactions committed.
func (c *Context) SubmitsDone() int64 { return c.submitsDone }

// retry re-executes after a backoff.
func (sm *submitSM) retry() {
	if ad := sm.c.ad; ad != nil {
		// See workerSM.retry: retries re-record so contended tuples gain
		// detection weight proportional to the aborts they cause.
		ad.record(sm.n, sm.txn)
		ad.exec(sm.eng, sm.n, sm.txn, sm.doneFn)
		return
	}
	sm.eng.Execute(sm.c, sm.n, sm.txn, sm.doneFn)
}

// done receives one attempt's outcome: workerSM.done's retry and
// accounting discipline, then completion instead of chaining.
func (sm *submitSM) done(cls Class, err error) {
	c := sm.c
	if err != nil {
		if c.measuring {
			sm.n.counters.Aborts++
		}
		sm.retries++
		if sm.attempts < 8 {
			sm.attempts++
		}
		backoff := c.Costs.AbortBackoff/2 + sim.Time(sm.rng.Int63n(int64(c.Costs.AbortBackoff)))
		c.Env.After(backoff*sim.Time(sm.attempts), sm.retryFn)
		return
	}
	c.accountCommit(sm.n, cls, sm.txn, sm.start)
	c.submitsInflight--
	c.submitsDone++
	k, retries := sm.k, sm.retries
	sm.txn, sm.k, sm.rng = nil, nil, nil
	c.freeSubmits = append(c.freeSubmits, sm)
	k(cls, retries)
}
