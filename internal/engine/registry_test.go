package engine

import (
	"strings"
	"testing"
)

// The strategies every build of the reproduction registers.
var wantEngines = []string{"chiller", "lmswitch", "noswitch", "occ", "p4db"}

func TestNamesListsAllRegisteredEngines(t *testing.T) {
	got := Names()
	if len(got) < len(wantEngines) {
		t.Fatalf("Names() = %v, want at least %v", got, wantEngines)
	}
	have := make(map[string]bool, len(got))
	for _, name := range got {
		have[name] = true
	}
	for _, name := range wantEngines {
		if !have[name] {
			t.Fatalf("engine %q not registered; have %v", name, got)
		}
	}
}

func TestEveryRegisteredEngineResolves(t *testing.T) {
	for _, name := range Names() {
		e, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if e.Name() != name {
			t.Fatalf("Lookup(%q) returned engine named %q", name, e.Name())
		}
		if e.Label() == "" {
			t.Fatalf("engine %q has no display label", name)
		}
	}
}

func TestUnknownNameLookupErrors(t *testing.T) {
	_, err := Lookup("no-such-engine")
	if err == nil {
		t.Fatal("Lookup of unknown engine succeeded")
	}
	// The error must help the caller: name it and list what exists.
	if !strings.Contains(err.Error(), "no-such-engine") || !strings.Contains(err.Error(), "p4db") {
		t.Fatalf("unhelpful lookup error: %v", err)
	}
}

func TestRegisterRejectsDuplicatesAndEmptyNames(t *testing.T) {
	mustPanic := func(what string, e Engine) {
		defer func() {
			if recover() == nil {
				t.Fatalf("Register accepted %s", what)
			}
		}()
		Register(e)
	}
	mustPanic("a duplicate name", p4dbEngine{})
	mustPanic("an empty name", fakeEngine{})
}

// fakeEngine is a Register-validation stand-in with an empty name.
type fakeEngine struct{ Engine }

func (fakeEngine) Name() string { return "" }

func TestClassStrings(t *testing.T) {
	for cls, want := range map[Class]string{ClassCold: "cold", ClassHot: "hot", ClassWarm: "warm"} {
		if cls.String() != want {
			t.Fatalf("%d.String() = %q, want %q", cls, cls.String(), want)
		}
	}
}

func TestCCSchemeStrings(t *testing.T) {
	if CC2PL.String() != "2PL" || CCOCC.String() != "OCC" {
		t.Fatal("scheme names wrong")
	}
}
