package engine

import (
	"strings"
	"testing"
)

// The strategies every build of the reproduction registers.
var wantEngines = []string{"calvin", "chiller", "lmswitch", "noswitch", "occ", "p4db"}

func TestNamesListsAllRegisteredEngines(t *testing.T) {
	got := Names()
	if len(got) < len(wantEngines) {
		t.Fatalf("Names() = %v, want at least %v", got, wantEngines)
	}
	have := make(map[string]bool, len(got))
	for _, name := range got {
		have[name] = true
	}
	for _, name := range wantEngines {
		if !have[name] {
			t.Fatalf("engine %q not registered; have %v", name, got)
		}
	}
}

func TestEveryRegisteredEngineResolves(t *testing.T) {
	for _, name := range Names() {
		e, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if e.Name() != name {
			t.Fatalf("Lookup(%q) returned engine named %q", name, e.Name())
		}
		if e.Label() == "" {
			t.Fatalf("engine %q has no display label", name)
		}
	}
}

func TestUnknownNameLookupErrors(t *testing.T) {
	_, err := Lookup("no-such-engine")
	if err == nil {
		t.Fatal("Lookup of unknown engine succeeded")
	}
	// The error must help the caller: name it and list what exists.
	if !strings.Contains(err.Error(), "no-such-engine") || !strings.Contains(err.Error(), "p4db") {
		t.Fatalf("unhelpful lookup error: %v", err)
	}
}

func TestRegisterRejectsDuplicatesAndEmptyNames(t *testing.T) {
	mustPanic := func(what string, e Engine) {
		defer func() {
			if recover() == nil {
				t.Fatalf("Register accepted %s", what)
			}
		}()
		Register(e)
	}
	mustPanic("a duplicate name", p4dbEngine{})
	mustPanic("an empty name", fakeEngine{})
}

// fakeEngine is a Register-validation stand-in with an empty name.
type fakeEngine struct{ Engine }

func (fakeEngine) Name() string { return "" }

func TestClassStrings(t *testing.T) {
	for cls, want := range map[Class]string{ClassCold: "cold", ClassHot: "hot", ClassWarm: "warm"} {
		if cls.String() != want {
			t.Fatalf("%d.String() = %q, want %q", cls, cls.String(), want)
		}
	}
}

// The CC schemes every build of the reproduction registers.
var wantSchemes = []string{Scheme2PL, SchemeMVCC, SchemeOCC}

func TestSchemeNamesListsAllRegisteredSchemes(t *testing.T) {
	got := SchemeNames()
	have := make(map[string]bool, len(got))
	for _, name := range got {
		have[name] = true
	}
	for _, name := range wantSchemes {
		if !have[name] {
			t.Fatalf("scheme %q not registered; have %v", name, got)
		}
	}
}

func TestEveryRegisteredSchemeResolves(t *testing.T) {
	for _, name := range SchemeNames() {
		s, err := LookupScheme(name)
		if err != nil {
			t.Fatalf("LookupScheme(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Fatalf("LookupScheme(%q) returned scheme named %q", name, s.Name())
		}
		if s.Label() == "" {
			t.Fatalf("scheme %q has no display label", name)
		}
	}
}

func TestUnknownSchemeLookupIsHardError(t *testing.T) {
	_, err := LookupScheme("no-such-scheme")
	if err == nil {
		t.Fatal("LookupScheme of unknown scheme succeeded")
	}
	// The error must help the caller: name it and list what exists, the
	// same contract engine.Lookup has.
	for _, want := range append([]string{"no-such-scheme"}, wantSchemes...) {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("lookup error %v does not mention %q", err, want)
		}
	}
}

func TestResolveSchemeDefaultsAndForces(t *testing.T) {
	cases := []struct {
		engine     string
		configured string
		want       string
	}{
		{"p4db", "", Scheme2PL},         // empty selects the paper's main setup
		{"noswitch", "mvcc", "mvcc"},    // scheme-aware engines follow the config
		{"occ", "", SchemeOCC},          // the ablation engine pins OCC...
		{"occ", "2pl", SchemeOCC},       // ...regardless of the configuration
		{"lmswitch", "mvcc", Scheme2PL}, // lock-based baselines pin 2PL
		{"chiller", "occ", Scheme2PL},
	}
	for _, tc := range cases {
		e, err := Lookup(tc.engine)
		if err != nil {
			t.Fatal(err)
		}
		s, err := ResolveScheme(e, tc.configured)
		if err != nil {
			t.Fatalf("ResolveScheme(%s, %q): %v", tc.engine, tc.configured, err)
		}
		if s.Name() != tc.want {
			t.Fatalf("ResolveScheme(%s, %q) = %q, want %q", tc.engine, tc.configured, s.Name(), tc.want)
		}
	}
	for _, eng := range []string{"p4db", "lmswitch", "occ"} {
		e, _ := Lookup(eng)
		if _, err := ResolveScheme(e, "bogus"); err == nil {
			t.Fatalf("ResolveScheme(%s, bogus) accepted an unknown scheme name", eng)
		}
	}
}

func TestRegisterSchemeRejectsDuplicatesAndEmptyNames(t *testing.T) {
	mustPanic := func(what string, s Scheme) {
		defer func() {
			if recover() == nil {
				t.Fatalf("RegisterScheme accepted %s", what)
			}
		}()
		RegisterScheme(s)
	}
	mustPanic("a duplicate name", twoPLScheme{})
	mustPanic("an empty name", fakeScheme{})
}

// fakeScheme is a RegisterScheme-validation stand-in with an empty name.
type fakeScheme struct{ Scheme }

func (fakeScheme) Name() string { return "" }
