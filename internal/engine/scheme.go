package engine

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/workload"
)

// This file holds the pluggable concurrency-control layer of the host
// DBMS. The paper's Appendix A.4 treats the CC family as a swappable
// dimension orthogonal to the execution strategy: the same switch offload
// runs over pessimistic 2PL or optimistic validation. Schemes mirror the
// Engine registry — name-keyed, selected by string through core.Config —
// so every engine x scheme pairing that makes semantic sense is runnable
// head-to-head without touching either layer.
//
// An Engine decides WHERE a transaction executes (switch, nodes, central
// lock manager); its Scheme decides HOW the node-resident part isolates
// itself (locks, backward validation, snapshots). Engines that offload to
// the switch route their warm and cold paths through the configured
// Scheme; inherently lock-based baselines pin theirs via SchemeForcer.

// Registered scheme names.
const (
	// Scheme2PL is pessimistic two-phase locking (the paper's main setup,
	// with the NO_WAIT / WAIT_DIE policies).
	Scheme2PL = "2pl"
	// SchemeOCC is backward-validation optimistic concurrency control
	// (Appendix A.4).
	SchemeOCC = "occ"
	// SchemeMVCC is multi-version concurrency control with snapshot reads
	// and first-committer-wins validation (the third family).
	SchemeMVCC = "mvcc"
)

// NodeState is one node's scheme-private concurrency-control bookkeeping
// (OCC row versions and pins, MVCC version chains). The shared lock table
// stays on the Node itself: it belongs to the host DBMS and is also used
// by lock-based engines independently of the configured scheme.
type NodeState interface{}

// Scheme is one host-DBMS concurrency-control family. Like Engines,
// implementations are stateless singletons: per-cluster state lives on the
// Context (installed by Init) and per-node state on the Nodes (created by
// NewNodeState).
type Scheme interface {
	// Name is the registry key, e.g. "2pl" or "mvcc".
	Name() string
	// Label is the display name, e.g. "2PL" or "MVCC".
	Label() string
	// Init installs cluster-wide scheme state on the Context (e.g. the
	// MVCC snapshot tracker). It runs once at cluster build, after the
	// nodes exist and before the engine's Prepare.
	Init(c *Context)
	// NewNodeState builds one node's CC bookkeeping; nil when the scheme
	// keeps no per-node state beyond the shared lock table.
	NewNodeState() NodeState
	// ExecCold runs one attempt of an entire transaction on the nodes,
	// eventually calling k exactly once with nil on commit or an abort
	// error after rolling back. Like Engine.Execute, it is a callback
	// state machine: waits inside the attempt are resumption callbacks,
	// never parked goroutines.
	ExecCold(c *Context, n *Node, txn *workload.Txn, k func(error))
	// ExecWarm runs one attempt of a warm transaction: the cold part
	// executes under the scheme and, once it can no longer abort, the
	// switch sub-transaction runs inside the combined Decision&Switch
	// phase (Figure 10 / Appendix A.4). k receives the attempt outcome.
	ExecWarm(c *Context, n *Node, txn *workload.Txn, k func(error))
}

// SchemeForcer is implemented by engines that hardwire their CC scheme
// regardless of the configured one: the lock-based baselines (LM-Switch,
// Chiller) pin 2PL, and the "occ" ablation engine pins OCC. The resolved
// scheme — not the configured one — is what runs and what results report.
type SchemeForcer interface {
	ForcedScheme() string
}

var (
	schemeMu       sync.RWMutex
	schemeRegistry = make(map[string]Scheme)
)

// RegisterScheme adds a scheme under its Name. It panics on an empty or
// duplicate name — registration happens in init functions, where a
// conflict is a programming error.
func RegisterScheme(s Scheme) {
	schemeMu.Lock()
	defer schemeMu.Unlock()
	name := s.Name()
	if name == "" {
		panic("engine: RegisterScheme with empty name")
	}
	if _, dup := schemeRegistry[name]; dup {
		panic(fmt.Sprintf("engine: duplicate RegisterScheme(%q)", name))
	}
	schemeRegistry[name] = s
}

// LookupScheme resolves a scheme by registry name. Unknown names are a
// hard error naming the registered schemes — there is no silent default.
func LookupScheme(name string) (Scheme, error) {
	schemeMu.RLock()
	defer schemeMu.RUnlock()
	s, ok := schemeRegistry[name]
	if !ok {
		return nil, fmt.Errorf("engine: unknown CC scheme %q (available: %v)", name, schemeNamesLocked())
	}
	return s, nil
}

// SchemeNames lists the registered scheme names, sorted.
func SchemeNames() []string {
	schemeMu.RLock()
	defer schemeMu.RUnlock()
	return schemeNamesLocked()
}

func schemeNamesLocked() []string {
	out := make([]string, 0, len(schemeRegistry))
	for name := range schemeRegistry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ResolveScheme returns the effective CC scheme for engine e under the
// configured scheme name; the empty name selects 2PL (the paper's main
// setup). Engines implementing SchemeForcer override the configuration —
// but a configured name must be registered even then, so a typo is a hard
// error regardless of which engine it is paired with.
func ResolveScheme(e Engine, name string) (Scheme, error) {
	if name == "" {
		name = Scheme2PL
	} else if _, err := LookupScheme(name); err != nil {
		return nil, err
	}
	if f, ok := e.(SchemeForcer); ok {
		name = f.ForcedScheme()
	}
	return LookupScheme(name)
}

func init() { RegisterScheme(twoPLScheme{}) }

// twoPLScheme is pessimistic two-phase locking over the per-node lock
// tables, with 2PC for distributed transactions. The execution bodies
// (execCold / execWarm and the attempt machinery) live in attempt.go and
// p4db.go; this type is the registry face.
type twoPLScheme struct{}

func (twoPLScheme) Name() string            { return Scheme2PL }
func (twoPLScheme) Label() string           { return "2PL" }
func (twoPLScheme) Init(*Context)           {}
func (twoPLScheme) NewNodeState() NodeState { return nil }

func (twoPLScheme) ExecCold(c *Context, n *Node, txn *workload.Txn, k func(error)) {
	c.execColdK(n, txn, k)
}

func (twoPLScheme) ExecWarm(c *Context, n *Node, txn *workload.Txn, k func(error)) {
	c.execWarmK(n, txn, k)
}
