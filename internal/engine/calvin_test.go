package engine_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// calvinConfig returns a small contended cluster configuration for the
// deterministic engine.
func calvinConfig(nodes, workers int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Engine = "calvin"
	cfg.Nodes = nodes
	cfg.WorkersPerNode = workers
	cfg.SampleTxns = 4000
	return cfg
}

// runCalvin builds the cluster, runs a short measured window and returns
// the result.
func runCalvin(cfg core.Config, gen workload.Generator) *core.Result {
	c := core.NewCluster(cfg, gen)
	return c.Run(100*sim.Microsecond, 400*sim.Microsecond)
}

// TestCalvinNeverAborts drives a deliberately contended closed-loop run
// (few hot accounts, many workers) and asserts the deterministic
// contract: conflicts resolve by waiting in pre-declared lock order, so
// the run commits work without a single abort — where the same workload
// under NO_WAIT 2PL aborts constantly.
func TestCalvinNeverAborts(t *testing.T) {
	sbc := workload.DefaultSmallBank(2, 2) // 2 hot accounts per node: heavy conflicts
	sbc.DistPct = 50
	res := runCalvin(calvinConfig(2, 8), workload.NewSmallBank(sbc))
	if res.Counters.Committed() == 0 {
		t.Fatal("contended calvin run committed nothing")
	}
	if res.Counters.Aborts != 0 {
		t.Fatalf("deterministic execution aborted %d times, want 0", res.Counters.Aborts)
	}
	if res.Scheme != "2pl" {
		t.Fatalf("calvin ran scheme %q, want pinned 2pl", res.Scheme)
	}

	// The baseline under the same load must abort (sanity that the
	// workload actually conflicts — otherwise the zero above proves
	// nothing).
	base := calvinConfig(2, 8)
	base.Engine = "noswitch"
	bres := runCalvin(base, workload.NewSmallBank(sbc))
	if bres.Counters.Aborts == 0 {
		t.Fatal("NO_WAIT baseline did not abort on the contended workload; test load too weak")
	}
}

// TestCalvinReconPass runs TPC-C — the generator that cannot pre-declare
// key sets — through the engine: the reconnaissance fallback must carry
// every transaction to a commit, still without aborts.
func TestCalvinReconPass(t *testing.T) {
	res := runCalvin(calvinConfig(2, 4), workload.NewTPCC(workload.DefaultTPCC(2, 2)))
	if res.Counters.Committed() == 0 {
		t.Fatal("calvin TPC-C run committed nothing")
	}
	if res.Counters.Aborts != 0 {
		t.Fatalf("calvin TPC-C aborted %d times, want 0", res.Counters.Aborts)
	}
}

// TestCalvinBatchSizeKnob exercises the Config.BatchSize threading: the
// sequencer must run at any positive bound (1 = dispatch immediately,
// large = epoch-timer flushes), and all bounds commit abort-free. The
// bound changes batching latency, so results must differ from the default
// — proof the knob actually reaches the sequencer.
func TestCalvinBatchSizeKnob(t *testing.T) {
	sbc := workload.DefaultSmallBank(2, 5)
	committed := make(map[int]int64)
	for _, batch := range []int{0, 1, 4, 1024} {
		cfg := calvinConfig(2, 6)
		cfg.BatchSize = batch
		res := runCalvin(cfg, workload.NewSmallBank(sbc))
		if res.Counters.Committed() == 0 {
			t.Fatalf("batch=%d committed nothing", batch)
		}
		if res.Counters.Aborts != 0 {
			t.Fatalf("batch=%d aborted %d times, want 0", batch, res.Counters.Aborts)
		}
		committed[batch] = res.Counters.Committed()
	}
	// batch=1024 never fills with 12 workers, so every epoch waits for the
	// timer — measurably different from batch=1's immediate dispatch.
	if committed[1] == committed[1024] {
		t.Fatalf("batch=1 and batch=1024 committed identically (%d); knob not threaded?", committed[1])
	}
}

// TestCalvinNegativeBatchFailsLoudly asserts the knob's validation: a
// negative batch size is a configuration bug and must fail at cluster
// build, not be silently clamped.
func TestCalvinNegativeBatchFailsLoudly(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("negative BatchSize did not panic at cluster build")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "batch") {
			t.Fatalf("panic %v does not name the batch size", r)
		}
	}()
	cfg := calvinConfig(2, 2)
	cfg.BatchSize = -1
	core.NewCluster(cfg, workload.NewSmallBank(workload.DefaultSmallBank(2, 5)))
}

// TestCalvinDeterministicReplay asserts the engine-level determinism
// contract directly: two clusters with equal seeds replay identical
// results (committed counts and final throughput), and a different seed
// produces a different schedule.
func TestCalvinDeterministicReplay(t *testing.T) {
	run := func(seed uint64) *core.Result {
		cfg := calvinConfig(2, 6)
		cfg.Seed = seed
		sbc := workload.DefaultSmallBank(2, 3)
		sbc.DistPct = 50
		return runCalvin(cfg, workload.NewSmallBank(sbc))
	}
	a, b := run(7), run(7)
	if a.Counters != b.Counters {
		t.Fatalf("equal seeds diverged: %+v vs %+v", a.Counters, b.Counters)
	}
	if c := run(8); c.Counters == a.Counters {
		t.Fatal("different seeds produced identical counters; seeding not effective")
	}
}
