package engine

import (
	"fmt"

	"repro/internal/lock"
	"repro/internal/netsim"
	"repro/internal/workload"
)

// This file implements Appendix A.4 of the paper: integrating P4DB's
// switch execution with an optimistic concurrency control (OCC) scheme
// instead of two-phase locking. Transactions execute without locks against
// a private write buffer while recording the versions of the rows they
// read; at commit, a validation phase pins the read/write set, verifies
// that no read version changed, and only then applies the buffered writes.
// The cold 2PC round and the vote-first warm path are the shared
// optimistic drivers of optimistic.go; this file is OCC's attempt state
// machine.
//
// The machinery registers twice: as the "occ" entry of the scheme
// registry (selectable for any scheme-aware engine via core.Config.Scheme)
// and as the "occ" engine — the No-Switch baseline forced onto this scheme,
// kept under the Appendix A.4 ablation's historical spelling.

func init() {
	RegisterScheme(occScheme{})
	Register(occEngine{})
}

// occScheme is backward-validation optimistic concurrency control.
type occScheme struct{}

func (occScheme) Name() string            { return SchemeOCC }
func (occScheme) Label() string           { return "OCC" }
func (occScheme) Init(*Context)           {}
func (occScheme) NewNodeState() NodeState { return newOCCState() }

func (occScheme) ExecCold(c *Context, n *Node, txn *workload.Txn, k func(error)) {
	c.execOptimisticTxnK(n, txn, c.newOCCAttempt(), k)
}

func (occScheme) ExecWarm(c *Context, n *Node, txn *workload.Txn, k func(error)) {
	c.execOptimisticWarmK(n, txn, func() voteFirst { return c.newOCCAttempt() }, k)
}

// occEngine is the No-Switch baseline running under OCC regardless of the
// configured scheme — the registry name for the Appendix A.4 ablation.
type occEngine struct{}

func (occEngine) Name() string         { return "occ" }
func (occEngine) Label() string        { return "No-Switch (OCC)" }
func (occEngine) ForcedScheme() string { return SchemeOCC }

func (occEngine) Prepare(ctx *Context) error { return nil }

func (occEngine) Execute(ctx *Context, n *Node, txn *workload.Txn, k func(Class, error)) {
	ctx.Scheme.ExecCold(ctx, n, txn, func(err error) { k(ClassCold, err) })
}

// occStateOf returns the node's OCC bookkeeping, failing fast when the
// node was built for another scheme (a cluster-assembly bug).
func occStateOf(n *Node) *occState {
	s, ok := n.cc.(*occState)
	if !ok {
		panic(fmt.Sprintf("engine: OCC execution on node %d built for another CC scheme", n.id))
	}
	return s
}

// ErrValidation aborts an OCC transaction whose read set changed (or whose
// read/write set is pinned by a concurrently validating transaction).
var ErrValidation = fmt.Errorf("%w: OCC validation failed", lock.ErrAbort)

// occState is a node's OCC bookkeeping: row versions (bumped on every
// committed write) and pins (rows claimed by transactions between
// validation and decision).
type occState struct {
	versions map[lock.Key]uint64
	pins     map[lock.Key]uint64 // row -> pinning transaction ts
}

func newOCCState() *occState {
	return &occState{
		versions: make(map[lock.Key]uint64),
		pins:     make(map[lock.Key]uint64),
	}
}

// occAttempt is one optimistic execution attempt: the shared buffered
// write set plus OCC's observed read versions.
type occAttempt struct {
	bufferedAttempt
	reads map[netsim.NodeID]map[lock.Key]uint64 // observed row versions
}

func (c *Context) newOCCAttempt() *occAttempt {
	return &occAttempt{
		bufferedAttempt: newBufferedAttempt(c),
		reads:           make(map[netsim.NodeID]map[lock.Key]uint64, 2),
	}
}

func (at *occAttempt) readDone(*Context) {}
func (at *occAttempt) sealed(*Context)   {}
func (at *occAttempt) abortErr() error   { return ErrValidation }

// trackRead records the version of a row the first time it is observed.
func (at *occAttempt) trackRead(n *Node, row lock.Key) {
	m := at.reads[n.id]
	if m == nil {
		m = make(map[lock.Key]uint64, 4)
		at.reads[n.id] = m
	}
	if _, seen := m[row]; !seen {
		m[row] = occStateOf(n).versions[row]
	}
}

// view reads a field through the attempt's overlay.
func (at *occAttempt) view(n *Node, op workload.Op) int64 {
	if ov := at.overlay[n.id]; ov != nil {
		if v, ok := ov[op.TupleKey()]; ok {
			return v
		}
	}
	return n.store.Table(op.Table).Get(op.Key, op.Field)
}

// applyOp records the row's version, then runs the shared op
// interpretation against the attempt's private view.
func (at *occAttempt) applyOp(n *Node, op workload.Op) {
	at.trackRead(n, lock.Key(op.LockKey()))
	applyBufferedOp(at, n, op)
}

// validateAndPin checks the attempt's reads at node n and pins its
// read/write set there. It must run without intervening virtual time
// (it models a short latch-protected critical section).
func (at *occAttempt) validateAndPin(n *Node) bool {
	occ := occStateOf(n)
	reads := at.reads[n.id]
	for row, ver := range reads {
		if occ.versions[row] != ver {
			return false
		}
		if owner, pinned := occ.pins[row]; pinned && owner != at.ts {
			return false
		}
	}
	for row := range at.wrote[n.id] {
		if owner, pinned := occ.pins[row]; pinned && owner != at.ts {
			return false
		}
	}
	for row := range reads {
		occ.pins[row] = at.ts
	}
	for row := range at.wrote[n.id] {
		occ.pins[row] = at.ts
	}
	at.pinned = append(at.pinned, n.id)
	return true
}

// unpin releases the attempt's pins at node n.
func (at *occAttempt) unpin(n *Node) {
	occ := occStateOf(n)
	for row, owner := range occ.pins {
		if owner == at.ts {
			delete(occ.pins, row)
		}
	}
}

// install applies the buffered writes at node n, bumps row versions and
// releases the pins.
func (at *occAttempt) install(_ *Context, n *Node) {
	for gk, v := range at.overlay[n.id] {
		table, field, key := gk.SplitField()
		n.store.Table(table).Set(key, field, v)
	}
	for row := range at.wrote[n.id] {
		occStateOf(n).versions[row]++
	}
	at.unpin(n)
}

// remoteNodes lists the nodes other than self the attempt touched — OCC
// validates reads, so read-only nodes participate in 2PC too.
func (at *occAttempt) remoteNodes(self netsim.NodeID) []netsim.NodeID {
	seen := map[netsim.NodeID]struct{}{}
	add := func(id netsim.NodeID) {
		if id != self {
			seen[id] = struct{}{}
		}
	}
	for id := range at.reads {
		add(id)
	}
	for id := range at.overlay {
		add(id)
	}
	out := make([]netsim.NodeID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	return out
}
