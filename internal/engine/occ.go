package engine

import (
	"fmt"

	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/twopc"
	"repro/internal/wal"
	"repro/internal/workload"
)

// This file implements Appendix A.4 of the paper: integrating P4DB's
// switch execution with an optimistic concurrency control (OCC) scheme
// instead of two-phase locking. Transactions execute without locks against
// a private write buffer while recording the versions of the rows they
// read; at commit, a validation phase pins the read/write set, verifies
// that no read version changed, and only then applies the buffered writes.
// For warm transactions the switch sub-transaction is sent between
// validation and the commit broadcast — the point at which the cold part
// can no longer abort — exactly as the appendix prescribes.
//
// The "occ" engine registered here is the No-Switch baseline forced onto
// this scheme; the P4DB engine routes its warm/cold paths through the same
// machinery when the configured Scheme is CCOCC.

func init() { Register(occEngine{}) }

// occEngine is the No-Switch baseline running under OCC regardless of the
// configured Scheme — the registry name for the Appendix A.4 ablation.
type occEngine struct{}

func (occEngine) Name() string  { return "occ" }
func (occEngine) Label() string { return "No-Switch (OCC)" }

func (occEngine) Prepare(ctx *Context) error { return nil }

func (occEngine) Execute(ctx *Context, p *sim.Proc, n *Node, txn *workload.Txn) (Class, error) {
	return ClassCold, ctx.execOCCTxn(p, n, txn)
}

// ErrValidation aborts an OCC transaction whose read set changed (or whose
// read/write set is pinned by a concurrently validating transaction).
var ErrValidation = fmt.Errorf("%w: OCC validation failed", lock.ErrAbort)

// occState is a node's OCC bookkeeping: row versions (bumped on every
// committed write) and pins (rows claimed by transactions between
// validation and decision).
type occState struct {
	versions map[lock.Key]uint64
	pins     map[lock.Key]uint64 // row -> pinning transaction ts
}

func newOCCState() *occState {
	return &occState{
		versions: make(map[lock.Key]uint64),
		pins:     make(map[lock.Key]uint64),
	}
}

// occAttempt is one optimistic execution attempt.
type occAttempt struct {
	ts      uint64
	exec    workload.Executor
	reads   map[netsim.NodeID]map[lock.Key]uint64       // observed row versions
	overlay map[netsim.NodeID]map[store.GlobalKey]int64 // buffered writes (field-qualified)
	wrote   map[netsim.NodeID]map[lock.Key]struct{}     // rows with buffered writes
	writes  []wal.ColdWrite
	pinned  []netsim.NodeID // nodes where the attempt holds pins
}

func (c *Context) newOCCAttempt() *occAttempt {
	c.nextTS++
	return &occAttempt{
		ts:      c.nextTS,
		exec:    workload.NewExecutor(),
		reads:   make(map[netsim.NodeID]map[lock.Key]uint64, 2),
		overlay: make(map[netsim.NodeID]map[store.GlobalKey]int64, 2),
		wrote:   make(map[netsim.NodeID]map[lock.Key]struct{}, 2),
	}
}

// trackRead records the version of a row the first time it is observed.
func (at *occAttempt) trackRead(n *Node, row lock.Key) {
	m := at.reads[n.id]
	if m == nil {
		m = make(map[lock.Key]uint64, 4)
		at.reads[n.id] = m
	}
	if _, seen := m[row]; !seen {
		m[row] = n.occ.versions[row]
	}
}

// view reads a field through the attempt's overlay.
func (at *occAttempt) view(n *Node, op workload.Op) int64 {
	if ov := at.overlay[n.id]; ov != nil {
		if v, ok := ov[op.TupleKey()]; ok {
			return v
		}
	}
	return n.store.Table(op.Table).Get(op.Key, op.Field)
}

// buffer stages a write in the overlay.
func (at *occAttempt) buffer(n *Node, op workload.Op, v int64) {
	ov := at.overlay[n.id]
	if ov == nil {
		ov = make(map[store.GlobalKey]int64, 4)
		at.overlay[n.id] = ov
	}
	ov[op.TupleKey()] = v
	w := at.wrote[n.id]
	if w == nil {
		w = make(map[lock.Key]struct{}, 4)
		at.wrote[n.id] = w
	}
	w[lock.Key(op.LockKey())] = struct{}{}
	at.writes = append(at.writes, wal.ColdWrite{Table: op.Table, Key: op.Key, Field: op.Field, Value: v})
}

// applyOCCOp executes one operation against the attempt's private view,
// mirroring the Executor/switch semantics exactly.
func (at *occAttempt) applyOCCOp(n *Node, op workload.Op) {
	row := lock.Key(op.LockKey())
	at.trackRead(n, row)
	cur := at.view(n, op)
	switch op.Kind {
	case workload.Read:
		// value observed via trackRead; nothing to write
	case workload.Write:
		at.buffer(n, op, op.Value)
	case workload.Add:
		at.buffer(n, op, cur+op.Value)
	case workload.CondAddGE0:
		if cur+op.Value >= 0 {
			at.buffer(n, op, cur+op.Value)
		} else {
			at.exec.OK = false
		}
	case workload.ReadClear:
		at.exec.Acc += cur
		at.buffer(n, op, 0)
	case workload.AddAcc:
		at.buffer(n, op, cur+at.exec.Acc+op.Value)
	case workload.AddIfOK:
		if at.exec.OK {
			at.buffer(n, op, cur+op.Value)
		}
	default:
		panic(fmt.Sprintf("engine: unknown op kind %d", op.Kind))
	}
}

// validateAndPin checks the attempt's reads at node n and pins its
// read/write set there. It must run without intervening virtual time
// (it models a short latch-protected critical section).
func (at *occAttempt) validateAndPin(n *Node) bool {
	reads := at.reads[n.id]
	for row, ver := range reads {
		if n.occ.versions[row] != ver {
			return false
		}
		if owner, pinned := n.occ.pins[row]; pinned && owner != at.ts {
			return false
		}
	}
	for row := range at.wrote[n.id] {
		if owner, pinned := n.occ.pins[row]; pinned && owner != at.ts {
			return false
		}
	}
	for row := range reads {
		n.occ.pins[row] = at.ts
	}
	for row := range at.wrote[n.id] {
		n.occ.pins[row] = at.ts
	}
	at.pinned = append(at.pinned, n.id)
	return true
}

// unpin releases the attempt's pins at node n.
func (at *occAttempt) unpin(n *Node) {
	for row, owner := range n.occ.pins {
		if owner == at.ts {
			delete(n.occ.pins, row)
		}
	}
}

// applyAndUnpin installs the buffered writes at node n, bumps row versions
// and releases the pins.
func (at *occAttempt) applyAndUnpin(n *Node) {
	for gk, v := range at.overlay[n.id] {
		table, field, key := gk.SplitField()
		n.store.Table(table).Set(key, field, v)
	}
	for row := range at.wrote[n.id] {
		n.occ.versions[row]++
	}
	at.unpin(n)
}

// abortOCC releases all pins (nothing was applied yet). Remote nodes are
// notified asynchronously, like the 2PL abort path.
func (c *Context) abortOCC(n *Node, at *occAttempt) {
	for _, id := range at.pinned {
		if id == n.id {
			at.unpin(c.Nodes[id])
			continue
		}
		id := id
		c.Net.Send(n.id, id, func() { at.unpin(c.Nodes[id]) })
	}
	at.pinned = nil
}

// execOCCOps runs the operations optimistically, visiting remote nodes
// over the network for their reads (the buffered writes travel with the
// transaction and are shipped at commit).
func (c *Context) execOCCOps(p *sim.Proc, n *Node, at *occAttempt, ops []workload.Op) {
	for _, op := range ops {
		if op.Home == n.id {
			t0 := p.Now()
			p.Sleep(c.Costs.LocalAccess)
			at.applyOCCOp(n, op)
			c.charge(n, metrics.LocalAccess, t0)
			continue
		}
		t0 := p.Now()
		op := op
		c.Net.RPC(p, n.id, op.Home, func() {
			p.Sleep(c.Costs.LocalAccess)
			at.applyOCCOp(c.Nodes[op.Home], op)
		})
		c.charge(n, metrics.RemoteAccess, t0)
	}
}

// occParticipants builds the 2PC participants for the attempt's remote
// nodes: prepare = validate + pin (+ log), commit = apply + unpin, abort =
// unpin.
func (c *Context) occParticipants(at *occAttempt, remotes []netsim.NodeID) []twopc.Participant {
	parts := make([]twopc.Participant, 0, len(remotes))
	for _, id := range remotes {
		rn := c.Nodes[id]
		parts = append(parts, twopc.Participant{
			Node: id,
			Prepare: func(sp *sim.Proc) bool {
				sp.Sleep(c.Costs.LogAppend)
				return at.validateAndPin(rn)
			},
			Commit: func() { at.applyAndUnpin(rn) },
			Abort:  func() { at.unpin(rn) },
		})
	}
	return parts
}

// remoteOCCNodes lists the nodes other than self the attempt touched.
func (at *occAttempt) remoteOCCNodes(self netsim.NodeID) []netsim.NodeID {
	seen := map[netsim.NodeID]struct{}{}
	add := func(id netsim.NodeID) {
		if id != self {
			seen[id] = struct{}{}
		}
	}
	for id := range at.reads {
		add(id)
	}
	for id := range at.overlay {
		add(id)
	}
	out := make([]netsim.NodeID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	return out
}

// execOCCTxn executes an entire cold transaction under OCC.
func (c *Context) execOCCTxn(p *sim.Proc, n *Node, txn *workload.Txn) error {
	at := c.newOCCAttempt()
	t0 := p.Now()
	p.Sleep(c.Costs.TxnOverhead)
	c.charge(n, metrics.TxnEngine, t0)
	c.execOCCOps(p, n, at, txn.Ops)

	t1 := p.Now()
	defer c.charge(n, metrics.TxnEngine, t1)
	// Local validation first: a cheap early abort.
	if !at.validateAndPin(n) {
		c.abortOCC(n, at)
		return ErrValidation
	}
	remotes := at.remoteOCCNodes(n.id)
	if len(remotes) == 0 {
		p.Sleep(c.Costs.LogAppend)
		n.log.AppendCold(at.ts, at.writes)
		at.applyAndUnpin(n)
		return nil
	}
	coord := twopc.NewCoordinator(c.Net, n.id)
	if !coord.Commit(p, c.occParticipants(at, remotes)) {
		c.abortOCC(n, at)
		return ErrValidation
	}
	p.Sleep(c.Costs.LogAppend)
	n.log.AppendCold(at.ts, at.writes)
	at.applyAndUnpin(n)
	return nil
}

// execOCCWarm executes a warm transaction under OCC per Appendix A.4: the
// cold part validates (so it cannot abort anymore), then the switch
// sub-transaction runs inside the combined Decision&Switch phase, and the
// cold writes apply when the multicast decision arrives.
func (c *Context) execOCCWarm(p *sim.Proc, n *Node, txn *workload.Txn) error {
	if crossTemperatureDeps(txn, func(op workload.Op) bool { return c.OnSwitch(op) }) {
		return c.execOCCTxn(p, n, txn)
	}
	at := c.newOCCAttempt()
	t0 := p.Now()
	p.Sleep(c.Costs.TxnOverhead)
	c.charge(n, metrics.TxnEngine, t0)

	var coldOps, hotOps []workload.Op
	for _, op := range txn.Ops {
		if c.OnSwitch(op) {
			hotOps = append(hotOps, op)
		} else {
			coldOps = append(coldOps, op)
		}
	}
	c.execOCCOps(p, n, at, coldOps)
	if !at.validateAndPin(n) {
		c.abortOCC(n, at)
		return ErrValidation
	}

	// Vote first: unlike the 2PL warm path, OCC participants can refuse
	// (their validation may fail), and the switch intent must only be
	// logged — i.e. the transaction only counts as committed — once the
	// cold part is certain to commit.
	t1 := p.Now()
	remotes := at.remoteOCCNodes(n.id)
	coord := twopc.NewCoordinator(c.Net, n.id)
	parts := c.occParticipants(at, remotes)
	if len(remotes) > 0 && !coord.Prepare(p, parts) {
		coord.Finish(p, parts, false)
		c.abortOCC(n, at)
		c.charge(n, metrics.TxnEngine, t1)
		return ErrValidation
	}
	pkt, passes := c.compileHot(hotOps, at.ts)
	p.Sleep(c.Costs.LogAppend)
	rec := n.log.AppendSwitchIntent(at.ts, pkt.Instrs)
	coord.SwitchPhase(p, parts, func(sub *sim.Proc) {
		resp, xerr := c.Sw.Exec(sub, pkt)
		if xerr != nil {
			panic(fmt.Sprintf("engine: switch rejected warm OCC packet: %v", xerr))
		}
		rec.Complete(resp)
	})
	c.charge(n, metrics.SwitchTxn, t1)
	t2 := p.Now()
	p.Sleep(c.Costs.LogAppend)
	n.log.AppendCold(at.ts, at.writes)
	at.applyAndUnpin(n)
	c.charge(n, metrics.TxnEngine, t2)
	if c.measuring {
		if passes > 1 {
			n.counters.MultiPass++
		} else {
			n.counters.SinglePass++
		}
	}
	return nil
}
