package engine

import (
	"fmt"

	"repro/internal/layout"
	"repro/internal/metrics"
	"repro/internal/pisa"
	"repro/internal/sim"
	"repro/internal/txnwire"
	"repro/internal/wal"
	"repro/internal/workload"
)

// compileHot turns the hot operations into a switch packet plus its WAL
// intent instructions.
func (c *Context) compileHot(ops []workload.Op, ts uint64) (*txnwire.Packet, int) {
	hops := make([]layout.HotOp, len(ops))
	for i, op := range ops {
		hops[i] = layout.HotOp{
			Tuple:     layout.TupleID(op.TupleKey()),
			Op:        op.Kind.WireOp(),
			Operand:   op.Value,
			DependsOn: op.DependsOn,
		}
	}
	instrs, _, passes, err := layout.Compile(hops, c.Layout)
	if err != nil {
		panic(fmt.Sprintf("engine: hot transaction failed to compile: %v", err))
	}
	left, right := switchLocksFor(c.SwitchCfg, instrs)
	pkt := &txnwire.Packet{
		Header: txnwire.Header{
			IsMultipass: passes > 1,
			LockLeft:    left,
			LockRight:   right,
			TxnID:       ts,
		},
		Instrs: instrs,
	}
	return pkt, passes
}

// switchLocksFor mirrors the switch's lock mapping so the node can fill
// the packet header (Section 5.4: nodes initialize the processing
// information).
func switchLocksFor(cfg pisa.Config, instrs []txnwire.Instr) (left, right bool) {
	if !cfg.FineLocks {
		return true, false
	}
	half := cfg.Stages / 2
	for _, in := range instrs {
		if int(in.Stage) < half {
			left = true
		} else {
			right = true
		}
	}
	return left, right
}

// hotFrame is the pooled state machine behind ExecHotK: compile the hot
// operations into one switch packet, log the intent, round-trip through
// the wire codec and the switch, and back-fill the WAL record. Switch
// transactions cannot abort; they count as committed once logged
// (Section 6.1). Continuations are method values cached at construction.
type hotFrame struct {
	c      *Context
	n      *Node
	txn    *workload.Txn
	at     *attempt
	pkt    *txnwire.Packet
	onWire *txnwire.Packet
	resp   *txnwire.Response
	rec    *wal.SwitchRecord
	passes int
	t0, t1 sim.Time
	k      func()

	sdone func() // in-flight switch reply continuation

	compiledFn   func()
	intentFn     func()
	switchBodyFn func(func())
	onRespFn     func(*txnwire.Response, error)
	switchDoneFn func()
}

func (c *Context) getHotFrame() *hotFrame {
	if n := len(c.freeHotFrames); n > 0 {
		f := c.freeHotFrames[n-1]
		c.freeHotFrames = c.freeHotFrames[:n-1]
		return f
	}
	f := &hotFrame{c: c}
	f.compiledFn = f.compiled
	f.intentFn = f.intent
	f.switchBodyFn = f.switchBody
	f.onRespFn = f.onResp
	f.switchDoneFn = f.switchDone
	return f
}

func (c *Context) putHotFrame(f *hotFrame) {
	f.n, f.txn, f.at, f.k = nil, nil, nil, nil
	f.pkt, f.onWire, f.resp, f.rec, f.sdone = nil, nil, nil, nil, nil
	c.freeHotFrames = append(c.freeHotFrames, f)
}

// ExecHotK executes a hot transaction entirely on the switch
// (Section 6.1) and invokes k when the response has landed. It is shared
// switch machinery (the P4DB engine's hot path and the recovery drivers
// use it) rather than a per-strategy body.
func (c *Context) ExecHotK(n *Node, txn *workload.Txn, k func()) {
	f := c.getHotFrame()
	f.n, f.txn, f.k = n, txn, k
	f.at = c.newAttempt()
	f.t0 = c.Env.Now()
	c.Env.After(c.Costs.TxnOverhead, f.compiledFn)
}

func (f *hotFrame) compiled() {
	f.pkt, f.passes = f.c.compileHot(f.txn.Ops, f.at.ts)
	f.c.charge(f.n, metrics.TxnEngine, f.t0)
	f.t1 = f.c.Env.Now()
	f.c.Env.After(f.c.Costs.LogAppend, f.intentFn)
}

func (f *hotFrame) intent() {
	// The intent must be durable BEFORE the packet leaves the node: the
	// switch cannot abort, so the logged intent is the commit point
	// (Section 6.1). The LogAppend delay was already paid getting here;
	// Durable gates only whether the record is retained.
	if f.c.Durable {
		f.rec = f.n.log.AppendSwitchIntent(f.pkt.Header.TxnID, f.pkt.Instrs)
	}
	buf, err := txnwire.Encode(f.pkt)
	if err != nil {
		panic(fmt.Sprintf("engine: packet encode: %v", err))
	}
	f.onWire, err = txnwire.Decode(buf)
	if err != nil {
		panic(fmt.Sprintf("engine: packet decode: %v", err))
	}
	f.c.Net.RPCToSwitchK(f.n.id, f.switchBodyFn, f.switchDoneFn)
}

func (f *hotFrame) switchBody(done func()) {
	f.sdone = done
	f.c.Sw.ExecK(f.onWire, f.onRespFn)
}

func (f *hotFrame) onResp(resp *txnwire.Response, xerr error) {
	if xerr != nil {
		panic(fmt.Sprintf("engine: switch rejected packet: %v", xerr))
	}
	f.resp = resp
	f.sdone()
}

func (f *hotFrame) switchDone() {
	if f.rec != nil {
		f.rec.Complete(f.resp)
	}
	f.c.charge(f.n, metrics.SwitchTxn, f.t1)
	if f.c.measuring {
		if f.passes > 1 {
			f.n.counters.MultiPass++
		} else {
			f.n.counters.SinglePass++
		}
	}
	f.c.releaseAttempt(f.at) // hot attempts hold no locks
	k := f.k
	f.c.putHotFrame(f)
	k()
}

// ExecHot is the process-form face of ExecHotK (tests and recovery
// drivers).
func (c *Context) ExecHot(p *sim.Proc, n *Node, txn *workload.Txn) {
	runK(p, func(fin func()) { c.ExecHotK(n, txn, fin) })
}

// crossTemperatureDeps reports whether any operation depends on an
// operation of the other temperature class.
func crossTemperatureDeps(txn *workload.Txn, hot func(workload.Op) bool) bool {
	for _, op := range txn.Ops {
		if d := op.DependsOn; d >= 0 && d < len(txn.Ops) {
			if hot(op) != hot(txn.Ops[d]) {
				return true
			}
		}
	}
	return false
}
