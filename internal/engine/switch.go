package engine

import (
	"fmt"

	"repro/internal/layout"
	"repro/internal/metrics"
	"repro/internal/pisa"
	"repro/internal/sim"
	"repro/internal/txnwire"
	"repro/internal/workload"
)

// compileHot turns the hot operations into a switch packet plus its WAL
// intent instructions.
func (c *Context) compileHot(ops []workload.Op, ts uint64) (*txnwire.Packet, int) {
	hops := make([]layout.HotOp, len(ops))
	for i, op := range ops {
		hops[i] = layout.HotOp{
			Tuple:     layout.TupleID(op.TupleKey()),
			Op:        op.Kind.WireOp(),
			Operand:   op.Value,
			DependsOn: op.DependsOn,
		}
	}
	instrs, _, passes, err := layout.Compile(hops, c.Layout)
	if err != nil {
		panic(fmt.Sprintf("engine: hot transaction failed to compile: %v", err))
	}
	left, right := switchLocksFor(c.SwitchCfg, instrs)
	pkt := &txnwire.Packet{
		Header: txnwire.Header{
			IsMultipass: passes > 1,
			LockLeft:    left,
			LockRight:   right,
			TxnID:       ts,
		},
		Instrs: instrs,
	}
	return pkt, passes
}

// switchLocksFor mirrors the switch's lock mapping so the node can fill
// the packet header (Section 5.4: nodes initialize the processing
// information).
func switchLocksFor(cfg pisa.Config, instrs []txnwire.Instr) (left, right bool) {
	if !cfg.FineLocks {
		return true, false
	}
	half := cfg.Stages / 2
	for _, in := range instrs {
		if int(in.Stage) < half {
			left = true
		} else {
			right = true
		}
	}
	return left, right
}

// sendToSwitch logs the intent, round-trips the packet through the wire
// codec and the switch, and back-fills the WAL record. Switch transactions
// cannot abort; they count as committed once logged (Section 6.1).
func (c *Context) sendToSwitch(p *sim.Proc, n *Node, pkt *txnwire.Packet) *txnwire.Response {
	p.Sleep(c.Costs.LogAppend)
	rec := n.log.AppendSwitchIntent(pkt.Header.TxnID, pkt.Instrs)
	buf, err := txnwire.Encode(pkt)
	if err != nil {
		panic(fmt.Sprintf("engine: packet encode: %v", err))
	}
	onWire, err := txnwire.Decode(buf)
	if err != nil {
		panic(fmt.Sprintf("engine: packet decode: %v", err))
	}
	var resp *txnwire.Response
	c.Net.RPCToSwitch(p, n.id, func() {
		var xerr error
		resp, xerr = c.Sw.Exec(p, onWire)
		if xerr != nil {
			panic(fmt.Sprintf("engine: switch rejected packet: %v", xerr))
		}
	})
	rec.Complete(resp)
	return resp
}

// ExecHot executes a hot transaction entirely on the switch (Section 6.1).
// It is shared switch machinery (the P4DB engine's hot path and the
// recovery drivers use it) rather than a per-strategy body.
func (c *Context) ExecHot(p *sim.Proc, n *Node, txn *workload.Txn) {
	at := c.newAttempt()
	t0 := p.Now()
	p.Sleep(c.Costs.TxnOverhead)
	pkt, passes := c.compileHot(txn.Ops, at.ts)
	c.charge(n, metrics.TxnEngine, t0)
	t1 := p.Now()
	c.sendToSwitch(p, n, pkt)
	c.charge(n, metrics.SwitchTxn, t1)
	if c.measuring {
		if passes > 1 {
			n.counters.MultiPass++
		} else {
			n.counters.SinglePass++
		}
	}
}

// crossTemperatureDeps reports whether any operation depends on an
// operation of the other temperature class.
func crossTemperatureDeps(txn *workload.Txn, hot func(workload.Op) bool) bool {
	for _, op := range txn.Ops {
		if d := op.DependsOn; d >= 0 && d < len(txn.Ops) {
			if hot(op) != hot(txn.Ops[d]) {
				return true
			}
		}
	}
	return false
}
