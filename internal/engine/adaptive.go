package engine

import (
	"sort"

	"repro/internal/hotset"
	"repro/internal/layout"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/workload"
)

// Online adaptive layout (the live half of the paper's offline Figure 3
// pipeline). When core.Config.Adaptive is set on a switch-offloading
// engine, the Context carries an adaptiveState that
//
//  1. records every generated transaction's accesses into a sliding
//     window of per-node, epoch-bucketed key counters (zero allocations
//     on the attempt path — the window is fixed-size open addressing),
//  2. every AdaptInterval of virtual time folds the window, re-ranks the
//     keys (hotset.SelectTop) and diffs the selection against the live
//     placement: tuples above the noise floor that are not yet on the
//     switch are promoted, resident tuples are demoted only under
//     capacity pressure (coldest first), and a round that moves nothing
//     goes back to sleep, and
//  3. if tuples must move, migrates them under a *delta fence*: the
//     layout evolves incrementally (layout.Extend — surviving tuples
//     keep their slots), so only transactions touching a moving tuple
//     are parked; in-flight attempts on moving tuples drain, a settle
//     delay lets straggler one-way messages (abort rollbacks,
//     warm-commit multicasts) land, tuple state moves between switch
//     registers and owner-node stores, and the new index replica is
//     announced to every node via the switch multicast — only then does
//     the fence lift and parked attempts resume. Transactions on
//     unmoved tuples execute right through the fence.
//
// Everything is driven off the virtual clock, so adaptive runs are as
// deterministic as static ones; with Adaptive off no state is allocated
// and no event is scheduled, keeping the golden digests bit-identical.

const (
	// adaptEpochs is the sliding window's depth in re-detection intervals:
	// each interval gets one bucket, folding sees the last adaptEpochs of
	// them, so the window spans adaptEpochs*AdaptInterval with
	// interval-granular expiry. Deeper than one interval because the
	// online window is sparse — tail keys of a genuine hot set need a few
	// intervals of accumulation to clear the detection noise floor.
	adaptEpochs = 4
	// adaptBucketSlots sizes each node's per-epoch counter table (open
	// addressing, power of two). Beyond ~3/4 load new keys are dropped
	// into an overflow count — the window degrades, never allocates.
	adaptBucketSlots = 1024
	// adaptProbeLimit bounds linear probing; a longer chain counts as
	// overflow.
	adaptProbeLimit = 64
)

// winBucket is one epoch's key-frequency counter for one node: fixed-size
// open addressing keyed by GlobalKey. slots[i].count == 0 marks an empty
// slot (key and count share a cache line, so a probe costs one memory
// access, not two); used lists the occupied slots so reset touches only
// them, and multi the slots whose count reached 2 — the only slots a
// high-volume fold needs to walk.
type winBucket struct {
	slots    []winSlot
	used     []int32
	multi    []int32
	overflow int64
}

// winSlot is one counter table entry.
type winSlot struct {
	key   store.GlobalKey
	count int64
}

func newWinBucket() winBucket {
	return winBucket{
		slots: make([]winSlot, adaptBucketSlots),
		used:  make([]int32, 0, adaptBucketSlots),
		multi: make([]int32, 0, adaptBucketSlots),
	}
}

// record counts one access. Zero allocations: a full table (or an
// over-long probe chain) drops the key into the overflow tally.
func (b *winBucket) record(k store.GlobalKey) {
	h := uint64(k) * 0x9E3779B97F4A7C15
	i := int32((h >> 32) & (adaptBucketSlots - 1))
	for probe := 0; probe < adaptProbeLimit; probe++ {
		s := &b.slots[i]
		switch {
		case s.count == 0:
			if len(b.used) == cap(b.used)*3/4 {
				b.overflow++
				return
			}
			s.key = k
			s.count = 1
			b.used = append(b.used, i)
			return
		case s.key == k:
			s.count++
			if s.count == 2 {
				b.multi = append(b.multi, i)
			}
			return
		}
		i = (i + 1) & (adaptBucketSlots - 1)
	}
	b.overflow++
}

// reset clears the bucket for reuse as the next epoch, touching only the
// occupied slots.
func (b *winBucket) reset() {
	for _, i := range b.used {
		b.slots[i].count = 0
	}
	b.used = b.used[:0]
	b.multi = b.multi[:0]
	b.overflow = 0
}

// foldAcc is the re-detection tick's window-merge accumulator: the same
// open-addressing-with-a-used-list technique as winBucket, but sized to
// hold every window slot at once (so it can never fill — the per-bucket
// 3/4 load cap bounds total distinct keys at 3/4 of its table) and
// carrying pre-summed counts. A Go map here costs ~4x as much per insert
// and dominates the moveless steady-state tick.
type foldAcc struct {
	slots []winSlot
	used  []int32
	mask  int32
}

func newFoldAcc(slots int) *foldAcc {
	n := 1
	for n < slots {
		n <<= 1
	}
	return &foldAcc{
		slots: make([]winSlot, n),
		used:  make([]int32, 0, n),
		mask:  int32(n - 1),
	}
}

func (a *foldAcc) add(k store.GlobalKey, c int64) {
	h := uint64(k) * 0x9E3779B97F4A7C15
	i := int32(h>>32) & a.mask
	for {
		s := &a.slots[i]
		switch {
		case s.count == 0:
			s.key = k
			s.count = c
			a.used = append(a.used, i)
			return
		case s.key == k:
			s.count += c
			return
		}
		i = (i + 1) & a.mask
	}
}

func (a *foldAcc) reset() {
	for _, i := range a.used {
		a.slots[i].count = 0
	}
	a.used = a.used[:0]
}

// gateWaiter is one execution parked at the migration fence.
type gateWaiter struct {
	eng Engine
	n   *Node
	txn *workload.Txn
	k   func(Class, error)
}

// layoutDelta is a computed incremental re-layout waiting for its fence
// to drain: the successor placement plus the tuples that move.
type layoutDelta struct {
	layout  *layout.Layout
	idx     *hotset.Index
	label   map[store.GlobalKey]bool
	promote []store.GlobalKey
	demote  []store.GlobalKey
}

// doneAdapter tags one engine attempt with its slot in the controller's
// running-attempt registry, so completion can release the slot (and, if
// the attempt was blocking a fence drain, account for it). Pooled: the
// attempt path stays allocation-free.
type doneAdapter struct {
	ad   *adaptiveState
	slot int32
	k    func(Class, error)
	fn   func(Class, error)
}

func (a *doneAdapter) call(cls Class, err error) {
	ad, slot, k := a.ad, a.slot, a.k
	a.k = nil
	ad.freeAdapters = append(ad.freeAdapters, a)
	ad.attemptDone(slot)
	k(cls, err)
}

// adaptiveState is the per-cluster adaptive layout controller.
type adaptiveState struct {
	c        *Context
	interval sim.Time
	epochLen sim.Time
	settle   sim.Time
	capRows  int

	// Sliding window: buckets[node][epoch]; curEpoch tracks rotation,
	// curSlot caches curEpoch%adaptEpochs and epochEnd the sim time at
	// which the window next rotates.
	buckets  [][]winBucket
	curEpoch int64
	curSlot  int32
	epochEnd sim.Time

	// Running-attempt registry: running[slot] is the transaction of one
	// in-flight engine attempt (nil = free slot). blocking marks the
	// attempts a raised fence must wait out.
	running      []*workload.Txn
	blocking     []bool
	freeSlots    []int32
	freeAdapters []*doneAdapter

	// Fence state. draining is the window between fence raise and the
	// settle timer being armed (blocking attempts still completing).
	fencing    bool
	draining   bool
	blockCount int
	deltaKeys  map[store.GlobalKey]bool
	waiters    []gateWaiter
	spare      []gateWaiter
	delta      *layoutDelta

	allNodes []netsim.NodeID

	// fold is the re-detection tick's scratch accumulator (reused across
	// ticks, regrown only when the fold volume outgrows it); foldSrc is
	// the tick's scratch list of per-bucket fold sources, in
	// buckets[i/adaptEpochs][i%adaptEpochs] order.
	fold    *foldAcc
	foldSrc [][]int32

	migrations int64
	promoted   int64
	demoted    int64
	fenceWaits int64

	tickFn  func()
	applyFn func()
}

// StartAdaptive arms the online adaptive layout controller: interval is
// the re-detection period and capRows the hot-set bound (switch capacity,
// possibly capped by HotSetCap). Call after the engine's Prepare, and
// only for engines that offloaded to the switch (Context.UseSwitch).
func (c *Context) StartAdaptive(interval sim.Time, capRows int) {
	if c.ad != nil {
		panic("engine: StartAdaptive called twice")
	}
	lat := c.Net.Latency()
	ad := &adaptiveState{
		c:        c,
		interval: interval,
		epochLen: interval,
		// The settle delay outlasts any one-way message in flight when the
		// last blocking attempt completed: a node-to-node send (abort
		// rollbacks) or a node-to-switch leg chained into a switch
		// multicast (warm-commit lock releases).
		settle:  lat.NodeToNode + 2*lat.NodeToSwitch,
		capRows: capRows,
	}
	if ad.epochLen <= 0 {
		ad.epochLen = 1
	}
	ad.buckets = make([][]winBucket, len(c.Nodes))
	for i := range ad.buckets {
		bs := make([]winBucket, adaptEpochs)
		for e := range bs {
			bs[e] = newWinBucket()
		}
		ad.buckets[i] = bs
	}
	ad.foldSrc = make([][]int32, 0, len(c.Nodes)*adaptEpochs)
	ad.allNodes = make([]netsim.NodeID, len(c.Nodes))
	for i := range ad.allNodes {
		ad.allNodes[i] = netsim.NodeID(i)
	}
	ad.tickFn = ad.tick
	ad.applyFn = ad.apply
	c.ad = ad
	c.Env.After(interval, ad.tickFn)
}

// AdaptiveCounters reports the controller's migration statistics:
// completed migrations, tuples promoted node→switch, tuples demoted
// switch→node, and executions parked at a fence. All zero when the
// cluster runs the static layout.
func (c *Context) AdaptiveCounters() (migrations, promoted, demoted, fenceWaits int64) {
	if c.ad == nil {
		return 0, 0, 0, 0
	}
	return c.ad.migrations, c.ad.promoted, c.ad.demoted, c.ad.fenceWaits
}

// record folds one transaction attempt into the sliding window. Called on
// the first attempt and again on every retry: an aborted attempt is real
// traffic at its keys, so contended tuples gain detection weight in
// proportion to the aborts they cause — the tuples doing the damage are
// promoted first. Zero allocations.
func (ad *adaptiveState) record(n *Node, txn *workload.Txn) {
	if now := ad.c.Env.Now(); now >= ad.epochEnd {
		ad.rotate(now)
	}
	b := &ad.buckets[n.id][ad.curSlot]
	for i := range txn.Ops {
		b.record(txn.Ops[i].TupleKey())
	}
}

// rotate advances the window to the epoch containing now, resetting the
// buckets whose epochs expired. Off record's common path, which pays one
// comparison against the cached epoch boundary instead of a division by
// the runtime-chosen epoch length.
func (ad *adaptiveState) rotate(now sim.Time) {
	e := int64(now / ad.epochLen)
	if e-ad.curEpoch >= adaptEpochs {
		// The window slept past itself (an idle cluster); everything
		// buffered has expired.
		for _, bs := range ad.buckets {
			for i := range bs {
				bs[i].reset()
			}
		}
		ad.curEpoch = e
	}
	for ad.curEpoch < e {
		ad.curEpoch++
		slot := int(ad.curEpoch % adaptEpochs)
		for _, bs := range ad.buckets {
			bs[slot].reset()
		}
	}
	ad.curSlot = int32(ad.curEpoch % adaptEpochs)
	ad.epochEnd = sim.Time(e+1) * ad.epochLen
}

// touchesDelta reports whether any of txn's operations addresses a tuple
// the pending migration moves.
func (ad *adaptiveState) touchesDelta(txn *workload.Txn) bool {
	for i := range txn.Ops {
		if ad.deltaKeys[txn.Ops[i].TupleKey()] {
			return true
		}
	}
	return false
}

// exec is the fence gate every adaptive-mode execution passes through:
// during a migration, attempts touching a moving tuple park; everything
// else registers in the running-attempt table and executes normally.
func (ad *adaptiveState) exec(eng Engine, n *Node, txn *workload.Txn, k func(Class, error)) {
	if ad.fencing && ad.touchesDelta(txn) {
		ad.fenceWaits++
		ad.waiters = append(ad.waiters, gateWaiter{eng: eng, n: n, txn: txn, k: k})
		return
	}
	var slot int32
	if n := len(ad.freeSlots); n > 0 {
		slot = ad.freeSlots[n-1]
		ad.freeSlots = ad.freeSlots[:n-1]
	} else {
		slot = int32(len(ad.running))
		ad.running = append(ad.running, nil)
		ad.blocking = append(ad.blocking, false)
	}
	ad.running[slot] = txn
	var a *doneAdapter
	if n := len(ad.freeAdapters); n > 0 {
		a = ad.freeAdapters[n-1]
		ad.freeAdapters = ad.freeAdapters[:n-1]
	} else {
		a = &doneAdapter{ad: ad}
		a.fn = a.call
	}
	a.slot, a.k = slot, k
	eng.Execute(ad.c, n, txn, a.fn)
}

// attemptDone releases one attempt's registry slot; once a raised fence
// has drained its last blocking attempt, the settle timer arms.
func (ad *adaptiveState) attemptDone(slot int32) {
	ad.running[slot] = nil
	ad.freeSlots = append(ad.freeSlots, slot)
	if ad.blocking[slot] {
		ad.blocking[slot] = false
		ad.blockCount--
		if ad.draining && ad.blockCount == 0 {
			ad.draining = false
			ad.c.Env.After(ad.settle, ad.applyFn)
		}
	}
}

// rearm schedules the next re-detection.
func (ad *adaptiveState) rearm() {
	ad.c.Env.After(ad.interval, ad.tickFn)
}

// tick is the periodic re-detection: fold the window, rank, diff against
// the live placement, and either go back to sleep (nothing moves) or
// compute the incremental re-layout and raise the delta fence.
//
// The placement policy is sticky: detected tuples not yet resident are
// promoted, but resident tuples are demoted only when the switch runs out
// of slots (then coldest-first). The online window holds orders of
// magnitude fewer samples than the offline detection replay, so a tail
// tuple of a perfectly good hot set often shows zero hits in one window;
// evicting it eagerly would churn the layout every tick and throw away
// placements that still pay for themselves. Stickiness makes phase-stable
// workloads converge to a moveless diff (no migrations at all) while a
// genuine shift still promotes its new hot set immediately.
func (ad *adaptiveState) tick() {
	c := ad.c
	if ad.fencing {
		// The previous migration is still fencing (a drain outlasting the
		// interval); skip this round.
		ad.rearm()
		return
	}
	// Pick each bucket's fold source first. A bucket with 128+ distinct
	// keys (or an overflow) recorded a high-volume window: its per-bucket
	// singletons are the Zipf cold tail — a key seen once per node per
	// interval tops out at freq adaptEpochs*nodes, noise-floor territory —
	// and they outnumber the selectable keys by orders of magnitude, so
	// the fold walks only the multi list (slots that reached count 2),
	// staying proportional to the keys that could actually rank. A sparse
	// bucket is a low-volume window where once-seen keys are the only
	// signal; there, fold every used slot.
	total := 0
	for _, bs := range ad.buckets {
		for i := range bs {
			b := &bs[i]
			from := b.multi
			if b.overflow == 0 && len(b.used) < adaptBucketSlots/8 {
				from = b.used
			}
			ad.foldSrc = append(ad.foldSrc, from)
			total += len(from)
		}
	}
	// The accumulator is sized to the actual fold volume (grown on demand,
	// never shrunk): the tick's cache footprint is the dominant adaptive
	// overhead — every line it touches evicts a line of the simulator's
	// working set — so a snug table beats a worst-case one.
	if ad.fold == nil || len(ad.fold.slots)*3/4 < total {
		ad.fold = newFoldAcc(2 * total)
	}
	acc := ad.fold
	acc.reset()
	for si, from := range ad.foldSrc {
		b := &ad.buckets[si/adaptEpochs][si%adaptEpochs]
		for _, idx := range from {
			s := &b.slots[idx]
			acc.add(s.key, s.count)
		}
	}
	ad.foldSrc = ad.foldSrc[:0]
	// Steady-state fast path: ranking is only worth its cost when
	// something could actually move. A migration needs an above-floor key
	// that is not already resident — demotion only ever follows promotion
	// pressure, since the resident set always fits capRows. One pass over
	// the accumulator answers that, and on the moveless tick that sticky
	// placement converges to (the common case by design) it replaces
	// selection entirely, making the whole tick allocation-free.
	needMove := false
	for _, i := range acc.used {
		if s := &acc.slots[i]; s.count >= hotset.NoiseFloor && !c.HotIdx.OnSwitch(s.key) {
			needMove = true
			break
		}
	}
	if !needMove {
		ad.rearm()
		return
	}
	// This tick migrates: materialize the ranking tally. Only above-floor
	// keys — rankFreqs drops the rest anyway, and below-floor residents
	// tally as frequency 0 in the eviction sort, which only widens the
	// ties its stable Keys() order already breaks.
	freq := make(map[store.GlobalKey]int64, len(acc.used))
	for _, i := range acc.used {
		if s := &acc.slots[i]; s.count >= hotset.NoiseFloor {
			freq[s.key] = s.count
		}
	}
	detected := hotset.SelectTop(freq, ad.capRows)
	if len(detected) == 0 {
		ad.rearm()
		return
	}
	resident := c.HotIdx.Keys()
	fresh := make(map[store.GlobalKey]bool, len(detected))
	for _, k := range detected {
		fresh[k] = true
	}
	var promote []store.GlobalKey
	for _, k := range detected {
		if !c.HotIdx.OnSwitch(k) {
			promote = append(promote, k)
		}
	}
	var demote []store.GlobalKey
	if over := len(resident) + len(promote) - ad.capRows; over > 0 {
		// Evict the coldest non-detected residents; Keys() order breaks
		// frequency ties so the cut is deterministic.
		evictable := make([]store.GlobalKey, 0, len(resident))
		for _, k := range resident {
			if !fresh[k] {
				evictable = append(evictable, k)
			}
		}
		sort.SliceStable(evictable, func(i, j int) bool { return freq[evictable[i]] < freq[evictable[j]] })
		demote = evictable[:over]
	}
	if len(promote) == 0 && len(demote) == 0 {
		ad.rearm()
		return
	}

	// Build the successor placement incrementally: surviving tuples keep
	// their slots (their transactions run right through the fence), the
	// promotions spread over the free slots. Re-detection is off the hot
	// path, so it may allocate.
	dropIDs := make([]layout.TupleID, len(demote))
	dk := make(map[store.GlobalKey]bool, len(promote)+len(demote))
	for i, k := range demote {
		dropIDs[i] = layout.TupleID(k)
		dk[k] = true
	}
	addIDs := make([]layout.TupleID, len(promote))
	for i, k := range promote {
		addIDs[i] = layout.TupleID(k)
		dk[k] = true
	}
	l := c.Layout.Extend(dropIDs, addIDs)
	union := make([]store.GlobalKey, 0, len(resident)+len(promote)-len(demote))
	label := make(map[store.GlobalKey]bool, len(resident)+len(promote))
	for k, v := range c.HotLabel {
		label[k] = v
	}
	for _, k := range resident {
		if !dk[k] {
			union = append(union, k)
		}
	}
	for _, k := range demote {
		delete(label, k)
	}
	for _, k := range promote {
		union = append(union, k)
		label[k] = true
	}
	hs := hotset.FromKeys(union, nil, ad.capRows)
	ad.delta = &layoutDelta{layout: l, idx: hotset.BuildIndex(hs, l), label: label, promote: promote, demote: demote}
	ad.deltaKeys = dk

	// Raise the fence: in-flight attempts on moving tuples must drain
	// before state moves; everything else keeps running.
	ad.fencing = true
	ad.blockCount = 0
	for slot, txn := range ad.running {
		if txn != nil && ad.touchesDelta(txn) {
			ad.blocking[slot] = true
			ad.blockCount++
		}
	}
	ad.draining = true
	if ad.blockCount == 0 {
		ad.draining = false
		c.Env.After(ad.settle, ad.applyFn)
	}
}

// apply performs the migration once the fence has drained and settled:
// demoted tuples return their register value to the owner node's store,
// promoted tuples carry their store value into their register (exactly
// the offline offload step), and the updated index replica is announced
// to every node through the switch multicast; the fence lifts when the
// last replica has arrived. Unmoved tuples keep slot and value — the
// registers never stop serving them.
func (ad *adaptiveState) apply() {
	c := ad.c
	d := ad.delta
	for _, k := range d.demote {
		s, _ := c.HotIdx.Lookup(k)
		v := c.Sw.ReadRegister(s.Stage, s.Array, s.Index)
		table, field, key := k.SplitField()
		c.Nodes[c.Gen.Home(table, key)].store.Table(table).Set(key, field, v)
		ad.demoted++
	}
	for _, k := range d.promote {
		s, _ := d.idx.Lookup(k)
		table, field, key := k.SplitField()
		v := c.Nodes[c.Gen.Home(table, key)].store.Table(table).Get(key, field)
		c.Sw.WriteRegister(s.Stage, s.Array, s.Index, v)
		ad.promoted++
	}
	c.Layout, c.HotIdx, c.HotLabel = d.layout, d.idx, d.label
	ad.delta = nil
	ad.migrations++

	remaining := len(ad.allNodes)
	c.Net.SwitchMulticastTo(ad.allNodes, func(int) {
		remaining--
		if remaining == 0 {
			ad.lift()
		}
	})
}

// lift drops the fence, resumes every parked execution and schedules the
// next re-detection.
func (ad *adaptiveState) lift() {
	ad.fencing = false
	ad.deltaKeys = nil
	ws := ad.waiters
	ad.waiters = ad.spare[:0]
	for i := range ws {
		w := ws[i]
		ws[i] = gateWaiter{}
		ad.exec(w.eng, w.n, w.txn, w.k)
	}
	ad.spare = ws[:0]
	ad.rearm()
}
