package engine

import (
	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func init() { Register(chillerEngine{}) }

// chillerEngine is the contention-centric baseline of Figure 18b: outer
// (cold) operations run first under plain 2PL; after the prepare round,
// the hot operations execute in a short inner region whose locks are
// released immediately — before the final commit round — shrinking the
// hold time on contended tuples.
type chillerEngine struct{}

func (chillerEngine) Name() string  { return "chiller" }
func (chillerEngine) Label() string { return "Chiller" }

// ForcedScheme pins 2PL: the inner-region reordering is defined in terms
// of lock hold times, so the configured scheme does not apply.
func (chillerEngine) ForcedScheme() string { return Scheme2PL }

func (chillerEngine) Prepare(ctx *Context) error { return nil }

func (chillerEngine) Execute(ctx *Context, n *Node, txn *workload.Txn, k func(Class, error)) {
	ctx.execChillerK(n, txn, func(err error) { k(ClassCold, err) })
}

// execChillerK runs one transaction with the hot operations reordered
// into a late, early-released inner region.
func (c *Context) execChillerK(n *Node, txn *workload.Txn, k func(error)) {
	// Chiller reorders hot operations behind cold ones; dependencies that
	// cross the regions cannot be reordered, so such transactions run as
	// plain 2PL (the scheme's own fallback).
	if crossTemperatureDeps(txn, func(op workload.Op) bool { return c.IsHotTuple(op) }) {
		c.execColdK(n, txn, k)
		return
	}
	at := c.newAttempt()
	t0 := c.Env.Now()
	c.Env.After(c.Costs.TxnOverhead, func() {
		c.charge(n, metrics.TxnEngine, t0)

		var outer, inner []workload.Op
		for _, op := range txn.Ops {
			if c.IsHotTuple(op) {
				inner = append(inner, op)
			} else {
				outer = append(outer, op)
			}
		}
		c.execOpsK(n, at, outer, func(err error) {
			if err != nil {
				k(err)
				return
			}
			remotes := at.remoteNodes(n.id)
			coord := c.coordOf(n)
			parts := c.coldParticipants(at, remotes)

			// The inner region runs once the outer prepare round (if any)
			// voted yes: lock, apply and immediately release the hot
			// tuples, then the final commit round for the outer part.
			finish := func() {
				// Early release of the contended inner locks.
				c.releaseInner(n, at)
				seal := func() {
					t2 := c.Env.Now()
					c.Env.After(c.Costs.LogAppend, func() {
						n.log.AppendCold(at.ts, at.writes)
						at.writes = nil
						n.locks.ReleaseAll(at.lockTxn(n.id))
						c.charge(n, metrics.TxnEngine, t2)
						k(nil)
					})
				}
				if len(parts) > 0 {
					coord.FinishK(parts, true, seal)
				} else {
					seal()
				}
			}
			ii := 0
			var innerStep func()
			failInner := func(lerr error) {
				c.releaseInner(n, at)
				c.abort(n, at)
				if len(parts) > 0 {
					coord.FinishK(parts, false, func() { k(lerr) })
					return
				}
				k(lerr)
			}
			innerStep = func() {
				if ii >= len(inner) {
					finish()
					return
				}
				op := inner[ii]
				ii++
				tl := c.Env.Now()
				if op.Home == n.id {
					c.Env.After(c.Costs.LockOp, func() {
						n.locks.AcquireK(at.innerTxn(n.id), lock.Key(op.LockKey()), lockMode(op), func(lerr error) {
							if lerr != nil {
								c.charge(n, metrics.LockAcquisition, tl)
								failInner(lerr)
								return
							}
							c.Env.After(c.Costs.LocalAccess, func() {
								c.applyOp(at, n.id, op)
								c.charge(n, metrics.LockAcquisition, tl)
								innerStep()
							})
						})
					})
					return
				}
				var lerr error
				c.Net.RPCK(n.id, op.Home, func(done func()) {
					c.Env.After(c.Costs.LockOp, func() {
						c.Nodes[op.Home].locks.AcquireK(at.innerTxn(op.Home), lock.Key(op.LockKey()), lockMode(op), func(err error) {
							lerr = err
							if err != nil {
								done()
								return
							}
							c.Env.After(c.Costs.LocalAccess, func() {
								c.applyOp(at, op.Home, op)
								done()
							})
						})
					})
				}, func() {
					c.charge(n, metrics.RemoteAccess, tl)
					if lerr != nil {
						failInner(lerr)
						return
					}
					innerStep()
				})
			}
			if len(parts) > 0 {
				coord.PrepareK(parts, func(ok bool) {
					if !ok {
						c.abort(n, at)
						k(lock.ErrConflict)
						return
					}
					innerStep()
				})
				return
			}
			innerStep()
		})
	})
}

// releaseInner releases the Chiller inner-region locks (locally at once,
// remotely via one-way messages).
func (c *Context) releaseInner(n *Node, at *attempt) {
	for id, lt := range at.inner {
		if id == n.id {
			c.Nodes[id].locks.ReleaseAll(lt)
			continue
		}
		id, lt := id, lt
		c.Net.Send(n.id, id, func() { c.Nodes[id].locks.ReleaseAll(lt) })
	}
	at.inner = nil
}
