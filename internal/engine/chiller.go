package engine

import (
	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/twopc"
	"repro/internal/workload"
)

func init() { Register(chillerEngine{}) }

// chillerEngine is the contention-centric baseline of Figure 18b: outer
// (cold) operations run first under plain 2PL; after the prepare round,
// the hot operations execute in a short inner region whose locks are
// released immediately — before the final commit round — shrinking the
// hold time on contended tuples.
type chillerEngine struct{}

func (chillerEngine) Name() string  { return "chiller" }
func (chillerEngine) Label() string { return "Chiller" }

// ForcedScheme pins 2PL: the inner-region reordering is defined in terms
// of lock hold times, so the configured scheme does not apply.
func (chillerEngine) ForcedScheme() string { return Scheme2PL }

func (chillerEngine) Prepare(ctx *Context) error { return nil }

func (chillerEngine) Execute(ctx *Context, p *sim.Proc, n *Node, txn *workload.Txn) (Class, error) {
	return ClassCold, ctx.execChiller(p, n, txn)
}

// execChiller runs one transaction with the hot operations reordered into
// a late, early-released inner region.
func (c *Context) execChiller(p *sim.Proc, n *Node, txn *workload.Txn) error {
	// Chiller reorders hot operations behind cold ones; dependencies that
	// cross the regions cannot be reordered, so such transactions run as
	// plain 2PL (the scheme's own fallback).
	if crossTemperatureDeps(txn, func(op workload.Op) bool { return c.IsHotTuple(op) }) {
		return c.execCold(p, n, txn)
	}
	at := c.newAttempt()
	t0 := p.Now()
	p.Sleep(c.Costs.TxnOverhead)
	c.charge(n, metrics.TxnEngine, t0)

	var outer, inner []workload.Op
	for _, op := range txn.Ops {
		if c.IsHotTuple(op) {
			inner = append(inner, op)
		} else {
			outer = append(outer, op)
		}
	}
	if err := c.execOps(p, n, at, outer); err != nil {
		return err
	}
	remotes := at.remoteNodes(n.id)
	coord := twopc.NewCoordinator(c.Net, n.id)
	parts := c.coldParticipants(at, remotes)
	if len(parts) > 0 && !coord.Prepare(p, parts) {
		c.abort(p, n, at)
		return lock.ErrConflict
	}
	// Inner region: lock, apply and immediately release the hot tuples.
	for _, op := range inner {
		tl := p.Now()
		var lerr error
		op := op
		if op.Home == n.id {
			p.Sleep(c.Costs.LockOp)
			lerr = n.locks.Acquire(p, at.innerTxn(n.id), lock.Key(op.LockKey()), lockMode(op))
			if lerr == nil {
				p.Sleep(c.Costs.LocalAccess)
				c.applyOp(at, n.id, op)
			}
			c.charge(n, metrics.LockAcquisition, tl)
		} else {
			c.Net.RPC(p, n.id, op.Home, func() {
				p.Sleep(c.Costs.LockOp)
				lerr = c.Nodes[op.Home].locks.Acquire(p, at.innerTxn(op.Home), lock.Key(op.LockKey()), lockMode(op))
				if lerr == nil {
					p.Sleep(c.Costs.LocalAccess)
					c.applyOp(at, op.Home, op)
				}
			})
			c.charge(n, metrics.RemoteAccess, tl)
		}
		if lerr != nil {
			c.releaseInner(n, at)
			c.abort(p, n, at)
			if len(parts) > 0 {
				coord.Finish(p, parts, false)
			}
			return lerr
		}
	}
	// Early release of the contended inner locks.
	c.releaseInner(n, at)
	// Final commit round for the outer part.
	if len(parts) > 0 {
		coord.Finish(p, parts, true)
	}
	t2 := p.Now()
	p.Sleep(c.Costs.LogAppend)
	n.log.AppendCold(at.ts, at.writes)
	n.locks.ReleaseAll(at.lockTxn(n.id))
	c.charge(n, metrics.TxnEngine, t2)
	return nil
}

// releaseInner releases the Chiller inner-region locks (locally at once,
// remotely via one-way messages).
func (c *Context) releaseInner(n *Node, at *attempt) {
	for id, lt := range at.inner {
		if id == n.id {
			c.Nodes[id].locks.ReleaseAll(lt)
			continue
		}
		id, lt := id, lt
		c.Net.Send(n.id, id, func() { c.Nodes[id].locks.ReleaseAll(lt) })
	}
	at.inner = nil
}
