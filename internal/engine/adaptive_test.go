package engine

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/workload"
)

// TestAdaptiveRecordZeroAlloc pins the sliding-window statistics update —
// the only adaptive-layout work on the per-attempt hot path — at zero
// heap allocations: epoch rotation, open-addressed counting, collision
// probing and table-full overflow all run against preallocated storage.
// This is what keeps -adaptive's events/sec overhead in the noise (see
// BenchmarkAdaptiveOverhead).
func TestAdaptiveRecordZeroAlloc(t *testing.T) {
	c := &Context{Env: sim.NewEnv(1)}
	ad := &adaptiveState{c: c, epochLen: 50 * sim.Microsecond}
	ad.buckets = [][]winBucket{make([]winBucket, adaptEpochs)}
	for e := range ad.buckets[0] {
		ad.buckets[0][e] = newWinBucket()
	}
	n := &Node{id: 0}

	// Distinct-key and repeat-key transactions cover both record branches
	// (slot claim and count increment); key 1<<20 collides into probing.
	txns := make([]*workload.Txn, 8)
	for i := range txns {
		txns[i] = &workload.Txn{Ops: []workload.Op{
			{Table: 1, Key: 0, Kind: workload.Read, DependsOn: -1},
			{Table: 1, Key: store.Key(1 + (1<<20)*i), Kind: workload.Write, DependsOn: -1},
			{Table: 1, Key: 7, Kind: workload.Write, DependsOn: -1},
		}}
	}
	j := 0
	if avg := testing.AllocsPerRun(1000, func() {
		ad.record(n, txns[j%len(txns)])
		j++
	}); avg != 0 {
		t.Fatalf("window record allocates %.2f objects/op, want 0", avg)
	}

	// Saturate the table: once 3/4 full, fresh keys must drop into the
	// overflow tally without growing anything.
	big := &workload.Txn{Ops: make([]workload.Op, 1)}
	for k := 0; k < 4*adaptBucketSlots; k++ {
		big.Ops[0] = workload.Op{Table: 2, Key: store.Key(k), Kind: workload.Read, DependsOn: -1}
		ad.record(n, big)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		big.Ops[0].Key++
		ad.record(n, big)
	}); avg != 0 {
		t.Fatalf("saturated window record allocates %.2f objects/op, want 0", avg)
	}
}
