package engine

import (
	"testing"

	"repro/internal/pisa"
	"repro/internal/txnwire"
	"repro/internal/workload"
)

func TestCrossTemperatureDeps(t *testing.T) {
	hotByKey := func(hotKey uint64) func(workload.Op) bool {
		return func(op workload.Op) bool { return uint64(op.Key) == hotKey }
	}
	// dep within one temperature: fine.
	txn := &workload.Txn{Ops: []workload.Op{
		{Key: 1, DependsOn: -1},
		{Key: 1, DependsOn: 0},
	}}
	if crossTemperatureDeps(txn, hotByKey(1)) {
		t.Fatal("same-temperature dep flagged")
	}
	// hot op depending on cold op: cross.
	txn2 := &workload.Txn{Ops: []workload.Op{
		{Key: 2, DependsOn: -1},
		{Key: 1, DependsOn: 0},
	}}
	if !crossTemperatureDeps(txn2, hotByKey(1)) {
		t.Fatal("cross-temperature dep not flagged")
	}
	// no deps at all: fine regardless of mix.
	txn3 := &workload.Txn{Ops: []workload.Op{
		{Key: 1, DependsOn: -1},
		{Key: 2, DependsOn: -1},
	}}
	if crossTemperatureDeps(txn3, hotByKey(1)) {
		t.Fatal("independent mixed ops flagged")
	}
}

// instrsAtStages builds two read instructions at the given stages.
func instrsAtStages(a, b uint8) []txnwire.Instr {
	return []txnwire.Instr{
		{Op: txnwire.OpRead, Stage: a},
		{Op: txnwire.OpRead, Stage: b},
	}
}

func TestSwitchLocksForMirrorsPisa(t *testing.T) {
	cfg := pisa.DefaultConfig()
	// Low-half instruction -> left lock only.
	l, r := switchLocksFor(cfg, instrsAtStages(0, 2))
	if !l || r {
		t.Fatalf("low half: left=%v right=%v", l, r)
	}
	// High-half instruction -> right lock only.
	l, r = switchLocksFor(cfg, instrsAtStages(10, 11))
	if l || !r {
		t.Fatalf("high half: left=%v right=%v", l, r)
	}
	// Spanning -> both.
	l, r = switchLocksFor(cfg, instrsAtStages(0, 11))
	if !l || !r {
		t.Fatalf("span: left=%v right=%v", l, r)
	}
	// Coarse locking always takes the single (left) lock.
	coarse := cfg
	coarse.FineLocks = false
	l, r = switchLocksFor(coarse, instrsAtStages(10, 11))
	if !l || r {
		t.Fatalf("coarse: left=%v right=%v", l, r)
	}
}
