package engine

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/txnwire"
	"repro/internal/wal"
	"repro/internal/workload"
)

func init() { Register(p4dbEngine{}) }

// p4dbEngine is P4DB itself (Sections 3, 5 and 6): hot transactions
// compile to one switch packet and execute abort-free in the data plane;
// cold transactions run under the configured host CC scheme (2PL, OCC or
// MVCC); warm transactions execute their cold part first and trigger the
// switch sub-transaction inside the combined Decision&Switch commit phase
// (Figure 10).
type p4dbEngine struct{}

func (p4dbEngine) Name() string  { return "p4db" }
func (p4dbEngine) Label() string { return "P4DB" }

// Prepare offloads the detected hot tuples into the switch registers:
// current tuple values are loaded from their home nodes into the slots the
// declustered layout assigned (the last step of Figure 3).
func (p4dbEngine) Prepare(ctx *Context) error {
	ctx.UseSwitch = true
	for _, tid := range ctx.Layout.Tuples() {
		gk := store.GlobalKey(tid)
		table, field, key := gk.SplitField()
		home := ctx.Gen.Home(table, key)
		v := ctx.Nodes[home].store.Table(table).Get(key, field)
		s, _ := ctx.Layout.SlotOf(tid)
		ctx.Sw.WriteRegister(s.Stage, s.Array, s.Index, v)
	}
	return nil
}

func (p4dbEngine) Execute(ctx *Context, n *Node, txn *workload.Txn, k func(Class, error)) {
	switch ctx.Classify(txn) {
	case ClassHot:
		ctx.ExecHotK(n, txn, func() { k(ClassHot, nil) })
	case ClassWarm:
		ctx.Scheme.ExecWarm(ctx, n, txn, func(err error) { k(ClassWarm, err) })
	default:
		ctx.Scheme.ExecCold(ctx, n, txn, func(err error) { k(ClassCold, err) })
	}
}

// execWarmK executes a warm transaction (Section 6.2) as a continuation
// chain: the cold part runs first under 2PL; once it cannot abort
// anymore, the switch sub-transaction is sent inside the combined
// Decision&Switch phase and participants commit on the switch's
// multicast. Warm transactions are rare enough in the measured sweeps
// that this path uses plain closures rather than a pooled frame.
func (c *Context) execWarmK(n *Node, txn *workload.Txn, k func(error)) {
	// The warm scheme runs all cold operations strictly before the switch
	// sub-transaction, so a dependency that crosses the temperature split
	// (possible when part of a hot pair spilled off the switch, Figure 17)
	// cannot be honoured — those transactions fall back to the fully cold
	// path, like the paper's alternative of keeping such tuples together.
	if crossTemperatureDeps(txn, func(op workload.Op) bool { return c.OnSwitch(op) }) {
		c.execColdK(n, txn, k)
		return
	}
	at := c.newAttempt()
	t0 := c.Env.Now()
	c.Env.After(c.Costs.TxnOverhead, func() {
		c.charge(n, metrics.TxnEngine, t0)

		var coldOps, hotOps []workload.Op
		for _, op := range txn.Ops {
			if c.OnSwitch(op) {
				hotOps = append(hotOps, op)
			} else {
				coldOps = append(coldOps, op)
			}
		}
		c.execOpsK(n, at, coldOps, func(err error) {
			if err != nil {
				k(err)
				return
			}
			pkt, passes := c.compileHot(hotOps, at.ts)
			c.Env.After(c.Costs.LogAppend, func() {
				var rec *wal.SwitchRecord
				if c.Durable {
					rec = n.log.AppendSwitchIntent(at.ts, pkt.Instrs)
				}
				t1 := c.Env.Now()
				remotes := at.remoteNodes(n.id)
				coord := c.coordOf(n)
				coord.CommitWithSwitchK(c.coldParticipants(at, remotes), func(done func()) {
					c.Sw.ExecK(pkt, func(resp *txnwire.Response, xerr error) {
						if xerr != nil {
							panic(fmt.Sprintf("engine: switch rejected warm packet: %v", xerr))
						}
						if rec != nil {
							rec.Complete(resp)
						}
						done()
					})
				}, func(ok bool) {
					if !ok {
						// Cannot happen: participants are already prepared
						// (locks held, constraints checked) and always vote
						// yes.
						panic("engine: prepared warm transaction failed to commit")
					}
					c.charge(n, metrics.SwitchTxn, t1)
					t2 := c.Env.Now()
					c.Env.After(c.Costs.LogAppend, func() {
						n.log.AppendCold(at.ts, at.writes)
						at.writes = nil
						n.locks.ReleaseAll(at.lockTxn(n.id))
						c.charge(n, metrics.TxnEngine, t2)
						if c.measuring {
							if passes > 1 {
								n.counters.MultiPass++
							} else {
								n.counters.SinglePass++
							}
						}
						// The multicast commit handlers of remote
						// participants may still be in flight at this
						// point, so distributed warm attempts are not
						// recycled.
						if len(remotes) == 0 {
							c.releaseAttempt(at)
						}
						k(nil)
					})
				})
			})
		})
	})
}
