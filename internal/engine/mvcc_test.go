package engine

import (
	"errors"
	"testing"

	"repro/internal/lock"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/twopc"
	"repro/internal/workload"
)

// newMVCCTestContext assembles the minimal substrate the MVCC paths need —
// environment, network, nodes with one single-field table — without a full
// core cluster.
func newMVCCTestContext(nodes int) (*Context, *sim.Env) {
	env := sim.NewEnv(1)
	sch, err := LookupScheme(SchemeMVCC)
	if err != nil {
		panic(err)
	}
	ctx := &Context{
		Env:    env,
		Net:    netsim.New(env, nodes, netsim.DefaultLatency()),
		Costs:  DefaultCosts(),
		Scheme: sch,
	}
	for i := 0; i < nodes; i++ {
		n := NewNode(netsim.NodeID(i), env, lock.NoWait, sch)
		n.Store().CreateTable(0, "t", 1)
		ctx.Nodes = append(ctx.Nodes, n)
	}
	sch.Init(ctx)
	return ctx, env
}

// mvccOp builds a single-op transaction on key of node home.
func mvccOp(home netsim.NodeID, key store.Key, kind workload.OpKind, v int64) *workload.Txn {
	return &workload.Txn{Label: "t", Ops: []workload.Op{{
		Table: 0, Key: key, Field: 0, Home: home, Kind: kind, Value: v, DependsOn: -1,
	}}}
}

// TestMVCCSnapshotVisibility: a transaction begun before a concurrent
// commit keeps reading the pre-commit value; a transaction begun after
// sees the new one.
func TestMVCCSnapshotVisibility(t *testing.T) {
	ctx, env := newMVCCTestContext(1)
	n := ctx.Nodes[0]
	n.Store().Table(0).Set(5, 0, 10)

	readOp := workload.Op{Table: 0, Key: 5, Field: 0, Home: 0, Kind: workload.Read, DependsOn: -1}
	var before, after int64
	var commitErr error
	env.Spawn("driver", func(p *sim.Proc) {
		reader := ctx.newMVCCAttempt() // snapshot taken before the write
		commitErr = ctx.execOptimisticTxn(p, n, mvccOp(0, 5, workload.Write, 20), ctx.newMVCCAttempt())
		before = reader.view(n, readOp)
		reader.readDone(ctx)
		late := ctx.newMVCCAttempt()
		after = late.view(n, readOp)
		late.readDone(ctx)
	})
	env.Run()
	if commitErr != nil {
		t.Fatalf("uncontended write aborted: %v", commitErr)
	}
	if before != 10 {
		t.Fatalf("old snapshot read %d, want the pre-commit value 10", before)
	}
	if after != 20 {
		t.Fatalf("new snapshot read %d, want the committed value 20", after)
	}
	if got := n.Store().Table(0).Get(5, 0); got != 20 {
		t.Fatalf("store materialized %d, want 20", got)
	}
}

// TestMVCCWriteWriteConflictAborts: two concurrent writers of the same row
// race first-committer-wins validation; exactly one commits and the loser
// aborts with a lock.ErrAbort-compatible error.
func TestMVCCWriteWriteConflictAborts(t *testing.T) {
	ctx, env := newMVCCTestContext(1)
	n := ctx.Nodes[0]

	var errs [2]error
	for i := 0; i < 2; i++ {
		i := i
		env.Spawn("writer", func(p *sim.Proc) {
			errs[i] = ctx.execOptimisticTxn(p, n, mvccOp(0, 7, workload.Add, 1), ctx.newMVCCAttempt())
		})
	}
	env.Run()
	committed, aborted := 0, 0
	for _, err := range errs {
		switch {
		case err == nil:
			committed++
		case errors.Is(err, lock.ErrAbort) && errors.Is(err, ErrWriteConflict):
			aborted++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if committed != 1 || aborted != 1 {
		t.Fatalf("committed=%d aborted=%d, want exactly one of each", committed, aborted)
	}
	// First committer wins: exactly one increment landed.
	if got := n.Store().Table(0).Get(7, 0); got != 1 {
		t.Fatalf("row value %d, want 1", got)
	}
	if n.MVCCPinsHeld() != 0 {
		t.Fatalf("%d pins leaked", n.MVCCPinsHeld())
	}
	// White-box re-check of the validation predicate: a write buffered
	// against a stale snapshot must fail first-committer-wins validation.
	stale := ctx.newMVCCAttempt()
	stale.readDone(ctx)
	stale.ts = 1 // pretend it began before everything committed
	stale.buffer(n, workload.Op{Table: 0, Key: 7, Field: 0, Home: 0, Kind: workload.Add, Value: 1, DependsOn: -1}, 1)
	if stale.validateAndPin(n) {
		t.Fatal("validation accepted a write over a row committed after the snapshot")
	}
}

// TestMVCCVersionGCBelowWatermark: with no live snapshots chains prune to
// the newest version on every commit; a live old snapshot retains the
// versions it may read, and retiring it lets the next commit reclaim them.
func TestMVCCVersionGCBelowWatermark(t *testing.T) {
	ctx, env := newMVCCTestContext(1)
	n := ctx.Nodes[0]

	var serial, retained, reclaimed int
	env.Spawn("driver", func(p *sim.Proc) {
		commit := func() {
			if err := ctx.execOptimisticTxn(p, n, mvccOp(0, 3, workload.Add, 1), ctx.newMVCCAttempt()); err != nil {
				t.Errorf("serial commit aborted: %v", err)
			}
		}
		for i := 0; i < 20; i++ {
			commit()
		}
		serial = n.MVCCVersionsStored()

		old := ctx.newMVCCAttempt() // hold the watermark back
		for i := 0; i < 10; i++ {
			commit()
		}
		retained = n.MVCCVersionsStored()
		old.readDone(ctx)
		commit() // first commit past the retired snapshot prunes
		reclaimed = n.MVCCVersionsStored()
	})
	env.Run()
	if serial > 1 {
		t.Fatalf("serial history kept %d versions, want the chain pruned to 1", serial)
	}
	if retained < 10 {
		t.Fatalf("live snapshot retained only %d versions, want >= 10", retained)
	}
	if reclaimed > 1 {
		t.Fatalf("retiring the snapshot left %d versions, want 1", reclaimed)
	}
}

// TestMVCCLostUpdateWindow: a distributed commit draws its stamp before
// the 2PC decision installs the writes. A transaction that begins inside
// that window holds a numerically newer snapshot yet reads the older row
// state; if it then increments the row, stamp-order validation alone would
// let it overwrite the in-flight commit. Sweep the second writer's begin
// time across the whole window (every microsecond) and require that the
// row always ends up equal to the number of committed increments — a lost
// update shows as two commits but one increment.
func TestMVCCLostUpdateWindow(t *testing.T) {
	for offset := sim.Time(0); offset < 40*sim.Microsecond; offset += sim.Microsecond {
		ctx, env := newMVCCTestContext(2)
		coordN, homeN := ctx.Nodes[0], ctx.Nodes[1]
		var errW, errR error
		env.Spawn("distributed-writer", func(p *sim.Proc) {
			errW = ctx.execOptimisticTxn(p, coordN, mvccOp(1, 11, workload.Add, 1), ctx.newMVCCAttempt())
		})
		env.Spawn("local-writer", func(p *sim.Proc) {
			p.Sleep(offset)
			// Read-increment row 11 first, then pad with remote reads so
			// validation lands after the distributed writer's install.
			txn := &workload.Txn{Label: "t", Ops: []workload.Op{
				{Table: 0, Key: 11, Field: 0, Home: 1, Kind: workload.Add, Value: 1, DependsOn: -1},
				{Table: 0, Key: 21, Field: 0, Home: 0, Kind: workload.Read, DependsOn: -1},
				{Table: 0, Key: 22, Field: 0, Home: 0, Kind: workload.Read, DependsOn: -1},
				{Table: 0, Key: 23, Field: 0, Home: 0, Kind: workload.Read, DependsOn: -1},
			}}
			errR = ctx.execOptimisticTxn(p, homeN, txn, ctx.newMVCCAttempt())
		})
		env.Run()
		committed := int64(0)
		for _, err := range []error{errW, errR} {
			if err == nil {
				committed++
			} else if !errors.Is(err, lock.ErrAbort) {
				t.Fatalf("offset %v: unexpected error %v", offset, err)
			}
		}
		if committed == 0 {
			t.Fatalf("offset %v: both writers aborted", offset)
		}
		if got := homeN.Store().Table(0).Get(11, 0); got != committed {
			t.Fatalf("offset %v: %d commits but row holds %d — lost update", offset, committed, got)
		}
	}
}

// TestMVCCDistributedWriteConflict: a remote participant whose validation
// fails vetoes the 2PC round and the transaction aborts everywhere.
func TestMVCCDistributedWriteConflict(t *testing.T) {
	ctx, env := newMVCCTestContext(2)
	local, remote := ctx.Nodes[0], ctx.Nodes[1]

	var raced, winner error
	env.Spawn("distributed", func(p *sim.Proc) {
		// The distributed writer reads its snapshot of the remote row,
		// then a same-node writer on the remote node commits first.
		at := ctx.newMVCCAttempt()
		defer at.readDone(ctx)
		txn := mvccOp(1, 9, workload.Add, 1)
		ctx.execOptimisticOps(p, local, at, txn.Ops)
		winner = ctx.execOptimisticTxn(p, remote, mvccOp(1, 9, workload.Add, 1), ctx.newMVCCAttempt())
		if !at.validateAndPin(local) {
			t.Error("local validation failed with no local writes")
		}
		at.sealed(ctx)
		coord := twopc.NewCoordinator(ctx.Net, local.ID())
		if coord.Commit(p, ctx.optimisticParticipants(at, at.remoteNodes(local.ID()))) {
			raced = nil
		} else {
			ctx.abortOptimistic(local, at)
			raced = ErrWriteConflict
		}
	})
	env.Run()
	if winner != nil {
		t.Fatalf("remote writer aborted: %v", winner)
	}
	if raced == nil {
		t.Fatal("distributed writer committed despite losing first-committer-wins remotely")
	}
	if got := remote.Store().Table(0).Get(9, 0); got != 1 {
		t.Fatalf("remote row %d, want 1 (only the winner's write)", got)
	}
	if remote.MVCCPinsHeld() != 0 || local.MVCCPinsHeld() != 0 {
		t.Fatal("pins leaked after distributed abort")
	}
}
