package engine

import (
	"repro/internal/hotset"
	"repro/internal/layout"
	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/pisa"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/twopc"
	"repro/internal/wal"
	"repro/internal/workload"
)

// CostModel holds the per-operation CPU costs of a database node on the
// virtual timeline. They are small next to network latencies, as on the
// paper's DPDK testbed.
type CostModel struct {
	// LocalAccess is one tuple read/write in local memory.
	LocalAccess sim.Time
	// LockOp is one lock-table operation (acquire attempt or release).
	LockOp sim.Time
	// LogAppend is one write-ahead-log append.
	LogAppend sim.Time
	// TxnOverhead is the fixed begin/commit bookkeeping per transaction.
	TxnOverhead sim.Time
	// AbortBackoff is the mean randomized backoff before a retry.
	AbortBackoff sim.Time
}

// DefaultCosts returns the calibrated node cost model.
func DefaultCosts() CostModel {
	return CostModel{
		LocalAccess:  200 * sim.Nanosecond,
		LockOp:       100 * sim.Nanosecond,
		LogAppend:    300 * sim.Nanosecond,
		TxnOverhead:  1500 * sim.Nanosecond,
		AbortBackoff: 5 * sim.Microsecond,
	}
}

// Node is one database server: its store partition, lock table, WAL,
// scheme-private CC bookkeeping and measurement state.
type Node struct {
	id    netsim.NodeID
	store *store.Store
	locks *lock.Table
	log   *wal.Log
	cc    NodeState

	counters  metrics.Counters
	breakdown metrics.Breakdown
	latency   metrics.LatencyHist
}

// NewNode builds a node with an empty store, a lock table under the given
// policy, a fresh write-ahead log and the CC bookkeeping of the given
// scheme.
func NewNode(id netsim.NodeID, env *sim.Env, pol lock.Policy, sch Scheme) *Node {
	l := wal.NewLog(int(id))
	// Commit records carry the virtual clock as their LSN so recovery can
	// merge cold records across node logs in decision order.
	l.SetClock(func() uint64 { return uint64(env.Now()) })
	return &Node{
		id:    id,
		store: store.New(),
		locks: lock.NewTable(env, pol),
		log:   l,
		cc:    sch.NewNodeState(),
	}
}

// ID returns the node id.
func (n *Node) ID() netsim.NodeID { return n.id }

// Store exposes the node's storage (examples and tests).
func (n *Node) Store() *store.Store { return n.store }

// Log exposes the node's write-ahead log (recovery).
func (n *Node) Log() *wal.Log { return n.log }

// Locks exposes the node's lock table (crash-recovery verification probes
// it for rows legitimately mid-update at the crash instant).
func (n *Node) Locks() *lock.Table { return n.locks }

// Counters exposes the node's commit/abort counters (result merging).
func (n *Node) Counters() *metrics.Counters { return &n.counters }

// Breakdown exposes the node's latency breakdown (result merging).
func (n *Node) Breakdown() *metrics.Breakdown { return &n.breakdown }

// Latency exposes the node's latency histogram (result merging).
func (n *Node) Latency() *metrics.LatencyHist { return &n.latency }

// OCCVersionsAdvanced counts rows whose OCC version moved past zero —
// i.e. rows that received at least one committed optimistic write
// (diagnostics and tests). Zero when the node runs another scheme.
func (n *Node) OCCVersionsAdvanced() int {
	s, ok := n.cc.(*occState)
	if !ok {
		return 0
	}
	bumped := 0
	for _, v := range s.versions {
		if v > 0 {
			bumped++
		}
	}
	return bumped
}

// OCCPinsHeld counts rows currently pinned by validating transactions
// (diagnostics and tests). Zero when the node runs another scheme.
func (n *Node) OCCPinsHeld() int {
	if s, ok := n.cc.(*occState); ok {
		return len(s.pins)
	}
	return 0
}

// Context is the shared substrate every engine composes: the simulated
// cluster hardware (nodes, network, switch), the workload, the hot-set
// artifacts of the offline preparation step, and the bookkeeping all
// strategies share (timestamps, measurement gating). internal/core builds
// one Context per cluster and passes it to every Engine call.
type Context struct {
	Env   *sim.Env
	Net   *netsim.Network
	Sw    *pisa.Switch
	Gen   workload.Generator
	Nodes []*Node

	Costs CostModel
	// Scheme is the resolved host-DBMS concurrency-control family the
	// cluster runs under (see ResolveScheme); engines route their warm
	// and cold paths through it.
	Scheme    Scheme
	Policy    lock.Policy
	SwitchCfg pisa.Config

	// SchemeData is scheme-owned cluster-wide state installed by
	// Scheme.Init (the MVCC snapshot tracker); nil for stateless schemes.
	SchemeData interface{}

	// EngineData is engine-owned cluster-wide state installed by the
	// engine's Prepare (the calvin sequencer); nil for stateless engines.
	EngineData interface{}

	// BatchSize is the deterministic-sequencer batch bound threaded from
	// core.Config.BatchSize; 0 selects the engine's default. Only engines
	// that order transactions before execution (calvin) read it.
	BatchSize int

	// Hot-set artifacts of the offline preparation step (Figure 3).
	Layout   *layout.Layout
	HotIdx   *hotset.Index
	HotLabel map[store.GlobalKey]bool

	// UseSwitch is set by the P4DB engine's Prepare once the hot tuples
	// are offloaded into the switch registers; only then does OnSwitch
	// route operations to the data plane.
	UseSwitch bool
	// Durable turns on write-ahead logging (Section 6.1): switch intents
	// are retained before the packet is sent and back-filled with the
	// response's GID, and cold commit paths retain their redo records at
	// the 2PC decision point. Every commit path already waits out its
	// LogAppend delays unconditionally — Durable gates only the retention
	// of record data — so a run's event schedule (and its golden digest)
	// is bit-identical whether logging is on or off, and the off path
	// allocates nothing for records it will never keep.
	Durable bool
	// LMLocks is the in-switch central lock manager of the LM-Switch
	// baseline, reachable at half an RTT (set by its Prepare).
	LMLocks *lock.Table

	nextTS    uint64
	measuring bool

	// Free lists for the hot-path state machines (attempt.go, switch.go):
	// steady-state execution recycles attempts, lock contexts and
	// continuation frames instead of allocating. A single worker drives
	// each simulation shard, so the pools need no synchronization.
	freeAttempts   []*attempt
	freeOpsFrames  []*opsFrame
	freeColdFrames []*coldFrame
	freeHotFrames  []*hotFrame
	freeSubmits    []*submitSM

	// freeClassAdapters recycles the k(error) -> k(Class, error) bridges
	// (submit.go) used by engines whose Execute is a straight scheme call.
	freeClassAdapters []*classAdapter

	// Serving-mode submission accounting (submit.go): kept here rather
	// than in the caller so Submit's completion path stays allocation-free
	// (no per-call wrapper closure around the caller's callback).
	submitsInflight int
	submitsDone     int64

	// coords caches one 2PC coordinator per node; the per-commit Stats of
	// the old throwaway coordinators were never read, so sharing is safe.
	coords []*twopc.Coordinator

	// ad is the online adaptive layout controller (adaptive.go), nil for
	// static-layout clusters. Every hot-path touchpoint is a single nil
	// check, so the static schedule — and its golden digest — is
	// untouched.
	ad *adaptiveState
}

// coordOf returns the cached 2PC coordinator for node n.
func (c *Context) coordOf(n *Node) *twopc.Coordinator {
	if c.coords == nil {
		c.coords = make([]*twopc.Coordinator, len(c.Nodes))
	}
	if co := c.coords[n.id]; co != nil {
		return co
	}
	co := twopc.NewCoordinator(c.Net, n.id)
	c.coords[n.id] = co
	return co
}

// issueTS hands out the next cluster-unique timestamp. The paper assigns
// transaction timestamps at start; MVCC additionally draws commit stamps
// from the same clock so snapshot and commit order share one timeline.
func (c *Context) issueTS() uint64 {
	c.nextTS++
	return c.nextTS
}

// SetMeasuring gates statistics collection: only virtual time spent inside
// the measurement window is charged to counters and histograms.
func (c *Context) SetMeasuring(on bool) { c.measuring = on }

// OnSwitch reports whether an operation's tuple lives on the switch.
func (c *Context) OnSwitch(op workload.Op) bool {
	return c.UseSwitch && c.HotIdx.OnSwitch(op.TupleKey())
}

// IsHotTuple reports whether the tuple was classified hot by detection
// (independent of whether it fits on the switch); baselines use this for
// LM-Switch lock placement and Chiller's inner region.
func (c *Context) IsHotTuple(op workload.Op) bool {
	return c.HotLabel[op.TupleKey()]
}

// TxnOnHotSet reports whether every operation touches detected-hot tuples.
func (c *Context) TxnOnHotSet(txn *workload.Txn) bool {
	for _, op := range txn.Ops {
		if !c.IsHotTuple(op) {
			return false
		}
	}
	return true
}

// Classify assigns the P4DB transaction class (Section 3.2): hot = all
// tuples on the switch, cold = none, warm = mixed.
func (c *Context) Classify(txn *workload.Txn) Class {
	hot, cold := 0, 0
	for _, op := range txn.Ops {
		if c.OnSwitch(op) {
			hot++
		} else {
			cold++
		}
	}
	switch {
	case cold == 0 && hot > 0:
		return ClassHot
	case hot == 0:
		return ClassCold
	default:
		return ClassWarm
	}
}

// charge attributes elapsed virtual time to a breakdown component. It runs
// on every operation of every transaction, so it reads the clock straight
// from the environment instead of detouring through the calling process.
func (c *Context) charge(n *Node, comp metrics.Component, since sim.Time) {
	if c.measuring {
		n.breakdown.Add(comp, c.Env.Now()-since)
	}
}

// workerSM is one closed-loop worker as a continuation-driven state
// machine: generate, execute with retries, account, chain to the next
// transaction — all without ever parking a goroutine. A committed
// transaction chains to its successor inline (exactly like the retired
// process loop continued inline after Execute returned), which keeps the
// event-sequence draws identical to the process formulation; the stack
// stays bounded because every engine path begins by scheduling its
// transaction-overhead wait.
type workerSM struct {
	c        *Context
	eng      Engine
	n        *Node
	rng      *sim.RNG
	txn      *workload.Txn
	start    sim.Time
	attempts int

	beginFn func()
	retryFn func()
	doneFn  func(Class, error)
}

// StartWorker launches one closed-loop worker. It replaces the former
// RunWorker process: the initial After(0, ·) draws the same event the
// worker's Spawn used to, so seeded schedules carry over unchanged. The
// worker runs until the environment stops dispatching events.
func (c *Context) StartWorker(eng Engine, n *Node, rng *sim.RNG) {
	sm := &workerSM{c: c, eng: eng, n: n, rng: rng}
	sm.beginFn = sm.begin
	sm.retryFn = sm.retry
	sm.doneFn = sm.done
	c.Env.After(0, sm.beginFn)
}

// begin starts the next transaction of the closed loop.
func (sm *workerSM) begin() {
	sm.txn = sm.c.Gen.Next(sm.rng, sm.n.id)
	sm.start = sm.c.Env.Now()
	sm.attempts = 0
	if ad := sm.c.ad; ad != nil {
		ad.record(sm.n, sm.txn)
		ad.exec(sm.eng, sm.n, sm.txn, sm.doneFn)
		return
	}
	sm.eng.Execute(sm.c, sm.n, sm.txn, sm.doneFn)
}

// retry re-executes the current transaction after a backoff.
func (sm *workerSM) retry() {
	if ad := sm.c.ad; ad != nil {
		// Retries re-record: the window measures attempted traffic, so a
		// contended tuple's weight grows with the aborts it causes and
		// re-detection promotes the tuples doing damage first.
		ad.record(sm.n, sm.txn)
		ad.exec(sm.eng, sm.n, sm.txn, sm.doneFn)
		return
	}
	sm.eng.Execute(sm.c, sm.n, sm.txn, sm.doneFn)
}

// done receives the outcome of one attempt.
func (sm *workerSM) done(cls Class, err error) {
	c := sm.c
	n := sm.n
	if err != nil {
		if c.measuring {
			n.counters.Aborts++
		}
		// Randomized backoff that grows with consecutive failures,
		// bounded at 8x — standard NO_WAIT retry damping.
		if sm.attempts < 8 {
			sm.attempts++
		}
		backoff := c.Costs.AbortBackoff/2 + sim.Time(sm.rng.Int63n(int64(c.Costs.AbortBackoff)))
		c.Env.After(backoff*sim.Time(sm.attempts), sm.retryFn)
		return
	}
	c.accountCommit(n, cls, sm.txn, sm.start)
	sm.begin()
}

// accountCommit records one committed transaction: latency, breakdown and
// the per-class commit counter. Shared by the closed-loop worker and the
// serving-mode submit path so both report identically.
func (c *Context) accountCommit(n *Node, cls Class, txn *workload.Txn, start sim.Time) {
	if !c.measuring {
		return
	}
	n.latency.Record(c.Env.Now() - start)
	n.breakdown.AddTxn()
	switch cls {
	case ClassHot:
		n.counters.CommittedHot++
	case ClassWarm:
		n.counters.CommittedWarm++
	default:
		// In the baselines a transaction on hot tuples still
		// counts as a hot transaction for the Figure 12
		// breakdown, even though it executes on the nodes.
		if c.TxnOnHotSet(txn) {
			n.counters.CommittedHot++
		} else {
			n.counters.CommittedCold++
		}
	}
}

// runK drives a callback state machine to completion from a process:
// start launches the machine with a completion callback, and the process
// parks until it fires. It is the bridge tests and examples use to call
// the continuation-form engine paths from straight-line code.
func runK(p *sim.Proc, start func(fin func())) {
	done, parked := false, false
	start(func() {
		if parked {
			p.Env().Resume(0, p)
		} else {
			done = true
		}
	})
	if !done {
		parked = true
		p.Park()
	}
}

// ExecuteSync drives one Execute attempt to completion from a process —
// the process-form face of the callback engine API (tests, examples,
// recovery tooling).
func (c *Context) ExecuteSync(p *sim.Proc, eng Engine, n *Node, txn *workload.Txn) (Class, error) {
	var (
		cls Class
		err error
	)
	runK(p, func(fin func()) {
		eng.Execute(c, n, txn, func(cl Class, e error) {
			cls, err = cl, e
			fin()
		})
	})
	return cls, err
}
