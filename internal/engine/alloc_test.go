package engine

import (
	"testing"

	"repro/internal/sim"
)

// TestAttemptPoolRecycleZeroAlloc pins the attempt free-list cycle —
// newAttempt, lockTxn materialization, releaseAttempt — at zero heap
// allocations once the pool is primed. This is the arena-allocation
// invariant of the coroutine-free scheduler core: steady-state cold
// execution must not allocate per-attempt state.
func TestAttemptPoolRecycleZeroAlloc(t *testing.T) {
	c := &Context{Env: sim.NewEnv(1)}
	// Prime the pool: first incarnation allocates the attempt and its
	// lock contexts; every later incarnation must recycle both.
	at := c.newAttempt()
	at.lockTxn(0)
	at.lockTxn(1)
	c.releaseAttempt(at)
	if avg := testing.AllocsPerRun(1000, func() {
		at := c.newAttempt()
		at.lockTxn(0)
		at.lockTxn(1)
		c.releaseAttempt(at)
	}); avg != 0 {
		t.Fatalf("attempt recycle allocates %.2f objects/op, want 0", avg)
	}
}
