package engine

import (
	"testing"

	"repro/internal/lock"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestAttemptPoolRecycleZeroAlloc pins the attempt free-list cycle —
// newAttempt, lockTxn materialization, releaseAttempt — at zero heap
// allocations once the pool is primed. This is the arena-allocation
// invariant of the coroutine-free scheduler core: steady-state cold
// execution must not allocate per-attempt state.
func TestAttemptPoolRecycleZeroAlloc(t *testing.T) {
	c := &Context{Env: sim.NewEnv(1)}
	// Prime the pool: first incarnation allocates the attempt and its
	// lock contexts; every later incarnation must recycle both.
	at := c.newAttempt()
	at.lockTxn(0)
	at.lockTxn(1)
	c.releaseAttempt(at)
	if avg := testing.AllocsPerRun(1000, func() {
		at := c.newAttempt()
		at.lockTxn(0)
		at.lockTxn(1)
		c.releaseAttempt(at)
	}); avg != 0 {
		t.Fatalf("attempt recycle allocates %.2f objects/op, want 0", avg)
	}
}

// TestDurableOffWriteCaptureZeroAlloc pins the durability gate's
// allocation discipline: with Context.Durable off, the write path through
// applyOp retains no redo images and must allocate nothing in steady
// state — durability costs the non-durable configuration zero bytes. The
// durable contrast run must allocate: each commit hands its capture slice
// to the WAL by reference, so every attempt builds a fresh one.
func TestDurableOffWriteCaptureZeroAlloc(t *testing.T) {
	env := sim.NewEnv(1)
	sch, err := LookupScheme(Scheme2PL)
	if err != nil {
		t.Fatal(err)
	}
	n := NewNode(0, env, lock.NoWait, sch)
	tb := n.store.CreateTable(1, "t", 2)
	tb.Set(1, 0, 0)
	c := &Context{Env: env, Nodes: []*Node{n}}
	op := workload.Op{Table: 1, Key: 1, Field: 0, Kind: workload.Add, Value: 1, DependsOn: -1}

	cycle := func() {
		at := c.newAttempt()
		c.applyOp(at, 0, op)
		c.applyOp(at, 0, op)
		c.releaseAttempt(at)
	}
	cycle() // prime the attempt pool and the undo slice capacity
	if avg := testing.AllocsPerRun(1000, cycle); avg != 0 {
		t.Fatalf("Durable-off write path allocates %.2f objects/op, want 0", avg)
	}

	c.Durable = true
	cycle()
	if avg := testing.AllocsPerRun(100, cycle); avg == 0 {
		t.Fatal("Durable-on write path allocated nothing — redo images are not being captured")
	}
}
