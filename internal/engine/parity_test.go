package engine_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/workload"
)

// TestEnginesCommitSameSerialHistory drives an identical, serial sequence
// of SmallBank transactions through every registered engine and asserts
// they all reach the same final database state. With a single driver
// process there is no concurrency, so every engine — 2PL, OCC, central
// locking, regional locking, switch offload — must apply exactly the same
// serial history; any divergence is an isolation or bookkeeping bug in
// that strategy. For P4DB the hot tuples' values live in the switch
// registers, so reads go through the engine's data placement.
func TestEnginesCommitSameSerialHistory(t *testing.T) {
	const (
		nodes = 2
		txns  = 300
	)
	finalState := func(name string) map[store.GlobalKey]int64 {
		cfg := core.DefaultConfig()
		cfg.Engine = name
		cfg.Nodes = nodes
		cfg.WorkersPerNode = 1
		cfg.SampleTxns = 4000
		cfg.Switch.SlotsPerArray = 64
		sbc := workload.DefaultSmallBank(nodes, 3)
		sbc.AccountsPerNode = 100
		sbc.DistPct = 50 // exercise the remote-access and 2PC paths
		gen := workload.NewSmallBank(sbc)
		c := core.NewCluster(cfg, gen)
		defer c.Env().Shutdown()

		ctx := c.EngineContext()
		eng := c.Engine()
		var driveErr error
		c.Env().Spawn("driver", func(p *sim.Proc) {
			rng := sim.NewRNG(7)
			for k := 0; k < txns; k++ {
				txn := gen.Next(rng, c.Node(0).ID())
				if _, err := eng.Execute(ctx, p, c.Node(0), txn); err != nil {
					// Serial execution cannot conflict; a single retry
					// would mask a real strategy bug, so fail instead.
					driveErr = fmt.Errorf("%s: txn %d aborted: %w", name, k, err)
					return
				}
			}
		})
		c.Env().Run()
		if driveErr != nil {
			t.Fatal(driveErr)
		}

		state := make(map[store.GlobalKey]int64)
		for i := 0; i < nodes; i++ {
			st := c.Node(i).Store()
			for _, tb := range []store.TableID{workload.SBChecking, workload.SBSavings} {
				for _, k := range st.Table(tb).Keys() {
					gk := store.GlobalField(tb, 0, k)
					if ctx.UseSwitch && c.HotIndex().OnSwitch(gk) {
						continue // read through the switch below
					}
					state[gk] = st.Table(tb).Get(k, 0)
				}
			}
		}
		if ctx.UseSwitch {
			for _, tid := range c.Layout().Tuples() {
				s, _ := c.Layout().SlotOf(tid)
				state[store.GlobalKey(tid)] = c.Switch().ReadRegister(s.Stage, s.Array, s.Index)
			}
		}
		return state
	}

	names := engine.Names()
	ref := finalState(names[0])
	if len(ref) == 0 {
		t.Fatal("reference engine produced an empty state")
	}
	for _, name := range names[1:] {
		got := finalState(name)
		if len(got) != len(ref) {
			t.Fatalf("%s tracked %d tuples, %s tracked %d", name, len(got), names[0], len(ref))
		}
		for gk, want := range ref {
			if got[gk] != want {
				table, field, key := gk.SplitField()
				t.Fatalf("engines %s and %s diverge at table %d key %d field %d: %d vs %d",
					names[0], name, table, key, field, want, got[gk])
			}
		}
	}
}
