package engine_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/workload"
)

// TestEngineSchemeGridSerialParity drives an identical, serial sequence
// of SmallBank transactions through the full engine x scheme grid and
// asserts every pairing reaches the same final database state. With a
// single driver process there is no concurrency, so every combination —
// 2PL, OCC or MVCC under every execution strategy — must apply exactly
// the same serial history; any divergence is an isolation or bookkeeping
// bug in that strategy or scheme. For P4DB the hot tuples' values live in
// the switch registers, so reads go through the engine's data placement.
// Scheme-pinned engines (lmswitch, chiller, occ) resolve several grid
// cells to the same effective pairing; those are run once.
func TestEngineSchemeGridSerialParity(t *testing.T) {
	const (
		nodes = 2
		txns  = 300
	)
	finalState := func(name, scheme string) map[store.GlobalKey]int64 {
		cfg := core.DefaultConfig()
		cfg.Engine = name
		cfg.Scheme = scheme
		cfg.Nodes = nodes
		cfg.WorkersPerNode = 1
		cfg.SampleTxns = 4000
		cfg.Switch.SlotsPerArray = 64
		sbc := workload.DefaultSmallBank(nodes, 3)
		sbc.AccountsPerNode = 100
		sbc.DistPct = 50 // exercise the remote-access and 2PC paths
		gen := workload.NewSmallBank(sbc)
		c := core.NewCluster(cfg, gen)
		defer c.Env().Shutdown()

		ctx := c.EngineContext()
		eng := c.Engine()
		var driveErr error
		c.Env().Spawn("driver", func(p *sim.Proc) {
			rng := sim.NewRNG(7)
			for k := 0; k < txns; k++ {
				txn := gen.Next(rng, c.Node(0).ID())
				if _, err := ctx.ExecuteSync(p, eng, c.Node(0), txn); err != nil {
					// Serial execution cannot conflict; a single retry
					// would mask a real strategy bug, so fail instead.
					driveErr = fmt.Errorf("%s/%s: txn %d aborted: %w", name, scheme, k, err)
					return
				}
			}
		})
		c.Env().Run()
		if driveErr != nil {
			t.Fatal(driveErr)
		}

		state := make(map[store.GlobalKey]int64)
		for i := 0; i < nodes; i++ {
			st := c.Node(i).Store()
			for _, tb := range []store.TableID{workload.SBChecking, workload.SBSavings} {
				for _, k := range st.Table(tb).Keys() {
					gk := store.GlobalField(tb, 0, k)
					if ctx.UseSwitch && c.HotIndex().OnSwitch(gk) {
						continue // read through the switch below
					}
					state[gk] = st.Table(tb).Get(k, 0)
				}
			}
		}
		if ctx.UseSwitch {
			for _, tid := range c.Layout().Tuples() {
				s, _ := c.Layout().SlotOf(tid)
				state[store.GlobalKey(tid)] = c.Switch().ReadRegister(s.Stage, s.Array, s.Index)
			}
		}
		return state
	}

	type pair struct{ engine, scheme string }
	// Enumerate the grid, deduplicating cells that resolve to the same
	// effective pairing (scheme-pinned engines).
	var grid []pair
	seen := make(map[pair]bool)
	for _, name := range engine.Names() {
		e, err := engine.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, scheme := range engine.SchemeNames() {
			sch, err := engine.ResolveScheme(e, scheme)
			if err != nil {
				t.Fatalf("ResolveScheme(%s, %s): %v", name, scheme, err)
			}
			eff := pair{name, sch.Name()}
			if seen[eff] {
				continue
			}
			seen[eff] = true
			grid = append(grid, eff)
		}
	}
	// noswitch and p4db run under all three schemes; lmswitch, chiller,
	// occ and calvin pin theirs — 10 effective pairings.
	if len(grid) < 10 {
		t.Fatalf("grid has only %d effective pairings: %v", len(grid), grid)
	}
	hasCalvin := false
	for _, pr := range grid {
		if pr.engine == "calvin" {
			hasCalvin = true
		}
	}
	if !hasCalvin {
		t.Fatal("deterministic engine missing from the parity grid")
	}

	refPair := grid[0]
	ref := finalState(refPair.engine, refPair.scheme)
	if len(ref) == 0 {
		t.Fatal("reference pairing produced an empty state")
	}
	for _, pr := range grid[1:] {
		got := finalState(pr.engine, pr.scheme)
		if len(got) != len(ref) {
			t.Fatalf("%s/%s tracked %d tuples, %s/%s tracked %d",
				pr.engine, pr.scheme, len(got), refPair.engine, refPair.scheme, len(ref))
		}
		for gk, want := range ref {
			if got[gk] != want {
				table, field, key := gk.SplitField()
				t.Fatalf("%s/%s and %s/%s diverge at table %d key %d field %d: %d vs %d",
					refPair.engine, refPair.scheme, pr.engine, pr.scheme, table, key, field, want, got[gk])
			}
		}
	}
}
