package engine

import (
	"fmt"

	"repro/internal/lock"
	"repro/internal/netsim"
	"repro/internal/store"
	"repro/internal/workload"
)

// This file implements the third host-DBMS concurrency-control family:
// multi-version concurrency control with snapshot isolation. Transactions
// read the newest committed version at or below their begin timestamp —
// readers never block and never abort writers — and buffer their writes
// privately. At commit, first-committer-wins validation checks every row
// in the write set, pins it, and only then installs the buffered writes.
// The cold 2PC round and the vote-first warm path (Appendix A.4 style:
// cold part validates, then the switch sub-transaction runs inside the
// combined Decision&Switch phase) are the shared optimistic drivers of
// optimistic.go; this file is MVCC's attempt state machine.
//
// A written row passes validation only if (a) no committed write to it
// carries a stamp newer than the snapshot, (b) the row's write stamp still
// equals the one observed when the attempt first read it, and (c) no
// concurrently validating transaction holds its pin. Check (b) exists
// because commit stamps are drawn before the decision round installs the
// writes: a transaction that begins inside that in-flight window holds a
// numerically newer snapshot yet read the older state, so the stamp
// comparison (a) alone would let it overwrite the in-flight commit — a
// lost update. Re-checking the observed stamp under the pin makes every
// read-modify-write of a row linearize. Read-only rows are deliberately
// not validated (snapshot isolation, not serializability): a distributed
// reader may observe an in-flight commit's writes on one node and not yet
// on another during the decision round.
//
// Version chains hang off a per-node version map keyed by the
// field-qualified tuple id; the newest committed value is additionally
// materialized into the store, so recovery, diagnostics and the parity
// tests read the same state they would under 2PL or OCC. Garbage
// collection is watermark-based on the sim timeline: the watermark is the
// oldest begin timestamp among live MVCC transactions, and chains are
// pruned down to the newest version at or below it whenever a commit
// touches them.

func init() { RegisterScheme(mvccScheme{}) }

// mvccScheme is snapshot-read, first-committer-wins MVCC.
type mvccScheme struct{}

func (mvccScheme) Name() string  { return SchemeMVCC }
func (mvccScheme) Label() string { return "MVCC" }

func (mvccScheme) Init(c *Context) {
	c.SchemeData = &mvccCluster{dead: make(map[uint64]struct{}, 64)}
}

func (mvccScheme) NewNodeState() NodeState { return newMVCCState() }

func (mvccScheme) ExecCold(c *Context, n *Node, txn *workload.Txn, k func(error)) {
	c.execOptimisticTxnK(n, txn, c.newMVCCAttempt(), k)
}

func (mvccScheme) ExecWarm(c *Context, n *Node, txn *workload.Txn, k func(error)) {
	c.execOptimisticWarmK(n, txn, func() voteFirst { return c.newMVCCAttempt() }, k)
}

// ErrWriteConflict aborts an MVCC transaction that lost the
// first-committer-wins race on a row of its write set.
var ErrWriteConflict = fmt.Errorf("%w: MVCC first-committer-wins conflict", lock.ErrAbort)

// mvccCluster is the cluster-wide MVCC state: the live-snapshot tracker
// behind the GC watermark. The commit clock rides the Context's shared
// timestamp counter, so snapshots and commit stamps share one timeline.
// Begin timestamps are issued monotonically and are unique per attempt,
// so the live set is a queue: the oldest live snapshot — the watermark —
// is the front, and both begin and end are amortized O(1), keeping GC off
// the per-commit hot path.
type mvccCluster struct {
	queue []uint64            // live begin timestamps in issue order
	dead  map[uint64]struct{} // retired but not yet popped from the queue
	head  int                 // index of the oldest live entry in queue
}

func (mc *mvccCluster) begin(snap uint64) { mc.queue = append(mc.queue, snap) }

func (mc *mvccCluster) end(snap uint64) {
	mc.dead[snap] = struct{}{}
	for mc.head < len(mc.queue) {
		ts := mc.queue[mc.head]
		if _, gone := mc.dead[ts]; !gone {
			break
		}
		delete(mc.dead, ts)
		mc.head++
	}
	switch {
	case mc.head == len(mc.queue):
		mc.queue = mc.queue[:0]
		mc.head = 0
	case mc.head > 64 && mc.head*2 >= len(mc.queue):
		// Reclaim the popped prefix once it dominates the backing array.
		n := copy(mc.queue, mc.queue[mc.head:])
		mc.queue = mc.queue[:n]
		mc.head = 0
	}
}

// watermark returns the oldest live begin timestamp, or now when the
// cluster is idle. No snapshot at or above the watermark can ever need a
// version older than the newest one at or below it.
func (mc *mvccCluster) watermark(now uint64) uint64 {
	if mc.head < len(mc.queue) {
		return mc.queue[mc.head]
	}
	return now
}

// mvccClusterOf returns the cluster-wide MVCC state, failing fast when the
// cluster was built for another scheme.
func mvccClusterOf(c *Context) *mvccCluster {
	mc, ok := c.SchemeData.(*mvccCluster)
	if !ok {
		panic("engine: MVCC execution on a cluster built for another CC scheme")
	}
	return mc
}

// mvccVersion is one committed value of a tuple; ts 0 carries the
// pre-MVCC base value loaded at populate time.
type mvccVersion struct {
	ts  uint64
	val int64
}

// mvccState is a node's MVCC bookkeeping: version chains (newest last),
// the newest committed write stamp per row (the first-committer-wins
// check) and pins (rows claimed between validation and decision).
type mvccState struct {
	chains    map[store.GlobalKey][]mvccVersion
	lastWrite map[lock.Key]uint64
	pins      map[lock.Key]uint64 // row -> pinning transaction ts
}

func newMVCCState() *mvccState {
	return &mvccState{
		chains:    make(map[store.GlobalKey][]mvccVersion),
		lastWrite: make(map[lock.Key]uint64),
		pins:      make(map[lock.Key]uint64),
	}
}

// mvccStateOf returns the node's MVCC bookkeeping, failing fast when the
// node was built for another scheme (a cluster-assembly bug).
func mvccStateOf(n *Node) *mvccState {
	s, ok := n.cc.(*mvccState)
	if !ok {
		panic(fmt.Sprintf("engine: MVCC execution on node %d built for another CC scheme", n.id))
	}
	return s
}

// snapshotRead returns the tuple value visible at snapshot snap: the
// newest chain version at or below it, or the store value for tuples no
// MVCC transaction ever wrote.
func snapshotRead(n *Node, gk store.GlobalKey, snap uint64) int64 {
	if chain, ok := mvccStateOf(n).chains[gk]; ok {
		for i := len(chain) - 1; i >= 0; i-- {
			if chain[i].ts <= snap {
				return chain[i].val
			}
		}
		// Chains are seeded with the ts-0 base value and GC never prunes
		// the newest version at or below the watermark, which is at or
		// below every live snapshot.
		panic(fmt.Sprintf("engine: MVCC chain for %v lost every version visible at %d", gk, snap))
	}
	table, field, key := gk.SplitField()
	return n.store.Table(table).Get(key, field)
}

// MVCCVersionsStored counts the versions currently held in the node's
// chains (diagnostics and the GC tests). Zero when the node runs another
// scheme.
func (n *Node) MVCCVersionsStored() int {
	s, ok := n.cc.(*mvccState)
	if !ok {
		return 0
	}
	total := 0
	for _, chain := range s.chains {
		total += len(chain)
	}
	return total
}

// MVCCLongestChain returns the longest version chain on the node
// (diagnostics and the GC tests): with watermark GC it is bounded by the
// concurrent-snapshot window, not by the run length. Zero when the node
// runs another scheme.
func (n *Node) MVCCLongestChain() int {
	s, ok := n.cc.(*mvccState)
	if !ok {
		return 0
	}
	longest := 0
	for _, chain := range s.chains {
		if len(chain) > longest {
			longest = len(chain)
		}
	}
	return longest
}

// MVCCPinsHeld counts rows currently pinned by validating transactions
// (diagnostics and tests). Zero when the node runs another scheme.
func (n *Node) MVCCPinsHeld() int {
	if s, ok := n.cc.(*mvccState); ok {
		return len(s.pins)
	}
	return 0
}

// mvccAttempt is one snapshot-isolated execution attempt: the shared
// buffered write set plus the snapshot's observed write stamps and the
// commit stamp.
type mvccAttempt struct {
	bufferedAttempt
	commit  uint64                                // commit stamp, issued once validation cannot fail
	readVer map[netsim.NodeID]map[lock.Key]uint64 // row write stamps observed at first read
}

func (c *Context) newMVCCAttempt() *mvccAttempt {
	at := &mvccAttempt{
		bufferedAttempt: newBufferedAttempt(c),
		readVer:         make(map[netsim.NodeID]map[lock.Key]uint64, 2),
	}
	mvccClusterOf(c).begin(at.ts)
	return at
}

// readDone retires the attempt's snapshot, letting the GC watermark
// advance past it: validation and install only touch the overlay and the
// write set, so holding the snapshot through commit would only delay GC —
// including the transaction's own prune of the chains it commits to.
func (at *mvccAttempt) readDone(c *Context) { mvccClusterOf(c).end(at.ts) }

// sealed draws the commit stamp once local validation has passed.
func (at *mvccAttempt) sealed(c *Context) { at.commit = c.issueTS() }

func (at *mvccAttempt) abortErr() error { return ErrWriteConflict }

// trackRead records the row's current committed write stamp the first
// time the attempt observes it — the value validation re-checks.
func (at *mvccAttempt) trackRead(n *Node, row lock.Key) {
	m := at.readVer[n.id]
	if m == nil {
		m = make(map[lock.Key]uint64, 4)
		at.readVer[n.id] = m
	}
	if _, seen := m[row]; !seen {
		m[row] = mvccStateOf(n).lastWrite[row]
	}
}

// view reads a field through the attempt's overlay, falling back to the
// snapshot.
func (at *mvccAttempt) view(n *Node, op workload.Op) int64 {
	if ov := at.overlay[n.id]; ov != nil {
		if v, ok := ov[op.TupleKey()]; ok {
			return v
		}
	}
	at.trackRead(n, lock.Key(op.LockKey()))
	return snapshotRead(n, op.TupleKey(), at.ts)
}

// applyOp runs the shared op interpretation against the attempt's
// snapshot view (view records the observed write stamp).
func (at *mvccAttempt) applyOp(n *Node, op workload.Op) {
	applyBufferedOp(at, n, op)
}

// validateAndPin runs the first-committer-wins check for the attempt's
// write set at node n and pins it there. Reads of rows the attempt does
// not write are not validated — snapshot isolation admits them
// unconditionally. Like its OCC counterpart it must run without
// intervening virtual time.
func (at *mvccAttempt) validateAndPin(n *Node) bool {
	ms := mvccStateOf(n)
	rows := at.wrote[n.id]
	observed := at.readVer[n.id]
	for row := range rows {
		if ms.lastWrite[row] > at.ts {
			return false
		}
		// The stamp observed at read time must still be current: a commit
		// whose stamp predates this snapshot may install its writes after
		// this attempt read the row (the stamp is drawn before the 2PC
		// decision lands), and overwriting it would lose its update.
		if obs, ok := observed[row]; ok && obs != ms.lastWrite[row] {
			return false
		}
		if owner, pinned := ms.pins[row]; pinned && owner != at.ts {
			return false
		}
	}
	for row := range rows {
		ms.pins[row] = at.ts
	}
	at.pinned = append(at.pinned, n.id)
	return true
}

// unpin releases the attempt's pins at node n.
func (at *mvccAttempt) unpin(n *Node) {
	ms := mvccStateOf(n)
	for row, owner := range ms.pins {
		if owner == at.ts {
			delete(ms.pins, row)
		}
	}
}

// install applies the buffered writes at node n as versions stamped with
// the attempt's commit timestamp (seeding each chain with its ts-0 base
// value on first write), materializes them into the store, advances the
// rows' write stamps, releases the pins and prunes each touched chain
// against the current GC watermark.
func (at *mvccAttempt) install(c *Context, n *Node) {
	ms := mvccStateOf(n)
	wm := mvccClusterOf(c).watermark(c.nextTS)
	for gk, v := range at.overlay[n.id] {
		table, field, key := gk.SplitField()
		tb := n.store.Table(table)
		chain := ms.chains[gk]
		if chain == nil {
			chain = append(chain, mvccVersion{ts: 0, val: tb.Get(key, field)})
		}
		chain = append(chain, mvccVersion{ts: at.commit, val: v})
		ms.chains[gk] = pruneChain(chain, wm)
		tb.Set(key, field, v)
	}
	for row := range at.wrote[n.id] {
		ms.lastWrite[row] = at.commit
	}
	at.unpin(n)
}

// pruneChain drops the versions no live or future snapshot can read:
// everything older than the newest version at or below the watermark.
func pruneChain(chain []mvccVersion, wm uint64) []mvccVersion {
	keep := 0
	for i, v := range chain {
		if v.ts <= wm {
			keep = i
		}
	}
	return chain[keep:]
}

// remoteNodes lists the nodes other than self holding buffered writes —
// the 2PC participants. Nodes the attempt only read never join the commit
// protocol: snapshot reads validate nothing.
func (at *mvccAttempt) remoteNodes(self netsim.NodeID) []netsim.NodeID {
	out := make([]netsim.NodeID, 0, len(at.wrote))
	for id := range at.wrote {
		if id != self {
			out = append(out, id)
		}
	}
	return out
}
