// Package engine holds the pluggable transaction-execution strategies of
// the reproduction: P4DB itself (hot/warm/cold transactions through the
// switch) and the evaluation baselines (No-Switch 2PL/2PC, LM-Switch
// central locking, Chiller-style regional locking, and the OCC scheme of
// Appendix A.4).
//
// Each strategy implements the Engine interface and registers itself by
// name in an init function; the cluster in internal/core resolves the
// configured engine through Lookup and drives it via Execute. The shared
// machinery every strategy composes — attempt/undo bookkeeping, 2PL lock
// management, 2PC participant assembly, switch-packet compilation,
// commit/abort and metrics charging — lives on the Context so adding a new
// strategy means one new file and one Register call.
package engine

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/workload"
)

// Class is the paper's hot/cold/warm transaction classification
// (Section 3.2). Engines report the class of every committed transaction
// so the worker loop can account it for the Figure 12 breakdown.
type Class int

// Classes.
const (
	ClassCold Class = iota
	ClassHot
	ClassWarm
)

func (c Class) String() string {
	switch c {
	case ClassCold:
		return "cold"
	case ClassHot:
		return "hot"
	case ClassWarm:
		return "warm"
	default:
		return "Class(?)"
	}
}

// Engine is one transaction-execution strategy. Implementations are
// stateless singletons: all run state lives on the Context (and its
// nodes), so one Engine value can serve any number of clusters.
type Engine interface {
	// Name is the registry key, e.g. "p4db" or "noswitch".
	Name() string
	// Label is the paper's display name, e.g. "P4DB" or "No-Switch".
	Label() string
	// Prepare runs once after the cluster performed hot-set detection and
	// layout computation, before any transaction executes. Strategies use
	// it to claim the switch (register offload) or build strategy-specific
	// structures (the LM-Switch central lock table).
	Prepare(ctx *Context) error
	// Execute runs one attempt of one transaction from node n as a callback
	// state machine: it must eventually invoke k exactly once with the
	// transaction's class on commit, or an abort error after rolling every
	// side effect back; the worker state machine retries with backoff. No
	// goroutine parks on the hot path — every wait inside an engine is a
	// resumption callback on the simulation's event queue.
	Execute(ctx *Context, n *Node, txn *workload.Txn, k func(Class, error))
}

var (
	registryMu sync.RWMutex
	registry   = make(map[string]Engine)
)

// Register adds an engine under its Name. It panics on an empty or
// duplicate name — registration happens in init functions, where a
// conflict is a programming error.
func Register(e Engine) {
	registryMu.Lock()
	defer registryMu.Unlock()
	name := e.Name()
	if name == "" {
		panic("engine: Register with empty name")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("engine: duplicate Register(%q)", name))
	}
	registry[name] = e
}

// Lookup resolves an engine by registry name.
func Lookup(name string) (Engine, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("engine: unknown engine %q (available: %v)", name, namesLocked())
	}
	return e, nil
}

// Names lists the registered engine names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
