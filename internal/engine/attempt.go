package engine

import (
	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/twopc"
	"repro/internal/wal"
	"repro/internal/workload"
)

// undoRec is one before-image captured for rollback.
type undoRec struct {
	node  netsim.NodeID
	table store.TableID
	key   store.Key
	field int
	old   int64
}

// attempt is the state of one execution attempt of one transaction.
// Attempts are free-listed on the Context: the worker hot path recycles
// them (together with their lock contexts) instead of allocating, so
// steady-state cold execution performs no per-attempt heap allocation.
type attempt struct {
	ts     uint64
	locks  map[netsim.NodeID]*lock.Txn
	inner  map[netsim.NodeID]*lock.Txn // Chiller's inner-region locks
	lm     *lock.Txn                   // LM-Switch central locks
	undo   []undoRec
	writes []wal.ColdWrite
	exec   workload.Executor

	// remotes is the reusable buffer behind remoteNodes; it lives on the
	// attempt so commit-path participant discovery allocates nothing at
	// steady state.
	remotes []netsim.NodeID

	// freeLT recycles lock contexts across incarnations of this attempt.
	freeLT []*lock.Txn
}

// newAttempt returns a fresh or recycled attempt stamped with the next
// cluster-unique timestamp.
func (c *Context) newAttempt() *attempt {
	if n := len(c.freeAttempts); n > 0 {
		at := c.freeAttempts[n-1]
		c.freeAttempts = c.freeAttempts[:n-1]
		at.ts = c.issueTS()
		at.exec = workload.NewExecutor()
		return at
	}
	return &attempt{
		ts:    c.issueTS(),
		locks: make(map[netsim.NodeID]*lock.Txn, 2),
		exec:  workload.NewExecutor(),
	}
}

// releaseAttempt returns an attempt to the free list. Callers may only
// release when no in-flight closure still references the attempt: fully
// local outcomes and distributed cold commits qualify (every participant
// handler has run before the commit continuation fires); distributed
// aborts and warm commits leak the attempt instead, because their one-way
// rollback messages or multicast commit handlers may still be travelling.
func (c *Context) releaseAttempt(at *attempt) {
	for id, lt := range at.locks {
		at.freeLT = append(at.freeLT, lt)
		delete(at.locks, id)
	}
	at.inner = nil
	at.lm = nil
	at.undo = at.undo[:0]
	// writes may have been handed to the WAL by reference; the committing
	// path nils it out, the abort path discards uncommitted images here.
	at.writes = nil
	c.freeAttempts = append(c.freeAttempts, at)
}

// lockTxn returns (creating on demand) the attempt's lock context at node.
func (at *attempt) lockTxn(id netsim.NodeID) *lock.Txn {
	t, ok := at.locks[id]
	if !ok {
		if n := len(at.freeLT); n > 0 {
			t = at.freeLT[n-1]
			at.freeLT = at.freeLT[:n-1]
			t.Reset(at.ts)
		} else {
			t = lock.NewTxn(at.ts)
		}
		at.locks[id] = t
	}
	return t
}

// innerTxn returns the Chiller inner-region lock context at node.
func (at *attempt) innerTxn(id netsim.NodeID) *lock.Txn {
	if at.inner == nil {
		at.inner = make(map[netsim.NodeID]*lock.Txn, 2)
	}
	t, ok := at.inner[id]
	if !ok {
		t = lock.NewTxn(at.ts)
		at.inner[id] = t
	}
	return t
}

// remoteNodes lists the nodes other than self where the attempt holds
// (outer) locks — the 2PC participants. The returned slice aliases the
// attempt's reusable buffer: it is valid until the next remoteNodes call
// on this attempt, which every caller consumes it before.
func (at *attempt) remoteNodes(self netsim.NodeID) []netsim.NodeID {
	out := at.remotes[:0]
	for id := range at.locks {
		if id != self {
			out = append(out, id)
		}
	}
	at.remotes = out
	return out
}

// applyOp executes one operation against a node's store, capturing undo
// and redo images.
func (c *Context) applyOp(at *attempt, id netsim.NodeID, op workload.Op) {
	tb := c.Nodes[id].store.Table(op.Table)
	if op.Kind.IsWrite() {
		at.undo = append(at.undo, undoRec{
			node: id, table: op.Table, key: op.Key, field: op.Field,
			old: tb.Get(op.Key, op.Field),
		})
	}
	at.exec.Apply(tb, op)
	if op.Kind.IsWrite() && c.Durable {
		at.writes = append(at.writes, wal.ColdWrite{
			Table: op.Table, Key: op.Key, Field: op.Field,
			Value: tb.Get(op.Key, op.Field),
		})
	}
}

// lockMode maps an operation to its lock mode.
func lockMode(op workload.Op) lock.Mode {
	if op.Kind.IsWrite() {
		return lock.Exclusive
	}
	return lock.Shared
}

// opsFrame is the pooled per-attempt state machine behind execOpsK: one
// operation at a time, acquiring locks and executing under 2PL, visiting
// remote nodes over the network. All continuations are method values
// cached at construction, so driving a frame through an arbitrary number
// of operations performs no allocation.
type opsFrame struct {
	c    *Context
	n    *Node
	at   *attempt
	ops  []workload.Op
	i    int
	t0   sim.Time
	t1   sim.Time
	lerr error
	k    func(error)

	rdone func() // in-flight remote reply continuation

	stepFn       func()
	lockStepFn   func()
	onLocalLckFn func(error)
	localApplyFn func()
	remoteBodyFn func(func())
	remoteLockFn func()
	onRemoteLkFn func(error)
	remoteApplFn func()
	remoteDoneFn func()
}

func (c *Context) getOpsFrame() *opsFrame {
	if n := len(c.freeOpsFrames); n > 0 {
		f := c.freeOpsFrames[n-1]
		c.freeOpsFrames = c.freeOpsFrames[:n-1]
		return f
	}
	f := &opsFrame{c: c}
	f.stepFn = f.step
	f.lockStepFn = f.lockStep
	f.onLocalLckFn = f.onLocalLock
	f.localApplyFn = f.localApply
	f.remoteBodyFn = f.remoteBody
	f.remoteLockFn = f.remoteLock
	f.onRemoteLkFn = f.onRemoteLock
	f.remoteApplFn = f.remoteApply
	f.remoteDoneFn = f.remoteDone
	return f
}

func (c *Context) putOpsFrame(f *opsFrame) {
	f.n, f.at, f.ops, f.k, f.rdone = nil, nil, nil, nil, nil
	f.i, f.lerr = 0, nil
	c.freeOpsFrames = append(c.freeOpsFrames, f)
}

// execOpsK acquires locks and executes the given operations under 2PL,
// visiting remote nodes over the network. On a lock conflict it rolls the
// attempt back (releasing everything) and hands k the abort error. It
// schedules the exact same events as the retired process-form loop, so
// seeded schedules are unchanged.
func (c *Context) execOpsK(n *Node, at *attempt, ops []workload.Op, k func(error)) {
	if len(ops) == 0 {
		k(nil)
		return
	}
	f := c.getOpsFrame()
	f.n, f.at, f.ops, f.k = n, at, ops, k
	f.i = 0
	f.step()
}

// step dispatches the next operation (or finishes the frame).
func (f *opsFrame) step() {
	if f.i >= len(f.ops) {
		k := f.k
		f.c.putOpsFrame(f)
		k(nil)
		return
	}
	op := f.ops[f.i]
	f.t0 = f.c.Env.Now()
	if op.Home == f.n.id {
		f.c.Env.After(f.c.Costs.LockOp, f.lockStepFn)
	} else {
		f.c.Net.RPCK(f.n.id, op.Home, f.remoteBodyFn, f.remoteDoneFn)
	}
}

func (f *opsFrame) lockStep() {
	op := f.ops[f.i]
	f.n.locks.AcquireK(f.at.lockTxn(f.n.id), lock.Key(op.LockKey()), lockMode(op), f.onLocalLckFn)
}

func (f *opsFrame) onLocalLock(err error) {
	f.c.charge(f.n, metrics.LockAcquisition, f.t0)
	if err != nil {
		f.fail(err)
		return
	}
	f.t1 = f.c.Env.Now()
	f.c.Env.After(f.c.Costs.LocalAccess, f.localApplyFn)
}

func (f *opsFrame) localApply() {
	f.c.applyOp(f.at, f.n.id, f.ops[f.i])
	f.c.charge(f.n, metrics.LocalAccess, f.t1)
	f.i++
	f.step()
}

// remoteBody runs "at" the remote node: lock-op cost, acquire, and on
// success the tuple access — then the reply leg travels back via done.
func (f *opsFrame) remoteBody(done func()) {
	f.rdone = done
	f.c.Env.After(f.c.Costs.LockOp, f.remoteLockFn)
}

func (f *opsFrame) remoteLock() {
	op := f.ops[f.i]
	rn := f.c.Nodes[op.Home]
	rn.locks.AcquireK(f.at.lockTxn(op.Home), lock.Key(op.LockKey()), lockMode(op), f.onRemoteLkFn)
}

func (f *opsFrame) onRemoteLock(err error) {
	f.lerr = err
	if err != nil {
		f.rdone()
		return
	}
	f.c.Env.After(f.c.Costs.LocalAccess, f.remoteApplFn)
}

func (f *opsFrame) remoteApply() {
	op := f.ops[f.i]
	f.c.applyOp(f.at, op.Home, op)
	f.rdone()
}

func (f *opsFrame) remoteDone() {
	f.c.charge(f.n, metrics.RemoteAccess, f.t0)
	if f.lerr != nil {
		err := f.lerr
		f.lerr = nil
		f.fail(err)
		return
	}
	f.i++
	f.step()
}

// fail aborts the attempt and completes the frame with err.
func (f *opsFrame) fail(err error) {
	f.c.abort(f.n, f.at)
	k := f.k
	f.c.putOpsFrame(f)
	k(err)
}

// abort rolls back every write of the attempt and releases all locks.
// Local state unwinds immediately; remote nodes are notified with one-way
// messages (their locks stay held for the message latency, as on a real
// network). When the rollback is fully local the attempt is recycled;
// otherwise the in-flight messages keep it alive and it is leaked to the
// garbage collector.
func (c *Context) abort(n *Node, at *attempt) {
	// Per-node rollback walks the undo log in reverse, filtered by node —
	// the same per-node application order the old node-keyed grouping gave,
	// without building a map per abort. Undo logs are short (one entry per
	// write), so the nodes × undo scan is cheaper than grouping.
	rollback := func(id netsim.NodeID) {
		for i := len(at.undo) - 1; i >= 0; i-- {
			if u := at.undo[i]; u.node == id {
				c.Nodes[id].store.Table(u.table).Set(u.key, u.field, u.old)
			}
		}
	}
	remoteRefs := false
	for id, lt := range at.locks {
		if id == n.id {
			rollback(id)
			n.locks.ReleaseAll(lt)
			continue
		}
		remoteRefs = true
		id, lt := id, lt
		// The attempt is leaked (never recycled) whenever remote messages
		// are in flight, so the closure's view of at.undo stays intact
		// until delivery.
		c.Net.Send(n.id, id, func() {
			rollback(id)
			c.Nodes[id].locks.ReleaseAll(lt)
		})
	}
	if at.lm != nil {
		remoteRefs = true
		lm := at.lm
		c.Net.SendToSwitch(n.id, func() { c.LMLocks.ReleaseAll(lm) })
	}
	if !remoteRefs {
		c.releaseAttempt(at)
	}
}

// coldFrame is the pooled state machine behind execColdK/commitColdK —
// the cold path of P4DB and the whole No-Switch baseline under 2PL/2PC.
type coldFrame struct {
	c   *Context
	n   *Node
	txn *workload.Txn
	at  *attempt
	t0  sim.Time
	loc bool // single-node commit (safe to recycle the attempt)
	k   func(error)

	startFn    func()
	opsDoneFn  func(error)
	decidedFn  func(bool)
	commitedFn func(bool)
	logDoneFn  func()
}

func (c *Context) getColdFrame() *coldFrame {
	if n := len(c.freeColdFrames); n > 0 {
		f := c.freeColdFrames[n-1]
		c.freeColdFrames = c.freeColdFrames[:n-1]
		return f
	}
	f := &coldFrame{c: c}
	f.startFn = f.start
	f.opsDoneFn = f.opsDone
	f.decidedFn = f.decided
	f.commitedFn = f.committed
	f.logDoneFn = f.logDone
	return f
}

func (c *Context) putColdFrame(f *coldFrame) {
	f.n, f.txn, f.at, f.k = nil, nil, nil, nil
	c.freeColdFrames = append(c.freeColdFrames, f)
}

// execColdK executes an entire transaction under 2PL/2PC. P4DB and
// Chiller also fall back to it when a transaction's dependencies cross
// the temperature split.
func (c *Context) execColdK(n *Node, txn *workload.Txn, k func(error)) {
	f := c.getColdFrame()
	f.n, f.txn, f.k = n, txn, k
	f.at = c.newAttempt()
	f.t0 = c.Env.Now()
	c.Env.After(c.Costs.TxnOverhead, f.startFn)
}

func (f *coldFrame) start() {
	f.c.charge(f.n, metrics.TxnEngine, f.t0)
	f.c.execOpsK(f.n, f.at, f.txn.Ops, f.opsDoneFn)
}

func (f *coldFrame) opsDone(err error) {
	if err != nil {
		k := f.k
		f.c.putColdFrame(f)
		k(err)
		return
	}
	// commitColdK inlined: single-node commits log and release locally;
	// distributed commits run 2PC over the remote participants first.
	f.t0 = f.c.Env.Now()
	remotes := f.at.remoteNodes(f.n.id)
	if len(remotes) == 0 {
		f.loc = true
		f.c.Env.After(f.c.Costs.LogAppend, f.logDoneFn)
		return
	}
	f.loc = false
	f.c.coordOf(f.n).CommitDecidedK(f.c.coldParticipants(f.at, remotes), f.decidedFn, f.commitedFn)
}

// decided runs synchronously at the 2PC decision point, before the
// decision round is scheduled: presumed-abort logging retains the commit
// record the instant the outcome is known, so a coordinator crash after
// this point can redo the transaction from its log. Only commit decisions
// leave a record. With Durable off the attempt captured no redo images
// and nothing is retained.
func (f *coldFrame) decided(commit bool) {
	if commit && f.c.Durable {
		f.n.log.AppendCold(f.at.ts, f.at.writes)
		f.at.writes = nil // the WAL record owns the slice now
	}
}

func (f *coldFrame) committed(bool) {
	f.c.Env.After(f.c.Costs.LogAppend, f.logDoneFn)
}

func (f *coldFrame) logDone() {
	f.n.log.AppendCold(f.at.ts, f.at.writes)
	f.at.writes = nil // the WAL record owns the slice now
	f.n.locks.ReleaseAll(f.at.lockTxn(f.n.id))
	f.c.charge(f.n, metrics.TxnEngine, f.t0)
	// Local commits and distributed cold commits are both safe to recycle:
	// by the time CommitK's continuation ran, every participant handler
	// (which references the attempt's lock contexts) has executed.
	f.c.releaseAttempt(f.at)
	k := f.k
	f.c.putColdFrame(f)
	k(nil)
}

// commitColdK commits the attempt's node-side state and calls k: a
// single-node commit logs and releases locally; a distributed commit runs
// 2PC over the remote participants first, retaining the commit record at
// the decision point when Durable (see coldFrame.decided). The cold frame
// inlines this sequence; the LM-Switch and fallback paths call it
// directly.
func (c *Context) commitColdK(n *Node, at *attempt, k func()) {
	t0 := c.Env.Now()
	fin := func() {
		c.Env.After(c.Costs.LogAppend, func() {
			n.log.AppendCold(at.ts, at.writes)
			at.writes = nil
			n.locks.ReleaseAll(at.lockTxn(n.id))
			c.charge(n, metrics.TxnEngine, t0)
			k()
		})
	}
	remotes := at.remoteNodes(n.id)
	if len(remotes) == 0 {
		fin()
		return
	}
	c.coordOf(n).CommitDecidedK(c.coldParticipants(at, remotes), func(commit bool) {
		if commit && c.Durable {
			n.log.AppendCold(at.ts, at.writes)
			at.writes = nil
		}
	}, func(bool) { fin() })
}

// coldParticipants builds the 2PC participant handlers for the attempt's
// remote nodes: prepare appends the participant's log record, commit
// releases its locks, abort rolls its writes back first. Both the process
// and continuation prepare forms are provided so either coordinator style
// can drive the round.
func (c *Context) coldParticipants(at *attempt, remotes []netsim.NodeID) []twopc.Participant {
	parts := make([]twopc.Participant, 0, len(remotes))
	for _, id := range remotes {
		id := id
		rn := c.Nodes[id]
		parts = append(parts, twopc.Participant{
			Node: id,
			Prepare: func(sp *sim.Proc) bool {
				sp.Sleep(c.Costs.LogAppend)
				return true
			},
			PrepareK: func(done func(bool)) {
				c.Env.After(c.Costs.LogAppend, func() { done(true) })
			},
			Commit: func() {
				rn.locks.ReleaseAll(at.lockTxn(id))
			},
			Abort: func() {
				for i := len(at.undo) - 1; i >= 0; i-- {
					u := at.undo[i]
					if u.node == id {
						rn.store.Table(u.table).Set(u.key, u.field, u.old)
					}
				}
				rn.locks.ReleaseAll(at.lockTxn(id))
			},
		})
	}
	return parts
}
