package engine

import (
	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/twopc"
	"repro/internal/wal"
	"repro/internal/workload"
)

// undoRec is one before-image captured for rollback.
type undoRec struct {
	node  netsim.NodeID
	table store.TableID
	key   store.Key
	field int
	old   int64
}

// attempt is the state of one execution attempt of one transaction.
type attempt struct {
	ts     uint64
	locks  map[netsim.NodeID]*lock.Txn
	inner  map[netsim.NodeID]*lock.Txn // Chiller's inner-region locks
	lm     *lock.Txn                   // LM-Switch central locks
	undo   []undoRec
	writes []wal.ColdWrite
	exec   workload.Executor
}

func (c *Context) newAttempt() *attempt {
	return &attempt{
		ts:    c.issueTS(),
		locks: make(map[netsim.NodeID]*lock.Txn, 2),
		exec:  workload.NewExecutor(),
	}
}

// lockTxn returns (creating on demand) the attempt's lock context at node.
func (at *attempt) lockTxn(id netsim.NodeID) *lock.Txn {
	t, ok := at.locks[id]
	if !ok {
		t = lock.NewTxn(at.ts)
		at.locks[id] = t
	}
	return t
}

// innerTxn returns the Chiller inner-region lock context at node.
func (at *attempt) innerTxn(id netsim.NodeID) *lock.Txn {
	if at.inner == nil {
		at.inner = make(map[netsim.NodeID]*lock.Txn, 2)
	}
	t, ok := at.inner[id]
	if !ok {
		t = lock.NewTxn(at.ts)
		at.inner[id] = t
	}
	return t
}

// remoteNodes lists the nodes other than self where the attempt holds
// (outer) locks — the 2PC participants.
func (at *attempt) remoteNodes(self netsim.NodeID) []netsim.NodeID {
	var out []netsim.NodeID
	for id := range at.locks {
		if id != self {
			out = append(out, id)
		}
	}
	return out
}

// applyOp executes one operation against a node's store, capturing undo
// and redo images.
func (c *Context) applyOp(at *attempt, id netsim.NodeID, op workload.Op) {
	tb := c.Nodes[id].store.Table(op.Table)
	if op.Kind.IsWrite() {
		at.undo = append(at.undo, undoRec{
			node: id, table: op.Table, key: op.Key, field: op.Field,
			old: tb.Get(op.Key, op.Field),
		})
	}
	at.exec.Apply(tb, op)
	if op.Kind.IsWrite() {
		at.writes = append(at.writes, wal.ColdWrite{
			Table: op.Table, Key: op.Key, Field: op.Field,
			Value: tb.Get(op.Key, op.Field),
		})
	}
}

// lockMode maps an operation to its lock mode.
func lockMode(op workload.Op) lock.Mode {
	if op.Kind.IsWrite() {
		return lock.Exclusive
	}
	return lock.Shared
}

// execOps acquires locks and executes the given operations under 2PL,
// visiting remote nodes over the network. On a lock conflict it rolls the
// attempt back (releasing everything) and returns the abort error.
func (c *Context) execOps(p *sim.Proc, n *Node, at *attempt, ops []workload.Op) error {
	for _, op := range ops {
		if op.Home == n.id {
			t0 := p.Now()
			p.Sleep(c.Costs.LockOp)
			err := n.locks.Acquire(p, at.lockTxn(n.id), lock.Key(op.LockKey()), lockMode(op))
			c.charge(n, metrics.LockAcquisition, t0)
			if err != nil {
				c.abort(p, n, at)
				return err
			}
			t1 := p.Now()
			p.Sleep(c.Costs.LocalAccess)
			c.applyOp(at, n.id, op)
			c.charge(n, metrics.LocalAccess, t1)
			continue
		}
		t0 := p.Now()
		var lerr error
		op := op
		c.Net.RPC(p, n.id, op.Home, func() {
			rn := c.Nodes[op.Home]
			p.Sleep(c.Costs.LockOp)
			lerr = rn.locks.Acquire(p, at.lockTxn(op.Home), lock.Key(op.LockKey()), lockMode(op))
			if lerr == nil {
				p.Sleep(c.Costs.LocalAccess)
				c.applyOp(at, op.Home, op)
			}
		})
		c.charge(n, metrics.RemoteAccess, t0)
		if lerr != nil {
			c.abort(p, n, at)
			return lerr
		}
	}
	return nil
}

// abort rolls back every write of the attempt and releases all locks.
// Local state unwinds immediately; remote nodes are notified with one-way
// messages (their locks stay held for the message latency, as on a real
// network).
func (c *Context) abort(p *sim.Proc, n *Node, at *attempt) {
	byNode := make(map[netsim.NodeID][]undoRec)
	for _, u := range at.undo {
		byNode[u.node] = append(byNode[u.node], u)
	}
	rollback := func(id netsim.NodeID) {
		undos := byNode[id]
		for i := len(undos) - 1; i >= 0; i-- {
			u := undos[i]
			c.Nodes[id].store.Table(u.table).Set(u.key, u.field, u.old)
		}
	}
	for id, lt := range at.locks {
		if id == n.id {
			rollback(id)
			n.locks.ReleaseAll(lt)
			continue
		}
		id, lt := id, lt
		c.Net.Send(n.id, id, func() {
			rollback(id)
			c.Nodes[id].locks.ReleaseAll(lt)
		})
	}
	if at.lm != nil {
		lm := at.lm
		c.Net.SendToSwitch(n.id, func() { c.LMLocks.ReleaseAll(lm) })
	}
}

// execCold executes an entire transaction under 2PL/2PC — the cold path
// of P4DB and the whole No-Switch baseline. P4DB and Chiller also fall
// back to it when a transaction's dependencies cross the temperature
// split.
func (c *Context) execCold(p *sim.Proc, n *Node, txn *workload.Txn) error {
	at := c.newAttempt()
	t0 := p.Now()
	p.Sleep(c.Costs.TxnOverhead)
	c.charge(n, metrics.TxnEngine, t0)
	if err := c.execOps(p, n, at, txn.Ops); err != nil {
		return err
	}
	c.commitCold(p, n, at)
	return nil
}

// commitCold commits the attempt's node-side state: single-node commits
// log and release locally; distributed commits run 2PC over the remote
// participants.
func (c *Context) commitCold(p *sim.Proc, n *Node, at *attempt) {
	t0 := p.Now()
	remotes := at.remoteNodes(n.id)
	if len(remotes) == 0 {
		p.Sleep(c.Costs.LogAppend)
		n.log.AppendCold(at.ts, at.writes)
		n.locks.ReleaseAll(at.lockTxn(n.id))
		c.charge(n, metrics.TxnEngine, t0)
		return
	}
	coord := twopc.NewCoordinator(c.Net, n.id)
	coord.Commit(p, c.coldParticipants(at, remotes))
	p.Sleep(c.Costs.LogAppend)
	n.log.AppendCold(at.ts, at.writes)
	n.locks.ReleaseAll(at.lockTxn(n.id))
	c.charge(n, metrics.TxnEngine, t0)
}

// coldParticipants builds the 2PC participant handlers for the attempt's
// remote nodes: prepare appends the participant's log record, commit
// releases its locks, abort rolls its writes back first.
func (c *Context) coldParticipants(at *attempt, remotes []netsim.NodeID) []twopc.Participant {
	parts := make([]twopc.Participant, 0, len(remotes))
	for _, id := range remotes {
		id := id
		rn := c.Nodes[id]
		parts = append(parts, twopc.Participant{
			Node: id,
			Prepare: func(sp *sim.Proc) bool {
				sp.Sleep(c.Costs.LogAppend)
				return true
			},
			Commit: func() {
				rn.locks.ReleaseAll(at.lockTxn(id))
			},
			Abort: func() {
				for i := len(at.undo) - 1; i >= 0; i-- {
					u := at.undo[i]
					if u.node == id {
						rn.store.Table(u.table).Set(u.key, u.field, u.old)
					}
				}
				rn.locks.ReleaseAll(at.lockTxn(id))
			},
		})
	}
	return parts
}
