package server

import (
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/loadgen"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/txnwire"
	"repro/internal/workload"
)

// testConfig mirrors the core driver tests' small-but-contended SmallBank
// setup so parity failures point at the transport, not the workload.
func testConfig(engineName string) (Config, workload.SmallBankConfig) {
	cc := core.DefaultConfig()
	cc.Engine = engineName
	cc.Nodes = 2
	cc.WorkersPerNode = 1
	cc.SampleTxns = 4000
	cc.Switch.SlotsPerArray = 64
	wl := workload.DefaultSmallBank(cc.Nodes, 3)
	wl.AccountsPerNode = 100
	wl.DistPct = 50
	return Config{Core: cc, Gen: workload.NewSmallBank(wl)}, wl
}

// startServer brings a server up on loopback and returns its address and
// a stop function.
func startServer(t *testing.T, cfg Config) (*Server, string, func()) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()
	stop := func() {
		s.Shutdown()
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}
	return s, ln.Addr().String(), stop
}

// TestServerSmoke: a serial client commits transactions end to end and
// the counters agree.
func TestServerSmoke(t *testing.T) {
	cfg, wl := testConfig("noswitch")
	s, addr, stop := startServer(t, cfg)

	cl, err := loadgen.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewSmallBank(wl)
	src := sim.NewRNG(7)
	const n = 200
	for i := 0; i < n; i++ {
		origin := netsim.NodeID(i % cfg.Core.Nodes)
		rep, err := cl.Do(gen.Next(src, origin), origin)
		if err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
		if rep.Status != txnwire.StatusCommitted {
			t.Fatalf("txn %d: status %d", i, rep.Status)
		}
		if rep.Resp.GID != uint64(i+1) {
			t.Fatalf("txn %d: gid %d, want %d (serial client must see a dense commit sequence)", i, rep.Resp.GID, i+1)
		}
	}
	cl.Close()
	stop()

	st := s.Stats()
	if st.Conns != 1 || st.Requests != n || st.Commits != n || st.Rejected != 0 {
		t.Fatalf("stats %+v, want 1 conn / %d requests / %d commits / 0 rejected", st, n, n)
	}
	if got := s.Result().Counters.Committed(); got != n {
		t.Fatalf("engine counters report %d commits, want %d", got, n)
	}
}

// TestSimServerParity: the same seeded transaction stream produces an
// identical final database state whether it executes through the
// in-process core.Driver or over real sockets — one engine per family
// (no switch, switch-offloaded, deterministic).
func TestSimServerParity(t *testing.T) {
	const n = 300
	for _, engineName := range []string{"noswitch", "p4db", "calvin"} {
		cfg, wl := testConfig(engineName)

		// Path 1: in-process driver.
		drvGen := workload.NewSmallBank(wl)
		drv := core.NewDriver(core.NewCluster(cfg.Core, workload.NewSmallBank(wl)))
		src := sim.NewRNG(7)
		for i := 0; i < n; i++ {
			origin := netsim.NodeID(i % cfg.Core.Nodes)
			drv.Submit(origin, drvGen.Next(src, origin), func(engine.Class, int) {})
			drv.Drain()
		}
		simDigest := drv.Cluster().StateDigest()

		// Path 2: the same stream over loopback TCP.
		s, addr, stop := startServer(t, cfg)
		cl, err := loadgen.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		netGen := workload.NewSmallBank(wl)
		src = sim.NewRNG(7)
		for i := 0; i < n; i++ {
			origin := netsim.NodeID(i % cfg.Core.Nodes)
			rep, err := cl.Do(netGen.Next(src, origin), origin)
			if err != nil {
				t.Fatalf("%s txn %d: %v", engineName, i, err)
			}
			if rep.Status != txnwire.StatusCommitted {
				t.Fatalf("%s txn %d: status %d", engineName, i, rep.Status)
			}
		}
		cl.Close()
		stop()
		netDigest := s.Cluster().StateDigest()

		if simDigest != netDigest {
			t.Fatalf("%s: server state diverged from sim:\n sim: %s\n net: %s", engineName, simDigest, netDigest)
		}
	}
}

// TestServerPipelinedCloseWrite: a pipelined client half-closes and the
// server drains everything already submitted — every request is answered
// before EOF.
func TestServerPipelinedCloseWrite(t *testing.T) {
	cfg, wl := testConfig("noswitch")
	_, addr, stop := startServer(t, cfg)
	defer stop()

	cl, err := loadgen.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewSmallBank(wl)
	src := sim.NewRNG(11)
	const n = 500
	sent := make(map[uint64]bool, n)
	for i := 0; i < n; i++ {
		origin := netsim.NodeID(i % cfg.Core.Nodes)
		id, err := cl.Send(gen.Next(src, origin), origin)
		if err != nil {
			t.Fatal(err)
		}
		sent[id] = true
	}
	if err := cl.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	got := 0
	for {
		rep, err := cl.Recv()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("after %d replies: %v", got, err)
		}
		if rep.Status != txnwire.StatusCommitted {
			t.Fatalf("reply %d: status %d", got, rep.Status)
		}
		if !sent[rep.Resp.TxnID] {
			t.Fatalf("reply for unknown or duplicate id %d", rep.Resp.TxnID)
		}
		delete(sent, rep.Resp.TxnID)
		got++
	}
	cl.Close()
	if got != n {
		t.Fatalf("drained %d replies before EOF, want %d", got, n)
	}
}

// TestServerShutdownDrain: Shutdown answers and flushes every
// transaction already submitted before closing connections.
func TestServerShutdownDrain(t *testing.T) {
	cfg, wl := testConfig("noswitch")
	s, addr, stop := startServer(t, cfg)

	cl, err := loadgen.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewSmallBank(wl)
	src := sim.NewRNG(13)
	const n = 100
	for i := 0; i < n; i++ {
		origin := netsim.NodeID(i % cfg.Core.Nodes)
		if _, err := cl.Send(gen.Next(src, origin), origin); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	// Wait until the server has pulled every frame off the socket, so
	// all n transactions are in flight when Shutdown fires.
	deadline := time.Now().Add(5 * time.Second)
	for s.requests.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("server submitted %d/%d requests", s.requests.Load(), n)
		}
		time.Sleep(time.Millisecond)
	}
	stop()

	got := 0
	for {
		rep, err := cl.Recv()
		if err != nil {
			break // EOF or reset: the server has closed
		}
		if rep.Status != txnwire.StatusCommitted {
			t.Fatalf("reply %d: status %d", got, rep.Status)
		}
		got++
	}
	cl.Close()
	if got != n {
		t.Fatalf("client received %d replies across shutdown, want %d", got, n)
	}
	if st := s.Stats(); st.Commits != n {
		t.Fatalf("server committed %d, want %d", st.Commits, n)
	}
}

// TestServerRejectsInvalid: semantically invalid requests get a
// rejection reply and the connection survives; later valid requests
// still commit.
func TestServerRejectsInvalid(t *testing.T) {
	cfg, wl := testConfig("noswitch")
	s, addr, stop := startServer(t, cfg)
	defer stop()

	cl, err := loadgen.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	gen := workload.NewSmallBank(wl)
	src := sim.NewRNG(17)

	// A lying home: op claims node 0 for a key partitioned to node 1.
	bad := &workload.Txn{Label: "bad", Ops: []workload.Op{{
		Kind: workload.Read, Table: workload.SBChecking,
		Key: 150, Home: 0, DependsOn: -1,
	}}}
	rep, err := cl.Do(bad, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != txnwire.StatusRejected {
		t.Fatalf("lying home accepted: status %d", rep.Status)
	}

	// An unknown table.
	badTable := &workload.Txn{Label: "bad", Ops: []workload.Op{{
		Kind: workload.Read, Table: 99, Key: 1, Home: 0, DependsOn: -1,
	}}}
	rep, err = cl.Do(badTable, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != txnwire.StatusRejected {
		t.Fatalf("unknown table accepted: status %d", rep.Status)
	}

	// The connection still serves valid work.
	repOK, err := cl.Do(gen.Next(src, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if repOK.Status != txnwire.StatusCommitted {
		t.Fatalf("valid txn after rejects: status %d", repOK.Status)
	}
	if st := s.Stats(); st.Rejected != 2 || st.Commits != 1 {
		t.Fatalf("stats %+v, want 2 rejected / 1 commit", st)
	}
}

// TestServerOversizedFrame: a frame above the limit kills the connection
// without buffering it; the server stays up for other clients.
func TestServerOversizedFrame(t *testing.T) {
	cfg, wl := testConfig("noswitch")
	_, addr, stop := startServer(t, cfg)
	defer stop()

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	// A header declaring a frame far beyond DefaultMaxFrame.
	if _, err := nc.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := nc.Read(make([]byte, 1)); err == nil {
		t.Fatal("server kept a connection alive after an oversized frame")
	}
	nc.Close()

	// A fresh connection still works.
	cl, err := loadgen.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	gen := workload.NewSmallBank(wl)
	rep, err := cl.Do(gen.Next(sim.NewRNG(19), 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != txnwire.StatusCommitted {
		t.Fatalf("status %d after oversize rejection on another conn", rep.Status)
	}
}

// TestServeRequestPathZeroAlloc pins the steady-state per-request server
// path — frame decode, validation, engine execution, reply encode — at
// zero allocations. Scope: the read-only path (YCSB-C, all-local ops,
// one node). Write commits hand their write-set to the WAL by design and
// so allocate one redo record; the read path has no such transfer and
// must stay allocation-free.
func TestServeRequestPathZeroAlloc(t *testing.T) {
	cc := core.DefaultConfig()
	cc.Engine = "noswitch"
	cc.Nodes = 1
	cc.WorkersPerNode = 1
	cc.SampleTxns = 256
	cc.Switch.SlotsPerArray = 64
	ycfg := workload.YCSBWorkloadC(cc.Nodes)
	ycfg.DistPct = 0
	ycfg.RowsPerNode = 1 << 16
	gen := workload.NewYCSB(ycfg)
	s, err := New(Config{Core: cc, Gen: gen})
	if err != nil {
		t.Fatal(err)
	}
	c := newConn(s, nil) // no socket: the reply lands in c.out

	// One canned request, framed the way a client would.
	txn := gen.Next(sim.NewRNG(23), 0)
	var req txnwire.TxnRequest
	if err := workload.TxnToRequest(txn, 1, 0, &req); err != nil {
		t.Fatal(err)
	}
	payload, err := txnwire.AppendTxnRequest(nil, &req)
	if err != nil {
		t.Fatal(err)
	}

	var decoded txnwire.TxnRequest
	serve := func() {
		if err := txnwire.DecodeTxnRequestInto(&decoded, payload); err != nil {
			t.Fatal(err)
		}
		wtxn := c.getTxn()
		if err := s.buildTxn(&decoded, wtxn); err != nil {
			t.Fatal(err)
		}
		c.pending.Add(1)
		s.inject(sub{c: c, txn: wtxn, txnID: decoded.Pkt.Header.TxnID, origin: 0})
		s.drv.Drain()
		c.mu.Lock()
		if len(c.out) == 0 {
			c.mu.Unlock()
			t.Fatal("no reply framed")
		}
		c.out = c.out[:0]
		c.mu.Unlock()
	}
	for i := 0; i < 8; i++ { // prime pools and buffer growth
		serve()
	}
	if n := testing.AllocsPerRun(500, serve); n != 0 {
		t.Fatalf("read-only request path allocates %v times per request, want 0", n)
	}
}

// BenchmarkServeRequest measures the in-process per-request path (no
// socket): decode, validate, execute read-only, encode reply.
func BenchmarkServeRequest(b *testing.B) {
	cc := core.DefaultConfig()
	cc.Engine = "noswitch"
	cc.Nodes = 1
	cc.WorkersPerNode = 1
	cc.SampleTxns = 256
	cc.Switch.SlotsPerArray = 64
	ycfg := workload.YCSBWorkloadC(cc.Nodes)
	ycfg.DistPct = 0
	ycfg.RowsPerNode = 1 << 16
	gen := workload.NewYCSB(ycfg)
	s, err := New(Config{Core: cc, Gen: gen})
	if err != nil {
		b.Fatal(err)
	}
	c := newConn(s, nil)
	txn := gen.Next(sim.NewRNG(23), 0)
	var req txnwire.TxnRequest
	if err := workload.TxnToRequest(txn, 1, 0, &req); err != nil {
		b.Fatal(err)
	}
	payload, err := txnwire.AppendTxnRequest(nil, &req)
	if err != nil {
		b.Fatal(err)
	}
	var decoded txnwire.TxnRequest
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := txnwire.DecodeTxnRequestInto(&decoded, payload); err != nil {
			b.Fatal(err)
		}
		wtxn := c.getTxn()
		if err := s.buildTxn(&decoded, wtxn); err != nil {
			b.Fatal(err)
		}
		c.pending.Add(1)
		s.inject(sub{c: c, txn: wtxn, txnID: decoded.Pkt.Header.TxnID, origin: 0})
		s.drv.Drain()
		c.mu.Lock()
		c.out = c.out[:0]
		c.mu.Unlock()
	}
}
