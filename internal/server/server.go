// Package server hosts a simulated P4DB cluster behind real TCP
// listeners speaking the txnwire framing. Clients submit transactions as
// length-prefixed TxnRequest frames; the server validates them against
// the cluster's schema and partitioning, executes them through the exact
// engine/scheme registries the simulator uses (via core.Driver), and
// replies with framed TxnReplys carrying the commit class and a
// server-assigned global commit sequence.
//
// Concurrency shape: one reader goroutine per connection decodes frames
// into pooled transactions and feeds a single submission channel; one
// engine-loop goroutine owns the simulated clock — it gathers whatever
// submissions are waiting, injects them, steps the event loop until all
// are committed, then signals the per-connection writer goroutines to
// flush the reply bytes accumulated during the batch. Writes are
// buffered and flush-coalesced: replies for a whole batch leave in one
// syscall per connection. The steady-state request path — decode,
// validate, execute, encode — recycles every buffer and state machine it
// touches, pinned by an AllocsPerRun test.
package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/netsim"
	"repro/internal/txnwire"
	"repro/internal/workload"
)

// Config configures a serving cluster.
type Config struct {
	// Core is the simulated cluster's configuration (engine, scheme,
	// nodes, switch geometry, cost model).
	Core core.Config
	// Workload names a registered workload (workload.ByName); it defines
	// the schema and partitioning requests are validated against. Ignored
	// when Gen is set.
	Workload string
	// Theta switches a YCSB Workload to Zipfian key selection at that
	// skew exponent (workload.ByNameTheta). Server and clients must agree
	// on it, exactly like Workload and Nodes. Ignored when Gen is set.
	Theta float64
	// Gen overrides the registry lookup with a caller-built generator.
	Gen workload.Generator
	// MaxFrame bounds accepted request frames; 0 means
	// txnwire.DefaultMaxFrame.
	MaxFrame int
}

// Stats is a point-in-time snapshot of serving counters.
type Stats struct {
	Conns    int64 // connections accepted over the server's lifetime
	Requests int64 // transactions submitted to the engine
	Commits  int64 // transactions committed (and replied to)
	Rejected int64 // requests refused by validation
	Retries  int64 // aborted attempts absorbed by server-side retry
}

// sub is one validated submission traveling from a connection reader to
// the engine loop.
type sub struct {
	c      *conn
	txn    *workload.Txn
	txnID  uint64
	origin netsim.NodeID
}

// Server executes txnwire transactions on a simulated cluster.
type Server struct {
	cluster  *core.Cluster
	drv      *core.Driver
	gen      workload.Generator
	nodes    int
	maxFrame int

	subCh chan sub

	mu      sync.Mutex
	ln      net.Listener
	conns   map[*conn]struct{}
	closing bool

	readerWG sync.WaitGroup
	loopDone chan struct{}

	// Engine-loop-owned state: the completion-callback pool and the
	// global commit sequence. Only the engine loop touches these.
	freePend  []*pendingTxn
	commitSeq uint64

	requests atomic.Int64
	rejected atomic.Int64
	retries  atomic.Int64
	accepted atomic.Int64
}

// New builds a serving cluster. The heavy lifting — store population,
// hot-set detection, switch offload — happens here, before any listener
// is attached.
func New(cfg Config) (*Server, error) {
	gen := cfg.Gen
	if gen == nil {
		var err error
		gen, err = workload.ByNameTheta(cfg.Workload, cfg.Core.Nodes, cfg.Theta)
		if err != nil {
			return nil, err
		}
	}
	if gen.Nodes() != cfg.Core.Nodes {
		return nil, fmt.Errorf("server: generator partitions %d nodes, cluster has %d", gen.Nodes(), cfg.Core.Nodes)
	}
	maxFrame := cfg.MaxFrame
	if maxFrame == 0 {
		maxFrame = txnwire.DefaultMaxFrame
	}
	c := core.NewCluster(cfg.Core, gen)
	s := &Server{
		cluster:  c,
		drv:      core.NewDriver(c),
		gen:      gen,
		nodes:    cfg.Core.Nodes,
		maxFrame: maxFrame,
		subCh:    make(chan sub, 1024),
		conns:    make(map[*conn]struct{}),
		loopDone: make(chan struct{}),
	}
	return s, nil
}

// Cluster exposes the simulated cluster (state digests, results).
func (s *Server) Cluster() *core.Cluster { return s.cluster }

// Stats snapshots the serving counters.
func (s *Server) Stats() Stats {
	return Stats{
		Conns:    s.accepted.Load(),
		Requests: s.requests.Load(),
		Commits:  s.drv.Commits(),
		Rejected: s.rejected.Load(),
		Retries:  s.retries.Load(),
	}
}

// Result assembles the engine-side counters (latency histogram, commit
// class breakdown) accumulated by served transactions.
func (s *Server) Result() *core.Result { return s.drv.Result() }

// Serve accepts connections on ln until Shutdown. It blocks; run it in a
// goroutine. The engine loop starts on the first call.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return errors.New("server: already shut down")
	}
	if s.ln != nil {
		s.mu.Unlock()
		return errors.New("server: Serve called twice")
	}
	s.ln = ln
	s.mu.Unlock()
	go s.engineLoop()

	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closing := s.closing
			s.mu.Unlock()
			if closing {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			nc.Close()
			return nil
		}
		c := newConn(s, nc)
		s.conns[c] = struct{}{}
		s.readerWG.Add(1)
		s.mu.Unlock()
		s.accepted.Add(1)
		go s.readLoop(c)
		go c.writeLoop()
	}
}

// Shutdown stops accepting, drains every in-flight transaction, flushes
// replies, and closes all connections. Safe to call once, after Serve
// has started. Requests already submitted commit and are answered;
// frames not yet read off a socket are dropped.
func (s *Server) Shutdown() {
	s.mu.Lock()
	s.closing = true
	ln := s.ln
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	if ln != nil {
		ln.Close()
	}
	// Kick readers out of blocking reads; already-buffered frames are
	// abandoned, which is the documented shutdown contract.
	for _, c := range conns {
		c.nc.SetReadDeadline(time.Now())
	}
	s.readerWG.Wait()
	close(s.subCh)
	if ln != nil {
		<-s.loopDone // engine loop drains remaining submissions, flushes
	}
	for _, c := range conns {
		c.signalFlush()
		<-c.closed
	}
}

// engineLoop owns the cluster's simulated clock. It batches whatever
// submissions are queued, drives them to commit, then releases the
// replies in one flush per connection.
func (s *Server) engineLoop() {
	defer close(s.loopDone)
	for {
		sb, ok := <-s.subCh
		if !ok {
			break
		}
		s.inject(sb)
		for gather := true; gather && ok; {
			select {
			case sb2, ok2 := <-s.subCh:
				if !ok2 {
					ok = false
					break
				}
				s.inject(sb2)
			default:
				gather = false
			}
		}
		s.drv.Drain()
		s.flushAll()
		if !ok {
			return
		}
	}
	// Channel closed with nothing gathered: nothing in flight, but flush
	// any reject replies appended by readers on their way out.
	s.drv.Drain()
	s.flushAll()
}

// inject hands one submission to the driver with a pooled completion.
func (s *Server) inject(sb sub) {
	var pt *pendingTxn
	if n := len(s.freePend); n > 0 {
		pt = s.freePend[n-1]
		s.freePend = s.freePend[:n-1]
	} else {
		pt = &pendingTxn{s: s}
		pt.doneFn = pt.done
	}
	pt.c, pt.txn, pt.txnID = sb.c, sb.txn, sb.txnID
	s.requests.Add(1)
	s.drv.Submit(sb.origin, sb.txn, pt.doneFn)
}

// flushAll wakes the writer of every connection holding buffered replies.
func (s *Server) flushAll() {
	s.mu.Lock()
	for c := range s.conns {
		if c.hasOutput() {
			c.signalFlush()
		}
	}
	s.mu.Unlock()
}

// removeConn drops a closed connection from the flush set.
func (s *Server) removeConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// pendingTxn is the pooled completion callback for one submitted
// transaction; doneFn is prebound so resubmission never allocates.
type pendingTxn struct {
	s      *Server
	c      *conn
	txn    *workload.Txn
	txnID  uint64
	doneFn func(engine.Class, int)
}

// done fires when the transaction commits (engine-loop goroutine, inside
// Drain). It appends the framed reply to the connection's output buffer
// and recycles the transaction and itself.
func (pt *pendingTxn) done(cls engine.Class, retries int) {
	s := pt.s
	s.commitSeq++
	if retries > 0 {
		s.retries.Add(int64(retries))
	}
	c, txn, txnID, seq := pt.c, pt.txn, pt.txnID, s.commitSeq
	pt.c, pt.txn = nil, nil
	s.freePend = append(s.freePend, pt)

	recircs := retries
	if recircs > 255 {
		recircs = 255
	}
	rep := txnwire.TxnReply{
		Status: txnwire.StatusCommitted,
		Class:  uint8(cls),
		Resp:   txnwire.Response{TxnID: txnID, GID: seq, Recircs: uint8(recircs)},
	}
	c.mu.Lock()
	c.out = mustAppendReply(c.out, &rep)
	c.freeTxns = append(c.freeTxns, txn)
	c.mu.Unlock()
	c.pending.Add(-1)
}

// readLoop decodes and validates frames off one connection, feeding the
// submission channel. It exits on EOF, protocol violation, or shutdown.
func (s *Server) readLoop(c *conn) {
	defer func() {
		c.readerDone.Store(true)
		c.signalFlush() // let the writer observe readerDone
		s.readerWG.Done()
	}()
	fr := txnwire.NewFrameReader(c.nc)
	fr.SetLimit(s.maxFrame)
	var req txnwire.TxnRequest
	for {
		ft, payload, err := fr.Next()
		if err != nil {
			return
		}
		if ft != txnwire.FrameTxnReq {
			s.rejected.Add(1)
			c.nc.Close()
			return
		}
		if err := txnwire.DecodeTxnRequestInto(&req, payload); err != nil {
			s.rejected.Add(1)
			c.nc.Close()
			return
		}
		txn := c.getTxn()
		if err := s.buildTxn(&req, txn); err != nil {
			c.putTxn(txn)
			s.rejected.Add(1)
			c.reject(req.Pkt.Header.TxnID)
			c.signalFlush()
			continue
		}
		c.pending.Add(1)
		s.subCh <- sub{c: c, txn: txn, txnID: req.Pkt.Header.TxnID, origin: netsim.NodeID(req.Origin)}
	}
}

// buildTxn converts a wire request into an executable transaction and
// validates it against the cluster: origin and claimed homes must name
// real nodes, tables and fields must exist in the schema, and every
// operation's claimed home must agree with the workload's partitioning
// (engines trust Op.Home; a lie would corrupt remote state).
func (s *Server) buildTxn(req *txnwire.TxnRequest, txn *workload.Txn) error {
	if int(req.Origin) >= s.nodes {
		return fmt.Errorf("server: origin %d outside cluster of %d nodes", req.Origin, s.nodes)
	}
	if err := workload.TxnFromRequest(req, txn); err != nil {
		return err
	}
	schema := s.cluster.Node(0).Store()
	for i := range txn.Ops {
		op := &txn.Ops[i]
		tbl := schema.Lookup(op.Table)
		if tbl == nil {
			return fmt.Errorf("server: op %d addresses unknown table %d", i, op.Table)
		}
		if int(op.Field) >= tbl.Fields() {
			return fmt.Errorf("server: op %d addresses field %d of %d-field table %s", i, op.Field, tbl.Fields(), tbl.Name())
		}
		if int(op.Home) >= s.nodes {
			return fmt.Errorf("server: op %d claims home %d outside cluster of %d nodes", i, op.Home, s.nodes)
		}
		if want := s.gen.Home(op.Table, op.Key); op.Home != want {
			return fmt.Errorf("server: op %d claims home %d, partitioning says %d", i, op.Home, want)
		}
	}
	return nil
}

// conn is one client connection: a reader feeding subCh, a writer
// draining out, and a transaction free list shared between them.
type conn struct {
	s  *Server
	nc net.Conn

	mu       sync.Mutex
	out      []byte // framed replies awaiting flush
	spare    []byte // writer's swap buffer
	freeTxns []*workload.Txn

	flushCh    chan struct{} // cap 1, coalesced wake-ups
	pending    atomic.Int64  // submitted, not yet replied
	readerDone atomic.Bool
	closed     chan struct{} // writer exited
}

func newConn(s *Server, nc net.Conn) *conn {
	return &conn{
		s:       s,
		nc:      nc,
		flushCh: make(chan struct{}, 1),
		closed:  make(chan struct{}),
	}
}

// getTxn pops a pooled transaction (reader goroutine).
func (c *conn) getTxn() *workload.Txn {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := len(c.freeTxns); n > 0 {
		t := c.freeTxns[n-1]
		c.freeTxns = c.freeTxns[:n-1]
		return t
	}
	return &workload.Txn{}
}

// putTxn returns a transaction to the pool.
func (c *conn) putTxn(t *workload.Txn) {
	c.mu.Lock()
	c.freeTxns = append(c.freeTxns, t)
	c.mu.Unlock()
}

// reject appends a rejection reply (reader goroutine, validation
// failures only — the connection survives, framing is still intact).
func (c *conn) reject(txnID uint64) {
	rep := txnwire.TxnReply{
		Status: txnwire.StatusRejected,
		Resp:   txnwire.Response{TxnID: txnID},
	}
	c.mu.Lock()
	c.out = mustAppendReply(c.out, &rep)
	c.mu.Unlock()
}

// mustAppendReply frames a reply the server built itself; encoding can
// only fail on malformed replies, which would be a server bug.
func mustAppendReply(dst []byte, rep *txnwire.TxnReply) []byte {
	out, err := txnwire.AppendTxnReplyFrame(dst, rep)
	if err != nil {
		panic(fmt.Sprintf("server: reply encoding failed: %v", err))
	}
	return out
}

func (c *conn) hasOutput() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.out) > 0
}

// signalFlush wakes the writer; signals coalesce.
func (c *conn) signalFlush() {
	select {
	case c.flushCh <- struct{}{}:
	default:
	}
}

// writeLoop flushes buffered replies when signaled and closes the
// connection once the reader has exited and every submission is
// answered and flushed.
func (c *conn) writeLoop() {
	defer func() {
		c.s.removeConn(c)
		close(c.closed)
	}()
	for {
		<-c.flushCh
		c.drainOut()
		if c.readerDone.Load() && c.pending.Load() == 0 {
			// pending hit zero after its reply was appended; one more
			// drain publishes anything that raced past the first.
			c.drainOut()
			c.nc.Close()
			return
		}
	}
}

// drainOut swaps the output buffer under the lock and writes it outside,
// repeating until no bytes remain. On a write error the connection is
// closed (the reader unblocks with an error) and output is discarded.
func (c *conn) drainOut() {
	for {
		c.mu.Lock()
		if len(c.out) == 0 {
			c.mu.Unlock()
			return
		}
		buf := c.out
		c.out = c.spare[:0]
		c.spare = buf
		c.mu.Unlock()
		if _, err := c.nc.Write(buf); err != nil {
			c.nc.Close()
			return
		}
	}
}
