package hotset

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/store"
)

func TestDetectAutoMixedWorkload(t *testing.T) {
	// 10 hot keys with ~100 accesses each, 500 cold keys with 1-2.
	rng := sim.NewRNG(1)
	var samples [][]Access
	for i := 0; i < 1000; i++ {
		samples = append(samples, []Access{{Key: k(uint64(rng.Intn(10))), DependsOn: -1}})
	}
	for i := 0; i < 700; i++ {
		samples = append(samples, []Access{{Key: k(uint64(1000 + rng.Intn(500))), DependsOn: -1}})
	}
	h := DetectAuto(samples, 1000)
	if h.Size() < 9 || h.Size() > 15 {
		t.Fatalf("detected %d hot keys, want ~10", h.Size())
	}
	for i := uint64(0); i < 10; i++ {
		if !h.Contains(k(i)) {
			t.Fatalf("hot key %d missed", i)
		}
	}
}

func TestDetectAutoUniformHotOnly(t *testing.T) {
	// Every key equally frequent and well above the noise floor: ALL are
	// hot (the 100%-hot workload case that a mean-based threshold gets
	// wrong).
	var samples [][]Access
	for rep := 0; rep < 50; rep++ {
		for i := uint64(0); i < 20; i++ {
			samples = append(samples, []Access{{Key: k(i), DependsOn: -1}})
		}
	}
	h := DetectAuto(samples, 1000)
	if h.Size() != 20 {
		t.Fatalf("detected %d, want all 20 uniformly-hot keys", h.Size())
	}
}

func TestDetectAutoPureColdIsEmpty(t *testing.T) {
	// Uniform access over a huge keyspace: nothing repeats 3 times, so
	// nothing is hot.
	rng := sim.NewRNG(2)
	var samples [][]Access
	for i := 0; i < 2000; i++ {
		samples = append(samples, []Access{{Key: k(rng.Uint64() % (1 << 40)), DependsOn: -1}})
	}
	h := DetectAuto(samples, 1000)
	if h.Size() != 0 {
		t.Fatalf("detected %d hot keys in a uniform workload", h.Size())
	}
}

func TestDetectAutoRespectsCap(t *testing.T) {
	var samples [][]Access
	for rep := 0; rep < 50; rep++ {
		for i := uint64(0); i < 20; i++ {
			samples = append(samples, []Access{{Key: k(i), DependsOn: -1}})
		}
	}
	h := DetectAuto(samples, 7)
	if h.Size() != 7 {
		t.Fatalf("cap ignored: %d", h.Size())
	}
}

func TestDetectAutoEmptySample(t *testing.T) {
	h := DetectAuto(nil, 10)
	if h.Size() != 0 {
		t.Fatalf("Size = %d", h.Size())
	}
}

func TestFromKeysTruncatesByFrequency(t *testing.T) {
	var samples [][]Access
	for i := 0; i < 30; i++ {
		samples = append(samples, []Access{{Key: k(1), DependsOn: -1}})
	}
	for i := 0; i < 10; i++ {
		samples = append(samples, []Access{{Key: k(2), DependsOn: -1}})
	}
	keys := []store.GlobalKey{k(1), k(2), k(3)}
	h := FromKeys(keys, samples, 2)
	if h.Size() != 2 || !h.Contains(k(1)) || !h.Contains(k(2)) || h.Contains(k(3)) {
		t.Fatalf("FromKeys kept %v", h.Keys())
	}
}

func TestFromKeysBuildsGraph(t *testing.T) {
	samples := [][]Access{
		{{Key: k(1), DependsOn: -1}, {Key: k(2), DependsOn: 0}},
		{{Key: k(1), DependsOn: -1}, {Key: k(9), DependsOn: -1}}, // 9 not pinned
	}
	h := FromKeys([]store.GlobalKey{k(1), k(2)}, samples, 10)
	if h.Graph().NumTuples() != 2 || h.Graph().TotalEdgeWeight() != 1 {
		t.Fatalf("graph = %v", h.Graph())
	}
}

func TestRestrictRemapsDeps(t *testing.T) {
	samples := [][]Access{{{Key: k(1), DependsOn: -1}}}
	h := FromKeys([]store.GlobalKey{k(1), k(2)}, samples, 10)
	kept := h.Restrict([]Access{
		{Key: k(9), DependsOn: -1}, // dropped (cold)
		{Key: k(1), DependsOn: 0},  // dep through cold -> -1
		{Key: k(2), DependsOn: 1},  // dep on kept -> index 0
	})
	if len(kept) != 2 {
		t.Fatalf("kept = %v", kept)
	}
	if kept[0].DependsOn != -1 || kept[1].DependsOn != 0 {
		t.Fatalf("deps not remapped: %v", kept)
	}
}
