package hotset

import (
	"testing"

	"repro/internal/layout"
	"repro/internal/sim"
	"repro/internal/store"
)

func k(n uint64) store.GlobalKey { return store.Global(1, store.Key(n)) }

func TestDetectPicksMostFrequent(t *testing.T) {
	var samples [][]Access
	for i := 0; i < 100; i++ {
		samples = append(samples, []Access{{Key: k(1), DependsOn: -1}, {Key: k(2), DependsOn: -1}})
	}
	samples = append(samples, []Access{{Key: k(3), DependsOn: -1}})
	h := Detect(samples, 2)
	if h.Size() != 2 || !h.Contains(k(1)) || !h.Contains(k(2)) || h.Contains(k(3)) {
		t.Fatalf("hot set = %v", h.Keys())
	}
	if h.Freq(k(1)) != 100 {
		t.Fatalf("freq = %d", h.Freq(k(1)))
	}
}

func TestDetectTopKLargerThanUniverse(t *testing.T) {
	h := Detect([][]Access{{{Key: k(1), DependsOn: -1}}}, 10)
	if h.Size() != 1 {
		t.Fatalf("Size = %d", h.Size())
	}
}

func TestDetectGraphOnlyHotSubset(t *testing.T) {
	// txn touches hot 1,2 and cold 9; graph must connect 1-2 only.
	var samples [][]Access
	for i := 0; i < 10; i++ {
		samples = append(samples, []Access{
			{Key: k(1), DependsOn: -1},
			{Key: k(9), DependsOn: -1},
			{Key: k(2), DependsOn: -1},
		})
	}
	samples = append(samples, []Access{{Key: k(9), DependsOn: -1}})
	h := Detect(samples, 2)
	g := h.Graph()
	if g.NumTuples() != 2 {
		t.Fatalf("graph tuples = %d, want 2", g.NumTuples())
	}
	if g.TotalEdgeWeight() != 10 {
		t.Fatalf("edge weight = %d, want 10", g.TotalEdgeWeight())
	}
}

func TestDetectDependencyRemapping(t *testing.T) {
	// hot(1) <- cold(9) <- hot(2): after dropping the cold access, the
	// chain collapses; access 2's dependency pointed at the dropped op so
	// it becomes independent (conservative), while a direct hot->hot
	// dependency is preserved.
	samples := [][]Access{}
	for i := 0; i < 5; i++ {
		samples = append(samples, []Access{
			{Key: k(1), DependsOn: -1},
			{Key: k(2), DependsOn: 0}, // direct hot->hot dep
		})
		samples = append(samples, []Access{
			{Key: k(1), DependsOn: -1},
			{Key: k(9), DependsOn: 0},
			{Key: k(2), DependsOn: 1}, // dep via cold: dropped
		})
	}
	h := Detect(samples, 2)
	spec := layout.Spec{Stages: 2, ArraysPerStage: 1, SlotsPerArray: 1}
	l := layout.Optimal(h.Graph(), spec)
	s1, _ := l.SlotOf(layout.TupleID(k(1)))
	s2, _ := l.SlotOf(layout.TupleID(k(2)))
	if s1.Stage >= s2.Stage {
		t.Fatalf("direct dependency not honoured: %v vs %v", s1, s2)
	}
}

func TestBuildIndexSpill(t *testing.T) {
	var samples [][]Access
	for i := uint64(0); i < 6; i++ {
		samples = append(samples, [][]Access{{{Key: k(i), DependsOn: -1}}}...)
	}
	h := Detect(samples, 6)
	// Layout only 4 of the 6 (capacity-capped subset).
	g := layout.NewGraph()
	for _, key := range h.Keys()[:4] {
		g.AddTuple(layout.TupleID(key))
	}
	l := layout.Optimal(g, layout.Spec{Stages: 2, ArraysPerStage: 2, SlotsPerArray: 1})
	ix := BuildIndex(h, l)
	if ix.OnSwitchCount() != 4 || ix.SpilledCount() != 2 {
		t.Fatalf("on-switch=%d spilled=%d", ix.OnSwitchCount(), ix.SpilledCount())
	}
	for _, key := range h.Keys() {
		onSwitch := ix.OnSwitch(key)
		spilled := ix.Spilled(key)
		if onSwitch == spilled {
			t.Fatalf("key %v: onSwitch=%v spilled=%v (must be exactly one)", key, onSwitch, spilled)
		}
		if onSwitch {
			if _, ok := ix.Lookup(key); !ok {
				t.Fatalf("indexed key %v has no slot", key)
			}
		}
	}
	if ix.OnSwitch(k(999)) || ix.Spilled(k(999)) {
		t.Fatal("cold key classified as hot")
	}
}

func TestDeterministicDetection(t *testing.T) {
	rng := sim.NewRNG(5)
	var samples [][]Access
	for i := 0; i < 200; i++ {
		samples = append(samples, []Access{
			{Key: k(uint64(rng.Intn(20))), DependsOn: -1},
			{Key: k(uint64(rng.Intn(20))), DependsOn: -1},
		})
	}
	a := Detect(samples, 5).Keys()
	b := Detect(samples, 5).Keys()
	if len(a) != len(b) {
		t.Fatal("non-deterministic size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic hot set")
		}
	}
}
