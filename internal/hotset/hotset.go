// Package hotset implements P4DB's offline hot-tuple detection and the
// replicated hot index (Sections 3.1 and 6.1).
//
// Detection replays a representative sample of the workload statement by
// statement, counts per-tuple access frequencies, and selects the most
// frequently accessed tuples as the hot-set (bounded by the switch
// capacity). The same sample, restricted to the selected tuples, yields
// the transaction-access graph the declustered layout is computed from.
//
// At runtime every database node holds an Index replica: a small map from
// tuple key to its switch slot. It is consulted on every transaction to
// classify it hot/cold/warm and, for hot transactions, to build the packet
// header (single- vs multi-pass, required pipeline locks).
package hotset

import (
	"cmp"
	"slices"

	"repro/internal/layout"
	"repro/internal/store"
)

// Access is one statement of a sampled transaction: which tuple it touches
// and which earlier statement it depends on (-1 for none).
type Access struct {
	Key       store.GlobalKey
	DependsOn int
}

// HotSet is the result of offline detection.
type HotSet struct {
	keys  map[store.GlobalKey]struct{}
	freq  map[store.GlobalKey]int64
	graph *layout.Graph
}

// countFreq tallies per-tuple access frequencies over the sample.
func countFreq(samples [][]Access) map[store.GlobalKey]int64 {
	freq := make(map[store.GlobalKey]int64)
	for _, txn := range samples {
		for _, a := range txn {
			freq[a.Key]++
		}
	}
	return freq
}

// Detect replays the sampled transactions and returns the topK most
// frequently accessed tuples together with their access graph. Sample
// transactions that touch both hot and cold tuples contribute their hot
// subset to the graph (those are exactly the switch sub-transactions warm
// transactions will run).
func Detect(samples [][]Access, topK int) *HotSet {
	return detectTop(countFreq(samples), samples, topK)
}

// detectTop is Detect with the frequency tally already computed (DetectAuto
// needs the tally itself to find the hot/cold gap; recounting the whole
// sample for the selection pass would double the detection cost).
// kf pairs a tuple with its sampled frequency for the detection sorts.
// kfCompare orders by descending frequency, ascending key on ties — the
// exact total order the detectors have always used.
type kf struct {
	k store.GlobalKey
	f int64
}

func kfCompare(a, b kf) int {
	if a.f != b.f {
		if a.f > b.f {
			return -1
		}
		return 1
	}
	return cmp.Compare(a.k, b.k)
}

func detectTop(freq map[store.GlobalKey]int64, samples [][]Access, topK int) *HotSet {
	order := make([]kf, 0, len(freq))
	for k, f := range freq {
		order = append(order, kf{k, f})
	}
	slices.SortFunc(order, kfCompare)
	if topK > len(order) {
		topK = len(order)
	}
	h := &HotSet{
		keys:  make(map[store.GlobalKey]struct{}, topK),
		freq:  freq,
		graph: layout.NewGraph(),
	}
	for _, e := range order[:topK] {
		h.keys[e.k] = struct{}{}
		h.graph.AddTuple(layout.TupleID(e.k))
	}

	// Second pass: fold the hot subsets of all sampled transactions into
	// the access graph, remapping dependency indices to the kept subset.
	// The projection buffers are reused across transactions; AddTxn does
	// not retain its argument.
	var kept []layout.Access
	var remap []int
	for _, txn := range samples {
		kept = restrictInto(h.keys, txn, kept[:0], &remap)
		if len(kept) >= 2 {
			h.graph.AddTxn(kept)
		}
	}
	return h
}

// restrictInto projects txn onto the hot keys, appending to kept and using
// *remap as scratch (grown on demand). Dependencies through dropped cold
// accesses become independent.
func restrictInto(hot map[store.GlobalKey]struct{}, txn []Access, kept []layout.Access, remap *[]int) []layout.Access {
	if cap(*remap) < len(txn) {
		*remap = make([]int, len(txn))
	}
	rm := (*remap)[:len(txn)]
	for i := range rm {
		rm[i] = -1
	}
	for i, a := range txn {
		if _, ok := hot[a.Key]; !ok {
			continue
		}
		dep := -1
		if a.DependsOn >= 0 && a.DependsOn < i {
			dep = rm[a.DependsOn]
		}
		rm[i] = len(kept)
		kept = append(kept, layout.Access{Tuple: layout.TupleID(a.Key), DependsOn: dep})
	}
	return kept
}

// DetectAuto selects the hot-set without a preset size. Tuples sampled
// fewer than three times are noise and never hot. Among the rest, sorted
// by descending frequency, the detector cuts at the last point where the
// frequency drops by 4x or more between neighbours — under the paper's
// skews the hot tuples sit on a plateau one to two orders of magnitude
// above the cold tail, so that gap is the hot/cold boundary. If no such
// gap exists, every frequently-sampled tuple is hot (e.g. a 100%-hot
// workload). The result is capped at maxK tuples (the switch capacity),
// keeping the most frequent; the remainder stays on the database nodes
// (Figure 17's spill path).
func DetectAuto(samples [][]Access, maxK int) *HotSet {
	freq := countFreq(samples)
	return detectTop(freq, samples, autoCut(rankFreqs(freq), maxK))
}

// NoiseFloor is the minimum sample tally for a key to count as a
// detection candidate; rarer keys are sampling noise, never hot.
const NoiseFloor = 3

// rankFreqs filters the noise floor out of a tally and returns the
// remainder in detection order (descending frequency, ascending key).
func rankFreqs(freq map[store.GlobalKey]int64) []kf {
	kept := make([]kf, 0, len(freq))
	for k, f := range freq {
		if f >= NoiseFloor {
			kept = append(kept, kf{k, f})
		}
	}
	slices.SortFunc(kept, kfCompare)
	return kept
}

// autoCut applies DetectAuto's plateau heuristic to an already-ranked
// list: cut at the last >=4x inter-neighbour drop, cap at maxK.
func autoCut(ranked []kf, maxK int) int {
	k := len(ranked)
	for i := len(ranked) - 1; i > 0; i-- {
		if ranked[i-1].f >= 4*ranked[i].f {
			k = i
			break
		}
	}
	if k > maxK {
		k = maxK
	}
	return k
}

// SelectAuto applies DetectAuto's selection — noise floor, frequency
// ranking, plateau cut, capacity cap — to an already-folded frequency
// tally, and returns the selected keys in detection order. It is the
// online half of detection: the adaptive layout controller folds its
// sliding window into a tally and selects from it with exactly the
// offline heuristic, so the two detectors agree on any common sample.
func SelectAuto(freq map[store.GlobalKey]int64, maxK int) []store.GlobalKey {
	ranked := rankFreqs(freq)
	keys := make([]store.GlobalKey, autoCut(ranked, maxK))
	for i := range keys {
		keys[i] = ranked[i].k
	}
	return keys
}

// SelectTop is SelectAuto without the plateau cut: every key above the
// noise floor, frequency-ranked, capped at maxK. Online re-detection uses
// it because a sliding window holds orders of magnitude fewer samples
// than the offline replay — a plateau cut calibrated for dense tallies
// truncates a sparse one to its first handful of keys, while the
// controller's sticky-resident policy already provides the stability the
// cut exists to buy.
func SelectTop(freq map[store.GlobalKey]int64, maxK int) []store.GlobalKey {
	ranked := rankFreqs(freq)
	if len(ranked) > maxK {
		ranked = ranked[:maxK]
	}
	keys := make([]store.GlobalKey, len(ranked))
	for i := range keys {
		keys[i] = ranked[i].k
	}
	return keys
}

// FromKeys builds a hot-set from an a-priori known tuple list (the
// operator pinned the offload set explicitly), truncated to the maxK most
// frequently sampled tuples. The access graph is still derived from the
// sample so the layout algorithm has co-access information.
func FromKeys(keys []store.GlobalKey, samples [][]Access, maxK int) *HotSet {
	freq := countFreq(samples)
	decorated := make([]kf, len(keys))
	for i, k := range keys {
		decorated[i] = kf{k, freq[k]}
	}
	slices.SortFunc(decorated, kfCompare)
	if maxK < len(decorated) {
		decorated = decorated[:maxK]
	}
	sorted := make([]store.GlobalKey, len(decorated))
	for i, e := range decorated {
		sorted[i] = e.k
	}
	h := &HotSet{
		keys:  make(map[store.GlobalKey]struct{}, len(sorted)),
		freq:  freq,
		graph: layout.NewGraph(),
	}
	for _, k := range sorted {
		h.keys[k] = struct{}{}
		h.graph.AddTuple(layout.TupleID(k))
	}
	for _, txn := range samples {
		if kept := h.Restrict(txn); len(kept) >= 2 {
			h.graph.AddTxn(kept)
		}
	}
	return h
}

// Contains reports whether key was selected as hot.
func (h *HotSet) Contains(k store.GlobalKey) bool {
	_, ok := h.keys[k]
	return ok
}

// Freq returns the sampled access frequency of key.
func (h *HotSet) Freq(k store.GlobalKey) int64 { return h.freq[k] }

// Size returns the number of hot tuples.
func (h *HotSet) Size() int { return len(h.keys) }

// Keys returns the hot tuples in deterministic (sorted) order.
func (h *HotSet) Keys() []store.GlobalKey {
	out := make([]store.GlobalKey, 0, len(h.keys))
	for k := range h.keys {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

// Graph returns the transaction-access graph over the hot tuples, ready
// for the layout algorithm.
func (h *HotSet) Graph() *layout.Graph { return h.graph }

// Restrict projects a sampled transaction onto the hot-set, remapping
// dependency indices to the kept subset (dependencies through dropped
// cold accesses become independent). It is the same projection Detect
// uses to build the access graph, exposed for layout refinement.
func (h *HotSet) Restrict(txn []Access) []layout.Access {
	var remap []int
	return restrictInto(h.keys, txn, make([]layout.Access, 0, len(txn)), &remap)
}

// Index is the per-node replica of the hot-tuple index. It is small (a few
// thousand entries) so on a real node it lives in CPU caches; here the map
// lookup itself stands in for that cost.
type Index struct {
	slots   map[store.GlobalKey]layout.Slot
	spilled map[store.GlobalKey]struct{}
}

// BuildIndex combines the hot-set and the computed layout: hot tuples with
// a switch slot are indexed; hot tuples that did not fit (the layout was
// computed over a capacity-capped subset, Figure 17) are recorded as
// spilled and treated as cold at runtime.
func BuildIndex(h *HotSet, l *layout.Layout) *Index {
	ix := &Index{
		slots:   make(map[store.GlobalKey]layout.Slot, l.NumTuples()),
		spilled: make(map[store.GlobalKey]struct{}),
	}
	for _, k := range h.Keys() {
		if s, ok := l.SlotOf(layout.TupleID(k)); ok {
			ix.slots[k] = s
		} else {
			ix.spilled[k] = struct{}{}
		}
	}
	return ix
}

// Lookup returns the switch slot of key, if key is on the switch.
func (ix *Index) Lookup(k store.GlobalKey) (layout.Slot, bool) {
	s, ok := ix.slots[k]
	return s, ok
}

// OnSwitch reports whether key is stored on the switch.
func (ix *Index) OnSwitch(k store.GlobalKey) bool {
	_, ok := ix.slots[k]
	return ok
}

// Spilled reports whether key was detected hot but did not fit on the
// switch.
func (ix *Index) Spilled(k store.GlobalKey) bool {
	_, ok := ix.spilled[k]
	return ok
}

// Keys returns the on-switch keys in deterministic (sorted) order — the
// iteration the live-migration diff walks the old placement in.
func (ix *Index) Keys() []store.GlobalKey {
	out := make([]store.GlobalKey, 0, len(ix.slots))
	for k := range ix.slots {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

// OnSwitchCount returns the number of indexed (on-switch) tuples.
func (ix *Index) OnSwitchCount() int { return len(ix.slots) }

// SpilledCount returns the number of spilled hot tuples.
func (ix *Index) SpilledCount() int { return len(ix.spilled) }
