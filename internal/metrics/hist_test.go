package metrics

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/sim"
)

// TestLatencyHistExactSmall: values below the sub-bucket width are exact —
// percentiles match the sample-keeping Histogram bit for bit.
func TestLatencyHistExactSmall(t *testing.T) {
	var h LatencyHist
	for v := sim.Time(0); v < 32; v++ {
		h.Record(v)
	}
	if h.Count() != 32 {
		t.Fatalf("count = %d, want 32", h.Count())
	}
	if got := h.Percentile(50); got != 15 {
		t.Fatalf("p50 = %d, want 15", got)
	}
	if got := h.Percentile(100); got != 31 {
		t.Fatalf("p100 = %d, want 31", got)
	}
	if got := h.Max(); got != 31 {
		t.Fatalf("max = %d, want 31", got)
	}
}

// TestLatencyHistMeanMatchesHistogram: Mean must be bit-identical to the
// exact Histogram (same integer sum/count division) — bench.Digest hashes
// MeanLatUs, so this is the golden-digest safety property.
func TestLatencyHistMeanMatchesHistogram(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var exact Histogram
	var h LatencyHist
	for i := 0; i < 10000; i++ {
		v := sim.Time(rng.Int63n(50 * int64(sim.Millisecond)))
		exact.Record(v)
		h.Record(v)
	}
	if h.Mean() != exact.Mean() {
		t.Fatalf("Mean diverged: LatencyHist %d vs Histogram %d", h.Mean(), exact.Mean())
	}
	if h.Max() != exact.Max() {
		t.Fatalf("Max diverged: %d vs %d", h.Max(), exact.Max())
	}
	if h.Count() != int64(exact.Count()) {
		t.Fatalf("Count diverged: %d vs %d", h.Count(), exact.Count())
	}
}

// TestLatencyHistPercentileBound: bucketed percentiles are upper bounds
// within one sub-bucket width (1/32 relative) of the exact percentile.
func TestLatencyHistPercentileBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h LatencyHist
	samples := make([]sim.Time, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Mix of octaves: microseconds to tens of milliseconds.
		v := sim.Time(rng.Int63n(int64(sim.Microsecond) << uint(rng.Intn(15))))
		samples = append(samples, v)
		h.Record(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, p := range []float64{50, 90, 95, 99, 99.9, 100} {
		idx := int(p/100*float64(len(samples))) - 1
		if idx < 0 {
			idx = 0
		}
		want := samples[idx]
		got := h.Percentile(p)
		if got < want {
			t.Fatalf("p%g = %d below exact %d: percentile must be an upper bound", p, got, want)
		}
		// Upper bucket edge is within 1/32 relative of the sample it covers.
		if limit := want + want/latHistSub + 1; got > limit {
			t.Fatalf("p%g = %d exceeds %d (exact %d + bucket width)", p, got, limit, want)
		}
	}
}

// TestLatencyHistMerge: merged histogram equals one built from the union.
func TestLatencyHistMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var a, b, union LatencyHist
	for i := 0; i < 5000; i++ {
		v := sim.Time(rng.Int63n(int64(sim.Millisecond)))
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		union.Record(v)
	}
	a.Merge(&b)
	if a.Count() != union.Count() || a.Sum() != union.Sum() || a.Max() != union.Max() {
		t.Fatalf("merge mismatch: count %d/%d sum %d/%d max %d/%d",
			a.Count(), union.Count(), a.Sum(), union.Sum(), a.Max(), union.Max())
	}
	for _, p := range []float64{50, 95, 99} {
		if a.Percentile(p) != union.Percentile(p) {
			t.Fatalf("p%g mismatch after merge: %d vs %d", p, a.Percentile(p), union.Percentile(p))
		}
	}
}

// TestLatencyHistEmptyAndReset: zero-value behavior and reuse.
func TestLatencyHistEmptyAndReset(t *testing.T) {
	var h LatencyHist
	if h.Mean() != 0 || h.Percentile(99) != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Record(100)
	h.Record(-5) // clamps to 0
	if h.Count() != 2 || h.Sum() != 100 {
		t.Fatalf("count %d sum %d after clamp, want 2/100", h.Count(), h.Sum())
	}
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("Reset must zero the histogram")
	}
}

// TestLatencyHistBucketMonotone: bucket mapping is monotone and the
// reported upper edge always covers the value, across every octave
// including the extremes of the int64 range.
func TestLatencyHistBucketMonotone(t *testing.T) {
	prev := -1
	for shift := 0; shift < 63; shift++ {
		for _, off := range []int64{0, 1} {
			v := sim.Time(int64(1)<<uint(shift) + off)
			if v < 0 {
				continue
			}
			b := latBucket(v)
			if b < prev {
				t.Fatalf("bucket not monotone at %d: %d < %d", v, b, prev)
			}
			prev = b
			if edge := latBucketMax(b); edge < v {
				t.Fatalf("bucket edge %d below value %d", edge, v)
			}
		}
	}
}

// TestLatencyHistRecordAllocs: the record path must not allocate.
func TestLatencyHistRecordAllocs(t *testing.T) {
	var h LatencyHist
	v := sim.Time(12345)
	if n := testing.AllocsPerRun(1000, func() {
		h.Record(v)
		v += 977
	}); n != 0 {
		t.Fatalf("Record allocates %v times per op, want 0", n)
	}
}
