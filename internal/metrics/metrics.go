// Package metrics provides counters, latency histograms and per-component
// time breakdowns for the simulated DBMS. All types are plain (non-atomic)
// because the discrete-event simulator runs one process at a time; metric
// updates are therefore race-free by construction.
package metrics

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Component identifies where transaction time is spent, matching the
// latency breakdown of Figure 18a in the paper.
type Component int

// Breakdown components.
const (
	LockAcquisition Component = iota
	LocalAccess
	RemoteAccess
	SwitchTxn
	TxnEngine
	numComponents
)

// String returns the paper's label for the component.
func (c Component) String() string {
	switch c {
	case LockAcquisition:
		return "Lock Acquisition"
	case LocalAccess:
		return "Local Access"
	case RemoteAccess:
		return "Remote Access"
	case SwitchTxn:
		return "Switch Txn"
	case TxnEngine:
		return "Txn Engine"
	default:
		return fmt.Sprintf("Component(%d)", int(c))
	}
}

// Breakdown accumulates virtual time per component.
type Breakdown struct {
	total [numComponents]sim.Time
	n     int64
}

// Add accrues d to component c.
func (b *Breakdown) Add(c Component, d sim.Time) { b.total[c] += d }

// AddTxn records that one transaction contributed to the breakdown
// (used to compute per-transaction averages).
func (b *Breakdown) AddTxn() { b.n++ }

// Total returns the accumulated time for component c.
func (b *Breakdown) Total(c Component) sim.Time { return b.total[c] }

// PerTxn returns the average time per recorded transaction for c.
func (b *Breakdown) PerTxn(c Component) sim.Time {
	if b.n == 0 {
		return 0
	}
	return b.total[c] / sim.Time(b.n)
}

// Txns returns the number of transactions recorded.
func (b *Breakdown) Txns() int64 { return b.n }

// Components lists all breakdown components in display order.
func Components() []Component {
	return []Component{LockAcquisition, LocalAccess, RemoteAccess, SwitchTxn, TxnEngine}
}

// Merge adds other's totals into b.
func (b *Breakdown) Merge(other *Breakdown) {
	for i := range b.total {
		b.total[i] += other.total[i]
	}
	b.n += other.n
}

// Histogram records sim.Time samples and reports count, mean and
// percentiles. Samples are kept verbatim; simulated runs are short enough
// that exact percentiles are affordable and reproducible.
type Histogram struct {
	samples []sim.Time
	sum     sim.Time
	sorted  bool
}

// Record adds one sample.
func (h *Histogram) Record(v sim.Time) {
	h.samples = append(h.samples, v)
	h.sum += v
	h.sorted = false
}

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Mean returns the average sample, or 0 when empty.
func (h *Histogram) Mean() sim.Time {
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / sim.Time(len(h.samples))
}

// Percentile returns the p-th percentile (0 < p <= 100), or 0 when empty.
func (h *Histogram) Percentile(p float64) sim.Time {
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
	idx := int(p/100*float64(len(h.samples))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.samples) {
		idx = len(h.samples) - 1
	}
	return h.samples[idx]
}

// Max returns the largest sample, or 0 when empty.
func (h *Histogram) Max() sim.Time { return h.Percentile(100) }

// Merge appends other's samples into h.
func (h *Histogram) Merge(other *Histogram) {
	h.samples = append(h.samples, other.samples...)
	h.sum += other.sum
	h.sorted = false
}

// Counters tracks the commit/abort accounting a benchmark run reports.
type Counters struct {
	CommittedHot  int64 // hot transactions committed (on switch or on hot tuples)
	CommittedCold int64 // cold transactions committed
	CommittedWarm int64 // warm transactions committed
	Aborts        int64 // abort events (a transaction may abort several times before committing)
	Recircs       int64 // switch packet recirculations observed by this worker
	MultiPass     int64 // switch transactions that needed more than one pass
	SinglePass    int64 // switch transactions executed in a single pass
}

// Committed returns total committed transactions across classes.
func (c *Counters) Committed() int64 {
	return c.CommittedHot + c.CommittedCold + c.CommittedWarm
}

// Merge adds other into c.
func (c *Counters) Merge(other *Counters) {
	c.CommittedHot += other.CommittedHot
	c.CommittedCold += other.CommittedCold
	c.CommittedWarm += other.CommittedWarm
	c.Aborts += other.Aborts
	c.Recircs += other.Recircs
	c.MultiPass += other.MultiPass
	c.SinglePass += other.SinglePass
}

// AbortRate returns aborts / (aborts + committed), the fraction of
// execution attempts that failed.
func (c *Counters) AbortRate() float64 {
	att := float64(c.Aborts + c.Committed())
	if att == 0 {
		return 0
	}
	return float64(c.Aborts) / att
}
