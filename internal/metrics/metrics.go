// Package metrics provides counters, latency histograms and per-component
// time breakdowns for the simulated DBMS. The per-run types (Counters,
// Breakdown, Histogram) are plain (non-atomic) because the discrete-event
// simulator runs one process at a time; metric updates are therefore
// race-free by construction, and every run owns its instances — nothing
// here is shared between the concurrent runs of a parallel sweep.
//
// CacheCounters is the one exception: it instruments process-wide caches
// (the offline-detection artifact cache in internal/core) that concurrent
// runs deliberately share, so it is atomic.
package metrics

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/sim"
)

// CacheCounters instruments a process-wide cache that concurrent
// simulation runs share: hits, misses, evictions and the live entry
// count. All methods are safe for concurrent use.
type CacheCounters struct {
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	size      atomic.Int64
}

// Hit records one cache hit.
func (c *CacheCounters) Hit() { c.hits.Add(1) }

// Miss records one cache miss.
func (c *CacheCounters) Miss() { c.misses.Add(1) }

// Evict records n entries dropped by the eviction policy.
func (c *CacheCounters) Evict(n int64) {
	c.evictions.Add(n)
	c.size.Add(-n)
}

// Insert records one entry added to the cache.
func (c *CacheCounters) Insert() { c.size.Add(1) }

// Stats returns a snapshot of the counters. The fields are read
// individually, so a snapshot taken while the cache is in use is
// approximate — exact once the cache is quiescent.
func (c *CacheCounters) Stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Size:      c.size.Load(),
	}
}

// Reset zeroes every counter (tests and repeated sweeps).
func (c *CacheCounters) Reset() {
	c.hits.Store(0)
	c.misses.Store(0)
	c.evictions.Store(0)
	c.size.Store(0)
}

// CacheStats is a point-in-time snapshot of a CacheCounters.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Size      int64
}

// HitRate returns hits / (hits + misses), or 0 when the cache is unused.
func (s CacheStats) HitRate() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// String formats the snapshot for progress output.
func (s CacheStats) String() string {
	return fmt.Sprintf("%d hits / %d misses (%.0f%% hit rate), %d live, %d evicted",
		s.Hits, s.Misses, 100*s.HitRate(), s.Size, s.Evictions)
}

// Component identifies where transaction time is spent, matching the
// latency breakdown of Figure 18a in the paper.
type Component int

// Breakdown components.
const (
	LockAcquisition Component = iota
	LocalAccess
	RemoteAccess
	SwitchTxn
	TxnEngine
	numComponents
)

// String returns the paper's label for the component.
func (c Component) String() string {
	switch c {
	case LockAcquisition:
		return "Lock Acquisition"
	case LocalAccess:
		return "Local Access"
	case RemoteAccess:
		return "Remote Access"
	case SwitchTxn:
		return "Switch Txn"
	case TxnEngine:
		return "Txn Engine"
	default:
		return fmt.Sprintf("Component(%d)", int(c))
	}
}

// Breakdown accumulates virtual time per component.
type Breakdown struct {
	total [numComponents]sim.Time
	n     int64
}

// Add accrues d to component c.
func (b *Breakdown) Add(c Component, d sim.Time) { b.total[c] += d }

// AddTxn records that one transaction contributed to the breakdown
// (used to compute per-transaction averages).
func (b *Breakdown) AddTxn() { b.n++ }

// Total returns the accumulated time for component c.
func (b *Breakdown) Total(c Component) sim.Time { return b.total[c] }

// PerTxn returns the average time per recorded transaction for c.
func (b *Breakdown) PerTxn(c Component) sim.Time {
	if b.n == 0 {
		return 0
	}
	return b.total[c] / sim.Time(b.n)
}

// Txns returns the number of transactions recorded.
func (b *Breakdown) Txns() int64 { return b.n }

// Components lists all breakdown components in display order.
func Components() []Component {
	return []Component{LockAcquisition, LocalAccess, RemoteAccess, SwitchTxn, TxnEngine}
}

// Merge adds other's totals into b.
func (b *Breakdown) Merge(other *Breakdown) {
	for i := range b.total {
		b.total[i] += other.total[i]
	}
	b.n += other.n
}

// Histogram records sim.Time samples and reports count, mean and
// percentiles. Samples are kept verbatim; simulated runs are short enough
// that exact percentiles are affordable and reproducible.
type Histogram struct {
	samples []sim.Time
	sum     sim.Time
	sorted  bool
}

// Record adds one sample.
func (h *Histogram) Record(v sim.Time) {
	h.samples = append(h.samples, v)
	h.sum += v
	h.sorted = false
}

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Mean returns the average sample, or 0 when empty.
func (h *Histogram) Mean() sim.Time {
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / sim.Time(len(h.samples))
}

// Percentile returns the p-th percentile (0 < p <= 100), or 0 when empty.
func (h *Histogram) Percentile(p float64) sim.Time {
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
	idx := int(p/100*float64(len(h.samples))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.samples) {
		idx = len(h.samples) - 1
	}
	return h.samples[idx]
}

// Max returns the largest sample, or 0 when empty.
func (h *Histogram) Max() sim.Time { return h.Percentile(100) }

// Merge appends other's samples into h.
func (h *Histogram) Merge(other *Histogram) {
	h.samples = append(h.samples, other.samples...)
	h.sum += other.sum
	h.sorted = false
}

// Counters tracks the commit/abort accounting a benchmark run reports.
type Counters struct {
	CommittedHot  int64 // hot transactions committed (on switch or on hot tuples)
	CommittedCold int64 // cold transactions committed
	CommittedWarm int64 // warm transactions committed
	Aborts        int64 // abort events (a transaction may abort several times before committing)
	Recircs       int64 // switch packet recirculations observed by this worker
	MultiPass     int64 // switch transactions that needed more than one pass
	SinglePass    int64 // switch transactions executed in a single pass
}

// Committed returns total committed transactions across classes.
func (c *Counters) Committed() int64 {
	return c.CommittedHot + c.CommittedCold + c.CommittedWarm
}

// Merge adds other into c.
func (c *Counters) Merge(other *Counters) {
	c.CommittedHot += other.CommittedHot
	c.CommittedCold += other.CommittedCold
	c.CommittedWarm += other.CommittedWarm
	c.Aborts += other.Aborts
	c.Recircs += other.Recircs
	c.MultiPass += other.MultiPass
	c.SinglePass += other.SinglePass
}

// AbortRate returns aborts / (aborts + committed), the fraction of
// execution attempts that failed.
func (c *Counters) AbortRate() float64 {
	att := float64(c.Aborts + c.Committed())
	if att == 0 {
		return 0
	}
	return float64(c.Aborts) / att
}
