package metrics

import (
	"math/bits"

	"repro/internal/sim"
)

// LatencyHist is a fixed-bucket latency histogram: log-spaced buckets with
// latHistSub linear sub-buckets per octave (relative bucket width 1/latHistSub,
// so percentile error is bounded at ~3%), plus exact count, sum, and max.
// Record is a couple of shifts and two adds — no allocation, no lock — so it
// is safe on the serving hot path (one histogram per connection, merged at
// report time) and cheap enough for the sim's per-commit accounting.
//
// Mean is exact (sum/count with the same integer division the sample-keeping
// Histogram used), which keeps bench.Digest's MeanLatUs column bit-identical;
// Percentile is bucketed and therefore excluded from digests — print-only.
type LatencyHist struct {
	n      int64
	sum    sim.Time
	max    sim.Time
	counts [latHistBuckets]int64
}

const (
	// latHistSubBits sizes the linear sub-buckets per octave: 2^5 = 32
	// sub-buckets, values below 32ns are exact.
	latHistSubBits = 5
	latHistSub     = 1 << latHistSubBits
	// latHistBuckets covers the full non-negative int64 range: octaves
	// latHistSubBits+1..64 after the exact region.
	latHistBuckets = (64 - latHistSubBits) * latHistSub
)

// latBucket maps a non-negative value to its bucket index.
func latBucket(v sim.Time) int {
	u := uint64(v)
	if u < latHistSub {
		return int(u)
	}
	e := bits.Len64(u) // >= latHistSubBits+1
	return (e-latHistSubBits)<<latHistSubBits + int((u>>(e-1-latHistSubBits))&(latHistSub-1))
}

// latBucketMax returns the largest value mapping to bucket idx.
func latBucketMax(idx int) sim.Time {
	if idx < latHistSub {
		return sim.Time(idx)
	}
	e := idx>>latHistSubBits + latHistSubBits
	width := sim.Time(1) << (e - 1 - latHistSubBits)
	base := sim.Time(1) << (e - 1)
	return base + sim.Time(idx&(latHistSub-1)+1)*width - 1
}

// Record adds one sample. Negative samples clamp to zero.
func (h *LatencyHist) Record(v sim.Time) {
	if v < 0 {
		v = 0
	}
	h.counts[latBucket(v)]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded samples.
func (h *LatencyHist) Count() int64 { return h.n }

// Sum returns the exact sum of all recorded samples.
func (h *LatencyHist) Sum() sim.Time { return h.sum }

// Mean returns the exact average sample, or 0 when empty.
func (h *LatencyHist) Mean() sim.Time {
	if h.n == 0 {
		return 0
	}
	return h.sum / sim.Time(h.n)
}

// Max returns the exact largest sample, or 0 when empty.
func (h *LatencyHist) Max() sim.Time { return h.max }

// Percentile returns an upper bound on the p-th percentile (0 < p <= 100):
// the upper edge of the bucket holding the rank-p sample, clamped to the
// exact max. Within ~3% of the true value by construction.
func (h *LatencyHist) Percentile(p float64) sim.Time {
	if h.n == 0 {
		return 0
	}
	rank := int64(p / 100 * float64(h.n))
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var seen int64
	for i := range h.counts {
		seen += h.counts[i]
		if seen >= rank {
			if b := latBucketMax(i); b < h.max {
				return b
			}
			return h.max
		}
	}
	return h.max
}

// Merge adds other's samples into h.
func (h *LatencyHist) Merge(other *LatencyHist) {
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	h.n += other.n
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Reset zeroes the histogram for reuse.
func (h *LatencyHist) Reset() {
	*h = LatencyHist{}
}
