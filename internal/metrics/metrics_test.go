package metrics

import (
	"testing"

	"repro/internal/sim"
)

func TestBreakdownAccumulates(t *testing.T) {
	var b Breakdown
	b.Add(LockAcquisition, 10)
	b.Add(LockAcquisition, 5)
	b.Add(SwitchTxn, 7)
	if b.Total(LockAcquisition) != 15 || b.Total(SwitchTxn) != 7 {
		t.Fatalf("totals wrong: %v %v", b.Total(LockAcquisition), b.Total(SwitchTxn))
	}
}

func TestBreakdownPerTxn(t *testing.T) {
	var b Breakdown
	b.Add(RemoteAccess, 100)
	b.AddTxn()
	b.AddTxn()
	if got := b.PerTxn(RemoteAccess); got != 50 {
		t.Fatalf("PerTxn = %v, want 50", got)
	}
	var empty Breakdown
	if empty.PerTxn(RemoteAccess) != 0 {
		t.Fatal("PerTxn on empty breakdown should be 0")
	}
}

func TestBreakdownMerge(t *testing.T) {
	var a, b Breakdown
	a.Add(LocalAccess, 3)
	a.AddTxn()
	b.Add(LocalAccess, 4)
	b.AddTxn()
	a.Merge(&b)
	if a.Total(LocalAccess) != 7 || a.Txns() != 2 {
		t.Fatalf("merge wrong: %v txns=%d", a.Total(LocalAccess), a.Txns())
	}
}

func TestComponentStrings(t *testing.T) {
	for _, c := range Components() {
		if c.String() == "" {
			t.Fatalf("component %d has empty label", c)
		}
	}
}

func TestHistogramMeanAndPercentiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Record(sim.Time(i))
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 50 { // (1+..+100)/100 = 50.5 truncated
		t.Fatalf("Mean = %v, want 50", h.Mean())
	}
	if p := h.Percentile(50); p != 50 {
		t.Fatalf("P50 = %v, want 50", p)
	}
	if p := h.Percentile(99); p != 99 {
		t.Fatalf("P99 = %v, want 99", p)
	}
	if h.Max() != 100 {
		t.Fatalf("Max = %v, want 100", h.Max())
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Percentile(50) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramRecordAfterPercentile(t *testing.T) {
	var h Histogram
	h.Record(5)
	_ = h.Percentile(50)
	h.Record(1) // must re-sort lazily
	if got := h.Percentile(1); got != 1 {
		t.Fatalf("P1 = %v, want 1", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Record(10)
	b.Record(20)
	a.Merge(&b)
	if a.Count() != 2 || a.Mean() != 15 {
		t.Fatalf("merge wrong: count=%d mean=%v", a.Count(), a.Mean())
	}
}

func TestCounters(t *testing.T) {
	c := Counters{CommittedHot: 3, CommittedCold: 2, CommittedWarm: 1, Aborts: 6}
	if c.Committed() != 6 {
		t.Fatalf("Committed = %d, want 6", c.Committed())
	}
	if got := c.AbortRate(); got != 0.5 {
		t.Fatalf("AbortRate = %v, want 0.5", got)
	}
	var zero Counters
	if zero.AbortRate() != 0 {
		t.Fatal("AbortRate of zero counters should be 0")
	}
}

func TestCountersMerge(t *testing.T) {
	a := Counters{CommittedHot: 1, Aborts: 2, Recircs: 3, SinglePass: 4}
	b := Counters{CommittedCold: 5, CommittedWarm: 6, MultiPass: 7}
	a.Merge(&b)
	if a.Committed() != 12 || a.Recircs != 3 || a.MultiPass != 7 || a.SinglePass != 4 {
		t.Fatalf("merge wrong: %+v", a)
	}
}
