package pisa

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/txnwire"
)

// Tests for the packet-metadata opcodes (accumulator + ok-flag) that
// implement read-dependent and chained-conditional writes (Table 1).

func TestReadClearAndAddAcc(t *testing.T) {
	e := sim.NewEnv(1)
	sw := New(e, testConfig())
	sw.WriteRegister(0, 0, 0, 30) // savings(a)
	sw.WriteRegister(1, 0, 0, 12) // checking(a)
	// Amalgamate: drain both accounts of A into checking(b) at stage 2.
	pkt := &txnwire.Packet{Instrs: []txnwire.Instr{
		{Op: txnwire.OpReadClear, Stage: 0, Array: 0, Index: 0},
		{Op: txnwire.OpReadClear, Stage: 1, Array: 0, Index: 0},
		{Op: txnwire.OpAddAcc, Stage: 2, Array: 0, Index: 0},
	}}
	resp := execOne(t, sw, e, pkt)
	if resp.Results[0].Value != 30 || resp.Results[1].Value != 12 {
		t.Fatalf("ReadClear results = %+v", resp.Results)
	}
	if sw.ReadRegister(0, 0, 0) != 0 || sw.ReadRegister(1, 0, 0) != 0 {
		t.Fatal("ReadClear did not zero the registers")
	}
	if got := sw.ReadRegister(2, 0, 0); got != 42 {
		t.Fatalf("AddAcc landed %d, want 42", got)
	}
}

func TestAddIfOKChainsWithCondAdd(t *testing.T) {
	e := sim.NewEnv(1)
	sw := New(e, testConfig())
	sw.WriteRegister(0, 0, 0, 100) // debit account
	// Successful transfer: debit 40, credit 40.
	ok := &txnwire.Packet{Instrs: []txnwire.Instr{
		{Op: txnwire.OpCondAddGE0, Stage: 0, Array: 0, Index: 0, Operand: -40},
		{Op: txnwire.OpAddIfOK, Stage: 1, Array: 0, Index: 0, Operand: 40},
	}}
	resp := execOne(t, sw, e, ok)
	if !resp.Results[0].OK || !resp.Results[1].OK {
		t.Fatalf("transfer failed: %+v", resp.Results)
	}
	if sw.ReadRegister(0, 0, 0) != 60 || sw.ReadRegister(1, 0, 0) != 40 {
		t.Fatal("transfer amounts wrong")
	}
	// Failing transfer: debit 100 from 60 -> both legs refused.
	e2 := sim.NewEnv(2)
	bad := &txnwire.Packet{Instrs: []txnwire.Instr{
		{Op: txnwire.OpCondAddGE0, Stage: 0, Array: 0, Index: 0, Operand: -100},
		{Op: txnwire.OpAddIfOK, Stage: 1, Array: 0, Index: 0, Operand: 100},
	}}
	resp2 := execOne(t, sw, e2, bad)
	if resp2.Results[0].OK || resp2.Results[1].OK {
		t.Fatalf("failing transfer applied: %+v", resp2.Results)
	}
	if sw.ReadRegister(0, 0, 0) != 60 || sw.ReadRegister(1, 0, 0) != 40 {
		t.Fatal("failing transfer mutated state — money created or destroyed")
	}
}

func TestMetadataSurvivesRecirculation(t *testing.T) {
	// The accumulator is packet metadata and must persist across passes:
	// ReadClear at stage 1 then AddAcc at stage 0 forces a second pass.
	e := sim.NewEnv(1)
	sw := New(e, testConfig())
	sw.WriteRegister(1, 0, 0, 7)
	pkt := &txnwire.Packet{
		Header: txnwire.Header{IsMultipass: true},
		Instrs: []txnwire.Instr{
			{Op: txnwire.OpReadClear, Stage: 1, Array: 0, Index: 0},
			{Op: txnwire.OpAddAcc, Stage: 0, Array: 0, Index: 0},
		},
	}
	resp := execOne(t, sw, e, pkt)
	if resp.Recircs != 0 && resp.Results[1].Value != 7 {
		t.Fatalf("results = %+v", resp.Results)
	}
	if got := sw.ReadRegister(0, 0, 0); got != 7 {
		t.Fatalf("AddAcc after recirculation landed %d, want 7", got)
	}
}

// TestApplyTxnMatchesExec: replaying a transaction through the control
// plane (recovery path) must produce exactly the data-plane results.
func TestApplyTxnMatchesExec(t *testing.T) {
	f := func(seed uint16) bool {
		cfg := testConfig()
		rng := sim.NewRNG(uint64(seed))
		n := rng.Intn(5) + 1
		instrs := make([]txnwire.Instr, n)
		for i := range instrs {
			instrs[i] = txnwire.Instr{
				Op:      txnwire.Op(rng.Intn(8)),
				Stage:   uint8(i % cfg.Stages),
				Array:   0,
				Index:   uint32(rng.Intn(4)),
				Operand: int64(rng.Intn(40) - 20),
			}
		}
		init := make([]int64, 8)
		for i := range init {
			init[i] = int64(rng.Intn(50))
		}
		seed64 := uint64(seed)

		// Data plane.
		e := sim.NewEnv(seed64)
		live := New(e, cfg)
		for i, v := range init {
			live.WriteRegister(uint8(i%cfg.Stages), 0, uint32(i/cfg.Stages), v)
		}
		pkt := &txnwire.Packet{Header: txnwire.Header{IsMultipass: true}, Instrs: instrs}
		var resp *txnwire.Response
		var err error
		e.Spawn("c", func(p *sim.Proc) { resp, err = live.Exec(p, pkt) })
		e.Run()
		if err != nil {
			return false
		}

		// Control plane.
		ref := New(sim.NewEnv(0), cfg)
		for i, v := range init {
			ref.WriteRegister(uint8(i%cfg.Stages), 0, uint32(i/cfg.Stages), v)
		}
		got := ref.ApplyTxn(instrs)
		if len(got) != len(resp.Results) {
			return false
		}
		for i := range got {
			if got[i] != resp.Results[i] {
				return false
			}
		}
		// And identical final state.
		a, b := live.Snapshot(), ref.Snapshot()
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
