package pisa

import "repro/internal/txnwire"

// arrayPos linearizes a (stage, array) coordinate for ordering.
func arrayPos(in txnwire.Instr) int {
	return int(in.Stage)<<8 | int(in.Array)
}

// SplitPasses partitions an instruction sequence into the pipeline passes
// the switch memory model requires (Section 4.1):
//
//   - within one pass, register-array positions must be strictly
//     increasing in (stage, array) order — the pipeline flows forward and
//     each stateful ALU fires at most once per packet;
//   - an instruction whose position is not after the previous one starts a
//     new pass (the packet recirculates and comes around again).
//
// The instruction ORDER is preserved: operations may depend on each other
// (e.g. a read feeding a later write), so the splitter never reorders, it
// only inserts pass boundaries greedily. A sequence already laid out by
// the declustering algorithm in ascending stage order therefore yields a
// single pass.
func SplitPasses(instrs []txnwire.Instr) [][]txnwire.Instr {
	if len(instrs) == 0 {
		return nil
	}
	var passes [][]txnwire.Instr
	start := 0
	last := -1
	for i, in := range instrs {
		pos := arrayPos(in)
		if pos <= last {
			passes = append(passes, instrs[start:i])
			start = i
		}
		last = pos
	}
	passes = append(passes, instrs[start:])
	return passes
}

// NumPasses returns how many pipeline passes the instruction sequence
// needs; 1 means the transaction is single-pass.
func NumPasses(instrs []txnwire.Instr) int {
	return len(SplitPasses(instrs))
}
