package pisa

// LockReg is the 2-bit pipeline lock register of Listing 1. Real Tofino
// hardware cannot test-and-set an arbitrary bitmask in one stateful ALU
// operation, but it can support exactly two lock instances packed into one
// register, which is why the paper's fine-grained locking stops at two
// locks. TryLock mirrors the RegisterAction: it fails if any requested
// instance is already set and otherwise sets all requested instances
// atomically (the simulator's run-to-completion execution provides the
// atomicity the hardware gets from single-cycle stateful ALUs).
type LockReg struct {
	left  uint8
	right uint8
}

// TryLock attempts to acquire the requested lock instances. It returns
// false, changing nothing, if any requested instance is already held.
func (l *LockReg) TryLock(left, right bool) bool {
	lv, rv := b2u(left), b2u(right)
	if lv+l.left == 2 || rv+l.right == 2 {
		return false
	}
	l.left += lv
	l.right += rv
	return true
}

// Free reports whether all requested instances are currently unheld
// (the admission test for single-pass transactions).
func (l *LockReg) Free(left, right bool) bool {
	if left && l.left != 0 {
		return false
	}
	if right && l.right != 0 {
		return false
	}
	return true
}

// Unlock releases the requested instances. Releasing an unheld instance
// indicates a protocol bug and panics.
func (l *LockReg) Unlock(left, right bool) {
	if left {
		if l.left == 0 {
			panic("pisa: unlock of free left pipeline lock")
		}
		l.left = 0
	}
	if right {
		if l.right == 0 {
			panic("pisa: unlock of free right pipeline lock")
		}
		l.right = 0
	}
}

// Held reports the current state of both instances.
func (l *LockReg) Held() (left, right bool) { return l.left != 0, l.right != 0 }

func b2u(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}
