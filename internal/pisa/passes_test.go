package pisa

import (
	"testing"
	"testing/quick"

	"repro/internal/txnwire"
)

func ins(stage, array uint8, idx uint32) txnwire.Instr {
	return txnwire.Instr{Op: txnwire.OpRead, Stage: stage, Array: array, Index: idx}
}

func TestSplitPassesEmpty(t *testing.T) {
	if got := SplitPasses(nil); got != nil {
		t.Fatalf("SplitPasses(nil) = %v, want nil", got)
	}
}

func TestSplitPassesAscendingIsSinglePass(t *testing.T) {
	instrs := []txnwire.Instr{ins(0, 0, 1), ins(0, 1, 2), ins(3, 0, 3), ins(5, 2, 4)}
	if n := NumPasses(instrs); n != 1 {
		t.Fatalf("NumPasses = %d, want 1", n)
	}
}

func TestSplitPassesSameArrayTwice(t *testing.T) {
	// Read then write of the same tuple: the memory model forbids two
	// accesses to one register array in a pass (Figure 6's example).
	instrs := []txnwire.Instr{ins(0, 0, 1), ins(1, 0, 2), ins(2, 0, 3), ins(0, 0, 1), ins(1, 0, 2)}
	passes := SplitPasses(instrs)
	if len(passes) != 2 {
		t.Fatalf("passes = %d, want 2", len(passes))
	}
	if len(passes[0]) != 3 || len(passes[1]) != 2 {
		t.Fatalf("pass sizes = %d,%d want 3,2", len(passes[0]), len(passes[1]))
	}
}

func TestSplitPassesDescendingOrder(t *testing.T) {
	// Each access at or before the previous position forces a new pass.
	instrs := []txnwire.Instr{ins(3, 0, 1), ins(2, 0, 2), ins(1, 0, 3)}
	if n := NumPasses(instrs); n != 3 {
		t.Fatalf("NumPasses = %d, want 3", n)
	}
}

func TestSplitPassesSameStageDifferentArray(t *testing.T) {
	// Distinct arrays of one stage can both fire in a single pass as long
	// as the array order ascends.
	instrs := []txnwire.Instr{ins(2, 0, 1), ins(2, 1, 2), ins(2, 3, 3)}
	if n := NumPasses(instrs); n != 1 {
		t.Fatalf("NumPasses = %d, want 1", n)
	}
	instrs = []txnwire.Instr{ins(2, 1, 1), ins(2, 0, 2)}
	if n := NumPasses(instrs); n != 2 {
		t.Fatalf("NumPasses = %d, want 2 (array order descends)", n)
	}
}

// TestSplitPassesProperties checks the two structural invariants on random
// instruction sequences: concatenating the passes reproduces the input,
// and every pass is strictly increasing in (stage, array).
func TestSplitPassesProperties(t *testing.T) {
	f := func(raw []uint16) bool {
		instrs := make([]txnwire.Instr, len(raw))
		for i, r := range raw {
			instrs[i] = ins(uint8(r)%12, uint8(r>>8)%4, uint32(i))
		}
		passes := SplitPasses(instrs)
		var flat []txnwire.Instr
		for _, p := range passes {
			if len(p) == 0 {
				return false // no empty passes
			}
			last := -1
			for _, in := range p {
				if arrayPos(in) <= last {
					return false // not strictly increasing
				}
				last = arrayPos(in)
			}
			flat = append(flat, p...)
		}
		if len(flat) != len(instrs) {
			return false
		}
		for i := range flat {
			if flat[i] != instrs[i] {
				return false // order not preserved
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitPassesGreedyIsMinimal(t *testing.T) {
	// The greedy splitter yields the minimum number of passes for a fixed
	// instruction order: verify against brute force on small inputs.
	minPasses := func(instrs []txnwire.Instr) int {
		// DP over prefix: minimal cuts such that each segment ascends.
		n := len(instrs)
		best := make([]int, n+1)
		for i := 1; i <= n; i++ {
			best[i] = 1 << 30
			for j := i - 1; j >= 0; j-- {
				ok := true
				last := -1
				for k := j; k < i; k++ {
					if arrayPos(instrs[k]) <= last {
						ok = false
						break
					}
					last = arrayPos(instrs[k])
				}
				if ok {
					prev := 0
					if j > 0 {
						prev = best[j]
					}
					if prev+1 < best[i] {
						best[i] = prev + 1
					}
				}
			}
		}
		return best[n]
	}
	f := func(raw []uint8) bool {
		if len(raw) > 8 {
			raw = raw[:8]
		}
		instrs := make([]txnwire.Instr, len(raw))
		for i, r := range raw {
			instrs[i] = ins(r%4, (r>>4)%2, uint32(i))
		}
		if len(instrs) == 0 {
			return NumPasses(instrs) == 0
		}
		return NumPasses(instrs) == minPasses(instrs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLockRegListing1Semantics(t *testing.T) {
	var l LockReg
	if !l.TryLock(true, false) {
		t.Fatal("lock of free left failed")
	}
	if l.TryLock(true, false) {
		t.Fatal("double lock of left succeeded")
	}
	if l.TryLock(true, true) {
		t.Fatal("lock pair with held left succeeded")
	}
	if !l.TryLock(false, true) {
		t.Fatal("lock of free right failed while left held")
	}
	if ok := l.Free(true, false); ok {
		t.Fatal("Free reported held left as free")
	}
	l.Unlock(true, false)
	if ok := l.Free(true, false); !ok {
		t.Fatal("Free reported released left as held")
	}
	l.Unlock(false, true)
	left, right := l.Held()
	if left || right {
		t.Fatal("locks still held after release")
	}
}

func TestLockRegFailedTryLockChangesNothing(t *testing.T) {
	var l LockReg
	l.TryLock(true, false)
	if l.TryLock(true, true) {
		t.Fatal("should fail")
	}
	// Right must NOT have been set by the failed attempt.
	if !l.Free(false, true) {
		t.Fatal("failed TryLock leaked a lock instance")
	}
}

func TestUnlockFreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on unlocking a free lock")
		}
	}()
	var l LockReg
	l.Unlock(true, false)
}
