package pisa

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/txnwire"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.SlotsPerArray = 64
	return cfg
}

func add(stage, array uint8, idx uint32, delta int64) txnwire.Instr {
	return txnwire.Instr{Op: txnwire.OpAdd, Stage: stage, Array: array, Index: idx, Operand: delta}
}

func read(stage, array uint8, idx uint32) txnwire.Instr {
	return txnwire.Instr{Op: txnwire.OpRead, Stage: stage, Array: array, Index: idx}
}

func write(stage, array uint8, idx uint32, v int64) txnwire.Instr {
	return txnwire.Instr{Op: txnwire.OpWrite, Stage: stage, Array: array, Index: idx, Operand: v}
}

// execOne runs a single packet to completion on a fresh env.
func execOne(t *testing.T, sw *Switch, e *sim.Env, pkt *txnwire.Packet) *txnwire.Response {
	t.Helper()
	var resp *txnwire.Response
	var err error
	e.Spawn("client", func(p *sim.Proc) {
		resp, err = sw.Exec(p, pkt)
	})
	e.Run()
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	return resp
}

func TestSinglePassReadWriteAdd(t *testing.T) {
	e := sim.NewEnv(1)
	sw := New(e, testConfig())
	sw.WriteRegister(0, 0, 5, 100)
	pkt := &txnwire.Packet{Instrs: []txnwire.Instr{
		read(0, 0, 5),
		write(1, 0, 3, 7),
		add(2, 0, 9, -2),
	}}
	resp := execOne(t, sw, e, pkt)
	if resp.Results[0].Value != 100 {
		t.Fatalf("read = %d, want 100", resp.Results[0].Value)
	}
	if sw.ReadRegister(1, 0, 3) != 7 {
		t.Fatalf("write did not land")
	}
	if resp.Results[2].Value != -2 || sw.ReadRegister(2, 0, 9) != -2 {
		t.Fatalf("add = %d, want -2", resp.Results[2].Value)
	}
	if resp.GID != 0 || sw.NextGID() != 1 {
		t.Fatalf("GID = %d next = %d, want 0/1", resp.GID, sw.NextGID())
	}
}

func TestConstrainedWrite(t *testing.T) {
	e := sim.NewEnv(1)
	sw := New(e, testConfig())
	sw.WriteRegister(0, 0, 0, 10)
	// Withdraw 15 from balance 10 must be refused and leave state intact.
	pkt := &txnwire.Packet{Instrs: []txnwire.Instr{
		{Op: txnwire.OpCondAddGE0, Stage: 0, Array: 0, Index: 0, Operand: -15},
	}}
	resp := execOne(t, sw, e, pkt)
	if resp.Results[0].OK {
		t.Fatal("constrained write applied despite violated predicate")
	}
	if resp.Results[0].Value != 10 || sw.ReadRegister(0, 0, 0) != 10 {
		t.Fatalf("balance changed: %d", sw.ReadRegister(0, 0, 0))
	}
	// Withdraw 10 from 10 is allowed (result 0 >= 0).
	pkt2 := &txnwire.Packet{Instrs: []txnwire.Instr{
		{Op: txnwire.OpCondAddGE0, Stage: 0, Array: 0, Index: 0, Operand: -10},
	}}
	e2 := sim.NewEnv(2)
	resp2 := execOne(t, sw, e2, pkt2)
	if !resp2.Results[0].OK || sw.ReadRegister(0, 0, 0) != 0 {
		t.Fatalf("allowed constrained write refused")
	}
}

func TestOpMax(t *testing.T) {
	e := sim.NewEnv(1)
	sw := New(e, testConfig())
	sw.WriteRegister(0, 0, 0, 5)
	pkt := &txnwire.Packet{Instrs: []txnwire.Instr{
		{Op: txnwire.OpMax, Stage: 0, Array: 0, Index: 0, Operand: 3},
		{Op: txnwire.OpMax, Stage: 1, Array: 0, Index: 0, Operand: 9},
	}}
	sw.WriteRegister(1, 0, 0, 5)
	execOne(t, sw, e, pkt)
	if sw.ReadRegister(0, 0, 0) != 5 || sw.ReadRegister(1, 0, 0) != 9 {
		t.Fatalf("max wrong: %d %d", sw.ReadRegister(0, 0, 0), sw.ReadRegister(1, 0, 0))
	}
}

func TestMultipassNeedsFlag(t *testing.T) {
	e := sim.NewEnv(1)
	sw := New(e, testConfig())
	pkt := &txnwire.Packet{Instrs: []txnwire.Instr{
		read(0, 0, 1),
		write(0, 0, 1, 5), // same array again -> 2 passes
	}}
	var err error
	e.Spawn("client", func(p *sim.Proc) {
		_, err = sw.Exec(p, pkt)
	})
	e.Run()
	if err == nil {
		t.Fatal("unmarked multipass packet accepted")
	}
}

func TestMultipassExecutes(t *testing.T) {
	e := sim.NewEnv(1)
	sw := New(e, testConfig())
	sw.WriteRegister(0, 0, 1, 41)
	pkt := &txnwire.Packet{
		Header: txnwire.Header{IsMultipass: true, LockLeft: true},
		Instrs: []txnwire.Instr{
			read(0, 0, 1),
			add(0, 0, 1, 1), // second pass
		},
	}
	resp := execOne(t, sw, e, pkt)
	if resp.Results[0].Value != 41 || resp.Results[1].Value != 42 {
		t.Fatalf("results = %+v", resp.Results)
	}
	if left, right := sw.lock.Held(); left || right {
		t.Fatal("pipeline lock leaked after multipass txn")
	}
	if sw.Stats.MultiPass != 1 {
		t.Fatalf("MultiPass stat = %d", sw.Stats.MultiPass)
	}
}

// TestPipelinedSerialOrder checks the core Section 5.1 claim: concurrent
// single-pass transactions produce exactly the state of a serial execution
// in GID order. Random add/write/read mixes from many concurrent clients
// are replayed sequentially on a reference array and compared.
func TestPipelinedSerialOrder(t *testing.T) {
	cfg := testConfig()
	e := sim.NewEnv(99)
	sw := New(e, cfg)
	type logged struct {
		gid uint64
		pkt *txnwire.Packet
	}
	var log []logged
	const clients = 24
	const txnsPerClient = 40
	for c := 0; c < clients; c++ {
		rng := e.Rand().Fork(uint64(c))
		e.Spawn("client", func(p *sim.Proc) {
			for k := 0; k < txnsPerClient; k++ {
				nops := rng.Intn(4) + 1
				instrs := make([]txnwire.Instr, 0, nops)
				stage := 0
				for j := 0; j < nops && stage < cfg.Stages; j++ {
					op := txnwire.Op(rng.Intn(3)) // read/write/add
					instrs = append(instrs, txnwire.Instr{
						Op: op, Stage: uint8(stage), Array: uint8(rng.Intn(cfg.ArraysPerStage)),
						Index: uint32(rng.Intn(8)), Operand: int64(rng.Intn(100) - 50),
					})
					stage += rng.Intn(3) + 1
				}
				pkt := &txnwire.Packet{Instrs: instrs}
				resp, err := sw.Exec(p, pkt)
				if err != nil {
					t.Errorf("Exec: %v", err)
					return
				}
				log = append(log, logged{resp.GID, pkt})
				p.Sleep(sim.Time(rng.Intn(2000)))
			}
		})
	}
	e.Run()

	// Replay serially in GID order on a reference switch.
	ref := New(sim.NewEnv(1), cfg)
	ordered := make([]*txnwire.Packet, len(log))
	for _, l := range log {
		if ordered[l.gid] != nil {
			t.Fatalf("duplicate GID %d", l.gid)
		}
		ordered[l.gid] = l.pkt
	}
	for _, pkt := range ordered {
		ref.ApplyTxn(pkt.Instrs)
	}
	got, want := sw.Snapshot(), ref.Snapshot()
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("register %d: concurrent=%d serial=%d — pipelined execution not serializable", i, got[i], want[i])
		}
	}
}

// TestMultipassAtomicity checks Section 5.2: while a multi-pass
// transaction is between passes, no other transaction may observe its
// partial writes. Multipass txns add +X then -X to the same register;
// concurrent readers must always read 0.
func TestMultipassAtomicity(t *testing.T) {
	for _, fine := range []bool{false, true} {
		cfg := testConfig()
		cfg.FineLocks = fine
		e := sim.NewEnv(7)
		sw := New(e, cfg)
		bad := 0
		for c := 0; c < 8; c++ {
			rng := e.Rand().Fork(uint64(c))
			e.Spawn("writer", func(p *sim.Proc) {
				for k := 0; k < 30; k++ {
					x := int64(rng.Intn(50) + 1)
					pkt := &txnwire.Packet{
						Header: txnwire.Header{IsMultipass: true},
						Instrs: []txnwire.Instr{
							add(0, 0, 0, x),
							add(0, 0, 0, -x), // same array -> pass 2
						},
					}
					if _, err := sw.Exec(p, pkt); err != nil {
						t.Errorf("writer: %v", err)
						return
					}
					p.Sleep(sim.Time(rng.Intn(500)))
				}
			})
		}
		for c := 0; c < 8; c++ {
			rng := e.Rand().Fork(uint64(100 + c))
			e.Spawn("reader", func(p *sim.Proc) {
				for k := 0; k < 60; k++ {
					pkt := &txnwire.Packet{Instrs: []txnwire.Instr{read(0, 0, 0)}}
					resp, err := sw.Exec(p, pkt)
					if err != nil {
						t.Errorf("reader: %v", err)
						return
					}
					if resp.Results[0].Value != 0 {
						bad++
					}
					p.Sleep(sim.Time(rng.Intn(300)))
				}
			})
		}
		e.Run()
		if bad > 0 {
			t.Fatalf("fine=%v: %d readers observed partial multipass state", fine, bad)
		}
	}
}

func TestFineLocksAllowDisjointConcurrency(t *testing.T) {
	// Two multipass transactions on disjoint pipeline halves should
	// overlap with fine-grained locks and serialize without them.
	run := func(fine bool) sim.Time {
		cfg := testConfig()
		cfg.FineLocks = fine
		cfg.FastRecirc = false
		e := sim.NewEnv(3)
		sw := New(e, cfg)
		mk := func(stage uint8) *txnwire.Packet {
			return &txnwire.Packet{
				Header: txnwire.Header{IsMultipass: true},
				Instrs: []txnwire.Instr{
					add(stage, 0, 0, 1), add(stage, 0, 0, 1), add(stage, 0, 0, 1),
					add(stage, 0, 0, 1), add(stage, 0, 0, 1), add(stage, 0, 0, 1),
				},
			}
		}
		var end sim.Time
		done := func(p *sim.Proc) {
			if p.Now() > end {
				end = p.Now()
			}
		}
		e.Spawn("low", func(p *sim.Proc) {
			if _, err := sw.Exec(p, mk(0)); err != nil {
				t.Errorf("%v", err)
			}
			done(p)
		})
		e.Spawn("high", func(p *sim.Proc) {
			if _, err := sw.Exec(p, mk(uint8(cfg.Stages-1))); err != nil {
				t.Errorf("%v", err)
			}
			done(p)
		})
		e.Run()
		return end
	}
	fine, coarse := run(true), run(false)
	if fine >= coarse {
		t.Fatalf("fine-grained locking no faster: fine=%v coarse=%v", fine, coarse)
	}
}

func TestFastRecircShortensMultipass(t *testing.T) {
	run := func(fast bool) sim.Time {
		cfg := testConfig()
		cfg.FastRecirc = fast
		e := sim.NewEnv(3)
		sw := New(e, cfg)
		pkt := &txnwire.Packet{
			Header: txnwire.Header{IsMultipass: true},
			Instrs: []txnwire.Instr{add(0, 0, 0, 1), add(0, 0, 0, 1), add(0, 0, 0, 1)},
		}
		var end sim.Time
		e.Spawn("c", func(p *sim.Proc) {
			if _, err := sw.Exec(p, pkt); err != nil {
				t.Errorf("%v", err)
			}
			end = p.Now()
		})
		e.Run()
		return end
	}
	if fast, slow := run(true), run(false); fast >= slow {
		t.Fatalf("fast recirc not faster: %v vs %v", fast, slow)
	}
}

func TestSinglePassBlockedByConflictingLock(t *testing.T) {
	cfg := testConfig()
	cfg.FineLocks = true
	e := sim.NewEnv(5)
	sw := New(e, cfg)
	var readerDone, writerDone sim.Time
	e.Spawn("multipass", func(p *sim.Proc) {
		pkt := &txnwire.Packet{
			Header: txnwire.Header{IsMultipass: true},
			Instrs: []txnwire.Instr{add(0, 0, 0, 1), add(0, 0, 0, 1)},
		}
		if _, err := sw.Exec(p, pkt); err != nil {
			t.Errorf("%v", err)
		}
		writerDone = p.Now()
	})
	e.Spawn("reader", func(p *sim.Proc) {
		p.Sleep(10) // arrive while the lock is held
		pkt := &txnwire.Packet{Instrs: []txnwire.Instr{read(0, 0, 0)}}
		resp, err := sw.Exec(p, pkt)
		if err != nil {
			t.Errorf("%v", err)
		}
		if resp.Recircs == 0 {
			t.Error("reader on locked half was not recirculated")
		}
		readerDone = p.Now()
	})
	e.Run()
	if readerDone <= writerDone-sw.cfg.PipelineLatency {
		t.Fatalf("reader finished before writer's final pass: %v vs %v", readerDone, writerDone)
	}
	if sw.Stats.Recircs == 0 {
		t.Fatal("no recirculations recorded")
	}
}

func TestGIDsAreDenseAndOrdered(t *testing.T) {
	e := sim.NewEnv(11)
	sw := New(e, testConfig())
	var gids []uint64
	for c := 0; c < 10; c++ {
		e.Spawn("c", func(p *sim.Proc) {
			for k := 0; k < 20; k++ {
				pkt := &txnwire.Packet{Instrs: []txnwire.Instr{add(0, 0, 0, 1)}}
				resp, err := sw.Exec(p, pkt)
				if err != nil {
					t.Errorf("%v", err)
					return
				}
				gids = append(gids, resp.GID)
				p.Sleep(sim.Time(p.Rand().Intn(100)))
			}
		})
	}
	e.Run()
	seen := make(map[uint64]bool)
	for _, g := range gids {
		if seen[g] {
			t.Fatalf("duplicate GID %d", g)
		}
		seen[g] = true
	}
	for g := uint64(0); g < uint64(len(gids)); g++ {
		if !seen[g] {
			t.Fatalf("GID %d missing (not dense)", g)
		}
	}
	if sw.ReadRegister(0, 0, 0) != 200 {
		t.Fatalf("register = %d, want 200", sw.ReadRegister(0, 0, 0))
	}
}

func TestOutOfRangeAccessPanics(t *testing.T) {
	e := sim.NewEnv(1)
	sw := New(e, testConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range register access")
		}
	}()
	sw.ReadRegister(0, 0, uint32(testConfig().SlotsPerArray))
}

func TestResetClearsState(t *testing.T) {
	e := sim.NewEnv(1)
	sw := New(e, testConfig())
	sw.WriteRegister(3, 1, 7, 99)
	sw.lock.TryLock(true, true)
	sw.nextGID = 42
	sw.Reset()
	if sw.ReadRegister(3, 1, 7) != 0 || sw.NextGID() != 0 {
		t.Fatal("Reset did not clear state")
	}
	if l, r := sw.lock.Held(); l || r {
		t.Fatal("Reset did not clear locks")
	}
}

func TestSnapshotRestore(t *testing.T) {
	e := sim.NewEnv(1)
	sw := New(e, testConfig())
	sw.WriteRegister(2, 2, 2, 5)
	snap := sw.Snapshot()
	sw.WriteRegister(2, 2, 2, 9)
	sw.Restore(snap)
	if sw.ReadRegister(2, 2, 2) != 5 {
		t.Fatal("Restore did not reinstate snapshot")
	}
}

func TestCapacity(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Capacity() < 800_000 || cfg.Capacity() > 850_000 {
		t.Fatalf("default capacity = %d, want ~820K rows as in the paper", cfg.Capacity())
	}
}

func TestResponseEchoesTxnID(t *testing.T) {
	e := sim.NewEnv(1)
	sw := New(e, testConfig())
	pkt := &txnwire.Packet{Header: txnwire.Header{TxnID: 777}, Instrs: []txnwire.Instr{read(0, 0, 0)}}
	resp := execOne(t, sw, e, pkt)
	if resp.TxnID != 777 {
		t.Fatalf("TxnID = %d, want 777", resp.TxnID)
	}
}

func TestAdmissionGapSerializesLineRate(t *testing.T) {
	cfg := testConfig()
	cfg.AdmissionGap = 100 * sim.Nanosecond
	e := sim.NewEnv(1)
	sw := New(e, cfg)
	var last sim.Time
	count := 0
	for c := 0; c < 5; c++ {
		e.Spawn("c", func(p *sim.Proc) {
			pkt := &txnwire.Packet{Instrs: []txnwire.Instr{read(0, 0, 0)}}
			if _, err := sw.Exec(p, pkt); err != nil {
				t.Errorf("%v", err)
			}
			if p.Now() > last {
				last = p.Now()
			}
			count++
		})
	}
	e.Run()
	// 5 packets admitted 100ns apart; the last finishes no earlier than
	// 4 gaps + pipeline latency.
	min := 4*cfg.AdmissionGap + cfg.PipelineLatency
	if last < min {
		t.Fatalf("last completion %v < %v; line-rate spacing not enforced", last, min)
	}
}
