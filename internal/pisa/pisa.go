// Package pisa models a PISA programmable switch (Intel Tofino class) at
// the level of detail P4DB's transaction engine depends on.
//
// The model captures the architectural properties of Sections 2 and 4-5 of
// the paper rather than gate-level behaviour:
//
//   - SRAM register arrays are partitioned over match-action (MAU) stages;
//     a packet may access each register array at most once per pipeline
//     pass, and only in ascending stage order (Table 1 constraints).
//   - One packet is one transaction. Packets in the pipeline are never
//     reordered, so the pipelined execution is equivalent to a serial
//     execution in admission order — this is what makes single-pass switch
//     transactions serializable without any coordination (Section 5.1).
//   - Transactions whose operations cannot be arranged into one legal pass
//     recirculate: they take a pipeline lock at the first stage (the 2-bit
//     lock register of Listing 1), make multiple passes, and release the
//     lock on their final pass (Section 5.2). While a lock instance is
//     held, other transactions needing that instance are recirculated on a
//     waiting port.
//   - Two optimizations from Section 5.3 are switchable: fine-grained
//     locking (the two lock bits guard the lower and upper halves of the
//     pipeline independently) and fast recirculation (a dedicated, shorter
//     recirculation port reserved for lock holders).
//
// Every executed transaction receives a globally-unique id (GID) in serial
// execution order; the host DBMS uses GIDs for durability and recovery of
// the switch state (Section 6.1).
package pisa

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/txnwire"
)

// Config describes the switch resources and timing.
type Config struct {
	// Stages is the number of MAU stages in the pipeline.
	Stages int
	// ArraysPerStage is the number of register arrays per stage.
	ArraysPerStage int
	// SlotsPerArray is the number of tuple slots per register array. The
	// paper's Tofino stores ~820K 8-byte tuples per pipeline; wider tuples
	// shrink this proportionally (Figure 17).
	SlotsPerArray int

	// FineLocks enables the 2-bit pipeline lock of Listing 1: the left bit
	// guards stages [0, Stages/2), the right bit the remainder, so two
	// multi-pass transactions on disjoint halves can run concurrently.
	// With FineLocks off a single (left) lock serializes all multi-pass
	// work.
	FineLocks bool
	// FastRecirc reserves one recirculation port for transactions that
	// already hold a pipeline lock, giving them a shorter queueing delay
	// than waiting transactions (Section 5.3 "Fast Recirculating").
	FastRecirc bool

	// PipelineLatency is the time for one pass through the pipeline
	// (parser, MAU stages, deparser, serialization).
	PipelineLatency sim.Time
	// RecircFast is the queueing delay of the lock-holder recirculation
	// port; RecircWait that of the waiting port.
	RecircFast sim.Time
	RecircWait sim.Time
	// AdmissionGap is the minimum spacing between packet admissions,
	// i.e. the inverse line rate. Tofino-class switches admit on the
	// order of a packet per nanosecond, so this almost never binds.
	AdmissionGap sim.Time
}

// DefaultConfig mirrors the paper's switch: 12 MAU stages with 4 register
// arrays each, sized such that the pipeline holds roughly 820K 8-byte
// tuples.
func DefaultConfig() Config {
	return Config{
		Stages:          12,
		ArraysPerStage:  4,
		SlotsPerArray:   17100, // 12*4*17100 = 820,800 rows
		FineLocks:       true,
		FastRecirc:      true,
		PipelineLatency: 500 * sim.Nanosecond,
		RecircFast:      300 * sim.Nanosecond,
		RecircWait:      1 * sim.Microsecond,
		AdmissionGap:    2 * sim.Nanosecond,
	}
}

// Capacity returns the total number of tuple slots in the pipeline.
func (c Config) Capacity() int { return c.Stages * c.ArraysPerStage * c.SlotsPerArray }

// Stats aggregates switch-side execution counters.
type Stats struct {
	Txns         int64 // transactions executed
	SinglePass   int64 // executed in one pass
	MultiPass    int64 // needed more than one pass
	Recircs      int64 // recirculations of waiting (not-yet-admitted) packets
	HolderPasses int64 // extra passes by lock holders
}

// Switch is one simulated switch pipeline with its register state.
type Switch struct {
	env  *sim.Env
	cfg  Config
	regs []int64 // flattened [stage][array][slot]
	lock LockReg

	nextGID   uint64
	busyUntil sim.Time
	// admitted maps packet TxnID -> assigned GID when admission tracking
	// is on (see TrackAdmissions); nil otherwise.
	admitted map[uint64]uint64
	// midPipeline counts multipass transactions that have been admitted
	// (GID assigned) but not yet applied their final pass. Their effects
	// are only partially in the register file, so a crash snapshot taken
	// while the counter is nonzero is not a replayable state — the fault
	// injector polls MidPipeline and defers the crash until it drains.
	midPipeline int

	// Stats is exported for benchmarks and tests.
	Stats Stats
}

// New creates a switch with zeroed registers.
func New(env *sim.Env, cfg Config) *Switch {
	if cfg.Stages <= 0 || cfg.ArraysPerStage <= 0 || cfg.SlotsPerArray <= 0 {
		panic("pisa: invalid config dimensions")
	}
	return &Switch{
		env:  env,
		cfg:  cfg,
		regs: make([]int64, cfg.Capacity()),
	}
}

// Config returns the switch configuration.
func (sw *Switch) Config() Config { return sw.cfg }

// slot returns the flattened register index, panicking on out-of-range
// coordinates: a bad coordinate means the data layout handed the switch an
// instruction the P4 compiler would have rejected.
func (sw *Switch) slot(stage, array uint8, index uint32) int {
	if int(stage) >= sw.cfg.Stages || int(array) >= sw.cfg.ArraysPerStage || int(index) >= sw.cfg.SlotsPerArray {
		panic(fmt.Sprintf("pisa: register access out of range: stage=%d array=%d index=%d (config %dx%dx%d)",
			stage, array, index, sw.cfg.Stages, sw.cfg.ArraysPerStage, sw.cfg.SlotsPerArray))
	}
	return (int(stage)*sw.cfg.ArraysPerStage+int(array))*sw.cfg.SlotsPerArray + int(index)
}

// ReadRegister returns a register value directly (control-plane access,
// used when offloading tuples and in tests; takes no simulated time).
func (sw *Switch) ReadRegister(stage, array uint8, index uint32) int64 {
	return sw.regs[sw.slot(stage, array, index)]
}

// WriteRegister sets a register value directly (control-plane access used
// by the offload step and by recovery).
func (sw *Switch) WriteRegister(stage, array uint8, index uint32, v int64) {
	sw.regs[sw.slot(stage, array, index)] = v
}

// Snapshot copies the full register state (for recovery tests).
func (sw *Switch) Snapshot() []int64 {
	out := make([]int64, len(sw.regs))
	copy(out, sw.regs)
	return out
}

// Restore overwrites the register state from a snapshot.
func (sw *Switch) Restore(snap []int64) {
	if len(snap) != len(sw.regs) {
		panic("pisa: snapshot size mismatch")
	}
	copy(sw.regs, snap)
}

// Reset zeroes all registers, the pipeline locks and the GID counter,
// modelling a switch power cycle (crash).
func (sw *Switch) Reset() {
	for i := range sw.regs {
		sw.regs[i] = 0
	}
	sw.lock = LockReg{}
	sw.nextGID = 0
}

// NextGID returns the id the next executed transaction will receive.
func (sw *Switch) NextGID() uint64 { return sw.nextGID }

// SetNextGID restores the GID counter after recovery. ApplyTxn replays do
// not advance the counter, so a recovered switch must be told where the
// serial order left off before it admits new traffic.
func (sw *Switch) SetNextGID(gid uint64) { sw.nextGID = gid }

// TrackAdmissions makes the switch record the GID it assigned to every
// admitted packet, keyed by the packet's caller-side TxnID. The simulated
// crash handler uses the map to split a node's GID-less WAL records into
// "executed, response in flight" (replayed into gaps) versus "packet still
// in the fabric, never admitted" (excluded: the lossless simulated fabric
// will deliver and execute them after recovery). Real hardware cannot
// observe this distinction and simply replays every logged intent; the
// tracking exists so the simulation can assert exact state equality.
// Off by default — the map costs one insert per admission.
func (sw *Switch) TrackAdmissions() {
	if sw.admitted == nil {
		sw.admitted = make(map[uint64]uint64)
	}
}

// AdmittedGID reports whether a packet with the given TxnID was admitted
// (and executed) by the switch, and the GID it received. Only meaningful
// after TrackAdmissions.
func (sw *Switch) AdmittedGID(txnID uint64) (uint64, bool) {
	gid, ok := sw.admitted[txnID]
	return gid, ok
}

// MidPipeline returns the number of admitted multipass transactions whose
// final pass has not yet applied. While nonzero, the register file holds
// partial transaction effects and is not a consistent recovery target.
func (sw *Switch) MidPipeline() int { return sw.midPipeline }

// locksFor computes which pipeline lock instances cover the stages a
// transaction touches. With fine-grained locking the left bit guards the
// lower half of the pipeline and the right bit the upper half; without it
// every transaction maps to the single left lock.
func (sw *Switch) locksFor(instrs []txnwire.Instr) (left, right bool) {
	if !sw.cfg.FineLocks {
		return true, false
	}
	half := sw.cfg.Stages / 2
	for _, in := range instrs {
		if int(in.Stage) < half {
			left = true
		} else {
			right = true
		}
	}
	return left, right
}

// admission enforces the line-rate spacing between admitted packets.
func (sw *Switch) admission(p *sim.Proc) {
	// Loop: several packets can wake at the same instant; only one claims
	// the admission slot, the rest re-queue behind the updated horizon.
	for p.Now() < sw.busyUntil {
		p.Sleep(sw.busyUntil - p.Now())
	}
	sw.busyUntil = p.Now() + sw.cfg.AdmissionGap
}

// Exec runs one switch transaction to completion on behalf of the calling
// process. The caller is expected to have already paid the node-to-switch
// network latency; Exec models only in-switch time (admission spacing,
// recirculation queueing, pipeline passes).
//
// Exec validates the packet against the switch memory model: instructions
// of one pass must touch distinct register arrays in ascending stage
// order. Packets violating IsMultipass=false with a multi-pass instruction
// list are rejected with an error (the node-side classifier must mark them
// correctly, since the locks field differs between the two cases).
func (sw *Switch) Exec(p *sim.Proc, pkt *txnwire.Packet) (*txnwire.Response, error) {
	passes := SplitPasses(pkt.Instrs)
	multipass := len(passes) > 1
	if multipass && !pkt.Header.IsMultipass {
		return nil, fmt.Errorf("pisa: packet needs %d passes but is not marked multipass", len(passes))
	}
	needL, needR := sw.locksFor(pkt.Instrs)

	recircs := int(pkt.Header.NbRecircs)
	// Admission loop: single-pass transactions require their lock
	// instances to be FREE; multi-pass transactions ACQUIRE them
	// atomically (Listing 1). Either way a failure recirculates the
	// packet on the waiting port.
	for {
		sw.admission(p)
		if multipass {
			if sw.lock.TryLock(needL, needR) {
				break
			}
		} else if sw.lock.Free(needL, needR) {
			break
		}
		recircs++
		sw.Stats.Recircs++
		// The paper's flow control prioritizes long-waiting packets via
		// nb_recircs so they cannot starve; the model approximates the
		// priority by shortening the waiting-port delay once a packet has
		// recirculated many times. (The wire counter saturates at 255;
		// the internal count keeps growing.)
		d := sw.cfg.RecircWait
		if recircs > 64 {
			d = sw.cfg.RecircWait / 4
		}
		p.Sleep(d)
	}

	gid := sw.nextGID
	sw.nextGID++
	if sw.admitted != nil {
		sw.admitted[pkt.Header.TxnID] = gid
	}
	sw.Stats.Txns++
	if multipass {
		sw.Stats.MultiPass++
		sw.midPipeline++
	} else {
		sw.Stats.SinglePass++
	}

	results := make([]txnwire.Result, 0, len(pkt.Instrs))
	// Packet metadata carried across stages and recirculations: the
	// accumulator for read-dependent writes and the ok-flag for chained
	// constrained writes.
	ctx := newPktCtx()
	for i, pass := range passes {
		if i > 0 {
			d := sw.cfg.RecircWait
			if sw.cfg.FastRecirc {
				d = sw.cfg.RecircFast
			}
			sw.Stats.HolderPasses++
			p.Sleep(d)
		}
		if multipass && i == len(passes)-1 {
			// The lock is released when the final pass is admitted
			// (Figure 7: "Done? -> Unlock"), letting waiting
			// transactions in behind it; they cannot overtake.
			sw.lock.Unlock(needL, needR)
		}
		for _, in := range pass {
			results = append(results, sw.apply(in, &ctx))
		}
	}
	if multipass {
		sw.midPipeline--
	}
	p.Sleep(sw.cfg.PipelineLatency)

	return &txnwire.Response{
		TxnID:   pkt.Header.TxnID,
		GID:     gid,
		Recircs: clampU8(recircs),
		Results: results,
	}, nil
}

// ExecK is the continuation form of Exec: the admission loop, recirculation
// waits and pipeline passes run as scheduled callbacks instead of process
// sleeps, and k receives the response (or validation error) when the final
// pass leaves the pipeline. Every wait maps one-for-one onto a sleep of the
// process form — same delays, same event-sequence draws — so seeded
// schedules are identical whichever form executes a packet.
func (sw *Switch) ExecK(pkt *txnwire.Packet, k func(*txnwire.Response, error)) {
	passes := SplitPasses(pkt.Instrs)
	multipass := len(passes) > 1
	if multipass && !pkt.Header.IsMultipass {
		k(nil, fmt.Errorf("pisa: packet needs %d passes but is not marked multipass", len(passes)))
		return
	}
	needL, needR := sw.locksFor(pkt.Instrs)

	recircs := int(pkt.Header.NbRecircs)
	env := sw.env
	var admit func()
	admit = func() {
		// Admission spacing: several packets can wake at the same instant;
		// only one claims the slot, the rest re-queue behind the updated
		// horizon (mirrors admission's loop, one event per re-queue).
		if env.Now() < sw.busyUntil {
			env.After(sw.busyUntil-env.Now(), admit)
			return
		}
		sw.busyUntil = env.Now() + sw.cfg.AdmissionGap
		ok := false
		if multipass {
			ok = sw.lock.TryLock(needL, needR)
		} else {
			ok = sw.lock.Free(needL, needR)
		}
		if !ok {
			recircs++
			sw.Stats.Recircs++
			d := sw.cfg.RecircWait
			if recircs > 64 {
				d = sw.cfg.RecircWait / 4
			}
			env.After(d, admit)
			return
		}

		gid := sw.nextGID
		sw.nextGID++
		if sw.admitted != nil {
			sw.admitted[pkt.Header.TxnID] = gid
		}
		sw.Stats.Txns++
		if multipass {
			sw.Stats.MultiPass++
			sw.midPipeline++
		} else {
			sw.Stats.SinglePass++
		}

		results := make([]txnwire.Result, 0, len(pkt.Instrs))
		ctx := newPktCtx()
		i := 0
		var pass func()
		pass = func() {
			if multipass && i == len(passes)-1 {
				// Unlock when the final pass is admitted (Figure 7).
				sw.lock.Unlock(needL, needR)
				sw.midPipeline--
			}
			for _, in := range passes[i] {
				results = append(results, sw.apply(in, &ctx))
			}
			i++
			if i < len(passes) {
				d := sw.cfg.RecircWait
				if sw.cfg.FastRecirc {
					d = sw.cfg.RecircFast
				}
				sw.Stats.HolderPasses++
				env.After(d, pass)
				return
			}
			env.After(sw.cfg.PipelineLatency, func() {
				k(&txnwire.Response{
					TxnID:   pkt.Header.TxnID,
					GID:     gid,
					Recircs: clampU8(recircs),
					Results: results,
				}, nil)
			})
		}
		pass()
	}
	admit()
}

// pktCtx is the per-packet metadata a transaction carries through the
// pipeline (and across recirculations): the accumulator that chains
// read-dependent writes and the ok-flag that chains constrained writes.
type pktCtx struct {
	acc int64
	ok  bool
}

func newPktCtx() pktCtx { return pktCtx{ok: true} }

// apply executes one instruction against the register state. State
// mutations are instantaneous at the current virtual time; the pipeline
// latency is charged once per pass, which preserves the admission-order
// serial semantics while still modelling packet-level pipelining (many
// packets can be "in flight" during each other's PipelineLatency).
func (sw *Switch) apply(in txnwire.Instr, ctx *pktCtx) txnwire.Result {
	v := &sw.regs[sw.slot(in.Stage, in.Array, in.Index)]
	switch in.Op {
	case txnwire.OpRead:
		return txnwire.Result{Value: *v, OK: true}
	case txnwire.OpWrite:
		*v = in.Operand
		return txnwire.Result{Value: *v, OK: true}
	case txnwire.OpAdd:
		*v += in.Operand
		return txnwire.Result{Value: *v, OK: true}
	case txnwire.OpCondAddGE0:
		if *v+in.Operand >= 0 {
			*v += in.Operand
			return txnwire.Result{Value: *v, OK: true}
		}
		ctx.ok = false
		return txnwire.Result{Value: *v, OK: false}
	case txnwire.OpMax:
		if in.Operand > *v {
			*v = in.Operand
		}
		return txnwire.Result{Value: *v, OK: true}
	case txnwire.OpReadClear:
		old := *v
		ctx.acc += old
		*v = 0
		return txnwire.Result{Value: old, OK: true}
	case txnwire.OpAddAcc:
		*v += ctx.acc + in.Operand
		return txnwire.Result{Value: *v, OK: true}
	case txnwire.OpAddIfOK:
		if ctx.ok {
			*v += in.Operand
			return txnwire.Result{Value: *v, OK: true}
		}
		return txnwire.Result{Value: *v, OK: false}
	default:
		panic(fmt.Sprintf("pisa: unknown opcode %v", in.Op))
	}
}

// ApplyTxn replays one whole switch transaction through the control plane
// with a fresh packet context, used by recovery to re-execute logged
// transactions. It shares the exact data-plane semantics of Exec but takes
// no simulated time.
func (sw *Switch) ApplyTxn(instrs []txnwire.Instr) []txnwire.Result {
	ctx := newPktCtx()
	results := make([]txnwire.Result, len(instrs))
	for i, in := range instrs {
		results[i] = sw.apply(in, &ctx)
	}
	return results
}

func clampU8(v int) uint8 {
	if v > 255 {
		return 255
	}
	return uint8(v)
}
