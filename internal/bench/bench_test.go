package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/lock"
)

// tiny returns the smallest meaningful option set for unit tests.
func tiny() Options {
	o := Quick()
	o.Threads = []int{6}
	o.DistPcts = []int{50}
	o.Samples = 10000
	return o
}

func find(rows []Row, series, x string) *Row {
	for i := range rows {
		if rows[i].Series == series && (x == "" || rows[i].X == x) {
			return &rows[i]
		}
	}
	return nil
}

func TestFig01Shape(t *testing.T) {
	rows := Fig01(tiny())
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 (3 workloads x 2 systems)", len(rows))
	}
	for _, r := range rows {
		if r.Throughput <= 0 {
			t.Fatalf("zero throughput: %+v", r)
		}
		if r.Series == "P4DB" && r.Speedup <= 1 {
			t.Fatalf("P4DB speedup %.2f <= 1 on %s", r.Speedup, r.Workload)
		}
	}
}

func TestFig12HotFractions(t *testing.T) {
	o := tiny()
	rows := Fig12(o)
	// P4DB commits a materially larger hot fraction than No-Switch on the
	// update-heavy workload (the Figure 12 phenomenon).
	var ns, p4 float64
	for _, r := range rows {
		if r.Workload != "YCSB-A" {
			continue
		}
		switch r.Series {
		case seriesName("noswitch", lock.NoWait):
			ns = r.HotFrac
		case seriesName("p4db", lock.NoWait):
			p4 = r.HotFrac
		}
	}
	if p4 <= ns {
		t.Fatalf("P4DB hot commit fraction %.2f <= No-Switch %.2f", p4, ns)
	}
	if p4 < 0.5 {
		t.Fatalf("P4DB hot fraction %.2f; workload offers 75%%", p4)
	}
}

func TestFig15cMonotonic(t *testing.T) {
	rows := Fig15c(tiny())
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The fully-optimized configuration must beat the unoptimized one.
	if last := rows[3]; last.Speedup <= rows[0].Speedup {
		t.Fatalf("declustered layout (%.2fx) not faster than unoptimized (%.2fx)", last.Speedup, rows[0].Speedup)
	}
}

func TestFig17GracefulDegradation(t *testing.T) {
	o := tiny()
	rows := Fig17(o)
	// With the smallest capacity and the largest hot-set, P4DB must not
	// collapse below ~the No-Switch baseline.
	for _, r := range rows {
		if strings.HasPrefix(r.Series, "Capacity") && r.Speedup > 0 && r.Speedup < 0.5 {
			t.Fatalf("overflowing hot-set collapsed: %+v", r)
		}
	}
	// Small hot-set on a big-enough switch must still show a clear win.
	big := find(rows, "Capacity 64992 rows", "200 hot")
	if big == nil {
		t.Fatalf("missing expected row; have %+v", rows)
	}
	if big.Speedup < 1.2 {
		t.Fatalf("in-capacity speedup %.2f too small", big.Speedup)
	}
}

func TestFig18aBreakdownShape(t *testing.T) {
	rows := Fig18a(tiny())
	get := func(series, comp string) float64 {
		r := find(rows, series, comp)
		if r == nil {
			t.Fatalf("missing %s/%s", series, comp)
		}
		return r.Value
	}
	// P4DB must spend less time in lock acquisition than No-Switch
	// (Figure 18a's first effect).
	if get("P4DB", "Lock Acquisition") >= get("No-Switch", "Lock Acquisition") {
		t.Fatal("P4DB did not reduce lock acquisition time")
	}
	// And No-Switch has no switch-transaction component.
	if get("No-Switch", "Switch Txn") != 0 {
		t.Fatal("No-Switch reported switch time")
	}
	if get("P4DB", "Switch Txn") <= 0 {
		t.Fatal("P4DB reported no switch time")
	}
}

func TestFig18bOrdering(t *testing.T) {
	rows := Fig18b(tiny())
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Plain2PL < +Opt.Part and +P4DB is the best of all.
	if rows[1].Throughput <= rows[0].Throughput {
		t.Fatalf("optimal partitioning (%.0f) not faster than plain 2PL (%.0f)", rows[1].Throughput, rows[0].Throughput)
	}
	best := rows[3].Throughput
	for _, r := range rows[:3] {
		if r.Throughput >= best {
			t.Fatalf("P4DB (%.0f) not the fastest: %s at %.0f", best, r.Series, r.Throughput)
		}
	}
}

func TestPrintRendersAllRows(t *testing.T) {
	rows := []Row{
		{Figure: "F", Workload: "w", Series: "s", X: "x", Throughput: 123, Speedup: 2},
		{Figure: "F", Workload: "w", Series: "s2", X: "x", Throughput: 456},
	}
	var buf bytes.Buffer
	Print(&buf, rows)
	out := buf.String()
	for _, want := range []string{"== F ==", "s2", "2.00x", "123", "456"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestQuickAndDefaultOptionsSane(t *testing.T) {
	for _, o := range []Options{Default(), Quick()} {
		if o.Nodes <= 0 || o.Measure <= 0 || len(o.Threads) == 0 {
			t.Fatalf("bad options: %+v", o)
		}
	}
	if len(Figures) != 18 {
		t.Fatalf("figure registry has %d entries, want 18 (14 paper figures + calvin + scale + drift + recover)", len(Figures))
	}
}

// TestSystemsAwareMatchesPlans pins the SystemsAware set against the plan
// declarations themselves: a figure is -system aware exactly when building
// its plan with an Options.Systems override actually produces points for
// that engine. "occ" is the sentinel — no figure's paper-default engine
// set contains it, so its presence in a plan proves the override was
// consulted. This keeps cmd/p4db-bench's hard-error (and its inverse, the
// silent no-op this guards against) from drifting as figures are added.
func TestSystemsAwareMatchesPlans(t *testing.T) {
	o := tiny()
	o.Systems = []string{"occ"}
	for id, planFn := range figurePlans {
		honors := false
		for _, pt := range planFn(o).points {
			if pt.Cfg.Engine == "occ" {
				honors = true
				break
			}
		}
		if honors != SystemsAware[id] {
			t.Errorf("figure %q: plan honors -system = %v, SystemsAware says %v", id, honors, SystemsAware[id])
		}
	}
	for id := range SystemsAware {
		if _, ok := figurePlans[id]; !ok {
			t.Errorf("SystemsAware names unknown figure %q", id)
		}
	}
}
