package bench

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/lock"
	"repro/internal/workload"
)

// Matrix is the scenario-matrix runner: the full engines × workloads ×
// schemes grid, every cell one seeded run at the paper's standard load
// (top thread count, 20% distributed transactions, NO_WAIT). It opens
// arbitrary head-to-head comparisons beyond the paper's figure set — any
// registered engine against any registered CC scheme on every workload.
//
// The grid is built from the registries, so a newly registered engine or
// scheme shows up without touching this file. Engines that hardwire their
// scheme (SchemeForcer: lmswitch, chiller, occ, calvin) contribute exactly one
// cell per workload — sweeping the configured scheme would run the same
// simulation several times under different labels.
//
// Row shape: Workload = workload name, Series = engine label, Scheme =
// the CC family the run actually executed, Speedup = throughput vs the
// (noswitch, 2pl) cell of the same workload when that cell is in the
// grid. Cells execute on the same bounded worker pool as the figure
// sweeps (Options.Parallel) and the table is deterministic for a seed at
// any parallelism.

// matrixWorkloads lists the grid's workload axis at the paper's standard
// parameters.
func matrixWorkloads(o Options) []struct {
	name string
	gen  func() workload.Generator
} {
	return []struct {
		name string
		gen  func() workload.Generator
	}{
		{"YCSB-A", func() workload.Generator { return o.ycsb(50, 20, 75) }},
		{"YCSB-B", func() workload.Generator { return o.ycsb(5, 20, 75) }},
		{"YCSB-C", func() workload.Generator { return o.ycsb(0, 20, 75) }},
		{"SmallBank", func() workload.Generator { return o.smallbank(5, 20) }},
		{"TPC-C", func() workload.Generator { return o.tpcc(o.Nodes, 20) }},
	}
}

// matrixSchemes returns the scheme axis for one engine: the engine's
// forced scheme when it pins one, the configured scheme when Options
// selects one, otherwise every registered scheme.
func matrixSchemes(o Options, eng engine.Engine) []string {
	if f, ok := eng.(engine.SchemeForcer); ok {
		return []string{f.ForcedScheme()}
	}
	if o.Scheme != "" {
		return []string{o.Scheme}
	}
	return engine.SchemeNames()
}

// matrixPlan declares the grid: workload-major, then engines (registry
// order), then schemes, so the printed table groups head-to-head
// comparisons per workload.
func matrixPlan(o Options) plan {
	engines := o.Systems
	if len(engines) == 0 {
		engines = engine.Names()
	}
	// The (noswitch, 2pl) cell is every workload's speedup baseline, and a
	// Point's Base must reference an earlier point — so the baseline engine
	// leads each workload block (baseline-first, like the figures).
	for i, sys := range engines {
		if sys == "noswitch" && i > 0 {
			reordered := make([]string, 0, len(engines))
			reordered = append(reordered, "noswitch")
			reordered = append(reordered, engines[:i]...)
			reordered = append(reordered, engines[i+1:]...)
			engines = reordered
			break
		}
	}
	var pts []Point
	for _, wl := range matrixWorkloads(o) {
		wl := wl
		workers := o.Threads[len(o.Threads)-1]
		baseIdx := -1
		for _, sys := range engines {
			eng, err := engine.Lookup(sys)
			if err != nil {
				panic(fmt.Sprintf("bench: matrix: %v", err))
			}
			for _, scheme := range matrixSchemes(o, eng) {
				cfg := o.config(sys, lock.NoWait, workers)
				cfg.Scheme = scheme
				p := point(fmt.Sprintf("matrix %s %s/%s", wl.name, sys, scheme),
					cfg, wl.gen,
					Row{
						Figure: "Matrix", Workload: wl.name,
						Series: label(sys), X: "20% dist",
					})
				if sys == "noswitch" && scheme == engine.Scheme2PL {
					baseIdx = len(pts)
					p.Row.Speedup = 1
				} else {
					p.Base = baseIdx // -1 until the base cell is declared
				}
				pts = append(pts, p)
			}
		}
	}
	return plan{points: pts}
}

// Matrix runs the engines × workloads × schemes grid and returns one row
// per cell, grouped by workload. With Options.Faults it appends the
// crash-recovery dimension (see FaultMatrix).
func Matrix(o Options) []Row {
	rows := o.execute(matrixPlan(o))
	if o.Faults {
		rows = append(rows, FaultMatrix(o)...)
	}
	return rows
}
