package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lock"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Crash-recovery cells: the fault dimension of the scenario matrix
// (Options.Faults) and the recovery-latency figure (`-fig recover`). Both
// run the engine-level durability path end to end — Durable WALs on every
// commit path, a seeded mid-run crash, in-simulation recovery — and both
// lean on the same oracle: the crash handler is zero-perturbation, so a
// recovered run must reproduce the no-fault run's final state digest bit
// for bit. Every per-cell knob except the seed is pinned here so the
// recover digest pin stays stable no matter how the CLI sizes the paper
// figures.
const (
	recoverWorkers = 8
	recoverSamples = 6000
	recoverSlots   = 256
	recoverWarmup  = 200 * sim.Microsecond
	recoverMeasure = 600 * sim.Microsecond
	// recoverCrashAt is the fault matrix's crash instant: mid-measure, so
	// the WAL holds a substantial prefix and a substantial suffix executes
	// against recovered state.
	recoverCrashAt = 500 * sim.Microsecond
)

// faultCases maps each recovery story to the engine that exercises it:
// P4DB loses the switch (registers rebuilt by gap-fitting GID replay),
// the 2PL/2PC baseline loses a coordinator (partition redone from the
// cold records of all logs), and Calvin loses its sequencer (a standby
// replays the epoch log).
var faultCases = []struct {
	sys  string
	kind core.FaultKind
}{
	{"p4db", core.SwitchCrash},
	{"noswitch", core.CoordCrash},
	{"calvin", core.SequencerCrash},
}

// faultWorkloads is the fault dimension's workload axis.
func faultWorkloads(o Options) []struct {
	name string
	gen  func() workload.Generator
} {
	return []struct {
		name string
		gen  func() workload.Generator
	}{
		{"YCSB-A", func() workload.Generator { return o.ycsb(50, 20, 75) }},
		{"SmallBank", func() workload.Generator { return o.smallbank(5, 20) }},
		{"TPC-C", func() workload.Generator { return o.tpcc(o.Nodes, 20) }},
	}
}

// recoverConfig assembles one durable cluster config at the pinned cell
// knobs; plan == nil is a no-fault golden cell.
func (o Options) recoverConfig(sys string, plan *core.FaultPlan) core.Config {
	cfg := o.config(sys, lock.NoWait, recoverWorkers)
	cfg.Scheme = engine.Scheme2PL // pinned against -scheme (scheme forcers override)
	cfg.SampleTxns = recoverSamples
	cfg.Switch.SlotsPerArray = recoverSlots
	cfg.Adaptive = false // rejected alongside Fault; pin off against -adaptive
	cfg.AdaptInterval = 0
	cfg.Durable = true
	cfg.CaptureState = true
	cfg.Fault = plan
	return cfg
}

// FaultMatrix runs the scenario matrix's fault dimension: for every
// (workload, recovery story) pair one no-fault golden cell and one
// fault-injected cell, executed on the shared worker pool. Each fault
// cell HARD-ASSERTS that its recovered final state digest equals the
// golden cell's — a recovery that silently lost or invented a byte
// panics here rather than printing a plausible row. Row shape: Series =
// engine label, X = fault kind ("none" for golden cells), Value =
// modeled recovery latency in µs, Speedup = fault-cell throughput vs its
// golden cell (≈1 by construction).
func FaultMatrix(o Options) []Row {
	type cell struct {
		wl, sys, fault string
	}
	var pts []Point
	var cells []cell
	for _, wl := range faultWorkloads(o) {
		for _, fc := range faultCases {
			fp := &core.FaultPlan{Kind: fc.kind, At: recoverCrashAt}
			for _, p := range []*core.FaultPlan{nil, fp} {
				x := "none"
				if p != nil {
					x = p.Kind.String()
				}
				pt := point(fmt.Sprintf("matrix-faults %s %s/%s", wl.name, fc.sys, x),
					o.recoverConfig(fc.sys, p), wl.gen,
					Row{Figure: "Matrix-faults", Workload: wl.name, Series: label(fc.sys), X: x})
				pt.Warmup, pt.Measure = recoverWarmup, recoverMeasure
				pts = append(pts, pt)
				cells = append(cells, cell{wl.name, fc.sys, x})
			}
		}
	}

	results := o.runPoints(pts)
	rows := make([]Row, 0, len(pts))
	for i := 0; i < len(pts); i += 2 {
		golden, faulted := results[i], results[i+1]
		if golden.StateDigest == "" || faulted.StateDigest == "" {
			panic(fmt.Sprintf("bench: fault matrix cell %+v captured no state digest", cells[i+1]))
		}
		if faulted.Recovery == nil {
			panic(fmt.Sprintf("bench: fault matrix cell %+v: fault never fired", cells[i+1]))
		}
		if faulted.StateDigest != golden.StateDigest {
			panic(fmt.Sprintf("bench: recovered state diverged from the no-fault golden state in cell %+v:\n fault  %s\n golden %s",
				cells[i+1], faulted.StateDigest, golden.StateDigest))
		}
		gr := fill(pts[i].Row, golden)
		gr.Speedup = 1
		fr := fill(pts[i+1].Row, faulted)
		if gr.Throughput > 0 {
			fr.Speedup = fr.Throughput / gr.Throughput
		}
		fr.Value = float64(faulted.Recovery.RecoveryTime) / float64(sim.Microsecond)
		rows = append(rows, gr, fr)
	}
	return rows
}

// recoverPlan declares the recovery-latency figure's points: every
// recovery story on YCSB-A, crashed at increasing depths into the run —
// a later crash leaves a longer WAL to scan and replay, which is the
// figure's x-axis (log records scanned) against the modeled recovery
// latency (Value, µs).
func recoverPlan(o Options, crashTimes []sim.Time) plan {
	var pts []Point
	for _, fc := range faultCases {
		fc := fc
		for _, at := range crashTimes {
			fp := &core.FaultPlan{Kind: fc.kind, At: at}
			tmpl := Row{
				Figure: "Recover", Workload: "YCSB-A",
				Series: fmt.Sprintf("%s %s", label(fc.sys), fc.kind),
			}
			p := point(fmt.Sprintf("recover %s at=%v", fc.kind, at),
				o.recoverConfig(fc.sys, fp),
				func() workload.Generator { return o.ycsb(50, 20, 75) },
				tmpl)
			p.Warmup, p.Measure = recoverWarmup, recoverMeasure
			p.Expand = func(res *core.Result) []Row {
				r := fill(tmpl, res)
				r.X = fmt.Sprintf("%d rec", res.Recovery.LogRecords)
				r.Value = float64(res.Recovery.RecoveryTime) / float64(sim.Microsecond)
				return []Row{r}
			}
			pts = append(pts, p)
		}
	}
	return plan{points: pts}
}

// figRecoverPlan declares the full figure. Like scale and drift it is
// registered in figurePlans (`-fig recover`) but deliberately not in
// allPlans: `-fig all` keeps reproducing the paper's figure set — and
// its golden digest — unchanged.
func figRecoverPlan(o Options) plan {
	return recoverPlan(o, []sim.Time{300 * sim.Microsecond, 500 * sim.Microsecond, 700 * sim.Microsecond})
}

// FigRecover regenerates the recovery-latency figure.
func FigRecover(o Options) []Row { return o.execute(figRecoverPlan(o)) }

// RecoverSweep runs the reduced recovery sweep (all three recovery
// stories at a shallow and a deep crash point) on a pool of the given
// size and returns its rows. Every per-cell knob is pinned inside
// recoverPlan; only the seed and node count come from the golden
// options. TestRecoverSweepDeterministic pins its digest in
// testdata/recover.digest.
func RecoverSweep(parallel int) []Row {
	o := GoldenOptions()
	o.Parallel = parallel
	return o.execute(recoverPlan(o, []sim.Time{300 * sim.Microsecond, 700 * sim.Microsecond}))
}
