package bench

import (
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/sim"
)

// matrixOpts is small enough to run the full grid in a unit test.
func matrixOpts() Options {
	o := Quick()
	o.Threads = []int{6}
	o.DistPcts = []int{50}
	o.Samples = 6000
	o.Warmup = 100 * sim.Microsecond
	o.Measure = 300 * sim.Microsecond
	return o
}

// TestMatrixGrid is the scenario-matrix smoke test: the grid must contain
// exactly one row per (engine, workload, scheme) cell, with
// hardwired-scheme engines (lmswitch, chiller, occ) contributing exactly
// one cell per workload under their forced scheme.
func TestMatrixGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid; skipped with -short")
	}
	o := matrixOpts()
	o.Parallel = 4
	rows := Matrix(o)

	// Expected cells: for every workload, every engine runs either its
	// forced scheme (one cell) or every registered scheme.
	workloads := []string{"YCSB-A", "YCSB-B", "YCSB-C", "SmallBank", "TPC-C"}
	wantCells := make(map[string]int)
	want := 0
	for _, wl := range workloads {
		for _, sys := range engine.Names() {
			eng, err := engine.Lookup(sys)
			if err != nil {
				t.Fatal(err)
			}
			schemes := engine.SchemeNames()
			if f, ok := eng.(engine.SchemeForcer); ok {
				schemes = []string{f.ForcedScheme()}
			}
			for _, scheme := range schemes {
				wantCells[fmt.Sprintf("%s|%s|%s", wl, label(sys), scheme)]++
				want++
			}
		}
	}

	if len(rows) != want {
		t.Fatalf("matrix has %d rows, want %d (one per cell)", len(rows), want)
	}
	got := make(map[string]int)
	for _, r := range rows {
		if r.Figure != "Matrix" {
			t.Fatalf("row with figure %q in matrix output", r.Figure)
		}
		if r.Throughput <= 0 {
			t.Fatalf("cell with zero throughput: %+v", r)
		}
		got[fmt.Sprintf("%s|%s|%s", r.Workload, r.Series, r.Scheme)]++
	}
	for cell, n := range got {
		if n != 1 {
			t.Fatalf("cell %s appears %d times, want exactly once (forced-scheme dedup broken?)", cell, n)
		}
		if wantCells[cell] != 1 {
			t.Fatalf("unexpected cell %s (not in the declared grid)", cell)
		}
	}

	// The deterministic engine contributes exactly one cell per workload
	// (it pins 2PL) and, uniquely in the grid, never aborts: conflicts
	// resolve by waiting in pre-declared lock order.
	calvinCells := 0
	for _, r := range rows {
		if r.Series != label("calvin") {
			continue
		}
		calvinCells++
		if r.Scheme != engine.Scheme2PL {
			t.Fatalf("calvin cell ran scheme %q, want pinned 2pl: %+v", r.Scheme, r)
		}
		if r.AbortRate != 0 {
			t.Fatalf("calvin cell aborted (deterministic locking must not): %+v", r)
		}
	}
	if calvinCells != len(workloads) {
		t.Fatalf("found %d calvin cells, want %d (one per workload)", calvinCells, len(workloads))
	}

	// The (noswitch, 2pl) cell anchors each workload's speedups at 1x.
	bases := 0
	for _, r := range rows {
		if r.Series == label("noswitch") && r.Scheme == engine.Scheme2PL {
			if r.Speedup != 1 {
				t.Fatalf("baseline cell has speedup %.2f, want 1: %+v", r.Speedup, r)
			}
			bases++
		}
	}
	if bases != len(workloads) {
		t.Fatalf("found %d baseline cells, want %d", bases, len(workloads))
	}
}

// TestMatrixDeterministicAcrossParallelism asserts the grid digest does
// not depend on the worker pool size.
func TestMatrixDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("two full grids; skipped with -short")
	}
	o := matrixOpts()
	serial := o
	serial.Parallel = 1
	parallel := o
	parallel.Parallel = 8
	a, b := Digest(Matrix(serial)), Digest(Matrix(parallel))
	if a != b {
		t.Fatalf("matrix digest depends on parallelism:\n  serial:   %s\n  parallel: %s", a, b)
	}
}

// TestFaultMatrixCells asserts the shape and oracle of the matrix's
// crash-recovery dimension: for each of the three workloads and three
// recovery stories there is a golden cell (X "none", zero recovery
// latency, speedup 1) and a fault cell (X = fault kind, positive modeled
// recovery latency). The load-bearing check — recovered state digest
// equals the no-fault golden digest, per pair — runs inside FaultMatrix
// itself and panics on divergence, so this test reaching row assertions
// means all nine recoveries verified.
func TestFaultMatrixCells(t *testing.T) {
	if testing.Short() {
		t.Skip("eighteen durable runs; skipped with -short")
	}
	o := matrixOpts()
	o.Parallel = 4
	rows := FaultMatrix(o)

	if len(rows) != 18 { // 3 workloads x 3 stories x {golden, fault}
		t.Fatalf("fault dimension has %d rows, want 18", len(rows))
	}
	kinds := map[string]int{}
	for i := 0; i < len(rows); i += 2 {
		golden, fault := rows[i], rows[i+1]
		if golden.X != "none" || golden.Value != 0 || golden.Speedup != 1 {
			t.Fatalf("malformed golden cell: %+v", golden)
		}
		if fault.X == "none" || fault.Value <= 0 {
			t.Fatalf("fault cell missing recovery latency: %+v", fault)
		}
		if fault.Workload != golden.Workload || fault.Series != golden.Series {
			t.Fatalf("fault cell %+v not paired with its golden cell %+v", fault, golden)
		}
		if fault.Speedup <= 0 {
			t.Fatalf("fault cell missing throughput ratio vs golden: %+v", fault)
		}
		kinds[fault.X]++
	}
	for _, k := range []string{"switch-crash", "coord-crash", "sequencer-failover"} {
		if kinds[k] != 3 {
			t.Fatalf("fault kind %q covers %d workloads, want 3 (got %v)", k, kinds[k], kinds)
		}
	}
}

// TestMatrixSystemsOverride restricts the engine axis through
// Options.Systems and keeps the baseline anchored when present.
func TestMatrixSystemsOverride(t *testing.T) {
	if testing.Short() {
		t.Skip("grid subset; skipped with -short")
	}
	o := matrixOpts()
	o.Systems = []string{"p4db", "noswitch"} // noswitch not first: runner must reorder
	o.Scheme = "2pl"
	rows := Matrix(o)
	// 5 workloads x 2 engines x 1 scheme.
	if len(rows) != 10 {
		t.Fatalf("restricted matrix has %d rows, want 10", len(rows))
	}
	for _, r := range rows {
		if r.Series == label("noswitch") && r.Speedup != 1 {
			t.Fatalf("baseline not anchored: %+v", r)
		}
		if r.Series == label("p4db") && r.Speedup <= 0 {
			t.Fatalf("p4db cell missing speedup vs baseline: %+v", r)
		}
	}
}
