package bench

import (
	"fmt"

	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/pisa"
	"repro/internal/sim"
	"repro/internal/workload"
)

// bothPolicies is the paper's standard CC-policy pair.
var bothPolicies = []lock.Policy{lock.NoWait, lock.WaitDie}

// Fig01 regenerates the headline comparison (Figure 1): No-Switch vs P4DB
// throughput and speedup on YCSB-A, SmallBank (8x5 hot) and TPC-C (8 WH)
// at full load with 20% distributed transactions.
func Fig01(o Options) []Row {
	type wl struct {
		name string
		gen  func() workload.Generator
	}
	workloads := []wl{
		{"YCSB", func() workload.Generator { return o.ycsb(50, 20, 75) }},
		{"SmallBank", func() workload.Generator { return o.smallbank(5, 20) }},
		{"TPC-C", func() workload.Generator { return o.tpcc(o.Nodes, 20) }},
	}
	var rows []Row
	workers := o.Threads[len(o.Threads)-1]
	for _, w := range workloads {
		var base float64
		for _, sys := range []string{"noswitch", "p4db"} {
			o.progressf("fig01 %s %s\n", w.name, sys)
			res := o.run(o.config(sys, lock.NoWait, workers), w.gen())
			r := fill(Row{Figure: "Figure 1", Workload: w.name, Series: label(sys), X: "20% dist"}, res)
			if sys == "noswitch" {
				base = r.Throughput
			} else if base > 0 {
				r.Speedup = r.Throughput / base
			}
			rows = append(rows, r)
		}
	}
	return rows
}

// sweepSystems measures P4DB and LM-Switch speedups over the No-Switch
// baseline with matching lock policy, for one generator factory, across a
// one-dimensional sweep. Raw No-Switch rows are included (they double as
// the raw-throughput appendix figures 19-21).
func (o Options) sweepSystems(fig, wlName string, systems []string, xs []string, workers func(i int) int, gen func(i int) workload.Generator) []Row {
	systems = o.systemsOr(systems)
	var rows []Row
	for i, x := range xs {
		for _, pol := range bothPolicies {
			o.progressf("%s %s x=%s base %v\n", fig, wlName, x, pol)
			base := o.run(o.config("noswitch", pol, workers(i)), gen(i))
			rows = append(rows, fill(Row{
				Figure: fig, Workload: wlName,
				Series: seriesName("noswitch", pol), X: x, Speedup: 1,
			}, base))
			for _, sys := range systems {
				o.progressf("%s %s x=%s %v %v\n", fig, wlName, x, sys, pol)
				res := o.run(o.config(sys, pol, workers(i)), gen(i))
				r := fill(Row{Figure: fig, Workload: wlName, Series: seriesName(sys, pol), X: x}, res)
				if base.Throughput() > 0 {
					r.Speedup = r.Throughput / base.Throughput()
				}
				rows = append(rows, r)
			}
		}
	}
	return rows
}

// Fig11Contention regenerates Figure 11 (upper row) / Figure 19 (upper):
// YCSB A/B/C speedups over No-Switch while scaling worker threads.
func Fig11Contention(o Options) []Row {
	var rows []Row
	for _, wl := range []struct {
		name     string
		writePct int
	}{{"YCSB-A", 50}, {"YCSB-B", 5}, {"YCSB-C", 0}} {
		wl := wl
		xs := make([]string, len(o.Threads))
		for i, t := range o.Threads {
			xs[i] = fmt.Sprintf("%d thr", t)
		}
		rows = append(rows, o.sweepSystems("Figure 11 (threads)", wl.name,
			[]string{"lmswitch", "p4db"}, xs,
			func(i int) int { return o.Threads[i] },
			func(i int) workload.Generator { return o.ycsb(wl.writePct, 20, 75) })...)
	}
	return rows
}

// Fig11Distributed regenerates Figure 11 (lower row) / Figure 19 (lower):
// YCSB speedups while scaling the fraction of distributed transactions.
func Fig11Distributed(o Options) []Row {
	var rows []Row
	workers := o.Threads[len(o.Threads)-1]
	for _, wl := range []struct {
		name     string
		writePct int
	}{{"YCSB-A", 50}, {"YCSB-B", 5}, {"YCSB-C", 0}} {
		wl := wl
		xs := make([]string, len(o.DistPcts))
		for i, d := range o.DistPcts {
			xs[i] = fmt.Sprintf("%d%% dist", d)
		}
		rows = append(rows, o.sweepSystems("Figure 11 (distributed)", wl.name,
			[]string{"lmswitch", "p4db"}, xs,
			func(i int) int { return workers },
			func(i int) workload.Generator { return o.ycsb(wl.writePct, o.DistPcts[i], 75) })...)
	}
	return rows
}

// Fig12 regenerates the hot/cold commit breakdown (Figure 12): committed
// hot vs cold transaction fractions for No-Switch and P4DB on YCSB A/B/C
// at 20 threads and 20% distributed transactions.
func Fig12(o Options) []Row {
	var rows []Row
	workers := o.Threads[len(o.Threads)-1]
	for _, wl := range []struct {
		name     string
		writePct int
	}{{"YCSB-A", 50}, {"YCSB-B", 5}, {"YCSB-C", 0}} {
		for _, sys := range []string{"noswitch", "p4db"} {
			for _, pol := range bothPolicies {
				o.progressf("fig12 %s %v %v\n", wl.name, sys, pol)
				res := o.run(o.config(sys, pol, workers), o.ycsb(wl.writePct, 20, 75))
				rows = append(rows, fill(Row{
					Figure: "Figure 12", Workload: wl.name,
					Series: seriesName(sys, pol), X: "hot/cold",
				}, res))
			}
		}
	}
	return rows
}

// Fig13Contention regenerates Figure 13 (upper) / Figure 20 (upper):
// SmallBank speedups for hot-set sizes 8x5/8x10/8x15 while scaling
// threads.
func Fig13Contention(o Options) []Row {
	var rows []Row
	for _, hot := range []int{5, 10, 15} {
		hot := hot
		xs := make([]string, len(o.Threads))
		for i, t := range o.Threads {
			xs[i] = fmt.Sprintf("%d thr", t)
		}
		rows = append(rows, o.sweepSystems("Figure 13 (threads)",
			fmt.Sprintf("SB %dx%d", o.Nodes, hot),
			[]string{"p4db"}, xs,
			func(i int) int { return o.Threads[i] },
			func(i int) workload.Generator { return o.smallbank(hot, 20) })...)
	}
	return rows
}

// Fig13Distributed regenerates Figure 13 (lower) / Figure 20 (lower).
func Fig13Distributed(o Options) []Row {
	var rows []Row
	workers := o.Threads[len(o.Threads)-1]
	for _, hot := range []int{5, 10, 15} {
		hot := hot
		xs := make([]string, len(o.DistPcts))
		for i, d := range o.DistPcts {
			xs[i] = fmt.Sprintf("%d%% dist", d)
		}
		rows = append(rows, o.sweepSystems("Figure 13 (distributed)",
			fmt.Sprintf("SB %dx%d", o.Nodes, hot),
			[]string{"p4db"}, xs,
			func(i int) int { return workers },
			func(i int) workload.Generator { return o.smallbank(hot, o.DistPcts[i]) })...)
	}
	return rows
}

// Fig14Contention regenerates Figure 14 (upper) / Figure 21 (upper):
// TPC-C speedups for 8/16/32 warehouses while scaling threads.
func Fig14Contention(o Options) []Row {
	var rows []Row
	for _, wh := range []int{o.Nodes, o.Nodes * 2, o.Nodes * 4} {
		wh := wh
		xs := make([]string, len(o.Threads))
		for i, t := range o.Threads {
			xs[i] = fmt.Sprintf("%d thr", t)
		}
		rows = append(rows, o.sweepSystems("Figure 14 (threads)",
			fmt.Sprintf("TPCC %dWH", wh),
			[]string{"p4db"}, xs,
			func(i int) int { return o.Threads[i] },
			func(i int) workload.Generator { return o.tpcc(wh, 20) })...)
	}
	return rows
}

// Fig14Distributed regenerates Figure 14 (lower) / Figure 21 (lower).
func Fig14Distributed(o Options) []Row {
	var rows []Row
	workers := o.Threads[len(o.Threads)-1]
	for _, wh := range []int{o.Nodes, o.Nodes * 2, o.Nodes * 4} {
		wh := wh
		xs := make([]string, len(o.DistPcts))
		for i, d := range o.DistPcts {
			xs[i] = fmt.Sprintf("%d%% dist", d)
		}
		rows = append(rows, o.sweepSystems("Figure 14 (distributed)",
			fmt.Sprintf("TPCC %dWH", wh),
			[]string{"p4db"}, xs,
			func(i int) int { return workers },
			func(i int) workload.Generator { return o.tpcc(wh, o.DistPcts[i]) })...)
	}
	return rows
}

// Fig15ab regenerates the hot/cold-ratio microbenchmark (Figure 15a/b):
// YCSB-A with 20% distributed transactions while the fraction of hot
// transactions grows from 0 to 100%.
func Fig15ab(o Options) []Row {
	var rows []Row
	workers := o.Threads[len(o.Threads)-1]
	for _, hotPct := range []int{0, 25, 50, 75, 100} {
		for _, pol := range bothPolicies {
			o.progressf("fig15ab hot=%d %v\n", hotPct, pol)
			base := o.run(o.config("noswitch", pol, workers), o.ycsb(50, 20, hotPct))
			rows = append(rows, fill(Row{
				Figure: "Figure 15a/b", Workload: "YCSB-A",
				Series: seriesName("noswitch", pol),
				X:      fmt.Sprintf("%d%% hot", hotPct), Speedup: 1,
			}, base))
			res := o.run(o.config("p4db", pol, workers), o.ycsb(50, 20, hotPct))
			r := fill(Row{
				Figure: "Figure 15a/b", Workload: "YCSB-A",
				Series: seriesName("p4db", pol),
				X:      fmt.Sprintf("%d%% hot", hotPct),
			}, res)
			if base.Throughput() > 0 {
				r.Speedup = r.Throughput / base.Throughput()
			}
			rows = append(rows, r)
		}
	}
	return rows
}

// Fig15c regenerates the switch-optimization ablation (Figure 15c) on the
// hot transactions of YCSB-A: starting from a random layout with all
// multi-pass optimizations off, fast recirculation, fine-grained locking
// and finally the declustered layout are enabled cumulatively.
func Fig15c(o Options) []Row {
	steps := []struct {
		name       string
		random     bool
		fastRecirc bool
		fineLocks  bool
	}{
		{"Unoptimized", true, false, false},
		{"+Fast-Recirculate", true, true, false},
		{"+Fine-Locking", true, true, true},
		{"+Declustered", false, true, true},
	}
	var rows []Row
	workers := o.Threads[len(o.Threads)-1]
	var base float64
	for _, s := range steps {
		o.progressf("fig15c %s\n", s.name)
		cfg := o.config("p4db", lock.NoWait, workers)
		cfg.RandomLayout = s.random
		cfg.Switch.FastRecirc = s.fastRecirc
		cfg.Switch.FineLocks = s.fineLocks
		res := o.run(cfg, o.ycsb(50, 20, 100))
		r := fill(Row{Figure: "Figure 15c", Workload: "YCSB-A hot", Series: s.name, X: "ablation"}, res)
		if base == 0 {
			base = r.Throughput
			r.Speedup = 1
		} else {
			r.Speedup = r.Throughput / base
		}
		rows = append(rows, r)
	}
	return rows
}

// Fig16 regenerates the layout-impact experiment (Figure 16): optimal vs
// random (worst-case) data layout for all three workloads, reporting
// throughput and mean transaction latency while scaling threads.
func Fig16(o Options) []Row {
	type wl struct {
		name string
		gen  func() workload.Generator
	}
	workloads := []wl{
		{"YCSB-A", func() workload.Generator { return o.ycsb(50, 20, 75) }},
		{"SB 8x5", func() workload.Generator { return o.smallbank(5, 20) }},
		{"TPCC 8WH", func() workload.Generator { return o.tpcc(o.Nodes, 20) }},
	}
	var rows []Row
	for _, w := range workloads {
		for _, random := range []bool{false, true} {
			series := "Optimal Layout"
			if random {
				series = "Worst Layout"
			}
			for _, thr := range o.Threads {
				o.progressf("fig16 %s %s %d thr\n", w.name, series, thr)
				cfg := o.config("p4db", lock.NoWait, thr)
				cfg.RandomLayout = random
				res := o.run(cfg, w.gen())
				rows = append(rows, fill(Row{
					Figure: "Figure 16", Workload: w.name, Series: series,
					X: fmt.Sprintf("%d thr", thr),
				}, res))
			}
		}
	}
	return rows
}

// Fig17 regenerates the capacity-overflow experiment (Figure 17): YCSB-A
// hot-sets growing past several switch capacities. Hot tuples beyond
// capacity stay on the nodes, so throughput must degrade gracefully toward
// the No-Switch baseline.
func Fig17(o Options) []Row {
	capacities := []int{1000, 10000, 65000}
	hotPerNodeSizes := []int{50, 126, 1250, 8250, 32750}
	var rows []Row
	workers := o.Threads[len(o.Threads)-1]
	for _, hpn := range hotPerNodeSizes {
		total := hpn * o.Nodes
		x := fmt.Sprintf("%d hot", total)
		gen := func() *workload.YCSB {
			cfg := workload.YCSBWorkloadA(o.Nodes)
			cfg.DistPct = 20
			cfg.HotPerNode = hpn
			return workload.NewYCSB(cfg)
		}
		o.progressf("fig17 base hot=%d\n", total)
		base := o.run(o.config("noswitch", lock.NoWait, workers), gen())
		rows = append(rows, fill(Row{
			Figure: "Figure 17", Workload: "YCSB-A",
			Series: "No-Switch", X: x, Speedup: 1,
		}, base))
		for _, capRows := range capacities {
			o.progressf("fig17 cap=%d hot=%d\n", capRows, total)
			cfg := o.config("p4db", lock.NoWait, workers)
			cfg.Switch = pisa.DefaultConfig()
			cfg.Switch.SlotsPerArray = capRows / (cfg.Switch.Stages * cfg.Switch.ArraysPerStage)
			g := gen()
			cfg.ExplicitHot = g.HotCandidates()
			res := o.run(cfg, g)
			r := fill(Row{
				Figure: "Figure 17", Workload: "YCSB-A",
				Series: fmt.Sprintf("Capacity %d rows", cfg.Switch.Capacity()), X: x,
			}, res)
			if base.Throughput() > 0 {
				r.Speedup = r.Throughput / base.Throughput()
			}
			rows = append(rows, r)
		}
	}
	return rows
}

// Fig18a regenerates the TPC-C latency breakdown (Figure 18a): average
// per-transaction time in each engine component for No-Switch vs P4DB at
// the highest contention (8 warehouses, 20 threads). Value is µs/txn.
func Fig18a(o Options) []Row {
	var rows []Row
	workers := o.Threads[len(o.Threads)-1]
	for _, sys := range []string{"noswitch", "p4db"} {
		o.progressf("fig18a %v\n", sys)
		res := o.run(o.config(sys, lock.NoWait, workers), o.tpcc(o.Nodes, 20))
		for _, comp := range metrics.Components() {
			rows = append(rows, Row{
				Figure: "Figure 18a", Workload: "TPCC 8WH",
				Series: label(sys), Scheme: res.Scheme, X: comp.String(),
				Value:     latPerTxnUs(&res.Breakdown, comp),
				MeanLatUs: float64(res.Latency.Mean()) / float64(sim.Microsecond),
			})
		}
	}
	return rows
}

// Fig18b regenerates the existing-optimizations comparison (Figure 18b):
// plain 2PL/2PC with poor locality, optimal partitioning, a Chiller-style
// contention-centric scheme, and P4DB, all on TPC-C with 8 warehouses.
func Fig18b(o Options) []Row {
	steps := []struct {
		name string
		sys  string
		dist int
	}{
		{"Plain 2PL", "noswitch", 80},
		{"+Opt. Part.", "noswitch", 20},
		{"+Chiller", "chiller", 20},
		{"+P4DB", "p4db", 20},
	}
	var rows []Row
	workers := o.Threads[len(o.Threads)-1]
	var base float64
	for _, s := range steps {
		o.progressf("fig18b %s\n", s.name)
		res := o.run(o.config(s.sys, lock.NoWait, workers), o.tpcc(o.Nodes, s.dist))
		r := fill(Row{Figure: "Figure 18b", Workload: "TPCC 8WH", Series: s.name, X: "existing opts"}, res)
		if base == 0 {
			base = r.Throughput
			r.Speedup = 1
		} else {
			r.Speedup = r.Throughput / base
		}
		rows = append(rows, r)
	}
	return rows
}

// All runs every figure and returns the concatenated rows.
func All(o Options) []Row {
	var rows []Row
	rows = append(rows, Fig01(o)...)
	rows = append(rows, Fig11Contention(o)...)
	rows = append(rows, Fig11Distributed(o)...)
	rows = append(rows, Fig12(o)...)
	rows = append(rows, Fig13Contention(o)...)
	rows = append(rows, Fig13Distributed(o)...)
	rows = append(rows, Fig14Contention(o)...)
	rows = append(rows, Fig14Distributed(o)...)
	rows = append(rows, Fig15ab(o)...)
	rows = append(rows, Fig15c(o)...)
	rows = append(rows, Fig16(o)...)
	rows = append(rows, Fig17(o)...)
	rows = append(rows, Fig18a(o)...)
	rows = append(rows, Fig18b(o)...)
	return rows
}

// Figures maps figure ids (as used by cmd/p4db-bench -fig) to runners.
var Figures = map[string]func(Options) []Row{
	"1":    Fig01,
	"11t":  Fig11Contention,
	"11d":  Fig11Distributed,
	"12":   Fig12,
	"13t":  Fig13Contention,
	"13d":  Fig13Distributed,
	"14t":  Fig14Contention,
	"14d":  Fig14Distributed,
	"15ab": Fig15ab,
	"15c":  Fig15c,
	"16":   Fig16,
	"17":   Fig17,
	"18a":  Fig18a,
	"18b":  Fig18b,
}
