package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/pisa"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Every figure below is declared as a plan — an ordered slice of
// self-contained Points (see point.go) plus the row assembly that depends
// on other points' results (baseline speedups, ablation chains). The
// exported FigXX functions execute the plan through the bounded worker
// pool; All executes every plan through one shared pool so long points
// (the TPC-C sweeps) overlap with other figures' work.

// bothPolicies is the paper's standard CC-policy pair.
var bothPolicies = []lock.Policy{lock.NoWait, lock.WaitDie}

// fig01Plan declares the headline comparison (Figure 1): No-Switch vs
// P4DB throughput and speedup on YCSB-A, SmallBank (8x5 hot) and TPC-C
// (8 WH) at full load with 20% distributed transactions.
func fig01Plan(o Options) plan {
	type wl struct {
		name string
		gen  func() workload.Generator
	}
	workloads := []wl{
		{"YCSB", func() workload.Generator { return o.ycsb(50, 20, 75) }},
		{"SmallBank", func() workload.Generator { return o.smallbank(5, 20) }},
		{"TPC-C", func() workload.Generator { return o.tpcc(o.Nodes, 20) }},
	}
	var pts []Point
	workers := o.Threads[len(o.Threads)-1]
	for _, w := range workloads {
		for _, sys := range []string{"noswitch", "p4db"} {
			p := point(fmt.Sprintf("fig01 %s %s", w.name, sys),
				o.config(sys, lock.NoWait, workers), w.gen,
				Row{Figure: "Figure 1", Workload: w.name, Series: label(sys), X: "20% dist"})
			if sys == "p4db" {
				p.Base = len(pts) - 1 // the No-Switch point right before it
			}
			pts = append(pts, p)
		}
	}
	return plan{points: pts}
}

// Fig01 regenerates Figure 1.
func Fig01(o Options) []Row { return o.execute(fig01Plan(o)) }

// sweepSystems declares the points measuring P4DB and LM-Switch speedups
// over the No-Switch baseline with matching lock policy, for one generator
// factory, across a one-dimensional sweep. Raw No-Switch rows are included
// (they double as the raw-throughput appendix figures 19-21).
func (o Options) sweepSystems(fig, wlName string, systems []string, xs []string, workers func(i int) int, gen func(i int) workload.Generator) []Point {
	systems = o.systemsOr(systems)
	var pts []Point
	for i, x := range xs {
		i := i
		for _, pol := range bothPolicies {
			base := point(fmt.Sprintf("%s %s x=%s base %v", fig, wlName, x, pol),
				o.config("noswitch", pol, workers(i)),
				func() workload.Generator { return gen(i) },
				Row{
					Figure: fig, Workload: wlName,
					Series: seriesName("noswitch", pol), X: x, Speedup: 1,
				})
			baseIdx := len(pts)
			pts = append(pts, base)
			for _, sys := range systems {
				p := point(fmt.Sprintf("%s %s x=%s %v %v", fig, wlName, x, sys, pol),
					o.config(sys, pol, workers(i)),
					func() workload.Generator { return gen(i) },
					Row{Figure: fig, Workload: wlName, Series: seriesName(sys, pol), X: x})
				p.Base = baseIdx
				pts = append(pts, p)
			}
		}
	}
	return pts
}

// ycsbSweepPlan is the shared shape of Figure 11's two rows: one sweep per
// YCSB mix (A/B/C), against LM-Switch and P4DB.
func (o Options) ycsbSweepPlan(fig string, xs []string, workers func(i int) int, gen func(writePct, i int) workload.Generator) plan {
	var pts []Point
	for _, wl := range []struct {
		name     string
		writePct int
	}{{"YCSB-A", 50}, {"YCSB-B", 5}, {"YCSB-C", 0}} {
		wl := wl
		pts = appendPoints(pts, o.sweepSystems(fig, wl.name,
			[]string{"lmswitch", "p4db"}, xs, workers,
			func(i int) workload.Generator { return gen(wl.writePct, i) }))
	}
	return plan{points: pts}
}

// fig11tPlan declares Figure 11 (upper row) / Figure 19 (upper): YCSB
// A/B/C speedups over No-Switch while scaling worker threads.
func fig11tPlan(o Options) plan {
	xs := make([]string, len(o.Threads))
	for i, t := range o.Threads {
		xs[i] = fmt.Sprintf("%d thr", t)
	}
	return o.ycsbSweepPlan("Figure 11 (threads)", xs,
		func(i int) int { return o.Threads[i] },
		func(writePct, i int) workload.Generator { return o.ycsb(writePct, 20, 75) })
}

// Fig11Contention regenerates Figure 11 (upper row) / Figure 19 (upper).
func Fig11Contention(o Options) []Row { return o.execute(fig11tPlan(o)) }

// fig11dPlan declares Figure 11 (lower row) / Figure 19 (lower): YCSB
// speedups while scaling the fraction of distributed transactions.
func fig11dPlan(o Options) plan {
	workers := o.Threads[len(o.Threads)-1]
	xs := make([]string, len(o.DistPcts))
	for i, d := range o.DistPcts {
		xs[i] = fmt.Sprintf("%d%% dist", d)
	}
	return o.ycsbSweepPlan("Figure 11 (distributed)", xs,
		func(i int) int { return workers },
		func(writePct, i int) workload.Generator { return o.ycsb(writePct, o.DistPcts[i], 75) })
}

// Fig11Distributed regenerates Figure 11 (lower row) / Figure 19 (lower).
func Fig11Distributed(o Options) []Row { return o.execute(fig11dPlan(o)) }

// fig12Plan declares the hot/cold commit breakdown (Figure 12): committed
// hot vs cold transaction fractions for No-Switch and P4DB on YCSB A/B/C
// at 20 threads and 20% distributed transactions.
func fig12Plan(o Options) plan {
	var pts []Point
	workers := o.Threads[len(o.Threads)-1]
	for _, wl := range []struct {
		name     string
		writePct int
	}{{"YCSB-A", 50}, {"YCSB-B", 5}, {"YCSB-C", 0}} {
		wl := wl
		for _, sys := range []string{"noswitch", "p4db"} {
			for _, pol := range bothPolicies {
				pts = append(pts, point(fmt.Sprintf("fig12 %s %v %v", wl.name, sys, pol),
					o.config(sys, pol, workers),
					func() workload.Generator { return o.ycsb(wl.writePct, 20, 75) },
					Row{
						Figure: "Figure 12", Workload: wl.name,
						Series: seriesName(sys, pol), X: "hot/cold",
					}))
			}
		}
	}
	return plan{points: pts}
}

// Fig12 regenerates Figure 12.
func Fig12(o Options) []Row { return o.execute(fig12Plan(o)) }

// fig13tPlan declares Figure 13 (upper) / Figure 20 (upper): SmallBank
// speedups for hot-set sizes 8x5/8x10/8x15 while scaling threads.
func fig13tPlan(o Options) plan {
	var pts []Point
	for _, hot := range []int{5, 10, 15} {
		hot := hot
		xs := make([]string, len(o.Threads))
		for i, t := range o.Threads {
			xs[i] = fmt.Sprintf("%d thr", t)
		}
		pts = appendPoints(pts, o.sweepSystems("Figure 13 (threads)",
			fmt.Sprintf("SB %dx%d", o.Nodes, hot),
			[]string{"p4db"}, xs,
			func(i int) int { return o.Threads[i] },
			func(i int) workload.Generator { return o.smallbank(hot, 20) }))
	}
	return plan{points: pts}
}

// Fig13Contention regenerates Figure 13 (upper) / Figure 20 (upper).
func Fig13Contention(o Options) []Row { return o.execute(fig13tPlan(o)) }

// fig13dPlan declares Figure 13 (lower) / Figure 20 (lower).
func fig13dPlan(o Options) plan {
	var pts []Point
	workers := o.Threads[len(o.Threads)-1]
	for _, hot := range []int{5, 10, 15} {
		hot := hot
		xs := make([]string, len(o.DistPcts))
		for i, d := range o.DistPcts {
			xs[i] = fmt.Sprintf("%d%% dist", d)
		}
		pts = appendPoints(pts, o.sweepSystems("Figure 13 (distributed)",
			fmt.Sprintf("SB %dx%d", o.Nodes, hot),
			[]string{"p4db"}, xs,
			func(i int) int { return workers },
			func(i int) workload.Generator { return o.smallbank(hot, o.DistPcts[i]) }))
	}
	return plan{points: pts}
}

// Fig13Distributed regenerates Figure 13 (lower) / Figure 20 (lower).
func Fig13Distributed(o Options) []Row { return o.execute(fig13dPlan(o)) }

// fig14tPlan declares Figure 14 (upper) / Figure 21 (upper): TPC-C
// speedups for 8/16/32 warehouses while scaling threads.
func fig14tPlan(o Options) plan {
	var pts []Point
	for _, wh := range []int{o.Nodes, o.Nodes * 2, o.Nodes * 4} {
		wh := wh
		xs := make([]string, len(o.Threads))
		for i, t := range o.Threads {
			xs[i] = fmt.Sprintf("%d thr", t)
		}
		pts = appendPoints(pts, o.sweepSystems("Figure 14 (threads)",
			fmt.Sprintf("TPCC %dWH", wh),
			[]string{"p4db"}, xs,
			func(i int) int { return o.Threads[i] },
			func(i int) workload.Generator { return o.tpcc(wh, 20) }))
	}
	return plan{points: pts}
}

// Fig14Contention regenerates Figure 14 (upper) / Figure 21 (upper).
func Fig14Contention(o Options) []Row { return o.execute(fig14tPlan(o)) }

// fig14dPlan declares Figure 14 (lower) / Figure 21 (lower).
func fig14dPlan(o Options) plan {
	var pts []Point
	workers := o.Threads[len(o.Threads)-1]
	for _, wh := range []int{o.Nodes, o.Nodes * 2, o.Nodes * 4} {
		wh := wh
		xs := make([]string, len(o.DistPcts))
		for i, d := range o.DistPcts {
			xs[i] = fmt.Sprintf("%d%% dist", d)
		}
		pts = appendPoints(pts, o.sweepSystems("Figure 14 (distributed)",
			fmt.Sprintf("TPCC %dWH", wh),
			[]string{"p4db"}, xs,
			func(i int) int { return workers },
			func(i int) workload.Generator { return o.tpcc(wh, o.DistPcts[i]) }))
	}
	return plan{points: pts}
}

// Fig14Distributed regenerates Figure 14 (lower) / Figure 21 (lower).
func Fig14Distributed(o Options) []Row { return o.execute(fig14dPlan(o)) }

// fig15abPlan declares the hot/cold-ratio microbenchmark (Figure 15a/b):
// YCSB-A with 20% distributed transactions while the fraction of hot
// transactions grows from 0 to 100%.
func fig15abPlan(o Options) plan {
	var pts []Point
	workers := o.Threads[len(o.Threads)-1]
	for _, hotPct := range []int{0, 25, 50, 75, 100} {
		hotPct := hotPct
		for _, pol := range bothPolicies {
			x := fmt.Sprintf("%d%% hot", hotPct)
			baseIdx := len(pts)
			pts = append(pts, point(fmt.Sprintf("fig15ab hot=%d %v", hotPct, pol),
				o.config("noswitch", pol, workers),
				func() workload.Generator { return o.ycsb(50, 20, hotPct) },
				Row{
					Figure: "Figure 15a/b", Workload: "YCSB-A",
					Series: seriesName("noswitch", pol), X: x, Speedup: 1,
				}))
			p := point(fmt.Sprintf("fig15ab hot=%d %v p4db", hotPct, pol),
				o.config("p4db", pol, workers),
				func() workload.Generator { return o.ycsb(50, 20, hotPct) },
				Row{
					Figure: "Figure 15a/b", Workload: "YCSB-A",
					Series: seriesName("p4db", pol), X: x,
				})
			p.Base = baseIdx
			pts = append(pts, p)
		}
	}
	return plan{points: pts}
}

// Fig15ab regenerates Figure 15a/b.
func Fig15ab(o Options) []Row { return o.execute(fig15abPlan(o)) }

// fig15cPlan declares the switch-optimization ablation (Figure 15c) on the
// hot transactions of YCSB-A: starting from a random layout with all
// multi-pass optimizations off, fast recirculation, fine-grained locking
// and finally the declustered layout are enabled cumulatively.
func fig15cPlan(o Options) plan {
	steps := []struct {
		name       string
		random     bool
		fastRecirc bool
		fineLocks  bool
	}{
		{"Unoptimized", true, false, false},
		{"+Fast-Recirculate", true, true, false},
		{"+Fine-Locking", true, true, true},
		{"+Declustered", false, true, true},
	}
	var pts []Point
	workers := o.Threads[len(o.Threads)-1]
	for _, s := range steps {
		cfg := o.config("p4db", lock.NoWait, workers)
		cfg.RandomLayout = s.random
		cfg.Switch.FastRecirc = s.fastRecirc
		cfg.Switch.FineLocks = s.fineLocks
		pts = append(pts, point(fmt.Sprintf("fig15c %s", s.name), cfg,
			func() workload.Generator { return o.ycsb(50, 20, 100) },
			Row{Figure: "Figure 15c", Workload: "YCSB-A hot", Series: s.name, X: "ablation"}))
	}
	return plan{points: pts, post: chainSpeedup}
}

// Fig15c regenerates Figure 15c.
func Fig15c(o Options) []Row { return o.execute(fig15cPlan(o)) }

// fig16Plan declares the layout-impact experiment (Figure 16): optimal vs
// random (worst-case) data layout for all three workloads, reporting
// throughput and mean transaction latency while scaling threads.
func fig16Plan(o Options) plan {
	type wl struct {
		name string
		gen  func() workload.Generator
	}
	workloads := []wl{
		{"YCSB-A", func() workload.Generator { return o.ycsb(50, 20, 75) }},
		{"SB 8x5", func() workload.Generator { return o.smallbank(5, 20) }},
		{"TPCC 8WH", func() workload.Generator { return o.tpcc(o.Nodes, 20) }},
	}
	var pts []Point
	for _, w := range workloads {
		for _, random := range []bool{false, true} {
			series := "Optimal Layout"
			if random {
				series = "Worst Layout"
			}
			for _, thr := range o.Threads {
				cfg := o.config("p4db", lock.NoWait, thr)
				cfg.RandomLayout = random
				pts = append(pts, point(fmt.Sprintf("fig16 %s %s %d thr", w.name, series, thr),
					cfg, w.gen,
					Row{
						Figure: "Figure 16", Workload: w.name, Series: series,
						X: fmt.Sprintf("%d thr", thr),
					}))
			}
		}
	}
	return plan{points: pts}
}

// Fig16 regenerates Figure 16.
func Fig16(o Options) []Row { return o.execute(fig16Plan(o)) }

// fig17Plan declares the capacity-overflow experiment (Figure 17): YCSB-A
// hot-sets growing past several switch capacities. Hot tuples beyond
// capacity stay on the nodes, so throughput must degrade gracefully toward
// the No-Switch baseline.
func fig17Plan(o Options) plan {
	capacities := []int{1000, 10000, 65000}
	hotPerNodeSizes := []int{50, 126, 1250, 8250, 32750}
	var pts []Point
	workers := o.Threads[len(o.Threads)-1]
	for _, hpn := range hotPerNodeSizes {
		hpn := hpn
		total := hpn * o.Nodes
		x := fmt.Sprintf("%d hot", total)
		gen := func() workload.Generator {
			cfg := workload.YCSBWorkloadA(o.Nodes)
			cfg.DistPct = 20
			cfg.HotPerNode = hpn
			return workload.NewYCSB(cfg)
		}
		baseIdx := len(pts)
		pts = append(pts, point(fmt.Sprintf("fig17 base hot=%d", total),
			o.config("noswitch", lock.NoWait, workers), gen,
			Row{
				Figure: "Figure 17", Workload: "YCSB-A",
				Series: "No-Switch", X: x, Speedup: 1,
			}))
		for _, capRows := range capacities {
			cfg := o.config("p4db", lock.NoWait, workers)
			cfg.Switch = pisa.DefaultConfig()
			cfg.Switch.SlotsPerArray = capRows / (cfg.Switch.Stages * cfg.Switch.ArraysPerStage)
			cfg.ExplicitHot = gen().(*workload.YCSB).HotCandidates()
			p := point(fmt.Sprintf("fig17 cap=%d hot=%d", capRows, total), cfg, gen,
				Row{
					Figure: "Figure 17", Workload: "YCSB-A",
					Series: fmt.Sprintf("Capacity %d rows", cfg.Switch.Capacity()), X: x,
				})
			p.Base = baseIdx
			pts = append(pts, p)
		}
	}
	return plan{points: pts}
}

// Fig17 regenerates Figure 17.
func Fig17(o Options) []Row { return o.execute(fig17Plan(o)) }

// fig18aPlan declares the TPC-C latency breakdown (Figure 18a): average
// per-transaction time in each engine component for No-Switch vs P4DB at
// the highest contention (8 warehouses, 20 threads). Value is µs/txn.
func fig18aPlan(o Options) plan {
	var pts []Point
	workers := o.Threads[len(o.Threads)-1]
	for _, sys := range []string{"noswitch", "p4db"} {
		sys := sys
		p := point(fmt.Sprintf("fig18a %v", sys),
			o.config(sys, lock.NoWait, workers),
			func() workload.Generator { return o.tpcc(o.Nodes, 20) }, Row{})
		p.Expand = func(res *core.Result) []Row {
			var rows []Row
			for _, comp := range metrics.Components() {
				rows = append(rows, Row{
					Figure: "Figure 18a", Workload: "TPCC 8WH",
					Series: label(sys), Scheme: res.Scheme, X: comp.String(),
					Value:     latPerTxnUs(&res.Breakdown, comp),
					MeanLatUs: float64(res.Latency.Mean()) / float64(sim.Microsecond),
				})
			}
			return rows
		}
		pts = append(pts, p)
	}
	return plan{points: pts}
}

// Fig18a regenerates Figure 18a.
func Fig18a(o Options) []Row { return o.execute(fig18aPlan(o)) }

// fig18bPlan declares the existing-optimizations comparison (Figure 18b):
// plain 2PL/2PC with poor locality, optimal partitioning, a Chiller-style
// contention-centric scheme, and P4DB, all on TPC-C with 8 warehouses.
func fig18bPlan(o Options) plan {
	steps := []struct {
		name string
		sys  string
		dist int
	}{
		{"Plain 2PL", "noswitch", 80},
		{"+Opt. Part.", "noswitch", 20},
		{"+Chiller", "chiller", 20},
		{"+P4DB", "p4db", 20},
	}
	var pts []Point
	workers := o.Threads[len(o.Threads)-1]
	for _, s := range steps {
		s := s
		pts = append(pts, point(fmt.Sprintf("fig18b %s", s.name),
			o.config(s.sys, lock.NoWait, workers),
			func() workload.Generator { return o.tpcc(o.Nodes, s.dist) },
			Row{Figure: "Figure 18b", Workload: "TPCC 8WH", Series: s.name, X: "existing opts"}))
	}
	return plan{points: pts, post: chainSpeedup}
}

// Fig18b regenerates Figure 18b.
func Fig18b(o Options) []Row { return o.execute(fig18bPlan(o)) }

// figCalvinPlan declares the deterministic-execution comparison (beyond
// the paper's figure set): for YCSB-A, SmallBank and TPC-C, the No-Switch
// 2PL/2PC baseline, Calvin at three sequencer batch sizes, and P4DB for
// context — all at full load with 20% distributed transactions. It is the
// ablation for the sequencer's batch-size knob (core.Config.BatchSize)
// and the head-to-head the scenario matrix summarizes in one cell: Calvin
// trades sequencing latency for zero conflict aborts and a vote-free
// single-round commit, so it gains on the baseline exactly where the
// baseline's abort rate explodes.
func figCalvinPlan(o Options) plan {
	type wl struct {
		name string
		gen  func() workload.Generator
	}
	workloads := []wl{
		{"YCSB-A", func() workload.Generator { return o.ycsb(50, 20, 75) }},
		{"SmallBank", func() workload.Generator { return o.smallbank(5, 20) }},
		{"TPC-C", func() workload.Generator { return o.tpcc(o.Nodes, 20) }},
	}
	var pts []Point
	workers := o.Threads[len(o.Threads)-1]
	for _, w := range workloads {
		baseIdx := len(pts)
		pts = append(pts, point(fmt.Sprintf("figcalvin %s noswitch", w.name),
			o.config("noswitch", lock.NoWait, workers), w.gen,
			Row{
				Figure: "Calvin", Workload: w.name, Series: label("noswitch"),
				X: "20% dist", Speedup: 1,
			}))
		for _, batch := range []int{4, 16, 64} {
			cfg := o.config("calvin", lock.NoWait, workers)
			cfg.BatchSize = batch
			p := point(fmt.Sprintf("figcalvin %s calvin batch=%d", w.name, batch),
				cfg, w.gen,
				Row{
					Figure: "Calvin", Workload: w.name, Series: label("calvin"),
					X: fmt.Sprintf("batch %d", batch),
				})
			p.Base = baseIdx
			pts = append(pts, p)
		}
		p := point(fmt.Sprintf("figcalvin %s p4db", w.name),
			o.config("p4db", lock.NoWait, workers), w.gen,
			Row{Figure: "Calvin", Workload: w.name, Series: label("p4db"), X: "20% dist"})
		p.Base = baseIdx
		pts = append(pts, p)
	}
	return plan{points: pts}
}

// FigCalvin regenerates the deterministic-execution comparison.
func FigCalvin(o Options) []Row { return o.execute(figCalvinPlan(o)) }

// allPlans lists every figure's plan in display order.
func allPlans(o Options) []plan {
	return []plan{
		fig01Plan(o),
		fig11tPlan(o),
		fig11dPlan(o),
		fig12Plan(o),
		fig13tPlan(o),
		fig13dPlan(o),
		fig14tPlan(o),
		fig14dPlan(o),
		fig15abPlan(o),
		fig15cPlan(o),
		fig16Plan(o),
		fig17Plan(o),
		fig18aPlan(o),
		fig18bPlan(o),
		figCalvinPlan(o),
	}
}

// All runs every figure through one shared worker pool and returns the
// concatenated rows in figure order.
func All(o Options) []Row { return o.executeAll(allPlans(o)) }

// figurePlans maps figure ids to their plan declarations. The Figures
// runner map is derived from it, and the SystemsAware consistency test
// builds every plan from here to check which ones really consult
// Options.Systems.
var figurePlans = map[string]func(Options) plan{
	"1":       fig01Plan,
	"11t":     fig11tPlan,
	"11d":     fig11dPlan,
	"12":      fig12Plan,
	"13t":     fig13tPlan,
	"13d":     fig13dPlan,
	"14t":     fig14tPlan,
	"14d":     fig14dPlan,
	"15ab":    fig15abPlan,
	"15c":     fig15cPlan,
	"16":      fig16Plan,
	"17":      fig17Plan,
	"18a":     fig18aPlan,
	"18b":     fig18bPlan,
	"calvin":  figCalvinPlan,
	"scale":   figScalePlan,
	"drift":   figDriftPlan,
	"recover": figRecoverPlan,
}

// Figures maps figure ids (as used by cmd/p4db-bench -fig) to runners.
var Figures = func() map[string]func(Options) []Row {
	out := make(map[string]func(Options) []Row, len(figurePlans))
	for id, planFn := range figurePlans {
		planFn := planFn
		out[id] = func(o Options) []Row { return o.execute(planFn(o)) }
	}
	return out
}()

// SystemsAware lists the figure ids whose plans consult Options.Systems
// (the -system override). The remaining figures compare a fixed engine
// set — the paper defines them that way — so cmd/p4db-bench hard-errors
// when -system is combined with one of them instead of silently ignoring
// the override. TestSystemsAwareMatchesPlans pins this set against the
// plan declarations, so it cannot drift silently.
var SystemsAware = map[string]bool{
	"11t": true, "11d": true,
	"13t": true, "13d": true,
	"14t": true, "14d": true,
}
