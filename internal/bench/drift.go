package bench

import (
	"fmt"

	"repro/internal/lock"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The drifting-workload figure is the payoff of the online adaptive
// layout: workloads whose hot set moves mid-run (a diurnal rotation and a
// flash crowd, both at Zipf θ=0.9) under three placements — the static
// offline layout (tuned to the pre-shift distribution, decaying toward
// no-switch once the hot set moves), the online adaptive layout
// (re-detecting and migrating live), and the per-phase oracle (the
// offline pipeline re-run against the post-shift distribution: the
// layout an adaptive run can at best converge to). Every per-cell knob
// except the seed is pinned here so the figure's digest stays stable no
// matter how the CLI sizes the paper figures.
const (
	// driftWorkers is higher than the scale figure's: contention at the
	// shifted hot set is the figure's subject, and the sliding window
	// needs enough traffic per interval for re-detection to see.
	driftWorkers = 20
	// driftSamples bounds the offline detection replay; run at virtual
	// time zero it always samples the pre-shift (phase 0) distribution —
	// except for the oracle series, whose generator is pinned to phase 1.
	driftSamples = 4000
	// driftPhase is the generators' phase length: the single hot-set
	// shift (MaxPhase 1) lands this far into the warmup.
	driftPhase = 200 * sim.Microsecond
	// driftWarmup covers the shift plus an adaptation runway of several
	// re-detection intervals, so the measured window compares converged
	// placements, not the migration transient.
	driftWarmup  = 900 * sim.Microsecond
	driftMeasure = 500 * sim.Microsecond
	// driftInterval is the adaptive series' re-detection period.
	driftInterval = 100 * sim.Microsecond
	// driftTheta is the skew of both drifting workloads.
	driftTheta = 0.9
	// driftSlots shrinks the register arrays the same way the core tests
	// do: plenty of capacity for every hot set the figure detects, a
	// fraction of the memory footprint across the figure's cells.
	driftSlots = 256
)

// driftModes enumerates the figure's workload axis.
var driftModes = []struct {
	mode workload.DriftMode
	name string
}{
	{workload.DriftRotate, "rotate"},
	{workload.DriftFlash, "flash"},
}

// driftGen builds one drifting generator; oracle > 0 pins it to that
// phase (the per-phase oracle's generator, which offline detection then
// samples post-shift).
func driftGen(nodes int, mode workload.DriftMode, oracle int) func() workload.Generator {
	return func() workload.Generator {
		cfg := workload.DefaultDrift(nodes, mode, driftPhase)
		cfg.Zipfian = true
		cfg.Theta = driftTheta
		cfg.OraclePhase = oracle
		return workload.NewDrift(cfg)
	}
}

// driftPlan declares the drifting-workload points over the given node
// counts: for each (N, drift mode) cell the static P4DB layout as the
// baseline, then the adaptive and oracle placements with speedups
// against it.
func driftPlan(o Options, nodes []int) plan {
	var pts []Point
	for _, n := range nodes {
		n := n
		for _, m := range driftModes {
			m := m
			wl := fmt.Sprintf("YCSB %s θ=%.1f", m.name, driftTheta)
			x := fmt.Sprintf("N=%d", n)
			baseIdx := len(pts)
			for _, series := range []string{"static", "adaptive", "oracle"} {
				cfg := o.config("p4db", lock.NoWait, driftWorkers)
				cfg.Nodes = n
				cfg.SampleTxns = driftSamples
				cfg.Switch.SlotsPerArray = driftSlots
				// Adaptivity is this figure's series axis: pin it per
				// series, overriding any Options-level -adaptive.
				cfg.Adaptive = false
				cfg.AdaptInterval = 0
				oracle := 0
				switch series {
				case "adaptive":
					cfg.Adaptive = true
					cfg.AdaptInterval = driftInterval
				case "oracle":
					oracle = 1
				}
				p := point(fmt.Sprintf("drift %s N=%d %s", m.name, n, series),
					cfg, driftGen(n, m.mode, oracle),
					Row{Figure: "Drift", Workload: wl, Series: series, X: x})
				p.Warmup, p.Measure = driftWarmup, driftMeasure
				if series == "static" {
					p.Row.Speedup = 1
				} else {
					p.Base = baseIdx
				}
				pts = append(pts, p)
			}
		}
	}
	return plan{points: pts}
}

// figDriftPlan declares the full figure. Like the scale figure it is
// registered in figurePlans (`-fig drift`) but deliberately not in
// allPlans: `-fig all` keeps reproducing the paper's figure set — and
// its golden digest — unchanged.
func figDriftPlan(o Options) plan { return driftPlan(o, []int{8}) }

// FigDrift regenerates the drifting-workload figure.
func FigDrift(o Options) []Row { return o.execute(figDriftPlan(o)) }
