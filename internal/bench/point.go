package bench

import (
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The figures of the paper's evaluation are grids of independent seeded
// simulations: no sweep point reads another point's state, only (for the
// speedup columns) another point's finished result. The harness therefore
// splits point *enumeration* from point *execution*: each figure declares
// an ordered slice of self-contained Point specs, and runPoints executes
// them across a bounded worker pool while row assembly — fill, baseline
// speedups, figure post-passes — happens afterwards, serially, in
// declared order. Rows are thus bit-identical at any Options.Parallel:
// the only nondeterministic field a run produces (wall-clock events/sec)
// is excluded from Digest.

// Point is one self-contained sweep point: everything needed to run one
// simulation and label its result, with no reference to any other point's
// execution.
type Point struct {
	// Label is the progress line for the point (without trailing newline).
	Label string
	// Cfg is the fully-assembled cluster configuration.
	Cfg core.Config
	// Gen builds the point's workload generator. A factory rather than an
	// instance so every run owns a fresh generator regardless of how many
	// points share the parameters.
	Gen func() workload.Generator
	// Row is the labeled row template the result is filled into.
	Row Row
	// Base is the index (within the same point slice) of the point whose
	// throughput this row's Speedup is measured against, or -1 for none.
	// Baseline points preset Row.Speedup themselves (1 where the figure
	// prints it, 0 where it prints "-").
	Base int
	// Expand, when set, replaces the default one-row fill: it maps the
	// result to any number of rows (the Figure 18a breakdown emits one row
	// per component).
	Expand func(res *core.Result) []Row
	// Warmup/Measure, when non-zero, override the Options-level simulation
	// windows for this point. The scale figure pins small windows so its
	// N=256 cells stay tractable — and its digest stable — regardless of
	// how the CLI sizes the other figures.
	Warmup  sim.Time
	Measure sim.Time
}

// plan is one figure's declared work: its points plus an optional
// serial post-pass over the assembled rows (chain-style speedups).
type plan struct {
	points []Point
	post   func(rows []Row)
}

// point is the common constructor: a labeled single-row spec with no
// baseline.
func point(label string, cfg core.Config, gen func() workload.Generator, row Row) Point {
	return Point{Label: label, Cfg: cfg, Gen: gen, Row: row, Base: -1}
}

// appendPoints concatenates src onto dst, re-anchoring src's intra-slice
// Base indices.
func appendPoints(dst, src []Point) []Point {
	off := len(dst)
	for _, p := range src {
		if p.Base >= 0 {
			p.Base += off
		}
		dst = append(dst, p)
	}
	return dst
}

// parallelism resolves Options.Parallel: 0 means GOMAXPROCS, 1 is the
// serial path, anything else bounds the worker pool.
func (o Options) parallelism() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// runPoints executes every point and returns the results in declared
// order. With parallelism 1 (or a single point) it runs inline, emitting
// each progress line before its run exactly as the pre-parallel harness
// did. Otherwise a bounded worker pool claims points in declared order;
// progress lines are then emitted on completion, buffered so they still
// appear in declared order — `-v` output is deterministic at any
// parallelism, only line timing differs.
func (o Options) runPoints(points []Point) []*core.Result {
	results := make([]*core.Result, len(points))
	workers := o.parallelism()
	if workers > len(points) {
		workers = len(points)
	}
	if workers <= 1 {
		for i, pt := range points {
			o.progressf("%s\n", pt.Label)
			results[i] = o.runPoint(pt)
			o.progressMigrations(results[i])
		}
		return results
	}

	var (
		mu   sync.Mutex
		next int // next point to claim (dispatch order = declared order)
		emit int // next progress line to emit
		done = make([]bool, len(points))
		wg   sync.WaitGroup
	)
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= len(points) {
			return -1
		}
		i := next
		next++
		return i
	}
	finish := func(i int) {
		mu.Lock()
		defer mu.Unlock()
		done[i] = true
		for emit < len(points) && done[emit] {
			o.progressf("%s\n", points[emit].Label)
			o.progressMigrations(results[emit])
			emit++
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := claim()
				if i < 0 {
					return
				}
				results[i] = o.runPoint(points[i])
				finish(i)
			}
		}()
	}
	wg.Wait()
	return results
}

// progressMigrations emits one indented follow-up progress line with the
// adaptive layout's migration counters after a point that actually
// migrated. Serial runs emit it right after the run, the parallel pool in
// the same declared-order drain as the label — the `-v` stream stays
// byte-identical at any parallelism.
func (o Options) progressMigrations(res *core.Result) {
	if res == nil || res.Migrations == 0 {
		return
	}
	o.progressf("  migrations=%d promoted=%d demoted=%d fence_waits=%d\n",
		res.Migrations, res.Promoted, res.Demoted, res.FenceWaits)
}

// runPoint runs one point under its effective simulation windows.
func (o Options) runPoint(pt Point) *core.Result {
	w, m := o.Warmup, o.Measure
	if pt.Warmup > 0 {
		w = pt.Warmup
	}
	if pt.Measure > 0 {
		m = pt.Measure
	}
	c := core.NewCluster(pt.Cfg, pt.Gen())
	return c.Run(w, m)
}

// assemble turns a plan's results into its rows, in declared order:
// default fill (or Expand), baseline speedups, then the post-pass.
func assemble(pl plan, results []*core.Result) []Row {
	rows := make([]Row, 0, len(pl.points))
	rowOf := make([]int, len(pl.points)) // first row index of each point
	for i, pt := range pl.points {
		rowOf[i] = len(rows)
		if pt.Expand != nil {
			rows = append(rows, pt.Expand(results[i])...)
			continue
		}
		r := fill(pt.Row, results[i])
		if pt.Base >= 0 {
			if pt.Base >= i {
				panic("bench: point Base must reference an earlier point in the plan")
			}
			if base := rows[rowOf[pt.Base]].Throughput; base > 0 {
				r.Speedup = r.Throughput / base
			}
		}
		rows = append(rows, r)
	}
	if pl.post != nil {
		pl.post(rows)
	}
	return rows
}

// execute runs one figure's plan end to end.
func (o Options) execute(pl plan) []Row {
	return assemble(pl, o.runPoints(pl.points))
}

// executeAll runs several plans through one shared worker pool — long
// points of one figure overlap with another figure's points instead of
// serializing at figure boundaries — and returns each plan's rows,
// concatenated in plan order.
func (o Options) executeAll(plans []plan) []Row {
	var pts []Point
	for _, pl := range plans {
		pts = append(pts, pl.points...)
	}
	results := o.runPoints(pts)
	var rows []Row
	off := 0
	for _, pl := range plans {
		rows = append(rows, assemble(pl, results[off:off+len(pl.points)])...)
		off += len(pl.points)
	}
	return rows
}

// chainSpeedup is the post-pass of the cumulative-ablation figures (15c,
// 18b): the first row (with nonzero throughput) is the 1x base, every
// later row is measured against it.
func chainSpeedup(rows []Row) {
	var base float64
	for i := range rows {
		if base == 0 {
			base = rows[i].Throughput
			rows[i].Speedup = 1
		} else {
			rows[i].Speedup = rows[i].Throughput / base
		}
	}
}
