// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (Section 7). Each FigXX function
// runs the corresponding parameter sweep on the simulated cluster and
// returns one Row per plotted point; cmd/p4db-bench prints them as tables
// and bench_test.go wires them into `go test -bench`.
//
// Throughput numbers are simulated transactions per simulated second: the
// substrate is a discrete-event model rather than the authors' testbed, so
// absolute values differ from the paper while the comparisons (who wins,
// by what factor, where crossovers fall) are the reproduction target —
// EXPERIMENTS.md records both sides.
package bench

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Options sizes the sweeps and the simulation windows.
type Options struct {
	Nodes    int
	Warmup   sim.Time
	Measure  sim.Time
	Samples  int   // offline detection sample size
	Threads  []int // worker-per-node sweep (paper: 8..20)
	DistPcts []int // distributed-transaction sweep (paper: 25/50/75)
	// Systems overrides the engines the sweep figures compare against the
	// No-Switch baseline (engine registry names); nil keeps each figure's
	// paper defaults.
	Systems []string
	// Scheme selects the host CC scheme every run executes under (scheme
	// registry name); empty keeps the paper's 2PL. Engines that hardwire
	// their scheme (lmswitch, chiller, occ, calvin) are unaffected — the per-row
	// scheme column reports what actually ran.
	Scheme string
	// Theta, when non-zero, switches every YCSB generator the figures
	// build to Zipfian key selection at that exponent (-theta). The
	// scale figure ignores it — its plan sweeps its own θ axis.
	Theta float64
	// Adaptive turns on the online adaptive layout (core.Config.Adaptive)
	// in every cluster the sweep builds; AdaptInterval overrides the
	// re-detection period (0 keeps core.DefaultAdaptInterval). The drift
	// figure ignores both — its plan pins adaptivity per series.
	Adaptive      bool
	AdaptInterval sim.Time
	Seed          uint64
	// Parallel bounds the worker pool the point runner executes sweep
	// points on: 0 means GOMAXPROCS, 1 is the serial path. Rows (and the
	// digest) are bit-identical at any setting — every point is an
	// independent seeded simulation and assembly happens in declared
	// order; only wall-clock changes.
	Parallel int
	// Unbatched disables per-destination delivery coalescing in every
	// cluster the sweep builds (core.Config.NoDeliveryBatching). The
	// batching determinism test runs the golden sweep both ways and
	// asserts the digest does not move.
	Unbatched bool
	// Durable turns on WAL retention (core.Config.Durable) in every
	// cluster the sweep builds. Durability gates record retention only —
	// every commit path pays its log-append delay unconditionally — so
	// rows and digests are bit-identical either way;
	// core.TestDurableDigestInvariance pins that, and the fault cells
	// force it on regardless.
	Durable bool
	// Faults appends the crash-recovery dimension to the scenario matrix
	// (see FaultMatrix): golden + fault-injected cells per workload and
	// recovery story, with recovered-state-equals-golden digest
	// assertions. Ignored by the figure sweeps.
	Faults   bool
	Progress io.Writer // per-run progress lines; nil for silent
}

// Default returns the paper-scale options: 8 nodes, 8-20 worker threads.
func Default() Options {
	return Options{
		Nodes:    8,
		Warmup:   1 * sim.Millisecond,
		Measure:  5 * sim.Millisecond,
		Samples:  60000,
		Threads:  []int{8, 12, 16, 20},
		DistPcts: []int{25, 50, 75},
		Seed:     42,
	}
}

// Quick returns a reduced configuration for smoke tests and testing.B.
func Quick() Options {
	return Options{
		Nodes:    4,
		Warmup:   500 * sim.Microsecond,
		Measure:  1500 * sim.Microsecond,
		Samples:  12000,
		Threads:  []int{8, 20},
		DistPcts: []int{25, 75},
		Seed:     42,
	}
}

// progressf writes a progress line if a Progress writer is set.
func (o Options) progressf(format string, args ...interface{}) {
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, format, args...)
	}
}

// config assembles a core.Config for one run; sys is an engine registry
// name ("p4db", "noswitch", "lmswitch", "chiller", "occ", ...).
func (o Options) config(sys string, pol lock.Policy, workers int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Engine = sys
	if o.Scheme != "" {
		cfg.Scheme = o.Scheme
	}
	cfg.Policy = pol
	cfg.Nodes = o.Nodes
	cfg.WorkersPerNode = workers
	cfg.SampleTxns = o.Samples
	cfg.Seed = o.Seed
	cfg.NoDeliveryBatching = o.Unbatched
	cfg.Adaptive = o.Adaptive
	cfg.AdaptInterval = o.AdaptInterval
	cfg.Durable = o.Durable
	return cfg
}

// run builds a cluster and measures one point.
func (o Options) run(cfg core.Config, gen workload.Generator) *core.Result {
	c := core.NewCluster(cfg, gen)
	return c.Run(o.Warmup, o.Measure)
}

// Workload generator shorthands at the paper's parameters.

func (o Options) ycsb(writePct, distPct, hotTxnPct int) *workload.YCSB {
	cfg := workload.YCSBWorkloadA(o.Nodes)
	cfg.WritePct = writePct
	cfg.DistPct = distPct
	cfg.HotTxnPct = hotTxnPct
	if o.Theta > 0 {
		cfg.Zipfian = true
		cfg.Theta = o.Theta
	}
	return workload.NewYCSB(cfg)
}

func (o Options) smallbank(hotPerNode, distPct int) *workload.SmallBank {
	cfg := workload.DefaultSmallBank(o.Nodes, hotPerNode)
	cfg.DistPct = distPct
	return workload.NewSmallBank(cfg)
}

func (o Options) tpcc(warehouses, distPct int) *workload.TPCC {
	cfg := workload.DefaultTPCC(o.Nodes, warehouses)
	cfg.DistPct = distPct
	return workload.NewTPCC(cfg)
}

// Row is one plotted point of a figure.
type Row struct {
	Figure     string
	Workload   string
	Series     string // e.g. "P4DB (NO_WAIT)"
	Scheme     string // resolved CC scheme the run executed, e.g. "mvcc"
	X          string // sweep coordinate, e.g. "16 thr" or "50% dist"
	Throughput float64
	Speedup    float64 // vs the figure's baseline (0 when not applicable)
	AbortRate  float64
	HotFrac    float64 // committed hot transactions / committed
	MeanLatUs  float64
	Value      float64 // figure-specific metric (e.g. breakdown µs/txn)

	// P50LatUs/P99LatUs are bucketed latency percentiles from the
	// fixed-bucket histogram (upper bucket edges, ~3% resolution). Like
	// EventsPerSec they are excluded from Digest: the golden trace pins
	// exact values only, and percentile bucket edges are a display
	// resolution choice, not a simulated result.
	P50LatUs float64
	P99LatUs float64

	// EventsPerSec is the harness's wall-clock event throughput for the
	// run behind this point. Unlike every other field it is not
	// deterministic (it measures the host, not the simulation), so Digest
	// excludes it.
	EventsPerSec float64
}

// fill derives the common metrics from a result.
func fill(r Row, res *core.Result) Row {
	r.Scheme = res.Scheme
	r.Throughput = res.Throughput()
	r.AbortRate = res.Counters.AbortRate()
	if c := res.Counters.Committed(); c > 0 {
		r.HotFrac = float64(res.Counters.CommittedHot) / float64(c)
	}
	r.MeanLatUs = float64(res.Latency.Mean()) / float64(sim.Microsecond)
	r.P50LatUs = float64(res.Latency.Percentile(50)) / float64(sim.Microsecond)
	r.P99LatUs = float64(res.Latency.Percentile(99)) / float64(sim.Microsecond)
	r.EventsPerSec = res.EventsPerSec()
	return r
}

// Digest hashes the deterministic fields of a row set. Two sweeps with the
// same seed must produce the same digest — it is the golden-trace check for
// scheduler refactors. Wall-clock fields (events/sec) are deliberately
// excluded: they vary run to run without affecting simulated results.
func Digest(rows []Row) string {
	h := sha256.New()
	for _, r := range rows {
		fmt.Fprintf(h, "%s|%s|%s|%s|%s|%x|%x|%x|%x|%x|%x\n",
			r.Figure, r.Workload, r.Series, r.Scheme, r.X,
			math.Float64bits(r.Throughput), math.Float64bits(r.Speedup),
			math.Float64bits(r.AbortRate), math.Float64bits(r.HotFrac),
			math.Float64bits(r.MeanLatUs), math.Float64bits(r.Value))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Print renders rows as an aligned table.
func Print(w io.Writer, rows []Row) {
	if len(rows) == 0 {
		return
	}
	fig := ""
	for _, r := range rows {
		if r.Figure != fig {
			fig = r.Figure
			fmt.Fprintf(w, "\n== %s ==\n", fig)
			fmt.Fprintf(w, "%-10s %-28s %-6s %-14s %12s %9s %8s %8s %9s %9s %9s %8s\n",
				"workload", "series", "cc", "x", "txn/s", "speedup", "abort%", "hot%", "lat(µs)", "p50(µs)", "p99(µs)", "Mev/s")
		}
		speed := "-"
		if r.Speedup > 0 {
			speed = fmt.Sprintf("%.2fx", r.Speedup)
		}
		evps := "-"
		if r.EventsPerSec > 0 {
			evps = fmt.Sprintf("%.2f", r.EventsPerSec/1e6)
		}
		scheme := r.Scheme
		if scheme == "" {
			scheme = "-"
		}
		fmt.Fprintf(w, "%-10s %-28s %-6s %-14s %12.0f %9s %7.1f%% %7.1f%% %9.1f %9.1f %9.1f %8s\n",
			r.Workload, r.Series, scheme, r.X, r.Throughput, speed,
			100*r.AbortRate, 100*r.HotFrac, r.MeanLatUs, r.P50LatUs, r.P99LatUs, evps)
	}
}

// systemsOr returns the configured engine override for the sweep figures,
// or the figure's own defaults.
func (o Options) systemsOr(defaults []string) []string {
	if len(o.Systems) > 0 {
		return o.Systems
	}
	return defaults
}

// label resolves an engine name to its paper display name.
func label(sys string) string {
	e, err := engine.Lookup(sys)
	if err != nil {
		return sys
	}
	return e.Label()
}

// seriesName labels a system+policy combination like the paper's legends.
func seriesName(sys string, pol lock.Policy) string {
	return fmt.Sprintf("%s (%s)", label(sys), pol)
}

// latPerTxnUs converts a breakdown component to µs per transaction.
func latPerTxnUs(b *metrics.Breakdown, comp metrics.Component) float64 {
	return float64(b.PerTxn(comp)) / float64(sim.Microsecond)
}
