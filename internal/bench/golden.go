package bench

import (
	_ "embed"
	"strings"

	"repro/internal/lock"
	"repro/internal/sim"
	"repro/internal/workload"
)

// goldenDigestFile is the committed pin of the golden sweep's digest,
// internal/bench/testdata/golden.digest. Both TestQuickSweepDeterministic
// and the CI golden-digest gate (p4db-bench -golden) read this one file,
// so a deliberate digest move is a reviewed one-line diff instead of an
// edit buried in test source. When it moves, record why in
// BENCH_sim.json's golden_digest.history.
//
//go:embed testdata/golden.digest
var goldenDigestFile string

// GoldenDigest returns the pinned digest of the golden sweep.
func GoldenDigest() string { return strings.TrimSpace(goldenDigestFile) }

// GoldenOptions returns the reduced option set the golden sweep runs at:
// small enough to run twice in a unit test, large enough that schedule
// perturbations (lock grant order, abort patterns, 2PC interleavings,
// sequencer batching) would move the numbers.
func GoldenOptions() Options {
	o := Quick()
	o.Threads = []int{8}
	o.DistPcts = []int{50}
	o.Samples = 8000
	o.Warmup = 200 * sim.Microsecond
	o.Measure = 600 * sim.Microsecond
	return o
}

// goldenPointsPlan declares the golden sweep's direct engine/scheme
// points beyond the figure plans: OCC, MVCC and the two Calvin points —
// SmallBank through the declared-key-set path and TPC-C through the
// reconnaissance pass. Declared as a plan so they execute on the same
// worker pool as the figures and the parallel half of the gate covers
// them too.
func goldenPointsPlan(o Options) plan {
	workers := o.Threads[0]
	mvccCfg := o.config("noswitch", lock.NoWait, workers)
	mvccCfg.Scheme = "mvcc"
	return plan{points: []Point{
		point("golden occ", o.config("occ", lock.NoWait, workers),
			func() workload.Generator { return o.ycsb(50, 50, 75) },
			Row{Figure: "occ-point", Workload: "YCSB-A", Series: "OCC", X: "8 thr"}),
		point("golden mvcc", mvccCfg,
			func() workload.Generator { return o.ycsb(50, 50, 75) },
			Row{Figure: "mvcc-point", Workload: "YCSB-A", Series: "MVCC", X: "8 thr"}),
		point("golden calvin", o.config("calvin", lock.NoWait, workers),
			func() workload.Generator { return o.smallbank(5, 50) },
			Row{Figure: "calvin-point", Workload: "SmallBank", Series: "Calvin", X: "8 thr"}),
		point("golden calvin recon", o.config("calvin", lock.NoWait, workers),
			func() workload.Generator { return o.tpcc(o.Nodes, 50) },
			Row{Figure: "calvin-recon-point", Workload: "TPC-C", Series: "Calvin", X: "8 thr"}),
	}}
}

// GoldenSweep runs the golden sweep on a pool of the given size and
// returns its rows. The sweep exercises every execution engine and all
// three CC schemes: Fig01 (P4DB + No-Switch over YCSB/SmallBank/TPC-C),
// Fig11 (LM-Switch), Fig18b (Chiller), a direct OCC point, an MVCC point
// and two Calvin points — all through one shared worker pool, so any
// scheduler reordering (or cross-run state leak under the parallel pool)
// anywhere in the stack shows up in Digest(GoldenSweep(...)).
func GoldenSweep(parallel int) []Row {
	o := GoldenOptions()
	o.Parallel = parallel
	return goldenPlansRun(o)
}

// GoldenSweepUnbatched is GoldenSweep with per-destination delivery
// coalescing disabled in every cluster. Batching only merges scheduled
// events whose deliveries already share an instant — execution order is
// identical by construction — so this sweep must reproduce the same
// digest; TestBatchedDeliveryDigestInvariant pins that.
func GoldenSweepUnbatched(parallel int) []Row {
	o := GoldenOptions()
	o.Parallel = parallel
	o.Unbatched = true
	return goldenPlansRun(o)
}

// goldenPlansRun executes the golden sweep's plan set at the given options.
func goldenPlansRun(o Options) []Row {
	return o.executeAll([]plan{fig01Plan(o), fig11tPlan(o), fig18bPlan(o), goldenPointsPlan(o)})
}

// scaleDigestFile pins the scale sweep's digest the same way
// golden.digest pins the paper figures (see goldenDigestFile). The full
// `-fig scale` grid is too slow to run twice in a unit test, so the pin
// covers a corner sub-grid — smallest and largest skew at small and large
// N — which still crosses every engine, the Zipf sampler at both
// exponents, and the targeted-multicast path at N=64.
//
//go:embed testdata/scale.digest
var scaleDigestFile string

// ScaleDigest returns the pinned digest of the reduced scale sweep.
func ScaleDigest() string { return strings.TrimSpace(scaleDigestFile) }

// ScaleSweep runs the reduced scale sweep (nodes {8, 64} × θ {0.0, 1.1} ×
// three engines) on a pool of the given size and returns its rows. Every
// per-cell knob is pinned inside scalePlan; only the seed comes from the
// golden options.
func ScaleSweep(parallel int) []Row {
	o := GoldenOptions()
	o.Parallel = parallel
	return o.execute(scalePlan(o, []int{8, 64}, []float64{0.0, 1.1}))
}

// driftDigestFile pins the drift sweep's digest the same way scale.digest
// pins the scale figure (see goldenDigestFile). The full `-fig drift`
// grid runs at N=8; the pin covers the N=4 sub-grid, which still crosses
// both drifting generators and all three placements — in particular every
// line of the adaptive controller: window folding, re-detection, delta
// fences, and live promotion.
//
//go:embed testdata/drift.digest
var driftDigestFile string

// DriftDigest returns the pinned digest of the reduced drift sweep.
func DriftDigest() string { return strings.TrimSpace(driftDigestFile) }

// DriftSweep runs the reduced drift sweep (both drift modes × the
// static/adaptive/oracle placements at N=4) on a pool of the given size
// and returns its rows. Every per-cell knob is pinned inside driftPlan;
// only the seed comes from the golden options.
func DriftSweep(parallel int) []Row {
	o := GoldenOptions()
	o.Parallel = parallel
	return o.execute(driftPlan(o, []int{4}))
}

// recoverDigestFile pins the recovery sweep's digest the same way
// drift.digest pins the drift figure (see goldenDigestFile). The full
// `-fig recover` figure crashes at three depths; the pin covers the
// shallow and deep crash points, which still cross all three recovery
// stories end to end: durable WALs on every commit path, the seeded
// crash, in-sim recovery, and the recovered-state digest oracle.
//
//go:embed testdata/recover.digest
var recoverDigestFile string

// RecoverDigest returns the pinned digest of the reduced recovery sweep.
func RecoverDigest() string { return strings.TrimSpace(recoverDigestFile) }
