package bench

import (
	"bytes"
	"testing"

	"repro/internal/lock"
	"repro/internal/sim"
)

// goldenDigest is the pinned digest of the golden sweep below (also
// recorded in BENCH_sim.json). It is the repo's golden-trace contract:
// scheduler refactors, engine-layer changes and the parallel point runner
// must all reproduce it bit-for-bit. A deliberate semantic change (new
// rows, new columns) moves it — update the constant and record why in
// BENCH_sim.json's golden_digest.history.
const goldenDigest = "ed60d87dd9d844ebcb8235cd19b5864c8a71b7875adf1e305bd806a5a1b79ed3"

// determinismOpts is a reduced quick sweep: small enough to run twice in a
// unit test, large enough that schedule perturbations (lock grant order,
// abort patterns, 2PC interleavings) would move the numbers.
func determinismOpts() Options {
	o := Quick()
	o.Threads = []int{8}
	o.DistPcts = []int{50}
	o.Samples = 8000
	o.Warmup = 200 * sim.Microsecond
	o.Measure = 600 * sim.Microsecond
	return o
}

// goldenSweep exercises every execution engine and all three CC schemes:
// Fig01 (P4DB + No-Switch over YCSB/SmallBank/TPC-C), Fig11 (LM-Switch),
// Fig18b (Chiller), a direct OCC point and an MVCC point, so any scheduler
// reordering anywhere in the stack shows up in the digest.
func goldenSweep(o Options) []Row {
	rows := o.executeAll([]plan{fig01Plan(o), fig11tPlan(o), fig18bPlan(o)})
	res := o.run(o.config("occ", lock.NoWait, o.Threads[0]), o.ycsb(50, 50, 75))
	rows = append(rows, fill(Row{Figure: "occ-point", Workload: "YCSB-A", Series: "OCC", X: "8 thr"}, res))
	mo := o
	mo.Scheme = "mvcc"
	res = mo.run(mo.config("noswitch", lock.NoWait, mo.Threads[0]), mo.ycsb(50, 50, 75))
	rows = append(rows, fill(Row{Figure: "mvcc-point", Workload: "YCSB-A", Series: "MVCC", X: "8 thr"}, res))
	return rows
}

// TestQuickSweepDeterministic is the golden-trace regression guard for the
// scheduler hot path and the parallel point runner: the seeded sweep over
// every engine must produce bit-identical rows (throughput, aborts,
// latencies, figure values) on the serial path and on a parallel worker
// pool, and both must equal the pinned golden digest. Any nondeterminism
// in the event queue, the callback fast path, the network delivery paths
// or any state shared between concurrent runs fails this test.
func TestQuickSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep; skipped with -short")
	}
	serial := determinismOpts()
	serial.Parallel = 1
	parallel := determinismOpts()
	parallel.Parallel = 4

	a := Digest(goldenSweep(serial))
	b := Digest(goldenSweep(parallel))
	if a != b {
		t.Fatalf("parallel=4 produced different row digests:\n  serial:   %s\n  parallel: %s", a, b)
	}
	if a != goldenDigest {
		t.Fatalf("sweep digest moved off the golden trace:\n  got:    %s\n  golden: %s", a, goldenDigest)
	}
	t.Logf("golden digest: %s (serial == parallel)", a)
}

// TestProgressOrderingDeterministic asserts the -v satellite: the
// progress stream of a parallel sweep is byte-identical to the serial
// one's, regardless of the order points finish in — lines are buffered
// and emitted in declared order.
func TestProgressOrderingDeterministic(t *testing.T) {
	o := determinismOpts()
	o.Measure = 300 * sim.Microsecond
	o.Samples = 6000

	var serialOut, parallelOut bytes.Buffer
	serial := o
	serial.Parallel = 1
	serial.Progress = &serialOut
	Fig01(serial)

	parallel := o
	parallel.Parallel = 4
	parallel.Progress = &parallelOut
	Fig01(parallel)

	if serialOut.String() != parallelOut.String() {
		t.Fatalf("parallel progress stream diverged:\n--- serial ---\n%s--- parallel ---\n%s",
			serialOut.String(), parallelOut.String())
	}
}
