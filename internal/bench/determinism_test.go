package bench

import (
	"testing"

	"repro/internal/lock"
	"repro/internal/sim"
)

// determinismOpts is a reduced quick sweep: small enough to run twice in a
// unit test, large enough that schedule perturbations (lock grant order,
// abort patterns, 2PC interleavings) would move the numbers.
func determinismOpts() Options {
	o := Quick()
	o.Threads = []int{8}
	o.DistPcts = []int{50}
	o.Samples = 8000
	o.Warmup = 200 * sim.Microsecond
	o.Measure = 600 * sim.Microsecond
	return o
}

// goldenSweep exercises every execution engine and all three CC schemes:
// Fig01 (P4DB + No-Switch over YCSB/SmallBank/TPC-C), Fig11 (LM-Switch),
// Fig18b (Chiller), a direct OCC point and an MVCC point, so any scheduler
// reordering anywhere in the stack shows up in the digest.
func goldenSweep(o Options) []Row {
	rows := Fig01(o)
	rows = append(rows, Fig11Contention(o)...)
	rows = append(rows, Fig18b(o)...)
	res := o.run(o.config("occ", lock.NoWait, o.Threads[0]), o.ycsb(50, 50, 75))
	rows = append(rows, fill(Row{Figure: "occ-point", Workload: "YCSB-A", Series: "OCC", X: "8 thr"}, res))
	mo := o
	mo.Scheme = "mvcc"
	res = mo.run(mo.config("noswitch", lock.NoWait, mo.Threads[0]), mo.ycsb(50, 50, 75))
	rows = append(rows, fill(Row{Figure: "mvcc-point", Workload: "YCSB-A", Series: "MVCC", X: "8 thr"}, res))
	return rows
}

// TestQuickSweepDeterministic is the golden-trace regression guard for the
// scheduler hot path: one seeded sweep over every engine must produce
// bit-identical rows (throughput, aborts, latencies, figure values) when it
// is run twice. Any nondeterminism in the event queue, the callback fast
// path or the network delivery paths fails this test.
func TestQuickSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep; skipped with -short")
	}
	o := determinismOpts()
	a := Digest(goldenSweep(o))
	b := Digest(goldenSweep(o))
	if a != b {
		t.Fatalf("same seed produced different row digests:\n  first:  %s\n  second: %s", a, b)
	}
	t.Logf("golden digest: %s", a)
}
