package bench

import (
	"bytes"
	"regexp"
	"testing"

	"repro/internal/sim"
)

// TestQuickSweepDeterministic is the golden-trace regression guard for the
// scheduler hot path and the parallel point runner: the seeded sweep over
// every engine (GoldenSweep) must produce bit-identical rows (throughput,
// aborts, latencies, figure values) on the serial path and on a parallel
// worker pool, and both must equal the digest pinned in the committed
// testdata/golden.digest file — the same pin the CI golden-digest gate
// (p4db-bench -golden) enforces. Any nondeterminism in the event queue,
// the callback fast path, the network delivery paths, the calvin
// sequencer or any state shared between concurrent runs fails this test.
func TestQuickSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep; skipped with -short")
	}
	golden := GoldenDigest()
	if !regexp.MustCompile(`^[0-9a-f]{64}$`).MatchString(golden) {
		t.Fatalf("testdata/golden.digest does not hold a SHA-256 hex digest: %q", golden)
	}

	a := Digest(GoldenSweep(1))
	b := Digest(GoldenSweep(4))
	if a != b {
		t.Fatalf("parallel=4 produced different row digests:\n  serial:   %s\n  parallel: %s", a, b)
	}
	if a != golden {
		t.Fatalf("sweep digest moved off the golden trace:\n  got:    %s\n  golden: %s\n(deliberate change? update internal/bench/testdata/golden.digest and record why in BENCH_sim.json)", a, golden)
	}
	t.Logf("golden digest: %s (serial == parallel)", a)
}

// TestProgressOrderingDeterministic asserts the -v satellite: the
// progress stream of a parallel sweep is byte-identical to the serial
// one's, regardless of the order points finish in — lines are buffered
// and emitted in declared order.
func TestProgressOrderingDeterministic(t *testing.T) {
	o := GoldenOptions()
	o.Measure = 300 * sim.Microsecond
	o.Samples = 6000

	var serialOut, parallelOut bytes.Buffer
	serial := o
	serial.Parallel = 1
	serial.Progress = &serialOut
	Fig01(serial)

	parallel := o
	parallel.Parallel = 4
	parallel.Progress = &parallelOut
	Fig01(parallel)

	if serialOut.String() != parallelOut.String() {
		t.Fatalf("parallel progress stream diverged:\n--- serial ---\n%s--- parallel ---\n%s",
			serialOut.String(), parallelOut.String())
	}
}

// TestCalvinSweepDeterministic asserts the deterministic engine's own
// contract end to end: two seeded calvin sweeps — the batch-size figure,
// which covers declared key sets (YCSB/SmallBank), the TPC-C
// reconnaissance pass and three sequencer batch bounds — produce
// bit-identical digests, serially and on a parallel pool. The calvin
// sequencer, the ordered waiting grants and the ordered release path must
// not leak any run-to-run (map-order, timing) nondeterminism.
func TestCalvinSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("three sweeps; skipped with -short")
	}
	o := GoldenOptions()
	o.Measure = 300 * sim.Microsecond
	o.Samples = 6000

	serial := o
	serial.Parallel = 1
	parallel := o
	parallel.Parallel = 4

	a, b := Digest(FigCalvin(serial)), Digest(FigCalvin(serial))
	if a != b {
		t.Fatalf("two seeded calvin sweeps diverged:\n  first:  %s\n  second: %s", a, b)
	}
	c := Digest(FigCalvin(parallel))
	if a != c {
		t.Fatalf("calvin sweep digest depends on parallelism:\n  serial:   %s\n  parallel: %s", a, c)
	}
}

// TestScaleSweepDeterministic asserts the contention-scaling figure's
// contract: the reduced scale sweep — both Zipf exponents, small and large
// N, all three engines, through the targeted multicast and the pinned
// per-point windows — produces bit-identical digests serially and on a
// parallel pool, and both equal the committed testdata/scale.digest pin.
func TestScaleSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("large-N sweeps; skipped with -short")
	}
	pinned := ScaleDigest()
	if !regexp.MustCompile(`^[0-9a-f]{64}$`).MatchString(pinned) {
		t.Fatalf("testdata/scale.digest does not hold a SHA-256 hex digest: %q", pinned)
	}
	a := Digest(ScaleSweep(1))
	b := Digest(ScaleSweep(4))
	if a != b {
		t.Fatalf("scale sweep digest depends on parallelism:\n  serial:   %s\n  parallel: %s", a, b)
	}
	if a != pinned {
		t.Fatalf("scale sweep digest moved off the pin:\n  got:    %s\n  pinned: %s\n(deliberate change? update internal/bench/testdata/scale.digest and record why in BENCH_sim.json)", a, pinned)
	}
	t.Logf("scale digest: %s (serial == parallel)", a)
}

// TestDriftSweepDeterministic asserts the adaptive controller's
// determinism contract: the reduced drift sweep — both drifting
// generators under the static, adaptive and oracle placements — produces
// bit-identical digests serially and on a parallel pool, and both equal
// the committed testdata/drift.digest pin. The adaptive series runs the
// whole online machinery (sliding-window folding, re-detection ticks,
// delta fences, live promotion/demotion, the announce multicast), all of
// it scheduled on the sim clock; any wall-clock or map-order leak in the
// controller moves a row and fails this test.
func TestDriftSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("six adaptive-window runs; skipped with -short")
	}
	pinned := DriftDigest()
	if !regexp.MustCompile(`^[0-9a-f]{64}$`).MatchString(pinned) {
		t.Fatalf("testdata/drift.digest does not hold a SHA-256 hex digest: %q", pinned)
	}
	a := Digest(DriftSweep(1))
	b := Digest(DriftSweep(4))
	if a != b {
		t.Fatalf("drift sweep digest depends on parallelism:\n  serial:   %s\n  parallel: %s", a, b)
	}
	if a != pinned {
		t.Fatalf("drift sweep digest moved off the pin:\n  got:    %s\n  pinned: %s\n(deliberate change? update internal/bench/testdata/drift.digest and record why in BENCH_sim.json)", a, pinned)
	}
	t.Logf("drift digest: %s (serial == parallel)", a)
}

// TestRecoverSweepDeterministic asserts the crash-recovery sweep's
// contract: the reduced recovery sweep — switch-crash, coordinator-crash
// and sequencer-failover, each at a shallow and a deep crash point —
// produces bit-identical digests serially and on a parallel pool, and
// both equal the committed testdata/recover.digest pin. Every cell runs
// the full durability story (WAL retention on all commit paths, seeded
// mid-run crash, in-sim recovery), so any nondeterminism in log append
// order, gap-fitting replay, cold redo or the sequencer standby moves a
// row and fails this test.
func TestRecoverSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("six durable crash runs; skipped with -short")
	}
	pinned := RecoverDigest()
	if !regexp.MustCompile(`^[0-9a-f]{64}$`).MatchString(pinned) {
		t.Fatalf("testdata/recover.digest does not hold a SHA-256 hex digest: %q", pinned)
	}
	a := Digest(RecoverSweep(1))
	b := Digest(RecoverSweep(4))
	if a != b {
		t.Fatalf("recover sweep digest depends on parallelism:\n  serial:   %s\n  parallel: %s", a, b)
	}
	if a != pinned {
		t.Fatalf("recover sweep digest moved off the pin:\n  got:    %s\n  pinned: %s\n(deliberate change? update internal/bench/testdata/recover.digest and record why in BENCH_sim.json)", a, pinned)
	}
	t.Logf("recover digest: %s (serial == parallel)", a)
}

// TestBatchedDeliveryDigestInvariant proves delivery batching is a pure
// event-count optimization: the golden sweep with per-destination
// coalescing disabled (every one-way message its own scheduled event)
// reproduces the pinned golden digest bit-for-bit, serially and on a
// parallel pool. If batching ever reordered two deliveries, some lock
// grant, 2PC vote or sequencer batch boundary would shift and move a row.
func TestBatchedDeliveryDigestInvariant(t *testing.T) {
	pinned := GoldenDigest()
	if got := Digest(GoldenSweepUnbatched(1)); got != pinned {
		t.Fatalf("unbatched serial golden sweep digest %s != pinned %s", got, pinned)
	}
	if got := Digest(GoldenSweepUnbatched(4)); got != pinned {
		t.Fatalf("unbatched parallel=4 golden sweep digest %s != pinned %s", got, pinned)
	}
}
