package bench

import (
	"fmt"

	"repro/internal/lock"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The contention-scaling figure is the payoff of the large-cluster fast
// path: it sweeps cluster size far past the paper's testbed (which stopped
// at one rack of real machines) against a smooth Zipf(θ) skew axis, for
// the No-Switch 2PL/2PC baseline, P4DB, and Calvin. Every per-cell knob
// except the seed is pinned here rather than taken from Options: the
// N=256 cells must stay tractable — and the figure's digest stable — no
// matter how the CLI sizes the paper figures.
const (
	// scaleWorkers is deliberately small: the figure's subject is the
	// cluster axis, and total load already grows linearly with N.
	scaleWorkers = 4
	// scaleSamples bounds the offline hot-set detection replay per cell.
	scaleSamples = 4000
	scaleWarmup  = 100 * sim.Microsecond
	scaleMeasure = 400 * sim.Microsecond
)

// scaleNodes and scaleThetas are the full figure's grid.
var (
	scaleNodes  = []int{8, 16, 64, 128, 256}
	scaleThetas = []float64{0.0, 0.6, 0.9, 1.1}
)

// scalePlan declares the contention-scaling points over the given grid:
// for each (θ, N) cell the No-Switch baseline, then P4DB and Calvin with
// speedups against it, on Zipfian YCSB-A at 20% distributed transactions.
func scalePlan(o Options, nodes []int, thetas []float64) plan {
	var pts []Point
	for _, theta := range thetas {
		theta := theta
		for _, n := range nodes {
			n := n
			gen := func() workload.Generator {
				cfg := workload.YCSBWorkloadA(n)
				cfg.DistPct = 20
				cfg.Zipfian = true
				cfg.Theta = theta
				return workload.NewYCSB(cfg)
			}
			wl := fmt.Sprintf("YCSB-A θ=%.1f", theta)
			x := fmt.Sprintf("N=%d", n)
			baseIdx := len(pts)
			for _, sys := range []string{"noswitch", "p4db", "calvin"} {
				cfg := o.config(sys, lock.NoWait, scaleWorkers)
				cfg.Nodes = n
				cfg.SampleTxns = scaleSamples
				p := point(fmt.Sprintf("scale θ=%.1f N=%d %s", theta, n, sys),
					cfg, gen,
					Row{Figure: "Scale", Workload: wl, Series: label(sys), X: x})
				p.Warmup, p.Measure = scaleWarmup, scaleMeasure
				if sys == "noswitch" {
					p.Row.Speedup = 1
				} else {
					p.Base = baseIdx
				}
				pts = append(pts, p)
			}
		}
	}
	return plan{points: pts}
}

// figScalePlan declares the full figure. It is registered in figurePlans
// (`-fig scale`) but deliberately not in allPlans: `-fig all` keeps
// reproducing the paper's figure set — and its golden digest — unchanged.
func figScalePlan(o Options) plan { return scalePlan(o, scaleNodes, scaleThetas) }

// FigScale regenerates the contention-scaling figure.
func FigScale(o Options) []Row { return o.execute(figScalePlan(o)) }
