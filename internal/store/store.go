// Package store is the per-node in-memory storage engine of the host
// DBMS: partitioned tables of fixed-schema rows with primary and optional
// secondary indexes.
//
// Rows are arrays of int64 fields — the same fixed-point representation
// the switch registers use — so a tuple can move between a node and the
// switch without conversion. Tables are lazily materialized: absent keys
// read as zero-filled rows, which lets benchmarks declare billion-row
// keyspaces (YCSB) without allocating them.
package store

import (
	"fmt"
	"sort"
)

// TableID identifies a table within a node (dense, small).
type TableID uint8

// Key is a primary key within a table.
type Key uint64

// GlobalKey packs (table, key) into the single uint64 used by the lock
// manager and the layout engine. The top byte carries the table.
type GlobalKey uint64

// Global returns the packed identifier of (table, key).
func Global(t TableID, k Key) GlobalKey {
	return GlobalKey(uint64(t)<<56 | uint64(k)&0x00FF_FFFF_FFFF_FFFF)
}

// Split unpacks a GlobalKey.
func (g GlobalKey) Split() (TableID, Key) {
	return TableID(g >> 56), Key(g & 0x00FF_FFFF_FFFF_FFFF)
}

// GlobalField packs (table, field, key) into a single identifier. The
// switch stores individual columns (the paper offloads e.g. the district's
// d_ytd and d_next_o_id separately), so layout and hot-index entries are
// field-qualified, while locks stay row-granular via Global.
func GlobalField(t TableID, f int, k Key) GlobalKey {
	if f < 0 || f > 15 {
		panic(fmt.Sprintf("store: field %d not encodable (0..15)", f))
	}
	return GlobalKey(uint64(t)<<56 | uint64(f)<<52 | uint64(k)&0x000F_FFFF_FFFF_FFFF)
}

// SplitField unpacks a field-qualified identifier.
func (g GlobalKey) SplitField() (TableID, int, Key) {
	return TableID(g >> 56), int(g >> 52 & 0xF), Key(g & 0x000F_FFFF_FFFF_FFFF)
}

func (g GlobalKey) String() string {
	t, k := g.Split()
	return fmt.Sprintf("t%d/%d", t, k)
}

// Table is one node's partition of a logical table.
type Table struct {
	id     TableID
	name   string
	fields int
	rows   map[Key][]int64
}

// NewTable creates an empty table partition with the given row schema
// width (number of int64 fields).
func NewTable(id TableID, name string, fields int) *Table {
	if fields <= 0 {
		panic("store: table needs at least one field")
	}
	return &Table{id: id, name: name, fields: fields, rows: make(map[Key][]int64)}
}

// ID returns the table id.
func (t *Table) ID() TableID { return t.id }

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Fields returns the number of fields per row.
func (t *Table) Fields() int { return t.fields }

// Rows returns the number of materialized rows.
func (t *Table) Rows() int { return len(t.rows) }

// Get returns field f of the row at key; absent rows read as zero.
func (t *Table) Get(k Key, f int) int64 {
	t.checkField(f)
	row, ok := t.rows[k]
	if !ok {
		return 0
	}
	return row[f]
}

// GetRow returns a copy of the full row (zeros if absent).
func (t *Table) GetRow(k Key) []int64 {
	out := make([]int64, t.fields)
	copy(out, t.rows[k])
	return out
}

// Set stores v into field f of the row at key, materializing it.
func (t *Table) Set(k Key, f int, v int64) {
	t.checkField(f)
	row, ok := t.rows[k]
	if !ok {
		row = make([]int64, t.fields)
		t.rows[k] = row
	}
	row[f] = v
}

// Add increments field f by delta and returns the new value.
func (t *Table) Add(k Key, f int, delta int64) int64 {
	t.checkField(f)
	row, ok := t.rows[k]
	if !ok {
		row = make([]int64, t.fields)
		t.rows[k] = row
	}
	row[f] += delta
	return row[f]
}

// Delete removes the row at key (absent is a no-op).
func (t *Table) Delete(k Key) { delete(t.rows, k) }

// Keys returns all materialized keys in sorted order (tests and recovery).
func (t *Table) Keys() []Key {
	out := make([]Key, 0, len(t.rows))
	for k := range t.rows {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (t *Table) checkField(f int) {
	if f < 0 || f >= t.fields {
		panic(fmt.Sprintf("store: field %d out of range for table %s (%d fields)", f, t.name, t.fields))
	}
}

// Store is one node's collection of table partitions.
type Store struct {
	tables map[TableID]*Table
}

// New creates an empty store.
func New() *Store {
	return &Store{tables: make(map[TableID]*Table)}
}

// CreateTable registers a table partition. It panics on duplicate ids —
// schema setup bugs should fail fast.
func (s *Store) CreateTable(id TableID, name string, fields int) *Table {
	if _, dup := s.tables[id]; dup {
		panic(fmt.Sprintf("store: duplicate table id %d", id))
	}
	t := NewTable(id, name, fields)
	s.tables[id] = t
	return t
}

// Lookup returns the partition for id, or nil when no such table was
// created. The serving path uses it to validate wire-supplied table ids
// without tripping Table's schema-mismatch panic.
func (s *Store) Lookup(id TableID) *Table {
	return s.tables[id]
}

// TableIDs returns the ids of every created table in ascending order —
// the deterministic iteration a state digest needs.
func (s *Store) TableIDs() []TableID {
	ids := make([]TableID, 0, len(s.tables))
	for id := range s.tables {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Table returns the partition for id; it panics if the table was never
// created (a schema mismatch, not a runtime condition).
func (s *Store) Table(id TableID) *Table {
	t, ok := s.tables[id]
	if !ok {
		panic(fmt.Sprintf("store: unknown table id %d", id))
	}
	return t
}

// SecondaryIndex maps a secondary attribute value to a primary key. P4DB
// keeps secondary indexes on the database nodes even for hot tuples
// (Section 6.1): a lookup first resolves the secondary key here and only
// then consults the hot index.
type SecondaryIndex struct {
	name string
	m    map[int64]Key
}

// NewSecondaryIndex creates an empty index.
func NewSecondaryIndex(name string) *SecondaryIndex {
	return &SecondaryIndex{name: name, m: make(map[int64]Key)}
}

// Put inserts or overwrites a mapping.
func (ix *SecondaryIndex) Put(attr int64, pk Key) { ix.m[attr] = pk }

// Lookup resolves a secondary attribute to a primary key.
func (ix *SecondaryIndex) Lookup(attr int64) (Key, bool) {
	pk, ok := ix.m[attr]
	return pk, ok
}

// Delete removes a mapping.
func (ix *SecondaryIndex) Delete(attr int64) { delete(ix.m, attr) }

// Len returns the number of entries.
func (ix *SecondaryIndex) Len() int { return len(ix.m) }
