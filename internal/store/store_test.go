package store

import (
	"testing"
	"testing/quick"
)

func TestGlobalKeyRoundTrip(t *testing.T) {
	f := func(tbl uint8, key uint64) bool {
		key &= 0x00FF_FFFF_FFFF_FFFF
		g := Global(TableID(tbl), Key(key))
		tb, k := g.Split()
		return tb == TableID(tbl) && k == Key(key)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAbsentRowsReadZero(t *testing.T) {
	tb := NewTable(1, "accounts", 2)
	if v := tb.Get(42, 0); v != 0 {
		t.Fatalf("absent row reads %d, want 0", v)
	}
	if tb.Rows() != 0 {
		t.Fatal("Get materialized a row")
	}
}

func TestSetGet(t *testing.T) {
	tb := NewTable(1, "t", 3)
	tb.Set(7, 1, 99)
	if v := tb.Get(7, 1); v != 99 {
		t.Fatalf("Get = %d", v)
	}
	if v := tb.Get(7, 0); v != 0 {
		t.Fatalf("untouched field = %d, want 0", v)
	}
	if tb.Rows() != 1 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
}

func TestAddReturnsNewValue(t *testing.T) {
	tb := NewTable(1, "t", 1)
	if v := tb.Add(5, 0, 10); v != 10 {
		t.Fatalf("Add = %d", v)
	}
	if v := tb.Add(5, 0, -3); v != 7 {
		t.Fatalf("Add = %d", v)
	}
}

func TestGetRowCopies(t *testing.T) {
	tb := NewTable(1, "t", 2)
	tb.Set(1, 0, 5)
	row := tb.GetRow(1)
	row[0] = 999
	if tb.Get(1, 0) != 5 {
		t.Fatal("GetRow returned aliased storage")
	}
	absent := tb.GetRow(99)
	if len(absent) != 2 || absent[0] != 0 || absent[1] != 0 {
		t.Fatalf("absent GetRow = %v", absent)
	}
}

func TestDelete(t *testing.T) {
	tb := NewTable(1, "t", 1)
	tb.Set(1, 0, 5)
	tb.Delete(1)
	if tb.Rows() != 0 || tb.Get(1, 0) != 0 {
		t.Fatal("Delete did not remove row")
	}
	tb.Delete(999) // absent: no-op
}

func TestKeysSorted(t *testing.T) {
	tb := NewTable(1, "t", 1)
	for _, k := range []Key{5, 1, 9, 3} {
		tb.Set(k, 0, 1)
	}
	ks := tb.Keys()
	for i := 1; i < len(ks); i++ {
		if ks[i-1] >= ks[i] {
			t.Fatalf("Keys not sorted: %v", ks)
		}
	}
}

func TestFieldBoundsPanic(t *testing.T) {
	tb := NewTable(1, "t", 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on bad field")
		}
	}()
	tb.Get(1, 2)
}

func TestStoreCreateAndLookup(t *testing.T) {
	s := New()
	s.CreateTable(1, "a", 1)
	s.CreateTable(2, "b", 2)
	if s.Table(1).Name() != "a" || s.Table(2).Fields() != 2 {
		t.Fatal("table lookup broken")
	}
}

func TestStoreDuplicateTablePanics(t *testing.T) {
	s := New()
	s.CreateTable(1, "a", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate table")
		}
	}()
	s.CreateTable(1, "b", 1)
}

func TestStoreUnknownTablePanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on unknown table")
		}
	}()
	s.Table(9)
}

func TestSecondaryIndex(t *testing.T) {
	ix := NewSecondaryIndex("name")
	ix.Put(1001, 7)
	if pk, ok := ix.Lookup(1001); !ok || pk != 7 {
		t.Fatalf("Lookup = %v %v", pk, ok)
	}
	if _, ok := ix.Lookup(9999); ok {
		t.Fatal("phantom lookup hit")
	}
	ix.Put(1001, 8) // overwrite
	if pk, _ := ix.Lookup(1001); pk != 8 {
		t.Fatal("overwrite failed")
	}
	ix.Delete(1001)
	if ix.Len() != 0 {
		t.Fatal("delete failed")
	}
}
