package sim

// This file implements the scheduler's event storage: a hand-rolled 4-ary
// min-heap over inline event values for timed events, plus a FIFO ring for
// same-instant events (the callback fast path). Both structures hold event
// values directly — no interface{} boxing, no per-event allocation — and
// both reuse their backing arrays across pushes and pops, so a steady-state
// simulation run does not allocate per event at all.
//
// Ordering contract (shared with the old container/heap implementation):
// events execute in ascending (at, seq) order. seq is a global monotonic
// counter drawn at schedule time, so events at the same virtual instant run
// in FIFO schedule order.

// event is a single entry in the scheduler's event queue. Exactly one of
// proc or fn is set: proc events resume a parked process, fn events run a
// callback inline in the scheduler goroutine.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among equal timestamps
	proc *Proc
	gen  uint32 // proc incarnation at schedule time (stale-wake guard)
	fn   func()
}

// before reports whether e orders strictly before o on the (at, seq) key.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventHeap is a 4-ary min-heap of inline events ordered by (at, seq).
// A 4-ary layout halves the tree depth of a binary heap, trading a few
// extra comparisons per level for far fewer cache lines touched per
// operation — the classic d-ary heap trade that wins when pops dominate.
type eventHeap struct {
	a []event
}

func (h *eventHeap) len() int { return len(h.a) }

func (h *eventHeap) push(ev event) {
	h.a = append(h.a, ev)
	// Sift up.
	i := len(h.a) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !h.a[i].before(&h.a[parent]) {
			break
		}
		h.a[i], h.a[parent] = h.a[parent], h.a[i]
		i = parent
	}
}

// pop removes and returns the minimum event. It must not be called on an
// empty heap.
func (h *eventHeap) pop() event {
	top := h.a[0]
	n := len(h.a) - 1
	h.a[0] = h.a[n]
	h.a[n] = event{} // release fn/proc references, keep capacity
	h.a = h.a[:n]
	// Sift down.
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h.a[c].before(&h.a[min]) {
				min = c
			}
		}
		if !h.a[min].before(&h.a[i]) {
			break
		}
		h.a[i], h.a[min] = h.a[min], h.a[i]
		i = min
	}
	return top
}

// eventRing is a growable FIFO ring buffer of events. The scheduler routes
// zero-delay events here: they are already in (at, seq) order by
// construction (at is the non-decreasing current time, seq is monotonic),
// so same-instant cascades — Signal.Fire wake-ups, After(0, ...) chains,
// network egress/delivery callbacks — cost O(1) push/pop instead of a heap
// round trip.
type eventRing struct {
	buf  []event // len(buf) is a power of two
	head int     // index of the oldest entry
	n    int     // number of entries
}

func (r *eventRing) len() int { return r.n }

// peek returns the oldest entry; it must not be called on an empty ring.
func (r *eventRing) peek() *event { return &r.buf[r.head] }

func (r *eventRing) push(ev event) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = ev
	r.n++
}

// pop removes and returns the oldest entry; it must not be called on an
// empty ring.
func (r *eventRing) pop() event {
	ev := r.buf[r.head]
	r.buf[r.head] = event{} // release fn/proc references
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return ev
}

func (r *eventRing) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 64
	}
	buf := make([]event, size)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = buf
	r.head = 0
}

// eventQueue combines the heap and the ring behind one (at, seq)-ordered
// pop interface.
type eventQueue struct {
	heap eventHeap
	ring eventRing
}

func (q *eventQueue) len() int { return q.heap.len() + q.ring.len() }

// pushTimed enqueues an event with a future timestamp.
func (q *eventQueue) pushTimed(ev event) { q.heap.push(ev) }

// pushNow enqueues a same-instant event on the fast path. The caller
// guarantees ev.at is the current virtual time and ev.seq is a fresh draw,
// which keeps the ring (at, seq)-sorted: at is non-decreasing across pushes
// and seq is globally monotonic.
func (q *eventQueue) pushNow(ev event) { q.ring.push(ev) }

// peekAt returns the timestamp of the next event, or false when empty.
func (q *eventQueue) peekAt() (Time, bool) {
	switch {
	case q.ring.len() == 0 && q.heap.len() == 0:
		return 0, false
	case q.ring.len() == 0:
		return q.heap.a[0].at, true
	case q.heap.len() == 0:
		return q.ring.peek().at, true
	default:
		if q.ring.peek().before(&q.heap.a[0]) {
			return q.ring.peek().at, true
		}
		return q.heap.a[0].at, true
	}
}

// pop removes and returns the globally next event by (at, seq); it must not
// be called on an empty queue. A ring entry can never tie with a heap entry
// (seq values are unique), so the strict comparison is enough.
func (q *eventQueue) pop() event {
	switch {
	case q.ring.len() == 0:
		return q.heap.pop()
	case q.heap.len() == 0:
		return q.ring.pop()
	default:
		if q.ring.peek().before(&q.heap.a[0]) {
			return q.ring.pop()
		}
		return q.heap.pop()
	}
}
