package sim

import "fmt"

// signalWaiter is one subscriber to a signal: either a parked process or a
// continuation callback. Exactly one of proc/fn is set. Keeping both kinds in
// a single ordered list guarantees that a mixed population of process waiters
// and callback waiters wakes in exact subscription order, so converting one
// waiter at a time from the process API to the callback API cannot perturb a
// seeded schedule.
type signalWaiter struct {
	proc *Proc
	fn   func()
}

// Signal is a one-shot event that processes or continuations can wait on.
// Firing a signal wakes every waiter at the current virtual time and records
// a value that Await (or Value, for callback waiters) returns. Signals are
// the building block for lock grants, RPC replies and 2PC votes throughout
// the reproduction: a waiter parks on its own signal — or subscribes a
// resumption callback — and whoever resolves the wait (lock release,
// wound/die abort, message arrival) fires it with an outcome.
type Signal struct {
	env     *Env
	fired   bool
	val     interface{}
	waiters []signalWaiter
}

// NewSignal creates an unfired signal bound to the environment.
func (e *Env) NewSignal() *Signal { return &Signal{env: e} }

// Fired reports whether the signal has been fired.
func (s *Signal) Fired() bool { return s.fired }

// Value returns the value the signal was fired with (nil if unfired).
func (s *Signal) Value() interface{} { return s.val }

// Fire marks the signal fired with val and wakes all waiters at the current
// virtual time, in subscription order, one scheduled event per waiter.
// Firing an already-fired signal is a no-op; the first value wins. Fire must
// be called from simulation context.
func (s *Signal) Fire(val interface{}) {
	if s.fired {
		return
	}
	s.fired = true
	s.val = val
	for _, w := range s.waiters {
		s.env.schedule(0, w.proc, w.fn)
	}
	s.waiters = nil
}

// FireAfter fires the signal with val after delay virtual nanoseconds.
func (s *Signal) FireAfter(delay Time, val interface{}) {
	s.env.After(delay, func() { s.Fire(val) })
}

// Subscribe registers k to run when the signal fires. If the signal has
// already fired, k runs inline (zero scheduled events — the continuation
// analogue of Await returning immediately); otherwise k is scheduled as its
// own same-instant event when Fire runs, exactly where a process waiter's
// wake-up would be. Read the outcome with Value from inside k.
func (s *Signal) Subscribe(k func()) {
	if s.fired {
		k()
		return
	}
	s.waiters = append(s.waiters, signalWaiter{fn: k})
}

// Await blocks the process until the signal fires and returns the fired
// value. If the signal already fired, Await returns immediately.
func (p *Proc) Await(s *Signal) interface{} {
	if s.fired {
		return s.val
	}
	s.waiters = append(s.waiters, signalWaiter{proc: p})
	p.block()
	return s.val
}

// AwaitErr is Await for the common case of signals fired with an error (or
// nil for success).
func (p *Proc) AwaitErr(s *Signal) error {
	v := p.Await(s)
	if v == nil {
		return nil
	}
	return v.(error)
}

// WaitGroup counts down outstanding sub-operations (e.g. parallel RPC
// fan-out) and fires an internal signal when the count reaches zero.
type WaitGroup struct {
	n   int
	sig *Signal
}

// NewWaitGroup creates a wait group expecting n completions.
func (e *Env) NewWaitGroup(n int) *WaitGroup {
	wg := &WaitGroup{n: n, sig: e.NewSignal()}
	if n <= 0 {
		wg.sig.Fire(nil)
	}
	return wg
}

// Done records one completion. Completing more often than the group size
// is a bug in the protocol being simulated — the group would already have
// fired — so over-completion panics loudly instead of silently corrupting
// the count.
func (w *WaitGroup) Done() {
	w.n--
	if w.n == 0 {
		w.sig.Fire(nil)
	} else if w.n < 0 {
		panic(fmt.Sprintf("sim: WaitGroup.Done called %d time(s) more than the group size", -w.n))
	}
}

// Wait blocks the process until all completions have been recorded.
func (p *Proc) Wait(w *WaitGroup) { p.Await(w.sig) }

// Subscribe runs k once all completions have been recorded (inline if they
// already have). It is the continuation counterpart of Wait.
func (w *WaitGroup) Subscribe(k func()) { w.sig.Subscribe(k) }
