package sim

import (
	"container/heap"
	"testing"
)

// refEvent / refHeap is a minimal container/heap implementation with the
// scheduler's ordering contract, used as the oracle for the property test.
type refEvent struct {
	at  Time
	seq uint64
	id  int
}

type refHeap []refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(refEvent)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// TestEventQueueMatchesReferenceHeap drives the production queue and a
// container/heap reference through the same random schedule-and-drain
// workload, mimicking how the scheduler uses it: pops advance a virtual
// clock, pushes draw monotonic sequence numbers, and a fraction of pushes
// are zero-delay (landing in the ring). The pop order must match the
// reference exactly.
func TestEventQueueMatchesReferenceHeap(t *testing.T) {
	rng := NewRNG(1234)
	for round := 0; round < 50; round++ {
		var q eventQueue
		var ref refHeap
		var now Time
		var seq uint64
		nextID := 0
		popped := make(map[int]bool)

		push := func() {
			var delay Time
			switch rng.Intn(3) {
			case 0:
				delay = 0 // fast path
			default:
				delay = Time(rng.Intn(1000))
			}
			seq++
			id := nextID
			nextID++
			ev := event{at: now + delay, seq: seq, fn: func() {}}
			if delay == 0 {
				q.pushNow(ev)
			} else {
				q.pushTimed(ev)
			}
			// Smuggle the id through the seq (unique), tracked on the side.
			heap.Push(&ref, refEvent{at: now + delay, seq: seq, id: id})
		}

		for i := 0; i < 200; i++ {
			push()
		}
		for q.len() > 0 {
			if at, ok := q.peekAt(); !ok || at != ref[0].at {
				t.Fatalf("round %d: peekAt mismatch: got %v, want %v", round, at, ref[0].at)
			}
			got := q.pop()
			want := heap.Pop(&ref).(refEvent)
			if got.at != want.at || got.seq != want.seq {
				t.Fatalf("round %d: pop (at=%v seq=%d), reference (at=%v seq=%d)",
					round, got.at, got.seq, want.at, want.seq)
			}
			if popped[want.id] {
				t.Fatalf("round %d: event %d popped twice", round, want.id)
			}
			popped[want.id] = true
			if got.at < now {
				t.Fatalf("round %d: time moved backwards: %v -> %v", round, now, got.at)
			}
			now = got.at
			// Schedule follow-up work from a third of the pops, like
			// callbacks that fire signals or re-arm timers.
			if rng.Intn(3) == 0 && nextID < 5000 {
				for k := rng.Intn(3); k >= 0; k-- {
					push()
				}
			}
		}
		if ref.Len() != 0 {
			t.Fatalf("round %d: queue drained but reference holds %d", round, ref.Len())
		}
	}
}

func TestSpawnAfterStartsAtScheduledInstant(t *testing.T) {
	e := NewEnv(1)
	var startedAt Time = -1
	p := e.SpawnAfter(7*Microsecond, "late", func(p *Proc) { startedAt = p.Now() })
	if p == nil || e.Live() != 1 {
		t.Fatalf("SpawnAfter did not register the process (live=%d)", e.Live())
	}
	e.Run()
	if startedAt != 7*Microsecond {
		t.Fatalf("process started at %v, want 7µs", startedAt)
	}
	if e.Live() != 0 {
		t.Fatalf("live = %d after run", e.Live())
	}
}

func TestSpawnAfterMatchesSpawnPlusSleepSchedule(t *testing.T) {
	// The two-hop egress scheduling must draw the same event sequence
	// numbers as Spawn + immediate Sleep, so mixed schedules interleave
	// identically. Run the same scenario both ways and compare traces.
	run := func(useSpawnAfter bool) []string {
		e := NewEnv(1)
		var trace []string
		e.Spawn("main", func(p *Proc) {
			body := func(sub *Proc) {
				trace = append(trace, "courier@"+sub.Now().String())
			}
			if useSpawnAfter {
				e.SpawnAfter(10, "courier", body)
			} else {
				e.Spawn("courier", func(sub *Proc) {
					sub.Sleep(10)
					body(sub)
				})
			}
			e.After(10, func() { trace = append(trace, "timer@"+e.Now().String()) })
			p.Sleep(10)
			trace = append(trace, "main@"+p.Now().String())
		})
		e.Run()
		return trace
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a, b)
		}
	}
}

func TestParkResumeRoundTrip(t *testing.T) {
	e := NewEnv(1)
	var resumedAt Time
	e.Spawn("caller", func(p *Proc) {
		// Model a callback round trip: the reply computes a value and
		// resumes the caller after a further delay.
		e.After(5, func() { e.Resume(5, p) })
		p.Park()
		resumedAt = p.Now()
	})
	e.Run()
	if resumedAt != 10 {
		t.Fatalf("resumed at %v, want 10", resumedAt)
	}
}

func TestProcPoolReusesGoroutines(t *testing.T) {
	e := NewEnv(1)
	p1 := e.Spawn("a", func(p *Proc) {})
	e.Run()
	p2 := e.Spawn("b", func(p *Proc) {})
	if p1 != p2 {
		t.Fatal("finished process was not recycled for the next spawn")
	}
	if p2.Name() != "b" {
		t.Fatalf("recycled process kept stale name %q", p2.Name())
	}
	e.Run()
	e.Shutdown()
}

func TestStaleWakeupDoesNotResumeRecycledProc(t *testing.T) {
	e := NewEnv(1)
	var p1 *Proc
	resumed := 0
	p1 = e.Spawn("a", func(p *Proc) {
		p.Park()
		resumed++
	})
	e.After(5, func() {
		e.Resume(0, p1)  // wakes the park
		e.Resume(10, p1) // stale: p1 is finished (and recycled) by then
	})
	sig := e.NewSignal()
	spurious := false
	e.After(6, func() {
		// This spawn reuses p1's Proc; the stale wake-up at t=15 targets
		// the old incarnation and must not resume it.
		e.Spawn("b", func(p *Proc) {
			p.Await(sig)
			spurious = true
		})
	})
	e.RunUntil(100)
	if resumed != 1 {
		t.Fatalf("first incarnation resumed %d times, want 1", resumed)
	}
	if spurious {
		t.Fatal("stale wake-up resumed the recycled process")
	}
	e.Shutdown()
}

func TestShutdownUnwindsInSpawnOrder(t *testing.T) {
	e := NewEnv(1)
	var order []string
	for _, name := range []string{"a", "b", "c", "d"} {
		name := name
		e.Spawn(name, func(p *Proc) {
			defer func() { order = append(order, name) }()
			p.Park() // parked forever; unwound by Shutdown
		})
	}
	e.RunUntil(10)
	e.Shutdown()
	want := []string{"a", "b", "c", "d"}
	if len(order) != len(want) {
		t.Fatalf("unwound %d procs, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("unwind order = %v, want spawn order %v", order, want)
		}
	}
}

func TestWaitGroupOverCompletionPanics(t *testing.T) {
	e := NewEnv(1)
	wg := e.NewWaitGroup(1)
	wg.Done()
	defer func() {
		if recover() == nil {
			t.Fatal("WaitGroup.Done past zero did not panic")
		}
	}()
	wg.Done()
}

func TestEventsCounter(t *testing.T) {
	e := NewEnv(1)
	for i := 0; i < 5; i++ {
		e.After(Time(i), func() {})
	}
	e.Run()
	if e.Events() != 5 {
		t.Fatalf("Events = %d, want 5", e.Events())
	}
}

// BenchmarkSameInstantCascade measures the callback fast path: chains of
// zero-delay events, the shape of Signal.Fire fan-outs and network egress
// hops.
func BenchmarkSameInstantCascade(b *testing.B) {
	e := NewEnv(1)
	n := 0
	var fire func()
	fire = func() {
		if n < b.N {
			n++
			e.After(0, fire)
		}
	}
	e.After(0, fire)
	e.Run()
	b.ReportMetric(float64(n), "events")
}

// BenchmarkTimedEvents measures heap push/pop throughput with a rotating
// timer population, the shape of sleep-heavy worker workloads.
func BenchmarkTimedEvents(b *testing.B) {
	e := NewEnv(1)
	n := 0
	var rearm func()
	rearm = func() {
		if n < b.N {
			n++
			e.After(Time(1+n%97), rearm)
		}
	}
	for i := 0; i < 64; i++ {
		e.After(Time(i+1), rearm)
	}
	e.Run()
}

// BenchmarkProcessPingPong measures the full process resume cycle (two
// channel hand-offs) plus queue traffic — the inherent cost of a blocking
// simulated operation.
func BenchmarkProcessPingPong(b *testing.B) {
	e := NewEnv(1)
	e.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(10)
		}
	})
	e.Run()
}

// BenchmarkSpawnChurn measures process spawn/finish cost with pooling —
// the shape of per-message courier processes in 2PC fan-outs.
func BenchmarkSpawnChurn(b *testing.B) {
	e := NewEnv(1)
	done := 0
	for i := 0; i < b.N; i++ {
		e.Spawn("courier", func(p *Proc) { done++ })
		e.Run()
	}
	if done != b.N {
		b.Fatalf("ran %d, want %d", done, b.N)
	}
}

// BenchmarkContinuationPingPong is the continuation counterpart of
// BenchmarkProcessPingPong: the same rearm-every-10ns shape, expressed as
// a callback event instead of a parked process. The gap between the two is
// exactly the goroutine hand-off cost the coroutine-free scheduler core
// removed from the transaction hot path.
func BenchmarkContinuationPingPong(b *testing.B) {
	e := NewEnv(1)
	n := 0
	var tick func()
	tick = func() {
		if n < b.N {
			n++
			e.After(10, tick)
		}
	}
	e.After(10, tick)
	e.Run()
}

// TestContinuationCycleZeroAlloc pins the steady-state callback cycle —
// one timed event scheduled, popped and executed — at zero heap
// allocations, the invariant the worker state machines rely on.
func TestContinuationCycleZeroAlloc(t *testing.T) {
	e := NewEnv(1)
	var tick func()
	tick = func() {}
	// Warm the event ring and heap so growth is amortized out.
	for i := 0; i < 1024; i++ {
		e.After(Time(i%7), tick)
	}
	e.Run()
	if avg := testing.AllocsPerRun(1000, func() {
		e.After(3, tick)
		e.Run()
	}); avg != 0 {
		t.Fatalf("continuation cycle allocates %.2f objects/op, want 0", avg)
	}
}
