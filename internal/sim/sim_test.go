package sim

import (
	"runtime"
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEnv(1)
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	e := NewEnv(1)
	var woke Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		woke = p.Now()
	})
	e.Run()
	if woke != 5*Microsecond {
		t.Fatalf("woke at %v, want 5µs", woke)
	}
}

func TestEventsRunInTimeOrder(t *testing.T) {
	e := NewEnv(1)
	var order []int
	e.After(30, func() { order = append(order, 3) })
	e.After(10, func() { order = append(order, 1) })
	e.After(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
}

func TestSameTimeEventsAreFIFO(t *testing.T) {
	e := NewEnv(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(7, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO tie-break violated)", i, v, i)
		}
	}
}

func TestNegativeSleepIsZero(t *testing.T) {
	e := NewEnv(1)
	e.Spawn("p", func(p *Proc) {
		p.Sleep(-5)
		if p.Now() != 0 {
			t.Errorf("clock moved backwards: %v", p.Now())
		}
	})
	e.Run()
}

func TestTwoProcessesInterleave(t *testing.T) {
	e := NewEnv(1)
	var trace []string
	e.Spawn("a", func(p *Proc) {
		trace = append(trace, "a0")
		p.Sleep(10)
		trace = append(trace, "a10")
		p.Sleep(20)
		trace = append(trace, "a30")
	})
	e.Spawn("b", func(p *Proc) {
		trace = append(trace, "b0")
		p.Sleep(15)
		trace = append(trace, "b15")
	})
	e.Run()
	want := []string{"a0", "b0", "a10", "b15", "a30"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestSignalWakesAllWaiters(t *testing.T) {
	e := NewEnv(1)
	s := e.NewSignal()
	woken := 0
	for i := 0; i < 5; i++ {
		e.Spawn("w", func(p *Proc) {
			if v := p.Await(s); v != "go" {
				t.Errorf("Await = %v, want go", v)
			}
			woken++
		})
	}
	e.Spawn("firer", func(p *Proc) {
		p.Sleep(100)
		s.Fire("go")
	})
	e.Run()
	if woken != 5 {
		t.Fatalf("woken = %d, want 5", woken)
	}
}

func TestAwaitFiredSignalReturnsImmediately(t *testing.T) {
	e := NewEnv(1)
	s := e.NewSignal()
	s.Fire(42)
	var got interface{}
	var at Time
	e.Spawn("p", func(p *Proc) {
		p.Sleep(9)
		got = p.Await(s)
		at = p.Now()
	})
	e.Run()
	if got != 42 || at != 9 {
		t.Fatalf("got %v at %v, want 42 at 9", got, at)
	}
}

func TestSignalSecondFireIgnored(t *testing.T) {
	e := NewEnv(1)
	s := e.NewSignal()
	s.Fire(1)
	s.Fire(2)
	if s.Value() != 1 {
		t.Fatalf("Value = %v, want first fire to win", s.Value())
	}
}

func TestFireAfter(t *testing.T) {
	e := NewEnv(1)
	s := e.NewSignal()
	var at Time
	e.Spawn("p", func(p *Proc) {
		p.Await(s)
		at = p.Now()
	})
	s.FireAfter(33, nil)
	e.Run()
	if at != 33 {
		t.Fatalf("woke at %v, want 33", at)
	}
}

func TestWaitGroup(t *testing.T) {
	e := NewEnv(1)
	wg := e.NewWaitGroup(3)
	var doneAt Time
	e.Spawn("waiter", func(p *Proc) {
		p.Wait(wg)
		doneAt = p.Now()
	})
	for i := 1; i <= 3; i++ {
		d := Time(i * 10)
		e.After(d, wg.Done)
	}
	e.Run()
	if doneAt != 30 {
		t.Fatalf("doneAt = %v, want 30 (last Done)", doneAt)
	}
}

func TestWaitGroupZero(t *testing.T) {
	e := NewEnv(1)
	wg := e.NewWaitGroup(0)
	ran := false
	e.Spawn("waiter", func(p *Proc) {
		p.Wait(wg)
		ran = true
	})
	e.Run()
	if !ran {
		t.Fatal("waiter never resumed on zero-count group")
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := NewEnv(1)
	count := 0
	e.Spawn("ticker", func(p *Proc) {
		for {
			p.Sleep(10)
			count++
		}
	})
	e.RunUntil(95)
	if count != 9 {
		t.Fatalf("count = %d, want 9 ticks by t=95", count)
	}
	if e.Now() != 95 {
		t.Fatalf("Now = %v, want 95", e.Now())
	}
	e.Shutdown()
}

func TestShutdownUnwindsGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for iter := 0; iter < 50; iter++ {
		e := NewEnv(uint64(iter))
		for i := 0; i < 20; i++ {
			e.Spawn("w", func(p *Proc) {
				for {
					p.Sleep(100)
				}
			})
		}
		sig := e.NewSignal()
		e.Spawn("blocked-forever", func(p *Proc) { p.Await(sig) })
		e.RunUntil(10_000)
		e.Shutdown()
		if e.Live() != 0 {
			t.Fatalf("Live = %d after Shutdown", e.Live())
		}
	}
	// Give the runtime a moment to reap exited goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func(seed uint64) []int64 {
		e := NewEnv(seed)
		var trace []int64
		for i := 0; i < 8; i++ {
			e.Spawn("w", func(p *Proc) {
				for k := 0; k < 50; k++ {
					p.Sleep(Time(p.Rand().Intn(100) + 1))
					trace = append(trace, int64(p.Now()))
				}
			})
		}
		e.Run()
		return trace
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces (suspicious)")
	}
}

func TestPanicInProcessPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("panic in process did not propagate to Run")
		}
	}()
	e := NewEnv(1)
	e.Spawn("bad", func(p *Proc) {
		p.Sleep(5)
		panic("boom")
	})
	e.Run()
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.500µs"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(1)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGUniformityRough(t *testing.T) {
	r := NewRNG(9)
	buckets := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		buckets[r.Intn(10)]++
	}
	for i, c := range buckets {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Fatalf("bucket %d has %d of %d draws (non-uniform)", i, c, n)
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	f := func(n uint8) bool {
		m := int(n%50) + 1
		p := r.Perm(m)
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGForkIndependence(t *testing.T) {
	r := NewRNG(11)
	a := r.Fork(1)
	b := r.Fork(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked streams correlate: %d/100 equal draws", same)
	}
}

func TestBoolPercent(t *testing.T) {
	r := NewRNG(13)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(25) {
			hits++
		}
	}
	if hits < n/4-n/50 || hits > n/4+n/50 {
		t.Fatalf("Bool(25) hit %d of %d (expected ~25%%)", hits, n)
	}
}
