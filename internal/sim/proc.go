package sim

// errStopped is the sentinel panic value used to unwind a process during
// Env.Shutdown. It never escapes the package.
var errStopped = new(int)

// Proc is a simulated process: a goroutine that the scheduler resumes one
// at a time. All blocking primitives (Sleep, Await, queue waits built on
// them) suspend the goroutine and return control to the scheduler.
//
// COMPATIBILITY SHIM: the transaction engines, the network layer and the
// crash-recovery path run entirely as callback state machines now (recovery
// executes synchronously inside its crash event — see core's fault
// injection), so no Proc is live on the benchmark hot path. The process API
// is kept because it is the natural style for tests and examples, and
// because process-based and callback-based formulations of the same flow
// draw identical event sequence numbers — which is exactly what the engine
// parity tests exploit to drive CPS engines from a straight-line test body.
//
// Proc values (and their goroutines) are pooled: when a process finishes,
// its goroutine parks on the environment's free list and a later Spawn
// reuses it. The gen counter distinguishes incarnations so that a stale
// wake-up event scheduled for a finished process can never resume its
// successor.
type Proc struct {
	env     *Env
	name    string
	fn      func(p *Proc)
	wake    chan struct{}
	done    bool
	running bool
	gen     uint32

	// Spawn-ordered doubly-linked list of live processes (see Env).
	prev, next *Proc
	linked     bool
}

// Name returns the diagnostic name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Rand returns the environment's deterministic random stream.
func (p *Proc) Rand() *RNG { return p.env.rng }

// block parks the process until the scheduler wakes it. If the environment
// has been shut down in the meantime the process unwinds via panic, which
// the process loop recovers.
func (p *Proc) block() {
	p.running = false
	p.env.yield <- struct{}{}
	<-p.wake
	p.running = true
	if p.env.closed {
		panic(errStopped)
	}
}

// Sleep suspends the process for d virtual nanoseconds. Negative durations
// are treated as zero (the process yields and resumes at the same time,
// after already-queued same-time events).
func (p *Proc) Sleep(d Time) {
	p.env.schedule(d, p, nil)
	p.block()
}

// Yield lets all other events scheduled for the current instant run before
// the process continues.
func (p *Proc) Yield() { p.Sleep(0) }

// Park suspends the process until a callback resumes it with Env.Resume.
// It is the process-side half of a callback round trip (e.g. a network
// reply delivered as an event): the process parks once and is woken
// exactly when the result is ready, with no intermediate wake-up.
func (p *Proc) Park() { p.block() }

// acquireProc returns a ready-to-run process: a pooled one when available
// (its goroutine is already parked on wake), otherwise a fresh one with a
// new goroutine. The process is linked at the tail of the live list.
func (e *Env) acquireProc(name string, fn func(p *Proc)) *Proc {
	var p *Proc
	if n := len(e.freeProcs); n > 0 {
		p = e.freeProcs[n-1]
		e.freeProcs = e.freeProcs[:n-1]
		p.done = false
	} else {
		p = &Proc{env: e, wake: make(chan struct{})}
		go p.loop()
	}
	p.name, p.fn = name, fn
	e.link(p)
	return p
}

// loop is the body of a process goroutine: run one spawned function per
// wake-up, then park on the free list for the next incarnation. The
// goroutine exits for real on shutdown or when a user panic is being
// propagated. All Proc/Env mutation below happens while this goroutine is
// the single running party (between receiving wake and sending yield), so
// it needs no locks and is race-detector clean.
func (p *Proc) loop() {
	e := p.env
	for {
		<-p.wake
		p.run()
		p.done = true
		e.unlink(p)
		recycle := !e.closed && e.fail == nil
		if recycle {
			p.gen++ // invalidate any stale wake-up events for this incarnation
			p.fn = nil
			e.freeProcs = append(e.freeProcs, p)
		}
		e.yield <- struct{}{}
		if !recycle {
			return
		}
	}
}

// run executes one incarnation's function, containing shutdown unwinds and
// re-raising user panics on the scheduler side.
func (p *Proc) run() {
	defer func() {
		if r := recover(); r != nil && r != errStopped {
			// Re-panic on the scheduler side so the failure is not
			// swallowed inside a worker goroutine.
			p.env.fail = r
		}
	}()
	if !p.env.closed {
		p.running = true
		p.fn(p)
		p.running = false
	}
}

// link appends p to the tail of the live-process list.
func (e *Env) link(p *Proc) {
	p.prev, p.next = e.procTail, nil
	if e.procTail != nil {
		e.procTail.next = p
	} else {
		e.procHead = p
	}
	e.procTail = p
	p.linked = true
	e.live++
}

// unlink removes p from the live-process list (no-op if not linked).
func (e *Env) unlink(p *Proc) {
	if !p.linked {
		return
	}
	if p.prev != nil {
		p.prev.next = p.next
	} else {
		e.procHead = p.next
	}
	if p.next != nil {
		p.next.prev = p.prev
	} else {
		e.procTail = p.prev
	}
	p.prev, p.next = nil, nil
	p.linked = false
	e.live--
}
