package sim

// errStopped is the sentinel panic value used to unwind a process during
// Env.Shutdown. It never escapes the package.
var errStopped = new(int)

// Proc is a simulated process: a goroutine that the scheduler resumes one
// at a time. All blocking primitives (Sleep, Await, queue waits built on
// them) suspend the goroutine and return control to the scheduler.
type Proc struct {
	env     *Env
	name    string
	wake    chan struct{}
	done    bool
	running bool
}

// Name returns the diagnostic name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Rand returns the environment's deterministic random stream.
func (p *Proc) Rand() *RNG { return p.env.rng }

// block parks the process until the scheduler wakes it. If the environment
// has been shut down in the meantime the process unwinds via panic, which
// the Spawn wrapper recovers.
func (p *Proc) block() {
	p.running = false
	p.env.yield <- struct{}{}
	<-p.wake
	p.running = true
	if p.env.closed {
		panic(errStopped)
	}
}

// Sleep suspends the process for d virtual nanoseconds. Negative durations
// are treated as zero (the process yields and resumes at the same time,
// after already-queued same-time events).
func (p *Proc) Sleep(d Time) {
	p.env.schedule(d, p, nil)
	p.block()
}

// Yield lets all other events scheduled for the current instant run before
// the process continues.
func (p *Proc) Yield() { p.Sleep(0) }
