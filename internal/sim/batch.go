package sim

// Batcher coalesces same-instant, same-destination event deliveries into one
// scheduled event that drains a queue of callbacks in order. The network
// layer keeps one Batcher per destination: N one-way messages scheduled for
// the same arrival instant then cost one heap/ring operation instead of N.
//
// Coalescing is only order-isomorphic — i.e. guaranteed to execute every
// callback in exactly the relative order the unbatched schedule would — when
// nothing else has been scheduled since the open batch was. The Do fast path
// therefore requires all three of:
//
//   - the arrival instant matches the open batch's instant,
//   - the environment's sequence counter still equals the value drawn when
//     the open batch was scheduled (no event of any kind scheduled since, so
//     no event can order between the two deliveries), and
//   - the open batch has not started draining.
//
// When any condition fails, Do schedules a fresh batch, which draws a fresh
// sequence number exactly like an unbatched After would. Coalesced deliveries
// skip their sequence draw entirely; because every later draw shifts down
// uniformly, all relative (at, seq) comparisons — the only thing the
// scheduler ever consults — are unchanged, and seeded runs produce the same
// execution order (and digest) with batching on or off. Only the raw executed
// event count differs.
type Batcher struct {
	env  *Env
	cur  *batchq
	free []*batchq
}

// batchEntry is one queued delivery: either a plain callback or an indexed
// callback plus its argument. The indexed form exists for multicast-style
// senders that deliver one shared (pooled) function to many destinations —
// carrying the argument in the entry instead of a capturing closure keeps
// the whole fan-out allocation-free.
type batchEntry struct {
	fn   func()
	idFn func(int)
	id   int
}

// batchq is one in-flight batch: the callbacks to drain at instant at. The
// drain closure is cached so re-arming a recycled batch costs zero
// allocations.
type batchq struct {
	at      Time
	seq     uint64
	fns     []batchEntry
	drained bool
	drainFn func()
}

// NewBatcher returns a Batcher delivering through e.
func NewBatcher(e *Env) *Batcher { return &Batcher{env: e} }

// Do schedules fn to run delay nanoseconds from now, coalescing it into the
// open batch when that is provably order-preserving (see type comment). It
// reports whether the delivery was coalesced into an existing event.
func (b *Batcher) Do(delay Time, fn func()) bool {
	return b.push(delay, batchEntry{fn: fn})
}

// DoIndexed is Do for an indexed callback: fn(id) runs at the delivery
// instant. The id travels in the batch entry, so one pooled fn can serve a
// whole multicast group without any per-destination closure allocation.
func (b *Batcher) DoIndexed(delay Time, fn func(int), id int) bool {
	return b.push(delay, batchEntry{idFn: fn, id: id})
}

// push appends an entry to the open batch, or schedules a fresh one.
func (b *Batcher) push(delay Time, e batchEntry) bool {
	if delay < 0 {
		delay = 0
	}
	at := b.env.now + delay
	if q := b.cur; q != nil && !q.drained && q.at == at && q.seq == b.env.seq {
		q.fns = append(q.fns, e)
		return true
	}
	q := b.take()
	q.at = at
	q.fns = append(q.fns, e)
	b.env.schedule(delay, nil, q.drainFn)
	q.seq = b.env.seq
	b.cur = q
	return false
}

// take returns a reset batch from the free list, or a fresh one with its
// drain closure pre-built.
func (b *Batcher) take() *batchq {
	if n := len(b.free); n > 0 {
		q := b.free[n-1]
		b.free = b.free[:n-1]
		q.drained = false
		return q
	}
	q := &batchq{}
	q.drainFn = func() { b.drain(q) }
	return q
}

// drain runs a batch's callbacks in arrival order, then recycles the batch.
// The drained flag is set before running any callback: a callback that
// schedules a further delivery must open a new batch, never append to the
// one currently executing.
func (b *Batcher) drain(q *batchq) {
	q.drained = true
	for i := 0; i < len(q.fns); i++ {
		if e := &q.fns[i]; e.idFn != nil {
			e.idFn(e.id)
		} else {
			e.fn()
		}
	}
	for i := range q.fns {
		q.fns[i] = batchEntry{}
	}
	q.fns = q.fns[:0]
	b.free = append(b.free, q)
}
