// Package sim implements a deterministic discrete-event simulator with a
// virtual nanosecond clock.
//
// The simulator is the substrate on which the whole P4DB reproduction runs:
// database worker threads, network message delays, switch pipeline latencies
// and lock waits are all modelled as events on a single virtual timeline.
// Everything on the hot path is a callback event: a continuation scheduled
// with After (or woken through Signal.Subscribe) that runs inline in the
// scheduler goroutine — blocking waits are expressed as explicit state
// machines that re-enter themselves, so steady-state execution never parks a
// goroutine or pays a channel round trip. The simulation is single-threaded
// and fully deterministic for a given seed: contention, abort patterns and
// throughput numbers are exactly reproducible across runs and machines.
//
// The event pipeline is built for throughput: events are inline values in a
// hand-rolled 4-ary heap (timed) and a FIFO ring (same-instant fast path),
// same-destination deliveries coalesce into batched drain events (batch.go),
// and callback events run without any context switch. See eventq.go for the
// queue.
//
// A process API (Proc: goroutines the scheduler resumes one at a time via
// channel handoff) remains as a compatibility shim for tests and examples;
// see proc.go. Both APIs draw event sequence numbers identically, so a flow
// produces bit-identical schedules whichever style it is written in.
package sim

import (
	"fmt"
)

// Time is a point on (or a span of) the virtual timeline, in nanoseconds.
type Time int64

// Convenient duration units on the virtual timeline.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String formats the time with an adaptive unit, e.g. "12.5µs".
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds returns the time as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Env is a simulation environment: a virtual clock plus an event queue.
// Create one with NewEnv, spawn processes with Spawn, then drive it with
// Run or RunUntil. An Env must be used from a single OS goroutine (the
// one calling Run); processes it spawns are coordinated internally.
type Env struct {
	now      Time
	seq      uint64
	events   eventQueue
	yield    chan struct{}
	executed int64

	// Live processes form a doubly-linked list in spawn order, so that
	// iteration (Shutdown's unwind in particular) is deterministic. A map
	// would make unwind order depend on Go's randomized map iteration.
	procHead *Proc
	procTail *Proc
	live     int

	// freeProcs holds finished processes whose goroutines are parked for
	// reuse, so short-lived processes (2PC couriers, network handlers) do
	// not pay goroutine creation per spawn.
	freeProcs []*Proc

	closed bool
	rng    *RNG
	fail   interface{} // panic value propagated out of a process
}

// NewEnv returns a fresh environment whose deterministic random stream is
// derived from seed.
func NewEnv(seed uint64) *Env {
	return &Env{
		yield: make(chan struct{}),
		rng:   NewRNG(seed),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Rand returns the environment's deterministic random stream. It must only
// be used from inside simulation context (a process or a scheduled
// callback); doing so keeps draws in a deterministic order.
func (e *Env) Rand() *RNG { return e.rng }

// schedule enqueues an event delay nanoseconds from now. Zero-delay events
// take the O(1) ring fast path; they are already globally ordered by their
// fresh seq draw.
func (e *Env) schedule(delay Time, p *Proc, fn func()) {
	if delay <= 0 {
		e.seq++
		ev := event{at: e.now, seq: e.seq, proc: p, fn: fn}
		if p != nil {
			ev.gen = p.gen
		}
		e.events.pushNow(ev)
		return
	}
	e.seq++
	ev := event{at: e.now + delay, seq: e.seq, proc: p, fn: fn}
	if p != nil {
		ev.gen = p.gen
	}
	e.events.pushTimed(ev)
}

// After runs fn on the simulation timeline delay nanoseconds from now.
// fn executes in scheduler context: it must not block, but it may fire
// signals, spawn processes and schedule further callbacks. Same-instant
// callbacks (delay 0) run inline in FIFO schedule order without touching
// the timed heap.
func (e *Env) After(delay Time, fn func()) {
	e.schedule(delay, nil, fn)
}

// Spawn starts a new process executing fn and schedules it to begin at the
// current virtual time. The name is used in diagnostics only.
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	p := e.acquireProc(name, fn)
	e.schedule(0, p, nil)
	return p
}

// SpawnAfter starts a new process executing fn delay nanoseconds from now.
// The process is registered immediately (it counts as live and holds its
// spawn-order slot) but its goroutine is first resumed at the scheduled
// instant, so a process that models a message in flight costs no context
// switch until the message arrives.
//
// SpawnAfter deliberately schedules in two hops — an egress callback at the
// current instant that then schedules the process start — so it draws the
// same event sequence numbers, at the same points of the run, as the
// process-based pattern it replaces (Spawn + immediate Sleep(delay)).
// Seeded simulations therefore produce bit-identical schedules either way.
func (e *Env) SpawnAfter(delay Time, name string, fn func(p *Proc)) *Proc {
	p := e.acquireProc(name, fn)
	e.schedule(0, nil, func() { e.schedule(delay, p, nil) })
	return p
}

// Resume schedules the parked process p to continue delay nanoseconds from
// now. It is the callback-side counterpart of Proc.Park: a callback event
// computes a result and hands control back to the waiting process without
// an intermediate signal. p must be parked (or parking) on a matching
// Park call with no other pending wake-up.
func (e *Env) Resume(delay Time, p *Proc) {
	e.schedule(delay, p, nil)
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports whether an event was executed (false means the
// event queue is empty).
func (e *Env) Step() bool {
	for e.events.len() > 0 {
		ev := e.events.pop()
		if ev.proc != nil && (ev.proc.done || ev.proc.gen != ev.gen) {
			continue // stale wake-up for a finished (possibly recycled) process
		}
		e.now = ev.at
		e.executed++
		if ev.proc != nil {
			ev.proc.wake <- struct{}{}
			<-e.yield
		} else {
			ev.fn()
		}
		if e.fail != nil {
			panic(e.fail)
		}
		return true
	}
	return false
}

// Run drains the event queue completely. It returns when no events remain,
// i.e. every process is either finished or parked forever.
func (e *Env) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then sets the clock
// to deadline. Processes parked past the deadline stay parked; use Shutdown
// to unwind them.
func (e *Env) RunUntil(deadline Time) {
	for {
		at, ok := e.events.peekAt()
		if !ok || at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Shutdown unwinds every live process so their goroutines exit, in spawn
// order, so any unwind side effects happen in a reproducible order. Parked
// processes are woken and terminate by panicking with an internal sentinel
// that the process loop recovers. Pooled (already finished) goroutines are
// released as well. After Shutdown the environment must not be used
// further.
func (e *Env) Shutdown() {
	e.closed = true
	for e.procHead != nil {
		p := e.procHead
		if p.running {
			// Cannot happen: Shutdown is called from scheduler context,
			// so no process is mid-run.
			panic("sim: Shutdown while a process is running")
		}
		p.wake <- struct{}{}
		<-e.yield
	}
	for _, p := range e.freeProcs {
		p.wake <- struct{}{}
		<-e.yield
	}
	e.freeProcs = nil
	if e.fail != nil {
		panic(e.fail)
	}
}

// Live returns the number of processes that have been spawned and not yet
// finished (running or parked).
func (e *Env) Live() int { return e.live }

// Pending returns the number of queued events.
func (e *Env) Pending() int { return e.events.len() }

// Events returns the total number of events executed so far — the
// simulator's work metric. Dividing it by wall-clock time gives the
// events/sec throughput of the scheduler itself.
func (e *Env) Events() int64 { return e.executed }
