// Package sim implements a deterministic discrete-event simulator with a
// virtual nanosecond clock.
//
// The simulator is the substrate on which the whole P4DB reproduction runs:
// database worker threads, network message delays, switch pipeline latencies
// and lock waits are all modelled as events on a single virtual timeline.
// Processes are ordinary goroutines, but the scheduler runs exactly one of
// them at a time and hands control back and forth through channels, so the
// simulation is single-threaded in effect and fully deterministic for a
// given seed: contention, abort patterns and throughput numbers are exactly
// reproducible across runs and machines.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point on (or a span of) the virtual timeline, in nanoseconds.
type Time int64

// Convenient duration units on the virtual timeline.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String formats the time with an adaptive unit, e.g. "12.5µs".
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds returns the time as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// event is a single entry in the scheduler's priority queue. Exactly one of
// proc or fn is set: proc events resume a parked process, fn events run a
// callback inline in the scheduler.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among equal timestamps
	proc *Proc
	fn   func()
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Env is a simulation environment: a virtual clock plus an event queue.
// Create one with NewEnv, spawn processes with Spawn, then drive it with
// Run or RunUntil. An Env must be used from a single OS goroutine (the
// one calling Run); processes it spawns are coordinated internally.
type Env struct {
	now    Time
	seq    uint64
	events eventHeap
	yield  chan struct{}
	procs  map[*Proc]struct{}
	closed bool
	rng    *RNG
	fail   interface{} // panic value propagated out of a process
}

// NewEnv returns a fresh environment whose deterministic random stream is
// derived from seed.
func NewEnv(seed uint64) *Env {
	return &Env{
		yield: make(chan struct{}),
		procs: make(map[*Proc]struct{}),
		rng:   NewRNG(seed),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Rand returns the environment's deterministic random stream. It must only
// be used from inside simulation context (a process or a scheduled
// callback); doing so keeps draws in a deterministic order.
func (e *Env) Rand() *RNG { return e.rng }

// schedule enqueues an event delay nanoseconds from now.
func (e *Env) schedule(delay Time, p *Proc, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.seq++
	heap.Push(&e.events, &event{at: e.now + delay, seq: e.seq, proc: p, fn: fn})
}

// After runs fn on the simulation timeline delay nanoseconds from now.
// fn executes in scheduler context: it must not block, but it may fire
// signals, spawn processes and schedule further callbacks.
func (e *Env) After(delay Time, fn func()) {
	e.schedule(delay, nil, fn)
}

// Spawn starts a new process executing fn and schedules it to begin at the
// current virtual time. The name is used in diagnostics only.
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{env: e, name: name, wake: make(chan struct{})}
	e.procs[p] = struct{}{}
	go func() {
		<-p.wake
		defer func() {
			if r := recover(); r != nil && r != errStopped {
				// Re-panic on the scheduler side so the failure is not
				// swallowed inside a worker goroutine.
				p.env.fail = r
			}
			p.done = true
			delete(p.env.procs, p)
			p.env.yield <- struct{}{}
		}()
		if !e.closed {
			fn(p)
		}
	}()
	e.schedule(0, p, nil)
	return p
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports whether an event was executed (false means the
// event queue is empty).
func (e *Env) Step() bool {
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.proc != nil && ev.proc.done {
			continue // stale wake-up for a finished process
		}
		e.now = ev.at
		if ev.proc != nil {
			ev.proc.wake <- struct{}{}
			<-e.yield
		} else {
			ev.fn()
		}
		if e.fail != nil {
			panic(e.fail)
		}
		return true
	}
	return false
}

// Run drains the event queue completely. It returns when no events remain,
// i.e. every process is either finished or parked forever.
func (e *Env) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then sets the clock
// to deadline. Processes parked past the deadline stay parked; use Shutdown
// to unwind them.
func (e *Env) RunUntil(deadline Time) {
	for e.events.Len() > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Shutdown unwinds every live process so their goroutines exit. Parked
// processes are woken and terminate by panicking with an internal sentinel
// that the spawn wrapper recovers. After Shutdown the environment must not
// be used further.
func (e *Env) Shutdown() {
	e.closed = true
	for len(e.procs) > 0 {
		// Grab any live process. Wake it; its next block-point check sees
		// e.closed and unwinds.
		var p *Proc
		for q := range e.procs {
			p = q
			break
		}
		if p.running {
			// Cannot happen: Shutdown is called from scheduler context,
			// so no process is mid-run.
			panic("sim: Shutdown while a process is running")
		}
		p.wake <- struct{}{}
		<-e.yield
	}
	if e.fail != nil {
		panic(e.fail)
	}
}

// Live returns the number of processes that have been spawned and not yet
// finished (running or parked).
func (e *Env) Live() int { return len(e.procs) }

// Pending returns the number of queued events.
func (e *Env) Pending() int { return e.events.Len() }
