package sim

// RNG is a small, fast, deterministic pseudo-random generator (PCG-XSH-RR,
// 64-bit state, 32-bit output) used for all randomness in the simulation.
// The standard library's math/rand would work too, but a self-contained
// generator guarantees the byte-for-byte same stream across Go versions,
// which keeps recorded experiment outputs stable.
type RNG struct {
	state uint64
	inc   uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{inc: (seed << 1) | 1}
	r.state = seed + 0x853c49e6748fea9b
	r.Uint32()
	r.state += seed
	r.Uint32()
	return r
}

// Fork derives an independent stream; stream i from the same parent state
// is deterministic. Used to give each simulated worker its own sequence.
func (r *RNG) Fork(i uint64) *RNG {
	return NewRNG(r.Uint64() ^ (i * 0x9e3779b97f4a7c15))
}

// Uint32 returns the next 32 random bits.
func (r *RNG) Uint32() uint32 {
	old := r.state
	r.state = old*6364136223846793005 + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	return uint64(r.Uint32())<<32 | uint64(r.Uint32())
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability pct/100.
func (r *RNG) Bool(pct int) bool {
	return r.Intn(100) < pct
}

// Shuffle permutes a slice of ints in place (Fisher-Yates).
func (r *RNG) Shuffle(xs []int) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	r.Shuffle(xs)
	return xs
}
