package lock

import (
	"testing"

	"repro/internal/sim"
)

// TestPooledTxnAcquireReleaseZeroAlloc pins the pooled lock-context cycle —
// Reset, a few compatible AcquireK grants, ReleaseAll — at zero heap
// allocations. A long-lived shared holder keeps the lock entries resident
// (a fully released entry is reclaimed and would be re-allocated on the
// next acquire), matching the steady state of a hot key under load. This
// is the per-attempt locking cost on the engines' hot path.
func TestPooledTxnAcquireReleaseZeroAlloc(t *testing.T) {
	e := sim.NewEnv(1)
	tb := NewTable(e, NoWait)
	grant := func(err error) {
		if err != nil {
			t.Fatalf("compatible acquire failed: %v", err)
		}
	}
	keys := []Key{3, 7, 11, 42}
	pin := NewTxn(1) // keeps every entry alive across cycles
	for _, k := range keys {
		tb.AcquireK(pin, k, Shared, grant)
	}
	txn := NewTxn(2)
	// Warm: grow the held map and owner maps once.
	for _, k := range keys {
		tb.AcquireK(txn, k, Shared, grant)
	}
	tb.ReleaseAll(txn)
	ts := uint64(3)
	if avg := testing.AllocsPerRun(1000, func() {
		txn.Reset(ts)
		ts++
		for _, k := range keys {
			tb.AcquireK(txn, k, Shared, grant)
		}
		tb.ReleaseAll(txn)
	}); avg != 0 {
		t.Fatalf("pooled lock cycle allocates %.2f objects/op, want 0", avg)
	}
}
