package lock

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

func TestSharedLocksCoexist(t *testing.T) {
	e := sim.NewEnv(1)
	tb := NewTable(e, NoWait)
	t1, t2 := NewTxn(1), NewTxn(2)
	e.Spawn("p", func(p *sim.Proc) {
		if err := tb.Acquire(p, t1, 10, Shared); err != nil {
			t.Errorf("t1: %v", err)
		}
		if err := tb.Acquire(p, t2, 10, Shared); err != nil {
			t.Errorf("t2: %v", err)
		}
		if tb.Owners(10) != 2 {
			t.Errorf("owners = %d, want 2", tb.Owners(10))
		}
	})
	e.Run()
}

func TestExclusiveConflictsNoWait(t *testing.T) {
	e := sim.NewEnv(1)
	tb := NewTable(e, NoWait)
	t1, t2 := NewTxn(1), NewTxn(2)
	e.Spawn("p", func(p *sim.Proc) {
		if err := tb.Acquire(p, t1, 10, Exclusive); err != nil {
			t.Errorf("t1: %v", err)
		}
		err := tb.Acquire(p, t2, 10, Exclusive)
		if !errors.Is(err, ErrAbort) || !errors.Is(err, ErrConflict) {
			t.Errorf("t2 err = %v, want ErrConflict", err)
		}
		err = tb.Acquire(p, t2, 10, Shared)
		if !errors.Is(err, ErrConflict) {
			t.Errorf("t2 shared err = %v, want ErrConflict", err)
		}
	})
	e.Run()
}

func TestReacquireIsNoop(t *testing.T) {
	e := sim.NewEnv(1)
	tb := NewTable(e, NoWait)
	t1 := NewTxn(1)
	e.Spawn("p", func(p *sim.Proc) {
		if err := tb.Acquire(p, t1, 5, Exclusive); err != nil {
			t.Fatal(err)
		}
		if err := tb.Acquire(p, t1, 5, Exclusive); err != nil {
			t.Errorf("re-acquire X: %v", err)
		}
		if err := tb.Acquire(p, t1, 5, Shared); err != nil {
			t.Errorf("S after X: %v", err)
		}
		if t1.NumHeld() != 1 {
			t.Errorf("NumHeld = %d, want 1", t1.NumHeld())
		}
	})
	e.Run()
}

func TestUpgradeSoleOwner(t *testing.T) {
	e := sim.NewEnv(1)
	tb := NewTable(e, NoWait)
	t1 := NewTxn(1)
	e.Spawn("p", func(p *sim.Proc) {
		if err := tb.Acquire(p, t1, 5, Shared); err != nil {
			t.Fatal(err)
		}
		if err := tb.Acquire(p, t1, 5, Exclusive); err != nil {
			t.Errorf("sole-owner upgrade failed: %v", err)
		}
		if m, _ := t1.Holds(5); m != Exclusive {
			t.Errorf("mode = %v, want X", m)
		}
	})
	e.Run()
}

func TestUpgradeConflictNoWait(t *testing.T) {
	e := sim.NewEnv(1)
	tb := NewTable(e, NoWait)
	t1, t2 := NewTxn(1), NewTxn(2)
	e.Spawn("p", func(p *sim.Proc) {
		_ = tb.Acquire(p, t1, 5, Shared)
		_ = tb.Acquire(p, t2, 5, Shared)
		if err := tb.Acquire(p, t1, 5, Exclusive); !errors.Is(err, ErrConflict) {
			t.Errorf("upgrade with co-owner: %v, want conflict", err)
		}
	})
	e.Run()
}

func TestReleaseAllFreesLocks(t *testing.T) {
	e := sim.NewEnv(1)
	tb := NewTable(e, NoWait)
	t1, t2 := NewTxn(1), NewTxn(2)
	e.Spawn("p", func(p *sim.Proc) {
		_ = tb.Acquire(p, t1, 1, Exclusive)
		_ = tb.Acquire(p, t1, 2, Shared)
		tb.ReleaseAll(t1)
		if t1.NumHeld() != 0 {
			t.Errorf("NumHeld = %d after release", t1.NumHeld())
		}
		if err := tb.Acquire(p, t2, 1, Exclusive); err != nil {
			t.Errorf("lock not freed: %v", err)
		}
	})
	e.Run()
}

func TestWaitDieOlderWaits(t *testing.T) {
	e := sim.NewEnv(1)
	tb := NewTable(e, WaitDie)
	old, young := NewTxn(1), NewTxn(2)
	var grantedAt sim.Time
	e.Spawn("young", func(p *sim.Proc) {
		if err := tb.Acquire(p, young, 7, Exclusive); err != nil {
			t.Errorf("young: %v", err)
		}
		p.Sleep(100)
		tb.ReleaseAll(young)
	})
	e.Spawn("old", func(p *sim.Proc) {
		p.Sleep(10) // let young take the lock first
		if err := tb.Acquire(p, old, 7, Exclusive); err != nil {
			t.Errorf("old should wait, got %v", err)
		}
		grantedAt = p.Now()
	})
	e.Run()
	if grantedAt != 100 {
		t.Fatalf("old granted at %v, want 100 (young's release)", grantedAt)
	}
}

func TestWaitDieYoungerDies(t *testing.T) {
	e := sim.NewEnv(1)
	tb := NewTable(e, WaitDie)
	old, young := NewTxn(1), NewTxn(2)
	e.Spawn("p", func(p *sim.Proc) {
		if err := tb.Acquire(p, old, 7, Exclusive); err != nil {
			t.Fatal(err)
		}
		err := tb.Acquire(p, young, 7, Exclusive)
		if !errors.Is(err, ErrDie) {
			t.Errorf("young err = %v, want ErrDie", err)
		}
	})
	e.Run()
}

func TestWaitDieNeverDeadlocks(t *testing.T) {
	// Many transactions locking overlapping key pairs in opposite orders:
	// with WAIT_DIE the simulation must always drain (no deadlock leaves
	// parked processes, which Run would expose as a non-empty Live set).
	e := sim.NewEnv(17)
	tb := NewTable(e, WaitDie)
	var ts uint64
	committed := 0
	for w := 0; w < 16; w++ {
		rng := e.Rand().Fork(uint64(w))
		e.Spawn("w", func(p *sim.Proc) {
			for i := 0; i < 50; i++ {
				ts++
				txn := NewTxn(ts)
				k1 := Key(rng.Intn(5))
				k2 := Key(rng.Intn(5))
				ok := true
				if err := tb.Acquire(p, txn, k1, Exclusive); err != nil {
					ok = false
				}
				if ok {
					p.Sleep(sim.Time(rng.Intn(50)))
					if err := tb.Acquire(p, txn, k2, Exclusive); err != nil {
						ok = false
					}
				}
				if ok {
					p.Sleep(sim.Time(rng.Intn(50)))
					committed++
				}
				tb.ReleaseAll(txn)
				p.Sleep(sim.Time(rng.Intn(20)))
			}
		})
	}
	e.Run()
	if e.Live() != 0 {
		t.Fatalf("%d processes still parked: deadlock", e.Live())
	}
	if committed == 0 {
		t.Fatal("nothing committed")
	}
	if tb.Stats.Aborts == 0 {
		t.Fatal("expected some WAIT_DIE aborts under contention")
	}
}

func TestMutualExclusionInvariant(t *testing.T) {
	// Property: at no instant do two transactions hold X on the same key.
	// We track a critical-section counter guarded by the lock.
	for _, pol := range []Policy{NoWait, WaitDie} {
		e := sim.NewEnv(23)
		tb := NewTable(e, pol)
		inCS := 0
		var ts uint64
		violations := 0
		for w := 0; w < 12; w++ {
			rng := e.Rand().Fork(uint64(w))
			e.Spawn("w", func(p *sim.Proc) {
				for i := 0; i < 40; i++ {
					ts++
					txn := NewTxn(ts)
					if err := tb.Acquire(p, txn, 1, Exclusive); err == nil {
						inCS++
						if inCS > 1 {
							violations++
						}
						p.Sleep(sim.Time(rng.Intn(30) + 1))
						inCS--
					}
					tb.ReleaseAll(txn)
					p.Sleep(sim.Time(rng.Intn(10)))
				}
			})
		}
		e.Run()
		if violations > 0 {
			t.Fatalf("policy %v: %d mutual-exclusion violations", pol, violations)
		}
	}
}

func TestWaitersGrantedFIFO(t *testing.T) {
	e := sim.NewEnv(1)
	tb := NewTable(e, WaitDie)
	holder := NewTxn(100)
	var order []int
	e.Spawn("holder", func(p *sim.Proc) {
		_ = tb.Acquire(p, holder, 9, Exclusive)
		p.Sleep(1000)
		tb.ReleaseAll(holder)
	})
	for i := 0; i < 3; i++ {
		i := i
		txn := NewTxn(uint64(i + 1)) // older than holder -> waits
		e.Spawn("waiter", func(p *sim.Proc) {
			p.Sleep(sim.Time(10 * (i + 1))) // arrive in order 0,1,2
			if err := tb.Acquire(p, txn, 9, Exclusive); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			order = append(order, i)
			p.Sleep(5)
			tb.ReleaseAll(txn)
		})
	}
	e.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("grant order = %v, want [0 1 2]", order)
	}
}

func TestSharedWaitersGrantedTogether(t *testing.T) {
	e := sim.NewEnv(1)
	tb := NewTable(e, WaitDie)
	holder := NewTxn(100)
	var grantTimes []sim.Time
	e.Spawn("holder", func(p *sim.Proc) {
		_ = tb.Acquire(p, holder, 9, Exclusive)
		p.Sleep(500)
		tb.ReleaseAll(holder)
	})
	for i := 0; i < 3; i++ {
		txn := NewTxn(uint64(i + 1))
		e.Spawn("reader", func(p *sim.Proc) {
			p.Sleep(10)
			if err := tb.Acquire(p, txn, 9, Shared); err != nil {
				t.Errorf("reader: %v", err)
				return
			}
			grantTimes = append(grantTimes, p.Now())
		})
	}
	e.Run()
	if len(grantTimes) != 3 {
		t.Fatalf("grants = %d, want 3", len(grantTimes))
	}
	for _, g := range grantTimes {
		if g != 500 {
			t.Fatalf("shared waiters not granted together: %v", grantTimes)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	if p, err := ParsePolicy("NO_WAIT"); err != nil || p != NoWait {
		t.Fatalf("NO_WAIT: %v %v", p, err)
	}
	if p, err := ParsePolicy("WAIT_DIE"); err != nil || p != WaitDie {
		t.Fatalf("WAIT_DIE: %v %v", p, err)
	}
	if _, err := ParsePolicy("2PL"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestStatsCounting(t *testing.T) {
	e := sim.NewEnv(1)
	tb := NewTable(e, NoWait)
	t1, t2 := NewTxn(1), NewTxn(2)
	e.Spawn("p", func(p *sim.Proc) {
		_ = tb.Acquire(p, t1, 1, Exclusive)
		_ = tb.Acquire(p, t2, 1, Exclusive) // conflict + abort
	})
	e.Run()
	if tb.Stats.Acquired != 1 || tb.Stats.Conflicts != 1 || tb.Stats.Aborts != 1 {
		t.Fatalf("stats = %+v", tb.Stats)
	}
}

func TestEntryGarbageCollected(t *testing.T) {
	e := sim.NewEnv(1)
	tb := NewTable(e, NoWait)
	t1 := NewTxn(1)
	e.Spawn("p", func(p *sim.Proc) {
		_ = tb.Acquire(p, t1, 1, Exclusive)
		tb.ReleaseAll(t1)
	})
	e.Run()
	if len(tb.entries) != 0 {
		t.Fatalf("entries leaked: %d", len(tb.entries))
	}
}
