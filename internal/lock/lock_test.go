package lock

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

func TestSharedLocksCoexist(t *testing.T) {
	e := sim.NewEnv(1)
	tb := NewTable(e, NoWait)
	t1, t2 := NewTxn(1), NewTxn(2)
	e.Spawn("p", func(p *sim.Proc) {
		if err := tb.Acquire(p, t1, 10, Shared); err != nil {
			t.Errorf("t1: %v", err)
		}
		if err := tb.Acquire(p, t2, 10, Shared); err != nil {
			t.Errorf("t2: %v", err)
		}
		if tb.Owners(10) != 2 {
			t.Errorf("owners = %d, want 2", tb.Owners(10))
		}
	})
	e.Run()
}

func TestExclusiveConflictsNoWait(t *testing.T) {
	e := sim.NewEnv(1)
	tb := NewTable(e, NoWait)
	t1, t2 := NewTxn(1), NewTxn(2)
	e.Spawn("p", func(p *sim.Proc) {
		if err := tb.Acquire(p, t1, 10, Exclusive); err != nil {
			t.Errorf("t1: %v", err)
		}
		err := tb.Acquire(p, t2, 10, Exclusive)
		if !errors.Is(err, ErrAbort) || !errors.Is(err, ErrConflict) {
			t.Errorf("t2 err = %v, want ErrConflict", err)
		}
		err = tb.Acquire(p, t2, 10, Shared)
		if !errors.Is(err, ErrConflict) {
			t.Errorf("t2 shared err = %v, want ErrConflict", err)
		}
	})
	e.Run()
}

func TestReacquireIsNoop(t *testing.T) {
	e := sim.NewEnv(1)
	tb := NewTable(e, NoWait)
	t1 := NewTxn(1)
	e.Spawn("p", func(p *sim.Proc) {
		if err := tb.Acquire(p, t1, 5, Exclusive); err != nil {
			t.Fatal(err)
		}
		if err := tb.Acquire(p, t1, 5, Exclusive); err != nil {
			t.Errorf("re-acquire X: %v", err)
		}
		if err := tb.Acquire(p, t1, 5, Shared); err != nil {
			t.Errorf("S after X: %v", err)
		}
		if t1.NumHeld() != 1 {
			t.Errorf("NumHeld = %d, want 1", t1.NumHeld())
		}
	})
	e.Run()
}

func TestUpgradeSoleOwner(t *testing.T) {
	e := sim.NewEnv(1)
	tb := NewTable(e, NoWait)
	t1 := NewTxn(1)
	e.Spawn("p", func(p *sim.Proc) {
		if err := tb.Acquire(p, t1, 5, Shared); err != nil {
			t.Fatal(err)
		}
		if err := tb.Acquire(p, t1, 5, Exclusive); err != nil {
			t.Errorf("sole-owner upgrade failed: %v", err)
		}
		if m, _ := t1.Holds(5); m != Exclusive {
			t.Errorf("mode = %v, want X", m)
		}
	})
	e.Run()
}

func TestUpgradeConflictNoWait(t *testing.T) {
	e := sim.NewEnv(1)
	tb := NewTable(e, NoWait)
	t1, t2 := NewTxn(1), NewTxn(2)
	e.Spawn("p", func(p *sim.Proc) {
		_ = tb.Acquire(p, t1, 5, Shared)
		_ = tb.Acquire(p, t2, 5, Shared)
		if err := tb.Acquire(p, t1, 5, Exclusive); !errors.Is(err, ErrConflict) {
			t.Errorf("upgrade with co-owner: %v, want conflict", err)
		}
	})
	e.Run()
}

func TestReleaseAllFreesLocks(t *testing.T) {
	e := sim.NewEnv(1)
	tb := NewTable(e, NoWait)
	t1, t2 := NewTxn(1), NewTxn(2)
	e.Spawn("p", func(p *sim.Proc) {
		_ = tb.Acquire(p, t1, 1, Exclusive)
		_ = tb.Acquire(p, t1, 2, Shared)
		tb.ReleaseAll(t1)
		if t1.NumHeld() != 0 {
			t.Errorf("NumHeld = %d after release", t1.NumHeld())
		}
		if err := tb.Acquire(p, t2, 1, Exclusive); err != nil {
			t.Errorf("lock not freed: %v", err)
		}
	})
	e.Run()
}

func TestWaitDieOlderWaits(t *testing.T) {
	e := sim.NewEnv(1)
	tb := NewTable(e, WaitDie)
	old, young := NewTxn(1), NewTxn(2)
	var grantedAt sim.Time
	e.Spawn("young", func(p *sim.Proc) {
		if err := tb.Acquire(p, young, 7, Exclusive); err != nil {
			t.Errorf("young: %v", err)
		}
		p.Sleep(100)
		tb.ReleaseAll(young)
	})
	e.Spawn("old", func(p *sim.Proc) {
		p.Sleep(10) // let young take the lock first
		if err := tb.Acquire(p, old, 7, Exclusive); err != nil {
			t.Errorf("old should wait, got %v", err)
		}
		grantedAt = p.Now()
	})
	e.Run()
	if grantedAt != 100 {
		t.Fatalf("old granted at %v, want 100 (young's release)", grantedAt)
	}
}

func TestWaitDieYoungerDies(t *testing.T) {
	e := sim.NewEnv(1)
	tb := NewTable(e, WaitDie)
	old, young := NewTxn(1), NewTxn(2)
	e.Spawn("p", func(p *sim.Proc) {
		if err := tb.Acquire(p, old, 7, Exclusive); err != nil {
			t.Fatal(err)
		}
		err := tb.Acquire(p, young, 7, Exclusive)
		if !errors.Is(err, ErrDie) {
			t.Errorf("young err = %v, want ErrDie", err)
		}
	})
	e.Run()
}

func TestWaitDieNeverDeadlocks(t *testing.T) {
	// Many transactions locking overlapping key pairs in opposite orders:
	// with WAIT_DIE the simulation must always drain (no deadlock leaves
	// parked processes, which Run would expose as a non-empty Live set).
	e := sim.NewEnv(17)
	tb := NewTable(e, WaitDie)
	var ts uint64
	committed := 0
	for w := 0; w < 16; w++ {
		rng := e.Rand().Fork(uint64(w))
		e.Spawn("w", func(p *sim.Proc) {
			for i := 0; i < 50; i++ {
				ts++
				txn := NewTxn(ts)
				k1 := Key(rng.Intn(5))
				k2 := Key(rng.Intn(5))
				ok := true
				if err := tb.Acquire(p, txn, k1, Exclusive); err != nil {
					ok = false
				}
				if ok {
					p.Sleep(sim.Time(rng.Intn(50)))
					if err := tb.Acquire(p, txn, k2, Exclusive); err != nil {
						ok = false
					}
				}
				if ok {
					p.Sleep(sim.Time(rng.Intn(50)))
					committed++
				}
				tb.ReleaseAll(txn)
				p.Sleep(sim.Time(rng.Intn(20)))
			}
		})
	}
	e.Run()
	if e.Live() != 0 {
		t.Fatalf("%d processes still parked: deadlock", e.Live())
	}
	if committed == 0 {
		t.Fatal("nothing committed")
	}
	if tb.Stats.Aborts == 0 {
		t.Fatal("expected some WAIT_DIE aborts under contention")
	}
}

func TestMutualExclusionInvariant(t *testing.T) {
	// Property: at no instant do two transactions hold X on the same key.
	// We track a critical-section counter guarded by the lock.
	for _, pol := range []Policy{NoWait, WaitDie} {
		e := sim.NewEnv(23)
		tb := NewTable(e, pol)
		inCS := 0
		var ts uint64
		violations := 0
		for w := 0; w < 12; w++ {
			rng := e.Rand().Fork(uint64(w))
			e.Spawn("w", func(p *sim.Proc) {
				for i := 0; i < 40; i++ {
					ts++
					txn := NewTxn(ts)
					if err := tb.Acquire(p, txn, 1, Exclusive); err == nil {
						inCS++
						if inCS > 1 {
							violations++
						}
						p.Sleep(sim.Time(rng.Intn(30) + 1))
						inCS--
					}
					tb.ReleaseAll(txn)
					p.Sleep(sim.Time(rng.Intn(10)))
				}
			})
		}
		e.Run()
		if violations > 0 {
			t.Fatalf("policy %v: %d mutual-exclusion violations", pol, violations)
		}
	}
}

func TestWaitersGrantedFIFO(t *testing.T) {
	e := sim.NewEnv(1)
	tb := NewTable(e, WaitDie)
	holder := NewTxn(100)
	var order []int
	e.Spawn("holder", func(p *sim.Proc) {
		_ = tb.Acquire(p, holder, 9, Exclusive)
		p.Sleep(1000)
		tb.ReleaseAll(holder)
	})
	for i := 0; i < 3; i++ {
		i := i
		txn := NewTxn(uint64(i + 1)) // older than holder -> waits
		e.Spawn("waiter", func(p *sim.Proc) {
			p.Sleep(sim.Time(10 * (i + 1))) // arrive in order 0,1,2
			if err := tb.Acquire(p, txn, 9, Exclusive); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			order = append(order, i)
			p.Sleep(5)
			tb.ReleaseAll(txn)
		})
	}
	e.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("grant order = %v, want [0 1 2]", order)
	}
}

func TestSharedWaitersGrantedTogether(t *testing.T) {
	e := sim.NewEnv(1)
	tb := NewTable(e, WaitDie)
	holder := NewTxn(100)
	var grantTimes []sim.Time
	e.Spawn("holder", func(p *sim.Proc) {
		_ = tb.Acquire(p, holder, 9, Exclusive)
		p.Sleep(500)
		tb.ReleaseAll(holder)
	})
	for i := 0; i < 3; i++ {
		txn := NewTxn(uint64(i + 1))
		e.Spawn("reader", func(p *sim.Proc) {
			p.Sleep(10)
			if err := tb.Acquire(p, txn, 9, Shared); err != nil {
				t.Errorf("reader: %v", err)
				return
			}
			grantTimes = append(grantTimes, p.Now())
		})
	}
	e.Run()
	if len(grantTimes) != 3 {
		t.Fatalf("grants = %d, want 3", len(grantTimes))
	}
	for _, g := range grantTimes {
		if g != 500 {
			t.Fatalf("shared waiters not granted together: %v", grantTimes)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	if p, err := ParsePolicy("NO_WAIT"); err != nil || p != NoWait {
		t.Fatalf("NO_WAIT: %v %v", p, err)
	}
	if p, err := ParsePolicy("WAIT_DIE"); err != nil || p != WaitDie {
		t.Fatalf("WAIT_DIE: %v %v", p, err)
	}
	if _, err := ParsePolicy("2PL"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestStatsCounting(t *testing.T) {
	e := sim.NewEnv(1)
	tb := NewTable(e, NoWait)
	t1, t2 := NewTxn(1), NewTxn(2)
	e.Spawn("p", func(p *sim.Proc) {
		_ = tb.Acquire(p, t1, 1, Exclusive)
		_ = tb.Acquire(p, t2, 1, Exclusive) // conflict + abort
	})
	e.Run()
	if tb.Stats.Acquired != 1 || tb.Stats.Conflicts != 1 || tb.Stats.Aborts != 1 {
		t.Fatalf("stats = %+v", tb.Stats)
	}
}

func TestEntryGarbageCollected(t *testing.T) {
	e := sim.NewEnv(1)
	tb := NewTable(e, NoWait)
	t1 := NewTxn(1)
	e.Spawn("p", func(p *sim.Proc) {
		_ = tb.Acquire(p, t1, 1, Exclusive)
		tb.ReleaseAll(t1)
	})
	e.Run()
	if len(tb.entries) != 0 {
		t.Fatalf("entries leaked: %d", len(tb.entries))
	}
}

func TestAcquireWaitNeverAborts(t *testing.T) {
	// AcquireWait must wait FIFO regardless of the table's policy — here
	// NO_WAIT, which would abort a plain Acquire immediately.
	e := sim.NewEnv(1)
	tb := NewTable(e, NoWait)
	t1, t2 := NewTxn(1), NewTxn(2)
	var got []int
	e.Spawn("holder", func(p *sim.Proc) {
		tb.AcquireWait(p, t1, 10, Exclusive)
		p.Sleep(5 * sim.Microsecond)
		got = append(got, 1)
		tb.ReleaseAll(t1)
	})
	e.Spawn("waiter", func(p *sim.Proc) {
		p.Sleep(1 * sim.Microsecond)
		tb.AcquireWait(p, t2, 10, Exclusive)
		got = append(got, 2)
		if _, held := t2.Holds(10); !held {
			t.Error("waiter resumed without holding the lock")
		}
		tb.ReleaseAll(t2)
	})
	e.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("execution order = %v, want [1 2] (waiter granted on release)", got)
	}
	if tb.Stats.Aborts != 0 {
		t.Fatalf("AcquireWait recorded %d aborts, want 0", tb.Stats.Aborts)
	}
}

func TestAcquireWaitFIFOOrderAndNoOvertaking(t *testing.T) {
	// A compatible (shared) request arriving behind a queued exclusive
	// waiter must queue FIFO instead of overtaking it: grant order is
	// arrival order, which keeps deterministic schedules reproducible.
	e := sim.NewEnv(1)
	tb := NewTable(e, WaitDie)
	holder, xreq, sreq := NewTxn(1), NewTxn(2), NewTxn(3)
	var got []int
	e.Spawn("holder", func(p *sim.Proc) {
		tb.AcquireWait(p, holder, 7, Shared)
		p.Sleep(10 * sim.Microsecond)
		tb.ReleaseAll(holder)
	})
	e.Spawn("exclusive", func(p *sim.Proc) {
		p.Sleep(1 * sim.Microsecond)
		tb.AcquireWait(p, xreq, 7, Exclusive)
		got = append(got, 2)
		p.Sleep(1 * sim.Microsecond)
		tb.ReleaseAll(xreq)
	})
	e.Spawn("shared", func(p *sim.Proc) {
		p.Sleep(2 * sim.Microsecond)
		// Compatible with the shared holder, but behind the exclusive
		// waiter in the queue.
		tb.AcquireWait(p, sreq, 7, Shared)
		got = append(got, 3)
		tb.ReleaseAll(sreq)
	})
	e.Run()
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("grant order = %v, want [2 3] (FIFO, no overtaking)", got)
	}
}

func TestAcquireWaitReacquireIsNoopAndUpgradePanics(t *testing.T) {
	e := sim.NewEnv(1)
	tb := NewTable(e, NoWait)
	t1 := NewTxn(1)
	e.Spawn("p", func(p *sim.Proc) {
		tb.AcquireWait(p, t1, 5, Exclusive)
		tb.AcquireWait(p, t1, 5, Exclusive) // no-op
		tb.AcquireWait(p, t1, 5, Shared)    // weaker: no-op
		if tb.Owners(5) != 1 {
			t.Errorf("owners = %d, want 1", tb.Owners(5))
		}
		tb.AcquireWait(p, t1, 6, Shared)
		defer func() {
			if recover() == nil {
				t.Error("S->X upgrade via AcquireWait did not panic")
			}
		}()
		tb.AcquireWait(p, t1, 6, Exclusive)
	})
	e.Run()
}

func TestReleaseAllOrderedGrantsInKeyOrder(t *testing.T) {
	// One transaction holds several contended keys; on ordered release the
	// waiters must be woken in ascending key order, independent of map
	// iteration order. (This is what keeps calvin schedules seeded-stable.)
	e := sim.NewEnv(1)
	tb := NewTable(e, NoWait)
	holder := NewTxn(1)
	keys := []Key{40, 10, 30, 20}
	var woken []Key
	e.Spawn("holder", func(p *sim.Proc) {
		for _, k := range keys {
			tb.AcquireWait(p, holder, k, Exclusive)
		}
		p.Sleep(5 * sim.Microsecond)
		tb.ReleaseAllOrdered(holder)
		if holder.NumHeld() != 0 {
			t.Errorf("holder still holds %d locks after ReleaseAllOrdered", holder.NumHeld())
		}
	})
	for i, k := range keys {
		k := k
		w := NewTxn(uint64(10 + i))
		e.Spawn("waiter", func(p *sim.Proc) {
			p.Sleep(1 * sim.Microsecond)
			tb.AcquireWait(p, w, k, Exclusive)
			woken = append(woken, k)
			tb.ReleaseAll(w)
		})
	}
	e.Run()
	want := []Key{10, 20, 30, 40}
	if len(woken) != len(want) {
		t.Fatalf("woke %d waiters, want %d", len(woken), len(want))
	}
	for i := range want {
		if woken[i] != want[i] {
			t.Fatalf("wake order = %v, want %v (ascending keys)", woken, want)
		}
	}
}
