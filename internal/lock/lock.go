// Package lock implements the per-node two-phase-locking concurrency
// control of P4DB's host DBMS: a pessimistic lock table with the two
// deadlock-prevention policies the paper evaluates, NO_WAIT (abort
// immediately on any lock conflict) and WAIT_DIE (a transaction waits only
// for locks owned by younger transactions, otherwise it aborts).
//
// The table is driven by the discrete-event simulator: waiting blocks the
// calling process on a signal that the releasing transaction fires, so
// lock hold times and queueing delays appear on the virtual timeline
// exactly as they would on a real node.
package lock

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Mode is a lock mode.
type Mode int

// Lock modes.
const (
	Shared Mode = iota
	Exclusive
)

func (m Mode) String() string {
	if m == Exclusive {
		return "X"
	}
	return "S"
}

// Policy selects the deadlock-prevention scheme.
type Policy int

// Policies.
const (
	// NoWait aborts a transaction as soon as a lock request is denied.
	NoWait Policy = iota
	// WaitDie lets a transaction wait only if every conflicting owner is
	// younger (has a larger timestamp); otherwise the requester dies.
	WaitDie
)

func (p Policy) String() string {
	if p == WaitDie {
		return "WAIT_DIE"
	}
	return "NO_WAIT"
}

// ParsePolicy converts the paper's spelling to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "NO_WAIT", "no_wait", "nowait":
		return NoWait, nil
	case "WAIT_DIE", "wait_die", "waitdie":
		return WaitDie, nil
	}
	return 0, fmt.Errorf("lock: unknown policy %q", s)
}

// Key identifies a lockable object; callers encode table and primary key.
type Key uint64

// Abort reasons. Both satisfy errors.Is(err, ErrAbort).
var (
	ErrAbort    = errors.New("lock: transaction must abort")
	ErrConflict = fmt.Errorf("%w: NO_WAIT conflict", ErrAbort)
	ErrDie      = fmt.Errorf("%w: WAIT_DIE die", ErrAbort)
)

// Txn is a transaction's lock context: its age timestamp and the set of
// keys it holds. Timestamps must be unique across the whole cluster
// (the paper assigns them at transaction start).
type Txn struct {
	TS   uint64
	held map[Key]Mode
}

// NewTxn creates a lock context with the given unique timestamp.
func NewTxn(ts uint64) *Txn {
	return &Txn{TS: ts, held: make(map[Key]Mode, 8)}
}

// Reset re-arms a lock context for reuse under a new timestamp, keeping the
// held map's capacity. The engines pool Txn values per worker so that
// steady-state execution does not allocate a lock context per attempt.
func (t *Txn) Reset(ts uint64) {
	t.TS = ts
	clear(t.held)
}

// Holds reports the mode the transaction holds on key (and whether any).
func (t *Txn) Holds(key Key) (Mode, bool) {
	m, ok := t.held[key]
	return m, ok
}

// NumHeld returns the number of locks held.
func (t *Txn) NumHeld() int { return len(t.held) }

// waiter is one queued lock request. Exactly one of sig (process waiter,
// woken via Signal.Fire) or wake (continuation waiter, scheduled as a
// same-instant callback) is set; both cost one scheduled event per grant, so
// the two styles produce identical seeded schedules.
type waiter struct {
	txn  *Txn
	mode Mode
	sig  *sim.Signal
	wake func()
}

type entry struct {
	owners  map[*Txn]Mode
	waiters []*waiter
}

// Stats counts lock-table events.
type Stats struct {
	Acquired  int64
	Conflicts int64 // denied or waited requests
	Waits     int64 // requests that waited (WAIT_DIE only)
	Aborts    int64 // requests that returned an abort error
}

// Table is one node's lock table.
type Table struct {
	env     *sim.Env
	policy  Policy
	entries map[Key]*entry

	// free recycles entry structs (and their owner maps) released when a
	// key's last lock drops: the serving-mode request path acquires and
	// releases locks on fresh keys every transaction, and re-allocating
	// an entry per key would dominate its allocation profile.
	free []*entry

	// Stats is exported for benchmarks.
	Stats Stats
}

// getEntry pops a pooled entry or allocates the first time.
func (tb *Table) getEntry() *entry {
	if n := len(tb.free); n > 0 {
		e := tb.free[n-1]
		tb.free = tb.free[:n-1]
		return e
	}
	return &entry{owners: make(map[*Txn]Mode, 2)}
}

// NewTable creates an empty lock table with the given policy.
func NewTable(env *sim.Env, policy Policy) *Table {
	return &Table{env: env, policy: policy, entries: make(map[Key]*entry)}
}

// Policy returns the table's deadlock-prevention policy.
func (tb *Table) Policy() Policy { return tb.policy }

// compatible reports whether a request of mode m by txn conflicts with the
// current owners (ignoring txn's own holding, which is an upgrade).
func compatible(e *entry, txn *Txn, m Mode) bool {
	for o, om := range e.owners {
		if o == txn {
			continue
		}
		if m == Exclusive || om == Exclusive {
			return false
		}
	}
	return true
}

// olderThanAllConflicting reports whether txn's timestamp precedes every
// conflicting owner's (the WAIT_DIE wait condition).
func olderThanAllConflicting(e *entry, txn *Txn, m Mode) bool {
	for o, om := range e.owners {
		if o == txn {
			continue
		}
		if m == Exclusive || om == Exclusive {
			if txn.TS >= o.TS {
				return false
			}
		}
	}
	return true
}

// Acquire requests key in mode m for txn, blocking the calling process if
// the policy allows waiting. It returns nil on grant or an abort error
// (ErrConflict / ErrDie) the caller must translate into a transaction
// abort. Re-acquiring a held lock in the same or weaker mode is a no-op;
// Shared->Exclusive upgrades follow the same conflict rules.
func (tb *Table) Acquire(p *sim.Proc, txn *Txn, key Key, m Mode) error {
	if held, ok := txn.held[key]; ok && (held == Exclusive || m == Shared) {
		return nil // already sufficient
	}
	e := tb.entries[key]
	if e == nil {
		e = tb.getEntry()
		tb.entries[key] = e
	}
	if compatible(e, txn, m) {
		e.owners[txn] = m
		txn.held[key] = m
		tb.Stats.Acquired++
		return nil
	}
	tb.Stats.Conflicts++
	if tb.policy == NoWait {
		tb.Stats.Aborts++
		return ErrConflict
	}
	// WAIT_DIE: wait only on younger owners.
	if !olderThanAllConflicting(e, txn, m) {
		tb.Stats.Aborts++
		return ErrDie
	}
	tb.Stats.Waits++
	w := &waiter{txn: txn, mode: m, sig: tb.env.NewSignal()}
	e.waiters = append(e.waiters, w)
	if err := p.AwaitErr(w.sig); err != nil {
		tb.Stats.Aborts++
		return err
	}
	// The releaser already installed us as owner before firing.
	return nil
}

// AcquireK is the continuation form of Acquire: instead of blocking a
// process, it invokes k with the grant result — inline when the request is
// decided immediately (grant or abort error), or as a same-instant callback
// scheduled by the releasing transaction when the request waits. The wake-up
// event sits exactly where a process waiter's Signal.Fire wake-up would, so
// seeded schedules are identical across the two forms.
func (tb *Table) AcquireK(txn *Txn, key Key, m Mode, k func(error)) {
	if held, ok := txn.held[key]; ok && (held == Exclusive || m == Shared) {
		k(nil) // already sufficient
		return
	}
	e := tb.entries[key]
	if e == nil {
		e = tb.getEntry()
		tb.entries[key] = e
	}
	if compatible(e, txn, m) {
		e.owners[txn] = m
		txn.held[key] = m
		tb.Stats.Acquired++
		k(nil)
		return
	}
	tb.Stats.Conflicts++
	if tb.policy == NoWait {
		tb.Stats.Aborts++
		k(ErrConflict)
		return
	}
	// WAIT_DIE: wait only on younger owners.
	if !olderThanAllConflicting(e, txn, m) {
		tb.Stats.Aborts++
		k(ErrDie)
		return
	}
	tb.Stats.Waits++
	w := &waiter{txn: txn, mode: m}
	w.wake = func() { k(nil) } // the releaser installs us as owner before waking
	e.waiters = append(e.waiters, w)
}

// AcquireWait requests key in mode m for txn and always waits — FIFO,
// behind the current owners and every queued waiter — regardless of the
// table's deadlock-prevention policy. It never returns an abort: it is the
// acquisition primitive of deterministic (Calvin-style) locking, where the
// caller guarantees deadlock freedom externally by acquiring its entire
// pre-declared lock set in one global key order. With ordered acquisition
// a waiter only ever holds keys smaller than the one it waits on, so every
// waits-for chain runs strictly uphill and can never close into a cycle —
// no waits-for graph, no deadlock detection, no aborts.
//
// Callers must request each key once, in its strongest mode (ordered
// acquisition forbids the Shared->Exclusive upgrade, which waits on a key
// already held); re-requesting a key in the same or weaker mode stays a
// no-op for convenience.
func (tb *Table) AcquireWait(p *sim.Proc, txn *Txn, key Key, m Mode) {
	if held, ok := txn.held[key]; ok {
		if held == Exclusive || m == Shared {
			return // already sufficient
		}
		panic("lock: AcquireWait upgrade would deadlock; request the strongest mode first")
	}
	e := tb.entries[key]
	if e == nil {
		e = tb.getEntry()
		tb.entries[key] = e
	}
	// Join the FIFO queue even when compatible with the owners if anyone
	// is already waiting: overtaking a queued Exclusive request would
	// starve it and make grant order depend on arrival timing.
	if len(e.waiters) == 0 && compatible(e, txn, m) {
		e.owners[txn] = m
		txn.held[key] = m
		tb.Stats.Acquired++
		return
	}
	tb.Stats.Conflicts++
	tb.Stats.Waits++
	w := &waiter{txn: txn, mode: m, sig: tb.env.NewSignal()}
	e.waiters = append(e.waiters, w)
	// The releaser installs us as owner before firing (see grantWaiters).
	p.Await(w.sig)
}

// AcquireWaitK is the continuation form of AcquireWait: k runs inline on an
// immediate grant, or as the releaser's same-instant wake-up callback after
// the FIFO queue reaches this request. See AcquireWait for the ordered
// deterministic-locking contract.
func (tb *Table) AcquireWaitK(txn *Txn, key Key, m Mode, k func()) {
	if held, ok := txn.held[key]; ok {
		if held == Exclusive || m == Shared {
			k() // already sufficient
			return
		}
		panic("lock: AcquireWait upgrade would deadlock; request the strongest mode first")
	}
	e := tb.entries[key]
	if e == nil {
		e = tb.getEntry()
		tb.entries[key] = e
	}
	// Join the FIFO queue even when compatible with the owners if anyone
	// is already waiting (see AcquireWait).
	if len(e.waiters) == 0 && compatible(e, txn, m) {
		e.owners[txn] = m
		txn.held[key] = m
		tb.Stats.Acquired++
		k()
		return
	}
	tb.Stats.Conflicts++
	tb.Stats.Waits++
	w := &waiter{txn: txn, mode: m, wake: k}
	e.waiters = append(e.waiters, w)
}

// ReleaseAll releases every lock txn holds and grants eligible waiters.
// It is called at commit and at abort; grants happen at the current
// virtual time.
func (tb *Table) ReleaseAll(txn *Txn) {
	for key := range txn.held {
		tb.releaseOne(txn, key)
	}
	clear(txn.held)
}

// ReleaseAllOrdered releases every lock txn holds in ascending key order.
// Deterministic (Calvin-style) engines use it instead of ReleaseAll:
// their waiting grants routinely leave queued waiters on several released
// keys at once, and ReleaseAll's map iteration would wake those waiters
// in a run-to-run random order, breaking seeded reproducibility. The
// NO_WAIT/WAIT_DIE paths keep ReleaseAll (waiters on multiple keys of one
// releasing transaction are rare there, and its pinned golden schedules
// predate this method).
func (tb *Table) ReleaseAllOrdered(txn *Txn) {
	keys := make([]Key, 0, len(txn.held))
	for key := range txn.held {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, key := range keys {
		tb.releaseOne(txn, key)
	}
	clear(txn.held)
}

// releaseOne drops txn's hold on key and grants eligible waiters. The
// caller resets txn.held afterwards.
func (tb *Table) releaseOne(txn *Txn, key Key) {
	e := tb.entries[key]
	if e == nil {
		return
	}
	delete(e.owners, txn)
	tb.grantWaiters(key, e)
	if len(e.owners) == 0 && len(e.waiters) == 0 {
		delete(tb.entries, key)
		e.waiters = nil // the queue's backing array was consumed head-first
		tb.free = append(tb.free, e)
	}
}

// grantWaiters admits waiters from the head of the FIFO queue while they
// are compatible with the current owners.
func (tb *Table) grantWaiters(key Key, e *entry) {
	for len(e.waiters) > 0 {
		w := e.waiters[0]
		if !compatible(e, w.txn, w.mode) {
			// Head might be an upgrade blocked by other shared owners;
			// nothing behind it can jump the queue for Exclusive, but a
			// compatible Shared request further back may proceed if the
			// head itself is Shared-compatible. Keeping strict FIFO here
			// avoids starvation of upgrades.
			return
		}
		e.waiters = e.waiters[1:]
		e.owners[w.txn] = w.mode
		w.txn.held[key] = w.mode
		tb.Stats.Acquired++
		if w.sig != nil {
			w.sig.Fire(nil)
		} else {
			tb.env.After(0, w.wake)
		}
	}
}

// LockedExclusive reports whether key is currently owned in Exclusive
// mode. Crash-recovery verification uses it to excuse rows whose on-node
// value is mid-update by a live transaction: a redo log reconstructs the
// last committed value, which legitimately differs from an uncommitted
// in-place write.
func (tb *Table) LockedExclusive(key Key) bool {
	e := tb.entries[key]
	if e == nil {
		return false
	}
	for _, m := range e.owners {
		if m == Exclusive {
			return true
		}
	}
	return false
}

// Owners returns the number of current owners of key (for tests).
func (tb *Table) Owners(key Key) int {
	if e := tb.entries[key]; e != nil {
		return len(e.owners)
	}
	return 0
}

// WaiterCount returns the number of queued waiters on key (for tests).
func (tb *Table) WaiterCount(key Key) int {
	if e := tb.entries[key]; e != nil {
		return len(e.waiters)
	}
	return 0
}
