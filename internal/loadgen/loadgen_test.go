package loadgen

import (
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/server"
)

// startServer brings a registry-configured server up on loopback.
func startServer(t *testing.T, workloadName string, nodes int) (*server.Server, string, func()) {
	t.Helper()
	cc := core.DefaultConfig()
	cc.Engine = "noswitch"
	cc.Nodes = nodes
	cc.WorkersPerNode = 1
	cc.SampleTxns = 1000
	cc.Switch.SlotsPerArray = 64
	s, err := server.New(server.Config{Core: cc, Workload: workloadName})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()
	stop := func() {
		s.Shutdown()
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}
	return s, ln.Addr().String(), stop
}

// TestRunClosedLoop: a short windowed run commits work, every submitted
// transaction is answered, and the report's tallies agree with the
// server's.
func TestRunClosedLoop(t *testing.T) {
	s, addr, stop := startServer(t, "smallbank", 2)
	rep, err := Run(Config{
		Addrs:    []string{addr},
		Workload: "smallbank",
		Nodes:    2,
		Conns:    2,
		Window:   64,
		Duration: 300 * time.Millisecond,
		Seed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}
	stop()
	if rep.Commits == 0 {
		t.Fatal("closed-loop run committed nothing")
	}
	if rep.Commits+rep.Rejected != rep.Sent {
		t.Fatalf("sent %d but answered %d+%d: replies lost", rep.Sent, rep.Commits, rep.Rejected)
	}
	if rep.Rejected != 0 {
		t.Fatalf("%d generated transactions rejected", rep.Rejected)
	}
	if rep.P50LatUs <= 0 || rep.P99LatUs < rep.P50LatUs {
		t.Fatalf("implausible percentiles: p50=%.1f p99=%.1f", rep.P50LatUs, rep.P99LatUs)
	}
	if st := s.Stats(); st.Commits != rep.Commits {
		t.Fatalf("server committed %d, report says %d", st.Commits, rep.Commits)
	}
}

// TestRunOpenLoop: a paced run stays near its target rate (loosely — CI
// machines stall) and never exceeds it by more than rounding.
func TestRunOpenLoop(t *testing.T) {
	_, addr, stop := startServer(t, "ycsb-c", 2)
	defer stop()
	rep, err := Run(Config{
		Addrs:    []string{addr},
		Workload: "ycsb-c",
		Nodes:    2,
		Conns:    1,
		Rate:     2000,
		Window:   256,
		Duration: 500 * time.Millisecond,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Commits == 0 {
		t.Fatal("open-loop run committed nothing")
	}
	if rep.Commits+rep.Rejected != rep.Sent {
		t.Fatalf("sent %d but answered %d+%d", rep.Sent, rep.Commits, rep.Rejected)
	}
	// The pacing clock bounds submissions from above: rate * duration
	// plus one interval of slack.
	if max := int64(2000*0.5) + 1; rep.Sent > max {
		t.Fatalf("open loop sent %d transactions, pacing allows at most %d", rep.Sent, max)
	}
}
