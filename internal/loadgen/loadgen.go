package loadgen

import (
	"errors"
	"fmt"
	"io"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/txnwire"
	"repro/internal/workload"
)

// Config parameterizes one load-generation run.
type Config struct {
	// Addrs lists the txnwire servers; connections round-robin across
	// them and each server's commits aggregate into one report (the
	// servers are independent shared-nothing shards).
	Addrs []string
	// Workload names a registered workload (workload.ByName).
	Workload string
	// Theta switches a YCSB workload to Zipfian key selection at that
	// skew exponent (workload.ByNameTheta); must match the server's.
	Theta float64
	// Nodes is the node count of each target server; generated
	// transactions partition across it and pick a random origin in it.
	Nodes int
	// Conns is the total number of client connections (spread over
	// Addrs). Default 1.
	Conns int
	// Rate is the total open-loop submission rate in txn/s across all
	// connections; 0 runs closed-loop (each connection keeps Window
	// transactions outstanding).
	Rate float64
	// Window bounds outstanding transactions per connection (default
	// 256). The open-loop clock does not stall while the window has
	// room; when the server falls behind the window backpressures the
	// sender and queueing delay shows up in the percentiles.
	Window int
	// Duration is how long to submit load. Default 2s.
	Duration time.Duration
	// Seed makes transaction streams reproducible.
	Seed uint64
}

// Report is the outcome of a run, aggregated across connections.
type Report struct {
	Workload   string  `json:"workload"`
	Servers    int     `json:"servers"`
	Conns      int     `json:"conns"`
	TargetRate float64 `json:"target_rate,omitempty"`
	Sent       int64   `json:"sent"`
	Commits    int64   `json:"commits"`
	Rejected   int64   `json:"rejected"`
	ElapsedSec float64 `json:"elapsed_sec"`
	Throughput float64 `json:"commits_per_sec"`
	MeanLatUs  float64 `json:"mean_lat_us"`
	P50LatUs   float64 `json:"p50_lat_us"`
	P95LatUs   float64 `json:"p95_lat_us"`
	P99LatUs   float64 `json:"p99_lat_us"`
	MaxLatUs   float64 `json:"max_lat_us"`
}

// String renders the report as one human-readable line.
func (r *Report) String() string {
	return fmt.Sprintf("%s x%d servers: %.0f commits/s (%d commits in %.2fs, %d conns)  lat µs p50=%.0f p95=%.0f p99=%.0f max=%.0f",
		r.Workload, r.Servers, r.Throughput, r.Commits, r.ElapsedSec, r.Conns,
		r.P50LatUs, r.P95LatUs, r.P99LatUs, r.MaxLatUs)
}

// connStats is one connection's tally, merged after the run.
type connStats struct {
	sent     int64
	commits  int64
	rejected int64
	lat      metrics.LatencyHist
	err      error
}

// Run drives the configured load and reports aggregate throughput and
// latency percentiles. Each connection runs a sender and a receiver
// goroutine: the sender paces submissions against the wall clock
// (open-loop) or the window (closed-loop), the receiver matches replies
// to send timestamps through a ring indexed by transaction id.
func Run(cfg Config) (*Report, error) {
	if len(cfg.Addrs) == 0 {
		return nil, errors.New("loadgen: no server addresses")
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 1
	}
	if cfg.Window <= 0 {
		cfg.Window = 256
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if _, err := workload.ByNameTheta(cfg.Workload, cfg.Nodes, cfg.Theta); err != nil {
		return nil, err
	}

	stats := make([]connStats, cfg.Conns)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	perConnRate := cfg.Rate / float64(cfg.Conns)
	for i := 0; i < cfg.Conns; i++ {
		addr := cfg.Addrs[i%len(cfg.Addrs)]
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			stats[i].err = runConn(cfg, addr, uint64(i), deadline, perConnRate, &stats[i])
		}(i, addr)
	}
	wg.Wait()

	rep := &Report{
		Workload:   cfg.Workload,
		Servers:    len(cfg.Addrs),
		Conns:      cfg.Conns,
		TargetRate: cfg.Rate,
	}
	var lat metrics.LatencyHist
	for i := range stats {
		if stats[i].err != nil {
			return nil, fmt.Errorf("loadgen: conn %d: %w", i, stats[i].err)
		}
		rep.Sent += stats[i].sent
		rep.Commits += stats[i].commits
		rep.Rejected += stats[i].rejected
		lat.Merge(&stats[i].lat)
	}
	rep.ElapsedSec = time.Since(start).Seconds()
	if rep.ElapsedSec > 0 {
		rep.Throughput = float64(rep.Commits) / rep.ElapsedSec
	}
	if lat.Count() > 0 {
		rep.MeanLatUs = float64(lat.Mean()) / 1e3
		rep.P50LatUs = float64(lat.Percentile(50)) / 1e3
		rep.P95LatUs = float64(lat.Percentile(95)) / 1e3
		rep.P99LatUs = float64(lat.Percentile(99)) / 1e3
		rep.MaxLatUs = float64(lat.Max()) / 1e3
	}
	return rep, nil
}

// runConn drives one connection for the configured duration.
func runConn(cfg Config, addr string, connIdx uint64, deadline time.Time, rate float64, st *connStats) error {
	gen, err := workload.ByNameTheta(cfg.Workload, cfg.Nodes, cfg.Theta)
	if err != nil {
		return err
	}
	cl, err := Dial(addr)
	if err != nil {
		return err
	}
	defer cl.Close()
	// Auto-flush keeps pipelined frames moving without a syscall per
	// transaction; the sender still flushes explicitly at pacing gaps.
	cl.fw.SetAutoFlush(16 * 1024)

	// The send-time ring is indexed by transaction id; ids are assigned
	// densely per connection and at most Window are outstanding, so a
	// power-of-two ring strictly larger than the window never wraps onto
	// a live entry. Entries are atomics: the sender stores and the
	// receiver loads with no other synchronization edge between them
	// (the reply's arrival orders the load after the store in real time).
	ringSize := 1 << bits.Len(uint(cfg.Window))
	mask := uint64(ringSize - 1)
	sendNanos := make([]atomic.Int64, ringSize)
	credits := make(chan struct{}, cfg.Window)
	for i := 0; i < cfg.Window; i++ {
		credits <- struct{}{}
	}

	var recvFailure error
	recvDone := make(chan struct{})
	go func() {
		defer close(recvDone)
		for {
			rep, err := cl.Recv()
			if err != nil {
				recvFailure = err
				return
			}
			switch rep.Status {
			case txnwire.StatusCommitted:
				st.commits++
				st.lat.Record(sim.Time(time.Now().UnixNano() - sendNanos[rep.Resp.TxnID&mask].Load()))
			case txnwire.StatusRejected:
				st.rejected++
			}
			// Every reply answers a send that consumed a credit, so this
			// can never exceed the channel's capacity.
			credits <- struct{}{}
		}
	}()

	rng := sim.NewRNG(cfg.Seed ^ (connIdx+1)*0x9E3779B97F4A7C15)
	interval := time.Duration(0)
	if rate > 0 {
		interval = time.Duration(float64(time.Second) / rate)
	}
	next := time.Now()
	var sendFailed error
loop:
	for time.Now().Before(deadline) {
		if interval > 0 {
			// Open loop: the submission clock advances independently of
			// replies; sleep only when ahead of schedule.
			if d := time.Until(next); d > 0 {
				cl.Flush()
				time.Sleep(d)
			}
			next = next.Add(interval)
		}
		select {
		case <-credits:
		default:
			// Window exhausted: push the pipelined frames out (replies
			// are what refill the window), then wait for one.
			if err := cl.Flush(); err != nil {
				sendFailed = err
				break loop
			}
			select {
			case <-credits:
			case <-recvDone:
				break loop // the server went away; stop submitting
			}
		}
		origin := netsim.NodeID(rng.Intn(cfg.Nodes))
		txn := gen.Next(rng, origin)
		// The timestamp must be installed before Send: the auto-flushing
		// writer can push the frame inside Send, and the reply races
		// anything stored after.
		sendNanos[cl.PeekID()&mask].Store(time.Now().UnixNano())
		if _, err := cl.Send(txn, origin); err != nil {
			sendFailed = err
			break
		}
		st.sent++
	}
	if sendFailed == nil {
		sendFailed = cl.CloseWrite()
	}
	// Drain every outstanding reply; the server answers all submitted
	// transactions then closes, so the receiver ends with io.EOF.
	<-recvDone
	if sendFailed != nil {
		return sendFailed
	}
	if recvFailure != io.EOF {
		return recvFailure
	}
	return nil
}
