// Package loadgen drives a txnwire server: a pipelined client connection
// plus an open-loop load generator that submits registered workloads at
// a target rate and reports commit throughput and latency percentiles.
package loadgen

import (
	"fmt"
	"net"

	"repro/internal/netsim"
	"repro/internal/txnwire"
	"repro/internal/workload"
)

// Client is one txnwire connection. It supports pipelining: Send queues
// framed requests in the write buffer, Flush pushes them out, Recv reads
// the next reply. Not safe for concurrent use; the load generator runs
// one sender and one receiver per connection and splits the halves
// (Send/Flush on one goroutine, Recv on another) — the underlying
// FrameWriter and FrameReader never share state.
type Client struct {
	nc     net.Conn
	fw     *txnwire.FrameWriter
	fr     *txnwire.FrameReader
	req    txnwire.TxnRequest
	rep    txnwire.TxnReply
	nextID uint64
}

// Dial connects to a txnwire server.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(nc), nil
}

// NewClient wraps an established connection.
func NewClient(nc net.Conn) *Client {
	return &Client{
		nc: nc,
		fw: txnwire.NewFrameWriter(nc),
		fr: txnwire.NewFrameReader(nc),
	}
}

// PeekID returns the id the next Send will assign. Callers that index
// side state by transaction id (the load generator's send-time ring)
// must install it before Send: an auto-flushing writer can put the frame
// on the wire inside Send, and the reply races anything done after.
func (c *Client) PeekID() uint64 { return c.nextID + 1 }

// Send queues txn as a request frame and returns the transaction id the
// reply will echo. The frame sits in the write buffer until Flush (or
// the writer's auto-flush threshold, if one was set).
func (c *Client) Send(txn *workload.Txn, origin netsim.NodeID) (uint64, error) {
	c.nextID++
	id := c.nextID
	if err := workload.TxnToRequest(txn, id, origin, &c.req); err != nil {
		return 0, err
	}
	if err := c.fw.WriteTxnRequest(&c.req); err != nil {
		return 0, err
	}
	return id, nil
}

// Flush pushes queued request frames to the socket.
func (c *Client) Flush() error { return c.fw.Flush() }

// Recv reads the next reply. The returned pointer is reused by the next
// Recv call.
func (c *Client) Recv() (*txnwire.TxnReply, error) {
	ft, payload, err := c.fr.Next()
	if err != nil {
		return nil, err
	}
	if ft != txnwire.FrameTxnReply {
		return nil, fmt.Errorf("loadgen: unexpected frame type %d", ft)
	}
	if err := txnwire.DecodeTxnReplyInto(&c.rep, payload); err != nil {
		return nil, err
	}
	return &c.rep, nil
}

// Do submits one transaction and waits for its reply — the serial
// request-response path the parity harness uses.
func (c *Client) Do(txn *workload.Txn, origin netsim.NodeID) (*txnwire.TxnReply, error) {
	id, err := c.Send(txn, origin)
	if err != nil {
		return nil, err
	}
	if err := c.Flush(); err != nil {
		return nil, err
	}
	rep, err := c.Recv()
	if err != nil {
		return nil, err
	}
	if rep.Resp.TxnID != id {
		return nil, fmt.Errorf("loadgen: reply id %d for request %d", rep.Resp.TxnID, id)
	}
	return rep, nil
}

// CloseWrite half-closes the connection: the server finishes everything
// already submitted, flushes, and closes. Callers then Recv until EOF.
func (c *Client) CloseWrite() error {
	if err := c.fw.Flush(); err != nil {
		return err
	}
	if tc, ok := c.nc.(*net.TCPConn); ok {
		return tc.CloseWrite()
	}
	return nil
}

// Close tears the connection down.
func (c *Client) Close() error { return c.nc.Close() }
