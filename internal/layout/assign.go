package layout

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Slot is a tuple's physical location on the switch: a slot of a register
// array in an MAU stage.
type Slot struct {
	Stage uint8
	Array uint8
	Index uint32
}

// pos linearizes a slot's (stage, array) coordinate for pipeline ordering.
func (s Slot) pos() int { return int(s.Stage)<<8 | int(s.Array) }

// Spec describes the switch geometry the layout must fit into.
type Spec struct {
	Stages         int
	ArraysPerStage int
	SlotsPerArray  int
}

// NumArrays returns the number of register arrays in the pipeline.
func (s Spec) NumArrays() int { return s.Stages * s.ArraysPerStage }

// Capacity returns the number of tuple slots in the pipeline.
func (s Spec) Capacity() int { return s.NumArrays() * s.SlotsPerArray }

// arrayAt maps a pipeline-order array number to its (stage, array) pair.
func (s Spec) arrayAt(i int) (stage, array uint8) {
	return uint8(i / s.ArraysPerStage), uint8(i % s.ArraysPerStage)
}

// Layout maps hot tuples to switch slots. It is computed once during the
// offload step and then replicated (as the paper's hot index) to every
// database node.
type Layout struct {
	slots map[TupleID]Slot
	spec  Spec
}

// SlotOf returns the tuple's switch location, if it is laid out.
func (l *Layout) SlotOf(t TupleID) (Slot, bool) {
	s, ok := l.slots[t]
	return s, ok
}

// NumTuples returns the number of tuples placed on the switch.
func (l *Layout) NumTuples() int { return len(l.slots) }

// Spec returns the switch geometry the layout was computed for.
func (l *Layout) Spec() Spec { return l.spec }

// Tuples returns all laid-out tuples in deterministic order.
func (l *Layout) Tuples() []TupleID {
	out := make([]TupleID, 0, len(l.slots))
	for t := range l.slots {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Optimal computes the declustered layout of Section 4.3:
//
//  1. capacity-constrained max-cut of the access graph into one partition
//     per register array;
//  2. pairwise cut-direction resolution — if dependency edges between two
//     partitions point both ways, the minority direction is sacrificed
//     (those transactions become multi-pass);
//  3. topological ordering of partitions along the pipeline, breaking any
//     remaining cycles by dropping the lightest constraints;
//  4. slot assignment within each array.
//
// It panics if the graph holds more tuples than the spec's capacity;
// callers must cap the hot-set first (Figure 17's spill path).
func Optimal(g *Graph, spec Spec) *Layout {
	k := spec.NumArrays()
	if g.NumTuples() > spec.Capacity() {
		panic(fmt.Sprintf("layout: %d hot tuples exceed switch capacity %d", g.NumTuples(), spec.Capacity()))
	}
	part := g.maxCut(k, spec.SlotsPerArray)

	// Net dependency weight between partitions: dep[a][b] holds the total
	// weight of ordered edges whose source tuple lies in a and target in b.
	dep := make([][]int64, k)
	for i := range dep {
		dep[i] = make([]int64, k)
	}
	for i, key := range g.ekeys {
		pu, pv := part[key.u], part[key.v]
		if pu == pv {
			continue
		}
		e := &g.epool[i]
		dep[pu][pv] += e.fwd
		dep[pv][pu] += e.rev
	}

	// Pairwise resolution: direction a->b survives iff dep[a][b] >=
	// dep[b][a]; the lighter opposing edges are removed (their
	// transactions will be multi-pass).
	var constraints []constraint
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			switch {
			case dep[a][b] == 0 && dep[b][a] == 0:
				// bidirectional or unrelated: no ordering constraint
			case dep[a][b] >= dep[b][a]:
				constraints = append(constraints, constraint{a, b, dep[a][b] - dep[b][a]})
			default:
				constraints = append(constraints, constraint{b, a, dep[b][a] - dep[a][b]})
			}
		}
	}
	// Deterministic order: heavier constraints are harder to drop.
	sort.Slice(constraints, func(i, j int) bool {
		if constraints[i].w != constraints[j].w {
			return constraints[i].w > constraints[j].w
		}
		if constraints[i].from != constraints[j].from {
			return constraints[i].from < constraints[j].from
		}
		return constraints[i].to < constraints[j].to
	})

	order := topoOrder(k, constraints)

	// order[i] = partition placed at pipeline-order array i.
	l := &Layout{slots: make(map[TupleID]Slot, g.NumTuples()), spec: spec}
	next := make([]uint32, k) // next free slot per array position
	arrayOf := make([]int, k) // partition -> array position
	for i, p := range order {
		arrayOf[p] = i
	}
	for _, t := range g.Tuples() {
		ai := arrayOf[part[t]]
		stage, array := spec.arrayAt(ai)
		l.slots[t] = Slot{Stage: stage, Array: array, Index: next[ai]}
		next[ai]++
	}
	return l
}

// Extend evolves a layout incrementally: every surviving tuple keeps its
// slot, removed tuples free theirs, and added tuples fill free slots
// emptiest-array-first (spreading new hot tuples across the pipeline the
// way the max-cut spreads the offline set). The online adaptive
// controller migrates with this instead of re-running Optimal so that
// unchanged tuples never move — transactions touching only them can keep
// executing right through a migration fence. It panics if the additions
// exceed the remaining capacity; callers cap the hot-set first.
func (l *Layout) Extend(removed, added []TupleID) *Layout {
	nl := &Layout{slots: make(map[TupleID]Slot, len(l.slots)+len(added)), spec: l.spec}
	for t, s := range l.slots {
		nl.slots[t] = s
	}
	for _, t := range removed {
		delete(nl.slots, t)
	}
	k := l.spec.NumArrays()
	occ := make([]int, k)
	used := make([][]bool, k)
	for i := range used {
		used[i] = make([]bool, l.spec.SlotsPerArray)
	}
	for _, s := range nl.slots {
		ai := int(s.Stage)*l.spec.ArraysPerStage + int(s.Array)
		occ[ai]++
		used[ai][s.Index] = true
	}
	adds := make([]TupleID, 0, len(added))
	for _, t := range added {
		if _, dup := nl.slots[t]; !dup {
			adds = append(adds, t)
		}
	}
	sort.Slice(adds, func(i, j int) bool { return adds[i] < adds[j] })
	scan := make([]int, k) // per-array lowest possibly-free index
	for _, t := range adds {
		best := -1
		for ai := 0; ai < k; ai++ {
			if occ[ai] < l.spec.SlotsPerArray && (best < 0 || occ[ai] < occ[best]) {
				best = ai
			}
		}
		if best < 0 {
			panic(fmt.Sprintf("layout: Extend overflowed switch capacity %d", l.spec.Capacity()))
		}
		idx := scan[best]
		for used[best][idx] {
			idx++
		}
		used[best][idx] = true
		scan[best] = idx + 1
		occ[best]++
		stage, array := l.spec.arrayAt(best)
		nl.slots[t] = Slot{Stage: stage, Array: array, Index: uint32(idx)}
	}
	return nl
}

// constraint is a pipeline-ordering requirement between two partitions:
// from must be placed in an earlier register array than to, with weight w
// measuring how much access-order traffic the constraint protects.
type constraint struct {
	from, to int
	w        int64
}

// topoOrder orders k partitions respecting as many constraints as
// possible. Constraints are added greedily in descending weight, skipping
// any that would close a cycle; a Kahn topological sort of the surviving
// DAG yields the pipeline order.
func topoOrder(k int, constraints []constraint) []int {
	adj := make([][]int, k)
	indeg := make([]int, k)
	reaches := func(from, to int) bool {
		// DFS: is `to` reachable from `from`?
		stack := []int{from}
		seen := make([]bool, k)
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n == to {
				return true
			}
			if seen[n] {
				continue
			}
			seen[n] = true
			stack = append(stack, adj[n]...)
		}
		return false
	}
	for _, c := range constraints {
		if reaches(c.to, c.from) {
			continue // would close a cycle: drop (those txns go multi-pass)
		}
		adj[c.from] = append(adj[c.from], c.to)
		indeg[c.to]++
	}
	// Kahn with deterministic tie-breaking (lowest partition id first).
	var order []int
	ready := make([]int, 0, k)
	for i := 0; i < k; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	for len(ready) > 0 {
		sort.Ints(ready)
		n := ready[0]
		ready = ready[1:]
		order = append(order, n)
		for _, m := range adj[n] {
			indeg[m]--
			if indeg[m] == 0 {
				ready = append(ready, m)
			}
		}
	}
	if len(order) != k {
		panic("layout: topological sort incomplete despite cycle breaking")
	}
	return order
}

// Random assigns tuples to arrays round-robin in hash order, ignoring the
// access graph entirely — the "worst case" layout of the Figure 16
// experiment.
func Random(g *Graph, spec Spec, rng *sim.RNG) *Layout {
	if g.NumTuples() > spec.Capacity() {
		panic(fmt.Sprintf("layout: %d hot tuples exceed switch capacity %d", g.NumTuples(), spec.Capacity()))
	}
	k := spec.NumArrays()
	l := &Layout{slots: make(map[TupleID]Slot, g.NumTuples()), spec: spec}
	next := make([]uint32, k)
	tuples := g.Tuples()
	perm := rng.Perm(len(tuples))
	for i, pi := range perm {
		ai := i % k
		if int(next[ai]) >= spec.SlotsPerArray {
			panic("layout: random layout overflowed an array")
		}
		stage, array := spec.arrayAt(ai)
		l.slots[tuples[pi]] = Slot{Stage: stage, Array: array, Index: next[ai]}
		next[ai]++
	}
	return l
}
