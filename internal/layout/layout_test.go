package layout

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/txnwire"
)

func smallSpec() Spec { return Spec{Stages: 3, ArraysPerStage: 1, SlotsPerArray: 4} }

func TestGraphAddTxnWeights(t *testing.T) {
	g := NewGraph()
	g.AddTxn([]Access{{Tuple: 1}, {Tuple: 2}, {Tuple: 3}})
	g.AddTxn([]Access{{Tuple: 1}, {Tuple: 2}})
	if g.NumTuples() != 3 {
		t.Fatalf("NumTuples = %d", g.NumTuples())
	}
	// pairs: (1,2) weight 2, (1,3) weight 1, (2,3) weight 1
	if w := g.TotalEdgeWeight(); w != 4 {
		t.Fatalf("TotalEdgeWeight = %d, want 4", w)
	}
}

func TestGraphDirectedEdges(t *testing.T) {
	g := NewGraph()
	// op1 on tuple 2 depends on op0 on tuple 1 => direction 1 -> 2
	g.AddTxn([]Access{{Tuple: 1}, {Tuple: 2, DependsOn: 0}})
	e := g.edge(1, 2)
	if e.fwd != 1 || e.rev != 0 {
		t.Fatalf("edge = %+v, want fwd=1", e)
	}
	// reversed tuple ids: op on tuple 1 depends on op on tuple 2
	g2 := NewGraph()
	g2.AddTxn([]Access{{Tuple: 2}, {Tuple: 1, DependsOn: 0}})
	e2 := g2.edge(1, 2)
	if e2.rev != 1 || e2.fwd != 0 {
		t.Fatalf("edge = %+v, want rev=1", e2)
	}
}

func TestMaxCutSeparatesCoAccessedTuples(t *testing.T) {
	// Figure 5 style: six tuples, heavy pairs must land in different
	// partitions so their transactions can be single-pass.
	g := NewGraph()
	for i := 0; i < 30; i++ {
		g.AddTxn([]Access{{Tuple: 1}, {Tuple: 4}})
		g.AddTxn([]Access{{Tuple: 2}, {Tuple: 5}})
		g.AddTxn([]Access{{Tuple: 3}, {Tuple: 6}})
	}
	part := g.maxCut(3, 2)
	for _, pair := range [][2]TupleID{{1, 4}, {2, 5}, {3, 6}} {
		if part[pair[0]] == part[pair[1]] {
			t.Fatalf("heavy pair %v placed together: %v", pair, part)
		}
	}
}

func TestMaxCutRespectsCapacity(t *testing.T) {
	g := NewGraph()
	for i := TupleID(0); i < 12; i++ {
		g.AddTuple(i)
	}
	part := g.maxCut(3, 4)
	size := map[int]int{}
	for _, p := range part {
		size[p]++
	}
	for p, s := range size {
		if s > 4 {
			t.Fatalf("partition %d has %d > 4 tuples", p, s)
		}
	}
}

func TestMaxCutOverCapacityPanics(t *testing.T) {
	g := NewGraph()
	for i := TupleID(0); i < 10; i++ {
		g.AddTuple(i)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic when tuples exceed capacity")
		}
	}()
	g.maxCut(3, 3)
}

// TestMaxCutQuality: for K partitions a random assignment cuts (1-1/K) of
// the weight in expectation; the greedy heuristic must cut at least half
// the total weight on random graphs.
func TestMaxCutQuality(t *testing.T) {
	rng := sim.NewRNG(42)
	for trial := 0; trial < 20; trial++ {
		g := NewGraph()
		n := rng.Intn(20) + 4
		for i := 0; i < n*3; i++ {
			a := TupleID(rng.Intn(n))
			b := TupleID(rng.Intn(n))
			if a == b {
				continue
			}
			g.AddTxn([]Access{{Tuple: a}, {Tuple: b}})
		}
		for i := TupleID(0); i < TupleID(n); i++ {
			g.AddTuple(i)
		}
		k := rng.Intn(3) + 2
		part := g.maxCut(k, (n+k-1)/k+1)
		if cut, total := g.CutWeight(part), g.TotalEdgeWeight(); total > 0 && cut*2 < total {
			t.Fatalf("cut %d < half of total %d (k=%d n=%d)", cut, total, k, n)
		}
	}
}

func TestOptimalAssignsAllTuplesUniqueSlots(t *testing.T) {
	g := NewGraph()
	for i := TupleID(0); i < 10; i++ {
		g.AddTuple(i)
	}
	g.AddTxn([]Access{{Tuple: 0}, {Tuple: 1}, {Tuple: 2}})
	spec := Spec{Stages: 4, ArraysPerStage: 1, SlotsPerArray: 4}
	l := Optimal(g, spec)
	if l.NumTuples() != 10 {
		t.Fatalf("NumTuples = %d", l.NumTuples())
	}
	seen := map[Slot]TupleID{}
	for _, tp := range l.Tuples() {
		s, ok := l.SlotOf(tp)
		if !ok {
			t.Fatalf("tuple %d lost", tp)
		}
		if int(s.Stage) >= spec.Stages || int(s.Array) >= spec.ArraysPerStage || int(s.Index) >= spec.SlotsPerArray {
			t.Fatalf("slot %v out of spec", s)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("slot %v assigned to both %d and %d", s, prev, tp)
		}
		seen[s] = tp
	}
}

func TestOptimalRespectsDependencyDirection(t *testing.T) {
	// SmallBank-style chain: read A, then write B depending on it, many
	// times over. A's partition must land in an earlier stage than B's.
	g := NewGraph()
	for i := 0; i < 50; i++ {
		g.AddTxn([]Access{{Tuple: 100}, {Tuple: 200, DependsOn: 0}})
	}
	spec := Spec{Stages: 2, ArraysPerStage: 1, SlotsPerArray: 2}
	l := Optimal(g, spec)
	a, _ := l.SlotOf(100)
	b, _ := l.SlotOf(200)
	if a.pos() >= b.pos() {
		t.Fatalf("dependency direction violated: A at %v, B at %v", a, b)
	}
	// And the resulting transaction must compile to a single pass.
	instrs, _, passes, err := Compile([]HotOp{
		{Tuple: 100, Op: txnwire.OpRead, DependsOn: -1},
		{Tuple: 200, Op: txnwire.OpAdd, Operand: 1, DependsOn: 0},
	}, l)
	if err != nil || passes != 1 || len(instrs) != 2 {
		t.Fatalf("compile: passes=%d err=%v", passes, err)
	}
}

func TestOptimalConflictingDirectionsPicksMajority(t *testing.T) {
	// 10x A->B vs 3x B->A: layout must favour A before B.
	g := NewGraph()
	for i := 0; i < 10; i++ {
		g.AddTxn([]Access{{Tuple: 1}, {Tuple: 2, DependsOn: 0}})
	}
	for i := 0; i < 3; i++ {
		g.AddTxn([]Access{{Tuple: 2}, {Tuple: 1, DependsOn: 0}})
	}
	spec := Spec{Stages: 2, ArraysPerStage: 1, SlotsPerArray: 1}
	l := Optimal(g, spec)
	a, _ := l.SlotOf(1)
	b, _ := l.SlotOf(2)
	if a.pos() >= b.pos() {
		t.Fatalf("majority direction violated: A=%v B=%v", a, b)
	}
}

func TestOptimalBreaksDependencyCycles(t *testing.T) {
	// A->B, B->C, C->A with equal weights: a cycle that cannot be fully
	// honoured. The layout must still assign all tuples (some txns will
	// be multi-pass).
	g := NewGraph()
	for i := 0; i < 5; i++ {
		g.AddTxn([]Access{{Tuple: 1}, {Tuple: 2, DependsOn: 0}})
		g.AddTxn([]Access{{Tuple: 2}, {Tuple: 3, DependsOn: 0}})
		g.AddTxn([]Access{{Tuple: 3}, {Tuple: 1, DependsOn: 0}})
	}
	spec := Spec{Stages: 3, ArraysPerStage: 1, SlotsPerArray: 1}
	l := Optimal(g, spec)
	if l.NumTuples() != 3 {
		t.Fatalf("NumTuples = %d", l.NumTuples())
	}
}

func TestOptimalOverCapacityPanics(t *testing.T) {
	g := NewGraph()
	for i := TupleID(0); i < 100; i++ {
		g.AddTuple(i)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Optimal(g, smallSpec())
}

func TestRandomLayoutAssignsAll(t *testing.T) {
	g := NewGraph()
	for i := TupleID(0); i < 12; i++ {
		g.AddTuple(i)
	}
	l := Random(g, Spec{Stages: 4, ArraysPerStage: 1, SlotsPerArray: 4}, sim.NewRNG(1))
	if l.NumTuples() != 12 {
		t.Fatalf("NumTuples = %d", l.NumTuples())
	}
	seen := map[Slot]bool{}
	for _, tp := range l.Tuples() {
		s, _ := l.SlotOf(tp)
		if seen[s] {
			t.Fatalf("duplicate slot %v", s)
		}
		seen[s] = true
	}
}

func TestRandomLayoutCausesMorePasses(t *testing.T) {
	// Under the optimal layout the canonical 2-tuple dependent txn is
	// single-pass; averaged over random layouts, a meaningful share must
	// need 2+ passes — that gap is exactly Figure 16's experiment.
	g := NewGraph()
	type pair struct{ a, b TupleID }
	var pairs []pair
	for i := 0; i < 8; i++ {
		a, b := TupleID(i*2), TupleID(i*2+1)
		pairs = append(pairs, pair{a, b})
		for k := 0; k < 10; k++ {
			g.AddTxn([]Access{{Tuple: a}, {Tuple: b, DependsOn: 0}})
		}
	}
	spec := Spec{Stages: 4, ArraysPerStage: 1, SlotsPerArray: 4}
	countMulti := func(l *Layout) int {
		multi := 0
		for _, pr := range pairs {
			_, _, passes, err := Compile([]HotOp{
				{Tuple: pr.a, Op: txnwire.OpRead, DependsOn: -1},
				{Tuple: pr.b, Op: txnwire.OpAdd, Operand: 1, DependsOn: 0},
			}, l)
			if err != nil {
				t.Fatal(err)
			}
			if passes > 1 {
				multi++
			}
		}
		return multi
	}
	if m := countMulti(Optimal(g, spec)); m != 0 {
		t.Fatalf("optimal layout produced %d multi-pass txns, want 0", m)
	}
	rng := sim.NewRNG(7)
	totalMulti := 0
	for trial := 0; trial < 10; trial++ {
		totalMulti += countMulti(Random(g, spec, rng))
	}
	if totalMulti == 0 {
		t.Fatal("random layouts never produced a multi-pass txn (suspicious)")
	}
}

func TestCompileSamePassIndependentOps(t *testing.T) {
	g := NewGraph()
	for i := TupleID(0); i < 4; i++ {
		g.AddTuple(i)
	}
	spec := Spec{Stages: 4, ArraysPerStage: 1, SlotsPerArray: 1}
	l := Optimal(g, spec)
	ops := []HotOp{
		{Tuple: 3, Op: txnwire.OpRead, DependsOn: -1},
		{Tuple: 0, Op: txnwire.OpRead, DependsOn: -1},
		{Tuple: 2, Op: txnwire.OpRead, DependsOn: -1},
		{Tuple: 1, Op: txnwire.OpRead, DependsOn: -1},
	}
	instrs, perm, passes, err := Compile(ops, l)
	if err != nil {
		t.Fatal(err)
	}
	if passes != 1 {
		t.Fatalf("passes = %d, want 1 (independent ops freely reordered)", passes)
	}
	if len(instrs) != 4 || len(perm) != 4 {
		t.Fatalf("sizes wrong: %d %d", len(instrs), len(perm))
	}
	// perm must be a permutation of 0..3 and map instrs back to ops.
	seen := make([]bool, 4)
	for i, p := range perm {
		if seen[p] {
			t.Fatalf("perm not a permutation: %v", perm)
		}
		seen[p] = true
		s, _ := l.SlotOf(ops[p].Tuple)
		if instrs[i].Stage != s.Stage || instrs[i].Index != s.Index {
			t.Fatalf("instr %d does not match op %d", i, p)
		}
	}
}

func TestCompileSameTupleTwiceForcesTwoPasses(t *testing.T) {
	g := NewGraph()
	g.AddTuple(1)
	l := Optimal(g, Spec{Stages: 2, ArraysPerStage: 1, SlotsPerArray: 1})
	ops := []HotOp{
		{Tuple: 1, Op: txnwire.OpRead, DependsOn: -1},
		{Tuple: 1, Op: txnwire.OpWrite, Operand: 9, DependsOn: -1},
	}
	instrs, perm, passes, err := Compile(ops, l)
	if err != nil {
		t.Fatal(err)
	}
	if passes != 2 {
		t.Fatalf("passes = %d, want 2 (same register twice)", passes)
	}
	// Program order on the same tuple must be preserved: read first.
	if perm[0] != 0 || perm[1] != 1 || instrs[0].Op != txnwire.OpRead {
		t.Fatalf("same-tuple order reversed: perm=%v", perm)
	}
}

func TestCompileMissingTuple(t *testing.T) {
	g := NewGraph()
	g.AddTuple(1)
	l := Optimal(g, Spec{Stages: 1, ArraysPerStage: 1, SlotsPerArray: 1})
	_, _, _, err := Compile([]HotOp{{Tuple: 99, Op: txnwire.OpRead, DependsOn: -1}}, l)
	if _, ok := err.(ErrNotLaidOut); !ok {
		t.Fatalf("err = %v, want ErrNotLaidOut", err)
	}
}

func TestCompileEmpty(t *testing.T) {
	l := &Layout{slots: map[TupleID]Slot{}, spec: smallSpec()}
	instrs, perm, passes, err := Compile(nil, l)
	if err != nil || instrs != nil || perm != nil || passes != 0 {
		t.Fatalf("empty compile: %v %v %d %v", instrs, perm, passes, err)
	}
}

// TestCompileProperties: on random op lists and layouts, compiled output
// must (1) be a permutation of the input, (2) respect declared and
// same-tuple dependencies, (3) report a pass count consistent with the
// strictly-increasing-position rule.
func TestCompileProperties(t *testing.T) {
	rng := sim.NewRNG(99)
	f := func(seed uint16) bool {
		r := sim.NewRNG(uint64(seed))
		nTuples := r.Intn(6) + 2
		g := NewGraph()
		for i := TupleID(0); i < TupleID(nTuples); i++ {
			g.AddTuple(i)
		}
		spec := Spec{Stages: 4, ArraysPerStage: 2, SlotsPerArray: 2}
		var l *Layout
		if r.Bool(50) {
			l = Optimal(g, spec)
		} else {
			l = Random(g, spec, rng)
		}
		nOps := r.Intn(6) + 1
		ops := make([]HotOp, nOps)
		for i := range ops {
			dep := -1
			if i > 0 && r.Bool(30) {
				dep = r.Intn(i)
			}
			ops[i] = HotOp{Tuple: TupleID(r.Intn(nTuples)), Op: txnwire.OpAdd, Operand: 1, DependsOn: dep}
		}
		instrs, perm, passes, err := Compile(ops, l)
		if err != nil || len(instrs) != nOps || len(perm) != nOps {
			return false
		}
		// (1) permutation
		seen := make([]bool, nOps)
		for _, p := range perm {
			if p < 0 || p >= nOps || seen[p] {
				return false
			}
			seen[p] = true
		}
		// (2) dependencies respected
		posInOut := make([]int, nOps)
		for outIdx, p := range perm {
			posInOut[p] = outIdx
		}
		lastOnTuple := map[TupleID]int{}
		for i, op := range ops {
			if d := op.DependsOn; d >= 0 && posInOut[i] < posInOut[d] {
				return false
			}
			if prev, ok := lastOnTuple[op.Tuple]; ok && posInOut[i] < posInOut[prev] {
				return false
			}
			lastOnTuple[op.Tuple] = i
		}
		// (3) pass count consistent
		count, last := 1, -1
		for _, in := range instrs {
			p := int(in.Stage)<<8 | int(in.Array)
			if p <= last {
				count++
				last = -1
			}
			last = p
		}
		return count == passes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
