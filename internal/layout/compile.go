package layout

import (
	"fmt"

	"repro/internal/txnwire"
)

// HotOp is one operation of a hot transaction before compilation: which
// tuple it touches, what the switch should do, and which earlier operation
// it depends on (-1 for none). Dependencies constrain the emission order —
// a dependent operation cannot be hoisted before its producer.
type HotOp struct {
	Tuple     TupleID
	Op        txnwire.Op
	Operand   int64
	DependsOn int
}

// ErrNotLaidOut reports a hot operation on a tuple without a switch slot.
type ErrNotLaidOut struct{ Tuple TupleID }

func (e ErrNotLaidOut) Error() string {
	return fmt.Sprintf("layout: tuple %d has no switch slot", e.Tuple)
}

// Compile translates a hot transaction's operations into switch
// instructions, ordering them to minimize pipeline passes.
//
// The database node may reorder independent operations freely (their
// results are position-independent), but an operation must stay after the
// operation it depends on. Compile greedily emits, among the
// dependency-ready operations, the one whose slot extends the current pass
// (smallest position strictly after the previous instruction); when no
// ready operation fits, it starts a new pass. It returns the instructions,
// a permutation mapping instruction index -> original operation index
// (callers use it to route switch results back to their operations), and
// the number of passes the sequence needs.
func Compile(ops []HotOp, l *Layout) (instrs []txnwire.Instr, perm []int, passes int, err error) {
	n := len(ops)
	if n == 0 {
		return nil, nil, 0, nil
	}
	slots := make([]Slot, n)
	for i, op := range ops {
		s, ok := l.SlotOf(op.Tuple)
		if !ok {
			return nil, nil, 0, ErrNotLaidOut{op.Tuple}
		}
		slots[i] = s
	}

	// Effective dependencies: the declared one plus an implicit edge to
	// the latest earlier operation on the same tuple — program order on a
	// single tuple must never be reversed, whatever the slot order says.
	deps := make([][]int, n)
	lastOnTuple := make(map[TupleID]int, n)
	for i, op := range ops {
		if d := op.DependsOn; d >= 0 && d < i {
			deps[i] = append(deps[i], d)
		}
		if prev, ok := lastOnTuple[op.Tuple]; ok {
			deps[i] = append(deps[i], prev)
		}
		lastOnTuple[op.Tuple] = i
	}

	emitted := make([]bool, n)
	instrs = make([]txnwire.Instr, 0, n)
	perm = make([]int, 0, n)
	lastPos := -1
	passes = 1
	for len(perm) < n {
		// Ready ops: dependency already emitted.
		best := -1
		bestPos := 0
		fresh := -1 // best op if we must start a new pass
		freshPos := 0
	scan:
		for i := 0; i < n; i++ {
			if emitted[i] {
				continue
			}
			for _, d := range deps[i] {
				if !emitted[d] {
					continue scan
				}
			}
			p := slots[i].pos()
			if p > lastPos && (best == -1 || p < bestPos) {
				best, bestPos = i, p
			}
			if fresh == -1 || p < freshPos {
				fresh, freshPos = i, p
			}
		}
		pick := best
		if pick == -1 {
			if fresh == -1 {
				return nil, nil, 0, fmt.Errorf("layout: dependency cycle in hot transaction")
			}
			pick = fresh
			passes++
			lastPos = -1
		}
		emitted[pick] = true
		lastPos = slots[pick].pos()
		instrs = append(instrs, txnwire.Instr{
			Op:      ops[pick].Op,
			Stage:   slots[pick].Stage,
			Array:   slots[pick].Array,
			Index:   slots[pick].Index,
			Operand: ops[pick].Operand,
		})
		perm = append(perm, pick)
	}
	return instrs, perm, passes, nil
}
