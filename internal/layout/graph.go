// Package layout implements P4DB's declustered storage model (Section 4).
//
// Given the hot tuples and the hot transactions of a workload, the goal is
// to assign each tuple to one register array of one MAU stage such that as
// many transactions as possible execute in a single pipeline pass. The
// problem is modelled as a graph: tuples are nodes, tuples co-accessed by
// a transaction are connected by weighted edges, and ordering dependencies
// between operations (read-dependent writes) make edges directed. A
// capacity-constrained max-cut spreads co-accessed tuples over different
// register arrays; the cut directions then impose a topological order of
// the partitions onto pipeline stages.
//
// The paper uses the MQLib heuristic solver; this package substitutes a
// greedy multi-start construction with local-search refinement, which is
// sufficient to reach the paper's qualitative result (near-all single-pass
// transactions for SmallBank/YCSB under the optimal layout, many
// multi-pass transactions under a random layout).
package layout

import (
	"fmt"
	"sort"
)

// TupleID identifies a hot tuple globally (table-qualified key).
type TupleID uint64

// Access is one operation of a transaction for layout purposes: which
// tuple it touches and which earlier operation of the same transaction it
// depends on (-1 for none). A dependency forces the dependent operation
// into a later pipeline stage (or a later pass).
type Access struct {
	Tuple     TupleID
	DependsOn int
}

type edgeKey struct{ u, v TupleID } // canonical: u < v

type edgeInfo struct {
	weight int64 // co-access frequency
	fwd    int64 // weight of ordered dependencies u -> v
	rev    int64 // weight of ordered dependencies v -> u
}

// Graph is the transaction-access graph of Section 4.2.
type Graph struct {
	freq  map[TupleID]int64
	edges map[edgeKey]*edgeInfo
}

// NewGraph returns an empty access graph.
func NewGraph() *Graph {
	return &Graph{freq: make(map[TupleID]int64), edges: make(map[edgeKey]*edgeInfo)}
}

// AddTuple registers a tuple even if no transaction touches it (it still
// needs a slot on the switch).
func (g *Graph) AddTuple(t TupleID) {
	if _, ok := g.freq[t]; !ok {
		g.freq[t] = 0
	}
}

// AddTxn folds one transaction's accesses into the graph: every pair of
// distinct tuples gains co-access weight, and declared dependencies add
// directed weight.
func (g *Graph) AddTxn(accesses []Access) {
	for i, a := range accesses {
		g.freq[a.Tuple]++
		for j := i + 1; j < len(accesses); j++ {
			b := accesses[j]
			if a.Tuple == b.Tuple {
				continue
			}
			e := g.edge(a.Tuple, b.Tuple)
			e.weight++
		}
		if a.DependsOn >= 0 && a.DependsOn < i {
			dep := accesses[a.DependsOn]
			if dep.Tuple != a.Tuple {
				e := g.edge(dep.Tuple, a.Tuple)
				if dep.Tuple < a.Tuple {
					e.fwd++
				} else {
					e.rev++
				}
			}
		}
	}
}

func (g *Graph) edge(a, b TupleID) *edgeInfo {
	k := edgeKey{a, b}
	if a > b {
		k = edgeKey{b, a}
	}
	e, ok := g.edges[k]
	if !ok {
		e = &edgeInfo{}
		g.edges[k] = e
	}
	return e
}

// Tuples returns all registered tuples in deterministic (sorted) order.
func (g *Graph) Tuples() []TupleID {
	out := make([]TupleID, 0, len(g.freq))
	for t := range g.freq {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumTuples returns the number of registered tuples.
func (g *Graph) NumTuples() int { return len(g.freq) }

// TotalEdgeWeight returns the sum of all co-access weights.
func (g *Graph) TotalEdgeWeight() int64 {
	var sum int64
	for _, e := range g.edges {
		sum += e.weight
	}
	return sum
}

// CutWeight returns the total weight of edges whose endpoints are in
// different partitions under the given assignment.
func (g *Graph) CutWeight(part map[TupleID]int) int64 {
	var cut int64
	for k, e := range g.edges {
		if part[k.u] != part[k.v] {
			cut += e.weight
		}
	}
	return cut
}

// String summarizes the graph for diagnostics.
func (g *Graph) String() string {
	return fmt.Sprintf("layout.Graph{tuples=%d edges=%d weight=%d}", len(g.freq), len(g.edges), g.TotalEdgeWeight())
}

// maxCut partitions the tuples into k groups of at most capacity tuples
// each, heuristically maximizing the cut weight. It is a greedy placement
// in descending incident-weight order followed by first-improvement local
// search (node moves), the classic scheme the MQLib heuristics build on.
//
// Internally every tuple is mapped to a dense index once, so the inner
// gain loops run over slices instead of hashing 64-bit tuple ids — the
// hashing dominated the whole offline preparation step before. The
// decisions (placements, tie-breaks, move/swap acceptance) are identical
// to the map-based implementation, so computed layouts are unchanged.
func (g *Graph) maxCut(k int, capacity int) map[TupleID]int {
	tuples := g.Tuples()
	if k <= 0 {
		panic("layout: maxCut with k <= 0")
	}
	if len(tuples) > k*capacity {
		panic(fmt.Sprintf("layout: %d tuples exceed %d partitions x %d capacity", len(tuples), k, capacity))
	}

	n := len(tuples)
	idx := make(map[TupleID]int32, n)
	for i, t := range tuples {
		idx[t] = int32(i)
	}

	// Dense adjacency for fast gain computation. The append order depends
	// on map iteration, but every consumer below either sums a whole list
	// or looks up a unique pair weight, so results do not depend on it.
	type neighbor struct {
		other int32
		w     int64
	}
	adj := make([][]neighbor, n)
	for key, e := range g.edges {
		if e.weight == 0 {
			continue
		}
		u, v := idx[key.u], idx[key.v]
		adj[u] = append(adj[u], neighbor{v, e.weight})
		adj[v] = append(adj[v], neighbor{u, e.weight})
	}

	// Order nodes by total incident weight, heaviest first, so that the
	// placement of high-contention tuples is decided while all partitions
	// are still open. Dense indices ascend with tuple ids (tuples is
	// sorted), so the tie-break matches the map-based ordering.
	incident := make([]int64, n)
	for i, ns := range adj {
		for _, nb := range ns {
			incident[i] += nb.w
		}
	}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		if incident[order[i]] != incident[order[j]] {
			return incident[order[i]] > incident[order[j]]
		}
		return order[i] < order[j]
	})

	part := make([]int32, n)
	for i := range part {
		part[i] = -1 // unplaced
	}
	size := make([]int, k)

	internalWeight := func(t int32, p int32) int64 {
		var w int64
		for _, nb := range adj[t] {
			if part[nb.other] == p {
				w += nb.w
			}
		}
		return w
	}

	for _, t := range order {
		best, bestW := int32(-1), int64(1<<62)
		for p := int32(0); p < int32(k); p++ {
			if size[p] >= capacity {
				continue
			}
			w := internalWeight(t, p)
			// Prefer lower internal weight (maximizes cut); break ties
			// toward the emptiest partition for balance.
			if w < bestW || (w == bestW && (best == -1 || size[p] < size[best])) {
				best, bestW = p, w
			}
		}
		if best == -1 {
			panic("layout: no partition with free capacity")
		}
		part[t] = best
		size[best]++
	}

	// Local search: single-node moves plus pairwise swaps. Moves alone
	// cannot improve capacity-tight instances (all partitions full), so a
	// swap pass exchanges a conflicted node with a node from a better
	// partition when that lowers total internal weight.
	edgeW := func(a, b int32) int64 {
		for _, nb := range adj[a] {
			if nb.other == b {
				return nb.w
			}
		}
		return 0
	}
	for pass := 0; pass < 8; pass++ {
		improved := false
		for _, t := range order {
			cur := part[t]
			curW := internalWeight(t, cur)
			for p := int32(0); p < int32(k); p++ {
				if p == cur || size[p] >= capacity {
					continue
				}
				if internalWeight(t, p) < curW {
					part[t] = p
					size[cur]--
					size[p]++
					curW = internalWeight(t, p)
					cur = p
					improved = true
					break
				}
			}
			if curW == 0 {
				continue
			}
			// Swap pass for conflicted nodes: try exchanging t with a
			// node of each other partition.
			for _, u := range order {
				pu := part[u]
				if pu == cur || u == t {
					continue
				}
				w := edgeW(t, u)
				old := curW + internalWeight(u, pu)
				nw := internalWeight(t, pu) - w + internalWeight(u, cur) - w
				if nw < old {
					part[t], part[u] = pu, cur
					cur = pu
					curW = internalWeight(t, cur)
					improved = true
					if curW == 0 {
						break
					}
				}
			}
		}
		if !improved {
			break
		}
	}

	out := make(map[TupleID]int, n)
	for i, t := range tuples {
		out[t] = int(part[i])
	}
	return out
}
