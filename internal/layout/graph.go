// Package layout implements P4DB's declustered storage model (Section 4).
//
// Given the hot tuples and the hot transactions of a workload, the goal is
// to assign each tuple to one register array of one MAU stage such that as
// many transactions as possible execute in a single pipeline pass. The
// problem is modelled as a graph: tuples are nodes, tuples co-accessed by
// a transaction are connected by weighted edges, and ordering dependencies
// between operations (read-dependent writes) make edges directed. A
// capacity-constrained max-cut spreads co-accessed tuples over different
// register arrays; the cut directions then impose a topological order of
// the partitions onto pipeline stages.
//
// The paper uses the MQLib heuristic solver; this package substitutes a
// greedy multi-start construction with local-search refinement, which is
// sufficient to reach the paper's qualitative result (near-all single-pass
// transactions for SmallBank/YCSB under the optimal layout, many
// multi-pass transactions under a random layout).
package layout

import (
	"fmt"
	"slices"
)

// TupleID identifies a hot tuple globally (table-qualified key).
type TupleID uint64

// Access is one operation of a transaction for layout purposes: which
// tuple it touches and which earlier operation of the same transaction it
// depends on (-1 for none). A dependency forces the dependent operation
// into a later pipeline stage (or a later pass).
type Access struct {
	Tuple     TupleID
	DependsOn int
}

type edgeKey struct{ u, v TupleID } // canonical: u < v

type edgeInfo struct {
	weight int64 // co-access frequency
	fwd    int64 // weight of ordered dependencies u -> v
	rev    int64 // weight of ordered dependencies v -> u
}

// Graph is the transaction-access graph of Section 4.2. Edge records live
// in one growable pool indexed by the edges map: folding a sample into the
// graph is allocation-free per edge and the solver's adjacency pass walks
// contiguous slices instead of chasing per-edge heap pointers. Tuples get
// dense 32-bit ids on first touch, so the pair map hashes one machine word
// (two dense ids packed) instead of a 16-byte tuple-id struct — the pair
// hashing dominated graph construction for TPC-C-sized samples.
type Graph struct {
	freq    map[TupleID]int64
	did     map[TupleID]int32 // tuple -> dense id (assigned on first edge use)
	dtuples []TupleID         // dense id -> tuple
	edges   map[uint64]int32  // packed dense pair (canonical u < v by tuple id) -> epool index
	epool   []edgeInfo
	ekeys   []edgeKey // epool index -> canonical tuple-id pair (for iteration)
	edense  []uint64  // epool index -> packed dense pair (solver adjacency)
	scratch []int32   // per-AddTxn dense-id buffer
}

// NewGraph returns an empty access graph.
func NewGraph() *Graph {
	return &Graph{
		freq:  make(map[TupleID]int64),
		did:   make(map[TupleID]int32),
		edges: make(map[uint64]int32),
	}
}

// denseID returns (assigning on first use) the tuple's dense id.
func (g *Graph) denseID(t TupleID) int32 {
	if d, ok := g.did[t]; ok {
		return d
	}
	d := int32(len(g.dtuples))
	g.did[t] = d
	g.dtuples = append(g.dtuples, t)
	return d
}

// AddTuple registers a tuple even if no transaction touches it (it still
// needs a slot on the switch).
func (g *Graph) AddTuple(t TupleID) {
	if _, ok := g.freq[t]; !ok {
		g.freq[t] = 0
	}
}

// AddTxn folds one transaction's accesses into the graph: every pair of
// distinct tuples gains co-access weight, and declared dependencies add
// directed weight.
func (g *Graph) AddTxn(accesses []Access) {
	if cap(g.scratch) < len(accesses) {
		g.scratch = make([]int32, len(accesses))
	}
	ids := g.scratch[:len(accesses)]
	for i, a := range accesses {
		g.freq[a.Tuple]++
		ids[i] = g.denseID(a.Tuple)
	}
	for i, a := range accesses {
		for j := i + 1; j < len(accesses); j++ {
			b := accesses[j]
			if a.Tuple == b.Tuple {
				continue
			}
			g.edgeAt(a.Tuple, ids[i], b.Tuple, ids[j]).weight++
		}
		if a.DependsOn >= 0 && a.DependsOn < i {
			dep := accesses[a.DependsOn]
			if dep.Tuple != a.Tuple {
				e := g.edgeAt(dep.Tuple, ids[a.DependsOn], a.Tuple, ids[i])
				if dep.Tuple < a.Tuple {
					e.fwd++
				} else {
					e.rev++
				}
			}
		}
	}
}

// edgeAt returns the edge record for a pair whose dense ids are already
// known, canonicalized to ascending tuple id exactly like before.
func (g *Graph) edgeAt(at TupleID, ad int32, bt TupleID, bd int32) *edgeInfo {
	if at > bt {
		at, ad, bt, bd = bt, bd, at, ad
	}
	packed := uint64(uint32(ad))<<32 | uint64(uint32(bd))
	if i, ok := g.edges[packed]; ok {
		return &g.epool[i]
	}
	g.edges[packed] = int32(len(g.epool))
	g.epool = append(g.epool, edgeInfo{})
	g.ekeys = append(g.ekeys, edgeKey{at, bt})
	g.edense = append(g.edense, packed)
	return &g.epool[len(g.epool)-1]
}

func (g *Graph) edge(a, b TupleID) *edgeInfo {
	return g.edgeAt(a, g.denseID(a), b, g.denseID(b))
}

// Tuples returns all registered tuples in deterministic (sorted) order.
func (g *Graph) Tuples() []TupleID {
	out := make([]TupleID, 0, len(g.freq))
	for t := range g.freq {
		out = append(out, t)
	}
	slices.Sort(out)
	return out
}

// NumTuples returns the number of registered tuples.
func (g *Graph) NumTuples() int { return len(g.freq) }

// TotalEdgeWeight returns the sum of all co-access weights.
func (g *Graph) TotalEdgeWeight() int64 {
	var sum int64
	for i := range g.epool {
		sum += g.epool[i].weight
	}
	return sum
}

// CutWeight returns the total weight of edges whose endpoints are in
// different partitions under the given assignment.
func (g *Graph) CutWeight(part map[TupleID]int) int64 {
	var cut int64
	for i, k := range g.ekeys {
		if part[k.u] != part[k.v] {
			cut += g.epool[i].weight
		}
	}
	return cut
}

// String summarizes the graph for diagnostics.
func (g *Graph) String() string {
	return fmt.Sprintf("layout.Graph{tuples=%d edges=%d weight=%d}", len(g.freq), len(g.edges), g.TotalEdgeWeight())
}

// maxCut partitions the tuples into k groups of at most capacity tuples
// each, heuristically maximizing the cut weight. It is a greedy placement
// in descending incident-weight order followed by first-improvement local
// search (node moves), the classic scheme the MQLib heuristics build on.
//
// Internally every tuple is mapped to a dense index once, so the inner
// gain loops run over slices instead of hashing 64-bit tuple ids — the
// hashing dominated the whole offline preparation step before. The
// decisions (placements, tie-breaks, move/swap acceptance) are identical
// to the map-based implementation, so computed layouts are unchanged.
func (g *Graph) maxCut(k int, capacity int) map[TupleID]int {
	tuples := g.Tuples()
	if k <= 0 {
		panic("layout: maxCut with k <= 0")
	}
	if len(tuples) > k*capacity {
		panic(fmt.Sprintf("layout: %d tuples exceed %d partitions x %d capacity", len(tuples), k, capacity))
	}

	n := len(tuples)
	// rank maps a dense id to the tuple's position in sorted-tuple order —
	// the same index the retired idx map produced, computed without
	// hashing. Tuples that never gained an edge have no dense id and no
	// adjacency, so the lookup misses below cannot occur.
	rank := make([]int32, len(g.dtuples))
	for i, t := range tuples {
		if d, ok := g.did[t]; ok {
			rank[d] = int32(i)
		}
	}

	// Dense adjacency for fast gain computation. The append order follows
	// edge-pool order, but every consumer below either sums a whole list
	// or looks up a unique pair weight, so results do not depend on it.
	type neighbor struct {
		other int32
		w     int64
	}
	adj := make([][]neighbor, n)
	for i, packed := range g.edense {
		w := g.epool[i].weight
		if w == 0 {
			continue
		}
		u, v := rank[packed>>32], rank[uint32(packed)]
		adj[u] = append(adj[u], neighbor{v, w})
		adj[v] = append(adj[v], neighbor{u, w})
	}

	// Order nodes by total incident weight, heaviest first, so that the
	// placement of high-contention tuples is decided while all partitions
	// are still open. Dense indices ascend with tuple ids (tuples is
	// sorted), so the tie-break matches the map-based ordering.
	incident := make([]int64, n)
	for i, ns := range adj {
		for _, nb := range ns {
			incident[i] += nb.w
		}
	}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	slices.SortFunc(order, func(a, b int32) int {
		if incident[a] != incident[b] {
			if incident[a] > incident[b] {
				return -1
			}
			return 1
		}
		return int(a - b)
	})

	part := make([]int32, n)
	for i := range part {
		part[i] = -1 // unplaced
	}
	size := make([]int, k)

	// inW[t*k+p] is the total edge weight from t into partition p,
	// maintained incrementally as nodes are placed and moved. Reading it is
	// O(1) where the scan-based internalWeight was O(deg) — the scans (and
	// the linear edge-weight lookups below) dominated the offline
	// preparation step for TPC-C-sized graphs. The maintained values equal
	// the scan results exactly, so every placement, move and swap decision
	// is unchanged.
	inW := make([]int64, n*k)
	internalWeight := func(t int32, p int32) int64 {
		return inW[int(t)*k+int(p)]
	}
	// enter adds t's incident weights to its neighbors' partition-p
	// columns; shift moves them between columns when t migrates.
	enter := func(t int32, p int32) {
		for _, nb := range adj[t] {
			inW[int(nb.other)*k+int(p)] += nb.w
		}
	}
	shift := func(t int32, from, to int32) {
		for _, nb := range adj[t] {
			row := int(nb.other) * k
			inW[row+int(from)] -= nb.w
			inW[row+int(to)] += nb.w
		}
	}

	for _, t := range order {
		best, bestW := int32(-1), int64(1<<62)
		for p := int32(0); p < int32(k); p++ {
			if size[p] >= capacity {
				continue
			}
			w := internalWeight(t, p)
			// Prefer lower internal weight (maximizes cut); break ties
			// toward the emptiest partition for balance.
			if w < bestW || (w == bestW && (best == -1 || size[p] < size[best])) {
				best, bestW = p, w
			}
		}
		if best == -1 {
			panic("layout: no partition with free capacity")
		}
		part[t] = best
		size[best]++
		enter(t, best)
	}

	// Local search: single-node moves plus pairwise swaps. Moves alone
	// cannot improve capacity-tight instances (all partitions full), so a
	// swap pass exchanges a conflicted node with a node from a better
	// partition when that lowers total internal weight.
	// Adjacency lists sorted by neighbor index turn the pair-weight lookup
	// into a binary search (the append order above is meaningless, so
	// sorting loses nothing). Only the lists of conflicted nodes are ever
	// probed, so each list is sorted lazily on its first lookup.
	adjSorted := make([]bool, n)
	edgeW := func(a, b int32) int64 {
		if !adjSorted[a] {
			adjSorted[a] = true
			slices.SortFunc(adj[a], func(x, y neighbor) int { return int(x.other - y.other) })
		}
		ns := adj[a]
		lo, hi := 0, len(ns)
		for lo < hi {
			mid := (lo + hi) / 2
			if ns[mid].other < b {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(ns) && ns[lo].other == b {
			return ns[lo].w
		}
		return 0
	}
	for pass := 0; pass < 8; pass++ {
		improved := false
		for _, t := range order {
			cur := part[t]
			curW := internalWeight(t, cur)
			for p := int32(0); p < int32(k); p++ {
				if p == cur || size[p] >= capacity {
					continue
				}
				if internalWeight(t, p) < curW {
					part[t] = p
					size[cur]--
					size[p]++
					shift(t, cur, p)
					curW = internalWeight(t, p)
					cur = p
					improved = true
					break
				}
			}
			if curW == 0 {
				continue
			}
			// Swap pass for conflicted nodes: try exchanging t with a
			// node of each other partition.
			for _, u := range order {
				pu := part[u]
				if pu == cur || u == t {
					continue
				}
				w := edgeW(t, u)
				old := curW + internalWeight(u, pu)
				nw := internalWeight(t, pu) - w + internalWeight(u, cur) - w
				if nw < old {
					part[t], part[u] = pu, cur
					shift(t, cur, pu)
					shift(u, pu, cur)
					cur = pu
					curW = internalWeight(t, cur)
					improved = true
					if curW == 0 {
						break
					}
				}
			}
		}
		if !improved {
			break
		}
	}

	out := make(map[TupleID]int, n)
	for i, t := range tuples {
		out[t] = int(part[i])
	}
	return out
}
