package core

import (
	"sync"
	"sync/atomic"
	"testing"
)

// shardKey builds a key landing in shard s with a distinguishing suffix.
func shardKey(s byte, n int) [32]byte {
	var k [32]byte
	k[0] = s
	k[1] = byte(n)
	k[2] = byte(n >> 8)
	return k
}

func dummyArtifacts() *detectArtifacts { return &detectArtifacts{} }

// TestDetectCacheHitMissCounters checks the accounting: a first build
// misses, a repeat hits, and size tracks live entries.
func TestDetectCacheHitMissCounters(t *testing.T) {
	ResetDetectCacheStats()
	key := shardKey(1, 1)
	computes := 0
	get := func() *detectArtifacts {
		return getDetect(key, func() *detectArtifacts { computes++; return dummyArtifacts() })
	}
	a := get()
	b := get()
	if computes != 1 {
		t.Fatalf("computed %d times, want 1", computes)
	}
	if a != b {
		t.Fatal("repeat lookup returned a different artifact")
	}
	s := DetectCacheStats()
	if s.Misses < 1 || s.Hits < 1 {
		t.Fatalf("stats = %+v, want >=1 miss and >=1 hit", s)
	}
}

// TestDetectCacheBounded drives one shard far past its cap and checks the
// generation sweep keeps the shard bounded and counts evictions.
func TestDetectCacheBounded(t *testing.T) {
	ResetDetectCacheStats()
	const shard = 2
	for n := 0; n < 6*detectShardCap; n++ {
		getDetect(shardKey(shard, n), dummyArtifacts)
	}
	s := &detectCache[shard]
	s.mu.Lock()
	live := len(s.cur) + len(s.prev)
	s.mu.Unlock()
	if live > 2*detectShardCap {
		t.Fatalf("shard holds %d entries, bound is %d", live, 2*detectShardCap)
	}
	if st := DetectCacheStats(); st.Evictions == 0 {
		t.Fatalf("no evictions recorded after overflowing the shard: %+v", st)
	}
}

// TestDetectCachePromotion checks an old-generation hit survives the next
// rotation: the promoted entry must still resolve without recomputing.
func TestDetectCachePromotion(t *testing.T) {
	const shard = 3
	hot := shardKey(shard, 9999)
	computes := 0
	getHot := func() *detectArtifacts {
		return getDetect(hot, func() *detectArtifacts { computes++; return dummyArtifacts() })
	}
	getHot()
	// Rotate once: hot moves to the previous generation...
	for n := 0; n < detectShardCap; n++ {
		getDetect(shardKey(shard, n), dummyArtifacts)
	}
	// ...touch it (promoting it back), then rotate again.
	getHot()
	for n := detectShardCap; n < 2*detectShardCap; n++ {
		getDetect(shardKey(shard, n), dummyArtifacts)
	}
	getHot()
	if computes != 1 {
		t.Fatalf("hot entry recomputed %d times despite promotion, want 1", computes)
	}
}

// TestDetectCacheSingleflight checks that concurrent builders of the same
// preparation share one computation instead of each burning a core.
func TestDetectCacheSingleflight(t *testing.T) {
	key := shardKey(4, 77)
	var computes atomic.Int64
	start := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]*detectArtifacts, 16)
	for i := range results {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			results[i] = getDetect(key, func() *detectArtifacts {
				computes.Add(1)
				return dummyArtifacts()
			})
		}()
	}
	close(start)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("computed %d times under concurrency, want 1", n)
	}
	for i, r := range results {
		if r != results[0] {
			t.Fatalf("caller %d got a different artifact", i)
		}
	}
}
