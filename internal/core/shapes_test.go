package core

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// runShape measures one YCSB-A point for shape tests (4 nodes for speed).
func runShape(t *testing.T, sys string, workers, distPct, hotPct int) *Result {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Engine = sys
	cfg.Nodes = 4
	cfg.WorkersPerNode = workers
	cfg.SampleTxns = 15000
	w := workload.YCSBWorkloadA(cfg.Nodes)
	w.DistPct = distPct
	w.HotTxnPct = hotPct
	w.RowsPerNode = 1 << 22
	c := NewCluster(cfg, workload.NewYCSB(w))
	return c.Run(500*sim.Microsecond, 3*sim.Millisecond)
}

func speedupAt(t *testing.T, workers, distPct, hotPct int) float64 {
	t.Helper()
	ns := runShape(t, "noswitch", workers, distPct, hotPct)
	p4 := runShape(t, "p4db", workers, distPct, hotPct)
	if ns.Throughput() == 0 {
		t.Fatal("baseline committed nothing")
	}
	return p4.Throughput() / ns.Throughput()
}

// TestShapeSpeedupGrowsWithContention reproduces the upper rows of
// Figures 11/13/14: more worker threads increase contention on the hot
// set, which hurts the baseline more than P4DB.
func TestShapeSpeedupGrowsWithContention(t *testing.T) {
	low := speedupAt(t, 6, 20, 75)
	high := speedupAt(t, 18, 20, 75)
	if high <= low {
		t.Fatalf("speedup did not grow with load: %.2fx at 6 thr vs %.2fx at 18 thr", low, high)
	}
	if low < 1 {
		t.Fatalf("P4DB slower than baseline even at low load: %.2fx", low)
	}
}

// TestShapeSpeedupGrowsWithDistribution reproduces the lower rows of
// Figures 11/13/14: distributed transactions pay full round trips in the
// baseline but only half to the switch.
func TestShapeSpeedupGrowsWithDistribution(t *testing.T) {
	low := speedupAt(t, 12, 25, 75)
	high := speedupAt(t, 12, 100, 75)
	if high <= low {
		t.Fatalf("speedup did not grow with distribution: %.2fx at 25%% vs %.2fx at 100%%", low, high)
	}
}

// TestShapeNoHotNoEffect reproduces the 0% end of Figure 15b: with no hot
// transactions the switch only forwards packets and P4DB must match the
// baseline within measurement tolerance.
func TestShapeNoHotNoEffect(t *testing.T) {
	s := speedupAt(t, 12, 20, 0)
	if s < 0.9 || s > 1.1 {
		t.Fatalf("speedup at 0%% hot = %.2fx, want ~1.0x", s)
	}
}

// TestShapeAllHotLargeEffect reproduces the 100% end of Figure 15b.
func TestShapeAllHotLargeEffect(t *testing.T) {
	s := speedupAt(t, 12, 20, 100)
	if s < 5 {
		t.Fatalf("speedup at 100%% hot = %.2fx, want large (paper: >50x)", s)
	}
}
