package core

import (
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/hotset"
	"repro/internal/layout"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/pisa"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/workload"
)

// Cluster is the whole system under test: nodes, network, switch, the
// offloaded hot-set and its layout, driven by the configured execution
// engine.
type Cluster struct {
	cfg Config
	env *sim.Env
	gen workload.Generator
	eng engine.Engine
	ctx *engine.Context

	baseline []int64 // switch registers right after offload (recovery base)

	redoBase *store.Store   // crashed partition's load-time image (node-crash redo)
	recovery *RecoveryStats // filled by the fault handler once it fired
}

// NewCluster builds and loads the system: it creates the nodes, populates
// the benchmark's partitions, runs the offline hot-tuple detection and
// layout computation, and hands the result to the configured engine's
// Prepare step (which, for P4DB, offloads the hot tuples into the switch
// registers).
func NewCluster(cfg Config, gen workload.Generator) *Cluster {
	if gen.Nodes() != cfg.Nodes {
		panic(fmt.Sprintf("core: generator partitions %d nodes, config has %d", gen.Nodes(), cfg.Nodes))
	}
	eng, err := engine.Lookup(cfg.Engine)
	if err != nil {
		panic(fmt.Sprintf("core: %v", err))
	}
	sch, err := engine.ResolveScheme(eng, cfg.Scheme)
	if err != nil {
		panic(fmt.Sprintf("core: %v", err))
	}
	env := sim.NewEnv(cfg.Seed)
	// Drifting generators derive their phase from the cluster's virtual
	// clock; inject it before population and detection so the offline
	// sample is drawn at phase 0 (time zero) — exactly the snapshot a
	// static layout is tuned to.
	if cd, ok := gen.(workload.ClockDriven); ok {
		cd.SetClock(env.Now)
	}
	ctx := &engine.Context{
		Env:       env,
		Net:       netsim.New(env, cfg.Nodes, cfg.Latency),
		Sw:        pisa.New(env, cfg.Switch),
		Gen:       gen,
		Costs:     cfg.costsFor(eng.Name(), sch.Name()),
		Scheme:    sch,
		Policy:    cfg.Policy,
		SwitchCfg: cfg.Switch,
		BatchSize: cfg.BatchSize,
		Durable:   cfg.Durable,
	}
	if cfg.NoDeliveryBatching {
		ctx.Net.SetCoalescing(false)
	}
	c := &Cluster{cfg: cfg, env: env, gen: gen, eng: eng, ctx: ctx}
	stores := make([]*store.Store, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		n := engine.NewNode(netsim.NodeID(i), env, cfg.Policy, sch)
		stores[i] = n.Store()
		ctx.Nodes = append(ctx.Nodes, n)
	}
	gen.Populate(stores)
	sch.Init(ctx)

	c.detect()
	if err := eng.Prepare(ctx); err != nil {
		panic(fmt.Sprintf("core: engine %q failed to prepare: %v", eng.Name(), err))
	}
	if ctx.UseSwitch {
		c.baseline = ctx.Sw.Snapshot()
	}
	// The online adaptive layout only makes sense for engines that
	// offloaded tuples into the switch; for all others the flag is a
	// documented no-op.
	if cfg.Adaptive && ctx.UseSwitch {
		interval := cfg.AdaptInterval
		if interval <= 0 {
			interval = DefaultAdaptInterval
		}
		capRows := cfg.Switch.Capacity()
		if cfg.HotSetCap > 0 && cfg.HotSetCap < capRows {
			capRows = cfg.HotSetCap
		}
		ctx.StartAdaptive(interval, capRows)
	}
	if cfg.Fault != nil {
		c.installFault(cfg.Fault)
	}
	return c
}

// detect performs the strategy-independent part of the offline preparation
// step of Figure 3: replay a workload sample, select the hot-set and
// compute the data layout. Loading the switch registers is the P4DB
// engine's Prepare step.
func (c *Cluster) detect() {
	sampleRNG := sim.NewRNG(c.cfg.Seed ^ 0x5EED)
	samples := make([][]hotset.Access, 0, c.cfg.SampleTxns)
	for i := 0; i < c.cfg.SampleTxns; i++ {
		txn := c.gen.Next(sampleRNG, netsim.NodeID(i%c.cfg.Nodes))
		accs := make([]hotset.Access, len(txn.Ops))
		for j, op := range txn.Ops {
			accs[j] = hotset.Access{Key: op.TupleKey(), DependsOn: op.DependsOn}
		}
		samples = append(samples, accs)
	}
	cap := c.cfg.Switch.Capacity()
	if c.cfg.HotSetCap > 0 && c.cfg.HotSetCap < cap {
		cap = c.cfg.HotSetCap
	}

	// The preparation result is a pure function of (sample, cap, switch
	// geometry, layout mode, seed); sweep points that only vary workers or
	// engine share it via the detection cache (see detectcache.go), and
	// concurrent sweep points computing the same preparation share one
	// computation.
	key := detectKey(c.cfg, samples, cap)
	art := getDetect(key, func() *detectArtifacts {
		var hs *hotset.HotSet
		if len(c.cfg.ExplicitHot) > 0 {
			hs = hotset.FromKeys(c.cfg.ExplicitHot, samples, cap)
		} else {
			hs = hotset.DetectAuto(samples, cap)
		}

		hotLabel := make(map[store.GlobalKey]bool, hs.Size())
		for _, k := range hs.Keys() {
			hotLabel[k] = true
		}

		spec := layout.Spec{
			Stages:         c.cfg.Switch.Stages,
			ArraysPerStage: c.cfg.Switch.ArraysPerStage,
			SlotsPerArray:  c.cfg.Switch.SlotsPerArray,
		}
		var l *layout.Layout
		if c.cfg.RandomLayout {
			l = layout.Random(hs.Graph(), spec, sim.NewRNG(c.cfg.Seed^0xBAD))
		} else {
			l = refineLayout(hs, samples, spec)
		}
		return &detectArtifacts{hotLabel: hotLabel, layout: l, hotIdx: hotset.BuildIndex(hs, l)}
	})
	c.ctx.HotLabel = art.hotLabel
	c.ctx.Layout = art.layout
	c.ctx.HotIdx = art.hotIdx
}

// refineLayout is the profile-guided step of the layout algorithm: the
// max-cut only separates tuple pairs the sample happened to co-access, so
// after solving we replay the sample against the computed layout, find
// transactions whose tuples still collide in one register array (which
// would force a multi-pass execution), reinforce those edges and re-solve.
// A few iterations drive the single-pass fraction to (nearly) one, which
// is the declustered storage model's stated goal (Section 4.2).
func refineLayout(hs *hotset.HotSet, samples [][]hotset.Access, spec layout.Spec) *layout.Layout {
	g := hs.Graph()
	l := layout.Optimal(g, spec)
	for iter := 0; iter < 4; iter++ {
		collisions := 0
		for _, txn := range samples {
			kept := hs.Restrict(txn)
			if len(kept) < 2 {
				continue
			}
			// Group the transaction's distinct tuples by register array;
			// two distinct tuples in one array cannot both execute in a
			// single pass.
			byArray := make(map[[2]uint8]layout.TupleID, len(kept))
			for _, a := range kept {
				s, ok := l.SlotOf(a.Tuple)
				if !ok {
					continue
				}
				arr := [2]uint8{s.Stage, s.Array}
				if prev, clash := byArray[arr]; clash && prev != a.Tuple {
					collisions++
					// Reinforce the separating edge well above the
					// sampled co-access weights.
					for b := 0; b < 8; b++ {
						g.AddTxn([]layout.Access{{Tuple: prev, DependsOn: -1}, {Tuple: a.Tuple, DependsOn: -1}})
					}
				} else {
					byArray[arr] = a.Tuple
				}
			}
		}
		if collisions == 0 {
			break
		}
		l = layout.Optimal(g, spec)
	}
	return l
}

// Env returns the cluster's simulation environment.
func (c *Cluster) Env() *sim.Env { return c.env }

// Switch returns the switch model.
func (c *Cluster) Switch() *pisa.Switch { return c.ctx.Sw }

// Node returns node i.
func (c *Cluster) Node(i int) *Node { return c.ctx.Nodes[i] }

// HotIndex returns the replicated hot index.
func (c *Cluster) HotIndex() *hotset.Index { return c.ctx.HotIdx }

// Layout returns the computed switch layout.
func (c *Cluster) Layout() *layout.Layout { return c.ctx.Layout }

// Baseline returns the switch register snapshot taken right after the
// offload (the recovery base state); nil for engines that leave the
// switch registers unused.
func (c *Cluster) Baseline() []int64 { return c.baseline }

// Engine returns the execution strategy the cluster runs.
func (c *Cluster) Engine() engine.Engine { return c.eng }

// EngineContext exposes the shared engine substrate (tests and drivers
// that execute transactions outside the closed worker loop).
func (c *Cluster) EngineContext() *engine.Context { return c.ctx }

// Result is the outcome of a measured run.
type Result struct {
	Engine      string // engine registry name, e.g. "p4db" (valid as Config.Engine)
	EngineLabel string // the engine's display label, e.g. "P4DB"
	Scheme      string // resolved CC scheme name the run executed, e.g. "mvcc"
	Workload    string
	Duration    sim.Time
	Counters    metrics.Counters
	Breakdown   metrics.Breakdown
	Latency     metrics.LatencyHist
	SwitchTxns  int64
	Recircs     int64

	// Online adaptive layout statistics (zero for static-layout runs):
	// completed migrations, tuples promoted node→switch, tuples demoted
	// switch→node, and executions parked at a migration fence.
	Migrations int64
	Promoted   int64
	Demoted    int64
	FenceWaits int64

	// Recovery reports what the crash handler did when the run carried a
	// FaultPlan; nil otherwise. StateDigest is the cluster's full state
	// digest after the run (Config.CaptureState); the fault matrix pins
	// fault-injected digests against their no-fault golden cells.
	Recovery    *RecoveryStats
	StateDigest string

	// Events is the number of simulator events the whole run executed
	// (warmup + measurement) and WallSeconds the wall-clock time it took:
	// together they measure the harness itself, not the simulated system.
	// Wall-clock numbers vary run to run; everything else in a Result is
	// deterministic for a seed.
	Events      int64
	WallSeconds float64
}

// Throughput returns committed transactions per (virtual) second.
func (r *Result) Throughput() float64 {
	if r.Duration == 0 {
		return 0
	}
	return float64(r.Counters.Committed()) / r.Duration.Seconds()
}

// EventsPerSec returns the scheduler's wall-clock event throughput — the
// harness speed metric tracked in BENCH_sim.json.
func (r *Result) EventsPerSec() float64 {
	if r.WallSeconds <= 0 {
		return 0
	}
	return float64(r.Events) / r.WallSeconds
}

// Run executes the workload with the configured worker count for warmup +
// measure virtual time and returns the measured-window result. The
// environment is shut down afterwards; a Cluster is single-use.
func (c *Cluster) Run(warmup, measure sim.Time) *Result {
	wallStart := time.Now()
	for _, n := range c.ctx.Nodes {
		for w := 0; w < c.cfg.WorkersPerNode; w++ {
			rng := c.env.Rand().Fork(uint64(n.ID())<<16 | uint64(w))
			// Workers are continuation-driven state machines (see
			// engine.Context.StartWorker): each one is a chain of scheduled
			// callbacks, so a run's schedule is fully determined by the
			// seed and the spawn order here.
			c.ctx.StartWorker(c.eng, n, rng)
		}
	}
	c.env.RunUntil(warmup)
	c.ctx.SetMeasuring(true)
	swBefore := c.ctx.Sw.Stats
	c.env.RunUntil(warmup + measure)
	c.ctx.SetMeasuring(false)
	res := &Result{
		Engine:      c.eng.Name(),
		EngineLabel: c.eng.Label(),
		Scheme:      c.ctx.Scheme.Name(),
		Workload:    c.gen.Name(),
		Duration:    measure,
		SwitchTxns:  c.ctx.Sw.Stats.Txns - swBefore.Txns,
		Recircs:     c.ctx.Sw.Stats.Recircs - swBefore.Recircs,
		Events:      c.env.Events(),
		WallSeconds: time.Since(wallStart).Seconds(),
	}
	res.Migrations, res.Promoted, res.Demoted, res.FenceWaits = c.ctx.AdaptiveCounters()
	for _, n := range c.ctx.Nodes {
		res.Counters.Merge(n.Counters())
		res.Breakdown.Merge(n.Breakdown())
		res.Latency.Merge(n.Latency())
	}
	if c.cfg.Fault != nil && c.recovery == nil {
		panic(fmt.Sprintf("core: fault scheduled at %v never fired (run ended at %v)", c.cfg.Fault.At, c.env.Now()))
	}
	res.Recovery = c.recovery
	if c.cfg.CaptureState {
		res.StateDigest = c.StateDigest()
	}
	c.env.Shutdown()
	return res
}
