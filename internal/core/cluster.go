package core

import (
	"fmt"

	"repro/internal/hotset"
	"repro/internal/layout"
	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/pisa"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/wal"
	"repro/internal/workload"
)

// Node is one database server: its store partition, lock table, WAL and
// measurement state.
type Node struct {
	id    netsim.NodeID
	store *store.Store
	locks *lock.Table
	log   *wal.Log
	occ   *occState

	counters  metrics.Counters
	breakdown metrics.Breakdown
	latency   metrics.Histogram
}

// ID returns the node id.
func (n *Node) ID() netsim.NodeID { return n.id }

// Store exposes the node's storage (examples and tests).
func (n *Node) Store() *store.Store { return n.store }

// Log exposes the node's write-ahead log (recovery).
func (n *Node) Log() *wal.Log { return n.log }

// Cluster is the whole system under test: nodes, network, switch, the
// offloaded hot-set and its layout.
type Cluster struct {
	cfg   Config
	env   *sim.Env
	net   *netsim.Network
	gen   workload.Generator
	nodes []*Node

	sw       *pisa.Switch
	hotIdx   *hotset.Index
	layout   *layout.Layout
	baseline []int64 // switch registers right after offload (recovery base)

	// lmLocks is the in-switch central lock manager of the LM-Switch
	// baseline, reachable at half an RTT.
	lmLocks *lock.Table

	nextTS    uint64
	measuring bool
	hotLabel  map[store.GlobalKey]bool // tuples classified hot (all systems)
}

// NewCluster builds and loads the system: it creates the nodes, populates
// the benchmark's partitions, runs the offline hot-tuple detection, and —
// for P4DB — computes the declustered layout and offloads the hot tuples
// into the switch registers.
func NewCluster(cfg Config, gen workload.Generator) *Cluster {
	if gen.Nodes() != cfg.Nodes {
		panic(fmt.Sprintf("core: generator partitions %d nodes, config has %d", gen.Nodes(), cfg.Nodes))
	}
	env := sim.NewEnv(cfg.Seed)
	c := &Cluster{
		cfg: cfg,
		env: env,
		net: netsim.New(env, cfg.Nodes, cfg.Latency),
		gen: gen,
		sw:  pisa.New(env, cfg.Switch),
	}
	stores := make([]*store.Store, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		stores[i] = store.New()
		c.nodes = append(c.nodes, &Node{
			id:    netsim.NodeID(i),
			store: stores[i],
			locks: lock.NewTable(env, cfg.Policy),
			log:   wal.NewLog(i),
			occ:   newOCCState(),
		})
	}
	gen.Populate(stores)

	c.detectAndOffload()
	if cfg.System == LMSwitch {
		c.lmLocks = lock.NewTable(env, cfg.Policy)
	}
	return c
}

// detectAndOffload performs the offline preparation step of Figure 3:
// replay a workload sample, select the hot-set, compute the data layout
// and load the switch registers.
func (c *Cluster) detectAndOffload() {
	sampleRNG := sim.NewRNG(c.cfg.Seed ^ 0x5EED)
	samples := make([][]hotset.Access, 0, c.cfg.SampleTxns)
	for i := 0; i < c.cfg.SampleTxns; i++ {
		txn := c.gen.Next(sampleRNG, netsim.NodeID(i%c.cfg.Nodes))
		accs := make([]hotset.Access, len(txn.Ops))
		for j, op := range txn.Ops {
			accs[j] = hotset.Access{Key: op.TupleKey(), DependsOn: op.DependsOn}
		}
		samples = append(samples, accs)
	}
	cap := c.cfg.Switch.Capacity()
	if c.cfg.HotSetCap > 0 && c.cfg.HotSetCap < cap {
		cap = c.cfg.HotSetCap
	}
	var hs *hotset.HotSet
	if len(c.cfg.ExplicitHot) > 0 {
		hs = hotset.FromKeys(c.cfg.ExplicitHot, samples, cap)
	} else {
		hs = hotset.DetectAuto(samples, cap)
	}

	c.hotLabel = make(map[store.GlobalKey]bool, hs.Size())
	for _, k := range hs.Keys() {
		c.hotLabel[k] = true
	}

	spec := layout.Spec{
		Stages:         c.cfg.Switch.Stages,
		ArraysPerStage: c.cfg.Switch.ArraysPerStage,
		SlotsPerArray:  c.cfg.Switch.SlotsPerArray,
	}
	var l *layout.Layout
	if c.cfg.RandomLayout {
		l = layout.Random(hs.Graph(), spec, sim.NewRNG(c.cfg.Seed^0xBAD))
	} else {
		l = refineLayout(hs, samples, spec)
	}
	c.layout = l
	c.hotIdx = hotset.BuildIndex(hs, l)

	if c.cfg.System == P4DB {
		// Load current tuple values into the assigned registers.
		for _, tid := range l.Tuples() {
			gk := store.GlobalKey(tid)
			table, field, key := gk.SplitField()
			home := c.gen.Home(table, key)
			v := c.nodes[home].store.Table(table).Get(key, field)
			s, _ := l.SlotOf(tid)
			c.sw.WriteRegister(s.Stage, s.Array, s.Index, v)
		}
		c.baseline = c.sw.Snapshot()
	}
}

// refineLayout is the profile-guided step of the layout algorithm: the
// max-cut only separates tuple pairs the sample happened to co-access, so
// after solving we replay the sample against the computed layout, find
// transactions whose tuples still collide in one register array (which
// would force a multi-pass execution), reinforce those edges and re-solve.
// A few iterations drive the single-pass fraction to (nearly) one, which
// is the declustered storage model's stated goal (Section 4.2).
func refineLayout(hs *hotset.HotSet, samples [][]hotset.Access, spec layout.Spec) *layout.Layout {
	g := hs.Graph()
	l := layout.Optimal(g, spec)
	for iter := 0; iter < 4; iter++ {
		collisions := 0
		for _, txn := range samples {
			kept := hs.Restrict(txn)
			if len(kept) < 2 {
				continue
			}
			// Group the transaction's distinct tuples by register array;
			// two distinct tuples in one array cannot both execute in a
			// single pass.
			byArray := make(map[[2]uint8]layout.TupleID, len(kept))
			for _, a := range kept {
				s, ok := l.SlotOf(a.Tuple)
				if !ok {
					continue
				}
				arr := [2]uint8{s.Stage, s.Array}
				if prev, clash := byArray[arr]; clash && prev != a.Tuple {
					collisions++
					// Reinforce the separating edge well above the
					// sampled co-access weights.
					for b := 0; b < 8; b++ {
						g.AddTxn([]layout.Access{{Tuple: prev, DependsOn: -1}, {Tuple: a.Tuple, DependsOn: -1}})
					}
				} else {
					byArray[arr] = a.Tuple
				}
			}
		}
		if collisions == 0 {
			break
		}
		l = layout.Optimal(g, spec)
	}
	return l
}

// Env returns the cluster's simulation environment.
func (c *Cluster) Env() *sim.Env { return c.env }

// Switch returns the switch model.
func (c *Cluster) Switch() *pisa.Switch { return c.sw }

// Node returns node i.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// HotIndex returns the replicated hot index.
func (c *Cluster) HotIndex() *hotset.Index { return c.hotIdx }

// Layout returns the computed switch layout.
func (c *Cluster) Layout() *layout.Layout { return c.layout }

// Baseline returns the switch register snapshot taken right after the
// offload (the recovery base state).
func (c *Cluster) Baseline() []int64 { return c.baseline }

// onSwitch reports whether an operation's tuple lives on the switch.
func (c *Cluster) onSwitch(op workload.Op) bool {
	return c.cfg.System == P4DB && c.hotIdx.OnSwitch(op.TupleKey())
}

// isHotTuple reports whether the tuple was classified hot by detection
// (independent of whether it fits on the switch); baselines use this for
// LM-Switch lock placement and Chiller's inner region.
func (c *Cluster) isHotTuple(op workload.Op) bool {
	return c.hotLabel[op.TupleKey()]
}

// Result is the outcome of a measured run.
type Result struct {
	System     System
	Workload   string
	Duration   sim.Time
	Counters   metrics.Counters
	Breakdown  metrics.Breakdown
	Latency    metrics.Histogram
	SwitchTxns int64
	Recircs    int64
}

// Throughput returns committed transactions per (virtual) second.
func (r *Result) Throughput() float64 {
	if r.Duration == 0 {
		return 0
	}
	return float64(r.Counters.Committed()) / r.Duration.Seconds()
}

// Run executes the workload with the configured worker count for warmup +
// measure virtual time and returns the measured-window result. The
// environment is shut down afterwards; a Cluster is single-use.
func (c *Cluster) Run(warmup, measure sim.Time) *Result {
	for _, n := range c.nodes {
		n := n
		for w := 0; w < c.cfg.WorkersPerNode; w++ {
			rng := c.env.Rand().Fork(uint64(n.id)<<16 | uint64(w))
			c.env.Spawn(fmt.Sprintf("worker-%d-%d", n.id, w), func(p *sim.Proc) {
				c.workerLoop(p, n, rng)
			})
		}
	}
	c.env.RunUntil(warmup)
	c.measuring = true
	swBefore := c.sw.Stats
	c.env.RunUntil(warmup + measure)
	c.measuring = false
	res := &Result{
		System:     c.cfg.System,
		Workload:   c.gen.Name(),
		Duration:   measure,
		SwitchTxns: c.sw.Stats.Txns - swBefore.Txns,
		Recircs:    c.sw.Stats.Recircs - swBefore.Recircs,
	}
	for _, n := range c.nodes {
		res.Counters.Merge(&n.counters)
		res.Breakdown.Merge(&n.breakdown)
		res.Latency.Merge(&n.latency)
	}
	c.env.Shutdown()
	return res
}
