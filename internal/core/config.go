package core

import (
	"repro/internal/engine"
	"repro/internal/lock"
	"repro/internal/netsim"
	"repro/internal/pisa"
	"repro/internal/store"
)

// The concurrency-control vocabulary lives in internal/engine with the
// strategies that use it; core re-exports it so cluster configuration
// stays a single import.
type (
	// CostModel holds the per-operation CPU costs of a database node.
	CostModel = engine.CostModel
	// CCScheme selects the host DBMS's concurrency control family.
	CCScheme = engine.CCScheme
	// Node is one database server: its store partition, lock table, WAL
	// and measurement state.
	Node = engine.Node
)

// Schemes.
const (
	// CC2PL is pessimistic two-phase locking (the paper's main setup).
	CC2PL = engine.CC2PL
	// CCOCC is backward-validation optimistic CC (Appendix A.4).
	CCOCC = engine.CCOCC
)

// DefaultCosts returns the calibrated node cost model.
func DefaultCosts() CostModel { return engine.DefaultCosts() }

// Config describes one cluster under test.
type Config struct {
	// Engine names the execution strategy, resolved in the engine
	// registry: "p4db", "noswitch", "lmswitch", "chiller" or "occ" (see
	// engine.Names for the live list). New strategies become selectable
	// here by registering themselves — no core change required.
	Engine         string
	Nodes          int
	WorkersPerNode int
	Policy         lock.Policy
	// Scheme selects the host DBMS concurrency control family: 2PL (the
	// paper's main setup) or OCC (Appendix A.4). LM-Switch and Chiller
	// are inherently lock-based and always use 2PL.
	Scheme  CCScheme
	Latency netsim.Latency
	Switch  pisa.Config
	Costs   CostModel

	// RandomLayout replaces the declustered (max-cut) layout with the
	// random worst-case layout of the Figure 16 experiment.
	RandomLayout bool
	// HotSetCap bounds how many hot tuples are offloaded; 0 means the
	// switch capacity. Hot tuples beyond the cap stay on their nodes and
	// execute as cold transactions (Figure 17).
	HotSetCap int
	// SampleTxns is the size of the offline detection sample.
	SampleTxns int
	// ExplicitHot bypasses frequency-based detection and offloads exactly
	// these tuples (truncated to the capacity / HotSetCap bound, most
	// frequently sampled first). It is used when the hot-set is known a
	// priori but too large for sampling to resolve individual keys, as in
	// the Figure 17 capacity experiment.
	ExplicitHot []store.GlobalKey
	// Seed drives all randomness; equal seeds reproduce runs exactly.
	Seed uint64
}

// DefaultConfig returns the paper's standard setup: P4DB on 8 nodes,
// NO_WAIT, the default switch and latency models.
func DefaultConfig() Config {
	return Config{
		Engine:         "p4db",
		Nodes:          8,
		WorkersPerNode: 20,
		Policy:         lock.NoWait,
		Latency:        netsim.DefaultLatency(),
		Switch:         pisa.DefaultConfig(),
		Costs:          DefaultCosts(),
		SampleTxns:     100000,
		Seed:           42,
	}
}
