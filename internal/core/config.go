package core

import (
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/lock"
	"repro/internal/netsim"
	"repro/internal/pisa"
	"repro/internal/sim"
	"repro/internal/store"
)

// The concurrency-control vocabulary lives in internal/engine with the
// strategies that use it; core re-exports it so cluster configuration
// stays a single import.
type (
	// CostModel holds the per-operation CPU costs of a database node.
	CostModel = engine.CostModel
	// Node is one database server: its store partition, lock table, WAL
	// and measurement state.
	Node = engine.Node
)

// DefaultCosts returns the calibrated node cost model.
func DefaultCosts() CostModel { return engine.DefaultCosts() }

// Config describes one cluster under test.
type Config struct {
	// Engine names the execution strategy, resolved in the engine
	// registry: "p4db", "noswitch", "lmswitch", "chiller" or "occ" (see
	// engine.Names for the live list). New strategies become selectable
	// here by registering themselves — no core change required.
	Engine         string
	Nodes          int
	WorkersPerNode int
	Policy         lock.Policy
	// Scheme names the host DBMS concurrency-control family, resolved in
	// the scheme registry: "2pl" (the paper's main setup), "occ"
	// (Appendix A.4) or "mvcc" (see engine.SchemeNames for the live
	// list); empty selects 2PL. Unknown names are a hard error at cluster
	// build. Engines that hardwire their scheme (LM-Switch and Chiller
	// are inherently lock-based, the "occ" ablation engine pins OCC)
	// override this setting; Result.Scheme reports what actually ran.
	Scheme  string
	Latency netsim.Latency
	Switch  pisa.Config
	Costs   CostModel
	// CostOverrides replaces the cost model per engine and/or scheme,
	// consulted at cluster build in precedence order "engine/scheme",
	// engine ("chiller" or "chiller/*"), scheme ("*/mvcc"). Strategies
	// that model different hardware — an RDMA-class baseline, a slower
	// validation path — get their own costs without forking the whole
	// Config. Keys naming nothing registered are a hard error at cluster
	// build, as is a bare name that is both an engine and a scheme
	// ("occ") — spell those as "occ/*" or "*/occ".
	CostOverrides map[string]CostModel

	// BatchSize bounds the epoch batches of engines that sequence
	// transactions before execution (the calvin deterministic sequencer
	// dispatches a batch when it holds this many transactions or when the
	// epoch timer fires, whichever comes first); 0 keeps the engine's
	// default. Engines without a sequencing stage ignore it.
	BatchSize int

	// RandomLayout replaces the declustered (max-cut) layout with the
	// random worst-case layout of the Figure 16 experiment.
	RandomLayout bool
	// HotSetCap bounds how many hot tuples are offloaded; 0 means the
	// switch capacity. Hot tuples beyond the cap stay on their nodes and
	// execute as cold transactions (Figure 17).
	HotSetCap int
	// SampleTxns is the size of the offline detection sample.
	SampleTxns int
	// NoDeliveryBatching disables the network's per-destination delivery
	// coalescing (netsim.Network.SetCoalescing(false)): every one-way
	// message gets its own scheduled event. Simulated results are
	// identical either way — the determinism tests run seeded sweeps both
	// ways to prove it — so this knob exists for those tests and for
	// isolating batching in profiles, not for experiments.
	NoDeliveryBatching bool
	// ExplicitHot bypasses frequency-based detection and offloads exactly
	// these tuples (truncated to the capacity / HotSetCap bound, most
	// frequently sampled first). It is used when the hot-set is known a
	// priori but too large for sampling to resolve individual keys, as in
	// the Figure 17 capacity experiment.
	ExplicitHot []store.GlobalKey

	// Adaptive turns the offline layout into a live one: the engine
	// records per-node sliding-window access statistics, re-runs hot-set
	// detection every AdaptInterval of virtual time, and migrates tuples
	// between switch registers and owner nodes under an epoch fence (see
	// engine.Context.StartAdaptive). Only engines that offload to the
	// switch (P4DB) adapt; for all others the flag is a no-op. Off by
	// default — the static path schedules no extra events and its golden
	// digest is bit-identical.
	Adaptive bool
	// AdaptInterval is the virtual-time period between re-detections; 0
	// selects DefaultAdaptInterval.
	AdaptInterval sim.Time

	// Durable wires the write-ahead log into every commit path: switch
	// intents are retained before the packet leaves the node (and
	// back-filled with the GID from the response), and cold transactions
	// append their redo record at the 2PC commit decision. Every commit
	// path already pays its log-append latency unconditionally, so Durable
	// gates only whether record DATA is retained: seeded schedules — and
	// therefore the golden digests — are bit-identical with Durable on or
	// off, and the off path stays allocation-free. Off by default.
	Durable bool
	// Fault schedules one crash during the run; recovery rebuilds the lost
	// state from the WALs in-simulation and the run continues. Requires
	// Durable (there is nothing to recover from otherwise) and is rejected
	// alongside Adaptive (a migrating layout invalidates the offload
	// baseline recovery replays from). See FaultPlan.
	Fault *FaultPlan
	// CaptureState fills Result.StateDigest with the cluster's full
	// logical state digest after the run — the oracle the fault matrix
	// uses to assert recovered state equals the no-fault run bit for bit.
	CaptureState bool

	// Seed drives all randomness; equal seeds reproduce runs exactly.
	Seed uint64
}

// DefaultAdaptInterval is the re-detection period when Config.Adaptive is
// set without an explicit AdaptInterval: long enough for the sliding
// window to accumulate a resolvable frequency tally (and for the fold's
// cache footprint to stay amortized into the noise), short enough to
// react within one figure measurement window.
const DefaultAdaptInterval = 100 * sim.Microsecond

// costsFor resolves the effective cost model for the resolved engine and
// scheme pair, most specific override first. Every key is validated
// against the registries so a typo fails loudly at cluster build instead
// of silently running the defaults.
func (cfg Config) costsFor(eng, scheme string) CostModel {
	for key := range cfg.CostOverrides {
		if err := validateOverrideKey(key); err != nil {
			panic(fmt.Sprintf("core: CostOverrides key %q: %v", key, err))
		}
	}
	for _, key := range []string{eng + "/" + scheme, eng + "/*", eng, "*/" + scheme, scheme} {
		if cm, ok := cfg.CostOverrides[key]; ok {
			return cm
		}
	}
	return cfg.Costs
}

// validateOverrideKey checks that key names a registered engine
// ("chiller", "chiller/*"), a registered scheme ("*/mvcc"), or an
// "engine/scheme" pair — and is unambiguous: a bare name registered as
// both an engine and a scheme must be qualified.
func validateOverrideKey(key string) error {
	engines, schemes := engine.Names(), engine.SchemeNames()
	if e, s, ok := strings.Cut(key, "/"); ok {
		if _, err := engine.Lookup(e); err != nil && e != "*" {
			return fmt.Errorf("unknown engine %q (engines: %v)", e, engines)
		}
		if _, err := engine.LookupScheme(s); err != nil && s != "*" {
			return fmt.Errorf("unknown scheme %q (schemes: %v)", s, schemes)
		}
		if e == "*" && s == "*" {
			return fmt.Errorf("names everything; set Config.Costs instead")
		}
		return nil
	}
	_, eerr := engine.Lookup(key)
	_, serr := engine.LookupScheme(key)
	switch {
	case eerr == nil && serr == nil:
		return fmt.Errorf("names both an engine and a scheme; use %q or %q", key+"/*", "*/"+key)
	case eerr == nil || serr == nil:
		return nil
	default:
		return fmt.Errorf("names no registered engine, scheme or engine/scheme pair (engines: %v, schemes: %v)", engines, schemes)
	}
}

// DefaultConfig returns the paper's standard setup: P4DB on 8 nodes,
// 2PL with NO_WAIT, the default switch and latency models.
func DefaultConfig() Config {
	return Config{
		Engine:         "p4db",
		Scheme:         engine.Scheme2PL,
		Nodes:          8,
		WorkersPerNode: 20,
		Policy:         lock.NoWait,
		Latency:        netsim.DefaultLatency(),
		Switch:         pisa.DefaultConfig(),
		Costs:          DefaultCosts(),
		SampleTxns:     100000,
		Seed:           42,
	}
}
