// Package core is P4DB itself: the distributed transaction engine that
// exposes a programmable switch as an additional database node for hot
// tuples (Sections 3, 5 and 6 of the paper), plus the evaluation baselines
// (No-Switch, LM-Switch, Chiller-style early lock release).
//
// A Cluster wires together every substrate — the discrete-event simulator,
// the rack network, the PISA switch model, per-node stores, lock tables
// and write-ahead logs — performs the offline offload step (hot-set
// detection, declustered layout, register loading) and runs closed-loop
// worker processes that generate, classify and execute transactions:
//
//   - hot transactions compile to one switch packet and execute abort-free
//     in the data plane;
//   - cold transactions run under two-phase locking with 2PC when
//     distributed;
//   - warm transactions execute their cold part first and trigger the
//     switch sub-transaction inside the combined Decision&Switch commit
//     phase (Figure 10).
package core

import (
	"repro/internal/lock"
	"repro/internal/netsim"
	"repro/internal/pisa"
	"repro/internal/sim"
	"repro/internal/store"
)

// System selects which of the paper's systems the cluster runs.
type System int

// Systems under evaluation.
const (
	// NoSwitch is the traditional distributed DBMS baseline: the switch
	// only forwards packets.
	NoSwitch System = iota
	// P4DB offloads hot tuples to the switch and executes hot/warm
	// transactions through it.
	P4DB
	// LMSwitch uses the switch only as a central lock manager for hot
	// tuples (the NetLock-style baseline of Section 7.1).
	LMSwitch
	// Chiller is the contention-centric 2PL scheme of Figure 18b: hot
	// operations execute in a late inner region with early lock release.
	Chiller
)

// String returns the paper's name for the system.
func (s System) String() string {
	switch s {
	case NoSwitch:
		return "No-Switch"
	case P4DB:
		return "P4DB"
	case LMSwitch:
		return "LM-Switch"
	case Chiller:
		return "Chiller"
	default:
		return "System(?)"
	}
}

// CostModel holds the per-operation CPU costs of a database node on the
// virtual timeline. They are small next to network latencies, as on the
// paper's DPDK testbed.
type CostModel struct {
	// LocalAccess is one tuple read/write in local memory.
	LocalAccess sim.Time
	// LockOp is one lock-table operation (acquire attempt or release).
	LockOp sim.Time
	// LogAppend is one write-ahead-log append.
	LogAppend sim.Time
	// TxnOverhead is the fixed begin/commit bookkeeping per transaction.
	TxnOverhead sim.Time
	// AbortBackoff is the mean randomized backoff before a retry.
	AbortBackoff sim.Time
}

// DefaultCosts returns the calibrated node cost model.
func DefaultCosts() CostModel {
	return CostModel{
		LocalAccess:  200 * sim.Nanosecond,
		LockOp:       100 * sim.Nanosecond,
		LogAppend:    300 * sim.Nanosecond,
		TxnOverhead:  1500 * sim.Nanosecond,
		AbortBackoff: 5 * sim.Microsecond,
	}
}

// Config describes one cluster under test.
type Config struct {
	System         System
	Nodes          int
	WorkersPerNode int
	Policy         lock.Policy
	// Scheme selects the host DBMS concurrency control family: 2PL (the
	// paper's main setup) or OCC (Appendix A.4). LM-Switch and Chiller
	// are inherently lock-based and always use 2PL.
	Scheme  CCScheme
	Latency netsim.Latency
	Switch  pisa.Config
	Costs   CostModel

	// RandomLayout replaces the declustered (max-cut) layout with the
	// random worst-case layout of the Figure 16 experiment.
	RandomLayout bool
	// HotSetCap bounds how many hot tuples are offloaded; 0 means the
	// switch capacity. Hot tuples beyond the cap stay on their nodes and
	// execute as cold transactions (Figure 17).
	HotSetCap int
	// SampleTxns is the size of the offline detection sample.
	SampleTxns int
	// ExplicitHot bypasses frequency-based detection and offloads exactly
	// these tuples (truncated to the capacity / HotSetCap bound, most
	// frequently sampled first). It is used when the hot-set is known a
	// priori but too large for sampling to resolve individual keys, as in
	// the Figure 17 capacity experiment.
	ExplicitHot []store.GlobalKey
	// Seed drives all randomness; equal seeds reproduce runs exactly.
	Seed uint64
}

// DefaultConfig returns the paper's standard setup: 8 nodes, NO_WAIT, the
// default switch and latency models.
func DefaultConfig() Config {
	return Config{
		System:         P4DB,
		Nodes:          8,
		WorkersPerNode: 20,
		Policy:         lock.NoWait,
		Latency:        netsim.DefaultLatency(),
		Switch:         pisa.DefaultConfig(),
		Costs:          DefaultCosts(),
		SampleTxns:     100000,
		Seed:           42,
	}
}
