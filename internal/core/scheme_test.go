package core

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/workload"
)

func mvccConfig(eng string) Config {
	cfg := smallConfig(eng)
	cfg.Scheme = engine.SchemeMVCC
	return cfg
}

func TestMVCCRunsYCSB(t *testing.T) {
	cfg := mvccConfig("noswitch")
	res := runShort(t, cfg, ycsbGen(cfg, 50))
	if res.Scheme != engine.SchemeMVCC {
		t.Fatalf("result reports scheme %q, want mvcc", res.Scheme)
	}
	if res.Counters.Committed() == 0 {
		t.Fatal("MVCC committed nothing")
	}
	if res.Counters.Aborts == 0 {
		t.Fatal("MVCC saw no first-committer-wins aborts under a contended write-heavy workload")
	}
}

func TestMVCCP4DBRunsAllClasses(t *testing.T) {
	cfg := mvccConfig("p4db")
	gen := workload.NewTPCC(workload.DefaultTPCC(cfg.Nodes, cfg.Nodes*2))
	res := runShort(t, cfg, gen)
	if res.Counters.CommittedWarm == 0 {
		t.Fatalf("no warm MVCC transactions: %+v", res.Counters)
	}
	if res.SwitchTxns == 0 {
		t.Fatal("warm MVCC transactions never reached the switch")
	}
}

// TestMVCCNoNegativeBalances: SmallBank's constrained debits read the row
// they write, so first-committer-wins validation must preserve the
// non-negativity invariant exactly as 2PL and OCC do.
func TestMVCCNoNegativeBalances(t *testing.T) {
	for _, sys := range []string{"noswitch", "p4db"} {
		cfg := mvccConfig(sys)
		sbc := workload.DefaultSmallBank(cfg.Nodes, 5)
		sbc.AccountsPerNode = 500
		gen := workload.NewSmallBank(sbc)
		c := NewCluster(cfg, gen)
		res := c.Run(1*sim.Millisecond, 4*sim.Millisecond)
		if res.Counters.Committed() == 0 {
			t.Fatalf("%v: nothing committed", sys)
		}
		for i := 0; i < cfg.Nodes; i++ {
			st := c.Node(i).Store()
			for _, tb := range []store.TableID{workload.SBChecking, workload.SBSavings} {
				for _, k := range st.Table(tb).Keys() {
					if sys == "p4db" && c.HotIndex().OnSwitch(store.GlobalField(tb, 0, k)) {
						continue
					}
					if v := st.Table(tb).Get(k, 0); v < 0 {
						t.Fatalf("%v/MVCC: negative balance %d (node %d, table %d, key %d)", sys, v, i, tb, k)
					}
				}
			}
		}
	}
}

// TestMVCCGCBoundsVersions: 75% of this workload's writes hammer 50 hot
// keys per node, so without watermark GC the hot chains would grow by one
// version per commit; with it, chain length is bounded by the
// concurrent-snapshot window (workers in flight), not the run length.
func TestMVCCGCBoundsVersions(t *testing.T) {
	cfg := mvccConfig("noswitch")
	gen := ycsbGen(cfg, 50)
	c := NewCluster(cfg, gen)
	res := c.Run(500*sim.Microsecond, 2*sim.Millisecond)
	if res.Counters.Committed() == 0 {
		t.Fatal("nothing committed")
	}
	versions, longest := 0, 0
	for i := 0; i < cfg.Nodes; i++ {
		versions += c.Node(i).MVCCVersionsStored()
		if l := c.Node(i).MVCCLongestChain(); l > longest {
			longest = l
		}
	}
	if versions == 0 {
		t.Fatal("no versions stored — writes were not installed through MVCC")
	}
	inFlight := cfg.Nodes * cfg.WorkersPerNode
	if longest > 2*inFlight {
		t.Fatalf("longest chain holds %d versions with only %d transactions in flight — watermark GC is not pruning", longest, inFlight)
	}
	for i := 0; i < cfg.Nodes; i++ {
		if n := c.Node(i).MVCCPinsHeld(); n > 10 {
			t.Fatalf("node %d still holds %d pins after shutdown", i, n)
		}
	}
}

// TestUnknownSchemeIsHardError: config validation must reject unknown
// scheme names with the registered list, the same contract unknown
// engines have.
func TestUnknownSchemeIsHardError(t *testing.T) {
	cfg := smallConfig("noswitch")
	cfg.Scheme = "definitely-not-a-scheme"
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("NewCluster accepted an unknown CC scheme")
		}
		msg := r.(string)
		for _, want := range []string{"definitely-not-a-scheme", "2pl", "occ", "mvcc"} {
			if !strings.Contains(msg, want) {
				t.Fatalf("panic %q does not mention %q", msg, want)
			}
		}
	}()
	NewCluster(cfg, ycsbGen(cfg, 50))
}

// TestCostOverridesShiftOneEngine: an override keyed to one engine must
// move that engine's results and leave every other engine bit-identical.
func TestCostOverridesShiftOneEngine(t *testing.T) {
	run := func(sys string, over map[string]CostModel) int64 {
		cfg := smallConfig(sys)
		cfg.CostOverrides = over
		res := runShort(t, cfg, ycsbGen(cfg, 50))
		return res.Counters.Committed()
	}
	slow := DefaultCosts()
	slow.LocalAccess *= 20
	slow.TxnOverhead *= 20
	over := map[string]CostModel{"noswitch": slow}

	baseNS, baseP4 := run("noswitch", nil), run("p4db", nil)
	overNS, overP4 := run("noswitch", over), run("p4db", over)
	if overNS >= baseNS {
		t.Fatalf("noswitch with 20x costs committed %d >= %d without", overNS, baseNS)
	}
	if overP4 != baseP4 {
		t.Fatalf("p4db shifted by a noswitch-keyed override: %d vs %d", overP4, baseP4)
	}
}

// TestBadCostOverrideKeyIsHardError: typos in override keys must fail at
// cluster build, not silently run defaults.
func TestBadCostOverrideKeyIsHardError(t *testing.T) {
	cfg := smallConfig("noswitch")
	cfg.CostOverrides = map[string]CostModel{"noswitsh": DefaultCosts()}
	defer func() {
		if recover() == nil {
			t.Fatal("NewCluster accepted an override key naming nothing registered")
		}
	}()
	NewCluster(cfg, ycsbGen(cfg, 50))
}

// TestCostOverridePrecedence: the "engine/scheme" key beats the engine
// key, which beats the scheme key.
func TestCostOverridePrecedence(t *testing.T) {
	mark := func(v sim.Time) CostModel {
		cm := DefaultCosts()
		cm.LocalAccess = v
		return cm
	}
	cfg := smallConfig("noswitch")
	cfg.Scheme = engine.SchemeOCC
	cfg.CostOverrides = map[string]CostModel{
		"noswitch/occ": mark(111),
		"noswitch":     mark(222),
		"*/occ":        mark(333),
	}
	if got := cfg.costsFor("noswitch", "occ"); got.LocalAccess != 111 {
		t.Fatalf("pair key not preferred: LocalAccess=%v", got.LocalAccess)
	}
	delete(cfg.CostOverrides, "noswitch/occ")
	if got := cfg.costsFor("noswitch", "occ"); got.LocalAccess != 222 {
		t.Fatalf("engine key not preferred over scheme key: LocalAccess=%v", got.LocalAccess)
	}
	delete(cfg.CostOverrides, "noswitch")
	if got := cfg.costsFor("noswitch", "occ"); got.LocalAccess != 333 {
		t.Fatalf("scheme wildcard key ignored: LocalAccess=%v", got.LocalAccess)
	}
	delete(cfg.CostOverrides, "*/occ")
	if got := cfg.costsFor("noswitch", "occ"); got.LocalAccess != DefaultCosts().LocalAccess {
		t.Fatalf("empty overrides changed the default: LocalAccess=%v", got.LocalAccess)
	}
}

// TestAmbiguousCostOverrideKeyIsHardError: "occ" names both an engine and
// a scheme, so a bare key must be refused in favour of the qualified
// spellings — an override meant for the ablation engine must never leak
// onto every engine running the occ scheme.
func TestAmbiguousCostOverrideKeyIsHardError(t *testing.T) {
	cfg := smallConfig("noswitch")
	cfg.CostOverrides = map[string]CostModel{"occ": DefaultCosts()}
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("costsFor accepted the ambiguous bare key \"occ\"")
			}
			msg := r.(string)
			if !strings.Contains(msg, "occ/*") || !strings.Contains(msg, "*/occ") {
				t.Fatalf("panic %q does not suggest the qualified spellings", msg)
			}
		}()
		cfg.costsFor("noswitch", "2pl")
	}()
	// The qualified forms are accepted and scoped correctly.
	engineOnly, schemeOnly := DefaultCosts(), DefaultCosts()
	engineOnly.LocalAccess = 444
	schemeOnly.LocalAccess = 555
	cfg.CostOverrides = map[string]CostModel{"occ/*": engineOnly, "*/occ": schemeOnly}
	if got := cfg.costsFor("noswitch", "2pl"); got.LocalAccess != DefaultCosts().LocalAccess {
		t.Fatalf("unrelated run picked up a qualified occ override: %+v", got)
	}
	if got := cfg.costsFor("occ", "occ"); got.LocalAccess != 444 {
		t.Fatalf("occ engine did not pick up its qualified override: %+v", got)
	}
	if got := cfg.costsFor("p4db", "occ"); got.LocalAccess != 555 {
		t.Fatalf("occ scheme run did not pick up its qualified override: %+v", got)
	}
}
