package core

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/workload"
)

func occConfig(eng string) Config {
	cfg := smallConfig(eng)
	cfg.Scheme = engine.SchemeOCC
	return cfg
}

func TestOCCRunsYCSB(t *testing.T) {
	cfg := occConfig("noswitch")
	res := runShort(t, cfg, ycsbGen(cfg, 50))
	if res.Counters.Committed() == 0 {
		t.Fatal("OCC committed nothing")
	}
	if res.Counters.Aborts == 0 {
		t.Fatal("OCC saw no validation aborts under a contended workload")
	}
}

func TestOCCP4DBRunsAllClasses(t *testing.T) {
	cfg := occConfig("p4db")
	gen := workload.NewTPCC(workload.DefaultTPCC(cfg.Nodes, cfg.Nodes*2))
	res := runShort(t, cfg, gen)
	if res.Counters.CommittedWarm == 0 {
		t.Fatalf("no warm OCC transactions: %+v", res.Counters)
	}
	if res.SwitchTxns == 0 {
		t.Fatal("warm OCC transactions never reached the switch")
	}
}

// TestOCCNoNegativeBalances: the isolation invariant must hold under OCC
// exactly as under 2PL — validation plus pinning makes the read-check-
// write of constrained ops atomic.
func TestOCCNoNegativeBalances(t *testing.T) {
	for _, sys := range []string{"noswitch", "p4db"} {
		cfg := occConfig(sys)
		sbc := workload.DefaultSmallBank(cfg.Nodes, 5)
		sbc.AccountsPerNode = 500
		gen := workload.NewSmallBank(sbc)
		c := NewCluster(cfg, gen)
		res := c.Run(1*sim.Millisecond, 4*sim.Millisecond)
		if res.Counters.Committed() == 0 {
			t.Fatalf("%v: nothing committed", sys)
		}
		for i := 0; i < cfg.Nodes; i++ {
			st := c.Node(i).Store()
			for _, tb := range []store.TableID{workload.SBChecking, workload.SBSavings} {
				for _, k := range st.Table(tb).Keys() {
					if sys == "p4db" && c.HotIndex().OnSwitch(store.GlobalField(tb, 0, k)) {
						continue
					}
					if v := st.Table(tb).Get(k, 0); v < 0 {
						t.Fatalf("%v/OCC: negative balance %d (node %d, table %d, key %d)", sys, v, i, tb, k)
					}
				}
			}
		}
	}
}

// TestOCCSerializableHistory: with a single worker in the whole cluster
// there is no concurrency, so OCC validation can never fail and the run
// must be abort-free.
func TestOCCSerializableHistory(t *testing.T) {
	cfg := occConfig("noswitch")
	cfg.Nodes = 1
	cfg.WorkersPerNode = 1
	sbc := workload.DefaultSmallBank(cfg.Nodes, 3)
	sbc.AccountsPerNode = 50
	sbc.DistPct = 0
	gen := workload.NewSmallBank(sbc)
	c := NewCluster(cfg, gen)
	res := c.Run(500*sim.Microsecond, 2*sim.Millisecond)
	if res.Counters.Committed() == 0 {
		t.Fatal("nothing committed")
	}
	if res.Counters.Aborts != 0 {
		t.Fatalf("single-worker-per-node OCC aborted %d times", res.Counters.Aborts)
	}
	// Conservation: Amalgamate/SendPayment move money, Deposit adds,
	// TransactSavings removes — so only check non-negativity here.
	for i := 0; i < cfg.Nodes; i++ {
		st := c.Node(i).Store()
		for _, tb := range []store.TableID{workload.SBChecking, workload.SBSavings} {
			for _, k := range st.Table(tb).Keys() {
				if v := st.Table(tb).Get(k, 0); v < 0 {
					t.Fatalf("negative balance %d", v)
				}
			}
		}
	}
}

func TestOCCVersionsAdvance(t *testing.T) {
	cfg := occConfig("noswitch")
	gen := ycsbGen(cfg, 50)
	c := NewCluster(cfg, gen)
	c.Run(500*sim.Microsecond, 2*sim.Millisecond)
	bumped := 0
	for i := 0; i < cfg.Nodes; i++ {
		bumped += c.Node(i).OCCVersionsAdvanced()
	}
	if bumped == 0 {
		t.Fatal("no row versions advanced — writes were not installed through OCC")
	}
	// All pins must be released once the run is over (workers stopped
	// between transactions or were unwound; committed/aborted txns always
	// unpin).
	for i := 0; i < cfg.Nodes; i++ {
		if n := c.Node(i).OCCPinsHeld(); n > 10 {
			t.Fatalf("node %d still holds %d pins after shutdown", i, n)
		}
	}
}

// TestOCCvs2PLComparable: both schemes must complete the same workload
// with nonzero throughput; this is the Appendix A.4 ablation hook.
func TestOCCvs2PLComparable(t *testing.T) {
	var thr [2]float64
	for i, scheme := range []string{engine.Scheme2PL, engine.SchemeOCC} {
		cfg := smallConfig("noswitch")
		cfg.Scheme = scheme
		res := runShort(t, cfg, ycsbGen(cfg, 50))
		thr[i] = res.Throughput()
	}
	if thr[0] == 0 || thr[1] == 0 {
		t.Fatalf("throughputs: 2PL=%.0f OCC=%.0f", thr[0], thr[1])
	}
}
