package core

import (
	"fmt"

	"repro/internal/layout"
	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/twopc"
	"repro/internal/txnwire"
	"repro/internal/wal"
	"repro/internal/workload"
)

// txnClass is the paper's hot/cold/warm classification (Section 3.2).
type txnClass int

const (
	classCold txnClass = iota
	classHot
	classWarm
)

// undoRec is one before-image captured for rollback.
type undoRec struct {
	node  netsim.NodeID
	table store.TableID
	key   store.Key
	field int
	old   int64
}

// attempt is the state of one execution attempt of one transaction.
type attempt struct {
	ts     uint64
	locks  map[netsim.NodeID]*lock.Txn
	inner  map[netsim.NodeID]*lock.Txn // Chiller's inner-region locks
	lm     *lock.Txn                   // LM-Switch central locks
	undo   []undoRec
	writes []wal.ColdWrite
	exec   workload.Executor
}

func (c *Cluster) newAttempt() *attempt {
	c.nextTS++
	return &attempt{
		ts:    c.nextTS,
		locks: make(map[netsim.NodeID]*lock.Txn, 2),
		exec:  workload.NewExecutor(),
	}
}

// lockTxn returns (creating on demand) the attempt's lock context at node.
func (at *attempt) lockTxn(id netsim.NodeID) *lock.Txn {
	t, ok := at.locks[id]
	if !ok {
		t = lock.NewTxn(at.ts)
		at.locks[id] = t
	}
	return t
}

// innerTxn returns the Chiller inner-region lock context at node.
func (at *attempt) innerTxn(id netsim.NodeID) *lock.Txn {
	if at.inner == nil {
		at.inner = make(map[netsim.NodeID]*lock.Txn, 2)
	}
	t, ok := at.inner[id]
	if !ok {
		t = lock.NewTxn(at.ts)
		at.inner[id] = t
	}
	return t
}

// remoteNodes lists the nodes other than self where the attempt holds
// (outer) locks — the 2PC participants.
func (at *attempt) remoteNodes(self netsim.NodeID) []netsim.NodeID {
	var out []netsim.NodeID
	for id := range at.locks {
		if id != self {
			out = append(out, id)
		}
	}
	return out
}

// workerLoop is one closed-loop worker: generate, execute with retries,
// account.
func (c *Cluster) workerLoop(p *sim.Proc, n *Node, rng *sim.RNG) {
	for {
		txn := c.gen.Next(rng, n.id)
		start := p.Now()
		var cls txnClass
		attempts := 0
		for {
			var err error
			cls, err = c.executeOnce(p, n, txn)
			if err == nil {
				break
			}
			if c.measuring {
				n.counters.Aborts++
			}
			// Randomized backoff that grows with consecutive failures,
			// bounded at 8x — standard NO_WAIT retry damping.
			if attempts < 8 {
				attempts++
			}
			backoff := c.cfg.Costs.AbortBackoff/2 + sim.Time(rng.Int63n(int64(c.cfg.Costs.AbortBackoff)))
			p.Sleep(backoff * sim.Time(attempts))
		}
		if c.measuring {
			n.latency.Record(p.Now() - start)
			n.breakdown.AddTxn()
			switch cls {
			case classHot:
				n.counters.CommittedHot++
			case classWarm:
				n.counters.CommittedWarm++
			default:
				// In the baselines a transaction on hot tuples still
				// counts as a hot transaction for the Figure 12
				// breakdown, even though it executes on the nodes.
				if c.txnOnHotSet(txn) {
					n.counters.CommittedHot++
				} else {
					n.counters.CommittedCold++
				}
			}
		}
	}
}

// txnOnHotSet reports whether every operation touches detected-hot tuples.
func (c *Cluster) txnOnHotSet(txn *workload.Txn) bool {
	for _, op := range txn.Ops {
		if !c.isHotTuple(op) {
			return false
		}
	}
	return true
}

// classify assigns the P4DB transaction class (Section 3.2): hot = all
// tuples on the switch, cold = none, warm = mixed.
func (c *Cluster) classify(txn *workload.Txn) txnClass {
	hot, cold := 0, 0
	for _, op := range txn.Ops {
		if c.onSwitch(op) {
			hot++
		} else {
			cold++
		}
	}
	switch {
	case cold == 0 && hot > 0:
		return classHot
	case hot == 0:
		return classCold
	default:
		return classWarm
	}
}

// executeOnce runs one attempt under the configured system.
func (c *Cluster) executeOnce(p *sim.Proc, n *Node, txn *workload.Txn) (txnClass, error) {
	switch c.cfg.System {
	case P4DB:
		cls := c.classify(txn)
		switch cls {
		case classHot:
			c.execHot(p, n, txn)
			return classHot, nil
		case classWarm:
			if c.cfg.Scheme == CCOCC {
				return classWarm, c.execOCCWarm(p, n, txn)
			}
			return classWarm, c.execWarm(p, n, txn)
		default:
			if c.cfg.Scheme == CCOCC {
				return classCold, c.execOCCTxn(p, n, txn)
			}
			return classCold, c.execColdTxn(p, n, txn)
		}
	case NoSwitch:
		if c.cfg.Scheme == CCOCC {
			return classCold, c.execOCCTxn(p, n, txn)
		}
		return classCold, c.execColdTxn(p, n, txn)
	case LMSwitch:
		return classCold, c.execLM(p, n, txn)
	case Chiller:
		return classCold, c.execChiller(p, n, txn)
	default:
		panic("core: unknown system")
	}
}

// charge attributes elapsed virtual time to a breakdown component.
func (c *Cluster) charge(n *Node, comp metrics.Component, since sim.Time, p *sim.Proc) {
	if c.measuring {
		n.breakdown.Add(comp, p.Now()-since)
	}
}

// applyOp executes one operation against a node's store, capturing undo
// and redo images.
func (c *Cluster) applyOp(at *attempt, id netsim.NodeID, op workload.Op) {
	tb := c.nodes[id].store.Table(op.Table)
	if op.Kind.IsWrite() {
		at.undo = append(at.undo, undoRec{
			node: id, table: op.Table, key: op.Key, field: op.Field,
			old: tb.Get(op.Key, op.Field),
		})
	}
	at.exec.Apply(tb, op)
	if op.Kind.IsWrite() {
		at.writes = append(at.writes, wal.ColdWrite{
			Table: op.Table, Key: op.Key, Field: op.Field,
			Value: tb.Get(op.Key, op.Field),
		})
	}
}

// lockMode maps an operation to its lock mode.
func lockMode(op workload.Op) lock.Mode {
	if op.Kind.IsWrite() {
		return lock.Exclusive
	}
	return lock.Shared
}

// execOps acquires locks and executes the given operations under 2PL,
// visiting remote nodes over the network. On a lock conflict it rolls the
// attempt back (releasing everything) and returns the abort error.
func (c *Cluster) execOps(p *sim.Proc, n *Node, at *attempt, ops []workload.Op) error {
	for _, op := range ops {
		if op.Home == n.id {
			t0 := p.Now()
			p.Sleep(c.cfg.Costs.LockOp)
			err := n.locks.Acquire(p, at.lockTxn(n.id), lock.Key(op.LockKey()), lockMode(op))
			c.charge(n, metrics.LockAcquisition, t0, p)
			if err != nil {
				c.abort(p, n, at)
				return err
			}
			t1 := p.Now()
			p.Sleep(c.cfg.Costs.LocalAccess)
			c.applyOp(at, n.id, op)
			c.charge(n, metrics.LocalAccess, t1, p)
			continue
		}
		t0 := p.Now()
		var lerr error
		op := op
		c.net.RPC(p, n.id, op.Home, func() {
			rn := c.nodes[op.Home]
			p.Sleep(c.cfg.Costs.LockOp)
			lerr = rn.locks.Acquire(p, at.lockTxn(op.Home), lock.Key(op.LockKey()), lockMode(op))
			if lerr == nil {
				p.Sleep(c.cfg.Costs.LocalAccess)
				c.applyOp(at, op.Home, op)
			}
		})
		c.charge(n, metrics.RemoteAccess, t0, p)
		if lerr != nil {
			c.abort(p, n, at)
			return lerr
		}
	}
	return nil
}

// abort rolls back every write of the attempt and releases all locks.
// Local state unwinds immediately; remote nodes are notified with one-way
// messages (their locks stay held for the message latency, as on a real
// network).
func (c *Cluster) abort(p *sim.Proc, n *Node, at *attempt) {
	byNode := make(map[netsim.NodeID][]undoRec)
	for _, u := range at.undo {
		byNode[u.node] = append(byNode[u.node], u)
	}
	rollback := func(id netsim.NodeID) {
		undos := byNode[id]
		for i := len(undos) - 1; i >= 0; i-- {
			u := undos[i]
			c.nodes[id].store.Table(u.table).Set(u.key, u.field, u.old)
		}
	}
	for id, lt := range at.locks {
		if id == n.id {
			rollback(id)
			n.locks.ReleaseAll(lt)
			continue
		}
		id, lt := id, lt
		c.net.Send(n.id, id, func() {
			rollback(id)
			c.nodes[id].locks.ReleaseAll(lt)
		})
	}
	if at.lm != nil {
		lm := at.lm
		c.net.SendToSwitch(n.id, func() { c.lmLocks.ReleaseAll(lm) })
	}
}

// execColdTxn executes an entire transaction under 2PL/2PC — the cold
// path of P4DB and the whole No-Switch baseline.
func (c *Cluster) execColdTxn(p *sim.Proc, n *Node, txn *workload.Txn) error {
	at := c.newAttempt()
	t0 := p.Now()
	p.Sleep(c.cfg.Costs.TxnOverhead)
	c.charge(n, metrics.TxnEngine, t0, p)
	if err := c.execOps(p, n, at, txn.Ops); err != nil {
		return err
	}
	c.commitCold(p, n, at)
	return nil
}

// commitCold commits the attempt's node-side state: single-node commits
// log and release locally; distributed commits run 2PC over the remote
// participants.
func (c *Cluster) commitCold(p *sim.Proc, n *Node, at *attempt) {
	t0 := p.Now()
	remotes := at.remoteNodes(n.id)
	if len(remotes) == 0 {
		p.Sleep(c.cfg.Costs.LogAppend)
		n.log.AppendCold(at.ts, at.writes)
		n.locks.ReleaseAll(at.lockTxn(n.id))
		c.charge(n, metrics.TxnEngine, t0, p)
		return
	}
	coord := twopc.NewCoordinator(c.net, n.id)
	coord.Commit(p, c.coldParticipants(at, remotes))
	p.Sleep(c.cfg.Costs.LogAppend)
	n.log.AppendCold(at.ts, at.writes)
	n.locks.ReleaseAll(at.lockTxn(n.id))
	c.charge(n, metrics.TxnEngine, t0, p)
}

// coldParticipants builds the 2PC participant handlers for the attempt's
// remote nodes: prepare appends the participant's log record, commit
// releases its locks, abort rolls its writes back first.
func (c *Cluster) coldParticipants(at *attempt, remotes []netsim.NodeID) []twopc.Participant {
	parts := make([]twopc.Participant, 0, len(remotes))
	for _, id := range remotes {
		id := id
		rn := c.nodes[id]
		parts = append(parts, twopc.Participant{
			Node: id,
			Prepare: func(sp *sim.Proc) bool {
				sp.Sleep(c.cfg.Costs.LogAppend)
				return true
			},
			Commit: func(sp *sim.Proc) {
				rn.locks.ReleaseAll(at.lockTxn(id))
			},
			Abort: func(sp *sim.Proc) {
				for i := len(at.undo) - 1; i >= 0; i-- {
					u := at.undo[i]
					if u.node == id {
						rn.store.Table(u.table).Set(u.key, u.field, u.old)
					}
				}
				rn.locks.ReleaseAll(at.lockTxn(id))
			},
		})
	}
	return parts
}

// compileHot turns the hot operations into a switch packet plus its WAL
// intent instructions.
func (c *Cluster) compileHot(ops []workload.Op, ts uint64) (*txnwire.Packet, int) {
	hops := make([]layout.HotOp, len(ops))
	for i, op := range ops {
		hops[i] = layout.HotOp{
			Tuple:     layout.TupleID(op.TupleKey()),
			Op:        op.Kind.WireOp(),
			Operand:   op.Value,
			DependsOn: op.DependsOn,
		}
	}
	instrs, _, passes, err := layout.Compile(hops, c.layout)
	if err != nil {
		panic(fmt.Sprintf("core: hot transaction failed to compile: %v", err))
	}
	left, right := c.switchLocksFor(instrs)
	pkt := &txnwire.Packet{
		Header: txnwire.Header{
			IsMultipass: passes > 1,
			LockLeft:    left,
			LockRight:   right,
			TxnID:       ts,
		},
		Instrs: instrs,
	}
	return pkt, passes
}

// switchLocksFor mirrors the switch's lock mapping so the node can fill
// the packet header (Section 5.4: nodes initialize the processing
// information).
func (c *Cluster) switchLocksFor(instrs []txnwire.Instr) (left, right bool) {
	if !c.cfg.Switch.FineLocks {
		return true, false
	}
	half := c.cfg.Switch.Stages / 2
	for _, in := range instrs {
		if int(in.Stage) < half {
			left = true
		} else {
			right = true
		}
	}
	return left, right
}

// sendToSwitch logs the intent, round-trips the packet through the wire
// codec and the switch, and back-fills the WAL record. Switch transactions
// cannot abort; they count as committed once logged (Section 6.1).
func (c *Cluster) sendToSwitch(p *sim.Proc, n *Node, pkt *txnwire.Packet) *txnwire.Response {
	p.Sleep(c.cfg.Costs.LogAppend)
	rec := n.log.AppendSwitchIntent(pkt.Header.TxnID, pkt.Instrs)
	buf, err := txnwire.Encode(pkt)
	if err != nil {
		panic(fmt.Sprintf("core: packet encode: %v", err))
	}
	onWire, err := txnwire.Decode(buf)
	if err != nil {
		panic(fmt.Sprintf("core: packet decode: %v", err))
	}
	var resp *txnwire.Response
	c.net.RPCToSwitch(p, n.id, func() {
		var xerr error
		resp, xerr = c.sw.Exec(p, onWire)
		if xerr != nil {
			panic(fmt.Sprintf("core: switch rejected packet: %v", xerr))
		}
	})
	rec.Complete(resp)
	return resp
}

// execHot executes a hot transaction entirely on the switch (Section 6.1).
func (c *Cluster) execHot(p *sim.Proc, n *Node, txn *workload.Txn) {
	at := c.newAttempt()
	t0 := p.Now()
	p.Sleep(c.cfg.Costs.TxnOverhead)
	pkt, passes := c.compileHot(txn.Ops, at.ts)
	c.charge(n, metrics.TxnEngine, t0, p)
	t1 := p.Now()
	c.sendToSwitch(p, n, pkt)
	c.charge(n, metrics.SwitchTxn, t1, p)
	if c.measuring {
		if passes > 1 {
			n.counters.MultiPass++
		} else {
			n.counters.SinglePass++
		}
	}
}

// execWarm executes a warm transaction (Section 6.2): the cold part runs
// first under 2PL; once it cannot abort anymore, the switch
// sub-transaction is sent inside the combined Decision&Switch phase and
// participants commit on the switch's multicast.
func (c *Cluster) execWarm(p *sim.Proc, n *Node, txn *workload.Txn) error {
	// The warm scheme runs all cold operations strictly before the switch
	// sub-transaction, so a dependency that crosses the temperature split
	// (possible when part of a hot pair spilled off the switch, Figure 17)
	// cannot be honoured — those transactions fall back to the fully cold
	// path, like the paper's alternative of keeping such tuples together.
	if crossTemperatureDeps(txn, func(op workload.Op) bool { return c.onSwitch(op) }) {
		return c.execColdTxn(p, n, txn)
	}
	at := c.newAttempt()
	t0 := p.Now()
	p.Sleep(c.cfg.Costs.TxnOverhead)
	c.charge(n, metrics.TxnEngine, t0, p)

	var coldOps, hotOps []workload.Op
	for _, op := range txn.Ops {
		if c.onSwitch(op) {
			hotOps = append(hotOps, op)
		} else {
			coldOps = append(coldOps, op)
		}
	}
	if err := c.execOps(p, n, at, coldOps); err != nil {
		return err
	}

	pkt, passes := c.compileHot(hotOps, at.ts)
	p.Sleep(c.cfg.Costs.LogAppend)
	rec := n.log.AppendSwitchIntent(at.ts, pkt.Instrs)

	t1 := p.Now()
	remotes := at.remoteNodes(n.id)
	coord := twopc.NewCoordinator(c.net, n.id)
	ok := coord.CommitWithSwitch(p, c.coldParticipants(at, remotes), func(sub *sim.Proc) {
		resp, xerr := c.sw.Exec(sub, pkt)
		if xerr != nil {
			panic(fmt.Sprintf("core: switch rejected warm packet: %v", xerr))
		}
		rec.Complete(resp)
	})
	if !ok {
		// Cannot happen: participants are already prepared (locks held,
		// constraints checked) and always vote yes.
		panic("core: prepared warm transaction failed to commit")
	}
	c.charge(n, metrics.SwitchTxn, t1, p)

	t2 := p.Now()
	p.Sleep(c.cfg.Costs.LogAppend)
	n.log.AppendCold(at.ts, at.writes)
	n.locks.ReleaseAll(at.lockTxn(n.id))
	c.charge(n, metrics.TxnEngine, t2, p)
	if c.measuring {
		if passes > 1 {
			n.counters.MultiPass++
		} else {
			n.counters.SinglePass++
		}
	}
	return nil
}

// crossTemperatureDeps reports whether any operation depends on an
// operation of the other temperature class.
func crossTemperatureDeps(txn *workload.Txn, hot func(workload.Op) bool) bool {
	for _, op := range txn.Ops {
		if d := op.DependsOn; d >= 0 && d < len(txn.Ops) {
			if hot(op) != hot(txn.Ops[d]) {
				return true
			}
		}
	}
	return false
}

// execLM is the LM-Switch baseline: locks for hot tuples are acquired at
// the switch's central lock manager (half an RTT away), while the data
// accesses still go to the tuples' home nodes. Lock hold times barely
// shrink, which is why the paper finds little benefit under skew.
func (c *Cluster) execLM(p *sim.Proc, n *Node, txn *workload.Txn) error {
	at := c.newAttempt()
	at.lm = lock.NewTxn(at.ts)
	t0 := p.Now()
	p.Sleep(c.cfg.Costs.TxnOverhead)
	c.charge(n, metrics.TxnEngine, t0, p)
	for _, op := range txn.Ops {
		if c.isHotTuple(op) {
			op := op
			var lerr error
			if op.Home == n.id {
				// Local data, central lock: the lock request costs a
				// dedicated switch round trip on top of the (otherwise
				// free) local access — the price of centralized locking.
				tl := p.Now()
				c.net.RPCToSwitch(p, n.id, func() {
					lerr = c.lmLocks.Acquire(p, at.lm, lock.Key(op.LockKey()), lockMode(op))
				})
				c.charge(n, metrics.LockAcquisition, tl, p)
				if lerr != nil {
					c.abort(p, n, at)
					return lerr
				}
				ta := p.Now()
				p.Sleep(c.cfg.Costs.LocalAccess)
				c.applyOp(at, n.id, op)
				c.charge(n, metrics.LocalAccess, ta, p)
			} else {
				// Remote data: the request passes through the switch
				// anyway, so the lock is acquired ON PATH (NetLock's key
				// idea) — the journey costs the same full round trip the
				// baseline pays, with the lock taken at the midpoint.
				tl := p.Now()
				p.Sleep(c.net.Latency().NodeToSwitch)
				lerr = c.lmLocks.Acquire(p, at.lm, lock.Key(op.LockKey()), lockMode(op))
				c.charge(n, metrics.LockAcquisition, tl, p)
				if lerr != nil {
					// The denial still has to travel back to the caller.
					p.Sleep(c.net.Latency().NodeToSwitch)
					c.abort(p, n, at)
					return lerr
				}
				ta := p.Now()
				p.Sleep(c.net.Latency().NodeToSwitch) // switch -> home node
				p.Sleep(c.cfg.Costs.LocalAccess)
				c.applyOp(at, op.Home, op)
				p.Sleep(c.net.Latency().NodeToNode) // home node -> caller
				c.charge(n, metrics.RemoteAccess, ta, p)
				at.lockTxn(op.Home) // 2PC participant (holds writes)
			}
			continue
		}
		if err := c.execOps(p, n, at, []workload.Op{op}); err != nil {
			return err
		}
	}
	c.commitCold(p, n, at)
	lm := at.lm
	c.net.SendToSwitch(n.id, func() { c.lmLocks.ReleaseAll(lm) })
	return nil
}

// execChiller is the contention-centric baseline of Figure 18b: outer
// (cold) operations run first under plain 2PL; after the prepare round,
// the hot operations execute in a short inner region whose locks are
// released immediately — before the final commit round — shrinking the
// hold time on contended tuples.
func (c *Cluster) execChiller(p *sim.Proc, n *Node, txn *workload.Txn) error {
	// Chiller reorders hot operations behind cold ones; dependencies that
	// cross the regions cannot be reordered, so such transactions run as
	// plain 2PL (the scheme's own fallback).
	if crossTemperatureDeps(txn, func(op workload.Op) bool { return c.isHotTuple(op) }) {
		return c.execColdTxn(p, n, txn)
	}
	at := c.newAttempt()
	t0 := p.Now()
	p.Sleep(c.cfg.Costs.TxnOverhead)
	c.charge(n, metrics.TxnEngine, t0, p)

	var outer, inner []workload.Op
	for _, op := range txn.Ops {
		if c.isHotTuple(op) {
			inner = append(inner, op)
		} else {
			outer = append(outer, op)
		}
	}
	if err := c.execOps(p, n, at, outer); err != nil {
		return err
	}
	remotes := at.remoteNodes(n.id)
	coord := twopc.NewCoordinator(c.net, n.id)
	parts := c.coldParticipants(at, remotes)
	if len(parts) > 0 && !coord.Prepare(p, parts) {
		c.abort(p, n, at)
		return lock.ErrConflict
	}
	// Inner region: lock, apply and immediately release the hot tuples.
	for _, op := range inner {
		tl := p.Now()
		var lerr error
		op := op
		if op.Home == n.id {
			p.Sleep(c.cfg.Costs.LockOp)
			lerr = n.locks.Acquire(p, at.innerTxn(n.id), lock.Key(op.LockKey()), lockMode(op))
			if lerr == nil {
				p.Sleep(c.cfg.Costs.LocalAccess)
				c.applyOp(at, n.id, op)
			}
			c.charge(n, metrics.LockAcquisition, tl, p)
		} else {
			c.net.RPC(p, n.id, op.Home, func() {
				p.Sleep(c.cfg.Costs.LockOp)
				lerr = c.nodes[op.Home].locks.Acquire(p, at.innerTxn(op.Home), lock.Key(op.LockKey()), lockMode(op))
				if lerr == nil {
					p.Sleep(c.cfg.Costs.LocalAccess)
					c.applyOp(at, op.Home, op)
				}
			})
			c.charge(n, metrics.RemoteAccess, tl, p)
		}
		if lerr != nil {
			c.releaseInner(n, at)
			c.abort(p, n, at)
			if len(parts) > 0 {
				coord.Finish(p, parts, false)
			}
			return lerr
		}
	}
	// Early release of the contended inner locks.
	c.releaseInner(n, at)
	// Final commit round for the outer part.
	if len(parts) > 0 {
		coord.Finish(p, parts, true)
	}
	t2 := p.Now()
	p.Sleep(c.cfg.Costs.LogAppend)
	n.log.AppendCold(at.ts, at.writes)
	n.locks.ReleaseAll(at.lockTxn(n.id))
	c.charge(n, metrics.TxnEngine, t2, p)
	return nil
}

// releaseInner releases the Chiller inner-region locks (locally at once,
// remotely via one-way messages).
func (c *Cluster) releaseInner(n *Node, at *attempt) {
	for id, lt := range at.inner {
		if id == n.id {
			c.nodes[id].locks.ReleaseAll(lt)
			continue
		}
		id, lt := id, lt
		c.net.Send(n.id, id, func() { c.nodes[id].locks.ReleaseAll(lt) })
	}
	at.inner = nil
}
