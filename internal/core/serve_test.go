package core

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/workload"
)

// serveTestConfig mirrors the engine parity grid's small-but-contended
// SmallBank setup.
func serveTestConfig(engineName string) (Config, workload.SmallBankConfig) {
	cfg := DefaultConfig()
	cfg.Engine = engineName
	cfg.Nodes = 2
	cfg.WorkersPerNode = 1
	cfg.SampleTxns = 4000
	cfg.Switch.SlotsPerArray = 64
	wl := workload.DefaultSmallBank(cfg.Nodes, 3)
	wl.AccountsPerNode = 100
	wl.DistPct = 50
	return cfg, wl
}

// TestDriverDeterministic: two identically configured clusters fed the
// same submission stream commit everything and digest identically.
func TestDriverDeterministic(t *testing.T) {
	for _, engineName := range []string{"noswitch", "p4db", "calvin"} {
		digests := make([]string, 2)
		for rep := 0; rep < 2; rep++ {
			cfg, wl := serveTestConfig(engineName)
			gen := workload.NewSmallBank(wl)
			drv := NewDriver(NewCluster(cfg, workload.NewSmallBank(wl)))
			src := sim.NewRNG(7)
			committed := 0
			for i := 0; i < 300; i++ {
				origin := netsim.NodeID(i % cfg.Nodes)
				txn := gen.Next(src, origin)
				drv.Submit(origin, txn, func(cls engine.Class, retries int) { committed++ })
				drv.Drain()
			}
			if committed != 300 || drv.Commits() != 300 || drv.Inflight() != 0 {
				t.Fatalf("%s rep %d: committed %d, drv commits %d, inflight %d",
					engineName, rep, committed, drv.Commits(), drv.Inflight())
			}
			if got := drv.Result().Counters.Committed(); got != 300 {
				t.Fatalf("%s rep %d: counters report %d commits, want 300", engineName, rep, got)
			}
			digests[rep] = drv.Cluster().StateDigest()
		}
		if digests[0] != digests[1] {
			t.Fatalf("%s: driver replay diverged:\n%s\n%s", engineName, digests[0], digests[1])
		}
	}
}

// TestDriverMatchesExecuteSync: the serving-mode submit path and the
// process-bridge path produce identical final state for the same serial
// history — Submit adds accounting and pooling, not semantics.
func TestDriverMatchesExecuteSync(t *testing.T) {
	cfg, wl := serveTestConfig("noswitch")
	gen := workload.NewSmallBank(wl)

	drv := NewDriver(NewCluster(cfg, workload.NewSmallBank(wl)))
	src := sim.NewRNG(7)
	txns := make([]*workload.Txn, 300)
	for i := range txns {
		txns[i] = gen.Next(src, netsim.NodeID(i%cfg.Nodes))
	}
	for i, txn := range txns {
		drv.Submit(netsim.NodeID(i%cfg.Nodes), txn, func(engine.Class, int) {})
		drv.Drain()
	}
	viaDriver := drv.Cluster().StateDigest()

	sync := NewCluster(cfg, workload.NewSmallBank(wl))
	ctx := sync.EngineContext()
	done := make(chan struct{})
	sync.Env().Spawn("sync-driver", func(p *sim.Proc) {
		for i, txn := range txns {
			if _, err := ctx.ExecuteSync(p, sync.Engine(), sync.Node(i%cfg.Nodes), txn); err != nil {
				t.Errorf("sync txn %d: %v", i, err)
			}
		}
		close(done)
	})
	sync.Env().Run()
	<-done
	viaSync := sync.StateDigest()

	if viaDriver != viaSync {
		t.Fatalf("submit path diverged from ExecuteSync:\n%s\n%s", viaDriver, viaSync)
	}
}
