package core

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/lock"
	"repro/internal/pisa"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/txnwire"
	"repro/internal/wal"
	"repro/internal/workload"
)

// smallConfig returns a fast-to-simulate cluster for tests.
func smallConfig(eng string) Config {
	cfg := DefaultConfig()
	cfg.Engine = eng
	cfg.Nodes = 4
	cfg.WorkersPerNode = 6
	cfg.Switch.SlotsPerArray = 256
	cfg.SampleTxns = 12000
	return cfg
}

func ycsbGen(cfg Config, writePct int) *workload.YCSB {
	wcfg := workload.YCSBWorkloadA(cfg.Nodes)
	wcfg.WritePct = writePct
	wcfg.RowsPerNode = 1 << 20
	return workload.NewYCSB(wcfg)
}

func runShort(t *testing.T, cfg Config, gen workload.Generator) *Result {
	t.Helper()
	c := NewCluster(cfg, gen)
	return c.Run(1*sim.Millisecond, 4*sim.Millisecond)
}

func TestP4DBRunsYCSB(t *testing.T) {
	cfg := smallConfig("p4db")
	res := runShort(t, cfg, ycsbGen(cfg, 50))
	if res.Counters.Committed() == 0 {
		t.Fatal("nothing committed")
	}
	if res.Counters.CommittedHot == 0 {
		t.Fatal("no hot transactions executed on the switch")
	}
	// The paper executes all YCSB transactions in a single pass; with a
	// sampling-based layout a residual of rarely-co-accessed (hence
	// never-sampled) pairs may still collide, so allow up to 0.5%.
	if res.Counters.MultiPass*200 > res.Counters.SinglePass {
		t.Fatalf("YCSB multi-pass fraction too high: %d multi vs %d single",
			res.Counters.MultiPass, res.Counters.SinglePass)
	}
	if res.SwitchTxns == 0 {
		t.Fatal("switch executed nothing")
	}
}

func TestP4DBHotOnlyIsAbortFree(t *testing.T) {
	cfg := smallConfig("p4db")
	wcfg := workload.YCSBWorkloadA(cfg.Nodes)
	wcfg.HotTxnPct = 100
	wcfg.RowsPerNode = 1 << 20
	res := runShort(t, cfg, workload.NewYCSB(wcfg))
	if res.Counters.Aborts != 0 {
		t.Fatalf("hot-only P4DB aborted %d times; switch txns are abort-free", res.Counters.Aborts)
	}
	if res.Counters.CommittedCold != 0 || res.Counters.CommittedWarm != 0 {
		t.Fatalf("hot-only workload produced cold/warm commits: %+v", res.Counters)
	}
}

func TestNoSwitchAbortsUnderContention(t *testing.T) {
	cfg := smallConfig("noswitch")
	cfg.WorkersPerNode = 12
	res := runShort(t, cfg, ycsbGen(cfg, 50))
	if res.Counters.Committed() == 0 {
		t.Fatal("nothing committed")
	}
	if res.Counters.Aborts == 0 {
		t.Fatal("no aborts despite 75% of traffic on 50 hot keys/node (contention model broken)")
	}
}

// TestHeadlineClaim is Figure 1: P4DB outperforms the No-Switch baseline
// on a skewed update-heavy workload.
func TestHeadlineClaim(t *testing.T) {
	var thr [2]float64
	for i, sys := range []string{"noswitch", "p4db"} {
		cfg := smallConfig(sys)
		cfg.WorkersPerNode = 12
		res := runShort(t, cfg, ycsbGen(cfg, 50))
		thr[i] = res.Throughput()
	}
	if thr[1] <= thr[0] {
		t.Fatalf("P4DB (%.0f txn/s) not faster than No-Switch (%.0f txn/s)", thr[1], thr[0])
	}
	if thr[1] < 1.5*thr[0] {
		t.Fatalf("speedup only %.2fx; paper reports multiples under this contention", thr[1]/thr[0])
	}
}

func TestLMSwitchRunsAndGainsLittle(t *testing.T) {
	cfg := smallConfig("lmswitch")
	cfg.WorkersPerNode = 12
	lm := runShort(t, cfg, ycsbGen(cfg, 50))
	if lm.Counters.Committed() == 0 {
		t.Fatal("LM-Switch committed nothing")
	}
	cfgP := smallConfig("p4db")
	cfgP.WorkersPerNode = 12
	p4 := runShort(t, cfgP, ycsbGen(cfgP, 50))
	if lm.Throughput() >= p4.Throughput() {
		t.Fatalf("LM-Switch (%.0f) should not beat P4DB (%.0f) under skew", lm.Throughput(), p4.Throughput())
	}
}

func TestChillerRuns(t *testing.T) {
	cfg := smallConfig("chiller")
	res := runShort(t, cfg, ycsbGen(cfg, 50))
	if res.Counters.Committed() == 0 {
		t.Fatal("Chiller committed nothing")
	}
}

func TestBothPoliciesRun(t *testing.T) {
	for _, pol := range []lock.Policy{lock.NoWait, lock.WaitDie} {
		cfg := smallConfig("noswitch")
		cfg.Policy = pol
		res := runShort(t, cfg, ycsbGen(cfg, 50))
		if res.Counters.Committed() == 0 {
			t.Fatalf("policy %v committed nothing", pol)
		}
	}
}

// TestSmallBankNoNegativeBalances is the end-to-end isolation check: all
// debits are constrained writes, so under serializable execution no
// balance — on the nodes or in the switch registers — can end up negative.
func TestSmallBankNoNegativeBalances(t *testing.T) {
	for _, sys := range []string{"noswitch", "p4db", "chiller"} {
		cfg := smallConfig(sys)
		sbc := workload.DefaultSmallBank(cfg.Nodes, 5)
		sbc.AccountsPerNode = 500
		gen := workload.NewSmallBank(sbc)
		c := NewCluster(cfg, gen)
		res := c.Run(1*sim.Millisecond, 4*sim.Millisecond)
		if res.Counters.Committed() == 0 {
			t.Fatalf("%v: nothing committed", sys)
		}
		for i := 0; i < cfg.Nodes; i++ {
			st := c.Node(i).Store()
			for _, tb := range []store.TableID{workload.SBChecking, workload.SBSavings} {
				for _, k := range st.Table(tb).Keys() {
					// Skip tuples that moved to the switch: their node
					// copy is stale by design.
					if sys == "p4db" && c.HotIndex().OnSwitch(store.GlobalField(tb, 0, k)) {
						continue
					}
					if v := st.Table(tb).Get(k, 0); v < 0 {
						t.Fatalf("%v: negative balance %d at node %d table %d key %d", sys, v, i, tb, k)
					}
				}
			}
		}
		if sys == "p4db" {
			for _, tid := range c.Layout().Tuples() {
				s, _ := c.Layout().SlotOf(tid)
				if v := c.Switch().ReadRegister(s.Stage, s.Array, s.Index); v < 0 {
					t.Fatalf("negative balance %d in switch register %v", v, s)
				}
			}
		}
	}
}

func TestTPCCWarmTransactions(t *testing.T) {
	cfg := smallConfig("p4db")
	gen := workload.NewTPCC(workload.DefaultTPCC(cfg.Nodes, 8))
	res := runShort(t, cfg, gen)
	if res.Counters.CommittedWarm == 0 {
		t.Fatalf("TPC-C produced no warm transactions: %+v", res.Counters)
	}
	if res.SwitchTxns == 0 {
		t.Fatal("warm transactions never reached the switch")
	}
}

func TestOffloadLoadsValues(t *testing.T) {
	cfg := smallConfig("p4db")
	sbc := workload.DefaultSmallBank(cfg.Nodes, 5)
	sbc.AccountsPerNode = 200
	gen := workload.NewSmallBank(sbc)
	c := NewCluster(cfg, gen)
	found := 0
	for _, tid := range c.Layout().Tuples() {
		gk := store.GlobalKey(tid)
		table, field, key := gk.SplitField()
		s, _ := c.Layout().SlotOf(tid)
		got := c.Switch().ReadRegister(s.Stage, s.Array, s.Index)
		home := gen.Home(table, key)
		want := c.Node(int(home)).Store().Table(table).Get(key, field)
		if got != want {
			t.Fatalf("offloaded tuple %v: register=%d store=%d", gk, got, want)
		}
		found++
	}
	if found == 0 {
		t.Fatal("nothing offloaded")
	}
	c.Env().Shutdown()
}

func TestHotSetDetectionFindsConfiguredHotTuples(t *testing.T) {
	cfg := smallConfig("p4db")
	gen := ycsbGen(cfg, 50)
	c := NewCluster(cfg, gen)
	want := gen.HotCandidates()
	missed := 0
	for _, k := range want {
		if !c.HotIndex().OnSwitch(k) {
			missed++
		}
	}
	if missed > len(want)/10 {
		t.Fatalf("detection missed %d/%d configured hot tuples", missed, len(want))
	}
	c.Env().Shutdown()
}

func TestCapacityCapSpills(t *testing.T) {
	cfg := smallConfig("p4db")
	cfg.HotSetCap = 20 // fewer than the 4*50 configured hot keys
	gen := ycsbGen(cfg, 50)
	c := NewCluster(cfg, gen)
	if got := c.HotIndex().OnSwitchCount(); got > 20 {
		t.Fatalf("offloaded %d tuples despite cap 20", got)
	}
	res := c.Run(1*sim.Millisecond, 3*sim.Millisecond)
	// Overflowing hot traffic must still commit (as cold transactions).
	if res.Counters.Committed() == 0 {
		t.Fatal("nothing committed with capped hot-set")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() int64 {
		cfg := smallConfig("p4db")
		res := runShort(t, cfg, ycsbGen(cfg, 50))
		return res.Counters.Committed()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("identical configs committed %d vs %d (non-deterministic)", a, b)
	}
}

// TestSwitchRecoveryEndToEnd drives hot transactions to completion, then
// crashes the switch and reconstructs its state from the node WALs.
func TestSwitchRecoveryEndToEnd(t *testing.T) {
	cfg := smallConfig("p4db")
	cfg.Durable = true // the WAL retains records only on durable runs
	sbc := workload.DefaultSmallBank(cfg.Nodes, 5)
	sbc.AccountsPerNode = 200
	sbc.HotTxnPct = 100
	sbc.DistPct = 0
	gen := workload.NewSmallBank(sbc)
	c := NewCluster(cfg, gen)

	// Drive a bounded number of transactions so every record completes.
	for i := 0; i < cfg.Nodes; i++ {
		n := c.Node(i)
		rng := sim.NewRNG(uint64(900 + i))
		c.Env().Spawn("driver", func(p *sim.Proc) {
			for k := 0; k < 50; k++ {
				txn := gen.Next(rng, n.ID())
				if c.EngineContext().Classify(txn) != engine.ClassHot {
					continue
				}
				c.EngineContext().ExecHot(p, n, txn)
			}
		})
	}
	c.Env().Run()

	want := c.Switch().Snapshot()
	logs := make([]*wal.Log, cfg.Nodes)
	for i := range logs {
		logs[i] = c.Node(i).Log()
	}
	// Simulate lost responses for purely additive records.
	stripped := 0
	for _, l := range logs {
		for _, rec := range l.SwitchRecords() {
			if stripped >= 2 || !rec.HasGID {
				continue
			}
			additive := len(rec.Instrs) > 0
			for _, in := range rec.Instrs {
				if in.Op != txnwire.OpAdd {
					additive = false
					break
				}
			}
			if additive {
				rec.HasGID = false
				rec.GID = 0
				rec.Results = nil
				stripped++
			}
		}
	}

	// Crash and recover.
	c.Switch().Reset()
	c.Switch().Restore(c.Baseline())
	fresh := func() wal.Replayer {
		scratch := pisa.New(sim.NewEnv(0), cfg.Switch)
		scratch.Restore(c.Baseline())
		return scratch
	}
	if _, _, err := wal.RecoverSwitch(logs, fresh, c.Switch()); err != nil {
		t.Fatal(err)
	}
	got := c.Switch().Snapshot()
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("register %d after recovery: %d, want %d", i, got[i], want[i])
		}
	}
}

// TestFaultRecoveryMatchesGolden runs each fault kind against its engine
// and pins the recovered run's final state digest to the no-fault run's:
// the crash handler is zero-perturbation (synchronous, no RNG draws, no
// scheduled events), so any byte recovery failed to rebuild would split
// the digests.
func TestFaultRecoveryMatchesGolden(t *testing.T) {
	cases := []struct {
		eng  string
		plan FaultPlan
	}{
		{"p4db", FaultPlan{Kind: SwitchCrash, At: 2 * sim.Millisecond}},
		{"noswitch", FaultPlan{Kind: CoordCrash, At: 2 * sim.Millisecond, Node: 0}},
		{"noswitch", FaultPlan{Kind: NodeCrash, At: 3 * sim.Millisecond, Node: 1}},
		{"calvin", FaultPlan{Kind: SequencerCrash, At: 2 * sim.Millisecond}},
	}
	for _, tc := range cases {
		t.Run(tc.plan.Kind.String(), func(t *testing.T) {
			cfg := smallConfig(tc.eng)
			cfg.Durable = true
			cfg.CaptureState = true
			golden := runShort(t, cfg, ycsbGen(cfg, 50))
			if golden.StateDigest == "" {
				t.Fatal("CaptureState produced no digest")
			}

			cfg.Fault = &tc.plan
			res := runShort(t, cfg, ycsbGen(cfg, 50))
			if res.Recovery == nil {
				t.Fatal("fault never fired")
			}
			if !res.Recovery.Verified || res.Recovery.Kind != tc.plan.Kind.String() {
				t.Fatalf("recovery stats: %+v", res.Recovery)
			}
			if res.Recovery.LogRecords == 0 || res.Recovery.RecoveryTime == 0 {
				t.Fatalf("recovery replayed nothing: %+v", res.Recovery)
			}
			if res.StateDigest != golden.StateDigest {
				t.Fatalf("recovered state diverged from the no-fault run:\n fault  %s\n golden %s",
					res.StateDigest, golden.StateDigest)
			}
			if res.Counters.Committed() != golden.Counters.Committed() {
				t.Fatalf("fault run committed %d, golden %d", res.Counters.Committed(), golden.Counters.Committed())
			}
		})
	}
}

// TestSwitchCrashRecoveryAtScale pins the switch-crash story at the
// recovery figure's scale (8 nodes, 8 workers, distributed YCSB-A), where
// two failure modes live that the 4-node cases never hit: a crash landing
// while a multipass transaction is between pipeline passes (the register
// file holds partial effects no log replay can reproduce — the fault
// injector must defer until the pipeline drains), and two unacknowledged
// blind writes to the same register (order-ambiguous from the logs alone —
// the gap fit must come from the admitted GIDs, not the backtracking
// search, or replay lands on a consistent-but-wrong final state).
func TestSwitchCrashRecoveryAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("figure-scale fault run")
	}
	cfg := DefaultConfig()
	cfg.Engine = "p4db"
	cfg.Nodes = 8
	cfg.WorkersPerNode = 8
	cfg.Switch.SlotsPerArray = 256
	cfg.SampleTxns = 6000
	cfg.Durable = true
	cfg.CaptureState = true

	gen := func() *workload.YCSB {
		wcfg := workload.YCSBWorkloadA(cfg.Nodes)
		wcfg.WritePct, wcfg.DistPct, wcfg.HotTxnPct = 50, 20, 75
		return workload.NewYCSB(wcfg)
	}
	warmup, measure := 200*sim.Microsecond, 600*sim.Microsecond

	golden := NewCluster(cfg, gen()).Run(warmup, measure)
	for _, at := range []sim.Time{300 * sim.Microsecond, 500 * sim.Microsecond, 700 * sim.Microsecond} {
		cfg.Fault = &FaultPlan{Kind: SwitchCrash, At: at}
		res := NewCluster(cfg, gen()).Run(warmup, measure)
		if res.Recovery == nil {
			t.Fatalf("at=%v: fault never fired", at)
		}
		if res.StateDigest != golden.StateDigest {
			t.Fatalf("at=%v: recovered state diverged from the no-fault run:\n fault  %s\n golden %s",
				at, res.StateDigest, golden.StateDigest)
		}
	}
}

// TestFaultPlanValidation pins the build-time guard rails.
func TestFaultPlanValidation(t *testing.T) {
	mustPanic := func(name string, cfg Config) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: NewCluster accepted an invalid fault plan", name)
			}
		}()
		NewCluster(cfg, ycsbGen(cfg, 50))
	}

	cfg := smallConfig("p4db")
	cfg.Fault = &FaultPlan{Kind: SwitchCrash, At: sim.Millisecond}
	mustPanic("fault without Durable", cfg)

	cfg = smallConfig("p4db")
	cfg.Durable, cfg.Adaptive = true, true
	cfg.Fault = &FaultPlan{Kind: SwitchCrash, At: sim.Millisecond}
	mustPanic("fault with Adaptive", cfg)

	cfg = smallConfig("noswitch")
	cfg.Durable = true
	cfg.Fault = &FaultPlan{Kind: SwitchCrash, At: sim.Millisecond}
	mustPanic("switch crash without a switch", cfg)

	cfg = smallConfig("p4db")
	cfg.Durable = true
	cfg.Fault = &FaultPlan{Kind: SequencerCrash, At: sim.Millisecond}
	mustPanic("sequencer crash without a sequencer", cfg)

	cfg = smallConfig("noswitch")
	cfg.Durable = true
	cfg.Fault = &FaultPlan{Kind: NodeCrash, At: sim.Millisecond, Node: 99}
	mustPanic("node out of range", cfg)
}

// TestDurableDigestInvariance is the tentpole's no-regression clause at
// the core level: Durable gates only record retention, so a durable run
// must produce the exact final state (and commit count) of the default
// run.
func TestDurableDigestInvariance(t *testing.T) {
	run := func(durable bool) *Result {
		cfg := smallConfig("p4db")
		cfg.Durable = durable
		cfg.CaptureState = true
		return runShort(t, cfg, ycsbGen(cfg, 50))
	}
	off, on := run(false), run(true)
	if off.StateDigest != on.StateDigest {
		t.Fatalf("Durable perturbed the run:\n off %s\n on  %s", off.StateDigest, on.StateDigest)
	}
	if off.Counters.Committed() != on.Counters.Committed() {
		t.Fatalf("Durable changed commits: off %d, on %d", off.Counters.Committed(), on.Counters.Committed())
	}
}

func TestResultThroughput(t *testing.T) {
	r := &Result{Duration: sim.Second}
	r.Counters.CommittedHot = 5
	if r.Throughput() != 5 {
		t.Fatalf("Throughput = %v", r.Throughput())
	}
	empty := &Result{}
	if empty.Throughput() != 0 {
		t.Fatal("zero-duration throughput should be 0")
	}
}
