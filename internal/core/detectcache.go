package core

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"

	"repro/internal/hotset"
	"repro/internal/layout"
	"repro/internal/metrics"
	"repro/internal/store"
)

// The offline preparation step (hot-tuple detection + declustered layout)
// is a pure function of the workload sample and a handful of switch
// parameters, and it dominated sweep wall-clock: every point of a figure
// sweep re-derived the identical hot-set and layout while only the worker
// count or the engine changed. This cache keys the finished artifacts by a
// content hash of the sample plus every other input, so a sweep computes
// each distinct preparation exactly once. The cached artifacts (hot-label
// set, layout, index) are immutable after construction and shared
// read-only across clusters; cached results are bit-identical to a fresh
// computation, so seeded sweeps are unaffected.
//
// The cache is built for the parallel sweep runner:
//
//   - It is sharded by the first key byte, so concurrent cluster builds
//     touching different preparations never contend on one lock.
//   - A miss installs an in-flight entry before computing (singleflight):
//     when a parallel sweep launches many points that share one
//     preparation, the first computes it and the rest wait on it instead
//     of burning a core each on identical work.
//   - It is bounded by a two-generation sweep: each shard keeps a current
//     and a previous map; when the current map reaches its cap it becomes
//     the previous one (whose entries are evicted wholesale on the next
//     rotation). Entries hit in the old generation are promoted, so a
//     long matrix run keeps its working set while retired preparations
//     age out — the cache can never grow without limit.
//   - Hit/miss/eviction/size counters (metrics.CacheCounters) are exposed
//     through DetectCacheStats for harness visibility.

// detectArtifacts is one cached preparation result.
type detectArtifacts struct {
	hotLabel map[store.GlobalKey]bool
	layout   *layout.Layout
	hotIdx   *hotset.Index
}

const (
	detectShards   = 16 // power of two; shard = first key byte & mask
	detectShardCap = 32 // per-shard per-generation entries (512 total, 1024 with the old generation)
)

// detectEntry is one cache slot. ready is closed once art is set; waiters
// observing an open channel block on the in-flight computation instead of
// recomputing.
type detectEntry struct {
	ready chan struct{}
	art   *detectArtifacts
}

type detectShard struct {
	mu   sync.Mutex
	cur  map[[32]byte]*detectEntry
	prev map[[32]byte]*detectEntry
}

var (
	detectCache [detectShards]detectShard
	detectStats metrics.CacheCounters
)

// DetectCacheStats snapshots the detection-cache counters: how many
// cluster builds reused a cached preparation vs computed one, and how many
// entries the generation sweep has evicted.
func DetectCacheStats() metrics.CacheStats { return detectStats.Stats() }

// ResetDetectCacheStats zeroes the counters (tests and repeated sweeps).
// The cached entries themselves are kept — only the accounting resets.
func ResetDetectCacheStats() { detectStats.Reset() }

// detectKey hashes every input the preparation step depends on: the full
// sample (keys and dependencies), the capacity cap, the switch geometry,
// the layout mode and the seed (the random-layout RNG derives from it).
// SHA-256 makes an accidental collision practically impossible, so a cache
// hit is as trustworthy as recomputing.
func detectKey(cfg Config, samples [][]hotset.Access, cap int) [32]byte {
	h := sha256.New()
	var buf [8]byte
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	w64(cfg.Seed)
	w64(uint64(cap))
	w64(uint64(cfg.Switch.Stages))
	w64(uint64(cfg.Switch.ArraysPerStage))
	w64(uint64(cfg.Switch.SlotsPerArray))
	if cfg.RandomLayout {
		w64(1)
	} else {
		w64(0)
	}
	w64(uint64(len(cfg.ExplicitHot)))
	for _, k := range cfg.ExplicitHot {
		w64(uint64(k))
	}
	for _, txn := range samples {
		w64(uint64(len(txn)))
		for _, a := range txn {
			w64(uint64(a.Key))
			w64(uint64(int64(a.DependsOn)))
		}
	}
	var key [32]byte
	h.Sum(key[:0])
	return key
}

// getDetect returns the artifacts for key, computing them with compute on
// a miss. Concurrent callers with the same key share one computation.
func getDetect(key [32]byte, compute func() *detectArtifacts) *detectArtifacts {
	s := &detectCache[key[0]&(detectShards-1)]
	s.mu.Lock()
	if e, ok := s.cur[key]; ok {
		s.mu.Unlock()
		return awaitDetect(e, compute)
	}
	if e, ok := s.prev[key]; ok {
		// Old-generation hit: promote so the working set survives the
		// next rotation. The promotion may push the current map slightly
		// past its cap; the next miss rotates and restores the bound.
		delete(s.prev, key)
		if s.cur == nil {
			s.cur = make(map[[32]byte]*detectEntry, detectShardCap)
		}
		s.cur[key] = e
		s.mu.Unlock()
		return awaitDetect(e, compute)
	}
	// Miss: install an in-flight entry before computing so concurrent
	// builders of the same preparation wait instead of duplicating it.
	e := &detectEntry{ready: make(chan struct{})}
	if len(s.cur) >= detectShardCap {
		detectStats.Evict(int64(len(s.prev)))
		s.prev = s.cur
		s.cur = nil
	}
	if s.cur == nil {
		s.cur = make(map[[32]byte]*detectEntry, detectShardCap)
	}
	s.cur[key] = e
	s.mu.Unlock()
	detectStats.Miss()
	detectStats.Insert()

	// If compute panics (a mis-configured cluster build), drop the entry
	// so waiters and later callers recompute rather than deadlock on a
	// ready channel that never closes.
	completed := false
	defer func() {
		if !completed {
			s.mu.Lock()
			if s.cur[key] == e {
				delete(s.cur, key)
				detectStats.Evict(1)
			} else if s.prev[key] == e {
				delete(s.prev, key)
				detectStats.Evict(1)
			}
			s.mu.Unlock()
			close(e.ready)
		}
	}()
	e.art = compute()
	completed = true
	close(e.ready)
	return e.art
}

// awaitDetect blocks until the entry's computation finishes. A nil result
// means the computing goroutine panicked; fall back to computing locally.
func awaitDetect(e *detectEntry, compute func() *detectArtifacts) *detectArtifacts {
	<-e.ready
	if e.art == nil {
		return compute()
	}
	detectStats.Hit()
	return e.art
}
