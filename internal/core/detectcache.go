package core

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"

	"repro/internal/hotset"
	"repro/internal/layout"
	"repro/internal/store"
)

// The offline preparation step (hot-tuple detection + declustered layout)
// is a pure function of the workload sample and a handful of switch
// parameters, and it dominated sweep wall-clock: every point of a figure
// sweep re-derived the identical hot-set and layout while only the worker
// count or the engine changed. This cache keys the finished artifacts by a
// content hash of the sample plus every other input, so a sweep computes
// each distinct preparation exactly once. The cached artifacts (hot-label
// set, layout, index) are immutable after construction and shared
// read-only across clusters; cached results are bit-identical to a fresh
// computation, so seeded sweeps are unaffected.

// detectArtifacts is one cached preparation result.
type detectArtifacts struct {
	hotLabel map[store.GlobalKey]bool
	layout   *layout.Layout
	hotIdx   *hotset.Index
}

var detectCache = struct {
	sync.Mutex
	m map[[32]byte]*detectArtifacts
}{m: make(map[[32]byte]*detectArtifacts)}

// detectKey hashes every input the preparation step depends on: the full
// sample (keys and dependencies), the capacity cap, the switch geometry,
// the layout mode and the seed (the random-layout RNG derives from it).
// SHA-256 makes an accidental collision practically impossible, so a cache
// hit is as trustworthy as recomputing.
func detectKey(cfg Config, samples [][]hotset.Access, cap int) [32]byte {
	h := sha256.New()
	var buf [8]byte
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	w64(cfg.Seed)
	w64(uint64(cap))
	w64(uint64(cfg.Switch.Stages))
	w64(uint64(cfg.Switch.ArraysPerStage))
	w64(uint64(cfg.Switch.SlotsPerArray))
	if cfg.RandomLayout {
		w64(1)
	} else {
		w64(0)
	}
	w64(uint64(len(cfg.ExplicitHot)))
	for _, k := range cfg.ExplicitHot {
		w64(uint64(k))
	}
	for _, txn := range samples {
		w64(uint64(len(txn)))
		for _, a := range txn {
			w64(uint64(a.Key))
			w64(uint64(int64(a.DependsOn)))
		}
	}
	var key [32]byte
	h.Sum(key[:0])
	return key
}

// lookupDetect returns the cached artifacts for key, if present.
func lookupDetect(key [32]byte) *detectArtifacts {
	detectCache.Lock()
	defer detectCache.Unlock()
	return detectCache.m[key]
}

// storeDetect caches artifacts under key. The cache is bounded: a sweep
// touches a few dozen distinct preparations, so on overflow it simply
// resets rather than tracking recency.
func storeDetect(key [32]byte, a *detectArtifacts) {
	detectCache.Lock()
	defer detectCache.Unlock()
	if len(detectCache.m) >= 256 {
		detectCache.m = make(map[[32]byte]*detectArtifacts)
	}
	detectCache.m[key] = a
}
