package core

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Migration-correctness tests for the online adaptive layout. The oracle
// is LogicalDigest: placement-independent database state. An adaptive
// cluster that executed the same committed history as a static one must
// digest equal no matter how many tuples live migration moved — a lost,
// duplicated or stale value on any promote/demote path breaks equality.

// adaptiveDriftConfig is the shared small-but-contended drifting setup:
// a rotating hot set at Zipf skew, small switch arrays, a fast
// re-detection tick so a short driver stream spans many fences.
func adaptiveDriftConfig(adaptive bool) (Config, workload.DriftConfig) {
	cfg := DefaultConfig()
	cfg.Engine = "p4db"
	cfg.Nodes = 2
	cfg.WorkersPerNode = 1
	cfg.SampleTxns = 4000
	cfg.Switch.SlotsPerArray = 64
	cfg.Adaptive = adaptive
	cfg.AdaptInterval = 10 * sim.Microsecond

	wl := workload.DefaultDrift(cfg.Nodes, workload.DriftRotate, 200*sim.Microsecond)
	wl.RowsPerNode = 4096 // small domain: real write-write contention
	wl.Zipfian = true
	wl.Theta = 0.9
	return cfg, wl
}

// adaptiveTestStream pre-generates one drifting submission stream with a
// manual clock: the first half is drawn in phase 0, the second half in
// phase 1, so the hot set shifts exactly mid-stream regardless of how
// long either cluster takes to execute it.
func adaptiveTestStream(wl workload.DriftConfig, count int) []*workload.Txn {
	gen := workload.NewDrift(wl)
	var now sim.Time
	gen.SetClock(func() sim.Time { return now })
	rng := sim.NewRNG(11)
	txns := make([]*workload.Txn, count)
	for i := range txns {
		if i == count/2 {
			now = wl.PhaseLen // shift to phase 1
		}
		txns[i] = gen.Next(rng, netsim.NodeID(i%wl.NumNodes))
	}
	return txns
}

// driveSerial submits the stream one transaction at a time (each commits
// before the next is submitted, so the committed history is the same
// serial one on every cluster) and returns the final results.
func driveSerial(t *testing.T, cfg Config, wl workload.DriftConfig, txns []*workload.Txn) (*Cluster, *Result) {
	t.Helper()
	c := NewCluster(cfg, workload.NewDrift(wl))
	drv := NewDriver(c)
	committed := 0
	for i, txn := range txns {
		drv.Submit(netsim.NodeID(i%cfg.Nodes), txn, func(engine.Class, int) { committed++ })
		drv.Drain()
	}
	if committed != len(txns) || drv.Inflight() != 0 {
		t.Fatalf("committed %d of %d, inflight %d", committed, len(txns), drv.Inflight())
	}
	return c, drv.Result()
}

// TestAdaptiveMigrationSerializability: the same serial drifting history
// executed on an adaptive cluster (whose re-detection fences, drains and
// migrates concurrently with the stream — ticks land mid-transaction, so
// fences span in-flight attempts) and on a static cluster must leave
// identical logical database state, while the adaptive run actually
// migrated.
func TestAdaptiveMigrationSerializability(t *testing.T) {
	cfgA, wl := adaptiveDriftConfig(true)
	cfgS, _ := adaptiveDriftConfig(false)
	txns := adaptiveTestStream(wl, 600)

	ca, ra := driveSerial(t, cfgA, wl, txns)
	cs, _ := driveSerial(t, cfgS, wl, txns)

	if ra.Migrations == 0 || ra.Promoted == 0 {
		t.Fatalf("adaptive run never migrated (migrations=%d promoted=%d): the test exercised nothing", ra.Migrations, ra.Promoted)
	}
	if a, s := ca.LogicalDigest(), cs.LogicalDigest(); a != s {
		t.Fatalf("adaptive cluster diverged from static after the same serial history:\n  adaptive: %s\n  static:   %s\n(migrations=%d promoted=%d demoted=%d)",
			a, s, ra.Migrations, ra.Promoted, ra.Demoted)
	}
}

// TestAdaptivePromoteDemoteRoundTrip forces capacity pressure (HotSetCap
// far below the shifted hot set) so re-detection must demote resident
// tuples to make room — every migration round-trips register values back
// through the owner-node stores. State must still match the static run:
// a demote that loses the register's current value, or a promote that
// re-reads a stale store value, breaks the digest.
func TestAdaptivePromoteDemoteRoundTrip(t *testing.T) {
	cfgA, wl := adaptiveDriftConfig(true)
	cfgS, _ := adaptiveDriftConfig(false)
	cfgA.HotSetCap = 24
	cfgS.HotSetCap = 24
	txns := adaptiveTestStream(wl, 600)

	ca, ra := driveSerial(t, cfgA, wl, txns)
	cs, _ := driveSerial(t, cfgS, wl, txns)

	if ra.Demoted == 0 || ra.Promoted == 0 {
		t.Fatalf("capacity pressure never forced a demotion (promoted=%d demoted=%d): the round-trip path is untested", ra.Promoted, ra.Demoted)
	}
	if a, s := ca.LogicalDigest(), cs.LogicalDigest(); a != s {
		t.Fatalf("promote/demote round trip corrupted state:\n  adaptive: %s\n  static:   %s\n(migrations=%d promoted=%d demoted=%d)",
			a, s, ra.Migrations, ra.Promoted, ra.Demoted)
	}
}

// TestAdaptiveConcurrentFenceDeterministic floods the adaptive cluster
// with concurrent batches (25 transactions in flight at once) so fences
// rise with real in-flight attempts to drain and retries arriving while
// fencing park at the gate. Two identically seeded runs must commit
// everything and digest identically — and the fence path must actually
// have parked someone.
func TestAdaptiveConcurrentFenceDeterministic(t *testing.T) {
	digests := make([]string, 2)
	var res *Result
	for rep := 0; rep < 2; rep++ {
		cfg, wl := adaptiveDriftConfig(true)
		txns := adaptiveTestStream(wl, 600)
		c := NewCluster(cfg, workload.NewDrift(wl))
		drv := NewDriver(c)
		committed := 0
		for i := 0; i < len(txns); i += 25 {
			end := i + 25
			if end > len(txns) {
				end = len(txns)
			}
			for j := i; j < end; j++ {
				drv.Submit(netsim.NodeID(j%cfg.Nodes), txns[j], func(engine.Class, int) { committed++ })
			}
			drv.Drain()
		}
		if committed != len(txns) || drv.Inflight() != 0 {
			t.Fatalf("rep %d: committed %d of %d, inflight %d — a fence lost a submission", rep, committed, len(txns), drv.Inflight())
		}
		res = drv.Result()
		digests[rep] = c.StateDigest()
	}
	if res.Migrations == 0 {
		t.Fatal("concurrent stream never migrated: the fence was not exercised")
	}
	if res.FenceWaits == 0 {
		t.Fatal("no execution ever parked at a fence: raise the contention or shrink the interval")
	}
	if digests[0] != digests[1] {
		t.Fatalf("two identical adaptive runs diverged:\n%s\n%s", digests[0], digests[1])
	}
}
