// Package core builds and runs the cluster under test: it wires together
// every substrate — the discrete-event simulator, the rack network, the
// PISA switch model, per-node stores, lock tables and write-ahead logs —
// performs the strategy-independent offline preparation step (hot-set
// detection, declustered layout computation) and runs closed-loop worker
// processes that generate and execute transactions.
//
// The execution strategies themselves — P4DB's hot/warm/cold paths and
// the evaluation baselines (No-Switch, LM-Switch, Chiller, OCC) — live in
// internal/engine behind the engine.Engine interface. A cluster selects
// its strategy by name through Config.Engine; registering a new engine
// makes it selectable everywhere (benchmarks, CLIs, examples) without
// touching this package.
package core
