package core
