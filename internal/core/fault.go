package core

import (
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/lock"
	"repro/internal/netsim"
	"repro/internal/pisa"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/wal"
)

// FaultKind selects which component a FaultPlan crashes.
type FaultKind int

const (
	// SwitchCrash wipes the switch register file, locks and GID counter
	// mid-run; recovery rebuilds the registers by replaying every node's
	// switch records in GID order, gap-fitting the records whose response
	// was still in flight (Section 6.1 / Figure 9). Requires an engine
	// that offloaded tuples into the switch.
	SwitchCrash FaultKind = iota + 1
	// NodeCrash fails one database node; recovery redoes its partition
	// from the committed cold records of all node logs (merged in LSN
	// order) onto the load-time baseline image and verifies the rebuilt
	// partition against the live one — rows mid-update (exclusively
	// locked) at the crash instant are the only tolerated difference.
	NodeCrash
	// CoordCrash is a NodeCrash of a node in its 2PC-coordinator role:
	// the same redo applies, and under presumed abort every transaction
	// the crashed coordinator had not logged a commit record for resolves
	// to abort — exactly the rows the lock probe reports as in-doubt.
	CoordCrash
	// SequencerCrash fails the calvin epoch sequencer; a standby takes
	// over by replaying the epoch log (batch sizes) against the logged
	// initial RNG state, reproducing the exact permutation stream before
	// adopting the sequencer role (engine.FailoverCalvinSequencer).
	SequencerCrash
)

// String returns the matrix cell label of the fault kind.
func (k FaultKind) String() string {
	switch k {
	case SwitchCrash:
		return "switch-crash"
	case NodeCrash:
		return "node-crash"
	case CoordCrash:
		return "coord-crash"
	case SequencerCrash:
		return "sequencer-failover"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// FaultPlan schedules one seeded crash at a fixed virtual time. The crash
// handler runs synchronously inside its own event — it draws no random
// numbers and mutates no scheduled state — so the post-crash event
// schedule is bit-identical to the no-fault run's. (The one thing it may
// schedule is its own deferral: a SwitchCrash landing while a multipass
// transaction is between pipeline passes re-arms itself a few ns later,
// a pure observer event that reorders nothing — see injectFault.) That
// zero-perturbation discipline is what makes "recovered state equals the
// no-fault golden state" a meaningful per-cell oracle: any byte recovery
// fails to reconstruct shows up as a StateDigest mismatch.
type FaultPlan struct {
	Kind FaultKind
	// At is the virtual time the crash fires; it must lie inside the run
	// (a plan that never fires is a hard error at the end of Run).
	At sim.Time
	// Node is the crashed node for NodeCrash / CoordCrash.
	Node int
}

// RecoveryStats reports what recovery did; Result.Recovery carries it for
// runs with a FaultPlan.
type RecoveryStats struct {
	Kind string   // FaultKind label, e.g. "switch-crash"
	At   sim.Time // when the crash fired

	// LogRecords is the number of WAL records recovery scanned (switch
	// records for SwitchCrash, cold records for NodeCrash/CoordCrash,
	// epoch records for SequencerCrash) — the x-axis of the recovery
	// figure.
	LogRecords int

	SwitchReplayed int // switch transactions replayed in GID order
	ResponsesLost  int // executed-unacknowledged records fitted into GID gaps
	InFabric       int // intents whose packet never reached the switch (excluded)

	ColdRedone   int // committed cold records with writes on the crashed partition
	WritesRedone int // individual redo writes applied
	InDoubt      int // rows excused as exclusively locked (presumed abort resolves them)

	EpochsReplayed int // calvin epochs the standby sequencer replayed

	// RecoveryTime is the modeled recovery latency: one log-read per
	// scanned record plus one log-read-equivalent per replayed unit, at
	// the cost model's LogAppend rate. It is reported, not scheduled —
	// injecting it into the event queue would perturb the schedule and
	// destroy the digest-equality oracle.
	RecoveryTime sim.Time

	// Verified is set once the rebuilt state passed the in-simulation
	// cross-check against the live state (a failed check panics instead).
	Verified bool
}

// installFault validates the plan against the built cluster and arms the
// crash event. Called from NewCluster after the engine prepared, so the
// baseline snapshot exists and UseSwitch is known; armed before Run
// spawns the workers, so the one extra scheduled event shifts all event
// sequence numbers uniformly and the relative order of every pair of
// worker events is preserved.
func (c *Cluster) installFault(plan *FaultPlan) {
	if !c.cfg.Durable {
		panic("core: FaultPlan requires Config.Durable (nothing to recover from without a WAL)")
	}
	if c.cfg.Adaptive {
		panic("core: FaultPlan cannot be combined with Adaptive (live migration invalidates the offload baseline recovery replays from)")
	}
	if plan.At <= 0 {
		panic("core: FaultPlan.At must be a positive virtual time")
	}
	switch plan.Kind {
	case SwitchCrash:
		if !c.ctx.UseSwitch {
			panic(fmt.Sprintf("core: SwitchCrash on engine %q, which offloads nothing to the switch", c.eng.Name()))
		}
		// Track which packets the switch admitted so the crash handler can
		// split GID-less records into executed-unacknowledged (gap-fit)
		// and fabric-resident (excluded; they execute after recovery).
		c.ctx.Sw.TrackAdmissions()
	case NodeCrash, CoordCrash:
		if plan.Node < 0 || plan.Node >= c.cfg.Nodes {
			panic(fmt.Sprintf("core: FaultPlan.Node %d outside cluster of %d nodes", plan.Node, c.cfg.Nodes))
		}
		// The redo baseline is the crashed node's partition as loaded —
		// recovery replays committed writes on top of this image.
		c.redoBase = clonePartition(c.ctx.Nodes[plan.Node].Store())
	case SequencerCrash:
		if c.eng.Name() != "calvin" {
			panic(fmt.Sprintf("core: SequencerCrash on engine %q, which has no sequencer", c.eng.Name()))
		}
	default:
		panic(fmt.Sprintf("core: unknown FaultKind %d", int(plan.Kind)))
	}
	c.env.After(plan.At, func() { c.injectFault(plan) })
}

// faultRetry is the polling interval the crash event defers by while the
// switch pipeline holds an admitted-but-unfinished multipass transaction.
// It is well under the recirculation wait separating two passes, so the
// crash fires at the first instant the register file is consistent.
const faultRetry = 100 * sim.Nanosecond

// injectFault is the crash event: it destroys (or fails over) the target
// and runs recovery to completion synchronously, then lets the untouched
// event queue resume.
func (c *Cluster) injectFault(plan *FaultPlan) {
	if plan.Kind == SwitchCrash && c.ctx.Sw.MidPipeline() > 0 {
		// A multipass transaction is between passes: its earlier passes
		// live only in the register file, so the snapshot is not a state
		// any log replay can reproduce. Real hardware loses the packet
		// with the switch and the node re-sends it; the simulation cannot
		// cancel the in-flight pass continuation without perturbing the
		// schedule, so instead the crash defers — pure observer events
		// that mutate nothing and, like the arming event itself, shift
		// subsequent sequence draws uniformly without reordering any
		// existing pair.
		c.env.After(faultRetry, func() { c.injectFault(plan) })
		return
	}
	st := &RecoveryStats{Kind: plan.Kind.String(), At: c.env.Now()}
	switch plan.Kind {
	case SwitchCrash:
		c.crashSwitch(st)
	case NodeCrash, CoordCrash:
		c.crashNode(plan.Node, st)
	case SequencerCrash:
		st.EpochsReplayed = engine.FailoverCalvinSequencer(c.ctx)
		st.LogRecords = st.EpochsReplayed
		st.RecoveryTime = c.ctx.Costs.LogAppend * sim.Time(2*st.EpochsReplayed)
	}
	st.Verified = true
	c.recovery = st
}

// crashSwitch wipes and rebuilds the switch. The simulation grants one
// liberty over real hardware: the switch's admission table survives the
// crash, so recovery knows which GID-less intents were executed with the
// response lost in flight (they are fitted into their GID gaps) versus
// still in the lossless fabric (excluded; they execute naturally after
// recovery, and the restored GID counter hands them the GIDs they would
// have gotten). The admission table also pins the gap each lost-response
// record fills: two unacknowledged blind writes to the same register are
// order-ambiguous from the logs alone — any consistent order is a correct
// recovery, since nobody observed their results — but the digest oracle
// demands the order that actually executed. A real deployment replays
// every logged intent, relies on the switch deduplicating re-sent packets
// and accepts any log-consistent order for unacknowledged transactions;
// the register arithmetic is identical either way, and the replayed
// sequence is still verified against every logged read/write result
// (Figure 9's analysis) before it is accepted.
func (c *Cluster) crashSwitch(st *RecoveryStats) {
	sw := c.ctx.Sw
	pre := sw.Snapshot()
	nextGID := sw.NextGID()

	var parts []*wal.SwitchRecord
	for _, n := range c.ctx.Nodes {
		for _, rec := range n.Log().SwitchRecords() {
			st.LogRecords++
			switch {
			case rec.HasGID:
				parts = append(parts, rec)
			default:
				if gid, ok := sw.AdmittedGID(rec.TxnID); ok {
					// Executed, response lost in the crash: gap-fit at
					// the admitted GID. The record copy leaves the live
					// log untouched — the in-flight response will
					// back-fill the original when it arrives.
					cp := *rec
					cp.GID, cp.HasGID = gid, true
					parts = append(parts, &cp)
					st.ResponsesLost++
				} else {
					st.InFabric++
				}
			}
		}
	}
	if uint64(len(parts)) != nextGID {
		panic(fmt.Sprintf("core: switch recovery found %d logged intents for %d admitted transactions", len(parts), nextGID))
	}

	sw.Reset()
	sw.Restore(c.baseline)
	fresh := func() wal.Replayer {
		scratch := pisa.New(sim.NewEnv(0), c.cfg.Switch)
		scratch.Restore(c.baseline)
		return scratch
	}
	seq, err := wal.OrderRecords(parts, fresh)
	if err != nil {
		panic(fmt.Sprintf("core: switch recovery: %v", err))
	}
	for _, rec := range seq {
		sw.ApplyTxn(rec.Instrs)
	}
	sw.SetNextGID(nextGID)
	st.SwitchReplayed = len(seq)
	st.RecoveryTime = c.ctx.Costs.LogAppend * sim.Time(st.LogRecords+st.SwitchReplayed)

	for i, v := range sw.Snapshot() {
		if v != pre[i] {
			panic(fmt.Sprintf("core: switch recovery diverged at register %d: rebuilt %d, lost state had %d", i, v, pre[i]))
		}
	}
}

// crashNode rebuilds node id's partition from scratch: the committed cold
// records of ALL node logs (coordinators log the redo for their remote
// writes) are merged in LSN order, filtered to writes homed on the
// crashed partition, and applied to the load-time baseline image. The
// rebuilt partition must match the live one row for row; the only rows
// allowed to differ are those exclusively locked at the crash instant —
// in-flight (or in-doubt) transactions whose effects presumed-abort 2PC
// discards. The live store is left untouched, so the run continues as if
// a hot standby took over with zero loss.
func (c *Cluster) crashNode(id int, st *RecoveryStats) {
	type entry struct {
		rec      *wal.ColdRecord
		src, idx int
	}
	var entries []entry
	for _, n := range c.ctx.Nodes {
		for idx, rec := range n.Log().ColdRecords() {
			st.LogRecords++
			if rec.Committed {
				entries = append(entries, entry{rec, int(n.ID()), idx})
			}
		}
	}
	// Conflicting writers append strictly in serialization order (the
	// second acquires the row lock only after the first's post-append
	// release), so the LSN merge reproduces every row's commit order;
	// (src, idx) only breaks ties between non-conflicting records.
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.rec.LSN != b.rec.LSN {
			return a.rec.LSN < b.rec.LSN
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.idx < b.idx
	})

	target := netsim.NodeID(id)
	for _, e := range entries {
		hit := false
		for _, w := range e.rec.Writes {
			if c.gen.Home(w.Table, w.Key) != target {
				continue // write belongs to another partition
			}
			c.redoBase.Table(w.Table).Set(w.Key, w.Field, w.Value)
			st.WritesRedone++
			hit = true
		}
		if hit {
			st.ColdRedone++
		}
	}
	st.RecoveryTime = c.ctx.Costs.LogAppend * sim.Time(st.LogRecords+st.WritesRedone)

	live := c.ctx.Nodes[id].Store()
	locks := c.ctx.Nodes[id].Locks()
	for _, tid := range live.TableIDs() {
		lt, rt := live.Table(tid), c.redoBase.Table(tid)
		keys := make(map[store.Key]struct{}, lt.Rows()+rt.Rows())
		for _, k := range lt.Keys() {
			keys[k] = struct{}{}
		}
		for _, k := range rt.Keys() {
			keys[k] = struct{}{}
		}
		for k := range keys {
			if rowsEqual(lt.GetRow(k), rt.GetRow(k)) {
				continue
			}
			if locks.LockedExclusive(lock.Key(store.Global(tid, k))) {
				st.InDoubt++ // mid-update at the crash; presumed abort discards it
				continue
			}
			panic(fmt.Sprintf("core: node %d recovery diverged at table %d key %d: redo %v, live %v",
				id, tid, k, rt.GetRow(k), lt.GetRow(k)))
		}
	}
}

func rowsEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// clonePartition deep-copies a node's store (the redo baseline image).
func clonePartition(src *store.Store) *store.Store {
	dst := store.New()
	for _, tid := range src.TableIDs() {
		t := src.Table(tid)
		nt := dst.CreateTable(tid, t.Name(), t.Fields())
		for _, k := range t.Keys() {
			for f, v := range t.GetRow(k) {
				nt.Set(k, f, v)
			}
		}
	}
	return dst
}
