package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/workload"
)

// Driver executes externally submitted transactions on a cluster — the
// serving-mode bridge between wall-clock arrivals (TCP requests) and the
// virtual-time engines. Instead of closed-loop workers drawing their own
// transactions (Run), the caller injects transactions with Submit and the
// driver steps the event loop until every injected transaction has
// committed. The same Engine/Scheme registries execute in both modes, so
// the sim predicts what the server serves; the parity test in
// internal/server holds them to identical final database state.
//
// A Driver owns the cluster's simulated clock. All methods must be called
// from one goroutine (the server's engine loop), mirroring the sim's
// single-owner rule.
type Driver struct {
	c   *Cluster
	rng *sim.RNG
}

// NewDriver prepares a cluster for externally driven execution. Counters,
// latency histograms and breakdowns measure from the first submission
// (there is no warmup window in serving mode).
func NewDriver(c *Cluster) *Driver {
	c.ctx.SetMeasuring(true)
	return &Driver{c: c, rng: c.env.Rand().Fork(0x5EC0ED)}
}

// Cluster returns the driven cluster.
func (d *Driver) Cluster() *Cluster { return d.c }

// Inflight returns the number of submitted transactions not yet committed.
func (d *Driver) Inflight() int { return d.c.ctx.SubmitsInflight() }

// Commits returns the number of transactions committed through Submit.
func (d *Driver) Commits() int64 { return d.c.ctx.SubmitsDone() }

// Now returns the cluster's virtual clock.
func (d *Driver) Now() sim.Time { return d.c.env.Now() }

// Submit injects txn as if it arrived at node origin and calls
// done(class, retries) when it commits. Execution happens inside Drain;
// the callback fires from there. done is handed to the engine verbatim —
// server callers pool their callbacks so the per-request path stays
// allocation-free.
func (d *Driver) Submit(origin netsim.NodeID, txn *workload.Txn, done func(cls engine.Class, retries int)) {
	if int(origin) < 0 || int(origin) >= len(d.c.ctx.Nodes) {
		panic(fmt.Sprintf("core: submit origin %d outside cluster of %d nodes", origin, len(d.c.ctx.Nodes)))
	}
	d.c.ctx.Submit(d.c.eng, d.c.ctx.Nodes[origin], txn, d.rng, done)
}

// Drain steps the event loop until every submitted transaction has
// committed. It must not be a plain env.Run(): engines with standing
// timers (calvin's epoch sequencer re-arms every epoch) never let the
// queue go empty, so the loop watches the in-flight count instead.
func (d *Driver) Drain() {
	for d.c.ctx.SubmitsInflight() > 0 {
		if !d.c.env.Step() {
			panic(fmt.Sprintf("core: event queue drained with %d transactions in flight", d.c.ctx.SubmitsInflight()))
		}
	}
}

// Result assembles the serving-mode counters accumulated so far. Duration
// is the virtual time elapsed since the cluster started, so Throughput()
// is simulated-virtual commits/s, not wall-clock commits/s — the server
// reports wall-clock rates itself.
func (d *Driver) Result() *Result {
	c := d.c
	res := &Result{
		Engine:      c.eng.Name(),
		EngineLabel: c.eng.Label(),
		Scheme:      c.ctx.Scheme.Name(),
		Workload:    c.gen.Name(),
		Duration:    c.env.Now(),
		Events:      c.env.Events(),
	}
	res.Migrations, res.Promoted, res.Demoted, res.FenceWaits = c.ctx.AdaptiveCounters()
	for _, n := range c.ctx.Nodes {
		res.Counters.Merge(n.Counters())
		res.Breakdown.Merge(n.Breakdown())
		res.Latency.Merge(n.Latency())
	}
	return res
}

// StateDigest hashes the cluster's full logical database state: every
// node's store partition (tables in id order, rows in key order, fields
// verbatim) plus, when the engine offloaded tuples into the switch, the
// switch register file. Two clusters that executed the same committed
// history — through netsim or through real sockets — must digest
// identically; the sim-vs-server parity test pins exactly that.
func (c *Cluster) StateDigest() string {
	h := sha256.New()
	var scratch [8]byte
	writeU64 := func(v uint64) {
		binary.BigEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}
	for i, n := range c.ctx.Nodes {
		fmt.Fprintf(h, "node %d\n", i)
		st := n.Store()
		for _, tid := range st.TableIDs() {
			tbl := st.Table(tid)
			fmt.Fprintf(h, "table %d %s\n", tid, tbl.Name())
			for _, k := range tbl.Keys() {
				writeU64(uint64(k))
				for _, v := range tbl.GetRow(k) {
					writeU64(uint64(v))
				}
			}
		}
	}
	if c.ctx.UseSwitch {
		h.Write([]byte("switch\n"))
		for _, v := range c.ctx.Sw.Snapshot() {
			writeU64(uint64(v))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// LogicalDigest hashes the cluster's database state independent of tuple
// placement: every non-zero field value at its logical (table, key,
// field) coordinates, with tuples currently living in a switch register
// read from the register file instead of the (stale while offloaded)
// owner-node store. Zero values and unmaterialized rows are
// indistinguishable, matching the lazy-materialization convention, so
// the digest is also independent of which rows a run happened to
// materialize. Two clusters that executed the same committed history
// digest equal even if live migration moved their tuples around — this
// is the correctness oracle of the migration tests, where StateDigest
// (which pins physical placement) can legitimately differ.
func (c *Cluster) LogicalDigest() string {
	type entry struct {
		t store.TableID
		k store.Key
		f int
		v int64
	}
	var entries []entry
	onSwitch := make(map[store.GlobalKey]int64)
	if c.ctx.UseSwitch {
		for _, gk := range c.ctx.HotIdx.Keys() {
			s, _ := c.ctx.HotIdx.Lookup(gk)
			onSwitch[gk] = c.ctx.Sw.ReadRegister(s.Stage, s.Array, s.Index)
		}
	}
	for _, n := range c.ctx.Nodes {
		st := n.Store()
		for _, tid := range st.TableIDs() {
			tbl := st.Table(tid)
			for _, k := range tbl.Keys() {
				for f, v := range tbl.GetRow(k) {
					// Offloaded fields read from their register; fields
					// beyond the GlobalField encoding range can never be
					// offloaded (operations address fields 0..15).
					if f <= 15 {
						gk := store.GlobalField(tid, f, k)
						if sv, ok := onSwitch[gk]; ok {
							v = sv
							delete(onSwitch, gk)
						}
					}
					if v != 0 {
						entries = append(entries, entry{tid, k, f, v})
					}
				}
			}
		}
	}
	// Switch-resident tuples whose owner-node rows never materialized.
	for gk, v := range onSwitch {
		if v != 0 {
			t, f, k := gk.SplitField()
			entries = append(entries, entry{t, k, f, v})
		}
	}
	// Runs that took different migration paths emit the entries in a
	// different walk order; the digest is over the sorted set.
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.t != b.t {
			return a.t < b.t
		}
		if a.k != b.k {
			return a.k < b.k
		}
		return a.f < b.f
	})
	h := sha256.New()
	var scratch [8]byte
	writeU64 := func(v uint64) {
		binary.BigEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}
	for _, e := range entries {
		writeU64(uint64(e.t))
		writeU64(uint64(e.k))
		writeU64(uint64(e.f))
		writeU64(uint64(e.v))
	}
	return hex.EncodeToString(h.Sum(nil))
}
