package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"repro/internal/engine"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Driver executes externally submitted transactions on a cluster — the
// serving-mode bridge between wall-clock arrivals (TCP requests) and the
// virtual-time engines. Instead of closed-loop workers drawing their own
// transactions (Run), the caller injects transactions with Submit and the
// driver steps the event loop until every injected transaction has
// committed. The same Engine/Scheme registries execute in both modes, so
// the sim predicts what the server serves; the parity test in
// internal/server holds them to identical final database state.
//
// A Driver owns the cluster's simulated clock. All methods must be called
// from one goroutine (the server's engine loop), mirroring the sim's
// single-owner rule.
type Driver struct {
	c   *Cluster
	rng *sim.RNG
}

// NewDriver prepares a cluster for externally driven execution. Counters,
// latency histograms and breakdowns measure from the first submission
// (there is no warmup window in serving mode).
func NewDriver(c *Cluster) *Driver {
	c.ctx.SetMeasuring(true)
	return &Driver{c: c, rng: c.env.Rand().Fork(0x5EC0ED)}
}

// Cluster returns the driven cluster.
func (d *Driver) Cluster() *Cluster { return d.c }

// Inflight returns the number of submitted transactions not yet committed.
func (d *Driver) Inflight() int { return d.c.ctx.SubmitsInflight() }

// Commits returns the number of transactions committed through Submit.
func (d *Driver) Commits() int64 { return d.c.ctx.SubmitsDone() }

// Now returns the cluster's virtual clock.
func (d *Driver) Now() sim.Time { return d.c.env.Now() }

// Submit injects txn as if it arrived at node origin and calls
// done(class, retries) when it commits. Execution happens inside Drain;
// the callback fires from there. done is handed to the engine verbatim —
// server callers pool their callbacks so the per-request path stays
// allocation-free.
func (d *Driver) Submit(origin netsim.NodeID, txn *workload.Txn, done func(cls engine.Class, retries int)) {
	if int(origin) < 0 || int(origin) >= len(d.c.ctx.Nodes) {
		panic(fmt.Sprintf("core: submit origin %d outside cluster of %d nodes", origin, len(d.c.ctx.Nodes)))
	}
	d.c.ctx.Submit(d.c.eng, d.c.ctx.Nodes[origin], txn, d.rng, done)
}

// Drain steps the event loop until every submitted transaction has
// committed. It must not be a plain env.Run(): engines with standing
// timers (calvin's epoch sequencer re-arms every epoch) never let the
// queue go empty, so the loop watches the in-flight count instead.
func (d *Driver) Drain() {
	for d.c.ctx.SubmitsInflight() > 0 {
		if !d.c.env.Step() {
			panic(fmt.Sprintf("core: event queue drained with %d transactions in flight", d.c.ctx.SubmitsInflight()))
		}
	}
}

// Result assembles the serving-mode counters accumulated so far. Duration
// is the virtual time elapsed since the cluster started, so Throughput()
// is simulated-virtual commits/s, not wall-clock commits/s — the server
// reports wall-clock rates itself.
func (d *Driver) Result() *Result {
	c := d.c
	res := &Result{
		Engine:      c.eng.Name(),
		EngineLabel: c.eng.Label(),
		Scheme:      c.ctx.Scheme.Name(),
		Workload:    c.gen.Name(),
		Duration:    c.env.Now(),
		Events:      c.env.Events(),
	}
	for _, n := range c.ctx.Nodes {
		res.Counters.Merge(n.Counters())
		res.Breakdown.Merge(n.Breakdown())
		res.Latency.Merge(n.Latency())
	}
	return res
}

// StateDigest hashes the cluster's full logical database state: every
// node's store partition (tables in id order, rows in key order, fields
// verbatim) plus, when the engine offloaded tuples into the switch, the
// switch register file. Two clusters that executed the same committed
// history — through netsim or through real sockets — must digest
// identically; the sim-vs-server parity test pins exactly that.
func (c *Cluster) StateDigest() string {
	h := sha256.New()
	var scratch [8]byte
	writeU64 := func(v uint64) {
		binary.BigEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}
	for i, n := range c.ctx.Nodes {
		fmt.Fprintf(h, "node %d\n", i)
		st := n.Store()
		for _, tid := range st.TableIDs() {
			tbl := st.Table(tid)
			fmt.Fprintf(h, "table %d %s\n", tid, tbl.Name())
			for _, k := range tbl.Keys() {
				writeU64(uint64(k))
				for _, v := range tbl.GetRow(k) {
					writeU64(uint64(v))
				}
			}
		}
	}
	if c.ctx.UseSwitch {
		h.Write([]byte("switch\n"))
		for _, v := range c.ctx.Sw.Snapshot() {
			writeU64(uint64(v))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
