package core

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestClassifyHotColdWarm(t *testing.T) {
	cfg := smallConfig("p4db")
	gen := ycsbGen(cfg, 50)
	c := NewCluster(cfg, gen)
	defer c.Env().Shutdown()
	ctx := c.EngineContext()
	hotKey := gen.HotCandidates()[0]
	table, field, key := hotKey.SplitField()
	hotOp := workload.Op{Table: table, Key: key, Field: field, Kind: workload.Read, DependsOn: -1}
	coldOp := workload.Op{Table: table, Key: key + 1000000, Field: field, Kind: workload.Read, DependsOn: -1}
	if !c.HotIndex().OnSwitch(hotOp.TupleKey()) {
		t.Skip("first hot candidate not detected (sampling variance)")
	}
	if got := ctx.Classify(&workload.Txn{Ops: []workload.Op{hotOp}}); got != engine.ClassHot {
		t.Fatalf("classify(hot) = %v", got)
	}
	if got := ctx.Classify(&workload.Txn{Ops: []workload.Op{coldOp}}); got != engine.ClassCold {
		t.Fatalf("classify(cold) = %v", got)
	}
	if got := ctx.Classify(&workload.Txn{Ops: []workload.Op{hotOp, coldOp}}); got != engine.ClassWarm {
		t.Fatalf("classify(mixed) = %v", got)
	}
}

func TestGIDsInLogsAreUniqueAcrossNodes(t *testing.T) {
	cfg := smallConfig("p4db")
	cfg.Durable = true // the WAL retains records only on durable runs
	wcfg := workload.YCSBWorkloadA(cfg.Nodes)
	wcfg.HotTxnPct = 100
	wcfg.RowsPerNode = 1 << 20
	c := NewCluster(cfg, workload.NewYCSB(wcfg))
	c.Run(500*sim.Microsecond, 2*sim.Millisecond)
	seen := make(map[uint64]bool)
	completed := 0
	for i := 0; i < cfg.Nodes; i++ {
		for _, rec := range c.Node(i).Log().SwitchRecords() {
			if !rec.HasGID {
				continue
			}
			completed++
			if seen[rec.GID] {
				t.Fatalf("GID %d appears twice across node logs", rec.GID)
			}
			seen[rec.GID] = true
		}
	}
	if completed == 0 {
		t.Fatal("no completed switch records in logs")
	}
}

func TestUnknownEngineNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCluster accepted an unregistered engine name")
		}
	}()
	cfg := smallConfig("no-such-engine")
	NewCluster(cfg, ycsbGen(cfg, 50))
}
