package core

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/txnwire"
	"repro/internal/workload"
)

func TestCrossTemperatureDeps(t *testing.T) {
	hotByKey := func(hotKey uint64) func(workload.Op) bool {
		return func(op workload.Op) bool { return uint64(op.Key) == hotKey }
	}
	// dep within one temperature: fine.
	txn := &workload.Txn{Ops: []workload.Op{
		{Key: 1, DependsOn: -1},
		{Key: 1, DependsOn: 0},
	}}
	if crossTemperatureDeps(txn, hotByKey(1)) {
		t.Fatal("same-temperature dep flagged")
	}
	// hot op depending on cold op: cross.
	txn2 := &workload.Txn{Ops: []workload.Op{
		{Key: 2, DependsOn: -1},
		{Key: 1, DependsOn: 0},
	}}
	if !crossTemperatureDeps(txn2, hotByKey(1)) {
		t.Fatal("cross-temperature dep not flagged")
	}
	// no deps at all: fine regardless of mix.
	txn3 := &workload.Txn{Ops: []workload.Op{
		{Key: 1, DependsOn: -1},
		{Key: 2, DependsOn: -1},
	}}
	if crossTemperatureDeps(txn3, hotByKey(1)) {
		t.Fatal("independent mixed ops flagged")
	}
}

func TestClassifyHotColdWarm(t *testing.T) {
	cfg := smallConfig(P4DB)
	gen := ycsbGen(cfg, 50)
	c := NewCluster(cfg, gen)
	defer c.Env().Shutdown()
	hotKey := gen.HotCandidates()[0]
	table, field, key := hotKey.SplitField()
	hotOp := workload.Op{Table: table, Key: key, Field: field, Kind: workload.Read, DependsOn: -1}
	coldOp := workload.Op{Table: table, Key: key + 1000000, Field: field, Kind: workload.Read, DependsOn: -1}
	if !c.HotIndex().OnSwitch(hotOp.TupleKey()) {
		t.Skip("first hot candidate not detected (sampling variance)")
	}
	if got := c.classify(&workload.Txn{Ops: []workload.Op{hotOp}}); got != classHot {
		t.Fatalf("classify(hot) = %v", got)
	}
	if got := c.classify(&workload.Txn{Ops: []workload.Op{coldOp}}); got != classCold {
		t.Fatalf("classify(cold) = %v", got)
	}
	if got := c.classify(&workload.Txn{Ops: []workload.Op{hotOp, coldOp}}); got != classWarm {
		t.Fatalf("classify(mixed) = %v", got)
	}
}

func TestGIDsInLogsAreUniqueAcrossNodes(t *testing.T) {
	cfg := smallConfig(P4DB)
	wcfg := workload.YCSBWorkloadA(cfg.Nodes)
	wcfg.HotTxnPct = 100
	wcfg.RowsPerNode = 1 << 20
	c := NewCluster(cfg, workload.NewYCSB(wcfg))
	c.Run(500*sim.Microsecond, 2*sim.Millisecond)
	seen := make(map[uint64]bool)
	completed := 0
	for i := 0; i < cfg.Nodes; i++ {
		for _, rec := range c.Node(i).Log().SwitchRecords() {
			if !rec.HasGID {
				continue
			}
			completed++
			if seen[rec.GID] {
				t.Fatalf("GID %d appears twice across node logs", rec.GID)
			}
			seen[rec.GID] = true
		}
	}
	if completed == 0 {
		t.Fatal("no completed switch records in logs")
	}
}

func TestSwitchLocksForMirrorsPisa(t *testing.T) {
	cfg := smallConfig(P4DB)
	gen := ycsbGen(cfg, 50)
	c := NewCluster(cfg, gen)
	defer c.Env().Shutdown()
	// Low-half instruction -> left lock only.
	l, r := c.switchLocksFor(instrsAtStages(0, 2))
	if !l || r {
		t.Fatalf("low half: left=%v right=%v", l, r)
	}
	// High-half instruction -> right lock only.
	l, r = c.switchLocksFor(instrsAtStages(10, 11))
	if l || !r {
		t.Fatalf("high half: left=%v right=%v", l, r)
	}
	// Spanning -> both.
	l, r = c.switchLocksFor(instrsAtStages(0, 11))
	if !l || !r {
		t.Fatalf("span: left=%v right=%v", l, r)
	}
}

func TestSystemStrings(t *testing.T) {
	for _, s := range []System{NoSwitch, P4DB, LMSwitch, Chiller} {
		if s.String() == "" || s.String() == "System(?)" {
			t.Fatalf("system %d has no name", s)
		}
	}
}

// instrsAtStages builds two read instructions at the given stages.
func instrsAtStages(a, b uint8) []txnwire.Instr {
	return []txnwire.Instr{
		{Op: txnwire.OpRead, Stage: a},
		{Op: txnwire.OpRead, Stage: b},
	}
}
