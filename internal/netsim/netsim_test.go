package netsim

import (
	"testing"

	"repro/internal/sim"
)

func lat() Latency {
	return Latency{NodeToSwitch: 1 * sim.Microsecond, NodeToNode: 2 * sim.Microsecond}
}

func TestRPCCostsFullRoundTrip(t *testing.T) {
	e := sim.NewEnv(1)
	n := New(e, 4, lat())
	var done sim.Time
	var handlerAt sim.Time
	e.Spawn("caller", func(p *sim.Proc) {
		n.RPC(p, 0, 1, func() { handlerAt = p.Now() })
		done = p.Now()
	})
	e.Run()
	if handlerAt != 2*sim.Microsecond {
		t.Fatalf("handler ran at %v, want 2µs (one-way)", handlerAt)
	}
	if done != 4*sim.Microsecond {
		t.Fatalf("RPC finished at %v, want 4µs (full RTT)", done)
	}
}

func TestRPCToSwitchIsHalfRTT(t *testing.T) {
	e := sim.NewEnv(1)
	n := New(e, 4, lat())
	var done sim.Time
	e.Spawn("caller", func(p *sim.Proc) {
		n.RPCToSwitch(p, 0, func() {})
		done = p.Now()
	})
	e.Run()
	if done != 2*sim.Microsecond {
		t.Fatalf("switch RPC = %v, want 2µs = half of node RTT", done)
	}
}

func TestLocalRPCIsFree(t *testing.T) {
	e := sim.NewEnv(1)
	n := New(e, 4, lat())
	var done sim.Time
	ran := false
	e.Spawn("caller", func(p *sim.Proc) {
		n.RPC(p, 2, 2, func() { ran = true })
		done = p.Now()
	})
	e.Run()
	if !ran || done != 0 {
		t.Fatalf("local RPC ran=%v at %v, want free", ran, done)
	}
}

func TestSendOneWay(t *testing.T) {
	e := sim.NewEnv(1)
	n := New(e, 2, lat())
	var at sim.Time = -1
	n.Send(0, 1, func() { at = e.Now() })
	e.Run()
	if at != 2*sim.Microsecond {
		t.Fatalf("message arrived at %v, want 2µs", at)
	}
}

func TestSwitchMulticastReachesAllNodesSimultaneously(t *testing.T) {
	e := sim.NewEnv(1)
	n := New(e, 5, lat())
	arrivals := map[NodeID]sim.Time{}
	n.SwitchMulticast(func(id NodeID) { arrivals[id] = e.Now() })
	e.Run()
	if len(arrivals) != 5 {
		t.Fatalf("multicast reached %d nodes, want 5", len(arrivals))
	}
	for id, at := range arrivals {
		if at != 1*sim.Microsecond {
			t.Fatalf("node %d got multicast at %v, want 1µs", id, at)
		}
	}
}

func TestFanoutIsParallel(t *testing.T) {
	e := sim.NewEnv(1)
	n := New(e, 4, lat())
	var done sim.Time
	e.Spawn("coord", func(p *sim.Proc) {
		n.Fanout(p, 0, []NodeID{1, 2, 3}, func(sub *sim.Proc, to NodeID) {
			sub.Sleep(5 * sim.Microsecond) // remote work
		})
		done = p.Now()
	})
	e.Run()
	// Parallel: 2µs out + 5µs work + 2µs back = 9µs, NOT 3*9.
	if done != 9*sim.Microsecond {
		t.Fatalf("fanout took %v, want 9µs (parallel)", done)
	}
}

func TestFanoutEmptyTargets(t *testing.T) {
	e := sim.NewEnv(1)
	n := New(e, 2, lat())
	ok := false
	e.Spawn("coord", func(p *sim.Proc) {
		n.Fanout(p, 0, nil, func(sub *sim.Proc, to NodeID) { t.Error("handler on empty fanout") })
		ok = true
	})
	e.Run()
	if !ok {
		t.Fatal("fanout with no targets never returned")
	}
}

func TestInvalidNodePanics(t *testing.T) {
	e := sim.NewEnv(1)
	n := New(e, 2, lat())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on invalid node id")
		}
	}()
	n.Send(0, 7, func() {})
}

func TestHalfRTTInvariant(t *testing.T) {
	l := DefaultLatency()
	if l.NodeToNode != 2*l.NodeToSwitch {
		t.Fatalf("default latency violates the ½-RTT property: %v vs %v", l.NodeToNode, l.NodeToSwitch)
	}
}

func TestMsgsSentAccounting(t *testing.T) {
	e := sim.NewEnv(1)
	n := New(e, 3, lat())
	e.Spawn("p", func(p *sim.Proc) {
		n.RPC(p, 0, 1, func() {})          // 2 msgs
		n.RPCToSwitch(p, 0, func() {})     // 2 msgs
		n.Send(0, 1, func() {})            // 1 msg
		n.SwitchMulticast(func(NodeID) {}) // 3 msgs
	})
	e.Run()
	if n.MsgsSent != 8 {
		t.Fatalf("MsgsSent = %d, want 8", n.MsgsSent)
	}
}

// BenchmarkBatchedDelivery measures the coalesced one-way delivery path:
// many same-instant messages to one destination drain through a single
// scheduled event, so the per-message cost is one Batcher append rather
// than one event-heap push.
func BenchmarkBatchedDelivery(b *testing.B) {
	e := sim.NewEnv(1)
	n := New(e, 4, lat())
	noop := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Send(0, 1, noop)
	}
	e.Run()
	b.StopTimer()
	if n.MsgsSent != int64(b.N) {
		b.Fatalf("sent %d messages, want %d", n.MsgsSent, b.N)
	}
}

// TestBatchedDeliverySteadyStateZeroAlloc pins the steady-state batched
// send — append to an already-armed destination batch — at zero heap
// allocations. The closure is pre-built: a capturing literal inside the
// measured function would itself allocate and mask a regression.
func TestBatchedDeliverySteadyStateZeroAlloc(t *testing.T) {
	e := sim.NewEnv(1)
	n := New(e, 4, lat())
	noop := func() {}
	// Warm the batcher's backing slices past any growth.
	for i := 0; i < 4096; i++ {
		n.Send(0, 1, noop)
	}
	e.Run()
	if avg := testing.AllocsPerRun(1000, func() {
		n.Send(0, 1, noop) // arms the batch event for this instant
		n.Send(0, 1, noop) // coalesced append
		n.Send(0, 1, noop)
		e.Run()
	}); avg != 0 {
		t.Fatalf("batched delivery allocates %.2f objects/op, want 0", avg)
	}
	if n.Coalesced == 0 {
		t.Fatal("no deliveries were coalesced; batching is not engaged")
	}
}

// TestTargetedMulticastSteadyStateZeroAlloc pins the targeted multicast
// — the switch-commit fan-out path — at zero heap allocations on a
// 256-node network. The target list and the indexed callback are
// pre-built, mirroring the coordinator's pooled multicast frame: each
// SwitchMulticastTo must travel through the per-node batchers without
// per-target closures or event-heap churn.
//
// A multi-target group arms one fresh batch per target (arming draws a
// sequence number, so coalescing a later group into an earlier target's
// batch would reorder deliveries — see Batcher's order-isomorphism
// contract); coalescing engages on repeated same-instant multicasts to
// the same target, the shape many single-participant hot-node commits
// produce. The test pins both shapes at zero allocations and asserts
// the second actually coalesces.
func TestTargetedMulticastSteadyStateZeroAlloc(t *testing.T) {
	e := sim.NewEnv(1)
	n := New(e, 256, lat())
	group := []NodeID{3, 17, 64, 200, 255}
	hot := []NodeID{128}
	noop := func(int) {}
	// Warm the batchers and the event heap past any growth.
	for i := 0; i < 4096; i++ {
		n.SwitchMulticastTo(group, noop)
		n.SwitchMulticastTo(hot, noop)
	}
	e.Run()
	before := n.Coalesced
	if avg := testing.AllocsPerRun(1000, func() {
		n.SwitchMulticastTo(group, noop) // arms one batch per target
		n.SwitchMulticastTo(hot, noop)   // arms node 128's batch
		n.SwitchMulticastTo(hot, noop)   // coalesced append
		n.SwitchMulticastTo(hot, noop)
		e.Run()
	}); avg != 0 {
		t.Fatalf("targeted multicast allocates %.2f objects/op, want 0", avg)
	}
	if n.Coalesced <= before {
		t.Fatal("no deliveries were coalesced; batching is not engaged")
	}
}

// TestBatchingPreservesDeliveryOrder drives a seeded random mix of sends
// (varying source, destination and same-instant bursts) through the
// network twice — coalescing on and off — and asserts the messages are
// delivered in exactly the same order at exactly the same virtual times.
// Batching may only merge scheduled events, never reorder deliveries.
func TestBatchingPreservesDeliveryOrder(t *testing.T) {
	type delivery struct {
		at sim.Time
		id int
	}
	run := func(coalesce bool) ([]delivery, int64) {
		e := sim.NewEnv(99)
		n := New(e, 4, lat())
		n.SetCoalescing(coalesce)
		var got []delivery
		rng := sim.NewRNG(7)
		id := 0
		for burst := 0; burst < 200; burst++ {
			k := 1 + rng.Intn(5) // same-instant burst to mixed destinations
			for i := 0; i < k; i++ {
				from := NodeID(rng.Intn(4))
				to := NodeID(rng.Intn(4))
				mid := id
				id++
				if rng.Intn(4) == 0 {
					n.SendToSwitch(from, func() {
						got = append(got, delivery{e.Now(), mid})
					})
				} else {
					n.Send(from, to, func() {
						got = append(got, delivery{e.Now(), mid})
					})
				}
			}
			e.Run() // drain this instant's deliveries before the next burst
		}
		return got, n.Coalesced
	}
	batched, coalesced := run(true)
	unbatched, zero := run(false)
	if coalesced == 0 {
		t.Fatal("batched run coalesced nothing; the test exercises no batching")
	}
	if zero != 0 {
		t.Fatalf("unbatched run reports %d coalesced deliveries", zero)
	}
	if len(batched) != len(unbatched) {
		t.Fatalf("delivered %d messages batched vs %d unbatched", len(batched), len(unbatched))
	}
	for i := range batched {
		if batched[i] != unbatched[i] {
			t.Fatalf("delivery %d diverges: batched (t=%d id=%d) vs unbatched (t=%d id=%d)",
				i, batched[i].at, batched[i].id, unbatched[i].at, unbatched[i].id)
		}
	}
}
