package netsim

import (
	"testing"

	"repro/internal/sim"
)

func lat() Latency {
	return Latency{NodeToSwitch: 1 * sim.Microsecond, NodeToNode: 2 * sim.Microsecond}
}

func TestRPCCostsFullRoundTrip(t *testing.T) {
	e := sim.NewEnv(1)
	n := New(e, 4, lat())
	var done sim.Time
	var handlerAt sim.Time
	e.Spawn("caller", func(p *sim.Proc) {
		n.RPC(p, 0, 1, func() { handlerAt = p.Now() })
		done = p.Now()
	})
	e.Run()
	if handlerAt != 2*sim.Microsecond {
		t.Fatalf("handler ran at %v, want 2µs (one-way)", handlerAt)
	}
	if done != 4*sim.Microsecond {
		t.Fatalf("RPC finished at %v, want 4µs (full RTT)", done)
	}
}

func TestRPCToSwitchIsHalfRTT(t *testing.T) {
	e := sim.NewEnv(1)
	n := New(e, 4, lat())
	var done sim.Time
	e.Spawn("caller", func(p *sim.Proc) {
		n.RPCToSwitch(p, 0, func() {})
		done = p.Now()
	})
	e.Run()
	if done != 2*sim.Microsecond {
		t.Fatalf("switch RPC = %v, want 2µs = half of node RTT", done)
	}
}

func TestLocalRPCIsFree(t *testing.T) {
	e := sim.NewEnv(1)
	n := New(e, 4, lat())
	var done sim.Time
	ran := false
	e.Spawn("caller", func(p *sim.Proc) {
		n.RPC(p, 2, 2, func() { ran = true })
		done = p.Now()
	})
	e.Run()
	if !ran || done != 0 {
		t.Fatalf("local RPC ran=%v at %v, want free", ran, done)
	}
}

func TestSendOneWay(t *testing.T) {
	e := sim.NewEnv(1)
	n := New(e, 2, lat())
	var at sim.Time = -1
	n.Send(0, 1, func() { at = e.Now() })
	e.Run()
	if at != 2*sim.Microsecond {
		t.Fatalf("message arrived at %v, want 2µs", at)
	}
}

func TestSwitchMulticastReachesAllNodesSimultaneously(t *testing.T) {
	e := sim.NewEnv(1)
	n := New(e, 5, lat())
	arrivals := map[NodeID]sim.Time{}
	n.SwitchMulticast(func(id NodeID) { arrivals[id] = e.Now() })
	e.Run()
	if len(arrivals) != 5 {
		t.Fatalf("multicast reached %d nodes, want 5", len(arrivals))
	}
	for id, at := range arrivals {
		if at != 1*sim.Microsecond {
			t.Fatalf("node %d got multicast at %v, want 1µs", id, at)
		}
	}
}

func TestFanoutIsParallel(t *testing.T) {
	e := sim.NewEnv(1)
	n := New(e, 4, lat())
	var done sim.Time
	e.Spawn("coord", func(p *sim.Proc) {
		n.Fanout(p, 0, []NodeID{1, 2, 3}, func(sub *sim.Proc, to NodeID) {
			sub.Sleep(5 * sim.Microsecond) // remote work
		})
		done = p.Now()
	})
	e.Run()
	// Parallel: 2µs out + 5µs work + 2µs back = 9µs, NOT 3*9.
	if done != 9*sim.Microsecond {
		t.Fatalf("fanout took %v, want 9µs (parallel)", done)
	}
}

func TestFanoutEmptyTargets(t *testing.T) {
	e := sim.NewEnv(1)
	n := New(e, 2, lat())
	ok := false
	e.Spawn("coord", func(p *sim.Proc) {
		n.Fanout(p, 0, nil, func(sub *sim.Proc, to NodeID) { t.Error("handler on empty fanout") })
		ok = true
	})
	e.Run()
	if !ok {
		t.Fatal("fanout with no targets never returned")
	}
}

func TestInvalidNodePanics(t *testing.T) {
	e := sim.NewEnv(1)
	n := New(e, 2, lat())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on invalid node id")
		}
	}()
	n.Send(0, 7, func() {})
}

func TestHalfRTTInvariant(t *testing.T) {
	l := DefaultLatency()
	if l.NodeToNode != 2*l.NodeToSwitch {
		t.Fatalf("default latency violates the ½-RTT property: %v vs %v", l.NodeToNode, l.NodeToSwitch)
	}
}

func TestMsgsSentAccounting(t *testing.T) {
	e := sim.NewEnv(1)
	n := New(e, 3, lat())
	e.Spawn("p", func(p *sim.Proc) {
		n.RPC(p, 0, 1, func() {})          // 2 msgs
		n.RPCToSwitch(p, 0, func() {})     // 2 msgs
		n.Send(0, 1, func() {})            // 1 msg
		n.SwitchMulticast(func(NodeID) {}) // 3 msgs
	})
	e.Run()
	if n.MsgsSent != 8 {
		t.Fatalf("MsgsSent = %d, want 8", n.MsgsSent)
	}
}
