// Package netsim models the rack network of the P4DB deployment: N
// database nodes all attached to one top-of-rack programmable switch.
//
// The key property from the paper is that the switch sits on the path
// between any two nodes, so a node reaches the switch in half the one-way
// latency it needs to reach another node. All latencies are virtual times
// on the discrete-event simulator's clock.
package netsim

import (
	"fmt"

	"repro/internal/sim"
)

// NodeID identifies a database node (0-based). The switch is not a NodeID;
// it is addressed by the dedicated *ToSwitch helpers.
type NodeID int

// Latency describes the one-way delays of the rack fabric. A node-to-node
// message traverses two links (node→switch→node); a node-to-switch message
// traverses one, which is the paper's "½ RTT" advantage for in-switch
// transactions.
type Latency struct {
	// NodeToSwitch is the one-way delay from a node's NIC to the switch
	// pipeline ingress (includes NIC + DPDK processing).
	NodeToSwitch sim.Time
	// NodeToNode is the one-way delay between two distinct nodes. For a
	// single-switch rack this is 2*NodeToSwitch plus switch forwarding.
	NodeToNode sim.Time
}

// DefaultLatency mirrors the paper's 10G/DPDK testbed at a small scale:
// reaching the switch costs half of reaching a peer node.
func DefaultLatency() Latency {
	return Latency{
		NodeToSwitch: 4 * sim.Microsecond,
		NodeToNode:   8 * sim.Microsecond,
	}
}

// Network is the rack fabric: the set of nodes plus latency parameters.
type Network struct {
	env      *sim.Env
	numNodes int
	lat      Latency

	// MsgsSent counts one-way messages for diagnostics. Every logical
	// message is counted whether or not its delivery was coalesced.
	MsgsSent int64
	// Coalesced counts one-way deliveries that shared a scheduled event
	// with an earlier same-instant message to the same destination.
	Coalesced int64

	// coalesce enables batched delivery: one-way messages to the same
	// destination arriving at the same instant drain through a single
	// scheduled event (sim.Batcher). Execution order is provably identical
	// either way; only the raw executed-event count differs.
	coalesce bool
	nodeB    []*sim.Batcher // one per destination node
	swB      *sim.Batcher   // the switch control point
}

// New creates a network of numNodes nodes attached to one switch.
func New(env *sim.Env, numNodes int, lat Latency) *Network {
	if numNodes <= 0 {
		panic("netsim: numNodes must be positive")
	}
	n := &Network{env: env, numNodes: numNodes, lat: lat, coalesce: true}
	n.nodeB = make([]*sim.Batcher, numNodes)
	for i := range n.nodeB {
		n.nodeB[i] = sim.NewBatcher(env)
	}
	n.swB = sim.NewBatcher(env)
	return n
}

// SetCoalescing toggles batched one-way delivery (on by default). The
// determinism tests run seeded workloads both ways and assert identical
// results.
func (n *Network) SetCoalescing(on bool) { n.coalesce = on }

// NumNodes returns the number of database nodes.
func (n *Network) NumNodes() int { return n.numNodes }

// Env returns the simulation environment the network schedules on.
func (n *Network) Env() *sim.Env { return n.env }

// Latency returns the fabric's latency parameters.
func (n *Network) Latency() Latency { return n.lat }

// check panics on an invalid node id; topology bugs should fail loudly.
func (n *Network) check(id NodeID) {
	if id < 0 || int(id) >= n.numNodes {
		panic(fmt.Sprintf("netsim: invalid node id %d (nodes=%d)", id, n.numNodes))
	}
}

// oneWay returns the one-way latency between two nodes (zero if the same
// node: loopback is modelled as free next to µs-scale fabric latencies).
func (n *Network) oneWay(from, to NodeID) sim.Time {
	if from == to {
		return 0
	}
	return n.lat.NodeToNode
}

// RPC performs a synchronous round trip from one node to another: the
// calling process sleeps the request latency, runs handler (which executes
// "at" the remote node and may itself block, e.g. on remote locks), then
// sleeps the response latency. Same-node RPCs skip the fabric entirely.
//
// Because the handler runs in the caller's goroutine, the caller is woken
// twice (arrival and reply). When the handler does not block, RPCEvent
// delivers the same round trip with one wake-up and the handler as a
// callback.
func (n *Network) RPC(p *sim.Proc, from, to NodeID, handler func()) {
	n.check(from)
	n.check(to)
	d := n.oneWay(from, to)
	if d > 0 {
		n.MsgsSent += 2
		p.Sleep(d)
		handler()
		p.Sleep(d)
		return
	}
	handler()
}

// RPCEvent performs a synchronous round trip whose handler is a
// non-blocking callback: the handler runs at the destination as a
// scheduler event (no goroutine, no context switch) and the reply resumes
// the parked caller directly. Virtual timing and event ordering are
// identical to RPC; the handler must not block. Same-node calls run the
// handler inline.
func (n *Network) RPCEvent(p *sim.Proc, from, to NodeID, handler func()) {
	n.check(from)
	n.check(to)
	d := n.oneWay(from, to)
	if d == 0 {
		handler()
		return
	}
	n.MsgsSent += 2
	env := n.env
	env.After(d, func() {
		handler()
		env.Resume(d, p)
	})
	p.Park()
}

// AsyncRPC dispatches handler "at" the destination without blocking the
// caller: the request travels as a callback event, a process is resumed at
// the destination only when the request arrives (handlers may block, e.g.
// on remote locks), and done runs back at the caller's side as a callback
// when the reply lands. Compared to spawning a courier process that sleeps
// both legs, this removes two goroutine wake-ups per message. Same-node
// dispatch skips the fabric: the handler process starts at the current
// instant and done runs as soon as it finishes.
func (n *Network) AsyncRPC(name string, from, to NodeID, handler func(sub *sim.Proc), done func()) {
	n.check(from)
	n.check(to)
	d := n.oneWay(from, to)
	env := n.env
	if d == 0 {
		env.Spawn(name, func(sub *sim.Proc) {
			handler(sub)
			done()
		})
		return
	}
	n.MsgsSent += 2
	env.SpawnAfter(d, name, func(sub *sim.Proc) {
		handler(sub)
		env.After(d, done)
	})
}

// AsyncRPCEvent is AsyncRPC for non-blocking handlers: both legs and the
// handler itself are callback events, so a full round trip costs zero
// goroutine switches. The handler executes at the destination after the
// one-way latency; done runs at the caller's side one further one-way
// latency later. Same-node dispatch runs handler and done at the current
// instant (after already-queued same-instant events).
func (n *Network) AsyncRPCEvent(from, to NodeID, handler func(), done func()) {
	n.check(from)
	n.check(to)
	d := n.oneWay(from, to)
	env := n.env
	if d == 0 {
		env.After(0, func() {
			handler()
			done()
		})
		return
	}
	n.MsgsSent += 2
	// The zero-delay egress hop models the packet leaving the local NIC at
	// the current instant; it also keeps event-sequence draws aligned with
	// the process-based delivery this replaces, preserving seeded schedules.
	env.After(0, func() {
		env.After(d, func() {
			handler()
			env.After(d, done)
		})
	})
}

// RPCToSwitch performs a synchronous round trip from a node to the switch:
// half the node-to-node one-way cost in each direction.
func (n *Network) RPCToSwitch(p *sim.Proc, from NodeID, handler func()) {
	n.check(from)
	n.MsgsSent += 2
	p.Sleep(n.lat.NodeToSwitch)
	handler()
	p.Sleep(n.lat.NodeToSwitch)
}

// Send delivers a one-way message: fn runs at the destination after the
// fabric latency. The sender does not wait. Same-instant sends to one
// destination coalesce into a single delivery event when batching is on.
func (n *Network) Send(from, to NodeID, fn func()) {
	n.check(from)
	n.check(to)
	n.MsgsSent++
	if n.coalesce {
		if n.nodeB[to].Do(n.oneWay(from, to), fn) {
			n.Coalesced++
		}
		return
	}
	n.env.After(n.oneWay(from, to), fn)
}

// SendToSwitch delivers a one-way message from a node to the switch
// control point (used e.g. for asynchronous lock releases to an in-switch
// lock manager). The sender does not wait.
func (n *Network) SendToSwitch(from NodeID, fn func()) {
	n.check(from)
	n.MsgsSent++
	if n.coalesce {
		if n.swB.Do(n.lat.NodeToSwitch, fn) {
			n.Coalesced++
		}
		return
	}
	n.env.After(n.lat.NodeToSwitch, fn)
}

// SwitchMulticast delivers fn(node) at every node after the switch-to-node
// latency, modelling the switch's hardware multicast used for the combined
// Decision&Switch phase of warm-transaction 2PC (Figure 10). All replicas
// arrive at the same virtual instant because the switch replicates in the
// data plane.
func (n *Network) SwitchMulticast(fn func(NodeID)) {
	for i := 0; i < n.numNodes; i++ {
		id := NodeID(i)
		n.MsgsSent++
		if n.coalesce {
			if n.nodeB[id].Do(n.lat.NodeToSwitch, func() { fn(id) }) {
				n.Coalesced++
			}
			continue
		}
		n.env.After(n.lat.NodeToSwitch, func() { fn(id) })
	}
}

// SwitchMulticastTo is the targeted form of SwitchMulticast: fn(node) is
// delivered only at the listed nodes — the multicast group programmed for
// this transaction — after the switch-to-node latency. Replicas still share
// one virtual arrival instant; nodes outside the group receive nothing, so
// the cost of a switch commit scales with the transaction's participant
// count, not the cluster size. The callback takes the node id as a plain
// int so a caller's pooled method value can travel through the per-node
// batchers without a per-destination closure allocation. nodes must be
// valid ids; duplicates would deliver twice.
func (n *Network) SwitchMulticastTo(nodes []NodeID, fn func(id int)) {
	for _, id := range nodes {
		n.check(id)
		n.MsgsSent++
		if n.coalesce {
			if n.nodeB[id].DoIndexed(n.lat.NodeToSwitch, fn, int(id)) {
				n.Coalesced++
			}
			continue
		}
		id := id
		n.env.After(n.lat.NodeToSwitch, func() { fn(int(id)) })
	}
}

// Fanout runs handler(i) concurrently "at" each target node and blocks the
// caller until all have completed, modelling a parallel RPC fan-out such as
// the 2PC prepare round. Handlers may block (e.g. waiting on locks); the
// request and reply legs travel as callback events (see AsyncRPC), so each
// leg costs one handler wake-up instead of three.
func (n *Network) Fanout(p *sim.Proc, from NodeID, targets []NodeID, handler func(sub *sim.Proc, to NodeID)) {
	n.check(from)
	if len(targets) == 0 {
		return
	}
	wg := n.env.NewWaitGroup(len(targets))
	for _, to := range targets {
		to := to
		n.AsyncRPC(fmt.Sprintf("rpc-%d-%d", from, to), from, to,
			func(sub *sim.Proc) { handler(sub, to) }, wg.Done)
	}
	p.Wait(wg)
}

// Continuation (CPS) forms of the round-trip primitives. Each *K method
// schedules the exact same sequence of events, at the same points of the
// run, as the process-based primitive it mirrors, so a flow converted from
// one style to the other reproduces a seeded schedule bit-for-bit. The
// handler receives a done callback it must invoke (possibly after further
// waits) when the remote work completes; k runs back at the caller once the
// reply has landed.

// RPCK is the continuation form of RPC: handler runs "at" the destination
// after the request latency and may complete asynchronously via done; k runs
// at the caller after the response latency. Same-node calls run handler —
// and then k — inline.
func (n *Network) RPCK(from, to NodeID, handler func(done func()), k func()) {
	n.check(from)
	n.check(to)
	d := n.oneWay(from, to)
	if d == 0 {
		handler(k)
		return
	}
	n.MsgsSent += 2
	env := n.env
	env.After(d, func() {
		handler(func() { env.After(d, k) })
	})
}

// RPCEventK is the continuation form of RPCEvent: a round trip whose handler
// is non-blocking, so no done callback is needed. Same-node calls run the
// handler and k inline.
func (n *Network) RPCEventK(from, to NodeID, handler func(), k func()) {
	n.check(from)
	n.check(to)
	d := n.oneWay(from, to)
	if d == 0 {
		handler()
		k()
		return
	}
	n.MsgsSent += 2
	env := n.env
	env.After(d, func() {
		handler()
		env.After(d, k)
	})
}

// AsyncRPCK is the continuation form of AsyncRPC: the caller is never
// blocked, handler runs at the destination after the request latency (it may
// complete asynchronously via its done argument), and done runs back at the
// caller one response latency after the handler completes. The zero-delay
// egress hop on the remote path mirrors SpawnAfter's two-hop scheduling so
// event-sequence draws line up with the process form.
func (n *Network) AsyncRPCK(from, to NodeID, handler func(done func()), done func()) {
	n.check(from)
	n.check(to)
	d := n.oneWay(from, to)
	env := n.env
	if d == 0 {
		env.After(0, func() { handler(done) })
		return
	}
	n.MsgsSent += 2
	env.After(0, func() {
		env.After(d, func() {
			handler(func() { env.After(d, done) })
		})
	})
}

// RPCToSwitchK is the continuation form of RPCToSwitch: half the
// node-to-node one-way cost in each direction, with the switch-side handler
// completing via done (switch execution itself is a callback chain).
func (n *Network) RPCToSwitchK(from NodeID, handler func(done func()), k func()) {
	n.check(from)
	n.MsgsSent += 2
	s := n.lat.NodeToSwitch
	env := n.env
	env.After(s, func() {
		handler(func() { env.After(s, k) })
	})
}

// FanoutK is the continuation form of Fanout: handler(to, done) is
// dispatched to every target (see AsyncRPCK) and k runs at the caller once
// every handler's reply has landed. With no targets k runs inline.
func (n *Network) FanoutK(from NodeID, targets []NodeID, handler func(to NodeID, done func()), k func()) {
	n.check(from)
	if len(targets) == 0 {
		k()
		return
	}
	wg := n.env.NewWaitGroup(len(targets))
	for _, to := range targets {
		to := to
		n.AsyncRPCK(from, to, func(done func()) { handler(to, done) }, wg.Done)
	}
	wg.Subscribe(k)
}
