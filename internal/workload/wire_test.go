package workload

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/txnwire"
)

// TestTxnWireRoundTrip: every registered workload's generated transactions
// survive the wire conversion with every execution-relevant field intact
// (Label is deliberately dropped).
func TestTxnWireRoundTrip(t *testing.T) {
	const nodes = 4
	for _, name := range Names() {
		gen, err := ByName(name, nodes)
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRNG(99)
		var req txnwire.TxnRequest
		var back Txn
		for i := 0; i < 200; i++ {
			origin := i % nodes
			txn := gen.Next(rng, netsim.NodeID(origin))
			if err := TxnToRequest(txn, uint64(i), netsim.NodeID(origin), &req); err != nil {
				t.Fatalf("%s txn %d: %v", name, i, err)
			}
			if req.Origin != uint8(origin) || req.Pkt.Header.TxnID != uint64(i) {
				t.Fatalf("%s txn %d: envelope header mismatch", name, i)
			}
			if err := TxnFromRequest(&req, &back); err != nil {
				t.Fatalf("%s txn %d decode: %v", name, i, err)
			}
			want := *txn
			want.Label = "wire"
			if !reflect.DeepEqual(&want, &back) {
				t.Fatalf("%s txn %d round trip mismatch:\n in: %+v\nout: %+v", name, i, txn, &back)
			}
		}
	}
}

// TestTxnWireRoundTripZeroAlloc: converting through pooled structs must
// not allocate at steady state.
func TestTxnWireRoundTripZeroAlloc(t *testing.T) {
	gen, err := ByName("smallbank", 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(5)
	txn := gen.Next(rng, 0)
	var req txnwire.TxnRequest
	var back Txn
	for i := 0; i < 4; i++ { // prime slice growth
		if err := TxnToRequest(txn, 1, 0, &req); err != nil {
			t.Fatal(err)
		}
		if err := TxnFromRequest(&req, &back); err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(1000, func() {
		if err := TxnToRequest(txn, 1, 0, &req); err != nil {
			t.Fatal(err)
		}
		if err := TxnFromRequest(&req, &back); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("wire conversion allocates %v times per round trip, want 0", n)
	}
}

// TestTxnWireValidation: out-of-range fields are rejected in both
// directions instead of corrupting addresses.
func TestTxnWireValidation(t *testing.T) {
	var req txnwire.TxnRequest
	base := &Txn{Ops: []Op{{Kind: Read, Key: 1, DependsOn: -1}}}
	if err := TxnToRequest(base, 1, 300, &req); !errors.Is(err, ErrWireBadOrigin) {
		t.Fatalf("origin 300: %v", err)
	}
	big := &Txn{Ops: []Op{{Kind: Read, Key: maxWireKey + 1, DependsOn: -1}}}
	if err := TxnToRequest(big, 1, 0, &req); !errors.Is(err, ErrWireBadKey) {
		t.Fatalf("53-bit key: %v", err)
	}
	field := &Txn{Ops: []Op{{Kind: Read, Field: 16, DependsOn: -1}}}
	if err := TxnToRequest(field, 1, 0, &req); !errors.Is(err, ErrWireBadField) {
		t.Fatalf("field 16: %v", err)
	}
	fwd := &Txn{Ops: []Op{{Kind: Read, DependsOn: 0}}}
	if err := TxnToRequest(fwd, 1, 0, &req); !errors.Is(err, ErrWireBadDep) {
		t.Fatalf("self-dependency: %v", err)
	}

	// Decode side: a forward dependency crafted on the wire is rejected.
	ok := &Txn{Ops: []Op{{Kind: Read, Key: 1, DependsOn: -1}, {Kind: Add, Key: 2, DependsOn: 0}}}
	if err := TxnToRequest(ok, 1, 0, &req); err != nil {
		t.Fatal(err)
	}
	var back Txn
	req.Ext[0].Dep = 5
	if err := TxnFromRequest(&req, &back); !errors.Is(err, ErrWireBadDep) {
		t.Fatalf("forward dep: %v", err)
	}
	req.Ext[0].Dep = txnwire.DepNone
	req.Pkt.Instrs[0].Op = txnwire.OpMax
	if err := TxnFromRequest(&req, &back); !errors.Is(err, ErrWireBadKind) {
		t.Fatalf("OpMax: %v", err)
	}
}

// TestWorkloadRegistry: names resolve, configs match the matrix axis, and
// unknown names fail with the registered list.
func TestWorkloadRegistry(t *testing.T) {
	want := []string{"smallbank", "tpcc", "ycsb-a", "ycsb-b", "ycsb-c", "ycsb-drift", "ycsb-flash"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for _, name := range want {
		gen, err := ByName(name, 4)
		if err != nil {
			t.Fatal(err)
		}
		if gen.Nodes() != 4 {
			t.Fatalf("%s: nodes = %d", name, gen.Nodes())
		}
	}
	if _, err := ByName("nope", 4); err == nil {
		t.Fatal("unknown workload must error")
	}
}
