package workload

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/store"
)

// checkHomes asserts the invariant every generator must uphold: each op's
// Home matches the generator's partitioning function.
func checkHomes(t *testing.T, g Generator, txns []*Txn) {
	t.Helper()
	for _, txn := range txns {
		for _, op := range txn.Ops {
			if op.Table == TPCCItem {
				continue // replicated read-only catalog: every node reads its own copy
			}
			if got := g.Home(op.Table, op.Key); got != op.Home {
				t.Fatalf("%s: op %v claims home %d, partitioner says %d", g.Name(), op, op.Home, got)
			}
		}
	}
}

func genMany(g Generator, n int, seed uint64) []*Txn {
	rng := sim.NewRNG(seed)
	out := make([]*Txn, n)
	for i := range out {
		out[i] = g.Next(rng, netsim.NodeID(i%g.Nodes()))
	}
	return out
}

func TestYCSBOpsPerTxnAndDistinctKeys(t *testing.T) {
	g := NewYCSB(YCSBWorkloadA(4))
	for _, txn := range genMany(g, 200, 1) {
		if len(txn.Ops) != 8 {
			t.Fatalf("ops = %d, want 8", len(txn.Ops))
		}
		seen := map[store.Key]bool{}
		for _, op := range txn.Ops {
			if seen[op.Key] {
				t.Fatal("duplicate key within a txn")
			}
			seen[op.Key] = true
		}
	}
}

func TestYCSBHomes(t *testing.T) {
	g := NewYCSB(YCSBWorkloadA(4))
	checkHomes(t, g, genMany(g, 300, 2))
}

func TestYCSBLocalTxnsStayLocal(t *testing.T) {
	cfg := YCSBWorkloadA(4)
	cfg.DistPct = 0
	g := NewYCSB(cfg)
	rng := sim.NewRNG(3)
	for i := 0; i < 100; i++ {
		txn := g.Next(rng, 2)
		if txn.Distributed(2) {
			t.Fatal("DistPct=0 produced a distributed txn")
		}
	}
}

func TestYCSBHotTxnsUseHotKeys(t *testing.T) {
	cfg := YCSBWorkloadA(2)
	cfg.HotTxnPct = 100
	g := NewYCSB(cfg)
	hot := map[store.GlobalKey]bool{}
	for _, k := range g.HotCandidates() {
		hot[k] = true
	}
	if len(hot) != 2*50 {
		t.Fatalf("hot candidates = %d, want 100", len(hot))
	}
	rng := sim.NewRNG(4)
	for i := 0; i < 100; i++ {
		for _, op := range g.Next(rng, 0).Ops {
			if !hot[op.TupleKey()] {
				t.Fatalf("hot txn touched cold key %v", op.Key)
			}
		}
	}
}

func TestYCSBWriteRatios(t *testing.T) {
	for _, tc := range []struct {
		cfg  YCSBConfig
		name string
		want int
	}{
		{YCSBWorkloadA(2), "YCSB-A", 50},
		{YCSBWorkloadB(2), "YCSB-B", 5},
		{YCSBWorkloadC(2), "YCSB-C", 0},
	} {
		g := NewYCSB(tc.cfg)
		if g.Name() != tc.name {
			t.Fatalf("Name = %q, want %q", g.Name(), tc.name)
		}
		writes, total := 0, 0
		rng := sim.NewRNG(5)
		for i := 0; i < 500; i++ {
			for _, op := range g.Next(rng, 0).Ops {
				total++
				if op.Kind.IsWrite() {
					writes++
				}
			}
		}
		got := writes * 100 / total
		if got < tc.want-5 || got > tc.want+5 {
			t.Fatalf("%s: write pct = %d, want ~%d", tc.name, got, tc.want)
		}
	}
}

func TestYCSBColdKeysAvoidHotRange(t *testing.T) {
	cfg := YCSBWorkloadA(2)
	cfg.HotTxnPct = 0
	g := NewYCSB(cfg)
	rng := sim.NewRNG(6)
	for i := 0; i < 100; i++ {
		for _, op := range g.Next(rng, 0).Ops {
			off := int64(op.Key) % cfg.RowsPerNode
			if off < int64(cfg.HotPerNode) {
				t.Fatal("cold txn touched the hot range")
			}
		}
	}
}

func TestSmallBankPopulateBalances(t *testing.T) {
	cfg := DefaultSmallBank(2, 5)
	cfg.AccountsPerNode = 100
	g := NewSmallBank(cfg)
	stores := []*store.Store{store.New(), store.New()}
	g.Populate(stores)
	if got := stores[1].Table(SBChecking).Get(150, 0); got != cfg.InitialBalance {
		t.Fatalf("balance = %d, want %d", got, cfg.InitialBalance)
	}
	if stores[0].Table(SBSavings).Rows() != 100 {
		t.Fatalf("rows = %d", stores[0].Table(SBSavings).Rows())
	}
}

func TestSmallBankHomes(t *testing.T) {
	g := NewSmallBank(DefaultSmallBank(4, 10))
	checkHomes(t, g, genMany(g, 500, 7))
}

func TestSmallBankMixHasAllTypes(t *testing.T) {
	g := NewSmallBank(DefaultSmallBank(2, 5))
	labels := map[string]int{}
	for _, txn := range genMany(g, 2000, 8) {
		labels[txn.Label]++
	}
	for _, want := range []string{"Balance", "DepositChecking", "TransactSavings", "Amalgamate", "WriteCheck", "SendPayment"} {
		if labels[want] == 0 {
			t.Fatalf("type %s never generated (mix: %v)", want, labels)
		}
	}
	// Balance is the paper's 15% read share.
	bal := labels["Balance"] * 100 / 2000
	if bal < 10 || bal > 20 {
		t.Fatalf("Balance share = %d%%, want ~15%%", bal)
	}
}

func TestSmallBankDependenciesDeclared(t *testing.T) {
	g := NewSmallBank(DefaultSmallBank(2, 5))
	for _, txn := range genMany(g, 500, 9) {
		switch txn.Label {
		case "Amalgamate":
			if txn.Ops[2].Kind != AddAcc || txn.Ops[2].DependsOn != 1 || txn.Ops[1].DependsOn != 0 {
				t.Fatalf("Amalgamate deps wrong: %+v", txn.Ops)
			}
		case "SendPayment":
			if txn.Ops[1].Kind != AddIfOK || txn.Ops[1].DependsOn != 0 {
				t.Fatalf("SendPayment deps wrong: %+v", txn.Ops)
			}
		}
	}
}

// TestSmallBankMoneyConservation: Amalgamate and SendPayment move money
// without creating or destroying it, under the shared Executor semantics.
func TestSmallBankMoneyConservation(t *testing.T) {
	cfg := DefaultSmallBank(1, 5)
	cfg.AccountsPerNode = 50
	cfg.DistPct = 0
	g := NewSmallBank(cfg)
	st := store.New()
	g.Populate([]*store.Store{st})
	total := func() int64 {
		var sum int64
		for _, tb := range []store.TableID{SBChecking, SBSavings} {
			for _, k := range st.Table(tb).Keys() {
				sum += st.Table(tb).Get(k, 0)
			}
		}
		return sum
	}
	want := total()
	rng := sim.NewRNG(11)
	applied := 0
	for applied < 300 {
		txn := g.Next(rng, 0)
		if txn.Label != "Amalgamate" && txn.Label != "SendPayment" {
			continue
		}
		ex := NewExecutor()
		for _, op := range txn.Ops {
			ex.Apply(st.Table(op.Table), op)
		}
		applied++
	}
	if got := total(); got != want {
		t.Fatalf("money not conserved: %d -> %d", want, got)
	}
}

func TestExecutorCondAddGE0BlocksOverdraft(t *testing.T) {
	st := store.New()
	tb := st.CreateTable(0, "t", 1)
	tb.Set(1, 0, 10)
	ex := NewExecutor()
	res := ex.Apply(tb, Op{Table: 0, Key: 1, Kind: CondAddGE0, Value: -15})
	if res.OK || tb.Get(1, 0) != 10 || ex.OK {
		t.Fatalf("overdraft applied: res=%+v bal=%d ok=%v", res, tb.Get(1, 0), ex.OK)
	}
	// Chained AddIfOK must now be a no-op.
	res2 := ex.Apply(tb, Op{Table: 0, Key: 2, Kind: AddIfOK, Value: 15})
	if res2.OK || tb.Get(2, 0) != 0 {
		t.Fatal("AddIfOK applied after failed constraint")
	}
}

func TestExecutorReadClearAccumulates(t *testing.T) {
	st := store.New()
	tb := st.CreateTable(0, "t", 1)
	tb.Set(1, 0, 30)
	tb.Set(2, 0, 12)
	ex := NewExecutor()
	ex.Apply(tb, Op{Key: 1, Kind: ReadClear})
	ex.Apply(tb, Op{Key: 2, Kind: ReadClear})
	ex.Apply(tb, Op{Key: 3, Kind: AddAcc})
	if tb.Get(1, 0) != 0 || tb.Get(2, 0) != 0 || tb.Get(3, 0) != 42 {
		t.Fatalf("amalgamate semantics wrong: %d %d %d", tb.Get(1, 0), tb.Get(2, 0), tb.Get(3, 0))
	}
}

func TestTPCCHomes(t *testing.T) {
	g := NewTPCC(DefaultTPCC(4, 8))
	checkHomes(t, g, genMany(g, 300, 12))
}

func TestTPCCPaymentShape(t *testing.T) {
	g := NewTPCC(DefaultTPCC(2, 8))
	rng := sim.NewRNG(13)
	for i := 0; i < 200; i++ {
		txn := g.Next(rng, 0)
		if txn.Label != "Payment" {
			continue
		}
		if len(txn.Ops) != 5 {
			t.Fatalf("Payment ops = %d, want 5", len(txn.Ops))
		}
		if txn.Ops[0].Table != TPCCWarehouse || txn.Ops[1].Table != TPCCDistrict {
			t.Fatalf("Payment op order wrong: %+v", txn.Ops[:2])
		}
		// Money flows: warehouse ytd + district ytd increase by amount,
		// customer balance decreases by it.
		if txn.Ops[0].Value != txn.Ops[1].Value || txn.Ops[2].Value != -txn.Ops[0].Value {
			t.Fatalf("Payment amounts inconsistent: %+v", txn.Ops)
		}
	}
}

func TestTPCCNewOrderShape(t *testing.T) {
	g := NewTPCC(DefaultTPCC(2, 8))
	rng := sim.NewRNG(14)
	sawNewOrder := false
	for i := 0; i < 200; i++ {
		txn := g.Next(rng, 1)
		if txn.Label != "NewOrder" {
			continue
		}
		sawNewOrder = true
		if txn.Ops[0].Table != TPCCDistrict || txn.Ops[0].Field != DistNextOID || txn.Ops[0].Value != 1 {
			t.Fatalf("NewOrder missing next_o_id increment: %+v", txn.Ops[0])
		}
		stock := map[store.Key]bool{}
		for _, op := range txn.Ops {
			if op.Table == TPCCStock {
				if stock[op.Key] {
					t.Fatal("duplicate stock key in NewOrder")
				}
				stock[op.Key] = true
				if op.Value >= 0 {
					t.Fatal("stock update must decrement")
				}
			}
		}
		if len(stock) < 1 {
			t.Fatal("NewOrder without stock updates")
		}
	}
	if !sawNewOrder {
		t.Fatal("no NewOrder generated")
	}
}

func TestTPCCOrderKeysAreFresh(t *testing.T) {
	g := NewTPCC(DefaultTPCC(2, 8))
	rng := sim.NewRNG(15)
	seen := map[store.Key]bool{}
	for i := 0; i < 300; i++ {
		txn := g.Next(rng, netsim.NodeID(i%2))
		if txn.Label != "NewOrder" {
			continue
		}
		for _, op := range txn.Ops {
			if op.Table == TPCCOrder && op.Field == 0 {
				if seen[op.Key] {
					t.Fatal("order key reused")
				}
				seen[op.Key] = true
			}
		}
	}
}

func TestTPCCHotCandidates(t *testing.T) {
	cfg := DefaultTPCC(2, 8)
	g := NewTPCC(cfg)
	want := 8 + 8*10*2 + 8*cfg.HotItemsPerWH
	if got := len(g.HotCandidates()); got != want {
		t.Fatalf("hot candidates = %d, want %d", got, want)
	}
}

func TestTPCCWarehouseNodeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on warehouses not divisible by nodes")
		}
	}()
	NewTPCC(DefaultTPCC(3, 8))
}

func TestPickDistinct(t *testing.T) {
	rng := sim.NewRNG(1)
	vals := pickDistinct(rng, 5, 10)
	seen := map[int64]bool{}
	for _, v := range vals {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad pick: %v", vals)
		}
		seen[v] = true
	}
}

func TestYCSBHotKeysUseDistinctCongruenceClasses(t *testing.T) {
	// The single-pass guarantee rests on each hot transaction's keys
	// coming from pairwise-distinct congruence classes mod OpsPerTxn.
	cfg := YCSBWorkloadA(2)
	cfg.HotTxnPct = 100
	g := NewYCSB(cfg)
	rng := sim.NewRNG(77)
	for i := 0; i < 200; i++ {
		txn := g.Next(rng, 0)
		seen := map[int64]bool{}
		for _, op := range txn.Ops {
			class := (int64(op.Key) % cfg.RowsPerNode) % int64(cfg.OpsPerTxn)
			if seen[class] {
				t.Fatalf("two hot keys share congruence class %d", class)
			}
			seen[class] = true
		}
	}
}

func TestSmallBankTransferDirectionBias(t *testing.T) {
	g := NewSmallBank(DefaultSmallBank(4, 10))
	rng := sim.NewRNG(88)
	for i := 0; i < 2000; i++ {
		txn := g.Next(rng, 1)
		if txn.Label != "SendPayment" && txn.Label != "Amalgamate" {
			continue
		}
		first, last := txn.Ops[0], txn.Ops[len(txn.Ops)-1]
		if first.Key > last.Key {
			t.Fatalf("%s moves money downward: %d -> %d", txn.Label, first.Key, last.Key)
		}
	}
}

func TestLockSetSortedDedupedAndModed(t *testing.T) {
	// A hand-built transaction with a duplicate row (read then write), out
	// of key order, across two tables: LockSet must return one entry per
	// distinct row, in ascending global key order, write-mode when any
	// operation writes the row.
	txn := &Txn{Ops: []Op{
		{Table: SBSavings, Key: 5, Home: 1, Kind: Read, DependsOn: -1},
		{Table: SBChecking, Key: 9, Home: 1, Kind: Read, DependsOn: -1},
		{Table: SBChecking, Key: 2, Home: 0, Kind: Read, DependsOn: -1},
		{Table: SBChecking, Key: 9, Home: 1, Kind: Add, Value: 1, DependsOn: -1}, // upgrades row 9 to write
	}}
	refs := txn.LockSet()
	if len(refs) != 3 {
		t.Fatalf("LockSet has %d entries, want 3 (row 9 deduplicated): %+v", len(refs), refs)
	}
	for i := 1; i < len(refs); i++ {
		if refs[i-1].Key >= refs[i].Key {
			t.Fatalf("LockSet not in ascending key order: %+v", refs)
		}
	}
	byKey := map[store.GlobalKey]LockRef{}
	for _, r := range refs {
		byKey[r.Key] = r
	}
	if r := byKey[store.Global(SBChecking, 9)]; !r.Write || r.Home != 1 {
		t.Fatalf("row 9 = %+v, want write-mode at home 1 (read+write dedup keeps strongest mode)", r)
	}
	if r := byKey[store.Global(SBChecking, 2)]; r.Write {
		t.Fatalf("row 2 = %+v, want read-mode", r)
	}
	if r := byKey[store.Global(SBSavings, 5)]; r.Write {
		t.Fatalf("savings row 5 = %+v, want read-mode", r)
	}
}

func TestLockSetCoversEveryGeneratedOp(t *testing.T) {
	// For every generator, each generated operation's row must appear in
	// the declared lock set with a sufficient mode — the invariant the
	// deterministic engine relies on to lock before executing.
	gens := []Generator{
		NewYCSB(YCSBWorkloadA(4)),
		NewSmallBank(DefaultSmallBank(4, 5)),
		NewTPCC(DefaultTPCC(4, 4)),
	}
	for _, g := range gens {
		for _, txn := range genMany(g, 200, 99) {
			refs := txn.LockSet()
			byKey := map[store.GlobalKey]LockRef{}
			for _, r := range refs {
				byKey[r.Key] = r
			}
			for _, op := range txn.Ops {
				r, ok := byKey[op.LockKey()]
				if !ok {
					t.Fatalf("%s: op %+v not in declared lock set", g.Name(), op)
				}
				if op.Kind.IsWrite() && !r.Write {
					t.Fatalf("%s: write op %+v declared read-mode", g.Name(), op)
				}
				if r.Home != op.Home {
					t.Fatalf("%s: op %+v declared home %d", g.Name(), op, r.Home)
				}
			}
		}
	}
}

func TestSetDeclarers(t *testing.T) {
	// YCSB and SmallBank pre-declare exact sets; TPC-C's real-world
	// counterpart has data-dependent reads, so it must answer false and
	// route deterministic engines through the reconnaissance pass.
	for _, tc := range []struct {
		gen  Generator
		want bool
	}{
		{NewYCSB(YCSBWorkloadA(4)), true},
		{NewSmallBank(DefaultSmallBank(4, 5)), true},
		{NewTPCC(DefaultTPCC(4, 4)), false},
	} {
		d, ok := tc.gen.(SetDeclarer)
		if !ok {
			t.Fatalf("%s does not implement SetDeclarer", tc.gen.Name())
		}
		if got := d.DeclaresKeySets(); got != tc.want {
			t.Fatalf("%s.DeclaresKeySets() = %v, want %v", tc.gen.Name(), got, tc.want)
		}
	}
}
