package workload

import (
	"math"

	"repro/internal/sim"
)

// Zipf samples ranks 0..n-1 with probability proportional to
// 1/(rank+1)^theta, using the rejection-inversion method of Hörmann &
// Derflinger ("Rejection-inversion to generate variates from monotone
// discrete distributions", ACM TOMACS 6(3), 1996). Unlike the classic
// Gries/YCSB incremental sampler, rejection inversion needs no O(n) setup
// and no restriction theta > 1; any theta >= 0 works, with theta = 0
// degenerating to the uniform distribution (the acceptance test then always
// passes on the first draw).
//
// Sampling consumes only rng.Float64() draws, so streams are bit-identical
// under sim.RNG seeds — the property every seeded figure and determinism
// test relies on.
type Zipf struct {
	n     int64
	theta float64

	// Precomputed constants of the rejection-inversion scheme: H is the
	// integral of the hat function h(x) = 1/x^theta, shifted so ranks map
	// to the interval [0.5, n+0.5].
	hIntegralX1 float64 // H(1.5) - h(1)
	hIntegralN  float64 // H(n + 0.5)
	s           float64 // uniform acceptance shortcut threshold
}

// NewZipf returns a sampler over n ranks with exponent theta. It panics on
// n <= 0 or theta < 0.
func NewZipf(n int64, theta float64) *Zipf {
	if n <= 0 {
		panic("workload: Zipf needs n > 0")
	}
	if theta < 0 {
		panic("workload: Zipf needs theta >= 0")
	}
	z := &Zipf{n: n, theta: theta}
	z.hIntegralX1 = z.hIntegral(1.5) - 1.0
	z.hIntegralN = z.hIntegral(float64(n) + 0.5)
	z.s = 2.0 - z.hIntegralInverse(z.hIntegral(2.5)-z.h(2.0))
	return z
}

// N returns the number of ranks.
func (z *Zipf) N() int64 { return z.n }

// Theta returns the skew exponent.
func (z *Zipf) Theta() float64 { return z.theta }

// Next draws the next rank in [0, n). Rank 0 is the most probable.
func (z *Zipf) Next(rng *sim.RNG) int64 {
	for {
		u := z.hIntegralN + rng.Float64()*(z.hIntegralX1-z.hIntegralN)
		x := z.hIntegralInverse(u)
		k := int64(x + 0.5)
		if k < 1 {
			k = 1
		} else if k > z.n {
			k = z.n
		}
		// Accept k when x is close enough (the uniform bound s covers the
		// bulk), otherwise run the exact rejection test against the hat.
		if float64(k)-x <= z.s || u >= z.hIntegral(float64(k)+0.5)-z.h(float64(k)) {
			return k - 1
		}
	}
}

// hIntegral is H(x) = ∫ 1/t^theta dt, written via expm1 so the theta → 1
// limit (log x) is numerically seamless.
func (z *Zipf) hIntegral(x float64) float64 {
	logX := math.Log(x)
	return helper2((1.0-z.theta)*logX) * logX
}

// h is the hat function 1/x^theta.
func (z *Zipf) h(x float64) float64 {
	return math.Exp(-z.theta * math.Log(x))
}

// hIntegralInverse is H⁻¹.
func (z *Zipf) hIntegralInverse(x float64) float64 {
	t := x * (1.0 - z.theta)
	if t < -1.0 {
		// Numerical round-off can push t slightly below the domain edge.
		t = -1.0
	}
	return math.Exp(helper1(t) * x)
}

// helper1 is log1p(x)/x with a Taylor expansion near zero.
func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1.0 - x*(0.5-x*(1.0/3.0-0.25*x))
}

// helper2 is expm1(x)/x with a Taylor expansion near zero.
func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1.0 + x*0.5*(1.0+x*(1.0/3.0)*(1.0+0.25*x))
}
