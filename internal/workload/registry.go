package workload

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Name-keyed generator construction for the serving stack: cmd/p4db-serve
// and cmd/p4db-load must build byte-identical generators from a flag
// string so the server populates the exact store the client generates
// keys for. The parameters mirror the bench matrix's standard axis
// (internal/bench/matrix.go): YCSB at 20% distributed / 75% hot-txn,
// SmallBank with 5 hot accounts per node, TPC-C with one warehouse per
// node at 20% distributed.
var generatorsByName = map[string]func(nodes int) Generator{
	"ycsb-a": func(nodes int) Generator { return NewYCSB(ycsbStd(YCSBWorkloadA(nodes))) },
	"ycsb-b": func(nodes int) Generator { return NewYCSB(ycsbStd(YCSBWorkloadB(nodes))) },
	"ycsb-c": func(nodes int) Generator { return NewYCSB(ycsbStd(YCSBWorkloadC(nodes))) },
	"smallbank": func(nodes int) Generator {
		cfg := DefaultSmallBank(nodes, 5)
		cfg.DistPct = 20
		return NewSmallBank(cfg)
	},
	"tpcc": func(nodes int) Generator {
		cfg := DefaultTPCC(nodes, nodes)
		cfg.DistPct = 20
		return NewTPCC(cfg)
	},
	"ycsb-drift": func(nodes int) Generator {
		return NewDrift(DefaultDrift(nodes, DriftRotate, driftStdPhase))
	},
	"ycsb-flash": func(nodes int) Generator {
		return NewDrift(DefaultDrift(nodes, DriftFlash, driftStdPhase))
	},
}

// driftStdPhase is the registry-standard phase length for the drifting
// workloads: long enough that a serving run sees stable phases, short
// enough that the single shift (MaxPhase 1) lands inside any realistic
// run. The bench drift figure pins its own phase length instead.
const driftStdPhase = 500 * sim.Microsecond

// ycsbStd applies the matrix-standard skew knobs to a YCSB base config.
func ycsbStd(cfg YCSBConfig) YCSBConfig {
	cfg.DistPct = 20
	cfg.HotTxnPct = 75
	return cfg
}

// ByName constructs the named workload generator for a cluster of the
// given node count. Unknown names error with the registered list.
func ByName(name string, nodes int) (Generator, error) {
	return ByNameTheta(name, nodes, 0)
}

// ByNameTheta is ByName with a Zipf skew axis: theta > 0 switches the YCSB
// generators to Zipfian key selection at that exponent. Workloads without
// a skew knob (smallbank, tpcc) reject a non-zero theta rather than
// silently ignoring it — server and client must agree on the generator.
func ByNameTheta(name string, nodes int, theta float64) (Generator, error) {
	mk, ok := generatorsByName[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown workload %q (registered: %v)", name, Names())
	}
	if theta < 0 {
		return nil, fmt.Errorf("workload: theta must be >= 0 (got %g)", theta)
	}
	if theta == 0 {
		return mk(nodes), nil
	}
	switch g := mk(nodes).(type) {
	case *YCSB:
		cfg := g.Config()
		cfg.Zipfian = true
		cfg.Theta = theta
		return NewYCSB(cfg), nil
	case *Drift:
		cfg := g.Config()
		cfg.Zipfian = true
		cfg.Theta = theta
		return NewDrift(cfg), nil
	default:
		return nil, fmt.Errorf("workload: %q has no Zipf skew axis (use -theta 0)", name)
	}
}

// Names lists the registered workload names, sorted.
func Names() []string {
	names := make([]string, 0, len(generatorsByName))
	for n := range generatorsByName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
