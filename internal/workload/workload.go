// Package workload implements the three OLTP benchmarks of the paper's
// evaluation — YCSB (A/B/C), SmallBank and TPC-C (NewOrder+Payment) — as
// transaction generators over the partitioned store.
//
// A generator owns the partitioning scheme (which node is home to which
// key), the skew (which tuples are hot and what fraction of accesses they
// receive) and the transaction logic expressed as a list of operations.
// The same operation list serves three purposes: the host DBMS executes it
// under 2PL, the hot-set detector replays it offline, and — for hot
// operations — the layout compiler turns it into switch instructions.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/txnwire"
)

// OpKind is the logical operation type, mirroring the switch opcode set so
// hot operations translate one-to-one into instructions.
type OpKind uint8

// Operation kinds.
const (
	// Read returns the field value.
	Read OpKind = iota
	// Write blindly stores Value.
	Write
	// Add increments by Value and returns the new value.
	Add
	// CondAddGE0 adds Value only if the result stays non-negative (a
	// constrained write); on failure it clears the transaction ok-flag.
	CondAddGE0
	// ReadClear reads the old value, adds it to the transaction
	// accumulator and zeroes the field.
	ReadClear
	// AddAcc adds accumulator+Value to the field.
	AddAcc
	// AddIfOK adds Value only if the ok-flag is still set.
	AddIfOK
)

// WireOp maps the kind to its switch opcode.
func (k OpKind) WireOp() txnwire.Op {
	switch k {
	case Read:
		return txnwire.OpRead
	case Write:
		return txnwire.OpWrite
	case Add:
		return txnwire.OpAdd
	case CondAddGE0:
		return txnwire.OpCondAddGE0
	case ReadClear:
		return txnwire.OpReadClear
	case AddAcc:
		return txnwire.OpAddAcc
	case AddIfOK:
		return txnwire.OpAddIfOK
	default:
		panic(fmt.Sprintf("workload: unknown op kind %d", k))
	}
}

// IsWrite reports whether the kind mutates state.
func (k OpKind) IsWrite() bool { return k != Read }

// Op is one operation of a transaction.
type Op struct {
	Table store.TableID
	Key   store.Key
	Field int
	Home  netsim.NodeID // partition owner of Key
	Kind  OpKind
	Value int64
	// DependsOn is the index of an earlier operation this one depends on
	// (-1 for none); it constrains switch instruction ordering and feeds
	// the directed edges of the layout graph.
	DependsOn int
}

// LockKey returns the row-granular lock identifier.
func (o Op) LockKey() store.GlobalKey { return store.Global(o.Table, o.Key) }

// TupleKey returns the field-qualified switch-tuple identifier.
func (o Op) TupleKey() store.GlobalKey { return store.GlobalField(o.Table, o.Field, o.Key) }

// Txn is one generated transaction.
type Txn struct {
	Label string // transaction type, e.g. "Payment"
	Ops   []Op
}

// Distributed reports whether the transaction touches a node other than
// self.
func (t *Txn) Distributed(self netsim.NodeID) bool {
	for _, op := range t.Ops {
		if op.Home != self {
			return true
		}
	}
	return false
}

// LockRef is one row of a transaction's declared lock set: the partition
// owner, the row-granular lock key and the strongest access mode any of
// the transaction's operations needs on that row.
type LockRef struct {
	Home  netsim.NodeID
	Key   store.GlobalKey
	Write bool
}

// LockSet returns the transaction's declared row-level lock set in
// ascending global key order: one entry per distinct row, write-mode when
// any operation writes the row. Deterministic engines acquire exactly
// this set, in exactly this order, before executing a single operation —
// ordered acquisition keeps every waits-for chain acyclic, so conflicts
// resolve by waiting instead of deadlock detection or aborts.
func (t *Txn) LockSet() []LockRef {
	refs := make([]LockRef, 0, len(t.Ops))
	idx := make(map[store.GlobalKey]int, len(t.Ops))
	for _, op := range t.Ops {
		gk := op.LockKey()
		if i, ok := idx[gk]; ok {
			if op.Kind.IsWrite() {
				refs[i].Write = true
			}
			continue
		}
		idx[gk] = len(refs)
		refs = append(refs, LockRef{Home: op.Home, Key: gk, Write: op.Kind.IsWrite()})
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].Key < refs[j].Key })
	return refs
}

// SetDeclarer is implemented by generators that can promise, at generation
// time, whether a transaction's operation list is its exact read/write set.
// Deterministic engines need the full set before execution starts: when a
// benchmark's real-world counterpart computes keys from data it read
// (TPC-C's item and customer lookups), the generator answers false and the
// engine runs a reconnaissance pass (Calvin's optimistic lock location
// prediction) to discover the set before sequencing.
type SetDeclarer interface {
	// DeclaresKeySets reports whether every generated transaction's
	// operation list is an exact a-priori read/write-set declaration.
	DeclaresKeySets() bool
}

// Generator produces transactions for a specific benchmark configuration.
type Generator interface {
	// Name identifies the benchmark ("YCSB-A", "SmallBank", "TPC-C").
	Name() string
	// Nodes returns the number of database nodes the generator partitions
	// data over.
	Nodes() int
	// Populate creates this benchmark's tables on every node's store and
	// loads the node's partition (stores[i] belongs to node i).
	Populate(stores []*store.Store)
	// Home returns the partition owner of a key.
	Home(t store.TableID, k store.Key) netsim.NodeID
	// Next generates the next transaction for a worker on node self.
	Next(rng *sim.RNG, self netsim.NodeID) *Txn
}

// pickDistinct draws n distinct values in [0, limit) using rng.
func pickDistinct(rng *sim.RNG, n int, limit int64) []int64 {
	if int64(n) > limit {
		panic("workload: cannot pick more distinct values than the range holds")
	}
	out := make([]int64, 0, n)
	seen := make(map[int64]struct{}, n)
	for len(out) < n {
		v := rng.Int63n(limit)
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}
