package workload

import (
	"fmt"

	"repro/internal/store"
	"repro/internal/txnwire"
)

// Executor evaluates operations against node stores with exactly the
// semantics the switch data plane implements for the corresponding
// opcodes, including the transaction-scoped accumulator (ReadClear/AddAcc)
// and ok-flag (CondAddGE0/AddIfOK) chaining. The host DBMS uses one
// Executor per transaction attempt; keeping the semantics in one place
// guarantees that a transaction computes the same results whether its hot
// part runs on the switch or (in the baselines) on a node.
type Executor struct {
	Acc int64
	OK  bool
}

// NewExecutor returns a fresh per-transaction executor.
func NewExecutor() Executor { return Executor{OK: true} }

// Apply executes op against the table and returns the switch-equivalent
// result. The caller is responsible for capturing undo state beforehand
// when the operation writes.
func (e *Executor) Apply(tb *store.Table, op Op) txnwire.Result {
	switch op.Kind {
	case Read:
		return txnwire.Result{Value: tb.Get(op.Key, op.Field), OK: true}
	case Write:
		tb.Set(op.Key, op.Field, op.Value)
		return txnwire.Result{Value: op.Value, OK: true}
	case Add:
		return txnwire.Result{Value: tb.Add(op.Key, op.Field, op.Value), OK: true}
	case CondAddGE0:
		cur := tb.Get(op.Key, op.Field)
		if cur+op.Value >= 0 {
			return txnwire.Result{Value: tb.Add(op.Key, op.Field, op.Value), OK: true}
		}
		e.OK = false
		return txnwire.Result{Value: cur, OK: false}
	case ReadClear:
		old := tb.Get(op.Key, op.Field)
		e.Acc += old
		tb.Set(op.Key, op.Field, 0)
		return txnwire.Result{Value: old, OK: true}
	case AddAcc:
		return txnwire.Result{Value: tb.Add(op.Key, op.Field, e.Acc+op.Value), OK: true}
	case AddIfOK:
		if e.OK {
			return txnwire.Result{Value: tb.Add(op.Key, op.Field, op.Value), OK: true}
		}
		return txnwire.Result{Value: tb.Get(op.Key, op.Field), OK: false}
	default:
		panic(fmt.Sprintf("workload: unknown op kind %d", op.Kind))
	}
}
