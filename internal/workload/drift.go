package workload

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/store"
)

// Drifting workloads: YCSB variants whose hot set *moves* during the run.
// They exist to exercise the online adaptive layout — a static offline
// layout is tuned to the distribution at time zero and decays toward the
// no-switch baseline once the hot set shifts, while the adaptive
// controller re-detects and migrates.
//
// A drifting generator derives its current phase from the cluster's
// virtual clock, injected by core.NewCluster through the ClockDriven
// interface. Before the clock is injected (and during the offline
// detection replay, which runs at time zero) the generator is in phase 0
// — exactly the snapshot a static layout is tuned to.

// ClockDriven is implemented by generators whose distribution shifts with
// virtual time. core.NewCluster injects the environment clock right after
// building it, before population and offline detection.
type ClockDriven interface {
	SetClock(now func() sim.Time)
}

// DriftMode selects the drift scenario.
type DriftMode int

const (
	// DriftRotate is the diurnal hot-set rotation: each phase shifts the
	// hot region (two-level mode) or the whole Zipf rank→key mapping
	// (Zipfian mode) by Stride keys within every partition, so yesterday's
	// hot tuples go cold and a formerly cold range heats up.
	DriftRotate DriftMode = iota
	// DriftFlash is the flash crowd: phases >= 1 send FlashPct% of
	// transactions entirely into a small, formerly cold key range
	// (FlashBase..FlashBase+HotPerNode per node); the rest of the traffic
	// keeps the phase-0 distribution.
	DriftFlash
)

// DriftConfig parameterizes a drifting YCSB generator. The embedded
// YCSBConfig supplies the base distribution (two-level hot/cold or
// Zipf(Theta)), partitioning and the operation mix.
type DriftConfig struct {
	YCSBConfig

	Mode DriftMode
	// PhaseLen is the virtual time per phase; the hot set shifts at every
	// multiple of it.
	PhaseLen sim.Time
	// MaxPhase, when > 0, caps the phase index: the workload shifts that
	// many times and then holds (the drift figure uses 1 — a single
	// shift — so the post-shift window is stationary). 0 drifts forever.
	MaxPhase int
	// Stride is the per-phase rotation distance in keys (DriftRotate);
	// 0 defaults to RowsPerNode/2, which alternates between two disjoint
	// regions — a day/night cycle.
	Stride int64
	// FlashBase is the per-partition offset of the flash range
	// (DriftFlash); 0 defaults to RowsPerNode/2, deep in the cold range.
	FlashBase int64
	// FlashPct is the share of transactions the flash crowd captures in
	// phases >= 1 (DriftFlash); 0 defaults to 75.
	FlashPct int
	// OraclePhase, when > 0, pins the generator to that phase regardless
	// of the clock — the per-phase oracle of the drift figure: offline
	// detection then sees the post-shift distribution, giving the layout
	// an adaptive run can at best match.
	OraclePhase int
}

// Drift is the drifting YCSB generator.
type Drift struct {
	cfg   DriftConfig
	clock func() sim.Time

	zipfGlobal *Zipf
	zipfLocal  *Zipf
}

// NewDrift validates the configuration and returns a generator.
func NewDrift(cfg DriftConfig) *Drift {
	if cfg.NumNodes <= 0 || cfg.RowsPerNode <= 0 || cfg.OpsPerTxn <= 0 {
		panic("workload: invalid drift config")
	}
	if cfg.PhaseLen <= 0 {
		panic("workload: drift config needs PhaseLen > 0")
	}
	if cfg.Stride == 0 {
		cfg.Stride = cfg.RowsPerNode / 2
	}
	if cfg.FlashBase == 0 {
		cfg.FlashBase = cfg.RowsPerNode / 2
	}
	if cfg.FlashPct == 0 {
		cfg.FlashPct = 75
	}
	if int64(cfg.HotPerNode) > cfg.RowsPerNode {
		panic("workload: hot set larger than partition")
	}
	d := &Drift{cfg: cfg}
	if cfg.Zipfian {
		d.zipfGlobal = NewZipf(cfg.RowsPerNode*int64(cfg.NumNodes), cfg.Theta)
		d.zipfLocal = NewZipf(cfg.RowsPerNode, cfg.Theta)
	}
	return d
}

// SetClock implements ClockDriven.
func (d *Drift) SetClock(now func() sim.Time) { d.clock = now }

// Config returns the generator's configuration.
func (d *Drift) Config() DriftConfig { return d.cfg }

// Name implements Generator.
func (d *Drift) Name() string {
	mode := "rot"
	if d.cfg.Mode == DriftFlash {
		mode = "flash"
	}
	name := fmt.Sprintf("YCSB-drift-%s", mode)
	if d.cfg.Zipfian {
		name = fmt.Sprintf("%s-zipf%.2f", name, d.cfg.Theta)
	}
	if d.cfg.OraclePhase > 0 {
		name = fmt.Sprintf("%s@p%d", name, d.cfg.OraclePhase)
	}
	return name
}

// Nodes implements Generator.
func (d *Drift) Nodes() int { return d.cfg.NumNodes }

// DeclaresKeySets implements SetDeclarer (see YCSB.DeclaresKeySets).
func (d *Drift) DeclaresKeySets() bool { return true }

// Populate implements Generator: the single lazily-materialized YCSB
// table.
func (d *Drift) Populate(stores []*store.Store) {
	for _, st := range stores {
		st.CreateTable(YCSBTable, "usertable", 1)
	}
}

// Home implements Generator: keys are range-partitioned.
func (d *Drift) Home(t store.TableID, k store.Key) netsim.NodeID {
	return netsim.NodeID(int64(k) / d.cfg.RowsPerNode)
}

// phase returns the generator's current phase index.
func (d *Drift) phase() int {
	if d.cfg.OraclePhase > 0 {
		return d.cfg.OraclePhase
	}
	if d.clock == nil {
		return 0
	}
	p := int(d.clock() / d.cfg.PhaseLen)
	if d.cfg.MaxPhase > 0 && p > d.cfg.MaxPhase {
		p = d.cfg.MaxPhase
	}
	return p
}

// rotation returns the per-partition key offset of phase p.
func (d *Drift) rotation(p int) int64 {
	off := (int64(p) * d.cfg.Stride) % d.cfg.RowsPerNode
	if off < 0 {
		off += d.cfg.RowsPerNode
	}
	return off
}

// Next implements Generator.
func (d *Drift) Next(rng *sim.RNG, self netsim.NodeID) *Txn {
	p := d.phase()
	if d.cfg.Mode == DriftFlash && p >= 1 && rng.Bool(d.cfg.FlashPct) {
		return d.nextFlash(rng, self)
	}
	var rot int64
	if d.cfg.Mode == DriftRotate {
		rot = d.rotation(p)
	}
	if d.cfg.Zipfian {
		return d.nextZipf(rng, self, rot)
	}
	return d.nextTwoLevel(rng, self, rot)
}

// nextTwoLevel is YCSB's two-level hot/cold transaction body with the hot
// region rotated by rot keys into the partition. Cold keys draw uniformly
// over the whole partition (at billion-row partitions the overlap with
// the small hot region is negligible).
func (d *Drift) nextTwoLevel(rng *sim.RNG, self netsim.NodeID, rot int64) *Txn {
	hot := rng.Bool(d.cfg.HotTxnPct)
	dist := rng.Bool(d.cfg.DistPct)
	txn := &Txn{Label: "YCSB-drift", Ops: make([]Op, 0, d.cfg.OpsPerTxn)}
	seen := make(map[store.Key]struct{}, d.cfg.OpsPerTxn)
	for len(txn.Ops) < d.cfg.OpsPerTxn {
		node := self
		if dist {
			node = netsim.NodeID(rng.Intn(d.cfg.NumNodes))
		}
		var off int64
		if hot {
			// Congruence-class draw within the rotated hot region (see
			// YCSB.Next for why classes keep hot transactions single-pass).
			j := len(txn.Ops)
			classSize := (d.cfg.HotPerNode - j + d.cfg.OpsPerTxn - 1) / d.cfg.OpsPerTxn
			off = (rot + int64(j+d.cfg.OpsPerTxn*rng.Intn(classSize))) % d.cfg.RowsPerNode
		} else {
			off = rng.Int63n(d.cfg.RowsPerNode)
		}
		key := store.Key(int64(node)*d.cfg.RowsPerNode + off)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		txn.Ops = append(txn.Ops, d.op(rng, node, key))
	}
	return txn
}

// nextZipf is YCSB's Zipfian transaction body with the rank→key mapping
// rotated by rot keys within every partition: the distribution's head —
// and with it the detectable hot set — moves to a formerly cold range
// each phase.
func (d *Drift) nextZipf(rng *sim.RNG, self netsim.NodeID, rot int64) *Txn {
	dist := rng.Bool(d.cfg.DistPct)
	nodes := int64(d.cfg.NumNodes)
	txn := &Txn{Label: "YCSB-drift", Ops: make([]Op, 0, d.cfg.OpsPerTxn)}
	seen := make(map[store.Key]struct{}, d.cfg.OpsPerTxn)
	for len(txn.Ops) < d.cfg.OpsPerTxn {
		node := self
		var off int64
		if dist {
			r := d.zipfGlobal.Next(rng)
			node = netsim.NodeID(r % nodes)
			off = (r/nodes + rot) % d.cfg.RowsPerNode
		} else {
			off = (d.zipfLocal.Next(rng) + rot) % d.cfg.RowsPerNode
		}
		key := store.Key(int64(node)*d.cfg.RowsPerNode + off)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		txn.Ops = append(txn.Ops, d.op(rng, node, key))
	}
	return txn
}

// nextFlash is the flash-crowd transaction body: every operation draws
// from the small flash range, in congruence classes like a two-level hot
// transaction so the flash set is single-pass layoutable.
func (d *Drift) nextFlash(rng *sim.RNG, self netsim.NodeID) *Txn {
	dist := rng.Bool(d.cfg.DistPct)
	txn := &Txn{Label: "YCSB-flash", Ops: make([]Op, 0, d.cfg.OpsPerTxn)}
	seen := make(map[store.Key]struct{}, d.cfg.OpsPerTxn)
	for len(txn.Ops) < d.cfg.OpsPerTxn {
		node := self
		if dist {
			node = netsim.NodeID(rng.Intn(d.cfg.NumNodes))
		}
		j := len(txn.Ops)
		classSize := (d.cfg.HotPerNode - j + d.cfg.OpsPerTxn - 1) / d.cfg.OpsPerTxn
		off := (d.cfg.FlashBase + int64(j+d.cfg.OpsPerTxn*rng.Intn(classSize))) % d.cfg.RowsPerNode
		key := store.Key(int64(node)*d.cfg.RowsPerNode + off)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		txn.Ops = append(txn.Ops, d.op(rng, node, key))
	}
	return txn
}

// op draws the read/write kind and value for one operation.
func (d *Drift) op(rng *sim.RNG, node netsim.NodeID, key store.Key) Op {
	kind := Read
	var val int64
	if rng.Bool(d.cfg.WritePct) {
		kind = Write
		val = int64(rng.Uint32())
	}
	return Op{Table: YCSBTable, Key: key, Field: 0, Home: node, Kind: kind, Value: val, DependsOn: -1}
}

// DefaultDrift returns the drift-figure base configuration: YCSB-A at the
// matrix-standard skew knobs, one hot-set shift (MaxPhase 1) after
// PhaseLen of virtual time.
func DefaultDrift(nodes int, mode DriftMode, phaseLen sim.Time) DriftConfig {
	base := YCSBWorkloadA(nodes)
	base.DistPct = 20
	return DriftConfig{
		YCSBConfig: base,
		Mode:       mode,
		PhaseLen:   phaseLen,
		MaxPhase:   1,
	}
}
