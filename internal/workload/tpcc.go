package workload

import (
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/store"
)

// TPC-C tables. Only the tables the NewOrder/Payment mix touches are
// modelled; ORDERS and ORDER-LINE are insert-only and collapse into the
// order table's fresh-key writes.
const (
	TPCCWarehouse store.TableID = 0 // fields: [ytd]
	TPCCDistrict  store.TableID = 1 // fields: [ytd, next_o_id]
	TPCCCustomer  store.TableID = 2 // fields: [balance, ytd_payment, payment_cnt]
	TPCCStock     store.TableID = 3 // fields: [quantity, ytd]
	TPCCItem      store.TableID = 4 // fields: [price] (read-only)
	TPCCOrder     store.TableID = 5 // fields: [c_id, item_count] (insert-only)
)

// District fields.
const (
	DistYTD     = 0
	DistNextOID = 1
)

// TPCCConfig parameterizes the TPC-C generator (Section 7.2): a mix of
// NewOrder and Payment transactions over Warehouses warehouses spread
// evenly across the nodes. Contended columns (warehouse ytd, district ytd
// and next_o_id, hot stock quantities) are the offload candidates; the
// rest (customers, items, order inserts) stays cold, which makes every
// transaction WARM — the workload that exercises P4DB's combined
// 2PC/switch commit.
type TPCCConfig struct {
	NumNodes        int
	Warehouses      int // paper: 8 / 16 / 32
	DistrictsPerWH  int // spec: 10
	ItemsPerWH      int // stock rows per warehouse
	HotItemsPerWH   int // "most ordered items" whose stock goes hot
	CustomersPerDis int
	DistPct         int // probability an item/customer is remote
	PaymentPct      int // Payment share of the mix (rest NewOrder)
}

// DefaultTPCC returns the paper's setup scaled to the simulation.
func DefaultTPCC(nodes, warehouses int) TPCCConfig {
	return TPCCConfig{
		NumNodes:        nodes,
		Warehouses:      warehouses,
		DistrictsPerWH:  10,
		ItemsPerWH:      10000,
		HotItemsPerWH:   10,
		CustomersPerDis: 3000,
		DistPct:         20,
		PaymentPct:      50,
	}
}

// TPCC is the TPC-C benchmark generator (NewOrder + Payment mix).
type TPCC struct {
	cfg TPCCConfig
	// orderSeq hands out fresh order keys per (node); order inserts are
	// uncontended so a node-local sequence suffices (the contended
	// d_next_o_id counter is still incremented for TPC-C semantics).
	orderSeq []int64
}

// NewTPCC validates the configuration and returns a generator.
func NewTPCC(cfg TPCCConfig) *TPCC {
	if cfg.NumNodes <= 0 || cfg.Warehouses < cfg.NumNodes || cfg.Warehouses%cfg.NumNodes != 0 {
		panic("workload: warehouses must be a positive multiple of nodes")
	}
	return &TPCC{cfg: cfg, orderSeq: make([]int64, cfg.NumNodes)}
}

// Name implements Generator.
func (tc *TPCC) Name() string { return "TPC-C" }

// Nodes implements Generator.
func (tc *TPCC) Nodes() int { return tc.cfg.NumNodes }

// Config returns the generator's configuration.
func (tc *TPCC) Config() TPCCConfig { return tc.cfg }

// DeclaresKeySets implements SetDeclarer: real TPC-C computes part of its
// access set from data it reads (customer-by-last-name lookups, the order
// lines behind d_next_o_id), so a deterministic engine cannot trust the
// operation list as an a-priori declaration — it must run a
// reconnaissance pass to discover the read/write set before sequencing.
// The simulation's keys are in fact static, which makes the recon pass
// always confirm; answering false here is what charges its cost.
func (tc *TPCC) DeclaresKeySets() bool { return false }

// whPerNode returns warehouses per node.
func (tc *TPCC) whPerNode() int { return tc.cfg.Warehouses / tc.cfg.NumNodes }

// homeOfWH returns the node owning a warehouse.
func (tc *TPCC) homeOfWH(wh int) netsim.NodeID {
	return netsim.NodeID(wh / tc.whPerNode())
}

// Key construction: districts are wh*DistrictsPerWH+d, stock is
// wh*ItemsPerWH+i, customers are district*CustomersPerDis+c, orders are
// node-sequenced fresh keys.
func (tc *TPCC) districtKey(wh, d int) store.Key {
	return store.Key(wh*tc.cfg.DistrictsPerWH + d)
}
func (tc *TPCC) stockKey(wh, item int) store.Key {
	return store.Key(wh*tc.cfg.ItemsPerWH + item)
}
func (tc *TPCC) customerKey(wh, d, c int) store.Key {
	return store.Key((wh*tc.cfg.DistrictsPerWH+d)*tc.cfg.CustomersPerDis + c)
}

// Populate implements Generator: warehouses, districts and hot stock start
// at zero YTD; stock quantities start high; item prices are implicit
// (read-only zero rows suffice for the contention model, so only schema
// and hot rows are materialized eagerly).
func (tc *TPCC) Populate(stores []*store.Store) {
	for n, st := range stores {
		st.CreateTable(TPCCWarehouse, "warehouse", 1)
		st.CreateTable(TPCCDistrict, "district", 2)
		st.CreateTable(TPCCCustomer, "customer", 3)
		stk := st.CreateTable(TPCCStock, "stock", 2)
		st.CreateTable(TPCCItem, "item", 1)
		st.CreateTable(TPCCOrder, "order", 2)
		for wh := n * tc.whPerNode(); wh < (n+1)*tc.whPerNode(); wh++ {
			for i := 0; i < tc.cfg.ItemsPerWH; i++ {
				stk.Set(tc.stockKey(wh, i), 0, 10000) // quantity
			}
		}
	}
}

// Home implements Generator.
func (tc *TPCC) Home(t store.TableID, k store.Key) netsim.NodeID {
	switch t {
	case TPCCWarehouse:
		return tc.homeOfWH(int(k))
	case TPCCDistrict:
		return tc.homeOfWH(int(k) / tc.cfg.DistrictsPerWH)
	case TPCCCustomer:
		return tc.homeOfWH(int(k) / tc.cfg.CustomersPerDis / tc.cfg.DistrictsPerWH)
	case TPCCStock:
		return tc.homeOfWH(int(k) / tc.cfg.ItemsPerWH)
	case TPCCItem:
		return netsim.NodeID(int(k) % tc.cfg.NumNodes) // replicated read-only catalog
	case TPCCOrder:
		// Order keys come from the per-node insert sequence (self<<40|seq):
		// node-local by construction, so the partitioner decodes the home
		// from the key instead of hashing it.
		return netsim.NodeID(k >> 40)
	}
	panic("workload: unknown TPC-C table")
}

// Next implements Generator: the NewOrder/Payment mix of Section 7.2.
func (tc *TPCC) Next(rng *sim.RNG, self netsim.NodeID) *Txn {
	localWH := int(self)*tc.whPerNode() + rng.Intn(tc.whPerNode())
	if rng.Bool(tc.cfg.PaymentPct) {
		return tc.payment(rng, self, localWH)
	}
	return tc.newOrder(rng, self, localWH)
}

// payment updates the warehouse and district YTD totals (both hot) and the
// paying customer's balance (cold; remote with probability DistPct).
func (tc *TPCC) payment(rng *sim.RNG, self netsim.NodeID, wh int) *Txn {
	d := rng.Intn(tc.cfg.DistrictsPerWH)
	amount := int64(rng.Intn(5000) + 1)
	custWH := wh
	if rng.Bool(tc.cfg.DistPct) {
		custWH = rng.Intn(tc.cfg.Warehouses)
	}
	c := rng.Intn(tc.cfg.CustomersPerDis)
	custKey := tc.customerKey(custWH, d, c)
	return &Txn{Label: "Payment", Ops: []Op{
		{Table: TPCCWarehouse, Key: store.Key(wh), Field: 0, Home: tc.homeOfWH(wh),
			Kind: Add, Value: amount, DependsOn: -1},
		{Table: TPCCDistrict, Key: tc.districtKey(wh, d), Field: DistYTD, Home: tc.homeOfWH(wh),
			Kind: Add, Value: amount, DependsOn: -1},
		{Table: TPCCCustomer, Key: custKey, Field: 0, Home: tc.homeOfWH(custWH),
			Kind: Add, Value: -amount, DependsOn: -1},
		{Table: TPCCCustomer, Key: custKey, Field: 1, Home: tc.homeOfWH(custWH),
			Kind: Add, Value: amount, DependsOn: -1},
		{Table: TPCCCustomer, Key: custKey, Field: 2, Home: tc.homeOfWH(custWH),
			Kind: Add, Value: 1, DependsOn: -1},
	}}
}

// newOrder increments the district's next-order-id (hot), updates stock
// quantities of 5-15 ordered items (hot for popular items; remote
// warehouse with probability DistPct per item), reads item prices, and
// inserts the order (cold fresh-key writes).
func (tc *TPCC) newOrder(rng *sim.RNG, self netsim.NodeID, wh int) *Txn {
	d := rng.Intn(tc.cfg.DistrictsPerWH)
	nItems := rng.Intn(11) + 5
	ops := make([]Op, 0, nItems*2+3)
	ops = append(ops, Op{
		Table: TPCCDistrict, Key: tc.districtKey(wh, d), Field: DistNextOID,
		Home: tc.homeOfWH(wh), Kind: Add, Value: 1, DependsOn: -1,
	})
	seen := make(map[store.Key]struct{}, nItems)
	for i := 0; i < nItems; i++ {
		itemWH := wh
		if rng.Bool(tc.cfg.DistPct) {
			itemWH = rng.Intn(tc.cfg.Warehouses)
		}
		// Popular items: half the order lines hit the hot stock subset.
		var item int
		if rng.Bool(50) {
			item = rng.Intn(tc.cfg.HotItemsPerWH)
		} else {
			item = tc.cfg.HotItemsPerWH + rng.Intn(tc.cfg.ItemsPerWH-tc.cfg.HotItemsPerWH)
		}
		sk := tc.stockKey(itemWH, item)
		if _, dup := seen[sk]; dup {
			continue
		}
		seen[sk] = struct{}{}
		qty := int64(rng.Intn(10) + 1)
		// Item price lookup: read-only local catalog row.
		ops = append(ops, Op{
			Table: TPCCItem, Key: store.Key(item), Home: self,
			Kind: Read, DependsOn: -1,
		})
		// Stock quantity decrement (TPC-C refills below 10; modelled as a
		// plain decrement against a large starting quantity).
		ops = append(ops, Op{
			Table: TPCCStock, Key: sk, Field: 0, Home: tc.homeOfWH(itemWH),
			Kind: Add, Value: -qty, DependsOn: -1,
		})
	}
	// Insert the order row: a fresh, uncontended key from the node-local
	// sequence (the hot d_next_o_id counter above provides the TPC-C
	// order-id semantics and its contention).
	tc.orderSeq[self]++
	orderKey := store.Key(int64(self)<<40 | tc.orderSeq[self])
	ops = append(ops, Op{
		Table: TPCCOrder, Key: orderKey, Field: 0, Home: self,
		Kind: Write, Value: int64(rng.Intn(tc.cfg.CustomersPerDis)), DependsOn: -1,
	}, Op{
		Table: TPCCOrder, Key: orderKey, Field: 1, Home: self,
		Kind: Write, Value: int64(nItems), DependsOn: -1,
	})
	return &Txn{Label: "NewOrder", Ops: ops}
}

// HotCandidates returns the contended columns the paper offloads: every
// warehouse YTD, both district columns, and the hot stock quantities.
func (tc *TPCC) HotCandidates() []store.GlobalKey {
	var out []store.GlobalKey
	for wh := 0; wh < tc.cfg.Warehouses; wh++ {
		out = append(out, store.GlobalField(TPCCWarehouse, 0, store.Key(wh)))
		for d := 0; d < tc.cfg.DistrictsPerWH; d++ {
			out = append(out, store.GlobalField(TPCCDistrict, DistYTD, tc.districtKey(wh, d)))
			out = append(out, store.GlobalField(TPCCDistrict, DistNextOID, tc.districtKey(wh, d)))
		}
		for i := 0; i < tc.cfg.HotItemsPerWH; i++ {
			out = append(out, store.GlobalField(TPCCStock, 0, tc.stockKey(wh, i)))
		}
	}
	return out
}
