package workload

import (
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/store"
)

// SmallBank tables.
const (
	SBChecking store.TableID = 0
	SBSavings  store.TableID = 1
)

// SmallBankConfig parameterizes the SmallBank generator (Section 7.2): a
// banking workload over checking/savings accounts with a ~15% read ratio,
// read-dependent writes, and simple balance constraints. Hot customer
// accounts per node receive HotTxnPct of all transactions.
type SmallBankConfig struct {
	NumNodes        int
	AccountsPerNode int   // paper: 1M total accounts
	HotPerNode      int   // paper: 5 / 10 / 15
	HotTxnPct       int   // paper: 90
	DistPct         int   // fraction of distributed transactions
	InitialBalance  int64 // starting balance per account and table
}

// DefaultSmallBank returns the paper's setup scaled to the simulation.
func DefaultSmallBank(nodes, hotPerNode int) SmallBankConfig {
	return SmallBankConfig{
		NumNodes:        nodes,
		AccountsPerNode: 20000,
		HotPerNode:      hotPerNode,
		HotTxnPct:       90,
		DistPct:         20,
		InitialBalance:  1_000_000,
	}
}

// SmallBank is the SmallBank benchmark generator with the Payment
// transaction extension the paper adds.
type SmallBank struct {
	cfg SmallBankConfig
}

// NewSmallBank validates the configuration and returns a generator.
func NewSmallBank(cfg SmallBankConfig) *SmallBank {
	if cfg.NumNodes <= 0 || cfg.AccountsPerNode <= 0 {
		panic("workload: invalid SmallBank config")
	}
	if cfg.HotPerNode > cfg.AccountsPerNode {
		panic("workload: hot set larger than partition")
	}
	return &SmallBank{cfg: cfg}
}

// Name implements Generator.
func (sb *SmallBank) Name() string { return "SmallBank" }

// Nodes implements Generator.
func (sb *SmallBank) Nodes() int { return sb.cfg.NumNodes }

// Config returns the generator's configuration.
func (sb *SmallBank) Config() SmallBankConfig { return sb.cfg }

// DeclaresKeySets implements SetDeclarer: every SmallBank transaction
// names its one or two accounts up front (the conditional logic only
// affects values, never which rows are touched), so the operation list is
// the exact read/write set.
func (sb *SmallBank) DeclaresKeySets() bool { return true }

// Populate implements Generator: every account starts with the same
// balance in both tables.
func (sb *SmallBank) Populate(stores []*store.Store) {
	for n, st := range stores {
		ck := st.CreateTable(SBChecking, "checking", 1)
		sv := st.CreateTable(SBSavings, "savings", 1)
		base := int64(n) * int64(sb.cfg.AccountsPerNode)
		for i := int64(0); i < int64(sb.cfg.AccountsPerNode); i++ {
			ck.Set(store.Key(base+i), 0, sb.cfg.InitialBalance)
			sv.Set(store.Key(base+i), 0, sb.cfg.InitialBalance)
		}
	}
}

// Home implements Generator: accounts are range-partitioned.
func (sb *SmallBank) Home(t store.TableID, k store.Key) netsim.NodeID {
	return netsim.NodeID(int64(k) / int64(sb.cfg.AccountsPerNode))
}

// account draws an account on the given node; hot selects from the node's
// hot customers.
func (sb *SmallBank) account(rng *sim.RNG, node netsim.NodeID, hot bool) store.Key {
	base := int64(node) * int64(sb.cfg.AccountsPerNode)
	if hot {
		return store.Key(base + int64(rng.Intn(sb.cfg.HotPerNode)))
	}
	off := int64(sb.cfg.HotPerNode) + rng.Int63n(int64(sb.cfg.AccountsPerNode-sb.cfg.HotPerNode))
	return store.Key(base + off)
}

// Next implements Generator. The mix gives Balance (the only read-only
// type) 15% — the paper's fixed read ratio — and splits the remainder
// evenly over the five update types.
func (sb *SmallBank) Next(rng *sim.RNG, self netsim.NodeID) *Txn {
	hot := rng.Bool(sb.cfg.HotTxnPct)
	dist := rng.Bool(sb.cfg.DistPct)
	nodeFor := func() netsim.NodeID {
		if dist {
			return netsim.NodeID(rng.Intn(sb.cfg.NumNodes))
		}
		return self
	}
	a := sb.account(rng, nodeFor(), hot)
	amount := int64(rng.Intn(100) + 1)
	var b store.Key
	for {
		b = sb.account(rng, nodeFor(), hot)
		if b != a {
			break
		}
		if sb.cfg.HotPerNode == 1 && !dist && hot {
			// Single hot account per node and local-only: fall back to a
			// remote hot account to keep two-account txns meaningful.
			b = sb.account(rng, netsim.NodeID((int(self)+1)%sb.cfg.NumNodes), hot)
			break
		}
	}
	// Transfers flow from the lower to the higher account id. Without
	// this bias the two directions of every account pair impose cyclic
	// ordering constraints on the switch layout and half of all transfers
	// would need a second pipeline pass; with it a single-pass-compatible
	// total order of the hot tuples exists, matching the paper's
	// observation that all SmallBank hot transactions run single-pass.
	if a > b {
		a, b = b, a
	}
	homeA, homeB := sb.Home(SBChecking, a), sb.Home(SBChecking, b)

	switch rng.Intn(100) {
	case 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14: // 15%: Balance
		return &Txn{Label: "Balance", Ops: []Op{
			{Table: SBChecking, Key: a, Home: homeA, Kind: Read, DependsOn: -1},
			{Table: SBSavings, Key: a, Home: homeA, Kind: Read, DependsOn: -1},
		}}
	default:
		switch rng.Intn(5) {
		case 0: // DepositChecking
			return &Txn{Label: "DepositChecking", Ops: []Op{
				{Table: SBChecking, Key: a, Home: homeA, Kind: Add, Value: amount, DependsOn: -1},
			}}
		case 1: // TransactSavings (withdrawal with non-negative constraint)
			return &Txn{Label: "TransactSavings", Ops: []Op{
				{Table: SBSavings, Key: a, Home: homeA, Kind: CondAddGE0, Value: -amount, DependsOn: -1},
			}}
		case 2: // Amalgamate: move all funds of A into B's checking
			return &Txn{Label: "Amalgamate", Ops: []Op{
				{Table: SBSavings, Key: a, Home: homeA, Kind: ReadClear, DependsOn: -1},
				{Table: SBChecking, Key: a, Home: homeA, Kind: ReadClear, DependsOn: 0},
				{Table: SBChecking, Key: b, Home: homeB, Kind: AddAcc, DependsOn: 1},
			}}
		case 3: // WriteCheck: read savings, conditionally debit checking
			return &Txn{Label: "WriteCheck", Ops: []Op{
				{Table: SBSavings, Key: a, Home: homeA, Kind: Read, DependsOn: -1},
				{Table: SBChecking, Key: a, Home: homeA, Kind: CondAddGE0, Value: -amount, DependsOn: 0},
			}}
		default: // SendPayment: debit A, credit B only if the debit held
			return &Txn{Label: "SendPayment", Ops: []Op{
				{Table: SBChecking, Key: a, Home: homeA, Kind: CondAddGE0, Value: -amount, DependsOn: -1},
				{Table: SBChecking, Key: b, Home: homeB, Kind: AddIfOK, Value: amount, DependsOn: 0},
			}}
		}
	}
}
