package workload

import (
	"errors"
	"fmt"

	"repro/internal/netsim"
	"repro/internal/store"
	"repro/internal/txnwire"
)

// Wire conversion between workload transactions and txnwire envelopes.
// The switch Packet carries (Stage, Array, Index u32); a workload Op
// addresses (table, 52-bit key, field, home). The mapping:
//
//	Instr.Op      = Kind.WireOp()        (1:1, KindOf reverses it)
//	Instr.Stage   = Table
//	Instr.Array   = Field
//	Instr.Index   = low 32 bits of Key
//	Instr.Operand = Value
//	OpExt.KeyHi   = high bits of Key     (keys are <= 52 bits)
//	OpExt.Home    = partition owner
//	OpExt.Dep     = DependsOn            (txnwire.DepNone for -1)
//
// Txn.Label is deliberately not carried: it is cosmetic (no engine reads
// it) and a variable-length string has no place in a fixed-width format.
// Both directions reuse the destination's slice capacity, so a pooled
// request/transaction pair converts with zero steady-state allocations.

// maxWireKey is the largest encodable key: GlobalField keeps keys to 52
// bits, and the wire's 32+20 split covers exactly that.
const maxWireKey = store.Key(1)<<52 - 1

// Wire conversion errors.
var (
	ErrWireTooManyOps = errors.New("workload: transaction exceeds 255 operations")
	ErrWireBadOrigin  = errors.New("workload: origin node not encodable in one byte")
	ErrWireBadHome    = errors.New("workload: home node not encodable in one byte")
	ErrWireBadKey     = errors.New("workload: key exceeds 52 bits")
	ErrWireBadField   = errors.New("workload: field not in 0..15")
	ErrWireBadDep     = errors.New("workload: dependency must name an earlier op")
	ErrWireBadKind    = errors.New("workload: opcode has no operation kind")
)

// KindOf maps a switch opcode back to the operation kind; it is the
// inverse of OpKind.WireOp. OpMax has no workload counterpart.
func KindOf(op txnwire.Op) (OpKind, bool) {
	switch op {
	case txnwire.OpRead:
		return Read, true
	case txnwire.OpWrite:
		return Write, true
	case txnwire.OpAdd:
		return Add, true
	case txnwire.OpCondAddGE0:
		return CondAddGE0, true
	case txnwire.OpReadClear:
		return ReadClear, true
	case txnwire.OpAddAcc:
		return AddAcc, true
	case txnwire.OpAddIfOK:
		return AddIfOK, true
	default:
		return 0, false
	}
}

// TxnToRequest encodes txn as a wire request with the given id, reusing
// req's instruction and extension capacity.
func TxnToRequest(txn *Txn, txnID uint64, origin netsim.NodeID, req *txnwire.TxnRequest) error {
	if len(txn.Ops) > 255 {
		return ErrWireTooManyOps
	}
	if origin < 0 || origin > 255 {
		return ErrWireBadOrigin
	}
	*req = txnwire.TxnRequest{
		Origin: uint8(origin),
		Pkt:    txnwire.Packet{Header: txnwire.Header{TxnID: txnID}, Instrs: req.Pkt.Instrs[:0]},
		Ext:    req.Ext[:0],
	}
	for i, op := range txn.Ops {
		if op.Key > maxWireKey {
			return fmt.Errorf("%w: op %d key %d", ErrWireBadKey, i, op.Key)
		}
		if op.Field < 0 || op.Field > 15 {
			return fmt.Errorf("%w: op %d field %d", ErrWireBadField, i, op.Field)
		}
		if op.Home < 0 || op.Home > 255 {
			return fmt.Errorf("%w: op %d home %d", ErrWireBadHome, i, op.Home)
		}
		dep := uint8(txnwire.DepNone)
		if op.DependsOn >= 0 {
			if op.DependsOn >= i {
				return fmt.Errorf("%w: op %d depends on %d", ErrWireBadDep, i, op.DependsOn)
			}
			dep = uint8(op.DependsOn)
		}
		req.Pkt.Instrs = append(req.Pkt.Instrs, txnwire.Instr{
			Op:      op.Kind.WireOp(),
			Stage:   uint8(op.Table),
			Array:   uint8(op.Field),
			Index:   uint32(op.Key),
			Operand: op.Value,
		})
		req.Ext = append(req.Ext, txnwire.OpExt{
			KeyHi: uint32(op.Key >> 32),
			Home:  uint8(op.Home),
			Dep:   dep,
		})
	}
	return nil
}

// TxnFromRequest decodes a wire request into txn, reusing txn's operation
// capacity, and validates every field the wire cannot make unrepresentable:
// opcode kind, key width, field nibble, dependency ordering. Node-count
// and schema validation (home/origin in range, table exists, home matches
// the partitioning) stays with the server, which knows the cluster.
func TxnFromRequest(req *txnwire.TxnRequest, txn *Txn) error {
	if len(req.Ext) != len(req.Pkt.Instrs) {
		return txnwire.ErrExtMismatch
	}
	txn.Label = "wire"
	txn.Ops = txn.Ops[:0]
	for i, in := range req.Pkt.Instrs {
		kind, ok := KindOf(in.Op)
		if !ok {
			return fmt.Errorf("%w: op %d opcode %v", ErrWireBadKind, i, in.Op)
		}
		ext := req.Ext[i]
		key := store.Key(ext.KeyHi)<<32 | store.Key(in.Index)
		if key > maxWireKey {
			return fmt.Errorf("%w: op %d key %d", ErrWireBadKey, i, key)
		}
		if in.Array > 15 {
			return fmt.Errorf("%w: op %d field %d", ErrWireBadField, i, in.Array)
		}
		dep := -1
		if ext.Dep != txnwire.DepNone {
			if int(ext.Dep) >= i {
				return fmt.Errorf("%w: op %d depends on %d", ErrWireBadDep, i, ext.Dep)
			}
			dep = int(ext.Dep)
		}
		txn.Ops = append(txn.Ops, Op{
			Table:     store.TableID(in.Stage),
			Key:       key,
			Field:     int(in.Array),
			Home:      netsim.NodeID(ext.Home),
			Kind:      kind,
			Value:     in.Operand,
			DependsOn: dep,
		})
	}
	return nil
}
