package workload

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/store"
)

// YCSBTable is the single table of the YCSB benchmark.
const YCSBTable store.TableID = 0

// YCSBConfig parameterizes the YCSB generator following Section 7.2: a
// single range-partitioned table, transactions of OpsPerTxn independent
// read/write operations, and a per-node hot-set that receives HotAccessPct
// of all accesses.
type YCSBConfig struct {
	NumNodes    int
	RowsPerNode int64 // logical partition size (rows materialize lazily)
	HotPerNode  int   // hot keys per node (paper: 50)
	WritePct    int   // write ratio within a txn: A=50, B=5, C=0
	HotTxnPct   int   // fraction of transactions on the hot-set (paper: 75%)
	DistPct     int   // fraction of distributed transactions
	OpsPerTxn   int   // operations per transaction (paper: 8)
}

// YCSBWorkloadA..C return the paper's workload mixes (update-heavy 50/50,
// read-heavy 95/5, read-only 100/0) at the defaults of Section 7.2.
func YCSBWorkloadA(nodes int) YCSBConfig { return ycsbBase(nodes, 50) }
func YCSBWorkloadB(nodes int) YCSBConfig { return ycsbBase(nodes, 5) }
func YCSBWorkloadC(nodes int) YCSBConfig { return ycsbBase(nodes, 0) }

func ycsbBase(nodes, writePct int) YCSBConfig {
	return YCSBConfig{
		NumNodes:    nodes,
		RowsPerNode: 1 << 27, // 1B rows over 8 nodes, lazily materialized
		HotPerNode:  50,
		WritePct:    writePct,
		HotTxnPct:   75,
		DistPct:     20,
		OpsPerTxn:   8,
	}
}

// YCSB is the Yahoo! Cloud Serving Benchmark generator.
type YCSB struct {
	cfg YCSBConfig
}

// NewYCSB validates the configuration and returns a generator.
func NewYCSB(cfg YCSBConfig) *YCSB {
	if cfg.NumNodes <= 0 || cfg.RowsPerNode <= 0 || cfg.OpsPerTxn <= 0 {
		panic("workload: invalid YCSB config")
	}
	if int64(cfg.HotPerNode) > cfg.RowsPerNode {
		panic("workload: hot set larger than partition")
	}
	return &YCSB{cfg: cfg}
}

// Name implements Generator.
func (y *YCSB) Name() string {
	switch y.cfg.WritePct {
	case 50:
		return "YCSB-A"
	case 5:
		return "YCSB-B"
	case 0:
		return "YCSB-C"
	}
	return fmt.Sprintf("YCSB(w=%d%%)", y.cfg.WritePct)
}

// Nodes implements Generator.
func (y *YCSB) Nodes() int { return y.cfg.NumNodes }

// Config returns the generator's configuration.
func (y *YCSB) Config() YCSBConfig { return y.cfg }

// DeclaresKeySets implements SetDeclarer: YCSB operations draw independent
// uniform keys, so the generated operation list is the exact read/write
// set — deterministic engines can sequence the transaction as-is.
func (y *YCSB) DeclaresKeySets() bool { return true }

// Populate implements Generator. YCSB rows default to zero values and
// materialize lazily, so only the table is created.
func (y *YCSB) Populate(stores []*store.Store) {
	for _, st := range stores {
		st.CreateTable(YCSBTable, "usertable", 1)
	}
}

// Home implements Generator: keys are range-partitioned.
func (y *YCSB) Home(t store.TableID, k store.Key) netsim.NodeID {
	return netsim.NodeID(int64(k) / y.cfg.RowsPerNode)
}

// hotKey returns hot tuple i of a node (the first HotPerNode keys of its
// range).
func (y *YCSB) hotKey(node netsim.NodeID, i int64) store.Key {
	return store.Key(int64(node)*y.cfg.RowsPerNode + i)
}

// coldKey returns a uniformly random cold key of a node.
func (y *YCSB) coldKey(rng *sim.RNG, node netsim.NodeID) store.Key {
	off := int64(y.cfg.HotPerNode) + rng.Int63n(y.cfg.RowsPerNode-int64(y.cfg.HotPerNode))
	return store.Key(int64(node)*y.cfg.RowsPerNode + off)
}

// Next implements Generator. A transaction is either entirely hot or
// entirely cold (HotTxnPct), and either local or distributed (DistPct);
// distributed transactions draw each operation's node uniformly.
//
// Operation j of a hot transaction draws its key from congruence class
// j mod OpsPerTxn of the hot range, so the operations of one transaction
// never share a class. This mirrors the paper's YCSB switch program, in
// which every hot transaction executes in a single pipeline pass: a
// conflict-free register assignment exists (one set of register arrays
// per class) and the declustering algorithm finds it from the co-access
// pattern alone.
func (y *YCSB) Next(rng *sim.RNG, self netsim.NodeID) *Txn {
	hot := rng.Bool(y.cfg.HotTxnPct)
	dist := rng.Bool(y.cfg.DistPct)
	txn := &Txn{Label: "YCSB", Ops: make([]Op, 0, y.cfg.OpsPerTxn)}
	seen := make(map[store.Key]struct{}, y.cfg.OpsPerTxn)
	for len(txn.Ops) < y.cfg.OpsPerTxn {
		node := self
		if dist {
			node = netsim.NodeID(rng.Intn(y.cfg.NumNodes))
		}
		var key store.Key
		if hot {
			j := len(txn.Ops)
			classSize := (y.cfg.HotPerNode - j + y.cfg.OpsPerTxn - 1) / y.cfg.OpsPerTxn
			key = y.hotKey(node, int64(j+y.cfg.OpsPerTxn*rng.Intn(classSize)))
		} else {
			key = y.coldKey(rng, node)
		}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		kind := Read
		var val int64
		if rng.Bool(y.cfg.WritePct) {
			kind = Write
			val = int64(rng.Uint32())
		}
		txn.Ops = append(txn.Ops, Op{
			Table: YCSBTable, Key: key, Field: 0, Home: node,
			Kind: kind, Value: val, DependsOn: -1,
		})
	}
	return txn
}

// HotCandidates enumerates every hot tuple the generator will ever emit,
// in deterministic order (used to bound detection samples in tests).
func (y *YCSB) HotCandidates() []store.GlobalKey {
	out := make([]store.GlobalKey, 0, y.cfg.NumNodes*y.cfg.HotPerNode)
	for n := 0; n < y.cfg.NumNodes; n++ {
		for i := 0; i < y.cfg.HotPerNode; i++ {
			out = append(out, store.GlobalField(YCSBTable, 0, y.hotKey(netsim.NodeID(n), int64(i))))
		}
	}
	return out
}
