package workload

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/store"
)

// YCSBTable is the single table of the YCSB benchmark.
const YCSBTable store.TableID = 0

// YCSBConfig parameterizes the YCSB generator following Section 7.2: a
// single range-partitioned table, transactions of OpsPerTxn independent
// read/write operations, and a per-node hot-set that receives HotAccessPct
// of all accesses.
type YCSBConfig struct {
	NumNodes    int
	RowsPerNode int64 // logical partition size (rows materialize lazily)
	HotPerNode  int   // hot keys per node (paper: 50)
	WritePct    int   // write ratio within a txn: A=50, B=5, C=0
	HotTxnPct   int   // fraction of transactions on the hot-set (paper: 75%)
	DistPct     int   // fraction of distributed transactions
	OpsPerTxn   int   // operations per transaction (paper: 8)

	// Zipfian switches key selection from the paper's two-level hot/cold
	// split to a smooth Zipf(Theta) distribution over all rows — the
	// contention-scaling axis the hardware testbed could not sweep.
	// HotTxnPct is ignored in this mode (skew is continuous, not binary);
	// DistPct still selects distributed transactions.
	Zipfian bool
	Theta   float64
}

// YCSBWorkloadA..C return the paper's workload mixes (update-heavy 50/50,
// read-heavy 95/5, read-only 100/0) at the defaults of Section 7.2.
func YCSBWorkloadA(nodes int) YCSBConfig { return ycsbBase(nodes, 50) }
func YCSBWorkloadB(nodes int) YCSBConfig { return ycsbBase(nodes, 5) }
func YCSBWorkloadC(nodes int) YCSBConfig { return ycsbBase(nodes, 0) }

func ycsbBase(nodes, writePct int) YCSBConfig {
	return YCSBConfig{
		NumNodes:    nodes,
		RowsPerNode: 1 << 27, // 1B rows over 8 nodes, lazily materialized
		HotPerNode:  50,
		WritePct:    writePct,
		HotTxnPct:   75,
		DistPct:     20,
		OpsPerTxn:   8,
	}
}

// YCSB is the Yahoo! Cloud Serving Benchmark generator.
type YCSB struct {
	cfg YCSBConfig

	// Zipfian-mode samplers, built once: global ranks for distributed
	// transactions, per-partition ranks for local ones.
	zipfGlobal *Zipf
	zipfLocal  *Zipf
}

// NewYCSB validates the configuration and returns a generator.
func NewYCSB(cfg YCSBConfig) *YCSB {
	if cfg.NumNodes <= 0 || cfg.RowsPerNode <= 0 || cfg.OpsPerTxn <= 0 {
		panic("workload: invalid YCSB config")
	}
	if int64(cfg.HotPerNode) > cfg.RowsPerNode {
		panic("workload: hot set larger than partition")
	}
	y := &YCSB{cfg: cfg}
	if cfg.Zipfian {
		y.zipfGlobal = NewZipf(cfg.RowsPerNode*int64(cfg.NumNodes), cfg.Theta)
		y.zipfLocal = NewZipf(cfg.RowsPerNode, cfg.Theta)
	}
	return y
}

// Name implements Generator.
func (y *YCSB) Name() string {
	var base string
	switch y.cfg.WritePct {
	case 50:
		base = "YCSB-A"
	case 5:
		base = "YCSB-B"
	case 0:
		base = "YCSB-C"
	default:
		base = fmt.Sprintf("YCSB(w=%d%%)", y.cfg.WritePct)
	}
	if y.cfg.Zipfian {
		return fmt.Sprintf("%s-zipf%.2f", base, y.cfg.Theta)
	}
	return base
}

// Nodes implements Generator.
func (y *YCSB) Nodes() int { return y.cfg.NumNodes }

// Config returns the generator's configuration.
func (y *YCSB) Config() YCSBConfig { return y.cfg }

// DeclaresKeySets implements SetDeclarer: YCSB operations draw independent
// uniform keys, so the generated operation list is the exact read/write
// set — deterministic engines can sequence the transaction as-is.
func (y *YCSB) DeclaresKeySets() bool { return true }

// Populate implements Generator. YCSB rows default to zero values and
// materialize lazily, so only the table is created.
func (y *YCSB) Populate(stores []*store.Store) {
	for _, st := range stores {
		st.CreateTable(YCSBTable, "usertable", 1)
	}
}

// Home implements Generator: keys are range-partitioned.
func (y *YCSB) Home(t store.TableID, k store.Key) netsim.NodeID {
	return netsim.NodeID(int64(k) / y.cfg.RowsPerNode)
}

// hotKey returns hot tuple i of a node (the first HotPerNode keys of its
// range).
func (y *YCSB) hotKey(node netsim.NodeID, i int64) store.Key {
	return store.Key(int64(node)*y.cfg.RowsPerNode + i)
}

// coldKey returns a uniformly random cold key of a node.
func (y *YCSB) coldKey(rng *sim.RNG, node netsim.NodeID) store.Key {
	off := int64(y.cfg.HotPerNode) + rng.Int63n(y.cfg.RowsPerNode-int64(y.cfg.HotPerNode))
	return store.Key(int64(node)*y.cfg.RowsPerNode + off)
}

// Next implements Generator. A transaction is either entirely hot or
// entirely cold (HotTxnPct), and either local or distributed (DistPct);
// distributed transactions draw each operation's node uniformly.
//
// Operation j of a hot transaction draws its key from congruence class
// j mod OpsPerTxn of the hot range, so the operations of one transaction
// never share a class. This mirrors the paper's YCSB switch program, in
// which every hot transaction executes in a single pipeline pass: a
// conflict-free register assignment exists (one set of register arrays
// per class) and the declustering algorithm finds it from the co-access
// pattern alone.
func (y *YCSB) Next(rng *sim.RNG, self netsim.NodeID) *Txn {
	if y.cfg.Zipfian {
		return y.nextZipf(rng, self)
	}
	hot := rng.Bool(y.cfg.HotTxnPct)
	dist := rng.Bool(y.cfg.DistPct)
	txn := &Txn{Label: "YCSB", Ops: make([]Op, 0, y.cfg.OpsPerTxn)}
	seen := make(map[store.Key]struct{}, y.cfg.OpsPerTxn)
	for len(txn.Ops) < y.cfg.OpsPerTxn {
		node := self
		if dist {
			node = netsim.NodeID(rng.Intn(y.cfg.NumNodes))
		}
		var key store.Key
		if hot {
			j := len(txn.Ops)
			classSize := (y.cfg.HotPerNode - j + y.cfg.OpsPerTxn - 1) / y.cfg.OpsPerTxn
			key = y.hotKey(node, int64(j+y.cfg.OpsPerTxn*rng.Intn(classSize)))
		} else {
			key = y.coldKey(rng, node)
		}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		kind := Read
		var val int64
		if rng.Bool(y.cfg.WritePct) {
			kind = Write
			val = int64(rng.Uint32())
		}
		txn.Ops = append(txn.Ops, Op{
			Table: YCSBTable, Key: key, Field: 0, Home: node,
			Kind: kind, Value: val, DependsOn: -1,
		})
	}
	return txn
}

// nextZipf is the Zipfian-mode transaction body: every operation's key is
// drawn from Zipf(Theta). Distributed transactions draw a global rank —
// rank r lives on node r mod NumNodes at partition offset r div NumNodes,
// so the globally hottest tuples round-robin across the cluster and land
// on the low per-node offsets that the two-level mode also uses as its hot
// region (hot-set detection and HotCandidates need no special case). Local
// transactions draw a per-partition rank on the originating node, giving
// every partition the same internal skew.
func (y *YCSB) nextZipf(rng *sim.RNG, self netsim.NodeID) *Txn {
	dist := rng.Bool(y.cfg.DistPct)
	nodes := int64(y.cfg.NumNodes)
	txn := &Txn{Label: "YCSB", Ops: make([]Op, 0, y.cfg.OpsPerTxn)}
	seen := make(map[store.Key]struct{}, y.cfg.OpsPerTxn)
	for len(txn.Ops) < y.cfg.OpsPerTxn {
		node := self
		var key store.Key
		if dist {
			r := y.zipfGlobal.Next(rng)
			node = netsim.NodeID(r % nodes)
			key = store.Key(int64(node)*y.cfg.RowsPerNode + r/nodes)
		} else {
			key = store.Key(int64(self)*y.cfg.RowsPerNode + y.zipfLocal.Next(rng))
		}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		kind := Read
		var val int64
		if rng.Bool(y.cfg.WritePct) {
			kind = Write
			val = int64(rng.Uint32())
		}
		txn.Ops = append(txn.Ops, Op{
			Table: YCSBTable, Key: key, Field: 0, Home: node,
			Kind: kind, Value: val, DependsOn: -1,
		})
	}
	return txn
}

// HotCandidates enumerates every hot tuple the generator will ever emit,
// in deterministic order (used to bound detection samples in tests).
func (y *YCSB) HotCandidates() []store.GlobalKey {
	out := make([]store.GlobalKey, 0, y.cfg.NumNodes*y.cfg.HotPerNode)
	for n := 0; n < y.cfg.NumNodes; n++ {
		for i := 0; i < y.cfg.HotPerNode; i++ {
			out = append(out, store.GlobalField(YCSBTable, 0, y.hotKey(netsim.NodeID(n), int64(i))))
		}
	}
	return out
}
